#pragma once

/// \file blocked_tridiag.hpp
/// \brief Blocked (level-3) Householder tridiagonalization and the matching
/// blocked application of the orthogonal factor Q.
///
/// The classic TRED2-style reduction (eigen_sym.hpp) applies every rank-2
/// update to the trailing matrix immediately, so it runs at BLAS-2 speed.
/// This module is the LAPACK SYTRD/LATRD counterpart: within a panel of
/// `block` columns only the current column is updated, the per-reflector
/// couplings are accumulated into an auxiliary W panel, and the trailing
/// submatrix receives one symmetric rank-2k (GEMM-shaped) update per panel.
/// The reflectors are kept in factored form so eigenvector back-transforms
/// can be applied as compact WY blocks -- two GEMMs per panel -- instead of
/// one Givens rotation at a time.  This is what turns the O(N^3)
/// diagonalization, the dominant cost of exact tight-binding MD, from a
/// memory-bound into a compute-bound kernel.

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// Factored result of a blocked tridiagonalization Q^T A Q = T.
///
/// Column j of `reflectors` stores the Householder vector v_j of
/// H_j = I - tau_j v_j v_j^T on rows j+1 .. n-1 (with v_j[j+1] = 1 stored
/// explicitly); entries on and above the diagonal are unspecified.
/// Q = H_0 H_1 ... H_{n-3}.
struct TridiagFactorization {
  Matrix reflectors;        ///< n x n, Householder vectors in the strict lower part
  std::vector<double> tau;  ///< n entries; tau[j] = 0 where no reflector exists
  std::vector<double> d;    ///< diagonal of T
  std::vector<double> e;    ///< subdiagonal of T, e[0] = 0, e[i] = T(i, i-1)

  [[nodiscard]] std::size_t size() const { return d.size(); }
};

/// Reduce the symmetric matrix `a` (lower triangle authoritative) to
/// tridiagonal form with panel-blocked Householder reflections.
/// `block` is the panel width; the default is tuned for the TB Hamiltonian
/// sizes the benchmarks cover (N ~ 64 .. 1024).
[[nodiscard]] TridiagFactorization blocked_tridiagonalize(const Matrix& a,
                                                          std::size_t block = 32);

/// Z <- Q * Z for an n x m matrix Z, applying the factored reflectors as
/// compact WY blocks (two GEMM-shaped sweeps per panel).  This is the
/// back-transform taking eigenvectors of T to eigenvectors of A and costs
/// ~4 n^2 m flops; for partial-spectrum queries m << n it is the step that
/// makes occupied-only diagonalization cheap.
void apply_q(const TridiagFactorization& f, Matrix& z);

/// Explicitly form the orthogonal factor Q (n x n); mainly for tests.
[[nodiscard]] Matrix form_q(const TridiagFactorization& f);

}  // namespace tbmd::linalg
