#pragma once

/// \file spectral_bounds.hpp
/// \brief Shared Gershgorin spectral-bounds estimates.
///
/// One interval type used everywhere an algorithm needs a cheap enclosure of
/// a symmetric spectrum: the bisection eigensolver seeds its search interval
/// from it, the O(N) purification engines (Palser-Manolopoulos, SP2) use it
/// to build their [0, 1] linear maps of H, and the tridiagonal utilities use
/// it to bracket Sturm bisection.  Keeping the estimate in one place makes
/// the dense, tridiagonal and sparse paths agree on what "the spectrum" is.

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// Closed interval [lo, hi] guaranteed to contain every eigenvalue of the
/// matrix it was computed from (Gershgorin disc union for symmetric input).
struct SpectralBounds {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double width() const { return hi - lo; }
  /// Scale of the spectrum for relative tolerances: max(|lo|, |hi|).
  [[nodiscard]] double scale() const;
};

/// Gershgorin bounds of a dense symmetric matrix (row sums of |off-diag|).
[[nodiscard]] SpectralBounds gershgorin_bounds(const Matrix& a);

/// Gershgorin bounds of a symmetric tridiagonal matrix with diagonal `d` and
/// subdiagonal `e` in the e[i] = T(i, i-1) convention (e[0] unused).
[[nodiscard]] SpectralBounds gershgorin_bounds(const std::vector<double>& d,
                                               const std::vector<double>& e);

}  // namespace tbmd::linalg
