#pragma once

/// \file jacobi.hpp
/// \brief Cyclic Jacobi eigensolver for symmetric matrices.
///
/// Slower than the Householder+QL path (eigen_sym.hpp) but simple enough to
/// be obviously correct; it serves as the verification oracle in the test
/// suite and as a historically faithful alternative (systolic Jacobi was a
/// popular parallel eigensolver in the early 1990s).

#include "src/linalg/eigen_sym.hpp"

namespace tbmd::linalg {

/// Full eigendecomposition by cyclic Jacobi rotations.
///
/// Sweeps until the off-diagonal Frobenius norm falls below `tol` times the
/// matrix norm, or throws after `max_sweeps`.
[[nodiscard]] SymmetricEigenSolution jacobi_eigh(const Matrix& a,
                                                 double tol = 1e-12,
                                                 int max_sweeps = 100);

}  // namespace tbmd::linalg
