#pragma once

/// \file eigen_sym.hpp
/// \brief Dense symmetric eigensolver: Householder tridiagonalization
/// followed by implicit-shift QL iteration.
///
/// This is the same algorithm family (TRED2/TQL2, EISPACK lineage) that the
/// 1994-era TBMD codes used through LAPACK, reimplemented here with
/// OpenMP-parallel Householder updates and thread-parallel application of
/// the QL Givens rotations to the eigenvector matrix.  The O(N^3)
/// diagonalization is the dominant cost of exact tight-binding MD and the
/// central scaling bottleneck the paper's evaluation investigates.

#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// Eigenvalues (ascending) and matching eigenvectors of a real symmetric
/// matrix.  Column j of `vectors` is the unit eigenvector for `values[j]`.
struct SymmetricEigenSolution {
  std::vector<double> values;
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix.
///
/// The input is validated to be square and (approximately) symmetric; the
/// strictly lower triangle is the authoritative data.  Since the blocked
/// partial-spectrum refactor this routes through eigh_range(a, 0, n-1)
/// (blocked Householder + values-only QL/bisection + inverse iteration +
/// blocked back-transform, see eigen_partial.hpp); eigh_ql() below keeps
/// the classic rotation-accumulating path as a cross-check oracle.
[[nodiscard]] SymmetricEigenSolution eigh(const Matrix& a);

/// Full eigendecomposition via the classic TRED2/TQL2 path: Householder
/// reduction with accumulated Q, then implicit-shift QL applying every
/// Givens rotation to the eigenvector matrix.  Slower than eigh() but of
/// EISPACK lineage and independently verified; kept (with jacobi_eigh) as
/// the oracle the tests compare the blocked solver against.
[[nodiscard]] SymmetricEigenSolution eigh_ql(const Matrix& a);

/// Eigenvalues only (ascending); roughly 2x faster and half the memory of
/// eigh() since no eigenvector accumulation is performed.
[[nodiscard]] std::vector<double> eigvalsh(const Matrix& a);

/// Reduce a symmetric matrix to tridiagonal form with Householder
/// reflections: Q^T A Q = T.  On exit `d` holds the diagonal of T and `e`
/// the subdiagonal (e[0] = 0, e[i] = T(i, i-1)).  If `accumulate` is true,
/// `a` is overwritten with the orthogonal matrix Q; otherwise its contents
/// are destroyed.
///
/// Exposed for testing and for the tridiagonal-based density-of-states
/// tools; most callers want eigh().
void householder_tridiagonalize(Matrix& a, std::vector<double>& d,
                                std::vector<double>& e, bool accumulate);

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
///
/// `d` (diagonal) and `e` (subdiagonal, e[0] = 0 convention as produced by
/// householder_tridiagonalize) are overwritten; on exit `d` holds the
/// (unsorted) eigenvalues.  If `z` is non-null it must be n x n, and the
/// accumulated rotations are applied to its columns (pass Q from the
/// Householder step to obtain eigenvectors of the original matrix, or the
/// identity to obtain eigenvectors of T itself).
void tql_implicit_shift(std::vector<double>& d, std::vector<double>& e,
                        Matrix* z);

}  // namespace tbmd::linalg
