#include "src/linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/parallel.hpp"

namespace tbmd::linalg {

namespace {
/// Cache tile edge for the blocked GEMM.  64 doubles = 512 B per row tile;
/// a 64x64 tile of each operand fits comfortably in L1/L2.
constexpr std::size_t kTile = 64;
}  // namespace

void gemm_accumulate(double alpha, const Matrix& a, const Matrix& b,
                     Matrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  TBMD_REQUIRE(b.rows() == k, "gemm: inner dimensions differ");
  TBMD_REQUIRE(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");

  // i-k-j loop order with tiling: the innermost loop streams rows of B and C.
#pragma omp parallel for schedule(static) if (m * n * k > 100000)
  for (std::size_t i0 = 0; i0 < m; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
        const std::size_t j1 = std::min(j0 + kTile, n);
        for (std::size_t i = i0; i < i1; ++i) {
          const double* arow = a.row(i);
          double* crow = c.row(i);
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = alpha * arow[kk];
            if (aik == 0.0) continue;
            const double* brow = b.row(kk);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  gemm_accumulate(1.0, a, b, c);
  return c;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  TBMD_REQUIRE(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
#pragma omp parallel for schedule(static) if (a.rows() * a.cols() > 100000)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> matvec_transposed(const Matrix& a,
                                      const std::vector<double>& x) {
  TBMD_REQUIRE(a.rows() == x.size(), "matvec_transposed: shape mismatch");
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * arow[j];
  }
  return y;
}

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  TBMD_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  TBMD_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(const std::vector<double>& x) { return std::sqrt(dot(x, x)); }

}  // namespace tbmd::linalg
