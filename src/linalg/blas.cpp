#include "src/linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/parallel.hpp"

namespace tbmd::linalg {

namespace {

/// Cache tile edge shared by every level-3 kernel.  64 doubles = 512 B per
/// row tile; a 64x64 tile of each operand fits comfortably in L1/L2.
constexpr std::size_t kTile = 64;

/// Block kernel, no-transpose x no-transpose: C += alpha * A * B over the
/// tile i in [i0,i1), k in [k0,k1), j in [j0,j1).  i-k-j order: the
/// innermost loop streams rows of B and C (axpy form).
inline void tile_gemm_nn(std::size_t i0, std::size_t i1, std::size_t k0,
                         std::size_t k1, std::size_t j0, std::size_t j1,
                         double alpha, const double* a, std::size_t lda,
                         const double* b, std::size_t ldb, double* c,
                         std::size_t ldc) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (std::size_t kk = k0; kk < k1; ++kk) {
      const double aik = alpha * arow[kk];
      if (aik == 0.0) continue;
      const double* brow = b + kk * ldb;
      for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
    }
  }
}

/// Block kernel, no-transpose x transpose: C += alpha * A * B^T over the
/// tile i in [i0,i1), j in [j0,j1), contraction index in [k0,k1).  Both
/// operand rows are contiguous, so the inner loops are plain dot products;
/// two j-columns per pass share the A-row loads.  When `lower` the j range
/// of each row is clipped to j <= i (the symmetric-kernel case).
inline void tile_gemm_nt(std::size_t i0, std::size_t i1, std::size_t j0,
                         std::size_t j1, std::size_t k0, std::size_t k1,
                         bool lower, double alpha, const double* a,
                         std::size_t lda, const double* b, std::size_t ldb,
                         double* c, std::size_t ldc) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* ai = a + i * lda;
    double* crow = c + i * ldc;
    const std::size_t jend = lower ? std::min(j1, i + 1) : j1;
    std::size_t j = j0;
    for (; j + 1 < jend; j += 2) {
      const double* bj0 = b + j * ldb;
      const double* bj1 = bj0 + ldb;
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        s0 += ai[kk] * bj0[kk];
        s1 += ai[kk] * bj1[kk];
      }
      crow[j] += alpha * s0;
      crow[j + 1] += alpha * s1;
    }
    for (; j < jend; ++j) {
      const double* bj = b + j * ldb;
      double s = 0.0;
      for (std::size_t kk = k0; kk < k1; ++kk) s += ai[kk] * bj[kk];
      crow[j] += alpha * s;
    }
  }
}

/// Fused rank-2 variant of tile_gemm_nt: C += alpha * (A * B^T + B * A^T)
/// over the tile, accumulating both products in one pass so the C tile is
/// read and written once (splitting into two NT passes doubles the C
/// traffic and measurably slows the tridiagonalization trailing update).
inline void tile_gemm_nt2(std::size_t i0, std::size_t i1, std::size_t j0,
                          std::size_t j1, std::size_t k0, std::size_t k1,
                          bool lower, double alpha, const double* a,
                          std::size_t lda, const double* b, std::size_t ldb,
                          double* c, std::size_t ldc) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* ai = a + i * lda;
    const double* bi = b + i * ldb;
    double* crow = c + i * ldc;
    const std::size_t jend = lower ? std::min(j1, i + 1) : j1;
    for (std::size_t j = j0; j < jend; ++j) {
      const double* aj = a + j * lda;
      const double* bj = b + j * ldb;
      double s = 0.0;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        s += ai[kk] * bj[kk] + bi[kk] * aj[kk];
      }
      crow[j] += alpha * s;
    }
  }
}

/// Unflatten a lower-triangle tile-pair index t into (ti, tj), tj <= ti,
/// with t = ti * (ti + 1) / 2 + tj.
inline void unflatten_tile_pair(std::size_t t, std::size_t& ti,
                                std::size_t& tj) {
  ti = static_cast<std::size_t>((std::sqrt(8.0 * static_cast<double>(t) + 1.0) - 1.0) / 2.0);
  while ((ti + 1) * (ti + 2) / 2 <= t) ++ti;   // guard against sqrt rounding
  while (ti * (ti + 1) / 2 > t) --ti;
  tj = t - ti * (ti + 1) / 2;
}

/// Shared driver of syrk_lower / syr2k_lower: walk lower-triangle tile
/// pairs in parallel and run the NT block kernel once (syrk) or twice with
/// swapped operands (syr2k) per k-slab.
template <bool Rank2>
void rank_k_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                  std::size_t lda, const double* b, std::size_t ldb, double* c,
                  std::size_t ldc) {
  if (n == 0 || k == 0 || alpha == 0.0) return;
  const std::size_t nt = (n + kTile - 1) / kTile;
  const std::size_t npairs = nt * (nt + 1) / 2;
  [[maybe_unused]] const bool par = par::worth_parallelizing(n * n / 2, k);
#pragma omp parallel for schedule(dynamic) if (par)
  for (std::size_t t = 0; t < npairs; ++t) {
    std::size_t ti, tj;
    unflatten_tile_pair(t, ti, tj);
    const std::size_t i0 = ti * kTile, i1 = std::min(i0 + kTile, n);
    const std::size_t j0 = tj * kTile, j1 = std::min(j0 + kTile, n);
    const bool lower = ti == tj;  // diagonal tiles clip to j <= i
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, k);
      if constexpr (Rank2) {
        tile_gemm_nt2(i0, i1, j0, j1, k0, k1, lower, alpha, a, lda, b, ldb, c,
                      ldc);
      } else {
        tile_gemm_nt(i0, i1, j0, j1, k0, k1, lower, alpha, a, lda, b, ldb, c,
                     ldc);
      }
    }
  }
}

/// Scale the lower triangle of C by beta (the symmetric kernels never read
/// the upper triangle; it is overwritten by the final mirror).
void scale_lower(double beta, Matrix& c) {
  const std::size_t n = c.rows();
  if (beta == 1.0) return;
#pragma omp parallel for schedule(static) if (n >= 256)
  for (std::size_t i = 0; i < n; ++i) {
    double* row = c.row(i);
    if (beta == 0.0) {
      for (std::size_t j = 0; j <= i; ++j) row[j] = 0.0;
    } else {
      for (std::size_t j = 0; j <= i; ++j) row[j] *= beta;
    }
  }
}

/// Copy the lower triangle into the upper one so C is exactly symmetric.
void mirror_lower(Matrix& c) {
  const std::size_t n = c.rows();
#pragma omp parallel for schedule(static) if (n >= 256)
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = c.row(i);
    for (std::size_t j = 0; j < i; ++j) c(j, i) = row[j];
  }
}

}  // namespace

void gemm_accumulate(double alpha, const Matrix& a, const Matrix& b,
                     Matrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  TBMD_REQUIRE(b.rows() == k, "gemm: inner dimensions differ");
  TBMD_REQUIRE(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");

#pragma omp parallel for schedule(static) if (m * n * k > 100000)
  for (std::size_t i0 = 0; i0 < m; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
        const std::size_t j1 = std::min(j0 + kTile, n);
        tile_gemm_nn(i0, i1, k0, k1, j0, j1, alpha, a.data(), k, b.data(), n,
                     c.data(), n);
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  gemm_accumulate(1.0, a, b, c);
  return c;
}

void syrk_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                std::size_t lda, double* c, std::size_t ldc) {
  rank_k_lower<false>(n, k, alpha, a, lda, a, lda, c, ldc);
}

void syr2k_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc) {
  rank_k_lower<true>(n, k, alpha, a, lda, b, ldb, c, ldc);
}

namespace {

/// Compile-time-sized square tile product C += op(A) * op(B) with k-major
/// accumulation per output row (an N-wide accumulator the compiler keeps in
/// registers).  Instantiated at N == 9 for the spd orbital block; the sp
/// block keeps its hand-unrolled kernels below so that path's code is
/// byte-for-byte what it was before the variable-block refactor.
template <std::size_t N>
inline void micro_add_square(bool transpose_a, bool transpose_b,
                             const double* a, const double* b, double* c) {
  for (std::size_t i = 0; i < N; ++i) {
    double acc[N] = {};
    for (std::size_t k = 0; k < N; ++k) {
      const double aik = transpose_a ? a[N * k + i] : a[N * i + k];
      const double* bk = transpose_b ? b + k : b + N * k;
      const std::size_t bstep = transpose_b ? N : 1;
      for (std::size_t j = 0; j < N; ++j) acc[j] += aik * bk[bstep * j];
    }
    double* ci = c + N * i;
    for (std::size_t j = 0; j < N; ++j) ci[j] += acc[j];
  }
}

}  // namespace

void gemm_micro_add(std::size_t bs, const double* a, const double* b,
                    double* c) {
  // bs == 4 tested first: the legacy sp models make it by far the hottest
  // tile edge, so it pays exactly one predicted branch.
  if (bs == 4) {
    // Fully unrolled 4x4x4: each output row is accumulated in four scalars
    // (registers), reading each A entry once and streaming B's rows.
    for (std::size_t i = 0; i < 4; ++i) {
      const double* ai = a + 4 * i;
      double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        const double aik = ai[k];
        const double* bk = b + 4 * k;
        c0 += aik * bk[0];
        c1 += aik * bk[1];
        c2 += aik * bk[2];
        c3 += aik * bk[3];
      }
      double* ci = c + 4 * i;
      ci[0] += c0;
      ci[1] += c1;
      ci[2] += c2;
      ci[3] += c3;
    }
    return;
  }
  if (bs == 1) {
    c[0] += a[0] * b[0];
    return;
  }
  if (bs == 9) {
    micro_add_square<9>(false, false, a, b, c);
    return;
  }
  for (std::size_t i = 0; i < bs; ++i) {
    const double* ai = a + bs * i;
    double* ci = c + bs * i;
    for (std::size_t k = 0; k < bs; ++k) {
      const double aik = ai[k];
      if (aik == 0.0) continue;
      const double* bk = b + bs * k;
      for (std::size_t j = 0; j < bs; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_micro_add_t(std::size_t bs, bool transpose_a, bool transpose_b,
                      const double* a, const double* b, double* c) {
  if (!transpose_a && !transpose_b) {
    gemm_micro_add(bs, a, b, c);
    return;
  }
  if (bs == 4) {
    // Unrolled like the nn fast path: four C-row scalars in registers,
    // k-major accumulation.  The transposed operand is read with stride 4
    // (column walk of the stored row-major tile).
    if (transpose_a && !transpose_b) {
      for (std::size_t i = 0; i < 4; ++i) {
        const double* ai = a + i;  // column i of A == row i of A^T
        double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
        for (std::size_t k = 0; k < 4; ++k) {
          const double aik = ai[4 * k];
          const double* bk = b + 4 * k;
          c0 += aik * bk[0];
          c1 += aik * bk[1];
          c2 += aik * bk[2];
          c3 += aik * bk[3];
        }
        double* ci = c + 4 * i;
        ci[0] += c0;
        ci[1] += c1;
        ci[2] += c2;
        ci[3] += c3;
      }
    } else if (!transpose_a && transpose_b) {
      for (std::size_t i = 0; i < 4; ++i) {
        const double* ai = a + 4 * i;
        double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
        for (std::size_t k = 0; k < 4; ++k) {
          const double aik = ai[k];
          const double* bk = b + k;  // column k of B == row k of B^T
          c0 += aik * bk[0];
          c1 += aik * bk[4];
          c2 += aik * bk[8];
          c3 += aik * bk[12];
        }
        double* ci = c + 4 * i;
        ci[0] += c0;
        ci[1] += c1;
        ci[2] += c2;
        ci[3] += c3;
      }
    } else {
      for (std::size_t i = 0; i < 4; ++i) {
        const double* ai = a + i;
        double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
        for (std::size_t k = 0; k < 4; ++k) {
          const double aik = ai[4 * k];
          const double* bk = b + k;
          c0 += aik * bk[0];
          c1 += aik * bk[4];
          c2 += aik * bk[8];
          c3 += aik * bk[12];
        }
        double* ci = c + 4 * i;
        ci[0] += c0;
        ci[1] += c1;
        ci[2] += c2;
        ci[3] += c3;
      }
    }
    return;
  }
  if (bs == 1) {
    c[0] += a[0] * b[0];  // a 1 x 1 tile is its own transpose
    return;
  }
  if (bs == 9) {
    micro_add_square<9>(transpose_a, transpose_b, a, b, c);
    return;
  }
  const auto at = [&](std::size_t i, std::size_t k) {
    return transpose_a ? a[bs * k + i] : a[bs * i + k];
  };
  const auto bt = [&](std::size_t k, std::size_t j) {
    return transpose_b ? b[bs * j + k] : b[bs * k + j];
  };
  for (std::size_t i = 0; i < bs; ++i) {
    double* ci = c + bs * i;
    for (std::size_t j = 0; j < bs; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < bs; ++k) s += at(i, k) * bt(k, j);
      ci[j] += s;
    }
  }
}

void gemm_micro_add_rect(std::size_t m, std::size_t k, std::size_t n,
                         bool transpose_a, bool transpose_b, const double* a,
                         const double* b, double* c) {
  if (m == k && k == n) {
    gemm_micro_add_t(m, transpose_a, transpose_b, a, b, c);
    return;
  }
  // Generic rectangular fallback.  The stored tile of a transposed operand
  // has the swapped shape, so op(A)(i, q) walks it with the strides below.
  const std::size_t a_row = transpose_a ? 1 : k;
  const std::size_t a_col = transpose_a ? m : 1;
  const std::size_t b_row = transpose_b ? 1 : n;
  const std::size_t b_col = transpose_b ? k : 1;
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + a_row * i;
    double* ci = c + n * i;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b + b_col * j;
      double s = 0.0;
      for (std::size_t q = 0; q < k; ++q) {
        s += ai[a_col * q] * bj[b_row * q];
      }
      ci[j] += s;
    }
  }
}

double tile_norm2(std::size_t bs, const double* a) {
  double s = 0.0;
  for (std::size_t q = 0; q < bs * bs; ++q) s += a[q] * a[q];
  return s;
}

double tile_norm2_rect(std::size_t m, std::size_t n, const double* a) {
  double s = 0.0;
  for (std::size_t q = 0; q < m * n; ++q) s += a[q] * a[q];
  return s;
}

void syrk(double alpha, const Matrix& a, double beta, Matrix& c) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(c.rows() == n && c.cols() == n, "syrk: C must be n x n");
  scale_lower(beta, c);
  syrk_lower(n, a.cols(), alpha, a.data(), a.cols(), c.data(), n);
  mirror_lower(c);
}

void syr2k(double alpha, const Matrix& a, const Matrix& b, double beta,
           Matrix& c) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(b.rows() == n && b.cols() == a.cols(),
               "syr2k: A and B must have the same shape");
  TBMD_REQUIRE(c.rows() == n && c.cols() == n, "syr2k: C must be n x n");
  scale_lower(beta, c);
  syr2k_lower(n, a.cols(), alpha, a.data(), a.cols(), b.data(), b.cols(),
              c.data(), n);
  mirror_lower(c);
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  TBMD_REQUIRE(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
#pragma omp parallel for schedule(static) if (a.rows() * a.cols() > 100000)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> matvec_transposed(const Matrix& a,
                                      const std::vector<double>& x) {
  TBMD_REQUIRE(a.rows() == x.size(), "matvec_transposed: shape mismatch");
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * arow[j];
  }
  return y;
}

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  TBMD_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  TBMD_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(const std::vector<double>& x) { return std::sqrt(dot(x, x)); }

}  // namespace tbmd::linalg
