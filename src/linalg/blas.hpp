#pragma once

/// \file blas.hpp
/// \brief BLAS-like dense kernels (OpenMP-parallel where profitable).
///
/// These are the building blocks the electronic-structure layer leans on:
/// GEMM for density-matrix assembly, GEMV/SYMV for iterative methods, and a
/// handful of level-1 helpers.  The blocked GEMM is cache-tiled and
/// parallelized over row panels.

#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// C = A * B (shapes must conform).  Cache-blocked, OpenMP-parallel.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C += alpha * A * B.  C must already have the product shape.
void gemm_accumulate(double alpha, const Matrix& a, const Matrix& b, Matrix& c);

/// y = A * x.
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         const std::vector<double>& x);

/// y = A^T * x.
[[nodiscard]] std::vector<double> matvec_transposed(
    const Matrix& a, const std::vector<double>& x);

/// Dot product.
[[nodiscard]] double dot(const std::vector<double>& x,
                         const std::vector<double>& y);

/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Euclidean norm.
[[nodiscard]] double norm2(const std::vector<double>& x);

}  // namespace tbmd::linalg
