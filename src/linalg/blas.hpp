#pragma once

/// \file blas.hpp
/// \brief BLAS-like dense kernels (OpenMP-parallel where profitable).
///
/// These are the building blocks the electronic-structure layer leans on:
/// GEMM for general products, SYRK/SYR2K rank-k updates for the density
/// matrix (rho = B B^T) and the blocked tridiagonalization's trailing
/// update, GEMV/SYMV for iterative methods, and a handful of level-1
/// helpers.  All level-3 kernels share the same cache tiling (see blas.cpp);
/// the symmetric kernels compute only the lower triangle and mirror.

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// C = A * B (shapes must conform).  Cache-blocked, OpenMP-parallel.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C += alpha * A * B.  C must already have the product shape.
void gemm_accumulate(double alpha, const Matrix& a, const Matrix& b, Matrix& c);

/// Symmetric rank-k update C = alpha * A * A^T + beta * C.  A is n x k and
/// may be rectangular (k != n); C must be n x n.  Only the lower triangle
/// is computed (cache-blocked over lower-triangle tile pairs, parallel over
/// tiles), then mirrored, so C is exactly symmetric on return.
void syrk(double alpha, const Matrix& a, double beta, Matrix& c);

/// Symmetric rank-2k update C = alpha * (A * B^T + B * A^T) + beta * C with
/// A and B both n x k; C must be n x n.  Exactly symmetric on return.
void syr2k(double alpha, const Matrix& a, const Matrix& b, double beta,
           Matrix& c);

/// Raw-pointer building block of syrk: accumulate the lower triangle only,
///   C(i, j) += alpha * sum_c A(i, c) * A(j, c)   for 0 <= j <= i < n,
/// with leading dimensions lda/ldc.  Lets callers (blocked_tridiag) update
/// a trailing submatrix in place without copying it out.
void syrk_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                std::size_t lda, double* c, std::size_t ldc);

/// Raw-pointer building block of syr2k: lower triangle only,
///   C(i, j) += alpha * sum_c [A(i, c) * B(j, c) + B(i, c) * A(j, c)].
void syr2k_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc);

/// Tiny dense tile product C += A * B for bs x bs row-major blocks (the
/// inner kernel of the block-sparse SpMM in src/onx).  Dispatch table over
/// the orbital block sizes of the shipped models: bs == 1 (s-only), bs == 4
/// (sp, fully unrolled so the compiler keeps the 4-wide C row in registers)
/// and bs == 9 (spd) each get a dedicated path; other sizes fall back to
/// the generic triple loop.
void gemm_micro_add(std::size_t bs, const double* a, const double* b,
                    double* c);

/// Transpose-flagged variant C += op(A) * op(B) with op(X) = X or X^T per
/// flag.  The mirrored-tile kernel of the symmetric-half block-sparse SpMM:
/// a half-stored symmetric matrix keeps only tiles (I, J) with J >= I, so
/// products drawing on the lower half read the stored mirror tile
/// transposed.  All four transpose combinations are fully unrolled at
/// bs == 4, with dedicated bs == 1 and bs == 9 paths like gemm_micro_add;
/// (false, false) is exactly gemm_micro_add.  Accumulation order
/// per output element is k-major in every variant, so results are
/// bit-reproducible across the symbolic/numeric SpMM phases.
void gemm_micro_add_t(std::size_t bs, bool transpose_a, bool transpose_b,
                      const double* a, const double* b, double* c);

/// Rectangular tile product C += op(A) * op(B) for the variable-block
/// (mixed-orbital) block-sparse SpMM: op(A) is m x k, op(B) is k x n and C
/// is m x n, all row-major with their natural leading dimensions (the
/// stored tile of a transposed operand is k x m resp. n x k).  Dispatches
/// to the fully unrolled square kernels when m == k == n (1, 4 and 9 -- the
/// s, sp and spd orbital blocks -- are unrolled; see gemm_micro_add) and to
/// a generic loop otherwise.  Accumulation order per output element is
/// k-major in every path, so mixed-tile products are bit-reproducible
/// across the symbolic/numeric SpMM phases just like the uniform ones.
void gemm_micro_add_rect(std::size_t m, std::size_t k, std::size_t n,
                         bool transpose_a, bool transpose_b, const double* a,
                         const double* b, double* c);

/// Squared Frobenius norm of a bs x bs row-major tile (block truncation
/// criterion of the block-sparse layer).
[[nodiscard]] double tile_norm2(std::size_t bs, const double* a);

/// Squared Frobenius norm of an m x n row-major tile (mixed-block variant).
[[nodiscard]] double tile_norm2_rect(std::size_t m, std::size_t n,
                                     const double* a);

// ---------------------------------------------------------------------------
// fp32 tile kernel family (mixed-precision purification).
//
// The loose-early purification iterations run their SpMM on fp32 tiles --
// half the memory traffic exactly where the numeric phase is
// bandwidth-bound -- and the fp32 kernels mirror the fp64 family's
// contracts: k-major accumulation per output element in every variant, so
// warm/cold and cross-thread results stay bit-identical within a given
// binary.  The square kernels are built on explicit lane vectors (GNU
// vector extensions): lanes are independent output elements, so
// vectorization never reorders any element's k-accumulation (the PR 6
// codegen lesson), and unlike `#pragma omp simd` -- which GCC lowers to
// scalarized fma chains for 4-float trip counts -- the lane type guarantees
// packed ps arithmetic.  Defined inline so the SpMM sweep's per-product
// call disappears: at ~7 ns per 4x4 tile product the call overhead is a
// measurable fraction of the kernel itself.  The fp64 kernels above are
// textually untouched so the pure-fp64 path's code (and its bit pattern)
// cannot drift.
// ---------------------------------------------------------------------------

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
#define TBMD_F32_VEC_EXT 1
/// Lane vectors for the fp32 micro-kernels.  `aligned(4)` keeps loads
/// unaligned-safe for stack repack tiles; `may_alias` licenses viewing the
/// tiles' float storage through the vector type.
typedef float v4sf __attribute__((vector_size(16), aligned(4), may_alias));
typedef float v8sf __attribute__((vector_size(32), aligned(4), may_alias));
typedef double v4df __attribute__((vector_size(32), aligned(8), may_alias));
#endif

/// Compile-time-sized fp32 square tile product, k-major per output element,
/// with B in row-major (k, j) layout so the j-lanes are unit stride.
/// Portable fallback; specialized below for the lane-vector fast paths.
template <std::size_t N>
inline void micro_add_square_f32_nn(bool transpose_a, const float* a,
                                    const float* b, float* c) {
  for (std::size_t i = 0; i < N; ++i) {
    float acc[N] = {};
    for (std::size_t k = 0; k < N; ++k) {
      const float aik = transpose_a ? a[N * k + i] : a[N * i + k];
      const float* bk = b + N * k;
      for (std::size_t j = 0; j < N; ++j) acc[j] += aik * bk[j];
    }
    float* ci = c + N * i;
    for (std::size_t j = 0; j < N; ++j) ci[j] += acc[j];
  }
}

#ifdef TBMD_F32_VEC_EXT

/// 4x4 fp32 tile product: each C row is one 4-lane vector accumulator; the
/// k-loop broadcasts A(i, k) and multiply-adds B's row k.  Per lane this is
/// exactly the scalar k-major sum, so results are bit-identical to the
/// reference stride walk.
template <>
inline void micro_add_square_f32_nn<4>(bool transpose_a, const float* a,
                                       const float* b, float* c) {
  v4sf brow[4];
  __builtin_memcpy(&brow, b, sizeof brow);
  for (std::size_t i = 0; i < 4; ++i) {
    v4sf acc = {};
    for (std::size_t k = 0; k < 4; ++k) {
      const float aik = transpose_a ? a[4 * k + i] : a[4 * i + k];
      acc += aik * brow[k];
    }
    float* ci = c + 4 * i;
    v4sf cv;
    __builtin_memcpy(&cv, ci, sizeof cv);
    cv += acc;
    __builtin_memcpy(ci, &cv, sizeof cv);
  }
}

/// 9x9 fp32 tile product: an 8-lane vector accumulator plus one scalar tail
/// lane per output row; every lane (and the tail) accumulates in k-major
/// scalar order.
template <>
inline void micro_add_square_f32_nn<9>(bool transpose_a, const float* a,
                                       const float* b, float* c) {
  for (std::size_t i = 0; i < 9; ++i) {
    v8sf acc = {};
    float tail = 0.0f;
    for (std::size_t k = 0; k < 9; ++k) {
      const float aik = transpose_a ? a[9 * k + i] : a[9 * i + k];
      const float* bk = b + 9 * k;
      v8sf bv;
      __builtin_memcpy(&bv, bk, sizeof bv);
      acc += aik * bv;
      tail += aik * bk[8];
    }
    float* ci = c + 9 * i;
    v8sf cv;
    __builtin_memcpy(&cv, ci, sizeof cv);
    cv += acc;
    __builtin_memcpy(ci, &cv, sizeof cv);
    ci[8] += tail;
  }
}

#endif  // TBMD_F32_VEC_EXT

/// Transpose dispatch for the square fp32 kernel.  A transposed B is
/// repacked into a contiguous stack tile first (N^2 moves against N^3
/// multiplies) so the hot j-loop keeps unit-stride loads instead of the
/// stride-N gathers a transpose-aware inner loop would force.  Repacking
/// moves values, never reorders an element's k-accumulation: results are
/// bit-identical to the strided walk.
template <std::size_t N>
inline void micro_add_square_f32(bool transpose_a, bool transpose_b,
                                 const float* a, const float* b, float* c) {
  if (!transpose_b) {
    micro_add_square_f32_nn<N>(transpose_a, a, b, c);
    return;
  }
  float bt[N * N];
  for (std::size_t k = 0; k < N; ++k) {
    for (std::size_t j = 0; j < N; ++j) bt[N * k + j] = b[N * j + k];
  }
  micro_add_square_f32_nn<N>(transpose_a, a, bt, c);
}

}  // namespace detail

/// Generic-reference fp32 tile product: the plain triple loop with no
/// unrolled dispatch, the `simd = off` arm of the NumericsSpec A/B switch.
/// Per-element accumulation is k-major like every other kernel, so the
/// switch never changes a bit of a fixed-precision result, only its speed.
inline void gemm_micro_add_rect_f32_ref(std::size_t m, std::size_t k,
                                        std::size_t n, bool transpose_a,
                                        bool transpose_b, const float* a,
                                        const float* b, float* c) {
  const std::size_t a_row = transpose_a ? 1 : k;
  const std::size_t a_col = transpose_a ? m : 1;
  const std::size_t b_row = transpose_b ? 1 : n;
  const std::size_t b_col = transpose_b ? k : 1;
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a + a_row * i;
    float* ci = c + n * i;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b + b_col * j;
      float s = 0.0f;
      for (std::size_t q = 0; q < k; ++q) {
        s += ai[a_col * q] * bj[b_row * q];
      }
      ci[j] += s;
    }
  }
}

/// Transpose-flagged fp32 tile product C += op(A) * op(B) for bs x bs
/// row-major tiles (bs in {1, 4, 9} on lane-vector fast paths, generic
/// fallback otherwise).
inline void gemm_micro_add_t_f32(std::size_t bs, bool transpose_a,
                                 bool transpose_b, const float* a,
                                 const float* b, float* c) {
  if (bs == 4) {
    detail::micro_add_square_f32<4>(transpose_a, transpose_b, a, b, c);
    return;
  }
  if (bs == 1) {
    c[0] += a[0] * b[0];  // a 1 x 1 tile is its own transpose
    return;
  }
  if (bs == 9) {
    detail::micro_add_square_f32<9>(transpose_a, transpose_b, a, b, c);
    return;
  }
  gemm_micro_add_rect_f32_ref(bs, bs, bs, transpose_a, transpose_b, a, b, c);
}

/// C += A * B for bs x bs row-major fp32 tiles; exactly
/// gemm_micro_add_t_f32(bs, false, false, ...).
inline void gemm_micro_add_f32(std::size_t bs, const float* a, const float* b,
                               float* c) {
  gemm_micro_add_t_f32(bs, false, false, a, b, c);
}

/// Rectangular fp32 tile product for the variable-block SpMM (see
/// gemm_micro_add_rect).
inline void gemm_micro_add_rect_f32(std::size_t m, std::size_t k,
                                    std::size_t n, bool transpose_a,
                                    bool transpose_b, const float* a,
                                    const float* b, float* c) {
  if (m == k && k == n) {
    gemm_micro_add_t_f32(m, transpose_a, transpose_b, a, b, c);
    return;
  }
  gemm_micro_add_rect_f32_ref(m, k, n, transpose_a, transpose_b, a, b, c);
}

/// Squared Frobenius norm of an m x n fp32 tile, accumulated in double
/// (truncation thresholds are fp64 quantities in both precision modes, and
/// a float sum over a 9 x 9 tile already loses bits that matter near the
/// keep/drop boundary).  The lane-vector variant accumulates four double
/// lanes and reduces them in a fixed order: a different (but deterministic
/// and thread-count-invariant) summation than the plain serial loop, chosen
/// because the serial double chain is the gather phase's latency bottleneck.
[[nodiscard]] inline double tile_norm2_rect_f32(std::size_t m, std::size_t n,
                                                const float* a) {
  const std::size_t sz = m * n;
#ifdef TBMD_F32_VEC_EXT
  detail::v4df acc = {};
  std::size_t q = 0;
  for (; q + 4 <= sz; q += 4) {
    const detail::v4df x = {static_cast<double>(a[q]),
                            static_cast<double>(a[q + 1]),
                            static_cast<double>(a[q + 2]),
                            static_cast<double>(a[q + 3])};
    acc += x * x;
  }
  double s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (; q < sz; ++q) {
    s += static_cast<double>(a[q]) * static_cast<double>(a[q]);
  }
  return s;
#else
  double s = 0.0;
  for (std::size_t q = 0; q < sz; ++q) {
    s += static_cast<double>(a[q]) * static_cast<double>(a[q]);
  }
  return s;
#endif
}

/// Squared Frobenius norm of a bs x bs fp32 tile.
[[nodiscard]] inline double tile_norm2_f32(std::size_t bs, const float* a) {
  return tile_norm2_rect_f32(bs, bs, a);
}

/// y = A * x.
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         const std::vector<double>& x);

/// y = A^T * x.
[[nodiscard]] std::vector<double> matvec_transposed(
    const Matrix& a, const std::vector<double>& x);

/// Dot product.
[[nodiscard]] double dot(const std::vector<double>& x,
                         const std::vector<double>& y);

/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Euclidean norm.
[[nodiscard]] double norm2(const std::vector<double>& x);

}  // namespace tbmd::linalg
