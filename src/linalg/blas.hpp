#pragma once

/// \file blas.hpp
/// \brief BLAS-like dense kernels (OpenMP-parallel where profitable).
///
/// These are the building blocks the electronic-structure layer leans on:
/// GEMM for general products, SYRK/SYR2K rank-k updates for the density
/// matrix (rho = B B^T) and the blocked tridiagonalization's trailing
/// update, GEMV/SYMV for iterative methods, and a handful of level-1
/// helpers.  All level-3 kernels share the same cache tiling (see blas.cpp);
/// the symmetric kernels compute only the lower triangle and mirror.

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// C = A * B (shapes must conform).  Cache-blocked, OpenMP-parallel.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C += alpha * A * B.  C must already have the product shape.
void gemm_accumulate(double alpha, const Matrix& a, const Matrix& b, Matrix& c);

/// Symmetric rank-k update C = alpha * A * A^T + beta * C.  A is n x k and
/// may be rectangular (k != n); C must be n x n.  Only the lower triangle
/// is computed (cache-blocked over lower-triangle tile pairs, parallel over
/// tiles), then mirrored, so C is exactly symmetric on return.
void syrk(double alpha, const Matrix& a, double beta, Matrix& c);

/// Symmetric rank-2k update C = alpha * (A * B^T + B * A^T) + beta * C with
/// A and B both n x k; C must be n x n.  Exactly symmetric on return.
void syr2k(double alpha, const Matrix& a, const Matrix& b, double beta,
           Matrix& c);

/// Raw-pointer building block of syrk: accumulate the lower triangle only,
///   C(i, j) += alpha * sum_c A(i, c) * A(j, c)   for 0 <= j <= i < n,
/// with leading dimensions lda/ldc.  Lets callers (blocked_tridiag) update
/// a trailing submatrix in place without copying it out.
void syrk_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                std::size_t lda, double* c, std::size_t ldc);

/// Raw-pointer building block of syr2k: lower triangle only,
///   C(i, j) += alpha * sum_c [A(i, c) * B(j, c) + B(i, c) * A(j, c)].
void syr2k_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc);

/// Tiny dense tile product C += A * B for bs x bs row-major blocks (the
/// inner kernel of the block-sparse SpMM in src/onx).  The bs == 4 case --
/// the natural s/p orbital block of the tight-binding models -- is fully
/// unrolled so the compiler keeps the 4-wide C row in registers; other
/// sizes fall back to the generic triple loop.
void gemm_micro_add(std::size_t bs, const double* a, const double* b,
                    double* c);

/// Transpose-flagged variant C += op(A) * op(B) with op(X) = X or X^T per
/// flag.  The mirrored-tile kernel of the symmetric-half block-sparse SpMM:
/// a half-stored symmetric matrix keeps only tiles (I, J) with J >= I, so
/// products drawing on the lower half read the stored mirror tile
/// transposed.  All four transpose combinations are fully unrolled at
/// bs == 4; (false, false) is exactly gemm_micro_add.  Accumulation order
/// per output element is k-major in every variant, so results are
/// bit-reproducible across the symbolic/numeric SpMM phases.
void gemm_micro_add_t(std::size_t bs, bool transpose_a, bool transpose_b,
                      const double* a, const double* b, double* c);

/// Squared Frobenius norm of a bs x bs row-major tile (block truncation
/// criterion of the block-sparse layer).
[[nodiscard]] double tile_norm2(std::size_t bs, const double* a);

/// y = A * x.
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         const std::vector<double>& x);

/// y = A^T * x.
[[nodiscard]] std::vector<double> matvec_transposed(
    const Matrix& a, const std::vector<double>& x);

/// Dot product.
[[nodiscard]] double dot(const std::vector<double>& x,
                         const std::vector<double>& y);

/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Euclidean norm.
[[nodiscard]] double norm2(const std::vector<double>& x);

}  // namespace tbmd::linalg
