#pragma once

/// \file blas.hpp
/// \brief BLAS-like dense kernels (OpenMP-parallel where profitable).
///
/// These are the building blocks the electronic-structure layer leans on:
/// GEMM for general products, SYRK/SYR2K rank-k updates for the density
/// matrix (rho = B B^T) and the blocked tridiagonalization's trailing
/// update, GEMV/SYMV for iterative methods, and a handful of level-1
/// helpers.  All level-3 kernels share the same cache tiling (see blas.cpp);
/// the symmetric kernels compute only the lower triangle and mirror.

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// C = A * B (shapes must conform).  Cache-blocked, OpenMP-parallel.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C += alpha * A * B.  C must already have the product shape.
void gemm_accumulate(double alpha, const Matrix& a, const Matrix& b, Matrix& c);

/// Symmetric rank-k update C = alpha * A * A^T + beta * C.  A is n x k and
/// may be rectangular (k != n); C must be n x n.  Only the lower triangle
/// is computed (cache-blocked over lower-triangle tile pairs, parallel over
/// tiles), then mirrored, so C is exactly symmetric on return.
void syrk(double alpha, const Matrix& a, double beta, Matrix& c);

/// Symmetric rank-2k update C = alpha * (A * B^T + B * A^T) + beta * C with
/// A and B both n x k; C must be n x n.  Exactly symmetric on return.
void syr2k(double alpha, const Matrix& a, const Matrix& b, double beta,
           Matrix& c);

/// Raw-pointer building block of syrk: accumulate the lower triangle only,
///   C(i, j) += alpha * sum_c A(i, c) * A(j, c)   for 0 <= j <= i < n,
/// with leading dimensions lda/ldc.  Lets callers (blocked_tridiag) update
/// a trailing submatrix in place without copying it out.
void syrk_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                std::size_t lda, double* c, std::size_t ldc);

/// Raw-pointer building block of syr2k: lower triangle only,
///   C(i, j) += alpha * sum_c [A(i, c) * B(j, c) + B(i, c) * A(j, c)].
void syr2k_lower(std::size_t n, std::size_t k, double alpha, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc);

/// Tiny dense tile product C += A * B for bs x bs row-major blocks (the
/// inner kernel of the block-sparse SpMM in src/onx).  Dispatch table over
/// the orbital block sizes of the shipped models: bs == 1 (s-only), bs == 4
/// (sp, fully unrolled so the compiler keeps the 4-wide C row in registers)
/// and bs == 9 (spd) each get a dedicated path; other sizes fall back to
/// the generic triple loop.
void gemm_micro_add(std::size_t bs, const double* a, const double* b,
                    double* c);

/// Transpose-flagged variant C += op(A) * op(B) with op(X) = X or X^T per
/// flag.  The mirrored-tile kernel of the symmetric-half block-sparse SpMM:
/// a half-stored symmetric matrix keeps only tiles (I, J) with J >= I, so
/// products drawing on the lower half read the stored mirror tile
/// transposed.  All four transpose combinations are fully unrolled at
/// bs == 4, with dedicated bs == 1 and bs == 9 paths like gemm_micro_add;
/// (false, false) is exactly gemm_micro_add.  Accumulation order
/// per output element is k-major in every variant, so results are
/// bit-reproducible across the symbolic/numeric SpMM phases.
void gemm_micro_add_t(std::size_t bs, bool transpose_a, bool transpose_b,
                      const double* a, const double* b, double* c);

/// Rectangular tile product C += op(A) * op(B) for the variable-block
/// (mixed-orbital) block-sparse SpMM: op(A) is m x k, op(B) is k x n and C
/// is m x n, all row-major with their natural leading dimensions (the
/// stored tile of a transposed operand is k x m resp. n x k).  Dispatches
/// to the fully unrolled square kernels when m == k == n (1, 4 and 9 -- the
/// s, sp and spd orbital blocks -- are unrolled; see gemm_micro_add) and to
/// a generic loop otherwise.  Accumulation order per output element is
/// k-major in every path, so mixed-tile products are bit-reproducible
/// across the symbolic/numeric SpMM phases just like the uniform ones.
void gemm_micro_add_rect(std::size_t m, std::size_t k, std::size_t n,
                         bool transpose_a, bool transpose_b, const double* a,
                         const double* b, double* c);

/// Squared Frobenius norm of a bs x bs row-major tile (block truncation
/// criterion of the block-sparse layer).
[[nodiscard]] double tile_norm2(std::size_t bs, const double* a);

/// Squared Frobenius norm of an m x n row-major tile (mixed-block variant).
[[nodiscard]] double tile_norm2_rect(std::size_t m, std::size_t n,
                                     const double* a);

/// y = A * x.
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         const std::vector<double>& x);

/// y = A^T * x.
[[nodiscard]] std::vector<double> matvec_transposed(
    const Matrix& a, const std::vector<double>& x);

/// Dot product.
[[nodiscard]] double dot(const std::vector<double>& x,
                         const std::vector<double>& y);

/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Euclidean norm.
[[nodiscard]] double norm2(const std::vector<double>& x);

}  // namespace tbmd::linalg
