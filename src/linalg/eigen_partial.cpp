#include "src/linalg/eigen_partial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/linalg/blas.hpp"
#include "src/linalg/blocked_tridiag.hpp"
#include "src/linalg/spectral_bounds.hpp"
#include "src/linalg/tridiagonal.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"
#include "src/util/random.hpp"

namespace tbmd::linalg {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

/// LU factorization of T - shift with partial pivoting (LAPACK xGTTRF
/// layout: multipliers dl, diagonal u0, first/second superdiagonals u1/u2).
/// Pivots smaller than `floor` are clamped so shifts at (or numerically
/// inside) the spectrum stay solvable -- exactly what inverse iteration
/// wants: the solution then explodes along the eigenvector.
struct TridiagLu {
  std::vector<double> dl, u0, u1, u2;
  std::vector<char> swapped;

  void factor(const std::vector<double>& d, const std::vector<double>& e,
              double shift, double floor) {
    const std::size_t n = d.size();
    dl.assign(n > 0 ? n - 1 : 0, 0.0);
    u0.resize(n);
    u1.assign(n > 0 ? n - 1 : 0, 0.0);
    u2.assign(n > 1 ? n - 2 : 0, 0.0);
    swapped.assign(n > 0 ? n - 1 : 0, 0);
    for (std::size_t i = 0; i < n; ++i) u0[i] = d[i] - shift;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      dl[i] = e[i + 1];
      u1[i] = e[i + 1];
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (std::fabs(u0[i]) >= std::fabs(dl[i])) {
        if (std::fabs(u0[i]) < floor) {
          u0[i] = (u0[i] >= 0.0) ? floor : -floor;
        }
        const double fact = dl[i] / u0[i];
        dl[i] = fact;
        u0[i + 1] -= fact * u1[i];
        if (i + 2 < n) u2[i] = 0.0;
        swapped[i] = 0;
      } else {
        // |dl[i]| > |u0[i]| >= 0, so the pivot is safely nonzero.
        const double fact = u0[i] / dl[i];
        u0[i] = dl[i];
        dl[i] = fact;
        const double temp = u1[i];
        u1[i] = u0[i + 1];
        u0[i + 1] = temp - fact * u0[i + 1];
        if (i + 2 < n) {
          u2[i] = u1[i + 1];
          u1[i + 1] = -fact * u1[i + 1];
        }
        swapped[i] = 1;
      }
    }
    if (n > 0 && std::fabs(u0[n - 1]) < floor) {
      u0[n - 1] = (u0[n - 1] >= 0.0) ? floor : -floor;
    }
  }

  void solve(std::vector<double>& b) const {
    const std::size_t n = u0.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (swapped[i]) {
        const double temp = b[i];
        b[i] = b[i + 1];
        b[i + 1] = temp - dl[i] * b[i];
      } else {
        b[i + 1] -= dl[i] * b[i];
      }
    }
    b[n - 1] /= u0[n - 1];
    if (n == 1) return;
    b[n - 2] = (b[n - 2] - u1[n - 2] * b[n - 1]) / u0[n - 2];
    for (std::size_t i = n - 2; i-- > 0;) {
      b[i] = (b[i] - u1[i] * b[i + 1] - u2[i] * b[i + 2]) / u0[i];
    }
  }
};

/// || (T - lambda) x ||_inf for the e[i] = T(i, i-1) convention.
double tridiag_residual_inf(const std::vector<double>& d,
                            const std::vector<double>& e, double lambda,
                            const std::vector<double>& x) {
  const std::size_t n = d.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = (d[i] - lambda) * x[i];
    if (i > 0) r += e[i] * x[i - 1];
    if (i + 1 < n) r += e[i + 1] * x[i + 1];
    worst = std::max(worst, std::fabs(r));
  }
  return worst;
}

double rayleigh_quotient(const std::vector<double>& d,
                         const std::vector<double>& e,
                         const std::vector<double>& x) {
  const std::size_t n = d.size();
  double rho = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double tx = d[i] * x[i];
    if (i > 0) tx += e[i] * x[i - 1];
    if (i + 1 < n) tx += e[i + 1] * x[i + 1];
    rho += x[i] * tx;
  }
  return rho;  // x is unit-norm
}

void fill_random_unit(std::vector<double>& x, std::uint64_t seed) {
  Rng rng(seed);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const double nrm = norm2(x);
  for (double& v : x) v /= nrm;
}

/// Bisection is preferred when the requested slice is a small enough
/// fraction of the spectrum (its cost is ~m sweeps of n divisions, against
/// one O(n^2) values-only QL pass), or when enough threads are available
/// that the embarrassingly parallel bisections win anyway.
bool prefer_bisection(std::size_t n, std::size_t m) {
  const auto threads = static_cast<std::size_t>(par::max_threads());
  return m * 16 <= n * threads;
}

struct InvitParams {
  double pivot_floor = 0.0;
  double res_tol = 0.0;
  double sep = 0.0;
};

/// One inverse-iteration eigenvector of the (sub)tridiagonal (db, eb),
/// solved at shift `lam_solve`, accepted against `lam_true`, written into
/// z(row0 .. row0+len-1, col) and left in `x`.  Orthogonalized (modified
/// Gram-Schmidt, every iteration) against the columns listed in `mgs`,
/// which must share the same row support.
void invit_column(const std::vector<double>& db, const std::vector<double>& eb,
                  double lam_solve, double lam_true, const InvitParams& prm,
                  std::uint64_t seed, Matrix& z, std::size_t row0,
                  std::size_t col, const std::vector<std::size_t>& mgs,
                  std::vector<double>& x) {
  const std::size_t len = db.size();
  TridiagLu lu;
  lu.factor(db, eb, lam_solve, prm.pivot_floor);
  x.resize(len);
  fill_random_unit(x, seed);

  const auto orthogonalize = [&]() {
    for (const std::size_t prev : mgs) {
      double proj = 0.0;
      for (std::size_t i = 0; i < len; ++i) proj += z(row0 + i, prev) * x[i];
      for (std::size_t i = 0; i < len; ++i) x[i] -= proj * z(row0 + i, prev);
    }
  };

  bool have_solution = false;
  for (int iter = 0; iter < 5; ++iter) {
    lu.solve(x);
    const double pre_mgs = norm2(x);
    orthogonalize();
    const double nrm = norm2(x);
    if (!std::isfinite(nrm) || nrm == 0.0 || nrm <= 1.0e-2 * pre_mgs) {
      // Start vector was (nearly) inside the span of earlier cluster
      // members; retry from a fresh random direction.
      fill_random_unit(x, seed ^ (0xfeedfaceULL + 7ULL * (iter + 1)));
      have_solution = false;
      continue;
    }
    for (double& v : x) v /= nrm;
    have_solution = true;
    if (tridiag_residual_inf(db, eb, lam_true, x) <= prm.res_tol) break;
  }
  if (!have_solution) {
    // The loop ended right after a random reinjection: never hand back a
    // vector that is not a solve result.  One more guarded solve; the
    // clamped pivots make it well-defined for any shift.
    lu.solve(x);
    orthogonalize();
    const double nrm = norm2(x);
    if (std::isfinite(nrm) && nrm > 0.0) {
      for (double& v : x) v /= nrm;
    } else {
      fill_random_unit(x, seed ^ 0x5afe5afeULL);  // last-resort unit column
    }
  }
  for (std::size_t i = 0; i < len; ++i) z(row0 + i, col) = x[i];
}

}  // namespace

std::vector<double> tridiagonal_eigenvalues_range(
    const std::vector<double>& d, const std::vector<double>& e,
    std::size_t il, std::size_t iu) {
  const std::size_t n = d.size();
  TBMD_REQUIRE(e.size() == n, "eigenvalues_range: d/e size mismatch");
  TBMD_REQUIRE(il <= iu && iu < n, "eigenvalues_range: bad index range");

  const SpectralBounds bounds = gershgorin_bounds(d, e);
  const double scale = std::max(bounds.scale(), 1.0e-30);
  const double tol = 2.0 * kEps * scale;
  const std::size_t m = iu - il + 1;
  std::vector<double> out(m);

  [[maybe_unused]] const bool par =
      par::max_threads() > 1 && par::worth_parallelizing(m, 64 * n);
#pragma omp parallel for schedule(dynamic, 1) if (par)
  for (std::size_t k = il; k <= iu; ++k) {
    double lo = bounds.lo;
    double hi = bounds.hi;
    while (hi - lo > tol) {
      const double mid = 0.5 * (lo + hi);
      if (mid <= lo || mid >= hi) break;  // interval at ulp resolution
      if (sturm_count(d, e, mid) > k) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    out[k - il] = 0.5 * (lo + hi);
  }
  return out;
}

Matrix tridiagonal_eigenvectors(const std::vector<double>& d,
                                const std::vector<double>& e,
                                std::vector<double>& values,
                                std::size_t il) {
  const std::size_t n = d.size();
  const std::size_t m = values.size();
  TBMD_REQUIRE(e.size() == n, "eigenvectors: d/e size mismatch");
  TBMD_REQUIRE(m >= 1 && m <= n, "eigenvectors: bad eigenvalue count");
  TBMD_REQUIRE(std::is_sorted(values.begin(), values.end()),
               "eigenvectors: eigenvalues must be ascending");

  Matrix z(n, m, 0.0);
  if (n == 1) {
    z(0, 0) = 1.0;
    return z;
  }

  const SpectralBounds bounds = gershgorin_bounds(d, e);
  const double bnorm = std::max(bounds.scale(), 1.0e-30);
  const double ortol = 1.0e-3 * bnorm;  // cluster gap threshold (xSTEIN)
  InvitParams prm;
  prm.pivot_floor = kEps * bnorm;
  prm.res_tol = (16.0 + std::sqrt(static_cast<double>(n))) * kEps * bnorm;
  prm.sep = 10.0 * kEps * bnorm;  // in-cluster shift separation

  // Irreducible blocks: split where the subdiagonal is negligible, so that
  // eigenvectors stay confined to their own block and uncoupled subsystems
  // stay uncoupled (the xSTEIN convention).  Without the split, degenerate
  // levels shared by several blocks would come out as arbitrary cross-block
  // mixtures.
  std::vector<std::size_t> blocks{0};
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(e[i]) <= kEps * (std::fabs(d[i - 1]) + std::fabs(d[i]))) {
      blocks.push_back(i);
    }
  }
  blocks.push_back(n);
  const bool single_block = blocks.size() == 2;

  // Cluster boundaries: a new cluster starts at each gap > ortol.
  std::vector<std::size_t> starts{0};
  for (std::size_t j = 1; j < m; ++j) {
    if (values[j] - values[j - 1] > ortol) starts.push_back(j);
  }
  starts.push_back(m);
  const std::size_t nclusters = starts.size() - 1;

  // Degenerate cluster spread over several irreducible blocks: recover the
  // per-block multiplicities by block-local Sturm counts, bisect each
  // member inside its own block, and inverse-iterate there.  Returns false
  // (fall back to the whole-matrix path) for single-block clusters or when
  // the bookkeeping is inconsistent.
  const auto cluster_by_blocks = [&](std::size_t a, std::size_t b) -> bool {
    const std::size_t csize = b - a;
    const double lo = values[a] - 0.5 * ortol;
    const double hi = values[b - 1] + 0.5 * ortol;

    struct BlockHit {
      std::size_t block_index;  // into `blocks`
      std::size_t first_local;  // index of the first member inside the block
      std::size_t count;
    };
    std::vector<BlockHit> hits;
    std::size_t below_total = 0;  // eigenvalues of the whole T below `lo`
    for (std::size_t bb = 0; bb + 1 < blocks.size(); ++bb) {
      const std::size_t c_lo =
          sturm_count(d, e, blocks[bb], blocks[bb + 1], lo);
      const std::size_t c_hi =
          sturm_count(d, e, blocks[bb], blocks[bb + 1], hi);
      below_total += c_lo;
      if (c_hi > c_lo) hits.push_back({bb, c_lo, c_hi - c_lo});
    }
    if (hits.size() <= 1) return false;

    // A partial-spectrum request may start mid-cluster: line the requested
    // global indices up against the cluster's full membership.
    const std::size_t first_requested = il + a;
    if (first_requested < below_total) return false;
    const std::size_t offset = first_requested - below_total;

    struct Member {
      double lam = 0.0;
      std::size_t hit = 0;  // into `hits`
    };
    std::vector<Member> members;
    std::vector<std::vector<double>> dbs(hits.size()), ebs(hits.size());
    for (std::size_t h = 0; h < hits.size(); ++h) {
      const std::size_t s = blocks[hits[h].block_index];
      const std::size_t t = blocks[hits[h].block_index + 1];
      dbs[h].assign(d.begin() + static_cast<std::ptrdiff_t>(s),
                    d.begin() + static_cast<std::ptrdiff_t>(t));
      ebs[h].assign(t - s, 0.0);
      for (std::size_t i = s + 1; i < t; ++i) ebs[h][i - s] = e[i];
      for (std::size_t k = 0; k < hits[h].count; ++k) {
        members.push_back(
            {tridiagonal_eigenvalue(dbs[h], ebs[h], hits[h].first_local + k),
             h});
      }
    }
    std::stable_sort(members.begin(), members.end(),
                     [](const Member& p, const Member& q) {
                       return p.lam < q.lam;
                     });
    if (offset + csize > members.size()) return false;

    // Inverse-iterate each requested member inside its block; MGS only
    // among same-block siblings (cross-block columns are orthogonal by
    // construction, their supports are disjoint).
    std::vector<std::vector<std::size_t>> done(hits.size());
    std::vector<double> lam_prev(hits.size(), 0.0);
    std::vector<char> has_prev(hits.size(), 0);
    std::vector<double> x;
    for (std::size_t j = 0; j < csize; ++j) {
      const Member& mem = members[offset + j];
      const std::size_t h = mem.hit;
      double lam = mem.lam;
      if (has_prev[h]) lam = std::max(lam, lam_prev[h] + prm.sep);
      lam_prev[h] = lam;
      has_prev[h] = 1;
      const std::size_t col = a + j;
      invit_column(dbs[h], ebs[h], lam, mem.lam, prm,
                   0x7bd5c0de + 0x9e3779b9ULL * col, z,
                   blocks[hits[h].block_index], col, done[h], x);
      done[h].push_back(col);
    }
    return true;
  };

  [[maybe_unused]] const bool par =
      par::max_threads() > 1 && par::worth_parallelizing(m, 32 * n);
#pragma omp parallel for schedule(dynamic, 1) if (par)
  for (std::size_t cl = 0; cl < nclusters; ++cl) {
    const std::size_t a = starts[cl];
    const std::size_t b = starts[cl + 1];
    const bool isolated = (b - a) == 1;

    if (!isolated && !single_block && cluster_by_blocks(a, b)) continue;

    std::vector<double> x;
    std::vector<std::size_t> mgs;
    double lam_prev = 0.0;
    for (std::size_t idx = a; idx < b; ++idx) {
      double lam = values[idx];
      if (idx > a) lam = std::max(lam, lam_prev + prm.sep);
      lam_prev = lam;

      invit_column(d, e, lam, values[idx], prm,
                   0x7bd5c0de + 0x9e3779b9ULL * idx, z, 0, idx, mgs, x);
      if (!isolated) mgs.push_back(idx);

      if (isolated) {
        // One Rayleigh-quotient polish: re-solve at the quotient shift and
        // report the refined eigenvalue.  This drives the residual from
        // O(eps ||T||) down to the gap-limited optimum, which matters for
        // graded matrices whose small eigenvalues sit far below ||T||.
        const double rho = rayleigh_quotient(d, e, x);
        if (std::fabs(rho - values[idx]) <= ortol) {
          TridiagLu lu;
          lu.factor(d, e, rho, prm.pivot_floor);
          std::vector<double> xs = x;
          lu.solve(xs);
          const double nrm = norm2(xs);
          if (std::isfinite(nrm) && nrm > 0.0) {
            for (double& v : xs) v /= nrm;
            // Adopt the refined eigenvalue only when it strictly lowers the
            // residual: exactly representable eigenvalues (e.g. a diagonal
            // matrix) then stay bit-exact instead of picking up noise.
            const double rho2 = rayleigh_quotient(d, e, xs);
            if (std::fabs(rho2 - values[idx]) <= ortol &&
                tridiag_residual_inf(d, e, rho2, xs) <
                    tridiag_residual_inf(d, e, values[idx], xs)) {
              values[idx] = rho2;
              for (std::size_t i = 0; i < n; ++i) z(i, idx) = xs[i];
            } else if (tridiag_residual_inf(d, e, values[idx], xs) <=
                       tridiag_residual_inf(d, e, values[idx], x)) {
              for (std::size_t i = 0; i < n; ++i) z(i, idx) = xs[i];
            }
          }
        }
      }
    }
  }
  return z;
}

namespace {

SymmetricEigenSolution sorted_solution(std::vector<double> values, Matrix z) {
  // Rayleigh refinement can nudge near-tied values out of order; restore the
  // ascending contract (and matching column order) when that happens.
  if (!std::is_sorted(values.begin(), values.end())) {
    const std::size_t m = values.size();
    std::vector<std::size_t> perm(m);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(), [&](std::size_t p, std::size_t q) {
      return values[p] < values[q];
    });
    std::vector<double> sorted_vals(m);
    Matrix sorted_z(z.rows(), m);
    for (std::size_t j = 0; j < m; ++j) {
      sorted_vals[j] = values[perm[j]];
      for (std::size_t i = 0; i < z.rows(); ++i) {
        sorted_z(i, j) = z(i, perm[j]);
      }
    }
    values = std::move(sorted_vals);
    z = std::move(sorted_z);
  }
  SymmetricEigenSolution out;
  out.values = std::move(values);
  out.vectors = std::move(z);
  return out;
}

std::vector<double> tridiag_values_subset(const std::vector<double>& d,
                                          const std::vector<double>& e,
                                          std::size_t il, std::size_t iu) {
  const std::size_t n = d.size();
  const std::size_t m = iu - il + 1;
  if (prefer_bisection(n, m)) {
    return tridiagonal_eigenvalues_range(d, e, il, iu);
  }
  std::vector<double> dd = d;
  std::vector<double> ee = e;
  tql_implicit_shift(dd, ee, nullptr);
  std::sort(dd.begin(), dd.end());
  return {dd.begin() + static_cast<std::ptrdiff_t>(il),
          dd.begin() + static_cast<std::ptrdiff_t>(iu) + 1};
}

}  // namespace

SymmetricEigenSolution eigh_range(const Matrix& a, std::size_t il,
                                  std::size_t iu) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(n == a.cols(), "eigh_range: matrix must be square");
  TBMD_REQUIRE(il <= iu && iu < n, "eigh_range: bad index range");
  if (n == 1) {
    SymmetricEigenSolution out;
    out.values = {a(0, 0)};
    out.vectors = Matrix::identity(1);
    return out;
  }

  const TridiagFactorization fact = blocked_tridiagonalize(a);
  std::vector<double> values = tridiag_values_subset(fact.d, fact.e, il, iu);
  Matrix z = tridiagonal_eigenvectors(fact.d, fact.e, values, il);
  apply_q(fact, z);
  return sorted_solution(std::move(values), std::move(z));
}

std::vector<double> eigvalsh_range(const Matrix& a, std::size_t il,
                                   std::size_t iu) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(n == a.cols(), "eigvalsh_range: matrix must be square");
  TBMD_REQUIRE(il <= iu && iu < n, "eigvalsh_range: bad index range");
  if (n == 1) return {a(0, 0)};
  const TridiagFactorization fact = blocked_tridiagonalize(a);
  return tridiag_values_subset(fact.d, fact.e, il, iu);
}

}  // namespace tbmd::linalg
