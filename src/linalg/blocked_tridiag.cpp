#include "src/linalg/blocked_tridiag.hpp"

#include <algorithm>
#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::linalg {

namespace {

/// Minimum trailing dimension before the symv / rank-2k loops fork threads.
constexpr std::size_t kParallelCutoff = 128;

/// y = A_sym * v for the trailing submatrix rows/cols [lo, n), reading only
/// the lower triangle of `a`.  Streams each row once (every stored element
/// is used for both its (i,j) and (j,i) role), so the kernel runs at memory
/// bandwidth.  `v` and `y` are full-length buffers; entries outside [lo, n)
/// are ignored / left untouched.
void symv_lower(const Matrix& a, std::size_t lo, const double* v, double* y) {
  const std::size_t n = a.rows();
  for (std::size_t i = lo; i < n; ++i) y[i] = 0.0;
  const std::size_t len = n - lo;
  [[maybe_unused]] const bool par =
      len >= kParallelCutoff && par::max_threads() > 1;
#pragma omp parallel for schedule(dynamic, 32) reduction(+ : y[lo : len]) \
    if (par)
  for (std::size_t i = lo; i < n; ++i) {
    const double* row = a.row(i);
    const double vi = v[i];
    double s = row[i] * vi;
    for (std::size_t k = lo; k < i; ++k) {
      s += row[k] * v[k];
      y[k] += row[k] * vi;
    }
    y[i] += s;
  }
}

}  // namespace

TridiagFactorization blocked_tridiagonalize(const Matrix& a,
                                            std::size_t block) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(n == a.cols(), "blocked_tridiagonalize: matrix must be square");
  TBMD_REQUIRE(block >= 1, "blocked_tridiagonalize: block must be >= 1");

  TridiagFactorization f;
  f.reflectors = a;
  f.tau.assign(n, 0.0);
  f.d.assign(n, 0.0);
  f.e.assign(n, 0.0);
  if (n == 0) return f;
  if (n == 1) {
    f.d[0] = a(0, 0);
    return f;
  }

  Matrix& r = f.reflectors;
  const std::size_t nrefl = n - 2;  // reflectors for columns 0 .. n-3
  const std::size_t nb = std::min<std::size_t>(block, std::max<std::size_t>(nrefl, 1));

  Matrix w(n, nb, 0.0);             // accumulated couplings W for the panel
  std::vector<double> v(n, 0.0);    // contiguous copy of the current reflector
  std::vector<double> y(n, 0.0);    // symv result / scratch
  std::vector<double> vrow(nb), wrow(nb), tmp1(nb), tmp2(nb);

  for (std::size_t p = 0; p < nrefl; p += nb) {
    const std::size_t pw = std::min(nb, nrefl - p);
    w.fill(0.0);

    for (std::size_t jj = 0; jj < pw; ++jj) {
      const std::size_t j = p + jj;

      // Apply the panel's pending rank-2 updates to column j (rows j..n-1):
      // a(:, j) -= V W(j, :)^T + W V(j, :)^T.
      if (jj > 0) {
        for (std::size_t c = 0; c < jj; ++c) {
          vrow[c] = r(j, p + c);
          wrow[c] = w(j, c);
        }
        for (std::size_t i = j; i < n; ++i) {
          const double* ri = r.row(i);
          const double* wi = w.row(i);
          double s = r(i, j);
          for (std::size_t c = 0; c < jj; ++c) {
            s -= ri[p + c] * wrow[c] + wi[c] * vrow[c];
          }
          r(i, j) = s;
        }
      }
      f.d[j] = r(j, j);

      // Generate the Householder reflector annihilating a(j+2:n, j).
      const double alpha = r(j + 1, j);
      double sigma = 0.0;
      for (std::size_t i = j + 2; i < n; ++i) sigma += r(i, j) * r(i, j);
      if (sigma == 0.0) {
        f.e[j + 1] = alpha;
        f.tau[j] = 0.0;
        r(j + 1, j) = 1.0;  // v = e1; harmless since tau = 0 makes H = I
      } else {
        const double beta =
            (alpha >= 0.0) ? -std::sqrt(alpha * alpha + sigma)
                           : std::sqrt(alpha * alpha + sigma);
        f.tau[j] = (beta - alpha) / beta;
        const double scale = 1.0 / (alpha - beta);
        for (std::size_t i = j + 2; i < n; ++i) r(i, j) *= scale;
        r(j + 1, j) = 1.0;
        f.e[j + 1] = beta;
      }

      // W(:, jj) = tau * (A_j v - 0.5 tau (v^T A_j v) v), where A_j is the
      // trailing matrix with the panel's pending updates folded in through
      // the V/W correction terms (stored entries are pre-update).
      for (std::size_t i = j + 1; i < n; ++i) v[i] = r(i, j);
      symv_lower(r, j + 1, v.data(), y.data());
      if (jj > 0) {
        for (std::size_t c = 0; c < jj; ++c) {
          double s1 = 0.0, s2 = 0.0;
          for (std::size_t i = j + 1; i < n; ++i) {
            s1 += w(i, c) * v[i];
            s2 += r(i, p + c) * v[i];
          }
          tmp1[c] = s1;
          tmp2[c] = s2;
        }
        for (std::size_t i = j + 1; i < n; ++i) {
          const double* ri = r.row(i);
          const double* wi = w.row(i);
          double s = y[i];
          for (std::size_t c = 0; c < jj; ++c) {
            s -= ri[p + c] * tmp1[c] + wi[c] * tmp2[c];
          }
          y[i] = s;
        }
      }
      const double tau = f.tau[j];
      double vy = 0.0;
      for (std::size_t i = j + 1; i < n; ++i) {
        y[i] *= tau;
        vy += y[i] * v[i];
      }
      const double corr = -0.5 * tau * vy;
      for (std::size_t i = j + 1; i < n; ++i) {
        w(i, jj) = y[i] + corr * v[i];
      }
    }

    // Deferred symmetric rank-2k trailing update (the level-3 bulk):
    // A(q:, q:) -= V W^T + W V^T on the lower triangle, q = p + pw, done by
    // the shared blas rank-2k tile kernel on the in-place submatrix views
    // V = r(q:, p:p+pw), W = w(q:, 0:pw), C = r(q:, q:).
    const std::size_t q0 = p + pw;
    syr2k_lower(n - q0, pw, -1.0, r.row(q0) + p, n, w.row(q0), nb,
                r.row(q0) + q0, n);
  }

  f.d[n - 2] = r(n - 2, n - 2);
  f.d[n - 1] = r(n - 1, n - 1);
  f.e[n - 1] = r(n - 1, n - 2);
  f.e[0] = 0.0;
  return f;
}

void apply_q(const TridiagFactorization& f, Matrix& z) {
  const std::size_t n = f.size();
  TBMD_REQUIRE(z.rows() == n, "apply_q: row count mismatch");
  if (n < 3 || z.cols() == 0) return;  // Q == I for n < 3

  const Matrix& r = f.reflectors;
  const std::size_t m = z.cols();
  const std::size_t nrefl = n - 2;
  constexpr std::size_t kNb = 32;

  Matrix t(kNb, kNb, 0.0);   // triangular factor of the WY block
  Matrix w1(kNb, m, 0.0);    // V^T Z, then T * (V^T Z)
  std::vector<double> s(kNb);

  // Q = B_0 B_1 ... B_L with forward-columnwise blocks B = I - V T V^T;
  // Q Z applies the blocks in reverse order.
  const std::size_t nblocks = (nrefl + kNb - 1) / kNb;
  for (std::size_t blk = nblocks; blk-- > 0;) {
    const std::size_t p = blk * kNb;
    const std::size_t pw = std::min(kNb, nrefl - p);

    // T factor (LARFT, forward columnwise): T(c,c) = tau_c,
    // T(0:c, c) = -tau_c T(0:c, 0:c) (V^T v_c)(0:c).  v_c is zero at and
    // above row p+c, so the dot products only run over rows p+c+1 .. n-1.
    for (std::size_t c = 0; c < pw; ++c) {
      const double tau_c = f.tau[p + c];
      for (std::size_t b = 0; b < c; ++b) {
        double dotv = 0.0;
        for (std::size_t i = p + c + 1; i < n; ++i) {
          dotv += r(i, p + b) * r(i, p + c);
        }
        s[b] = dotv;
      }
      for (std::size_t b = 0; b < c; ++b) {
        double acc = 0.0;
        for (std::size_t k = b; k < c; ++k) acc += t(b, k) * s[k];
        t(b, c) = -tau_c * acc;
      }
      t(c, c) = tau_c;
    }

    // W1 = V^T Z over rows p+1 .. n-1, streamed row-by-row; parallel over
    // column tiles of Z so each thread owns its W1 slice (no reduction).
    for (std::size_t c = 0; c < pw; ++c) {
      double* w1c = w1.row(c);
      for (std::size_t q = 0; q < m; ++q) w1c[q] = 0.0;
    }
    [[maybe_unused]] const bool par =
        par::max_threads() > 1 && n * m >= 64 * kParallelCutoff;
#pragma omp parallel if (par)
    {
      const int tid = par::thread_id();
      const int tcount = par::team_size();
      const std::size_t q_lo = m * static_cast<std::size_t>(tid) /
                               static_cast<std::size_t>(tcount);
      const std::size_t q_hi = m * (static_cast<std::size_t>(tid) + 1) /
                               static_cast<std::size_t>(tcount);
      for (std::size_t i = p + 1; i < n; ++i) {
        const double* ri = r.row(i);
        const double* zi = z.row(i);
        const std::size_t c_hi = std::min(pw, i - p);  // valid c: p+c+1 <= i
        for (std::size_t c = 0; c < c_hi; ++c) {
          const double coeff = ri[p + c];
          if (coeff == 0.0) continue;
          double* w1c = w1.row(c);
          for (std::size_t q = q_lo; q < q_hi; ++q) w1c[q] += coeff * zi[q];
        }
      }
#pragma omp barrier
      // W1 <- T * W1 (T upper triangular): done by thread 0's slice only in
      // serial fallback; under OpenMP each thread transforms its own tile.
      for (std::size_t b = 0; b < pw; ++b) {
        double* w1b = w1.row(b);
        for (std::size_t q = q_lo; q < q_hi; ++q) {
          double acc = t(b, b) * w1b[q];
          for (std::size_t c = b + 1; c < pw; ++c) {
            acc += t(b, c) * w1.row(c)[q];
          }
          w1b[q] = acc;
        }
      }
    }
    // The in-place triangular multiply above reads rows c > b while
    // overwriting row b; since T is upper triangular and b increases, rows
    // c > b are still untransformed when read -- exactly what T*W1 needs.

    // Z -= V * W1 over rows p+1 .. n-1.
#pragma omp parallel for schedule(static) if (par)
    for (std::size_t i = p + 1; i < n; ++i) {
      const double* ri = r.row(i);
      double* zi = z.row(i);
      const std::size_t c_hi = std::min(pw, i - p);
      for (std::size_t c = 0; c < c_hi; ++c) {
        const double coeff = ri[p + c];
        if (coeff == 0.0) continue;
        const double* w1c = w1.row(c);
        for (std::size_t q = 0; q < m; ++q) zi[q] -= coeff * w1c[q];
      }
    }
  }
}

Matrix form_q(const TridiagFactorization& f) {
  Matrix q = Matrix::identity(f.size());
  apply_q(f, q);
  return q;
}

}  // namespace tbmd::linalg
