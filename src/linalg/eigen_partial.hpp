#pragma once

/// \file eigen_partial.hpp
/// \brief Partial-spectrum symmetric eigensolver: blocked Householder
/// tridiagonalization, Sturm-bisection eigenvalues, inverse-iteration
/// eigenvectors, blocked back-transform.
///
/// A TBMD step only needs the occupied ~Ne/2 of N eigenpairs to form the
/// density matrix and the Hellmann-Feynman forces, so computing the full
/// spectrum at every timestep wastes more than half of the O(N^3) budget.
/// eigh_range() answers index-range queries [il, iu]: the reduction to
/// tridiagonal form is shared with the full solver, eigenvalues in the range
/// come from parallel Sturm bisection (or a values-only QL sweep when the
/// range covers most of the spectrum), eigenvectors from shifted inverse
/// iteration with cluster reorthogonalization, and the back-transform applies
/// the blocked WY reflectors only to the requested columns.

#include <cstddef>
#include <vector>

#include "src/linalg/eigen_sym.hpp"
#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// Eigenvalues k = il .. iu (0-based, ascending order) of the symmetric
/// tridiagonal matrix (diagonal `d`, subdiagonal `e` with e[i] = T(i, i-1),
/// e[0] unused) by Sturm-sequence bisection.  Bisections for distinct
/// indices are independent and run in parallel via tbmd::par.
[[nodiscard]] std::vector<double> tridiagonal_eigenvalues_range(
    const std::vector<double>& d, const std::vector<double>& e,
    std::size_t il, std::size_t iu);

/// Eigenvectors of the symmetric tridiagonal matrix for the given ascending
/// eigenvalues (the contiguous index range of the spectrum starting at
/// global index `il`), one per column of the returned n x m matrix, by
/// shifted inverse iteration.
///
/// Clustered eigenvalues (gap below ~1e-3 of the spectral width) are
/// perturbed apart for the factorizations and reorthogonalized by modified
/// Gram-Schmidt; the matrix is split into irreducible blocks at negligible
/// subdiagonals and clusters spanning several blocks are resolved
/// block-by-block so eigenvectors never mix uncoupled subsystems -- the
/// LAPACK xSTEIN treatment.  Isolated eigenpairs get one Rayleigh-quotient
/// polish step; `values` is updated in place with the refined eigenvalues
/// (never moved past a neighbor).  Independent clusters run in parallel via
/// tbmd::par.
[[nodiscard]] Matrix tridiagonal_eigenvectors(const std::vector<double>& d,
                                              const std::vector<double>& e,
                                              std::vector<double>& values,
                                              std::size_t il = 0);

/// Eigenpairs il .. iu (0-based indices into the ascending spectrum) of a
/// dense symmetric matrix.  `values` holds the iu - il + 1 requested
/// eigenvalues and column j of `vectors` the eigenvector of values[j].
/// eigh(a) is equivalent to eigh_range(a, 0, n-1).
[[nodiscard]] SymmetricEigenSolution eigh_range(const Matrix& a,
                                                std::size_t il,
                                                std::size_t iu);

/// Eigenvalues il .. iu only; no eigenvector or back-transform cost.
[[nodiscard]] std::vector<double> eigvalsh_range(const Matrix& a,
                                                 std::size_t il,
                                                 std::size_t iu);

}  // namespace tbmd::linalg
