#include "src/linalg/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.hpp"

namespace tbmd::linalg {

namespace {

double offdiagonal_norm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  }
  return std::sqrt(2.0 * s);
}

}  // namespace

SymmetricEigenSolution jacobi_eigh(const Matrix& a_in, double tol,
                                   int max_sweeps) {
  TBMD_REQUIRE(a_in.rows() == a_in.cols(), "jacobi: matrix must be square");
  const std::size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);

  const double anorm = std::max(frobenius_norm(a), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiagonal_norm(a) <= tol * anorm) {
      SymmetricEigenSolution out;
      out.values.resize(n);
      for (std::size_t i = 0; i < n; ++i) out.values[i] = a(i, i);
      out.vectors = std::move(v);
      // Sort ascending, permuting eigenvector columns to match.
      std::vector<std::size_t> perm(n);
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
        return out.values[x] < out.values[y];
      });
      SymmetricEigenSolution sorted;
      sorted.values.resize(n);
      sorted.vectors.resize(n, n);
      for (std::size_t j = 0; j < n; ++j) {
        sorted.values[j] = out.values[perm[j]];
        for (std::size_t i = 0; i < n; ++i) {
          sorted.vectors(i, j) = out.vectors(i, perm[j]);
        }
      }
      return sorted;
    }

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        // Smaller-root tangent for numerical stability.
        const double t = std::copysign(
            1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k != p && k != q) {
            const double akp = a(k, p);
            const double akq = a(k, q);
            a(k, p) = akp - s * (akq + tau * akp);
            a(p, k) = a(k, p);
            a(k, q) = akq + s * (akp - tau * akq);
            a(q, k) = a(k, q);
          }
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = vkp - s * (vkq + tau * vkp);
          v(k, q) = vkq + s * (vkp - tau * vkq);
        }
      }
    }
  }
  throw Error("jacobi_eigh: failed to converge within max_sweeps");
}

}  // namespace tbmd::linalg
