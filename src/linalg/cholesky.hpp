#pragma once

/// \file cholesky.hpp
/// \brief Cholesky factorization and triangular solves.
///
/// Used by the non-orthogonal tight-binding hooks (Loewdin-style reduction
/// of a generalized eigenproblem), by the E(V) quadratic fits in the
/// benchmark harness (normal equations), and as a positive-definiteness
/// probe in the test suite.

#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// Lower-triangular L with A = L L^T.  Throws tbmd::Error if A is not
/// (numerically) positive definite.
[[nodiscard]] Matrix cholesky_factor(const Matrix& a);

/// Solve A x = b given the Cholesky factor L of A (forward + back
/// substitution).
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& l,
                                                 const std::vector<double>& b);

/// Convenience: solve the linear least-squares problem min ||M x - y||_2 via
/// the normal equations M^T M x = M^T y.  Suitable for the small,
/// well-conditioned polynomial fits used by the experiment harness.
[[nodiscard]] std::vector<double> least_squares(const Matrix& m,
                                                const std::vector<double>& y);

}  // namespace tbmd::linalg
