#include "src/linalg/spectral_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::linalg {

double SpectralBounds::scale() const {
  return std::max(std::fabs(lo), std::fabs(hi));
}

SpectralBounds gershgorin_bounds(const Matrix& a) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(n == a.cols(), "gershgorin_bounds: matrix must be square");
  SpectralBounds b;
  if (n == 0) return b;
  b.lo = a(0, 0);
  b.hi = a(0, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = a.row(i);
    double radius = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) radius += std::fabs(row[j]);
    }
    b.lo = std::min(b.lo, row[i] - radius);
    b.hi = std::max(b.hi, row[i] + radius);
  }
  return b;
}

SpectralBounds gershgorin_bounds(const std::vector<double>& d,
                                 const std::vector<double>& e) {
  const std::size_t n = d.size();
  TBMD_REQUIRE(e.size() == n, "gershgorin_bounds: d/e size mismatch");
  SpectralBounds b;
  if (n == 0) return b;
  b.lo = d[0];
  b.hi = d[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double radius = (i > 0 ? std::fabs(e[i]) : 0.0) +
                          (i + 1 < n ? std::fabs(e[i + 1]) : 0.0);
    b.lo = std::min(b.lo, d[i] - radius);
    b.hi = std::max(b.hi, d[i] + radius);
  }
  return b;
}

}  // namespace tbmd::linalg
