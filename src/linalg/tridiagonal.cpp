#include "src/linalg/tridiagonal.hpp"

#include <algorithm>
#include <cmath>

#include "src/linalg/spectral_bounds.hpp"
#include "src/util/error.hpp"

namespace tbmd::linalg {

std::size_t sturm_count(const std::vector<double>& d,
                        const std::vector<double>& e, double x) {
  return sturm_count(d, e, 0, d.size(), x);
}

std::size_t sturm_count(const std::vector<double>& d,
                        const std::vector<double>& e, std::size_t s,
                        std::size_t t, double x) {
  TBMD_REQUIRE(e.size() == d.size(), "sturm_count: d/e size mismatch");
  TBMD_REQUIRE(s <= t && t <= d.size(), "sturm_count: bad block range");
  if (s == t) return 0;
  // Negative terms of the Sturm sequence q_i = d_i - x - e_i^2 / q_{i-1}
  // count the eigenvalues below x.
  std::size_t count = 0;
  double q = d[s] - x;
  if (q < 0.0) ++count;
  for (std::size_t i = s + 1; i < t; ++i) {
    const double denom = (q == 0.0) ? 2.3e-308 : q;
    q = d[i] - x - e[i] * e[i] / denom;
    if (q < 0.0) ++count;
  }
  return count;
}

double tridiagonal_eigenvalue(const std::vector<double>& d,
                              const std::vector<double>& e, std::size_t k,
                              double tol) {
  const std::size_t n = d.size();
  TBMD_REQUIRE(k < n, "tridiagonal_eigenvalue: index out of range");
  auto [lo, hi] = gershgorin_bounds(d, e);
  // Bisection on the Sturm count.
  while (hi - lo > tol * std::max(1.0, std::fabs(lo) + std::fabs(hi))) {
    const double mid = 0.5 * (lo + hi);
    if (sturm_count(d, e, mid) > k) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace tbmd::linalg
