#include "src/linalg/tridiagonal.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::linalg {

std::size_t sturm_count(const std::vector<double>& d,
                        const std::vector<double>& e, double x) {
  const std::size_t n = d.size();
  TBMD_REQUIRE(e.size() == n, "sturm_count: d/e size mismatch");
  if (n == 0) return 0;
  // Negative terms of the Sturm sequence q_i = d_i - x - e_i^2 / q_{i-1}
  // count the eigenvalues below x.
  std::size_t count = 0;
  double q = d[0] - x;
  if (q < 0.0) ++count;
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = (q == 0.0) ? 2.3e-308 : q;
    q = d[i] - x - e[i] * e[i] / denom;
    if (q < 0.0) ++count;
  }
  return count;
}

double tridiagonal_eigenvalue(const std::vector<double>& d,
                              const std::vector<double>& e, std::size_t k,
                              double tol) {
  const std::size_t n = d.size();
  TBMD_REQUIRE(k < n, "tridiagonal_eigenvalue: index out of range");
  // Gershgorin bounds.
  double lo = d[0], hi = d[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double r = (i > 0 ? std::fabs(e[i]) : 0.0) +
                     (i + 1 < n ? std::fabs(e[i + 1]) : 0.0);
    lo = std::min(lo, d[i] - r);
    hi = std::max(hi, d[i] + r);
  }
  // Bisection on the Sturm count.
  while (hi - lo > tol * std::max(1.0, std::fabs(lo) + std::fabs(hi))) {
    const double mid = 0.5 * (lo + hi);
    if (sturm_count(d, e, mid) > k) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace tbmd::linalg
