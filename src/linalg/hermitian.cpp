#include "src/linalg/hermitian.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::linalg {

namespace {

void check_hermitian_parts(const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(a.cols() == n && b.rows() == n && b.cols() == n,
               "eigh_hermitian: A and B must be square and same size");
  TBMD_REQUIRE(symmetry_defect(a) < 1e-9,
               "eigh_hermitian: real part must be symmetric");
  // Antisymmetry check: B + B^T ~ 0.
  double defect = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      defect = std::max(defect, std::fabs(b(i, j) + b(j, i)));
    }
  }
  TBMD_REQUIRE(defect < 1e-9, "eigh_hermitian: imag part must be antisymmetric");
}

Matrix embed(const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  Matrix m(2 * n, 2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = a(i, j);
      m(n + i, n + j) = a(i, j);
      m(i, n + j) = -b(i, j);
      m(n + i, j) = b(i, j);
    }
  }
  return m;
}

}  // namespace

HermitianEigenSolution eigh_hermitian(const Matrix& a, const Matrix& b) {
  check_hermitian_parts(a, b);
  const std::size_t n = a.rows();
  const SymmetricEigenSolution full = eigh(embed(a, b));

  // Every eigenvalue of H appears twice in the embedding (ascending order
  // keeps the pairs adjacent); take one representative per pair.
  HermitianEigenSolution out;
  out.values.resize(n);
  out.vectors_real.resize(n, n);
  out.vectors_imag.resize(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = 0.5 * (full.values[2 * k] + full.values[2 * k + 1]);
    // Normalize the complex vector x + iy from the 2n-vector (x; y).
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = full.vectors(i, 2 * k);
      const double y = full.vectors(n + i, 2 * k);
      norm_sq += x * x + y * y;
    }
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors_real(i, k) = inv * full.vectors(i, 2 * k);
      out.vectors_imag(i, k) = inv * full.vectors(n + i, 2 * k);
    }
  }
  return out;
}

std::vector<double> eigvalsh_hermitian(const Matrix& a, const Matrix& b) {
  check_hermitian_parts(a, b);
  const std::size_t n = a.rows();
  const std::vector<double> full = eigvalsh(embed(a, b));
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = 0.5 * (full[2 * k] + full[2 * k + 1]);
  }
  return out;
}

}  // namespace tbmd::linalg
