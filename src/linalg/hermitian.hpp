#pragma once

/// \file hermitian.hpp
/// \brief Complex Hermitian eigensolver via the real-symmetric embedding.
///
/// A Hermitian matrix H = A + iB (A symmetric, B antisymmetric) embeds into
/// the real symmetric 2n x 2n matrix
///     M = [ A  -B ]
///         [ B   A ]
/// whose spectrum is that of H with every eigenvalue doubled; an eigenpair
/// (lambda, (x; y)) of M gives the eigenvector x + iy of H.  This reuses
/// the Householder+QL machinery and is how the k-space tight-binding layer
/// (tb/bloch.hpp) diagonalizes H(k).

#include <vector>

#include "src/linalg/eigen_sym.hpp"
#include "src/linalg/matrix.hpp"

namespace tbmd::linalg {

/// Eigenvalues (ascending) and eigenvectors of a Hermitian matrix
/// H = A + iB.  Column j of (vectors_real, vectors_imag) is the complex
/// eigenvector for values[j].
struct HermitianEigenSolution {
  std::vector<double> values;
  Matrix vectors_real;
  Matrix vectors_imag;
};

/// Full eigendecomposition of H = a + i*b.
///
/// Requires a symmetric, b antisymmetric, both n x n (validated).  Cost is
/// one real symmetric solve of size 2n.
[[nodiscard]] HermitianEigenSolution eigh_hermitian(const Matrix& a,
                                                    const Matrix& b);

/// Eigenvalues only (ascending).
[[nodiscard]] std::vector<double> eigvalsh_hermitian(const Matrix& a,
                                                     const Matrix& b);

}  // namespace tbmd::linalg
