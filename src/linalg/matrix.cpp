#include "src/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace tbmd::linalg {

Matrix& Matrix::operator+=(const Matrix& o) {
  TBMD_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  TBMD_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

double max_abs(const Matrix& a) {
  double m = 0.0;
  const double* p = a.data();
  const std::size_t n = a.rows() * a.cols();
  for (std::size_t k = 0; k < n; ++k) m = std::max(m, std::fabs(p[k]));
  return m;
}

double frobenius_norm(const Matrix& a) {
  double s = 0.0;
  const double* p = a.data();
  const std::size_t n = a.rows() * a.cols();
  for (std::size_t k = 0; k < n; ++k) s += p[k] * p[k];
  return std::sqrt(s);
}

double symmetry_defect(const Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "symmetry_defect requires square matrix");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(a(i, j) - a(j, i)));
    }
  }
  return m;
}

void symmetrize(Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "symmetrize requires square matrix");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  }
}

double trace(const Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "trace requires square matrix");
  double t = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) t += a(i, i);
  return t;
}

double trace_of_product(const Matrix& a, const Matrix& b) {
  TBMD_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols() &&
                   a.rows() == b.rows(),
               "trace_of_product requires square same-size matrices");
  // tr(AB) = sum_ij A(i,j) B(j,i)
  double t = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) t += arow[j] * b(j, i);
  }
  return t;
}

}  // namespace tbmd::linalg
