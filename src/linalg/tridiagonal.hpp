#pragma once

/// \file tridiagonal.hpp
/// \brief Symmetric tridiagonal utilities: Sturm-sequence eigenvalue counts
/// and bisection eigenvalues.
///
/// The Sturm count is used as an independent property-test oracle for the
/// QL eigensolver and for cheap integrated-density-of-states queries (how
/// many states below the Fermi level) without a full diagonalization.

#include <cstddef>
#include <vector>

namespace tbmd::linalg {

/// Number of eigenvalues of the symmetric tridiagonal matrix (diagonal d,
/// subdiagonal e with the convention e[i] = T(i, i-1), e[0] unused) that are
/// strictly less than x.
[[nodiscard]] std::size_t sturm_count(const std::vector<double>& d,
                                      const std::vector<double>& e, double x);

/// Same count restricted to the principal block rows/cols [s, t): the
/// coupling e[s] into the preceding block is ignored.  Used by the
/// inverse-iteration solver to attribute degenerate cluster members to the
/// irreducible blocks they belong to.
[[nodiscard]] std::size_t sturm_count(const std::vector<double>& d,
                                      const std::vector<double>& e,
                                      std::size_t s, std::size_t t, double x);

/// k-th smallest eigenvalue (0-based) of the symmetric tridiagonal matrix by
/// Sturm bisection, to absolute tolerance `tol`.
[[nodiscard]] double tridiagonal_eigenvalue(const std::vector<double>& d,
                                            const std::vector<double>& e,
                                            std::size_t k, double tol = 1e-12);

}  // namespace tbmd::linalg
