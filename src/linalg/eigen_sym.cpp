#include "src/linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/linalg/eigen_partial.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::linalg {

namespace {

/// Minimum (sub)matrix dimension before the Householder update loops are
/// worth forking threads for.
constexpr std::size_t kParallelCutoff = 96;

}  // namespace

void householder_tridiagonalize(Matrix& a, std::vector<double>& d,
                                std::vector<double>& e, bool accumulate) {
  const std::size_t n = a.rows();
  TBMD_REQUIRE(n == a.cols(), "householder: matrix must be square");
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;
  if (n == 1) {
    d[0] = a(0, 0);
    if (accumulate) a(0, 0) = 1.0;
    return;
  }

  // Phase 1: reduce rows n-1 .. 1.  `d[i]` temporarily stores the
  // Householder h for row i (needed by the accumulation phase).
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        const double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;

        // e[j] <- (A v)_j / h for the trailing submatrix (lower triangle is
        // authoritative).  Independent across j -> parallel.
        [[maybe_unused]] const bool par = (l + 1) >= kParallelCutoff;
#pragma omp parallel for schedule(dynamic, 16) if (par)
        for (std::size_t j = 0; j <= l; ++j) {
          if (accumulate) a(j, i) = a(i, j) / h;
          double gj = 0.0;
          for (std::size_t k = 0; k <= j; ++k) gj += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) gj += a(k, j) * a(i, k);
          e[j] = gj / h;
        }

        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) f += e[j] * a(i, j);
        const double hh = f / (h + h);

        // K = e - hh*v, then rank-2 update A <- A - v K^T - K v^T on the
        // lower triangle.  Update all of e first so row updates can run in
        // parallel.
        for (std::size_t j = 0; j <= l; ++j) e[j] -= hh * a(i, j);
#pragma omp parallel for schedule(dynamic, 16) if (par)
        for (std::size_t j = 0; j <= l; ++j) {
          const double fj = a(i, j);
          const double ej = e[j];
          double* arow = a.row(j);
          const double* virow = a.row(i);
          for (std::size_t k = 0; k <= j; ++k) {
            arow[k] -= fj * e[k] + ej * virow[k];
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;

  // Phase 2: accumulate transformations (Q) and extract the diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    if (accumulate) {
      if (d[i] != 0.0) {
        // Left-multiply the accumulated Q by this reflection.
        [[maybe_unused]] const bool par = i >= kParallelCutoff;
#pragma omp parallel for schedule(static) if (par)
        for (std::size_t j = 0; j < i; ++j) {
          double g = 0.0;
          for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
          for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
        }
      }
      d[i] = a(i, i);
      a(i, i) = 1.0;
      for (std::size_t j = 0; j < i; ++j) {
        a(j, i) = 0.0;
        a(i, j) = 0.0;
      }
    } else {
      d[i] = a(i, i);
    }
  }
}

void tql_implicit_shift(std::vector<double>& d, std::vector<double>& e,
                        Matrix* z) {
  const std::size_t n = d.size();
  TBMD_REQUIRE(e.size() == n, "tql: d/e size mismatch");
  if (z != nullptr) {
    TBMD_REQUIRE(z->rows() == n && z->cols() == n, "tql: z must be n x n");
  }
  if (n <= 1) return;

  // Shift the subdiagonal down by one: e[i] couples d[i] and d[i+1].
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  // Scratch for deferred rotation application (thread-parallel over rows).
  std::vector<double> sines, cosines;

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m;
    do {
      // Find the first negligible subdiagonal element at or after l.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 2.3e-16 * dd) break;
      }
      if (m != l) {
        TBMD_REQUIRE(iterations++ < 50, "tql: QL iteration did not converge");
        // Form the implicit shift from the 2x2 at the top of the block.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;

        sines.clear();
        cosines.clear();
        bool underflow = false;

        // Chase the bulge from m-1 down to l; record rotations so they can
        // be applied to the eigenvector rows in parallel afterwards.
        for (std::size_t ii = m; ii-- > l;) {
          double f = s * e[ii];
          const double b = c * e[ii];
          r = std::hypot(f, g);
          e[ii + 1] = r;
          if (r == 0.0) {
            // Deflate without finishing the sweep.
            d[ii + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[ii + 1] - p;
          r = (d[ii] - g) * s + 2.0 * c * b;
          p = s * r;
          d[ii + 1] = g + p;
          g = c * r - b;
          sines.push_back(s);
          cosines.push_back(c);
        }

        if (z != nullptr && !sines.empty()) {
          // Rotation q (q = 0 first recorded) acts on columns (i, i+1) with
          // i = m-1-q.  For a fixed row the column updates chain
          // sequentially, but rows are independent -> parallel over rows.
          Matrix& zz = *z;
          const std::size_t nrot = sines.size();
          [[maybe_unused]] const bool par = n * nrot >= 16384;
#pragma omp parallel for schedule(static) if (par)
          for (std::size_t k = 0; k < n; ++k) {
            double* zrow = zz.row(k);
            for (std::size_t q = 0; q < nrot; ++q) {
              const std::size_t i = m - 1 - q;
              const double sq = sines[q];
              const double cq = cosines[q];
              const double f = zrow[i + 1];
              zrow[i + 1] = sq * zrow[i] + cq * f;
              zrow[i] = cq * zrow[i] - sq * f;
            }
          }
        }

        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

namespace {

SymmetricEigenSolution sort_solution(std::vector<double> d, Matrix z,
                                     bool with_vectors) {
  const std::size_t n = d.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  SymmetricEigenSolution out;
  out.values.resize(n);
  for (std::size_t j = 0; j < n; ++j) out.values[j] = d[perm[j]];
  if (with_vectors) {
    out.vectors.resize(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double* zrow = z.row(i);
      double* orow = out.vectors.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] = zrow[perm[j]];
    }
  }
  return out;
}

}  // namespace

SymmetricEigenSolution eigh(const Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "eigh: matrix must be square");
  if (a.rows() == 0) return {};
  return eigh_range(a, 0, a.rows() - 1);
}

SymmetricEigenSolution eigh_ql(const Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "eigh_ql: matrix must be square");
  Matrix work = a;
  std::vector<double> d, e;
  householder_tridiagonalize(work, d, e, /*accumulate=*/true);
  tql_implicit_shift(d, e, &work);
  return sort_solution(std::move(d), std::move(work), /*with_vectors=*/true);
}

std::vector<double> eigvalsh(const Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "eigvalsh: matrix must be square");
  Matrix work = a;
  std::vector<double> d, e;
  householder_tridiagonalize(work, d, e, /*accumulate=*/false);
  tql_implicit_shift(d, e, nullptr);
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace tbmd::linalg
