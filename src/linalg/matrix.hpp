#pragma once

/// \file matrix.hpp
/// \brief Dense row-major matrix type used throughout the electronic
/// structure layer.
///
/// tbmd deliberately ships its own dense linear algebra: the 1994-era TBMD
/// codes this library reproduces relied on EISPACK/LAPACK-class Householder
/// eigensolvers, and reproducing the O(N^3) cost structure faithfully (and
/// parallelizing it) is part of the paper's contribution.  See
/// eigen_sym.hpp for the solver.

#include <cstddef>
#include <vector>

#include "src/util/error.hpp"

namespace tbmd::linalg {

/// Dense row-major matrix of doubles.
///
/// Storage is contiguous; `row(i)` returns a pointer to the i-th row so hot
/// kernels can iterate without bounds checks.  Element access via
/// `operator()` is unchecked in release builds (checked with TBMD_REQUIRE
/// only in the `at()` accessor).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// r x c matrix with every element set to `fill`.
  Matrix(std::size_t r, std::size_t c, double fill = 0.0)
      : rows_(r), cols_(c), data_(r * c, fill) {}

  /// n x n identity.
  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Checked element access (throws tbmd::Error when out of range).
  [[nodiscard]] double& at(std::size_t i, std::size_t j) {
    TBMD_REQUIRE(i < rows_ && j < cols_, "Matrix::at out of range");
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    TBMD_REQUIRE(i < rows_ && j < cols_, "Matrix::at out of range");
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i.
  [[nodiscard]] double* row(std::size_t i) { return data_.data() + i * cols_; }
  [[nodiscard]] const double* row(std::size_t i) const {
    return data_.data() + i * cols_;
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Set every element to `value`.
  void fill(double value) { data_.assign(data_.size(), value); }

  /// Resize to r x c, discarding contents (elements set to `fill`).
  void resize(std::size_t r, std::size_t c, double fill = 0.0) {
    rows_ = r;
    cols_ = c;
    data_.assign(r * c, fill);
  }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix transpose.
[[nodiscard]] Matrix transpose(const Matrix& a);

/// Largest absolute element.
[[nodiscard]] double max_abs(const Matrix& a);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(const Matrix& a);

/// Max |A(i,j) - A(j,i)|; 0 for an exactly symmetric matrix.
[[nodiscard]] double symmetry_defect(const Matrix& a);

/// Symmetrize in place: A <- (A + A^T)/2.  Must be square.
void symmetrize(Matrix& a);

/// Trace of a square matrix.
[[nodiscard]] double trace(const Matrix& a);

/// tr(A * B) for square same-size A, B, computed without forming A*B.
[[nodiscard]] double trace_of_product(const Matrix& a, const Matrix& b);

}  // namespace tbmd::linalg
