#include "src/linalg/cholesky.hpp"

#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/util/error.hpp"

namespace tbmd::linalg {

Matrix cholesky_factor(const Matrix& a) {
  TBMD_REQUIRE(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    TBMD_REQUIRE(diag > 0.0, "cholesky: matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b) {
  const std::size_t n = l.rows();
  TBMD_REQUIRE(l.cols() == n && b.size() == n, "cholesky_solve: shape mismatch");
  // Forward: L y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Backward: L^T x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& m,
                                  const std::vector<double>& y) {
  TBMD_REQUIRE(m.rows() == y.size(), "least_squares: row count mismatch");
  TBMD_REQUIRE(m.rows() >= m.cols(), "least_squares: underdetermined system");
  const std::size_t p = m.cols();
  Matrix mtm(p, p, 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row(i);
    for (std::size_t a = 0; a < p; ++a) {
      for (std::size_t b = 0; b <= a; ++b) mtm(a, b) += r[a] * r[b];
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a + 1; b < p; ++b) mtm(a, b) = mtm(b, a);
  }
  const std::vector<double> rhs = matvec_transposed(m, y);
  const Matrix l = cholesky_factor(mtm);
  return cholesky_solve(l, rhs);
}

}  // namespace tbmd::linalg
