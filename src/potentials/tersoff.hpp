#pragma once

/// \file tersoff.hpp
/// \brief Tersoff bond-order potential (classical baseline).
///
/// The era's standard classical model for Si and C, implemented with full
/// analytic three-body forces.  In the benchmark suite it provides the
/// "classical MD" cost/accuracy reference point against which the O(N^3)
/// TBMD and the O(N) density-matrix TBMD are compared.
///
/// Functional form (single element):
///   E      = 1/2 sum_{i != j} fC(r_ij) [ fR(r_ij) + b_ij fA(r_ij) ]
///   fR(r)  = A exp(-lambda1 r)
///   fA(r)  = -B exp(-lambda2 r)
///   b_ij   = (1 + beta^n zeta_ij^n)^(-1/(2n))
///   zeta   = sum_k fC(r_ik) g(theta_ijk) exp[lambda3^m (r_ij - r_ik)^m]
///   g(t)   = gamma (1 + c^2/d^2 - c^2/(d^2 + (h - cos t)^2))

#include "src/core/calculator.hpp"
#include "src/neighbor/neighbor_list.hpp"

namespace tbmd::potentials {

/// Tersoff parameter set (single element).
struct TersoffParams {
  double a = 0.0;        ///< A (eV)
  double b = 0.0;        ///< B (eV)
  double lambda1 = 0.0;  ///< 1/A
  double lambda2 = 0.0;  ///< 1/A
  double lambda3 = 0.0;  ///< 1/A
  double beta = 0.0;
  double n = 1.0;
  double c = 0.0;
  double d = 1.0;
  double h = 0.0;
  double gamma = 1.0;
  int m = 3;
  double r_cut = 0.0;    ///< R: cutoff center (A)
  double d_cut = 0.0;    ///< D: cutoff half-width (A)
  double skin = 0.5;     ///< Verlet skin (A)

  /// Hard cutoff R + D.
  [[nodiscard]] double outer_cutoff() const { return r_cut + d_cut; }
};

/// Tersoff T3 silicon (Phys. Rev. B 39, 5566 (1989)).
[[nodiscard]] TersoffParams tersoff_silicon();

/// Tersoff carbon (Phys. Rev. Lett. 61, 2879 (1988)).
[[nodiscard]] TersoffParams tersoff_carbon();

/// Classical Tersoff calculator with analytic forces.
class TersoffCalculator final : public Calculator {
 public:
  explicit TersoffCalculator(TersoffParams params);

  ForceResult compute(const System& system) override;

  [[nodiscard]] std::string name() const override { return "tersoff"; }

  [[nodiscard]] const TersoffParams& params() const { return params_; }

 private:
  TersoffParams params_;
  NeighborList list_;
};

}  // namespace tbmd::potentials
