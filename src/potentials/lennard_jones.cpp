#include "src/potentials/lennard_jones.hpp"

#include <cmath>

#include "src/util/parallel.hpp"

namespace tbmd::potentials {

LennardJonesCalculator::LennardJonesCalculator(LennardJonesParams params)
    : params_(params) {
  if (params_.shift_energy) {
    const double sr6 = std::pow(params_.sigma / params_.cutoff, 6);
    energy_shift_ = 4.0 * params_.epsilon * (sr6 * sr6 - sr6);
  }
}

ForceResult LennardJonesCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  result.forces.assign(n, Vec3{});
  if (n == 0) return result;

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {params_.cutoff, params_.skin});
  }

  auto t = timers_.scope("forces");
  const auto& pos = system.positions();
  const double rc2 = params_.cutoff * params_.cutoff;
  double energy = 0.0;

  // Partition by ATOM with a static schedule, not by half-pair index: the
  // pair count depends on when the Verlet list was last rebuilt, so a
  // pair-indexed partition changes the per-thread summation order between
  // a warm run and a checkpoint-resumed one.  Atom rows (sorted by
  // neighbor index) make the accumulation order a pure function of the
  // positions, which checkpoint bit-identity relies on.
  par::ThreadPartials<Vec3> fpartial(n);
  par::ThreadPartials<Mat3> wpartial(1);
  par::ThreadPartials<double> epartial(1);
#pragma omp parallel
  {
    Vec3* local = fpartial.local();
    Mat3& wlocal = *wpartial.local();
    double elocal = 0.0;
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < n; ++i) {
      for (const NeighborEntry& e : list_.neighbors(i)) {
        if (e.j <= i) continue;  // each unordered pair once, from its i end
        const Vec3 bond = pos[e.j] + e.shift - pos[i];
        const double r2 = norm2_sq(bond);
        if (r2 >= rc2) continue;
        const double inv_r2 = 1.0 / r2;
        const double sr2 = params_.sigma * params_.sigma * inv_r2;
        const double sr6 = sr2 * sr2 * sr2;
        const double sr12 = sr6 * sr6;
        elocal += 4.0 * params_.epsilon * (sr12 - sr6) - energy_shift_;
        // dV/dr * (1/r) = -24 eps (2 sr12 - sr6) / r^2
        const double w = -24.0 * params_.epsilon * (2.0 * sr12 - sr6) * inv_r2;
        const Vec3 f = w * bond;  // dE/dd with d = r_j - r_i
        local[i] += f;
        local[e.j] -= f;
        wlocal -= outer(bond, f);  // d (x) f_on_j
      }
    }
    *epartial.local() = elocal;
  }
  const Vec3* f = fpartial.reduce();
  for (std::size_t i = 0; i < n; ++i) result.forces[i] = f[i];
  energy += *epartial.reduce();
  result.virial += *wpartial.reduce();
  result.energy = energy;
  return result;
}

}  // namespace tbmd::potentials
