#pragma once

/// \file lennard_jones.hpp
/// \brief Lennard-Jones 12-6 pair potential (classical baseline).
///
/// The simplest classical comparator in the benchmark suite, and the
/// canonical test bed for the MD integrators (its energy conservation
/// properties are textbook material).

#include "src/core/calculator.hpp"
#include "src/neighbor/neighbor_list.hpp"

namespace tbmd::potentials {

/// LJ parameters.  Defaults are argon (eV / A).
struct LennardJonesParams {
  double epsilon = 0.0104;  ///< well depth (eV)
  double sigma = 3.40;      ///< zero-crossing distance (A)
  double cutoff = 8.5;      ///< interaction cutoff (A)
  double skin = 0.5;        ///< Verlet skin (A)
  bool shift_energy = true; ///< shift so V(cutoff) = 0 (removes the step)
};

/// Classical 12-6 Lennard-Jones calculator.
class LennardJonesCalculator final : public Calculator {
 public:
  explicit LennardJonesCalculator(LennardJonesParams params = {});

  ForceResult compute(const System& system) override;

  [[nodiscard]] std::string name() const override { return "lennard-jones"; }

  [[nodiscard]] const LennardJonesParams& params() const { return params_; }

 private:
  LennardJonesParams params_;
  NeighborList list_;
  double energy_shift_ = 0.0;
};

}  // namespace tbmd::potentials
