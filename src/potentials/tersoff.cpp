#include "src/potentials/tersoff.hpp"

#include <cmath>
#include <numbers>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::potentials {

TersoffParams tersoff_silicon() {
  TersoffParams p;
  p.a = 1830.8;
  p.b = 471.18;
  p.lambda1 = 2.4799;
  p.lambda2 = 1.73222;
  p.lambda3 = 0.0;
  p.beta = 1.1e-6;
  p.n = 0.78734;
  p.c = 100390.0;
  p.d = 16.217;
  p.h = -0.59825;
  p.gamma = 1.0;
  p.m = 3;
  p.r_cut = 2.85;
  p.d_cut = 0.15;
  return p;
}

TersoffParams tersoff_carbon() {
  TersoffParams p;
  p.a = 1393.6;
  p.b = 346.74;
  p.lambda1 = 3.4879;
  p.lambda2 = 2.2119;
  p.lambda3 = 0.0;
  p.beta = 1.5724e-7;
  p.n = 0.72751;
  p.c = 38049.0;
  p.d = 4.3484;
  p.h = -0.57058;
  p.gamma = 1.0;
  p.m = 3;
  p.r_cut = 1.95;
  p.d_cut = 0.15;
  return p;
}

namespace {

/// Smooth cutoff fC and its radial derivative.
struct Cut {
  double f = 0.0;
  double df = 0.0;
};

Cut cutoff_fn(const TersoffParams& p, double r) {
  const double lo = p.r_cut - p.d_cut;
  const double hi = p.r_cut + p.d_cut;
  if (r <= lo) return {1.0, 0.0};
  if (r >= hi) return {0.0, 0.0};
  const double arg = 0.5 * std::numbers::pi * (r - p.r_cut) / p.d_cut;
  return {0.5 - 0.5 * std::sin(arg),
          -0.25 * std::numbers::pi / p.d_cut * std::cos(arg)};
}

/// Angular function g(cos theta) and dg/dcos.
struct Ang {
  double g = 0.0;
  double dg = 0.0;
};

Ang angular_fn(const TersoffParams& p, double cos_t) {
  const double u = p.h - cos_t;
  const double den = p.d * p.d + u * u;
  const double c2 = p.c * p.c;
  return {p.gamma * (1.0 + c2 / (p.d * p.d) - c2 / den),
          -p.gamma * 2.0 * c2 * u / (den * den)};
}

}  // namespace

TersoffCalculator::TersoffCalculator(TersoffParams params) : params_(params) {
  TBMD_REQUIRE(params_.outer_cutoff() > 0.0, "tersoff: cutoff must be set");
}

ForceResult TersoffCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t natoms = system.size();
  result.forces.assign(natoms, Vec3{});
  if (natoms == 0) return result;

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {params_.outer_cutoff(), params_.skin});
  }

  auto t = timers_.scope("forces");
  const TersoffParams& p = params_;
  const auto& pos = system.positions();
  const double rc = p.outer_cutoff();
  double energy = 0.0;

  par::ThreadPartials<Vec3> fpartial(natoms);
  par::ThreadPartials<Mat3> wpartial(1);
  par::ThreadPartials<double> epartial(1);
#pragma omp parallel
  {
    Vec3* local = fpartial.local();
    Mat3& wlocal = *wpartial.local();
    double elocal = 0.0;

    // schedule(static), not dynamic: the thread-to-atom assignment must be
    // a pure function of the atom count so per-thread partial sums (and
    // hence the reduced forces) are reproducible across runs and restarts.
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < natoms; ++i) {
      const auto& nbrs = list_.neighbors(i);
      // Cache bond vectors and distances for atom i's neighborhood.
      std::vector<Vec3> dv(nbrs.size());
      std::vector<double> dist(nbrs.size());
      for (std::size_t a = 0; a < nbrs.size(); ++a) {
        dv[a] = pos[nbrs[a].j] + nbrs[a].shift - pos[i];
        dist[a] = norm(dv[a]);
      }

      for (std::size_t a = 0; a < nbrs.size(); ++a) {
        const double rij = dist[a];
        if (rij >= rc) continue;
        const std::size_t j = nbrs[a].j;
        const Vec3& dij = dv[a];
        const Cut fcij = cutoff_fn(p, rij);
        const double fr = p.a * std::exp(-p.lambda1 * rij);
        const double fa = -p.b * std::exp(-p.lambda2 * rij);
        const double dfr = -p.lambda1 * fr;
        const double dfa = -p.lambda2 * fa;

        // zeta_ij over third atoms k.
        double zeta = 0.0;
        for (std::size_t bq = 0; bq < nbrs.size(); ++bq) {
          if (bq == a) continue;
          const double rik = dist[bq];
          if (rik >= rc) continue;
          const Cut fcik = cutoff_fn(p, rik);
          if (fcik.f == 0.0) continue;
          const double cos_t = dot(dij, dv[bq]) / (rij * rik);
          const Ang ang = angular_fn(p, cos_t);
          double xi = 1.0;
          if (p.lambda3 != 0.0) {
            const double l3 = std::pow(p.lambda3, p.m);
            xi = std::exp(l3 * std::pow(rij - rik, p.m));
          }
          zeta += fcik.f * ang.g * xi;
        }

        // Bond order and its zeta-derivative.
        double bij = 1.0;
        double dbij_dzeta = 0.0;
        if (zeta > 0.0) {
          const double bz = std::pow(p.beta, p.n) * std::pow(zeta, p.n);
          const double base = 1.0 + bz;
          bij = std::pow(base, -1.0 / (2.0 * p.n));
          dbij_dzeta = -0.5 * bij / base * bz / zeta;
        }

        // Pair part: E_ij = 1/2 fC (fR + b fA).
        elocal += 0.5 * fcij.f * (fr + bij * fa);
        const double dpair =
            0.5 * (fcij.df * (fr + bij * fa) + fcij.f * (dfr + bij * dfa));
        const Vec3 upair = (dpair / rij) * dij;  // dE/dd_ij
        local[i] += upair;
        local[j] -= upair;
        wlocal -= outer(dij, upair);

        // Bond-order part: dE/dzeta * dzeta/d{d_ij, d_ik}.
        const double dez = 0.5 * fcij.f * fa * dbij_dzeta;
        if (dez == 0.0 || zeta == 0.0) continue;

        for (std::size_t bq = 0; bq < nbrs.size(); ++bq) {
          if (bq == a) continue;
          const double rik = dist[bq];
          if (rik >= rc) continue;
          const Cut fcik = cutoff_fn(p, rik);
          if (fcik.f == 0.0 && fcik.df == 0.0) continue;
          const std::size_t k = nbrs[bq].j;
          const Vec3& dik = dv[bq];
          const double cos_t = dot(dij, dik) / (rij * rik);
          const Ang ang = angular_fn(p, cos_t);

          double xi = 1.0;
          double dxi_drij = 0.0;
          double dxi_drik = 0.0;
          if (p.lambda3 != 0.0) {
            const double l3 = std::pow(p.lambda3, p.m);
            const double diff = rij - rik;
            xi = std::exp(l3 * std::pow(diff, p.m));
            const double slope =
                l3 * p.m * std::pow(diff, p.m - 1) * xi;
            dxi_drij = slope;
            dxi_drik = -slope;
          }

          // dcos/dd_ij and dcos/dd_ik.
          const Vec3 dcos_ddij =
              (1.0 / (rij * rik)) * dik - (cos_t / (rij * rij)) * dij;
          const Vec3 dcos_ddik =
              (1.0 / (rij * rik)) * dij - (cos_t / (rik * rik)) * dik;

          // zeta = fC(rik) g(cos) xi(rij, rik)
          const Vec3 dz_ddij = fcik.f * (ang.dg * xi * dcos_ddij +
                                         ang.g * dxi_drij * (1.0 / rij) * dij);
          const Vec3 dz_ddik =
              fcik.df * ang.g * xi * (1.0 / rik) * dik +
              fcik.f * ang.dg * xi * dcos_ddik +
              fcik.f * ang.g * dxi_drik * (1.0 / rik) * dik;

          const Vec3 fij = dez * dz_ddij;  // dE/dd_ij
          const Vec3 fik = dez * dz_ddik;  // dE/dd_ik
          local[i] += fij + fik;
          local[j] -= fij;
          local[k] -= fik;
          wlocal -= outer(dij, fij);
          wlocal -= outer(dik, fik);
        }
      }
    }

    *epartial.local() = elocal;
  }
  const Vec3* f = fpartial.reduce();
  for (std::size_t q = 0; q < natoms; ++q) result.forces[q] = f[q];
  energy += *epartial.reduce();
  result.virial += *wpartial.reduce();

  result.energy = energy;
  return result;
}

}  // namespace tbmd::potentials
