#pragma once

/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Used as the integrity check of the binary persistence formats (.ckpt
/// payloads, .tbt frames): a torn write or bit flip that still passes the
/// magic/version check is caught before garbage is resumed.  The
/// implementation is the standard table-driven byte-at-a-time loop -- the
/// checksummed payloads are KBs to low MBs per checkpoint/frame, far off
/// any hot path -- and has no dependencies, so both src/io and src/svc can
/// use it.

#include <cstddef>
#include <cstdint>

namespace tbmd {

/// Extend a running CRC-32 with `size` bytes.  Pass the previous call's
/// return value as `crc` to checksum discontiguous buffers as one stream;
/// start a fresh stream with crc = 0.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t size);

/// CRC-32 of one contiguous buffer (crc32("123456789", 9) == 0xCBF43926).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace tbmd
