#pragma once

/// \file fault_point.hpp
/// \brief Deterministic fault-injection registry.
///
/// A fault point is a named site in production code -- a torn checkpoint
/// write, a NaN poked into a purification tile, a worker throw -- that can
/// be armed to fire on an exact hit count.  The sites are compiled into
/// the release binary but inert by default: fire() is a single relaxed
/// atomic load when nothing is armed (no counting, no locking, no state),
/// so the default fp64 path stays bit-identical and effectively free with
/// fault points present.  Once any site is armed, every fire() takes a
/// mutex -- arming is a test/chaos-run mode, never a production default.
///
/// Determinism: a site fires on its k-th *hit* (1-based, process-global),
/// not on a timer or RNG, so a chaos test that arms "onx.nan_tile@3"
/// corrupts exactly the third purification run every time.  Arm via code
/// (tests), a JobSpec `faults` key, or the TBMD_FAULTS environment
/// variable; the spec grammar is a comma/whitespace-separated list of
///
///   site            fire on the first hit
///   site@k          fire on hit k only
///   site@k:c        fire on hits k .. k+c-1
///   site@0          fire on every hit
///
/// The registry is process-global (workers share it), which is exactly
/// what the chaos tests want: one armed plan, one deterministic failure.

#include <atomic>
#include <string>

namespace tbmd::fault {

// Canonical site names (keep in sync with README "Failure semantics").
inline constexpr const char* kCkptTornWrite = "ckpt.torn_write";
inline constexpr const char* kCkptCrashBeforeRename = "ckpt.crash_before_rename";
inline constexpr const char* kOnxNanTile = "onx.nan_tile";
inline constexpr const char* kOnxNoConverge = "onx.force_nonconverge";
inline constexpr const char* kSvcWorkerThrow = "svc.worker_throw";
inline constexpr const char* kSvcStall = "svc.stall";

namespace detail {
extern std::atomic<bool> g_armed;
[[nodiscard]] bool fire_slow(const char* site);
}  // namespace detail

/// Hit `site` once; true when the site is armed and this hit is within its
/// firing window.  The caller then performs its injected failure.  With
/// nothing armed this is one relaxed atomic load -- hits are not even
/// counted, so the disarmed binary is bit-identical to one without fault
/// points.
[[nodiscard]] inline bool fire(const char* site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::fire_slow(site);
}

/// Arm `site` to fire on hits [at_hit, at_hit + count) (1-based).
/// at_hit <= 0 fires on every hit.  Re-arming a site resets its counter.
void arm(const std::string& site, long at_hit = 1, long count = 1);

/// Arm every site in a spec string (see file docs for the grammar).
/// Throws tbmd::Error on malformed entries or unknown site names.
void arm_from_spec(const std::string& spec);

/// Drop every armed site and return fire() to the inert fast path.
void disarm_all();

/// Any site currently armed?
[[nodiscard]] bool any_armed();

/// Hits recorded for an armed site (0 when not armed; disarmed sites do
/// not count hits by design).
[[nodiscard]] long hits(const std::string& site);

/// Times an armed site actually fired.
[[nodiscard]] long fired(const std::string& site);

}  // namespace tbmd::fault
