#pragma once

/// \file string_util.hpp
/// \brief Small string helpers shared by the I/O and config layers.

#include <string>
#include <string_view>
#include <vector>

namespace tbmd {

/// Strip leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on any run of whitespace; empty tokens are never produced.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view s);

/// Split on a single delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Case-insensitive ASCII string equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parse a double, throwing tbmd::Error with context on failure.
[[nodiscard]] double parse_double(std::string_view token,
                                  std::string_view context);

/// Parse a long integer, throwing tbmd::Error with context on failure.
[[nodiscard]] long parse_long(std::string_view token,
                              std::string_view context);

}  // namespace tbmd
