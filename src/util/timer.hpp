#pragma once

/// \file timer.hpp
/// \brief Wall-clock timing utilities used by the benchmark harness and the
/// per-phase breakdown instrumentation of the MD engine.

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace tbmd {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall-clock time into named phases.  Used to produce the
/// per-phase breakdown tables (Hamiltonian build / diagonalization / forces /
/// integration) that SC-era TBMD papers report.
class PhaseTimers {
 public:
  /// RAII guard that charges elapsed time to a phase on destruction.
  class Scope {
   public:
    Scope(PhaseTimers& owner, std::string phase)
        : owner_(&owner), phase_(std::move(phase)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    PhaseTimers* owner_;
    std::string phase_;
    WallTimer timer_;
  };

  /// Start timing a phase; time is charged when the returned guard dies.
  [[nodiscard]] Scope scope(std::string phase) {
    return Scope(*this, std::move(phase));
  }

  /// Manually add seconds to a phase.
  void add(const std::string& phase, double seconds);

  /// Accumulated seconds for a phase (0 if never recorded).
  [[nodiscard]] double seconds(const std::string& phase) const;

  /// Total accumulated seconds across all phases.
  [[nodiscard]] double total() const;

  /// Phase names in insertion order.
  [[nodiscard]] const std::vector<std::string>& phases() const {
    return order_;
  }

  /// Zero all accumulators (phase set is retained).
  void reset();

 private:
  std::map<std::string, double> acc_;
  std::vector<std::string> order_;
};

}  // namespace tbmd
