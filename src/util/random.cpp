#include "src/util/random.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace tbmd {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * factor;
  have_cached_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

RngState Rng::state() const {
  RngState st;
  for (int k = 0; k < 4; ++k) st.s[k] = s_[k];
  st.have_cached = have_cached_;
  st.cached = cached_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int k = 0; k < 4; ++k) s_[k] = state.s[k];
  have_cached_ = state.have_cached;
  cached_ = state.cached;
}

std::uint64_t Rng::below(std::uint64_t n) {
  TBMD_REQUIRE(n > 0, "Rng::below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

}  // namespace tbmd
