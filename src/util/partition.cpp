#include "src/util/partition.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::par {

namespace {

DomainPartition identity_partition(std::size_t n, std::size_t ndomains) {
  DomainPartition part;
  part.order.resize(n);
  part.rank.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    part.order[k] = static_cast<std::uint32_t>(k);
    part.rank[k] = static_cast<std::uint32_t>(k);
  }
  part.identity = true;
  part.domain_ptr.resize(ndomains + 1);
  for (std::size_t d = 0; d <= ndomains; ++d) {
    part.domain_ptr[d] = (n * d) / ndomains;
  }
  return part;
}

}  // namespace

DomainPartition even_domains(std::size_t n, std::size_t ndomains) {
  if (ndomains == 0) ndomains = 1;
  return identity_partition(n, ndomains);
}

DomainPartition spatial_domains(const std::vector<Vec3>& positions,
                                const Cell& cell, std::size_t ndomains,
                                std::size_t target_atoms_per_cell) {
  const std::size_t n = positions.size();
  if (ndomains == 0) ndomains = 1;
  if (ndomains == 1 || n < 2 * ndomains) return identity_partition(n, 1);
  if (target_atoms_per_cell == 0) target_atoms_per_cell = 1;

  // Fractional coordinates; periodic axes wrap into [0, 1), open axes are
  // rescaled onto the bounding box so every atom lands on the grid.
  std::vector<Vec3> frac(n);
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 f = cell.to_fractional(positions[i]);
    if (cell.periodic(0)) f.x -= std::floor(f.x);
    if (cell.periodic(1)) f.y -= std::floor(f.y);
    if (cell.periodic(2)) f.z -= std::floor(f.z);
    frac[i] = f;
    lo.x = std::min(lo.x, f.x);
    lo.y = std::min(lo.y, f.y);
    lo.z = std::min(lo.z, f.z);
    hi.x = std::max(hi.x, f.x);
    hi.y = std::max(hi.y, f.y);
    hi.z = std::max(hi.z, f.z);
  }

  // Grid resolution: ~target_atoms_per_cell atoms per cell, with enough
  // cells along the sweep that the domain cuts (which land on grid-cell
  // boundaries) can realize `ndomains` non-degenerate chunks.
  const double want =
      std::cbrt(static_cast<double>(n) /
                static_cast<double>(target_atoms_per_cell));
  std::size_t g = static_cast<std::size_t>(std::llround(std::max(1.0, want)));
  while (g * g * g < ndomains) ++g;
  const std::size_t ncells = g * g * g;

  const auto bin = [g](double f, double fmin, double fmax) {
    const double span = fmax - fmin;
    double t = span > 0.0 ? (f - fmin) / span : 0.0;
    auto c = static_cast<std::size_t>(t * static_cast<double>(g));
    return std::min(c, g - 1);
  };

  // z-major sweep key: consecutive keys are spatially adjacent columns, so
  // contiguous runs of the sorted order are compact slabs/bricks.
  std::vector<std::size_t> key(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = bin(frac[i].x, lo.x, hi.x);
    const std::size_t cy = bin(frac[i].y, lo.y, hi.y);
    const std::size_t cz = bin(frac[i].z, lo.z, hi.z);
    key[i] = (cx * g + cy) * g + cz;
  }

  // Stable counting sort by cell key (ties keep original index order):
  // deterministic and thread-count independent by construction.
  std::vector<std::size_t> count(ncells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++count[key[i] + 1];
  for (std::size_t c = 0; c < ncells; ++c) count[c + 1] += count[c];
  DomainPartition part;
  part.order.resize(n);
  part.rank.resize(n);
  std::vector<std::size_t> cursor(count.begin(), count.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    part.order[cursor[key[i]]++] = static_cast<std::uint32_t>(i);
  }
  part.identity = true;
  for (std::size_t k = 0; k < n; ++k) {
    part.rank[part.order[k]] = static_cast<std::uint32_t>(k);
    if (part.order[k] != k) part.identity = false;
  }

  // Cut the sorted order into ndomains contiguous chunks at grid-cell
  // boundaries, greedily closing each domain at the first boundary that
  // reaches its proportional share of atoms.
  part.domain_ptr.assign(1, 0);
  std::size_t next = 1;
  for (std::size_t c = 0; c < ncells && next < ndomains; ++c) {
    const std::size_t upto = count[c + 1];  // atoms in cells [0, c]
    if (upto >= (n * next) / ndomains && upto > part.domain_ptr.back()) {
      part.domain_ptr.push_back(upto);
      ++next;
    }
  }
  part.domain_ptr.push_back(n);
  return part;
}

std::vector<std::uint8_t> halo_rows(const DomainPartition& part,
                                    const std::vector<std::size_t>& row_ptr,
                                    const std::vector<std::uint32_t>& cols) {
  const std::size_t n = part.size();
  TBMD_REQUIRE(row_ptr.size() == n + 1, "halo_rows: row_ptr size mismatch");
  std::vector<std::uint32_t> dom(n, 0);
  for (std::size_t d = 0; d < part.domains(); ++d) {
    for (std::size_t k = part.domain_ptr[d]; k < part.domain_ptr[d + 1]; ++k) {
      dom[k] = static_cast<std::uint32_t>(d);
    }
  }
  std::vector<std::uint8_t> halo(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::uint32_t j = cols[k];
      if (dom[j] != dom[i]) {
        // Half-pattern: the implicit mirror couples row j back to i, so a
        // seam-crossing tile makes both endpoints halo rows.
        halo[i] = 1;
        halo[j] = 1;
      }
    }
  }
  return halo;
}

}  // namespace tbmd::par
