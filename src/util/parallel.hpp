#pragma once

/// \file parallel.hpp
/// \brief Thin OpenMP wrappers so that the rest of the code base never talks
/// to the OpenMP runtime directly and compiles cleanly without it.
///
/// Contract (pinned down by the Parallel.* tests in tests/test_util.cpp and
/// compiled in both configurations by CI via -DTBMD_NO_OPENMP=ON): every
/// wrapper behaves identically with and without -fopenmp, except that a
/// serial build reports max_threads() == 1 and treats set_num_threads() as
/// a no-op. Numerical results must not depend on the thread count.

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstddef>
#include <vector>

namespace tbmd::par {

/// Number of threads the OpenMP runtime will use for the next parallel
/// region (1 when compiled without OpenMP).
[[nodiscard]] inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the number of threads used by subsequent parallel regions.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Calling thread's id inside a parallel region (0 outside / without OpenMP).
[[nodiscard]] inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Number of threads in the current team: the actual size inside a parallel
/// region, 1 outside a region or without OpenMP.  Use this (not
/// max_threads()) to partition work among the members of an open region.
[[nodiscard]] inline int team_size() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

/// True when OpenMP is enabled in this build.
[[nodiscard]] inline constexpr bool openmp_enabled() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

/// Heuristic: parallelize a loop only when the trip count times the unit
/// cost estimate is worth the fork-join overhead.
[[nodiscard]] inline bool worth_parallelizing(std::size_t trip_count,
                                              std::size_t flops_per_trip) {
  return trip_count * flops_per_trip > 50'000;
}

/// Merge per-thread partial arrays into the first one with a parallel
/// binary-tree reduction.  `buffers` holds `buffers.size() / n` partials of
/// `n` elements each, stored contiguously; after the call the first `n`
/// elements contain the elementwise sum.  Each of the ceil(log2(T)) passes
/// halves the live partial count and parallelizes over its element updates,
/// so the reduction costs O(n log T) work with no serialized critical
/// section -- the replacement for the `#pragma omp critical` whole-array
/// merges the force kernels used to do.  T must not exceed the partial
/// count the caller allocated; call from OUTSIDE a parallel region.
template <typename T>
inline void tree_reduce_partials(std::vector<T>& buffers, std::size_t n);

/// Per-thread partial accumulators for force-style kernels.  Construction
/// zero-initializes one length-`n` slice per possible thread; inside a
/// parallel region each thread accumulates into `local()` (its own slice),
/// and after the region `reduce()` merges every slice into the first one
/// with the parallel tree reduction and returns it.  Works for any
/// zero-default-constructible additive type (Vec3, Mat3, double); use
/// n == 1 for plain scalar/tensor sums.
template <typename T>
class ThreadPartials {
 public:
  explicit ThreadPartials(std::size_t n)
      : n_(n), buf_(static_cast<std::size_t>(max_threads()) * n) {}

  /// The calling thread's slice (valid inside and outside parallel regions).
  [[nodiscard]] T* local() {
    return buf_.data() + static_cast<std::size_t>(thread_id()) * n_;
  }

  /// Merge all slices (call from OUTSIDE a parallel region, once).
  [[nodiscard]] const T* reduce() {
    tree_reduce_partials(buf_, n_);
    return buf_.data();
  }

 private:
  std::size_t n_;
  std::vector<T> buf_;
};

template <typename T>
inline void tree_reduce_partials(std::vector<T>& buffers, std::size_t n) {
  if (n == 0) return;
  std::size_t live = buffers.size() / n;
  while (live > 1) {
    const std::size_t stride = (live + 1) / 2;  // partial k merges k+stride
    const std::size_t merged = live - stride;
    [[maybe_unused]] const bool par = worth_parallelizing(merged * n, 8);
#pragma omp parallel for schedule(static) if (par)
    for (std::size_t e = 0; e < merged * n; ++e) {
      const std::size_t k = e / n;
      const std::size_t idx = e - k * n;
      buffers[k * n + idx] += buffers[(k + stride) * n + idx];
    }
    live = stride;
  }
}

}  // namespace tbmd::par
