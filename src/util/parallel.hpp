#pragma once

/// \file parallel.hpp
/// \brief Thin OpenMP wrappers so that the rest of the code base never talks
/// to the OpenMP runtime directly and compiles cleanly without it.
///
/// Contract (pinned down by the Parallel.* tests in tests/test_util.cpp and
/// compiled in both configurations by CI via -DTBMD_NO_OPENMP=ON): every
/// wrapper behaves identically with and without -fopenmp, except that a
/// serial build reports max_threads() == 1 and treats set_num_threads() as
/// a no-op. Numerical results must not depend on the thread count.

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstddef>

namespace tbmd::par {

/// Number of threads the OpenMP runtime will use for the next parallel
/// region (1 when compiled without OpenMP).
[[nodiscard]] inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the number of threads used by subsequent parallel regions.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Calling thread's id inside a parallel region (0 outside / without OpenMP).
[[nodiscard]] inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Number of threads in the current team: the actual size inside a parallel
/// region, 1 outside a region or without OpenMP.  Use this (not
/// max_threads()) to partition work among the members of an open region.
[[nodiscard]] inline int team_size() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

/// True when OpenMP is enabled in this build.
[[nodiscard]] inline constexpr bool openmp_enabled() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

/// Heuristic: parallelize a loop only when the trip count times the unit
/// cost estimate is worth the fork-join overhead.
[[nodiscard]] inline bool worth_parallelizing(std::size_t trip_count,
                                              std::size_t flops_per_trip) {
  return trip_count * flops_per_trip > 50'000;
}

}  // namespace tbmd::par
