#include "src/util/timer.hpp"

#include <algorithm>

namespace tbmd {

PhaseTimers::Scope::~Scope() { owner_->add(phase_, timer_.seconds()); }

void PhaseTimers::add(const std::string& phase, double seconds) {
  auto [it, inserted] = acc_.try_emplace(phase, 0.0);
  if (inserted) order_.push_back(phase);
  it->second += seconds;
}

double PhaseTimers::seconds(const std::string& phase) const {
  auto it = acc_.find(phase);
  return it == acc_.end() ? 0.0 : it->second;
}

double PhaseTimers::total() const {
  double sum = 0.0;
  for (const auto& [_, s] : acc_) sum += s;
  return sum;
}

void PhaseTimers::reset() {
  for (auto& [_, s] : acc_) s = 0.0;
}

}  // namespace tbmd
