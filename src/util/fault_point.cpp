#include "src/util/fault_point.hpp"

#include <cstring>
#include <mutex>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct Site {
  std::string name;
  long at_hit = 1;  ///< first firing hit (1-based); <= 0 = every hit
  long count = 1;   ///< width of the firing window
  long hits = 0;
  long fired = 0;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Site>& registry() {
  static std::vector<Site> sites;
  return sites;
}

Site* find_locked(const std::string& name) {
  for (Site& s : registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool known_site(const std::string& name) {
  static constexpr const char* kSites[] = {
      kCkptTornWrite, kCkptCrashBeforeRename, kOnxNanTile,
      kOnxNoConverge, kSvcWorkerThrow,        kSvcStall,
  };
  for (const char* s : kSites) {
    if (name == s) return true;
  }
  return false;
}

}  // namespace

namespace detail {

bool fire_slow(const char* site) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  Site* s = find_locked(site);
  if (s == nullptr) return false;
  ++s->hits;
  const bool go =
      s->at_hit <= 0 || (s->hits >= s->at_hit && s->hits < s->at_hit + s->count);
  if (go) ++s->fired;
  return go;
}

}  // namespace detail

void arm(const std::string& site, long at_hit, long count) {
  TBMD_REQUIRE(known_site(site), "fault: unknown site '" + site + "'");
  TBMD_REQUIRE(count >= 1, "fault: window count must be >= 1");
  const std::lock_guard<std::mutex> lock(registry_mutex());
  Site* s = find_locked(site);
  if (s == nullptr) {
    registry().push_back(Site{});
    s = &registry().back();
    s->name = site;
  }
  s->at_hit = at_hit;
  s->count = count;
  s->hits = 0;
  s->fired = 0;
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void arm_from_spec(const std::string& spec) {
  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  for (const std::string& token : split_whitespace(normalized)) {
    std::string site = token;
    long at_hit = 1;
    long count = 1;
    const std::size_t at = token.find('@');
    if (at != std::string::npos) {
      site = token.substr(0, at);
      std::string window = token.substr(at + 1);
      const std::size_t colon = window.find(':');
      if (colon != std::string::npos) {
        count = parse_long(window.substr(colon + 1),
                           "fault spec '" + token + "' window count");
        window.erase(colon);
      }
      at_hit = parse_long(window, "fault spec '" + token + "' hit index");
    }
    TBMD_REQUIRE(!site.empty(), "fault spec: empty site name in '" + spec + "'");
    arm(site, at_hit, count);
  }
}

void disarm_all() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

bool any_armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

long hits(const std::string& site) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const Site* s = find_locked(site);
  return s == nullptr ? 0 : s->hits;
}

long fired(const std::string& site) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const Site* s = find_locked(site);
  return s == nullptr ? 0 : s->fired;
}

}  // namespace tbmd::fault
