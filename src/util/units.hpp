#pragma once

/// \file units.hpp
/// \brief Internal unit system and physical constants.
///
/// tbmd uses the natural unit system of empirical tight-binding codes:
///   - length       : angstrom (A)
///   - time         : femtosecond (fs)
///   - energy       : electron-volt (eV)
///   - temperature  : kelvin (K)
///   - mass         : eV * fs^2 / A^2  ("program mass")
///
/// With mass in program units, kinetic energy (1/2) m v^2 is directly in eV
/// when v is in A/fs, and acceleration F/m is directly in A/fs^2 when F is
/// in eV/A.  Atomic masses given in amu must be converted with
/// amu_to_program_mass().

namespace tbmd::units {

/// Boltzmann constant in eV/K (CODATA 2018).
inline constexpr double kBoltzmann = 8.617333262e-5;

/// Conversion factor: 1 amu expressed in program mass units (eV fs^2 / A^2).
/// 1 amu = 1.66053906660e-27 kg; 1 eV fs^2/A^2 = 1.602176634e-19 J * 1e-30 s^2
/// / 1e-20 m^2 = 1.602176634e-29 kg; ratio = 103.642697...
inline constexpr double kAmuToProgramMass = 1.0364269656262e2;

/// Planck constant in eV*fs (useful for vibrational frequency conversion).
inline constexpr double kPlanck = 4.135667696;

/// hbar in eV*fs.
inline constexpr double kHbar = 0.6582119569;

/// Speed of light in A/fs (for cm^-1 <-> THz style conversions).
inline constexpr double kSpeedOfLight = 2997.92458;

/// Convert a mass in amu to program mass units.
[[nodiscard]] inline constexpr double amu_to_program_mass(double amu) {
  return amu * kAmuToProgramMass;
}

/// Convert a frequency in 1/fs (ordinary, not angular) to THz.
[[nodiscard]] inline constexpr double per_fs_to_thz(double f) { return f * 1.0e3; }

/// Convert a frequency in 1/fs (ordinary) to spectroscopic wavenumber (cm^-1).
/// nu[cm^-1] = f / c with c in cm/fs = 2.99792458e-5 cm/fs.
[[nodiscard]] inline constexpr double per_fs_to_inv_cm(double f) {
  return f / 2.99792458e-5;
}

}  // namespace tbmd::units
