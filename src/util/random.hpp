#pragma once

/// \file random.hpp
/// \brief Deterministic, seedable random number generation.
///
/// All stochastic code paths in tbmd (velocity initialization, structure
/// perturbation, test fixtures) take an explicit 64-bit seed so that runs,
/// tests and benchmarks are exactly reproducible.  The generator is
/// xoshiro256** seeded through SplitMix64, the conventional pairing.

#include <cstdint>

namespace tbmd {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Complete serializable state of an Rng: the four xoshiro256** words plus
/// the cached second deviate of the Marsaglia polar pair.  Restoring this
/// state reproduces the generator's output stream bit-for-bit, which the
/// checkpoint/restart layer relies on.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached = false;
  double cached = 0.0;
};

/// xoshiro256** PRNG: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Construct from a single seed; state is expanded with SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double gaussian();

  /// Normal deviate with given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Snapshot of the full generator state (deterministic checkpointing).
  [[nodiscard]] RngState state() const;

  /// Restore a snapshot taken with state().
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace tbmd
