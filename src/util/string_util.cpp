#include "src/util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "src/util/error.hpp"

namespace tbmd {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t j = i;
    while (j < s.size() && !is_space(s[j])) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

double parse_double(std::string_view token, std::string_view context) {
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Error("failed to parse '" + std::string(token) + "' as a real number (" +
                std::string(context) + ")");
  }
  return value;
}

long parse_long(std::string_view token, std::string_view context) {
  long value = 0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw Error("failed to parse '" + std::string(token) + "' as an integer (" +
                std::string(context) + ")");
  }
  return value;
}

}  // namespace tbmd
