#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/geom/cell.hpp"
#include "src/geom/vec3.hpp"

namespace tbmd::par {

/// Contiguous decomposition of atom (= BSR block-row) indices into
/// domains.  `order` maps new index -> original index (positions sorted by
/// spatial grid cell), `rank` is its inverse (original -> new), and
/// `domain_ptr` holds the domain boundaries in the *new* index space:
/// domain d covers new indices [domain_ptr[d], domain_ptr[d + 1]).
///
/// Every field is a deterministic pure function of the inputs -- the sort
/// is a stable counting sort by grid-cell key and never consults thread
/// count, iteration order of a hash map, or any per-run state -- so two
/// runs (or a checkpoint-resumed run) always produce the same partition.
struct DomainPartition {
  std::vector<std::uint32_t> order;      ///< new -> original atom index
  std::vector<std::uint32_t> rank;       ///< original -> new atom index
  std::vector<std::size_t> domain_ptr;   ///< size domains() + 1
  bool identity = true;                  ///< order[k] == k for all k

  std::size_t domains() const {
    return domain_ptr.empty() ? 0 : domain_ptr.size() - 1;
  }
  std::size_t size() const { return order.size(); }
};

/// Trivial partition: identity order, `ndomains` equal-count contiguous
/// chunks of [0, n).  Used when rows are already laid out coherently (the
/// lattice builders emit spatially sorted atoms) and only the scheduling
/// granularity is wanted, not a permutation.
DomainPartition even_domains(std::size_t n, std::size_t ndomains);

/// Spatial domain decomposition: bin atoms on a regular fractional grid
/// (~`target_atoms_per_cell` atoms per grid cell, default 32), stable-sort
/// them by cell key (z-major sweep, original index breaks ties), then cut
/// the sorted order into `ndomains` contiguous domains at grid-cell
/// boundaries with balanced atom counts.  Non-periodic axes are binned on
/// the positions' bounding box.  `ndomains <= 1` or `n < 2 * ndomains`
/// degenerates to a single-domain identity partition.
DomainPartition spatial_domains(const std::vector<Vec3>& positions,
                                const Cell& cell, std::size_t ndomains,
                                std::size_t target_atoms_per_cell = 32);

/// Flags the rows whose sparsity pattern crosses a domain seam: row i (new
/// index space) is a halo row when any stored column j of the symmetric
/// half-pattern (or its mirror) lies in a different domain.  `row_ptr` /
/// `cols` describe the half-pattern in the partition's new index space.
/// Returns one flag per row; interior rows (all couplings inside their own
/// domain) can be processed without touching another domain's data.
std::vector<std::uint8_t> halo_rows(const DomainPartition& part,
                                    const std::vector<std::size_t>& row_ptr,
                                    const std::vector<std::uint32_t>& cols);

}  // namespace tbmd::par
