#pragma once

/// \file error.hpp
/// \brief Error handling: tbmd::Error exception and checked preconditions.

#include <stdexcept>
#include <string>

namespace tbmd {

/// Exception type thrown by all tbmd components on precondition violations,
/// convergence failures and malformed input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string("tbmd precondition failed: ") + expr + " at " +
              file + ":" + std::to_string(line) +
              (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace tbmd

/// Precondition check that stays enabled in release builds.  Use for public
/// API argument validation; prefer plain asserts for internal invariants on
/// hot paths.
#define TBMD_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) ::tbmd::detail::fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
