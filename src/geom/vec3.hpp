#pragma once

/// \file vec3.hpp
/// \brief 3-component Cartesian vector (double precision, value type).

#include <cmath>

namespace tbmd {

/// Cartesian 3-vector.  All operations are constexpr-friendly value
/// semantics; this is the coordinate/force/velocity currency of the library.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  /// Component access by axis index (0 = x, 1 = y, 2 = z).
  [[nodiscard]] constexpr double operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cross product.
[[nodiscard]] constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

/// Squared Euclidean norm.
[[nodiscard]] constexpr double norm2_sq(const Vec3& a) { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

/// Unit vector along a (a must be non-zero).
[[nodiscard]] inline Vec3 normalized(const Vec3& a) { return a / norm(a); }

}  // namespace tbmd
