#pragma once

/// \file mat3.hpp
/// \brief 3x3 matrix for lattice vectors and small tensor algebra.

#include "src/geom/vec3.hpp"
#include "src/util/error.hpp"

namespace tbmd {

/// Row-major 3x3 matrix.  When used as a cell matrix, row i is lattice
/// vector a_i in Cartesian coordinates.
struct Mat3 {
  double m[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};

  constexpr Mat3() = default;

  /// From three row vectors.
  constexpr Mat3(const Vec3& r0, const Vec3& r1, const Vec3& r2)
      : m{{r0.x, r0.y, r0.z}, {r1.x, r1.y, r1.z}, {r2.x, r2.y, r2.z}} {}

  [[nodiscard]] static constexpr Mat3 identity() {
    return Mat3({1, 0, 0}, {0, 1, 0}, {0, 0, 1});
  }

  [[nodiscard]] static constexpr Mat3 diagonal(double a, double b, double c) {
    return Mat3({a, 0, 0}, {0, b, 0}, {0, 0, c});
  }

  [[nodiscard]] constexpr double operator()(int i, int j) const {
    return m[i][j];
  }
  [[nodiscard]] constexpr double& operator()(int i, int j) { return m[i][j]; }

  /// Row i as a vector.
  [[nodiscard]] constexpr Vec3 row(int i) const {
    return {m[i][0], m[i][1], m[i][2]};
  }

  constexpr Mat3& operator+=(const Mat3& o) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] += o.m[i][j];
    }
    return *this;
  }
  constexpr Mat3& operator-=(const Mat3& o) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] -= o.m[i][j];
    }
    return *this;
  }
  constexpr Mat3& operator*=(double s) {
    for (auto& row_ : m) {
      for (double& x : row_) x *= s;
    }
    return *this;
  }

  friend constexpr Mat3 operator+(Mat3 a, const Mat3& b) { return a += b; }
  friend constexpr Mat3 operator-(Mat3 a, const Mat3& b) { return a -= b; }
  friend constexpr Mat3 operator*(Mat3 a, double s) { return a *= s; }
};

/// Outer product a b^T.
[[nodiscard]] constexpr Mat3 outer(const Vec3& a, const Vec3& b) {
  return Mat3({a.x * b.x, a.x * b.y, a.x * b.z},
              {a.y * b.x, a.y * b.y, a.y * b.z},
              {a.z * b.x, a.z * b.y, a.z * b.z});
}

/// Trace.
[[nodiscard]] constexpr double trace(const Mat3& a) {
  return a(0, 0) + a(1, 1) + a(2, 2);
}

/// Matrix * column vector.
[[nodiscard]] constexpr Vec3 operator*(const Mat3& a, const Vec3& v) {
  return {a(0, 0) * v.x + a(0, 1) * v.y + a(0, 2) * v.z,
          a(1, 0) * v.x + a(1, 1) * v.y + a(1, 2) * v.z,
          a(2, 0) * v.x + a(2, 1) * v.y + a(2, 2) * v.z};
}

/// Row vector * matrix (v^T A); the natural operation for fractional ->
/// Cartesian conversion when rows are lattice vectors.
[[nodiscard]] constexpr Vec3 row_times(const Vec3& v, const Mat3& a) {
  return {v.x * a(0, 0) + v.y * a(1, 0) + v.z * a(2, 0),
          v.x * a(0, 1) + v.y * a(1, 1) + v.z * a(2, 1),
          v.x * a(0, 2) + v.y * a(1, 2) + v.z * a(2, 2)};
}

/// Matrix product.
[[nodiscard]] constexpr Mat3 operator*(const Mat3& a, const Mat3& b) {
  Mat3 c;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      c(i, j) = a(i, 0) * b(0, j) + a(i, 1) * b(1, j) + a(i, 2) * b(2, j);
    }
  }
  return c;
}

/// Determinant.
[[nodiscard]] constexpr double det(const Mat3& a) {
  return dot(a.row(0), cross(a.row(1), a.row(2)));
}

/// Inverse; throws tbmd::Error when singular.
[[nodiscard]] inline Mat3 inverse(const Mat3& a) {
  const double d = det(a);
  TBMD_REQUIRE(std::fabs(d) > 1e-14, "Mat3: singular matrix");
  const Vec3 r0 = a.row(0), r1 = a.row(1), r2 = a.row(2);
  const Vec3 c0 = cross(r1, r2) / d;
  const Vec3 c1 = cross(r2, r0) / d;
  const Vec3 c2 = cross(r0, r1) / d;
  // inverse columns are the reciprocal vectors -> build by rows.
  return Mat3({c0.x, c1.x, c2.x}, {c0.y, c1.y, c2.y}, {c0.z, c1.z, c2.z});
}

/// Transpose.
[[nodiscard]] constexpr Mat3 transpose(const Mat3& a) {
  return Mat3({a(0, 0), a(1, 0), a(2, 0)}, {a(0, 1), a(1, 1), a(2, 1)},
              {a(0, 2), a(1, 2), a(2, 2)});
}

}  // namespace tbmd
