#pragma once

/// \file cell.hpp
/// \brief Simulation cell: lattice vectors, periodicity flags, minimum-image
/// convention and coordinate wrapping.

#include <array>

#include "src/geom/mat3.hpp"
#include "src/geom/vec3.hpp"

namespace tbmd {

/// Simulation cell.
///
/// A Cell is a set of three lattice vectors (rows of `h()`) plus a
/// periodicity flag per axis.  Non-periodic ("cluster") systems use the
/// default-constructed cell, which has no lattice and never wraps.
///
/// Minimum-image displacements are computed by rounding in fractional
/// coordinates, which is exact as long as the cutoff is at most half the
/// smallest cell height — the neighbor layer enforces this precondition.
class Cell {
 public:
  /// Non-periodic cluster cell.
  Cell() = default;

  /// General (possibly triclinic) cell from lattice vectors a1, a2, a3.
  Cell(const Vec3& a1, const Vec3& a2, const Vec3& a3, bool px = true,
       bool py = true, bool pz = true);

  /// Orthorhombic cell of edge lengths lx, ly, lz.
  [[nodiscard]] static Cell orthorhombic(double lx, double ly, double lz,
                                         bool px = true, bool py = true,
                                         bool pz = true);

  /// Cubic cell of edge length l, periodic on all axes.
  [[nodiscard]] static Cell cubic(double l);

  /// True if any axis is periodic.
  [[nodiscard]] bool periodic() const {
    return periodic_[0] || periodic_[1] || periodic_[2];
  }

  /// Periodicity of one axis (0 = x, 1 = y, 2 = z).
  [[nodiscard]] bool periodic(int axis) const { return periodic_[axis]; }

  /// Cell matrix; row i is lattice vector a_i.  Zero for cluster cells.
  [[nodiscard]] const Mat3& h() const { return h_; }

  /// Inverse cell matrix (fractional = cartesian * h^-1 row convention).
  [[nodiscard]] const Mat3& h_inverse() const { return hinv_; }

  /// Cell volume (0 for cluster cells).
  [[nodiscard]] double volume() const { return volume_; }

  /// True when lattice vectors are axis-aligned.
  [[nodiscard]] bool orthorhombic() const { return orthorhombic_; }

  /// Perpendicular height of the cell along each axis (distance between the
  /// periodic images of the corresponding face pair).  The minimum-image
  /// convention is valid for displacements shorter than half of these.
  [[nodiscard]] std::array<double, 3> heights() const;

  /// Cartesian -> fractional coordinates.
  [[nodiscard]] Vec3 to_fractional(const Vec3& r) const {
    return row_times(r, hinv_);
  }

  /// Fractional -> Cartesian coordinates.
  [[nodiscard]] Vec3 to_cartesian(const Vec3& s) const {
    return row_times(s, h_);
  }

  /// Minimum-image displacement equivalent to dr.
  [[nodiscard]] Vec3 minimum_image(Vec3 dr) const;

  /// Lattice translation that maps `raw` onto its minimum image, as the
  /// exact integer combination of cell vectors: raw + image_shift(raw) is
  /// the minimum-image displacement.  Unlike `minimum_image(raw) - raw`,
  /// the result carries no rounding noise from `raw` itself, so two
  /// displacements with the same image indices get bit-identical shifts --
  /// the property the neighbor list needs so that stored shifts (and hence
  /// forces) do not depend on when the list was rebuilt.
  [[nodiscard]] Vec3 image_shift(const Vec3& raw) const;

  /// Wrap a position into the home cell along periodic axes.
  [[nodiscard]] Vec3 wrap(const Vec3& r) const;

  /// Lattice translation n1*a1 + n2*a2 + n3*a3.
  [[nodiscard]] Vec3 shift_vector(int n1, int n2, int n3) const {
    return static_cast<double>(n1) * h_.row(0) +
           static_cast<double>(n2) * h_.row(1) +
           static_cast<double>(n3) * h_.row(2);
  }

 private:
  Mat3 h_{};
  Mat3 hinv_{};
  double volume_ = 0.0;
  bool orthorhombic_ = true;
  std::array<bool, 3> periodic_{false, false, false};
};

}  // namespace tbmd
