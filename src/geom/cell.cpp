#include "src/geom/cell.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace tbmd {

Cell::Cell(const Vec3& a1, const Vec3& a2, const Vec3& a3, bool px, bool py,
           bool pz)
    : h_(a1, a2, a3), periodic_{px, py, pz} {
  volume_ = std::fabs(det(h_));
  TBMD_REQUIRE(volume_ > 1e-12, "Cell: lattice vectors are degenerate");
  hinv_ = inverse(h_);
  orthorhombic_ = std::fabs(a1.y) + std::fabs(a1.z) + std::fabs(a2.x) +
                      std::fabs(a2.z) + std::fabs(a3.x) + std::fabs(a3.y) <
                  1e-12;
}

Cell Cell::orthorhombic(double lx, double ly, double lz, bool px, bool py,
                        bool pz) {
  return Cell({lx, 0, 0}, {0, ly, 0}, {0, 0, lz}, px, py, pz);
}

Cell Cell::cubic(double l) { return orthorhombic(l, l, l); }

std::array<double, 3> Cell::heights() const {
  if (volume_ == 0.0) return {0.0, 0.0, 0.0};
  // Height along axis i = V / |a_j x a_k|.
  std::array<double, 3> out{};
  for (int i = 0; i < 3; ++i) {
    const Vec3 aj = h_.row((i + 1) % 3);
    const Vec3 ak = h_.row((i + 2) % 3);
    out[i] = volume_ / norm(cross(aj, ak));
  }
  return out;
}

Vec3 Cell::minimum_image(Vec3 dr) const {
  if (!periodic()) return dr;
  Vec3 s = to_fractional(dr);
  if (periodic_[0]) s.x -= std::round(s.x);
  if (periodic_[1]) s.y -= std::round(s.y);
  if (periodic_[2]) s.z -= std::round(s.z);
  return to_cartesian(s);
}

Vec3 Cell::image_shift(const Vec3& raw) const {
  if (!periodic()) return {};
  const Vec3 s = to_fractional(raw);
  const int n1 = periodic_[0] ? static_cast<int>(-std::round(s.x)) : 0;
  const int n2 = periodic_[1] ? static_cast<int>(-std::round(s.y)) : 0;
  const int n3 = periodic_[2] ? static_cast<int>(-std::round(s.z)) : 0;
  return shift_vector(n1, n2, n3);
}

Vec3 Cell::wrap(const Vec3& r) const {
  if (!periodic()) return r;
  Vec3 s = to_fractional(r);
  if (periodic_[0]) s.x -= std::floor(s.x);
  if (periodic_[1]) s.y -= std::floor(s.y);
  if (periodic_[2]) s.z -= std::floor(s.z);
  return to_cartesian(s);
}

}  // namespace tbmd
