#include "src/structures/fullerene.hpp"

#include <cmath>
#include <vector>

#include "src/util/error.hpp"

namespace tbmd::structures {

System c60(Element e, double bond) {
  TBMD_REQUIRE(bond > 0.0, "c60: bond must be positive");
  const double phi = 0.5 * (1.0 + std::sqrt(5.0));

  // Truncated icosahedron vertices: all even (cyclic) permutations of
  //   (0, +-1, +-3phi), (+-1, +-(2+phi), +-2phi), (+-2, +-(1+2phi), +-phi)
  // with edge length 2 in these units.
  std::vector<Vec3> verts;
  auto add_cyclic_signed = [&](double x, double y, double z) {
    const double base[3] = {x, y, z};
    for (int rot = 0; rot < 3; ++rot) {
      const double a = base[rot % 3];
      const double b = base[(rot + 1) % 3];
      const double c = base[(rot + 2) % 3];
      for (int sa = -1; sa <= 1; sa += 2) {
        for (int sb = -1; sb <= 1; sb += 2) {
          for (int sc = -1; sc <= 1; sc += 2) {
            const Vec3 v{sa * a, sb * b, sc * c};
            bool dup = false;
            for (const Vec3& w : verts) {
              if (norm2_sq(v - w) < 1e-12) {
                dup = true;
                break;
              }
            }
            if (!dup) verts.push_back(v);
          }
        }
      }
    }
  };

  add_cyclic_signed(0.0, 1.0, 3.0 * phi);
  add_cyclic_signed(1.0, 2.0 + phi, 2.0 * phi);
  add_cyclic_signed(2.0, 1.0 + 2.0 * phi, phi);

  TBMD_REQUIRE(verts.size() == 60, "c60: vertex generation failed");

  const double scale = bond / 2.0;  // edge length is 2 in lattice units
  System s;
  for (const Vec3& v : verts) s.add_atom(e, v * scale);
  return s;
}

}  // namespace tbmd::structures
