#pragma once

/// \file nanotube.hpp
/// \brief (n,m) single-wall nanotube generator via the standard chiral
/// rolling construction.

#include "src/core/system.hpp"

namespace tbmd::structures {

/// Geometric data of an (n,m) tube with the given graphene bond length.
struct NanotubeInfo {
  double radius = 0.0;          ///< cylinder radius (A)
  double translation = 0.0;     ///< length |T| of the 1D unit cell (A)
  std::size_t atoms_per_cell = 0;  ///< atoms in one translational cell
};

/// Compute radius/translation/cell size of an (n,m) tube without building it.
[[nodiscard]] NanotubeInfo nanotube_info(int n, int m, double bond);

/// Build an (n,m) single-wall nanotube of `n_cells` translational unit
/// cells along z.
///
/// If `periodic` is true the system is periodic along z with cell length
/// n_cells * |T| (choose n_cells so the length satisfies the neighbor-layer
/// precondition); otherwise the tube is finite with open (dangling) ends.
/// The tube axis is z and the tube is centered in a vacuum box in x, y.
[[nodiscard]] System nanotube(Element e, int n, int m, double bond,
                              int n_cells, bool periodic,
                              double vacuum = 20.0);

}  // namespace tbmd::structures
