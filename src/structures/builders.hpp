#pragma once

/// \file builders.hpp
/// \brief Crystal/molecule builders used by examples, tests and benches.
///
/// All builders return fully-initialized System objects (zero velocities)
/// whose cells satisfy the neighbor-layer precondition (height >= 2 * list
/// radius) for the shipped models when the documented minimum supercell
/// sizes are respected.

#include <cstdint>

#include "src/core/system.hpp"

namespace tbmd::structures {

/// Two atoms separated by `bond_length` along z, centered at the origin, in
/// a non-periodic cell.
[[nodiscard]] System dimer(Element e, double bond_length);

/// Linear chain of n atoms with the given spacing along z (non-periodic).
[[nodiscard]] System chain(Element e, std::size_t n, double spacing);

/// Diamond-structure supercell (8 atoms per cubic cell of lattice constant
/// `a`), replicated nx x ny x nz, periodic in all directions.
/// Diamond carbon: a = 3.567; silicon: a = 5.431.
[[nodiscard]] System diamond(Element e, double a, int nx, int ny, int nz);

/// FCC supercell (4 atoms per cubic cell), periodic.  Argon: a = 5.26.
[[nodiscard]] System fcc(Element e, double a, int nx, int ny, int nz);

/// Rectangular periodic graphene sheet with C-C bond length `bond` (1.42 for
/// carbon), replicated nx x ny (4 atoms per rectangular cell), periodic in
/// x and y; open along z with vacuum.
[[nodiscard]] System graphene(Element e, double bond, int nx, int ny,
                              double vacuum = 20.0);

/// Simple-cubic gas of n atoms jittered from lattice sites inside a cubic
/// box chosen to hit `density` (atoms/A^3); guarantees pair distances of at
/// least `min_distance`.  Deterministic in `seed`.
[[nodiscard]] System random_gas(Element e, std::size_t n, double density,
                                double min_distance, std::uint64_t seed);

/// Displace every mobile atom by a uniform random vector with components in
/// [-amplitude, amplitude].  Deterministic in `seed`.
void perturb(System& system, double amplitude, std::uint64_t seed);

/// Replace the species of the listed atoms (substitutional doping).
void substitute(System& system, const std::vector<std::size_t>& sites,
                Element dopant);

/// Copy of `system` with atom `site` removed (vacancy); velocities and
/// frozen flags of the remaining atoms are preserved.
[[nodiscard]] System with_vacancy(const System& system, std::size_t site);

}  // namespace tbmd::structures
