#pragma once

/// \file fullerene.hpp
/// \brief C60 (truncated icosahedron) coordinates.

#include "src/core/system.hpp"

namespace tbmd::structures {

/// Buckminsterfullerene C60 with uniform edge length `bond` (the real
/// molecule has two slightly different bond lengths; a structural
/// relaxation with the TB model recovers that splitting).  Non-periodic,
/// centered at the origin.
[[nodiscard]] System c60(Element e = Element::C, double bond = 1.44);

}  // namespace tbmd::structures
