#include "src/structures/builders.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/random.hpp"

namespace tbmd::structures {

System dimer(Element e, double bond_length) {
  TBMD_REQUIRE(bond_length > 0.0, "dimer: bond length must be positive");
  System s;
  s.add_atom(e, {0.0, 0.0, -0.5 * bond_length});
  s.add_atom(e, {0.0, 0.0, +0.5 * bond_length});
  return s;
}

System chain(Element e, std::size_t n, double spacing) {
  TBMD_REQUIRE(n >= 1, "chain: need at least one atom");
  System s;
  for (std::size_t i = 0; i < n; ++i) {
    s.add_atom(e, {0.0, 0.0, spacing * static_cast<double>(i)});
  }
  return s;
}

System diamond(Element e, double a, int nx, int ny, int nz) {
  TBMD_REQUIRE(a > 0 && nx > 0 && ny > 0 && nz > 0, "diamond: bad arguments");
  System s(Cell::orthorhombic(a * nx, a * ny, a * nz));
  // FCC sites + tetrahedral basis.
  const Vec3 fcc_sites[4] = {
      {0.0, 0.0, 0.0}, {0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}};
  const Vec3 basis_offset{0.25, 0.25, 0.25};
  for (int ix = 0; ix < nx; ++ix) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int iz = 0; iz < nz; ++iz) {
        const Vec3 cell_origin{static_cast<double>(ix), static_cast<double>(iy),
                               static_cast<double>(iz)};
        for (const Vec3& f : fcc_sites) {
          const Vec3 s1 = (cell_origin + f) * a;
          const Vec3 s2 = (cell_origin + f + basis_offset) * a;
          s.add_atom(e, s1);
          s.add_atom(e, s2);
        }
      }
    }
  }
  return s;
}

System fcc(Element e, double a, int nx, int ny, int nz) {
  TBMD_REQUIRE(a > 0 && nx > 0 && ny > 0 && nz > 0, "fcc: bad arguments");
  System s(Cell::orthorhombic(a * nx, a * ny, a * nz));
  const Vec3 sites[4] = {
      {0.0, 0.0, 0.0}, {0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}};
  for (int ix = 0; ix < nx; ++ix) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int iz = 0; iz < nz; ++iz) {
        const Vec3 origin{static_cast<double>(ix), static_cast<double>(iy),
                          static_cast<double>(iz)};
        for (const Vec3& f : sites) s.add_atom(e, (origin + f) * a);
      }
    }
  }
  return s;
}

System graphene(Element e, double bond, int nx, int ny, double vacuum) {
  TBMD_REQUIRE(bond > 0 && nx > 0 && ny > 0, "graphene: bad arguments");
  const double lx = std::sqrt(3.0) * bond;  // zigzag period along x
  const double ly = 3.0 * bond;             // armchair period along y
  System s(Cell::orthorhombic(lx * nx, ly * ny, vacuum, true, true, false));
  const double z = 0.5 * vacuum;
  for (int ix = 0; ix < nx; ++ix) {
    for (int iy = 0; iy < ny; ++iy) {
      const double x0 = lx * ix;
      const double y0 = ly * iy;
      s.add_atom(e, {x0, y0, z});
      s.add_atom(e, {x0 + 0.5 * lx, y0 + 0.5 * bond, z});
      s.add_atom(e, {x0 + 0.5 * lx, y0 + 1.5 * bond, z});
      s.add_atom(e, {x0, y0 + 2.0 * bond, z});
    }
  }
  return s;
}

System random_gas(Element e, std::size_t n, double density,
                  double min_distance, std::uint64_t seed) {
  TBMD_REQUIRE(n > 0 && density > 0, "random_gas: bad arguments");
  const double volume = static_cast<double>(n) / density;
  const double l = std::cbrt(volume);
  System s(Cell::cubic(l));
  Rng rng(seed);

  // Jittered lattice placement: avoids pathological overlap while still
  // producing a disordered configuration.
  const int grid = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n))));
  const double cell_edge = l / grid;
  const double max_jitter =
      std::max(0.0, 0.5 * (cell_edge - min_distance));
  std::size_t placed = 0;
  for (int ix = 0; ix < grid && placed < n; ++ix) {
    for (int iy = 0; iy < grid && placed < n; ++iy) {
      for (int iz = 0; iz < grid && placed < n; ++iz) {
        const Vec3 center{(ix + 0.5) * cell_edge, (iy + 0.5) * cell_edge,
                          (iz + 0.5) * cell_edge};
        const Vec3 jitter{rng.uniform(-max_jitter, max_jitter),
                          rng.uniform(-max_jitter, max_jitter),
                          rng.uniform(-max_jitter, max_jitter)};
        s.add_atom(e, center + jitter);
        ++placed;
      }
    }
  }
  return s;
}

void perturb(System& system, double amplitude, std::uint64_t seed) {
  Rng rng(seed);
  auto& pos = system.positions();
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (system.frozen(i)) continue;
    pos[i] += Vec3{rng.uniform(-amplitude, amplitude),
                   rng.uniform(-amplitude, amplitude),
                   rng.uniform(-amplitude, amplitude)};
  }
}

void substitute(System& system, const std::vector<std::size_t>& sites,
                Element dopant) {
  for (const std::size_t i : sites) system.set_species(i, dopant);
}

System with_vacancy(const System& system, std::size_t site) {
  TBMD_REQUIRE(site < system.size(), "with_vacancy: site out of range");
  System out(system.cell());
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (i == site) continue;
    const std::size_t q = out.add_atom(system.species()[i],
                                       system.positions()[i],
                                       system.velocities()[i]);
    out.set_frozen(q, system.frozen(i));
  }
  return out;
}

}  // namespace tbmd::structures
