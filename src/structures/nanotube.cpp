#include "src/structures/nanotube.hpp"

#include <cmath>
#include <numbers>
#include <numeric>
#include <vector>

#include "src/util/error.hpp"

namespace tbmd::structures {

namespace {

/// 2D graphene lattice vectors in the nanotube-literature convention:
/// a1 = a (sqrt(3)/2,  1/2), a2 = a (sqrt(3)/2, -1/2), a = sqrt(3) * bond.
struct Flat {
  double x, y;
};

Flat lattice_point(int i, int j, double a) {
  const double s3 = std::sqrt(3.0) / 2.0;
  return {a * s3 * (i + j), a * 0.5 * (i - j)};
}

}  // namespace

NanotubeInfo nanotube_info(int n, int m, double bond) {
  TBMD_REQUIRE(n > 0 && m >= 0, "nanotube: require n > 0, m >= 0");
  const double a = std::sqrt(3.0) * bond;
  const double ch = a * std::sqrt(static_cast<double>(n * n + n * m + m * m));
  const int dr = std::gcd(2 * n + m, 2 * m + n);
  NanotubeInfo info;
  info.radius = ch / (2.0 * std::numbers::pi);
  info.translation = std::sqrt(3.0) * ch / dr;
  // Atoms per translational cell: 4 (n^2 + nm + m^2) / dR.
  info.atoms_per_cell =
      static_cast<std::size_t>(4 * (n * n + n * m + m * m) / dr);
  return info;
}

System nanotube(Element e, int n, int m, double bond, int n_cells,
                bool periodic, double vacuum) {
  TBMD_REQUIRE(n_cells > 0, "nanotube: n_cells must be positive");
  const NanotubeInfo info = nanotube_info(n, m, bond);
  const double a = std::sqrt(3.0) * bond;

  // Chiral vector Ch = n a1 + m a2 and translation vector
  // T = t1 a1 + t2 a2 with t1 = (2m+n)/dR, t2 = -(2n+m)/dR.
  const Flat chv = lattice_point(n, m, a);
  const double ch_len = std::hypot(chv.x, chv.y);
  const int dr = std::gcd(2 * n + m, 2 * m + n);
  const int t1 = (2 * m + n) / dr;
  const int t2 = -(2 * n + m) / dr;
  const Flat tv = lattice_point(t1, t2, a);
  const double t_len = std::hypot(tv.x, tv.y);

  // Unit vectors along Ch and T (they are orthogonal by construction).
  const double cx = chv.x / ch_len, cy = chv.y / ch_len;
  const double tx = tv.x / t_len, ty = tv.y / t_len;

  const double box = 2.0 * info.radius + vacuum;
  const double lz = info.translation * n_cells;
  System sys(periodic
                 ? Cell::orthorhombic(box, box, lz, false, false, true)
                 : Cell());

  // Enumerate graphene cells generously and keep atoms whose (Ch, T)
  // projections fall inside the tube rectangle [0, |Ch|) x [0, n_cells|T|).
  const int range = 2 * (std::abs(n) + std::abs(m) +
                         (std::abs(t1) + std::abs(t2)) * n_cells + 2);
  const double tube_len = info.translation * n_cells;
  const double eps = 1e-6 * a;

  // Graphene basis: A at origin, B at (a1 + a2)/3.
  const Flat b_off = lattice_point(1, 1, a);
  const Flat basis[2] = {{0.0, 0.0}, {b_off.x / 3.0, b_off.y / 3.0}};

  std::vector<Vec3> atoms;
  for (int i = -range; i <= range; ++i) {
    for (int j = -range; j <= range; ++j) {
      const Flat cell0 = lattice_point(i, j, a);
      for (const Flat& b : basis) {
        const double px = cell0.x + b.x;
        const double py = cell0.y + b.y;
        const double u = px * cx + py * cy;  // along Ch
        const double v = px * tx + py * ty;  // along T
        if (u >= -eps && u < ch_len - eps && v >= -eps &&
            v < tube_len - eps) {
          const double theta = 2.0 * std::numbers::pi * u / ch_len;
          atoms.push_back({info.radius * std::cos(theta),
                           info.radius * std::sin(theta), v});
        }
      }
    }
  }

  TBMD_REQUIRE(atoms.size() == info.atoms_per_cell * n_cells,
               "nanotube: rolling produced an unexpected atom count");

  const Vec3 center{0.5 * box, 0.5 * box, 0.0};
  for (const Vec3& r : atoms) {
    sys.add_atom(e, periodic ? r + center : r);
  }
  return sys;
}

}  // namespace tbmd::structures
