#pragma once

/// \file md_driver.hpp
/// \brief Velocity-Verlet molecular dynamics driver.
///
/// Supports microcanonical (NVE) runs, canonical (NVT) runs with any
/// Thermostat, linear temperature ramps (the paper's 0.5 K/fs protocol),
/// frozen-atom constraints, and per-step observers for on-the-fly analysis.

#include <functional>
#include <memory>

#include "src/core/calculator.hpp"
#include "src/core/system.hpp"
#include "src/md/thermostat.hpp"

namespace tbmd::md {

/// Integration options.
struct MdOptions {
  double dt = 1.0;  ///< timestep (fs)
  /// Thermostat; null runs NVE.  Owned by the driver.
  std::unique_ptr<Thermostat> thermostat;
};

/// Velocity-Verlet MD driver.
///
/// The driver borrows the System and Calculator (both must outlive it) and
/// keeps the last ForceResult cached so observers can read energies and
/// eigenvalues without recomputing.
class MdDriver {
 public:
  /// Observer called after every step.
  using Observer = std::function<void(const MdDriver&, long step)>;

  MdDriver(System& system, Calculator& calculator, MdOptions options);

  /// Advance one timestep.
  void step();

  /// Advance n steps, invoking `observer` (if any) after each.
  void run(long n_steps, const Observer& observer = {});

  /// Linearly ramp the thermostat target from its current value to
  /// `kelvin` over the next `n_steps` steps while integrating (no-op
  /// without a thermostat).  The paper's heating protocol corresponds to
  /// ramp_temperature(T_next, (T_next - T_now) / (0.5 K/fs) / dt).
  void ramp_temperature(double kelvin, long n_steps,
                        const Observer& observer = {});

  /// Potential energy surface result from the most recent force call.
  [[nodiscard]] const ForceResult& last_result() const { return result_; }

  /// Total energy KE + PE (eV).
  [[nodiscard]] double total_energy() const {
    return system_->kinetic_energy() + result_.energy;
  }

  /// Conserved quantity of the (possibly extended) system: KE + PE plus the
  /// thermostat contribution.  For NVE this is the total energy.
  [[nodiscard]] double conserved_quantity() const;

  [[nodiscard]] long step_count() const { return step_count_; }
  [[nodiscard]] double time_fs() const {
    return static_cast<double>(step_count_) * options_.dt;
  }

  [[nodiscard]] System& system() { return *system_; }
  [[nodiscard]] const System& system() const { return *system_; }
  [[nodiscard]] Calculator& calculator() { return *calculator_; }

  [[nodiscard]] Thermostat* thermostat() { return options_.thermostat.get(); }

 private:
  System* system_;
  Calculator* calculator_;
  MdOptions options_;
  ForceResult result_;
  long step_count_ = 0;
};

}  // namespace tbmd::md
