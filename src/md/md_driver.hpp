#pragma once

/// \file md_driver.hpp
/// \brief Velocity-Verlet molecular dynamics driver.
///
/// Supports microcanonical (NVE) runs, canonical (NVT) runs with any
/// Thermostat, linear temperature ramps (the paper's 0.5 K/fs protocol),
/// frozen-atom constraints, and per-step observers for on-the-fly analysis.

#include <functional>
#include <memory>

#include "src/core/calculator.hpp"
#include "src/core/system.hpp"
#include "src/md/thermostat.hpp"

namespace tbmd::md {

/// Integration options.
///
/// A plain copyable value: the thermostat is described declaratively by a
/// ThermostatSpec (kind + parameters) and resolved into a concrete
/// Thermostat by the driver.  Job workers copy one MdOptions per
/// trajectory and checkpoint code serializes it without touching any
/// owning pointer.
struct MdOptions {
  MdOptions() = default;
  // Implicit from a timestep: `MdDriver driver(s, calc, {2.0})` runs NVE.
  MdOptions(double dt_fs, ThermostatSpec thermostat_spec = {})
      : dt(dt_fs), thermostat(thermostat_spec) {}

  double dt = 1.0;            ///< timestep (fs)
  ThermostatSpec thermostat;  ///< kNone runs NVE
};

/// Velocity-Verlet MD driver.
///
/// The driver borrows the System and Calculator (both must outlive it) and
/// keeps the last ForceResult cached so observers can read energies and
/// eigenvalues without recomputing.
class MdDriver {
 public:
  /// Observer called after every step.
  using Observer = std::function<void(const MdDriver&, long step)>;

  MdDriver(System& system, Calculator& calculator, MdOptions options);

  /// Advance one timestep.
  void step();

  /// Advance n steps, invoking `observer` (if any) after each.
  void run(long n_steps, const Observer& observer = {});

  /// Linearly ramp the thermostat target from its current value to
  /// `kelvin` over the next `n_steps` steps while integrating (no-op
  /// without a thermostat).  The paper's heating protocol corresponds to
  /// ramp_temperature(T_next, (T_next - T_now) / (0.5 K/fs) / dt).
  void ramp_temperature(double kelvin, long n_steps,
                        const Observer& observer = {});

  /// Potential energy surface result from the most recent force call.
  [[nodiscard]] const ForceResult& last_result() const { return result_; }

  /// Total energy KE + PE (eV).
  [[nodiscard]] double total_energy() const {
    return system_->kinetic_energy() + result_.energy;
  }

  /// Conserved quantity of the (possibly extended) system: KE + PE plus the
  /// thermostat contribution.  For NVE this is the total energy.
  [[nodiscard]] double conserved_quantity() const;

  [[nodiscard]] long step_count() const { return step_count_; }
  [[nodiscard]] double time_fs() const {
    return static_cast<double>(step_count_) * options_.dt;
  }

  /// Restore the integration bookkeeping of a checkpointed run: the step
  /// counter plus (when a thermostat is active) its target temperature and
  /// internal state.  The caller must have restored the System's positions
  /// and velocities before constructing the driver, so the cached forces
  /// (recomputed in the constructor) already match the checkpoint.
  void restore(long step_count, double thermostat_target = 0.0,
               const std::vector<double>& thermostat_state = {});

  [[nodiscard]] System& system() { return *system_; }
  [[nodiscard]] const System& system() const { return *system_; }
  [[nodiscard]] Calculator& calculator() { return *calculator_; }
  [[nodiscard]] const MdOptions& options() const { return options_; }

  /// Resolved thermostat (null for NVE).
  [[nodiscard]] Thermostat* thermostat() { return thermostat_.get(); }
  [[nodiscard]] const Thermostat* thermostat() const {
    return thermostat_.get();
  }

 private:
  System* system_;
  Calculator* calculator_;
  MdOptions options_;
  /// Concrete thermostat resolved from options_.thermostat (owned).
  std::unique_ptr<Thermostat> thermostat_;
  ForceResult result_;
  long step_count_ = 0;
};

}  // namespace tbmd::md
