#pragma once

/// \file thermostat.hpp
/// \brief Thermostats for canonical (NVT) molecular dynamics.
///
/// The primary thermostat is the Nose-Hoover chain in the half-step
/// splitting of Martyna, Tuckerman & Klein (the formulation popularized by
/// Frenkel & Smit, which the paper's method section follows).  Velocity
/// rescaling and Berendsen are included as simpler baselines and for
/// equilibration.

#include <memory>
#include <string>
#include <vector>

#include "src/core/system.hpp"

namespace tbmd::md {

/// Thermostat interface: acts on velocities around the Verlet update.
class Thermostat {
 public:
  virtual ~Thermostat() = default;

  /// Applied before the first half-kick of velocity Verlet.
  virtual void begin_step(System& system, double dt) = 0;

  /// Applied after the second half-kick.
  virtual void end_step(System& system, double dt) = 0;

  /// Thermostat contribution to the conserved quantity of the extended
  /// system (0 for thermostats without one).
  [[nodiscard]] virtual double energy(const System& system) const = 0;

  /// Target temperature (K).
  [[nodiscard]] double target() const { return target_; }
  virtual void set_target(double kelvin) { target_ = kelvin; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Internal dynamical state as a flat vector (Nose-Hoover chain
  /// positions/velocities, rescale step counter, ...).  Together with
  /// target(), this is everything a checkpoint must carry to resume the
  /// extended-system dynamics bit-identically.  Stateless thermostats
  /// return an empty vector.
  [[nodiscard]] virtual std::vector<double> state() const { return {}; }

  /// Restore a snapshot taken with state().  Throws tbmd::Error when the
  /// vector does not match this thermostat's layout.
  virtual void set_state(const std::vector<double>& state);

 protected:
  explicit Thermostat(double target_kelvin) : target_(target_kelvin) {}
  double target_;
};

/// Which thermostat a ThermostatSpec resolves to.
enum class ThermostatKind {
  kNone,         ///< no thermostat: NVE
  kRescale,      ///< VelocityRescaleThermostat
  kBerendsen,    ///< BerendsenThermostat
  kNoseHoover,   ///< NoseHooverThermostat
};

/// Declarative, value-semantic thermostat description (kind + parameters).
///
/// MdOptions carries one of these instead of an owned Thermostat pointer,
/// so integration options can be copied, compared, serialized into job
/// specs and checkpoints, and stamped out once per worker by the job
/// runner.  The driver resolves the spec into a concrete Thermostat with
/// resolve(); fields irrelevant to the chosen kind are ignored.
struct ThermostatSpec {
  ThermostatKind kind = ThermostatKind::kNone;
  double target_kelvin = 300.0;
  double tau_fs = 50.0;    ///< coupling time constant (Berendsen/Nose-Hoover)
  int interval = 1;        ///< rescale cadence (VelocityRescale)
  int chain_length = 2;    ///< Nose-Hoover chain length

  /// NVE (no thermostat).
  [[nodiscard]] static ThermostatSpec none() { return {}; }

  [[nodiscard]] static ThermostatSpec rescale(double target_kelvin,
                                              int interval = 1) {
    ThermostatSpec s;
    s.kind = ThermostatKind::kRescale;
    s.target_kelvin = target_kelvin;
    s.interval = interval;
    return s;
  }

  [[nodiscard]] static ThermostatSpec berendsen(double target_kelvin,
                                                double tau_fs = 100.0) {
    ThermostatSpec s;
    s.kind = ThermostatKind::kBerendsen;
    s.target_kelvin = target_kelvin;
    s.tau_fs = tau_fs;
    return s;
  }

  [[nodiscard]] static ThermostatSpec nose_hoover(double target_kelvin,
                                                  double tau_fs = 50.0,
                                                  int chain_length = 2) {
    ThermostatSpec s;
    s.kind = ThermostatKind::kNoseHoover;
    s.target_kelvin = target_kelvin;
    s.tau_fs = tau_fs;
    s.chain_length = chain_length;
    return s;
  }

  /// True when the spec resolves to an actual thermostat (NVT ensemble).
  [[nodiscard]] bool active() const { return kind != ThermostatKind::kNone; }

  /// Construct the thermostat this spec describes; nullptr for kNone.
  [[nodiscard]] std::unique_ptr<Thermostat> resolve() const;

  /// Spec from its config spelling ("none"/"nve", "rescale", "berendsen",
  /// "nose-hoover"); throws tbmd::Error on unknown names.
  [[nodiscard]] static ThermostatSpec by_name(const std::string& name,
                                              double target_kelvin);

  /// Config spelling of kind (round-trips through by_name).
  [[nodiscard]] std::string kind_name() const;
};

/// Hard velocity rescaling to the exact target temperature every
/// `interval` steps.  No conserved quantity; equilibration tool.
class VelocityRescaleThermostat final : public Thermostat {
 public:
  VelocityRescaleThermostat(double target_kelvin, int interval = 1)
      : Thermostat(target_kelvin), interval_(interval) {}

  void begin_step(System&, double) override {}
  void end_step(System& system, double dt) override;
  [[nodiscard]] double energy(const System&) const override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "rescale"; }
  [[nodiscard]] std::vector<double> state() const override {
    return {static_cast<double>(step_)};
  }
  void set_state(const std::vector<double>& state) override;

 private:
  int interval_;
  long step_ = 0;
};

/// Berendsen weak-coupling thermostat with time constant tau (fs).
/// Exponential relaxation towards the target; not canonical, but smooth.
class BerendsenThermostat final : public Thermostat {
 public:
  BerendsenThermostat(double target_kelvin, double tau_fs = 100.0)
      : Thermostat(target_kelvin), tau_(tau_fs) {}

  void begin_step(System&, double) override {}
  void end_step(System& system, double dt) override;
  [[nodiscard]] double energy(const System&) const override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "berendsen"; }

 private:
  double tau_;
};

/// Nose-Hoover chain thermostat (chain length 1 = plain Nose-Hoover).
///
/// Thermostat masses default to Q_1 = N_f kB T tau^2, Q_k = kB T tau^2 for
/// the rest of the chain.  The conserved quantity of the extended system is
///   H' = KE + PE + sum_k Q_k v_k^2 / 2 + N_f kB T eta_1 + kB T sum_{k>1} eta_k
/// and is exposed through energy() (minus KE + PE, which the driver adds).
class NoseHooverThermostat final : public Thermostat {
 public:
  /// \param target_kelvin  target temperature
  /// \param tau_fs         thermostat time constant (fs)
  /// \param chain_length   1 for plain Nose-Hoover, >= 2 for chains
  NoseHooverThermostat(double target_kelvin, double tau_fs = 50.0,
                       int chain_length = 2);

  void begin_step(System& system, double dt) override { chain_step(system, dt); }
  void end_step(System& system, double dt) override { chain_step(system, dt); }

  [[nodiscard]] double energy(const System& system) const override;
  [[nodiscard]] std::string name() const override { return "nose-hoover"; }

  /// Gradually change the target temperature (the "0.5 K/fs ramp" protocol
  /// of the paper's simulations): called once per step by the driver when a
  /// ramp is active.
  void set_target(double kelvin) override { target_ = kelvin; }

  /// Thermostat degrees of freedom (for tests/diagnostics).
  [[nodiscard]] const std::vector<double>& positions() const { return eta_; }
  [[nodiscard]] const std::vector<double>& velocities() const { return veta_; }

  /// Chain state as {eta_1..eta_m, veta_1..veta_m}.
  [[nodiscard]] std::vector<double> state() const override;
  void set_state(const std::vector<double>& state) override;

 private:
  void chain_step(System& system, double dt);
  [[nodiscard]] double mass(std::size_t k, double dof) const;

  double tau_;
  std::vector<double> eta_;   ///< thermostat positions
  std::vector<double> veta_;  ///< thermostat velocities
};

}  // namespace tbmd::md
