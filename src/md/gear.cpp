#include "src/md/gear.hpp"

#include "src/util/error.hpp"

namespace tbmd::md {

namespace {
// Gear 5th-order corrector coefficients for second-order ODEs
// (Allen & Tildesley, Computer Simulation of Liquids, Table E.1).
constexpr double kGear[6] = {3.0 / 16.0,  251.0 / 360.0, 1.0,
                             11.0 / 18.0, 1.0 / 6.0,     1.0 / 60.0};
}  // namespace

GearDriver::GearDriver(System& system, Calculator& calculator, double dt)
    : system_(&system), calculator_(&calculator), dt_(dt) {
  TBMD_REQUIRE(dt > 0.0, "GearDriver: timestep must be positive");
  result_ = calculator_->compute(*system_);
  TBMD_REQUIRE(result_.forces.size() == system_->size(),
               "GearDriver: calculator returned wrong force count");
  // Initialize the second derivative from the forces; higher ones to zero.
  d_.assign(4, std::vector<Vec3>(system_->size(), Vec3{}));
  for (std::size_t i = 0; i < system_->size(); ++i) {
    d_[0][i] = (0.5 * dt_ * dt_ / system_->mass(i)) * result_.forces[i];
  }
}

void GearDriver::step() {
  System& sys = *system_;
  const std::size_t n = sys.size();
  auto& pos = sys.positions();
  auto& vel = sys.velocities();
  auto& r2 = d_[0];  // a dt^2/2
  auto& r3 = d_[1];  // b dt^3/6
  auto& r4 = d_[2];
  auto& r5 = d_[3];

  // Predictor: Taylor-expand all stored derivatives (Pascal triangle).
  for (std::size_t i = 0; i < n; ++i) {
    if (sys.frozen(i)) continue;
    const Vec3 v1 = dt_ * vel[i];
    pos[i] += v1 + r2[i] + r3[i] + r4[i] + r5[i];
    const Vec3 nv1 =
        v1 + 2.0 * r2[i] + 3.0 * r3[i] + 4.0 * r4[i] + 5.0 * r5[i];
    vel[i] = nv1 / dt_;
    r2[i] += 3.0 * r3[i] + 6.0 * r4[i] + 10.0 * r5[i];
    r3[i] += 4.0 * r4[i] + 10.0 * r5[i];
    r4[i] += 5.0 * r5[i];
  }

  // Evaluate forces at the predicted positions.
  result_ = calculator_->compute(sys);

  // Corrector: distribute the acceleration error over all derivatives.
  for (std::size_t i = 0; i < n; ++i) {
    if (sys.frozen(i)) continue;
    const Vec3 correct =
        (0.5 * dt_ * dt_ / sys.mass(i)) * result_.forces[i] - r2[i];
    pos[i] += kGear[0] * correct;
    vel[i] += (kGear[1] / dt_) * correct;
    r2[i] += kGear[2] * correct;
    r3[i] += kGear[3] * correct;
    r4[i] += kGear[4] * correct;
    r5[i] += kGear[5] * correct;
  }
  ++step_count_;
}

void GearDriver::run(long n_steps) {
  for (long q = 0; q < n_steps; ++q) step();
}

}  // namespace tbmd::md
