#include "src/md/velocities.hpp"

#include <cmath>

#include "src/util/random.hpp"
#include "src/util/units.hpp"

namespace tbmd::md {

void maxwell_boltzmann_velocities(System& system, double kelvin,
                                  std::uint64_t seed) {
  Rng rng(seed);
  const double kt = units::kBoltzmann * kelvin;
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (system.frozen(i)) {
      system.velocities()[i] = {};
      continue;
    }
    const double sigma = std::sqrt(kt / system.mass(i));
    system.velocities()[i] = {rng.gaussian(0.0, sigma),
                              rng.gaussian(0.0, sigma),
                              rng.gaussian(0.0, sigma)};
  }
  system.zero_momentum();
  const double t = system.temperature();
  if (t > 0.0 && kelvin > 0.0) {
    const double s = std::sqrt(kelvin / t);
    for (std::size_t i = 0; i < system.size(); ++i) {
      if (!system.frozen(i)) system.velocities()[i] *= s;
    }
  }
}

}  // namespace tbmd::md
