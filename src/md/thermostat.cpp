#include "src/md/thermostat.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"
#include "src/util/units.hpp"

namespace tbmd::md {

void Thermostat::set_state(const std::vector<double>& state) {
  TBMD_REQUIRE(state.empty(),
               name() + ": stateless thermostat given nonempty state");
}

std::unique_ptr<Thermostat> ThermostatSpec::resolve() const {
  switch (kind) {
    case ThermostatKind::kNone:
      return nullptr;
    case ThermostatKind::kRescale:
      return std::make_unique<VelocityRescaleThermostat>(target_kelvin,
                                                         interval);
    case ThermostatKind::kBerendsen:
      return std::make_unique<BerendsenThermostat>(target_kelvin, tau_fs);
    case ThermostatKind::kNoseHoover:
      return std::make_unique<NoseHooverThermostat>(target_kelvin, tau_fs,
                                                    chain_length);
  }
  throw Error("ThermostatSpec: invalid kind");
}

ThermostatSpec ThermostatSpec::by_name(const std::string& name,
                                       double target_kelvin) {
  const std::string kind = to_lower(name);
  if (kind == "none" || kind == "nve") return none();
  if (kind == "rescale") return rescale(target_kelvin);
  if (kind == "berendsen") return berendsen(target_kelvin);
  if (kind == "nose-hoover" || kind == "nosehoover" || kind == "nvt") {
    return nose_hoover(target_kelvin);
  }
  throw Error("ThermostatSpec: unknown thermostat '" + name + "'");
}

std::string ThermostatSpec::kind_name() const {
  switch (kind) {
    case ThermostatKind::kNone:
      return "none";
    case ThermostatKind::kRescale:
      return "rescale";
    case ThermostatKind::kBerendsen:
      return "berendsen";
    case ThermostatKind::kNoseHoover:
      return "nose-hoover";
  }
  throw Error("ThermostatSpec: invalid kind");
}

void VelocityRescaleThermostat::set_state(const std::vector<double>& state) {
  TBMD_REQUIRE(state.size() == 1, "rescale: state must be {step}");
  step_ = static_cast<long>(state[0]);
}

void VelocityRescaleThermostat::end_step(System& system, double /*dt*/) {
  if (interval_ > 1 && (step_++ % interval_) != 0) return;
  const double t = system.temperature();
  if (t <= 0.0) return;
  const double s = std::sqrt(target_ / t);
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (!system.frozen(i)) system.velocities()[i] *= s;
  }
}

void BerendsenThermostat::end_step(System& system, double dt) {
  const double t = system.temperature();
  if (t <= 0.0) return;
  const double s =
      std::sqrt(1.0 + (dt / tau_) * (target_ / t - 1.0));
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (!system.frozen(i)) system.velocities()[i] *= s;
  }
}

NoseHooverThermostat::NoseHooverThermostat(double target_kelvin, double tau_fs,
                                           int chain_length)
    : Thermostat(target_kelvin), tau_(tau_fs) {
  TBMD_REQUIRE(chain_length >= 1, "nose-hoover: chain length must be >= 1");
  TBMD_REQUIRE(tau_fs > 0.0, "nose-hoover: tau must be positive");
  eta_.assign(chain_length, 0.0);
  veta_.assign(chain_length, 0.0);
}

double NoseHooverThermostat::mass(std::size_t k, double dof) const {
  const double kt = units::kBoltzmann * target_;
  return (k == 0 ? dof : 1.0) * kt * tau_ * tau_;
}

void NoseHooverThermostat::chain_step(System& system, double dt) {
  const double dof = 3.0 * static_cast<double>(system.mobile_count());
  if (dof == 0.0) return;
  const double kt = units::kBoltzmann * target_;
  const std::size_t m = eta_.size();
  const double dt2 = 0.5 * dt;
  const double dt4 = 0.25 * dt;
  const double dt8 = 0.125 * dt;

  double ke2 = 2.0 * system.kinetic_energy();

  // Update chain tail -> head.
  for (std::size_t k = m; k-- > 0;) {
    const double gk =
        (k == 0) ? (ke2 - dof * kt) / mass(0, dof)
                 : (mass(k - 1, dof) * veta_[k - 1] * veta_[k - 1] - kt) /
                       mass(k, dof);
    if (k + 1 < m) {
      const double decay = std::exp(-dt8 * veta_[k + 1]);
      veta_[k] = veta_[k] * decay * decay + gk * dt4 * decay;
    } else {
      veta_[k] += gk * dt4;
    }
  }

  // Scale particle velocities and advance thermostat positions.
  const double scale = std::exp(-dt2 * veta_[0]);
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (!system.frozen(i)) system.velocities()[i] *= scale;
  }
  ke2 *= scale * scale;
  for (std::size_t k = 0; k < m; ++k) eta_[k] += dt2 * veta_[k];

  // Update chain head -> tail.
  for (std::size_t k = 0; k < m; ++k) {
    const double gk =
        (k == 0) ? (ke2 - dof * kt) / mass(0, dof)
                 : (mass(k - 1, dof) * veta_[k - 1] * veta_[k - 1] - kt) /
                       mass(k, dof);
    if (k + 1 < m) {
      const double decay = std::exp(-dt8 * veta_[k + 1]);
      veta_[k] = veta_[k] * decay * decay + gk * dt4 * decay;
    } else {
      veta_[k] += gk * dt4;
    }
  }
}

std::vector<double> NoseHooverThermostat::state() const {
  std::vector<double> s;
  s.reserve(2 * eta_.size());
  s.insert(s.end(), eta_.begin(), eta_.end());
  s.insert(s.end(), veta_.begin(), veta_.end());
  return s;
}

void NoseHooverThermostat::set_state(const std::vector<double>& state) {
  TBMD_REQUIRE(state.size() == 2 * eta_.size(),
               "nose-hoover: state must be {eta..., veta...} for the "
               "configured chain length");
  const std::size_t m = eta_.size();
  for (std::size_t k = 0; k < m; ++k) eta_[k] = state[k];
  for (std::size_t k = 0; k < m; ++k) veta_[k] = state[m + k];
}

double NoseHooverThermostat::energy(const System& system) const {
  const double dof = 3.0 * static_cast<double>(system.mobile_count());
  const double kt = units::kBoltzmann * target_;
  double e = 0.0;
  for (std::size_t k = 0; k < eta_.size(); ++k) {
    e += 0.5 * mass(k, dof) * veta_[k] * veta_[k];
    e += (k == 0 ? dof : 1.0) * kt * eta_[k];
  }
  return e;
}

}  // namespace tbmd::md
