#include "src/md/md_driver.hpp"

#include "src/util/error.hpp"

namespace tbmd::md {

MdDriver::MdDriver(System& system, Calculator& calculator, MdOptions options)
    : system_(&system), calculator_(&calculator), options_(std::move(options)) {
  TBMD_REQUIRE(options_.dt > 0.0, "MdDriver: timestep must be positive");
  // Initial force evaluation so the first step has forces available.
  result_ = calculator_->compute(*system_);
  TBMD_REQUIRE(result_.forces.size() == system_->size(),
               "MdDriver: calculator returned wrong force count");
}

void MdDriver::step() {
  const double dt = options_.dt;
  System& sys = *system_;
  auto& vel = sys.velocities();
  auto& pos = sys.positions();

  if (options_.thermostat) options_.thermostat->begin_step(sys, dt);

  // First half-kick + drift.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.frozen(i)) continue;
    vel[i] += (0.5 * dt / sys.mass(i)) * result_.forces[i];
    pos[i] += dt * vel[i];
  }

  // New forces at the updated positions.
  result_ = calculator_->compute(sys);

  // Second half-kick.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.frozen(i)) continue;
    vel[i] += (0.5 * dt / sys.mass(i)) * result_.forces[i];
  }

  if (options_.thermostat) options_.thermostat->end_step(sys, dt);
  ++step_count_;
}

void MdDriver::run(long n_steps, const Observer& observer) {
  for (long s = 0; s < n_steps; ++s) {
    step();
    if (observer) observer(*this, step_count_);
  }
}

void MdDriver::ramp_temperature(double kelvin, long n_steps,
                                const Observer& observer) {
  if (!options_.thermostat || n_steps <= 0) return;
  const double t0 = options_.thermostat->target();
  for (long s = 1; s <= n_steps; ++s) {
    const double frac = static_cast<double>(s) / static_cast<double>(n_steps);
    options_.thermostat->set_target(t0 + frac * (kelvin - t0));
    step();
    if (observer) observer(*this, step_count_);
  }
}

double MdDriver::conserved_quantity() const {
  double e = total_energy();
  if (options_.thermostat) e += options_.thermostat->energy(*system_);
  return e;
}

}  // namespace tbmd::md
