#include "src/md/md_driver.hpp"

#include "src/util/error.hpp"

namespace tbmd::md {

MdDriver::MdDriver(System& system, Calculator& calculator, MdOptions options)
    : system_(&system),
      calculator_(&calculator),
      options_(options),
      thermostat_(options.thermostat.resolve()) {
  TBMD_REQUIRE(options_.dt > 0.0, "MdDriver: timestep must be positive");
  // Initial force evaluation so the first step has forces available.
  result_ = calculator_->compute(*system_);
  TBMD_REQUIRE(result_.forces.size() == system_->size(),
               "MdDriver: calculator returned wrong force count");
}

void MdDriver::step() {
  const double dt = options_.dt;
  System& sys = *system_;
  auto& vel = sys.velocities();
  auto& pos = sys.positions();

  if (thermostat_) thermostat_->begin_step(sys, dt);

  // First half-kick + drift.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.frozen(i)) continue;
    vel[i] += (0.5 * dt / sys.mass(i)) * result_.forces[i];
    pos[i] += dt * vel[i];
  }

  // New forces at the updated positions.
  result_ = calculator_->compute(sys);

  // Second half-kick.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.frozen(i)) continue;
    vel[i] += (0.5 * dt / sys.mass(i)) * result_.forces[i];
  }

  if (thermostat_) thermostat_->end_step(sys, dt);
  ++step_count_;
}

void MdDriver::run(long n_steps, const Observer& observer) {
  for (long s = 0; s < n_steps; ++s) {
    step();
    if (observer) observer(*this, step_count_);
  }
}

void MdDriver::ramp_temperature(double kelvin, long n_steps,
                                const Observer& observer) {
  if (!thermostat_ || n_steps <= 0) return;
  const double t0 = thermostat_->target();
  for (long s = 1; s <= n_steps; ++s) {
    const double frac = static_cast<double>(s) / static_cast<double>(n_steps);
    thermostat_->set_target(t0 + frac * (kelvin - t0));
    step();
    if (observer) observer(*this, step_count_);
  }
}

void MdDriver::restore(long step_count, double thermostat_target,
                       const std::vector<double>& thermostat_state) {
  TBMD_REQUIRE(step_count >= 0, "MdDriver::restore: negative step count");
  step_count_ = step_count;
  if (thermostat_) {
    thermostat_->set_target(thermostat_target);
    thermostat_->set_state(thermostat_state);
  }
}

double MdDriver::conserved_quantity() const {
  double e = total_energy();
  if (thermostat_) e += thermostat_->energy(*system_);
  return e;
}

}  // namespace tbmd::md
