#pragma once

/// \file velocities.hpp
/// \brief Maxwell-Boltzmann velocity initialization.

#include <cstdint>

#include "src/core/system.hpp"

namespace tbmd::md {

/// Draw velocities from the Maxwell-Boltzmann distribution at `kelvin`,
/// remove the center-of-mass drift, and rescale so the instantaneous
/// temperature equals `kelvin` exactly.  Frozen atoms keep zero velocity.
/// Deterministic in `seed`.
void maxwell_boltzmann_velocities(System& system, double kelvin,
                                  std::uint64_t seed);

}  // namespace tbmd::md
