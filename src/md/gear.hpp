#pragma once

/// \file gear.hpp
/// \brief 5th-order Gear predictor-corrector integrator.
///
/// The dominant MD integrator of the 1980s-early 90s literature and the
/// era-authentic alternative to velocity Verlet.  Higher short-time
/// accuracy (useful for vibrational spectra) but no symplectic long-time
/// energy bound -- the trade-off quantified by the EXP-A1 ablation.

#include <vector>

#include "src/core/calculator.hpp"
#include "src/core/system.hpp"

namespace tbmd::md {

/// 5th-order Gear predictor-corrector driver (NVE only).
///
/// Keeps Taylor derivatives up to r^(5) per atom.  One force evaluation
/// per step, like Verlet.
class GearDriver {
 public:
  GearDriver(System& system, Calculator& calculator, double dt);

  /// Advance one timestep.
  void step();

  /// Advance n steps.
  void run(long n_steps);

  [[nodiscard]] const ForceResult& last_result() const { return result_; }
  [[nodiscard]] double total_energy() const {
    return system_->kinetic_energy() + result_.energy;
  }
  [[nodiscard]] long step_count() const { return step_count_; }
  [[nodiscard]] System& system() { return *system_; }

 private:
  System* system_;
  Calculator* calculator_;
  double dt_;
  ForceResult result_;
  long step_count_ = 0;
  // Scaled Taylor derivatives: d_[k][i] = r_i^(k) dt^k / k!  for k = 2..5.
  std::vector<std::vector<Vec3>> d_;
};

}  // namespace tbmd::md
