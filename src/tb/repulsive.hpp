#pragma once

/// \file repulsive.hpp
/// \brief The short-range repulsive part of the tight-binding total energy.
///
/// Two functional forms are supported (tb_model.hpp):
///   * pair sum            E = sum_{i<j} phi(r_ij)                  (GSP)
///   * embedded polynomial E = sum_i f( x_i ), x_i = sum_j phi(r_ij) (XWCH)
/// with phi(r) = phi0 * s_rep(r) sharing the GSP radial form.

#include <vector>

#include "src/core/system.hpp"
#include "src/geom/vec3.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

class BondTable;

/// Energy, per-atom forces and virial of the repulsive term.
struct RepulsiveResult {
  double energy = 0.0;
  std::vector<Vec3> forces;
  Mat3 virial{};
};

/// Evaluate the repulsive energy and forces from a prebuilt bond table
/// (the per-bond phi(r), phi'(r) values are read from the table, so the
/// radial function is never re-evaluated here).
[[nodiscard]] RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                                      const BondTable& table);

/// Convenience overload: evaluate a BondTable from `list` first.
[[nodiscard]] RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                                      const System& system,
                                                      const NeighborList& list);

}  // namespace tbmd::tb
