#pragma once

/// \file occupations.hpp
/// \brief Electronic occupation numbers: zero-temperature filling and
/// Fermi-Dirac smearing with chemical-potential bisection.

#include <vector>

namespace tbmd::tb {

/// Occupation result: per-state occupancies including the spin factor
/// (each w_n is in [0, 2]), the chemical potential, band energy and
/// electronic entropy contribution -T*S (eV; zero at T = 0).
struct Occupations {
  std::vector<double> weights;  ///< w_n in [0, 2]
  double fermi_level = 0.0;     ///< chemical potential mu (eV)
  double band_energy = 0.0;     ///< sum_n w_n eps_n (eV)
  double entropy_term = 0.0;    ///< -T S_el (eV); add for Mermin free energy
};

/// Fill `n_electrons` into spin-degenerate states with the given ascending
/// eigenvalues.
///
/// temperature == 0: aufbau filling (2 per state); an odd electron leaves a
/// half-filled HOMO and the reported Fermi level is the HOMO/LUMO midpoint.
/// temperature > 0 (kelvin): Fermi-Dirac occupations with mu found by
/// bisection so that sum_n w_n = n_electrons.
[[nodiscard]] Occupations occupy(const std::vector<double>& eigenvalues,
                                 int n_electrons, double temperature);

}  // namespace tbmd::tb
