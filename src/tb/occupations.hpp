#pragma once

/// \file occupations.hpp
/// \brief Electronic occupation numbers: zero-temperature filling and
/// Fermi-Dirac smearing with chemical-potential bisection.

#include <vector>

namespace tbmd::tb {

/// Dimensionless cutoff of the Fermi exponent: the smearing function
/// returns exactly 0 for (eps - mu)/kT > kFermiTailCutoff and exactly 1
/// below -kFermiTailCutoff.  The partial-spectrum coverage check in the TB
/// calculator relies on the exact-zero property, so both must share this
/// one constant.
inline constexpr double kFermiTailCutoff = 40.0;

/// Occupation result: per-state occupancies including the spin factor
/// (each w_n is in [0, 2]), the chemical potential, band energy and
/// electronic entropy contribution -T*S (eV; zero at T = 0).
struct Occupations {
  std::vector<double> weights;  ///< w_n in [0, 2]
  double fermi_level = 0.0;     ///< chemical potential mu (eV)
  double band_energy = 0.0;     ///< sum_n w_n eps_n (eV)
  double entropy_term = 0.0;    ///< -T S_el (eV); add for Mermin free energy
};

/// Fill `n_electrons` into spin-degenerate states with the given ascending
/// eigenvalues.
///
/// temperature == 0: aufbau filling (2 per state); an odd electron leaves a
/// half-filled HOMO and the reported Fermi level is the HOMO/LUMO midpoint.
/// temperature > 0 (kelvin): Fermi-Dirac occupations with mu found by
/// bisection so that sum_n w_n = n_electrons.
///
/// `eigenvalues` may be a truncated low-lying prefix of the spectrum (the
/// partial-spectrum solver hands over only the states it computed).  The
/// result then matches the full-spectrum answer exactly whenever the
/// truncated tail carries no weight; at T > 0 the caller must verify that
/// the top supplied state sits >= 40 kT above the returned Fermi level (the
/// TB calculator's coverage check) and fall back to the full spectrum
/// otherwise.
[[nodiscard]] Occupations occupy(const std::vector<double>& eigenvalues,
                                 int n_electrons, double temperature);

}  // namespace tbmd::tb
