#include "src/tb/tb_calculator.hpp"

#include <algorithm>
#include <utility>

#include "src/linalg/eigen_partial.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/forces.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/repulsive.hpp"
#include "src/util/units.hpp"

namespace tbmd::tb {

TightBindingCalculator::TightBindingCalculator(TbModel model, TbOptions options)
    : model_(std::move(model)), options_(options) {}

ForceResult TightBindingCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  if (n == 0) return result;

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {model_.cutoff(), options_.skin});
  }

  // One batched pass evaluates every Slater-Koster block, its derivative
  // and the repulsive pair function; Hamiltonian assembly, the force
  // contraction and the repulsive term below all read from this table.
  {
    auto t = timers_.scope("bondtable");
    table_.build(model_, system, list_, BondTable::Mode::kBlocksAndDerivatives);
  }

  linalg::Matrix h;
  {
    auto t = timers_.scope("hamiltonian");
    h = build_hamiltonian(model_, system, table_);
  }

  const std::size_t norb = h.rows();
  const int ne = system.total_valence_electrons();
  const double etemp = options_.electronic_temperature;

  // Partial-spectrum policy: occupations / density matrix / forces only
  // involve the occupied states, so ask eigh_range for indices [0, iu] with
  // iu = LUMO (T = 0) or LUMO + a Fermi-tail buffer (T > 0), and keep the
  // full solver for spectrum-reporting or forced-full configurations.
  const bool want_partial =
      options_.spectrum == SpectrumMode::kPartial ||
      (options_.spectrum == SpectrumMode::kAuto &&
       !options_.report_eigenvalues);

  bool partial = false;
  linalg::SymmetricEigenSolution eig;
  {
    auto t = timers_.scope("diagonalize");
    if (want_partial && ne > 0 && norb > 0) {
      const auto homo = static_cast<std::size_t>((ne - 1) / 2);
      std::size_t needed = homo + 1;  // + LUMO for the Fermi-level midpoint
      if (etemp > 0.0) {
        // Fermi tail buffer, widened by what earlier fallbacks learned.
        needed += std::max({std::size_t{16}, norb / 8, tail_hint_});
      }
      const std::size_t iu = std::min(norb - 1, needed);
      partial = iu + 1 < norb;
      if (partial) eig = linalg::eigh_range(h, 0, iu);
    }
    if (!partial) eig = linalg::eigh(h);
  }

  Occupations occ;
  {
    auto t = timers_.scope("density");
    occ = occupy(eig.values, ne, etemp);
  }
  if (partial && etemp > 0.0 &&
      eig.values.back() <
          occ.fermi_level + kFermiTailCutoff * units::kBoltzmann * etemp) {
    // The Fermi tail was not fully inside the computed window, so omitted
    // states could carry weight: redo with the full spectrum.  (With the
    // window check passed, every omitted state has exactly zero occupation
    // and the partial result is identical to the full one.)
    partial = false;
    {
      auto t = timers_.scope("diagonalize");
      eig = linalg::eigh(h);
    }
    {
      auto t = timers_.scope("density");
      occ = occupy(eig.values, ne, etemp);
    }
    // Learn the window this system actually needs so later steps go back
    // to a single (partial or full) solve instead of paying for both.
    const double top =
        occ.fermi_level + kFermiTailCutoff * units::kBoltzmann * etemp;
    std::size_t covered = 0;
    while (covered < eig.values.size() && eig.values[covered] < top) ++covered;
    const auto homo = static_cast<std::size_t>((ne - 1) / 2);
    const std::size_t beyond_lumo =
        (covered > homo + 1) ? covered - (homo + 1) : 0;
    tail_hint_ = std::max(tail_hint_, beyond_lumo + norb / 16 + 8);
  }

  linalg::Matrix rho;
  {
    auto t = timers_.scope("density");
    rho = density_matrix(eig.vectors, occ.weights);
  }

  {
    auto t = timers_.scope("forces");
    result.forces = band_forces(table_, rho, &result.virial);
  }

  RepulsiveResult rep;
  {
    auto t = timers_.scope("repulsive");
    rep = repulsive_energy_forces(model_, table_);
  }

  for (std::size_t i = 0; i < n; ++i) result.forces[i] += rep.forces[i];
  result.virial += rep.virial;

  result.band_energy = occ.band_energy;
  result.repulsive_energy = rep.energy;
  result.energy = occ.band_energy + occ.entropy_term + rep.energy;
  result.fermi_level = occ.fermi_level;
  if (options_.report_eigenvalues) result.eigenvalues = std::move(eig.values);
  return result;
}

}  // namespace tbmd::tb
