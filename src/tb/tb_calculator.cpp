#include "src/tb/tb_calculator.hpp"

#include <utility>

#include "src/linalg/eigen_sym.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/forces.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/repulsive.hpp"

namespace tbmd::tb {

TightBindingCalculator::TightBindingCalculator(TbModel model, TbOptions options)
    : model_(std::move(model)), options_(options) {}

ForceResult TightBindingCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  if (n == 0) return result;

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {model_.cutoff(), options_.skin});
  }

  linalg::Matrix h;
  {
    auto t = timers_.scope("hamiltonian");
    h = build_hamiltonian(model_, system, list_);
  }

  linalg::SymmetricEigenSolution eig;
  {
    auto t = timers_.scope("diagonalize");
    eig = linalg::eigh(h);
  }

  Occupations occ;
  linalg::Matrix rho;
  {
    auto t = timers_.scope("density");
    occ = occupy(eig.values, system.total_valence_electrons(),
                 options_.electronic_temperature);
    rho = density_matrix(eig.vectors, occ.weights);
  }

  {
    auto t = timers_.scope("forces");
    result.forces = band_forces(model_, system, list_, rho, &result.virial);
  }

  RepulsiveResult rep;
  {
    auto t = timers_.scope("repulsive");
    rep = repulsive_energy_forces(model_, system, list_);
  }

  for (std::size_t i = 0; i < n; ++i) result.forces[i] += rep.forces[i];
  result.virial += rep.virial;

  result.band_energy = occ.band_energy;
  result.repulsive_energy = rep.energy;
  result.energy = occ.band_energy + occ.entropy_term + rep.energy;
  result.fermi_level = occ.fermi_level;
  if (options_.report_eigenvalues) result.eigenvalues = std::move(eig.values);
  return result;
}

}  // namespace tbmd::tb
