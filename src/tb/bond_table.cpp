#include "src/tb/bond_table.hpp"

#include <algorithm>

#include "src/tb/hamiltonian.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

void BondTable::build(const TbModel& model, const System& system,
                      const NeighborList& list, Mode mode,
                      double reuse_skin) {
  check_species(model, system);
  const auto& pairs = list.half_pairs();
  const auto& pos = system.positions();
  const bool multi = model.multi_species();
  // Topology-change detection: a different pair count, atom count or block
  // layout is a change outright; otherwise the batched pass below compares
  // every bond's endpoints and hopping_zero flag against the previous
  // build (reading the old SoA values just before overwriting them).
  const bool same_shape = nbonds_ == pairs.size() &&
                          natoms_ == system.size() && uniform_ == !multi;
  int topo_changed = same_shape ? 0 : 1;
  nbonds_ = pairs.size();
  TBMD_REQUIRE(list.size() == system.size(),
               "BondTable: neighbor list was built for a different system");

  // Per-atom species and orbital layout.  Legacy models keep the uniform
  // 4-orbital block; multi-species models read the species table (a
  // species swap at fixed geometry changes block shapes, so it counts as a
  // topology change too).
  if (natoms_ != system.size()) atom_orbs_.clear();
  natoms_ = system.size();
  atom_orbs_.resize(natoms_, 0);
  atom_orb_off_.resize(natoms_ + 1);
  if (multi) {
    spi_.resize(natoms_);
    const auto& species = system.species();
    for (std::size_t a = 0; a < natoms_; ++a) {
      spi_[a] = model.species_index(species[a]);
      const auto orbs = static_cast<std::uint8_t>(
          model.orbitals(static_cast<std::size_t>(spi_[a])));
      if (same_shape && atom_orbs_[a] != orbs) topo_changed = 1;
      atom_orbs_[a] = orbs;
    }
  } else {
    std::fill(atom_orbs_.begin(), atom_orbs_.end(), std::uint8_t{4});
  }
  atom_orb_off_[0] = 0;
  for (std::size_t a = 0; a < natoms_; ++a) {
    atom_orb_off_[a + 1] = atom_orb_off_[a] + atom_orbs_[a];
  }
  uniform_ = !multi;

  const bool blocks = mode != Mode::kRepulsiveOnly;
  const bool derivs = mode == Mode::kBlocksAndDerivatives;
  const bool rep = mode != Mode::kBlocks;
  i_.resize(nbonds_);
  j_.resize(nbonds_);
  bond_.resize(nbonds_);
  r_.resize(nbonds_);
  std::size_t hdoubles = 16 * nbonds_;
  if (uniform_) {
    hoff_.clear();
  } else {
    hoff_.resize(nbonds_ + 1);
    hoff_[0] = 0;
    for (std::size_t p = 0; p < nbonds_; ++p) {
      const NeighborPair& pr = pairs[p];
      hoff_[p + 1] = hoff_[p] + static_cast<std::size_t>(atom_orbs_[pr.i]) *
                                    static_cast<std::size_t>(atom_orbs_[pr.j]);
    }
    hdoubles = hoff_[nbonds_];
  }
  h_.resize(blocks ? hdoubles : 0);
  dh_.resize(derivs ? 3 * hdoubles : 0);
  hop_zero_.resize(nbonds_);
  rep_val_.resize(rep ? nbonds_ : 0);
  rep_der_.resize(rep ? nbonds_ : 0);

  // Verlet-skin bond reuse (see the header doc): mark atoms that moved at
  // least reuse_skin / 2 from the positions their bonds were last
  // evaluated at, and re-anchor exactly those.  Reuse requires the
  // previous build to have filled the same arrays for the same bond list
  // (same shape, same mode); everything else falls back to a full
  // evaluation pass and re-anchors every atom.
  const bool want_reuse = reuse_skin > 0.0;
  const bool reuse_ok = want_reuse && same_shape && mode == last_mode_ &&
                        eval_pos_.size() == natoms_;
  if (want_reuse) {
    moved_.resize(natoms_);
    if (!reuse_ok) {
      eval_pos_.assign(pos.begin(), pos.end());
      std::fill(moved_.begin(), moved_.end(), std::uint8_t{1});
    } else {
      const double thr2 = 0.25 * reuse_skin * reuse_skin;
      for (std::size_t a = 0; a < natoms_; ++a) {
        const Vec3 d = pos[a] - eval_pos_[a];
        moved_[a] = dot(d, d) >= thr2 ? 1 : 0;
        if (moved_[a] != 0) eval_pos_[a] = pos[a];
      }
    }
  } else {
    eval_pos_.clear();
  }
  last_mode_ = mode;
  std::size_t reused = 0;

  // The batched pass: geometry, hopping block (+ derivative) and repulsive
  // radial per bond, each written straight into the SoA arrays.  Pairs are
  // independent, so a static schedule keeps every thread streaming.
#pragma omp parallel for schedule(static) reduction(| : topo_changed) \
    reduction(+ : reused)
  for (std::size_t p = 0; p < nbonds_; ++p) {
    const NeighborPair& pr = pairs[p];
    if (reuse_ok && moved_[pr.i] == 0 && moved_[pr.j] == 0 &&
        i_[p] == static_cast<std::uint32_t>(pr.i) &&
        j_[p] == static_cast<std::uint32_t>(pr.j)) {
      // Both endpoints inside the half-skin of their anchors and the bond
      // identity unchanged: every stored quantity (including hop_zero_,
      // since the frozen length is the stored one) stays valid.
      ++reused;
      continue;
    }
    const Vec3 b = pos[pr.j] + pr.shift - pos[pr.i];
    const double r = norm(b);
    const PairParams* pp = nullptr;
    double hop_cut = model.hopping.r_cut;
    if (multi) {
      pp = &model.pair(static_cast<std::size_t>(spi_[pr.i]),
                       static_cast<std::size_t>(spi_[pr.j]));
      hop_cut = pp->hopping.r_cut;
    }
    const std::uint8_t hz = r >= hop_cut ? 1 : 0;
    if (same_shape && (i_[p] != static_cast<std::uint32_t>(pr.i) ||
                       j_[p] != static_cast<std::uint32_t>(pr.j) ||
                       hop_zero_[p] != hz)) {
      topo_changed = 1;
    }
    i_[p] = static_cast<std::uint32_t>(pr.i);
    j_[p] = static_cast<std::uint32_t>(pr.j);
    bond_[p] = b;
    r_[p] = r;
    if (blocks) {
      if (multi) {
        sk_pair_block_into(*pp, atom_orbs_[pr.i], atom_orbs_[pr.j], b, r,
                           h_.data() + hoff_[p],
                           derivs ? dh_.data() + 3 * hoff_[p] : nullptr);
      } else {
        sk_block_into(model, b, r, h_.data() + 16 * p,
                      derivs ? dh_.data() + 48 * p : nullptr);
      }
    }
    hop_zero_[p] = hz;
    if (rep) {
      const RadialScaling& rsc = multi ? pp->repulsive : model.repulsive;
      const double phi0 = multi ? pp->phi0 : model.phi0;
      const RadialValue rv = evaluate_scaling(rsc, r);
      rep_val_[p] = phi0 * rv.value;
      rep_der_[p] = phi0 * rv.derivative;
    }
  }
  if (topo_changed != 0 || topology_version_ == 0) ++topology_version_;
  reuse_stats_.reused += reused;
  reuse_stats_.evaluated += nbonds_ - reused;

  // Per-atom CSR adjacency (counting sort over both bond endpoints), each
  // atom's segment sorted by neighbor index so CSR-building consumers can
  // emit ordered rows directly.
  adj_ptr_.assign(natoms_ + 1, 0);
  for (std::size_t p = 0; p < nbonds_; ++p) {
    ++adj_ptr_[i_[p] + 1];
    ++adj_ptr_[j_[p] + 1];
  }
  for (std::size_t a = 0; a < natoms_; ++a) adj_ptr_[a + 1] += adj_ptr_[a];
  adj_.resize(2 * nbonds_);
  std::vector<std::size_t> fill(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (std::size_t p = 0; p < nbonds_; ++p) {
    const auto bp = static_cast<std::uint32_t>(p);
    adj_[fill[i_[p]]++] = AtomBond{bp, j_[p], 0};
    adj_[fill[j_[p]]++] = AtomBond{bp, i_[p], 1};
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t a = 0; a < natoms_; ++a) {
    std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(adj_ptr_[a]),
              adj_.begin() + static_cast<std::ptrdiff_t>(adj_ptr_[a + 1]),
              [](const AtomBond& x, const AtomBond& y) {
                return x.neighbor < y.neighbor;
              });
  }
}

}  // namespace tbmd::tb
