#include "src/tb/bond_table.hpp"

#include <algorithm>

#include "src/tb/hamiltonian.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

void BondTable::build(const TbModel& model, const System& system,
                      const NeighborList& list, Mode mode) {
  check_species(model, system);
  const auto& pairs = list.half_pairs();
  const auto& pos = system.positions();
  // Topology-change detection: a different pair count or atom count is a
  // change outright; otherwise the batched pass below compares every
  // bond's endpoints and hopping_zero flag against the previous build
  // (reading the old SoA values just before overwriting them).
  const bool same_shape =
      nbonds_ == pairs.size() && natoms_ == system.size();
  nbonds_ = pairs.size();
  natoms_ = system.size();
  TBMD_REQUIRE(list.size() == natoms_,
               "BondTable: neighbor list was built for a different system");

  const bool blocks = mode != Mode::kRepulsiveOnly;
  const bool derivs = mode == Mode::kBlocksAndDerivatives;
  const bool rep = mode != Mode::kBlocks;
  i_.resize(nbonds_);
  j_.resize(nbonds_);
  bond_.resize(nbonds_);
  r_.resize(nbonds_);
  h_.resize(blocks ? 16 * nbonds_ : 0);
  dh_.resize(derivs ? 48 * nbonds_ : 0);
  hop_zero_.resize(nbonds_);
  rep_val_.resize(rep ? nbonds_ : 0);
  rep_der_.resize(rep ? nbonds_ : 0);

  // The batched pass: geometry, hopping block (+ derivative) and repulsive
  // radial per bond, each written straight into the SoA arrays.  Pairs are
  // independent, so a static schedule keeps every thread streaming.
  int topo_changed = same_shape ? 0 : 1;
#pragma omp parallel for schedule(static) reduction(| : topo_changed)
  for (std::size_t p = 0; p < nbonds_; ++p) {
    const NeighborPair& pr = pairs[p];
    const Vec3 b = pos[pr.j] + pr.shift - pos[pr.i];
    const double r = norm(b);
    const std::uint8_t hz = r >= model.hopping.r_cut ? 1 : 0;
    if (same_shape && (i_[p] != static_cast<std::uint32_t>(pr.i) ||
                       j_[p] != static_cast<std::uint32_t>(pr.j) ||
                       hop_zero_[p] != hz)) {
      topo_changed = 1;
    }
    i_[p] = static_cast<std::uint32_t>(pr.i);
    j_[p] = static_cast<std::uint32_t>(pr.j);
    bond_[p] = b;
    r_[p] = r;
    if (blocks) {
      sk_block_into(model, b, r, h_.data() + 16 * p,
                    derivs ? dh_.data() + 48 * p : nullptr);
    }
    hop_zero_[p] = hz;
    if (rep) {
      const RadialValue rv = evaluate_scaling(model.repulsive, r);
      rep_val_[p] = model.phi0 * rv.value;
      rep_der_[p] = model.phi0 * rv.derivative;
    }
  }
  if (topo_changed != 0 || topology_version_ == 0) ++topology_version_;

  // Per-atom CSR adjacency (counting sort over both bond endpoints), each
  // atom's segment sorted by neighbor index so CSR-building consumers can
  // emit ordered rows directly.
  adj_ptr_.assign(natoms_ + 1, 0);
  for (std::size_t p = 0; p < nbonds_; ++p) {
    ++adj_ptr_[i_[p] + 1];
    ++adj_ptr_[j_[p] + 1];
  }
  for (std::size_t a = 0; a < natoms_; ++a) adj_ptr_[a + 1] += adj_ptr_[a];
  adj_.resize(2 * nbonds_);
  std::vector<std::size_t> fill(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (std::size_t p = 0; p < nbonds_; ++p) {
    const auto bp = static_cast<std::uint32_t>(p);
    adj_[fill[i_[p]]++] = AtomBond{bp, j_[p], 0};
    adj_[fill[j_[p]]++] = AtomBond{bp, i_[p], 1};
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t a = 0; a < natoms_; ++a) {
    std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(adj_ptr_[a]),
              adj_.begin() + static_cast<std::ptrdiff_t>(adj_ptr_[a + 1]),
              [](const AtomBond& x, const AtomBond& y) {
                return x.neighbor < y.neighbor;
              });
  }
}

}  // namespace tbmd::tb
