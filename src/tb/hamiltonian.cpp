#include "src/tb/hamiltonian.hpp"

#include "src/tb/bond_table.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

void check_species(const TbModel& model, const System& system) {
  for (const Element e : system.species()) {
    TBMD_REQUIRE(e == model.element,
                 "system contains an element not covered by TB model '" +
                     model.name + "'");
  }
}

linalg::Matrix build_hamiltonian(const TbModel& model, const System& system,
                                 const BondTable& table) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  const std::size_t norb = TbModel::kOrbitalsPerAtom * n;
  linalg::Matrix h(norb, norb, 0.0);

  // On-site energies.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t o = 4 * i;
    h(o, o) = model.e_s;
    h(o + 1, o + 1) = model.e_p;
    h(o + 2, o + 2) = model.e_p;
    h(o + 3, o + 3) = model.e_p;
  }

  // Hopping blocks: scatter each tabulated 4x4 block and its transpose.
  // Distinct bonds write distinct blocks, so no synchronization is needed.
#pragma omp parallel for schedule(static)
  for (std::size_t p = 0; p < table.size(); ++p) {
    const double* b = table.block(p);
    const std::size_t oi = 4 * table.i(p);
    const std::size_t oj = 4 * table.j(p);
    for (int a = 0; a < 4; ++a) {
      double* hrow = h.row(oi + a) + oj;
      for (int c = 0; c < 4; ++c) {
        hrow[c] = b[4 * a + c];
        h(oj + c, oi + a) = b[4 * a + c];
      }
    }
  }
  return h;
}

linalg::Matrix build_hamiltonian(const TbModel& model, const System& system,
                                 const NeighborList& list) {
  BondTable table;
  table.build(model, system, list, BondTable::Mode::kBlocks);
  return build_hamiltonian(model, system, table);
}

}  // namespace tbmd::tb
