#include "src/tb/hamiltonian.hpp"

#include "src/tb/slater_koster.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

void check_species(const TbModel& model, const System& system) {
  for (const Element e : system.species()) {
    TBMD_REQUIRE(e == model.element,
                 "system contains an element not covered by TB model '" +
                     model.name + "'");
  }
}

linalg::Matrix build_hamiltonian(const TbModel& model, const System& system,
                                 const NeighborList& list) {
  check_species(model, system);
  const std::size_t n = system.size();
  const std::size_t norb = TbModel::kOrbitalsPerAtom * n;
  linalg::Matrix h(norb, norb, 0.0);

  // On-site energies.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t o = 4 * i;
    h(o, o) = model.e_s;
    h(o + 1, o + 1) = model.e_p;
    h(o + 2, o + 2) = model.e_p;
    h(o + 3, o + 3) = model.e_p;
  }

  // Hopping blocks: one 4x4 block per directed pair; the half list gives
  // each undirected pair once and we mirror the transpose.
  const auto& pairs = list.half_pairs();
  const auto& pos = system.positions();
#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const NeighborPair& pr = pairs[p];
    const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
    const SkBlock b = sk_block(model, bond);
    const std::size_t oi = 4 * pr.i;
    const std::size_t oj = 4 * pr.j;
    for (int a = 0; a < 4; ++a) {
      for (int c = 0; c < 4; ++c) {
        h(oi + a, oj + c) = b.h[a][c];
        h(oj + c, oi + a) = b.h[a][c];
      }
    }
  }
  return h;
}

}  // namespace tbmd::tb
