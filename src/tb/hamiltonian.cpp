#include "src/tb/hamiltonian.hpp"

#include "src/tb/bond_table.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

void check_species(const TbModel& model, const System& system) {
  for (const Element e : system.species()) {
    TBMD_REQUIRE(model.species_index(e) >= 0,
                 "system contains an element not covered by TB model '" +
                     model.name + "'");
  }
  TBMD_REQUIRE(!model.multi_species() ||
                   model.repulsion_kind == RepulsionKind::kPairSum,
               "multi-species models require the pair-sum repulsion (the "
               "embedded polynomial has no per-species coefficients)");
}

std::vector<std::uint32_t> orbital_block_dims(const TbModel& model,
                                              const System& system) {
  check_species(model, system);
  std::vector<std::uint32_t> dims(system.size());
  for (std::size_t a = 0; a < system.size(); ++a) {
    const auto s = static_cast<std::size_t>(
        model.species_index(system.species()[a]));
    dims[a] = static_cast<std::uint32_t>(model.orbitals(s));
  }
  return dims;
}

std::size_t orbital_count(const TbModel& model, const System& system) {
  std::size_t n = 0;
  for (const std::uint32_t d : orbital_block_dims(model, system)) n += d;
  return n;
}

linalg::Matrix build_hamiltonian(const TbModel& model, const System& system,
                                 const BondTable& table) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  const std::size_t norb = table.orbital_count();
  linalg::Matrix h(norb, norb, 0.0);

  // On-site energies (orbital 0 is s, 1..3 p, 4..8 d).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t o = table.orbital_offset(i);
    const auto s = static_cast<std::size_t>(
        model.species_index(system.species()[i]));
    for (int q = 0; q < table.atom_orbitals(i); ++q) {
      h(o + q, o + q) = model.onsite_energy(s, q);
    }
  }

  // Hopping blocks: scatter each tabulated block and its transpose.
  // Distinct bonds write distinct blocks, so no synchronization is needed.
#pragma omp parallel for schedule(static)
  for (std::size_t p = 0; p < table.size(); ++p) {
    const double* b = table.block(p);
    const std::size_t oi = table.orbital_offset(table.i(p));
    const std::size_t oj = table.orbital_offset(table.j(p));
    const int bsi = table.orbs_i(p);
    const int bsj = table.orbs_j(p);
    for (int a = 0; a < bsi; ++a) {
      double* hrow = h.row(oi + a) + oj;
      for (int c = 0; c < bsj; ++c) {
        hrow[c] = b[bsj * a + c];
        h(oj + c, oi + a) = b[bsj * a + c];
      }
    }
  }
  return h;
}

linalg::Matrix build_hamiltonian(const TbModel& model, const System& system,
                                 const NeighborList& list) {
  BondTable table;
  table.build(model, system, list, BondTable::Mode::kBlocks);
  return build_hamiltonian(model, system, table);
}

}  // namespace tbmd::tb
