#include "src/tb/occupations.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace tbmd::tb {

namespace {

double fermi_function(double eps, double mu, double kt) {
  const double x = (eps - mu) / kt;
  if (x > kFermiTailCutoff) return 0.0;
  if (x < -kFermiTailCutoff) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

}  // namespace

Occupations occupy(const std::vector<double>& eigenvalues, int n_electrons,
                   double temperature) {
  const std::size_t n = eigenvalues.size();
  TBMD_REQUIRE(n_electrons >= 0, "occupy: negative electron count");
  TBMD_REQUIRE(static_cast<std::size_t>(n_electrons) <= 2 * n,
               "occupy: more electrons than spin-orbitals");
  TBMD_REQUIRE(std::is_sorted(eigenvalues.begin(), eigenvalues.end()),
               "occupy: eigenvalues must be ascending");

  Occupations out;
  out.weights.assign(n, 0.0);
  if (n == 0 || n_electrons == 0) return out;

  if (temperature <= 0.0) {
    const int full = n_electrons / 2;
    for (int k = 0; k < full; ++k) out.weights[k] = 2.0;
    if (n_electrons % 2 == 1) out.weights[full] = 1.0;
    const std::size_t homo = (n_electrons % 2 == 1)
                                 ? static_cast<std::size_t>(full)
                                 : static_cast<std::size_t>(full - 1);
    const std::size_t lumo = homo + 1;
    out.fermi_level = (lumo < n)
                          ? 0.5 * (eigenvalues[homo] + eigenvalues[lumo])
                          : eigenvalues[homo];
  } else {
    const double kt = units::kBoltzmann * temperature;
    double lo = eigenvalues.front() - 20.0 * kt - 1.0;
    double hi = eigenvalues.back() + 20.0 * kt + 1.0;
    const double target = static_cast<double>(n_electrons);
    for (int iter = 0; iter < 200; ++iter) {
      const double mu = 0.5 * (lo + hi);
      double count = 0.0;
      for (const double eps : eigenvalues) {
        count += 2.0 * fermi_function(eps, mu, kt);
      }
      if (count > target) {
        hi = mu;
      } else {
        lo = mu;
      }
    }
    out.fermi_level = 0.5 * (lo + hi);
    double entropy = 0.0;  // dimensionless sum, spin included below
    for (std::size_t k = 0; k < n; ++k) {
      const double f = fermi_function(eigenvalues[k], out.fermi_level, kt);
      out.weights[k] = 2.0 * f;
      if (f > 1e-14 && f < 1.0 - 1e-14) {
        entropy += f * std::log(f) + (1.0 - f) * std::log(1.0 - f);
      }
    }
    // -T S_el with S_el = -2 k_B sum_n [f ln f + (1-f) ln(1-f)].
    out.entropy_term = 2.0 * kt * entropy;
  }

  for (std::size_t k = 0; k < n; ++k) {
    out.band_energy += out.weights[k] * eigenvalues[k];
  }
  return out;
}

}  // namespace tbmd::tb
