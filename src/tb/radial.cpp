#include "src/tb/radial.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::tb {

RadialValue evaluate_scaling(const RadialScaling& p, double r) {
  TBMD_REQUIRE(r > 1e-6, "radial scaling evaluated at r ~ 0 (atoms overlap?)");
  if (r >= p.r_cut) return {0.0, 0.0};

  // Bare GSP function s0(r) = (r0/r)^n exp(n(-(r/rc)^nc + (r0/rc)^nc)).
  const double ratio = p.r0 / r;
  const double pow_term = std::pow(ratio, p.n);
  const double rc_pow = std::pow(r / p.rc, p.nc);
  const double rc0_pow = std::pow(p.r0 / p.rc, p.nc);
  const double exp_term = std::exp(p.n * (-rc_pow + rc0_pow));
  const double s0 = pow_term * exp_term;
  // d/dr: s0' = s0 * ( -n/r - n*nc*rc_pow/r ).
  const double ds0 = s0 * (-p.n / r - p.n * p.nc * rc_pow / r);

  if (r < p.r_taper) return {s0, ds0};

  // Smooth C^1 descending taper on [r_taper, r_cut]:
  // t(x) = 1 - 3x^2 + 2x^3 with x in [0, 1].
  const double w = p.r_cut - p.r_taper;
  const double x = (r - p.r_taper) / w;
  const double t = 1.0 - x * x * (3.0 - 2.0 * x);
  const double dt = -6.0 * x * (1.0 - x) / w;
  return {s0 * t, ds0 * t + s0 * dt};
}

RadialValue evaluate_polynomial(const std::array<double, 5>& c, double x) {
  // Horner evaluation of f and f'.
  const double f = (((c[4] * x + c[3]) * x + c[2]) * x + c[1]) * x + c[0];
  const double df = ((4.0 * c[4] * x + 3.0 * c[3]) * x + 2.0 * c[2]) * x + c[1];
  return {f, df};
}

}  // namespace tbmd::tb
