#pragma once

/// \file bond_table.hpp
/// \brief Per-step table of evaluated bond quantities shared by every
/// consumer of the neighbor list.
///
/// A TBMD step touches each half pair (i < j) of the neighbor list several
/// times: Hamiltonian assembly needs the 4x4 Slater-Koster block, the
/// Hellmann-Feynman contraction needs the block's derivative, and the
/// repulsive term needs the pair radial function.  Before this subsystem
/// each consumer re-evaluated the (transcendental-heavy) radial scaling and
/// angular factors from scratch, so a single compute() paid for three
/// independent Slater-Koster passes.
///
/// BondTable evaluates everything once, in one batched OpenMP pass over the
/// half-pair list, into structure-of-arrays storage:
///   * bond geometry (vector, length, endpoint atoms),
///   * the hopping block per bond (row-major, orbs(i) x orbs(j) doubles),
///   * optionally its derivative (3x that, [gamma][alpha][beta]),
///   * the repulsive pair function phi(r) = phi0 * s_rep(r) and phi'(r).
///
/// Legacy single-element sp models store a uniform 16-double (4x4) block
/// per bond at stride 16 -- byte-for-byte the pre-refactor layout.
/// Multi-species models have per-bond block shapes (1, 4 or 9 orbitals per
/// endpoint), so the blocks live at offsets from a per-bond prefix array
/// and per-atom orbital offsets are tabulated for the assembly consumers.
/// Consumers (build_hamiltonian, band_forces, repulsive_energy_forces and
/// the onx sparse assembly / sparse forces) then contract straight from the
/// table.  A per-atom CSR adjacency (sorted by neighbor index) lets
/// atom-centric consumers walk the same storage.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/system.hpp"
#include "src/geom/vec3.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// Structure-of-arrays table of per-bond Slater-Koster blocks, derivatives
/// and repulsive pair values, built once per step from the neighbor list.
class BondTable {
 public:
  /// What the batched pass evaluates.  Geometry and the per-atom adjacency
  /// are always tabulated; the hopping blocks (+ the 3x larger dB/dd
  /// arrays) and the repulsive phi(r), phi'(r) are independent radial
  /// evaluations (model.hopping vs model.repulsive scalings), so each is
  /// only computed for the modes whose consumers read it.
  enum class Mode {
    kRepulsiveOnly,         ///< geometry + phi/phi' (repulsive term only)
    kBlocks,                ///< geometry + hopping blocks (H assembly only)
    kBlocksAndDerivatives,  ///< everything: blocks, dB/dd, phi/phi'
  };

  /// One adjacency entry: `bond` indexes the table, `neighbor` is the atom
  /// at the other end.  When `transposed` the owning atom is the bond's j
  /// endpoint, so its hopping block is the transpose of block(bond).
  struct AtomBond {
    std::uint32_t bond;
    std::uint32_t neighbor;
    std::uint8_t transposed;
  };

  BondTable() = default;

  /// Evaluate the table for the current positions.  Reuses storage across
  /// calls, so a persistent BondTable member costs one allocation per
  /// neighbor-list resize rather than one per MD step.
  ///
  /// `reuse_skin` > 0 enables Verlet-skin-lifetime bond reuse: a bond
  /// whose two endpoints have each moved less than reuse_skin / 2 since
  /// the positions its entries were last evaluated at keeps every stored
  /// quantity (geometry, hopping block, derivative, repulsive radial)
  /// untouched -- by the triangle inequality its length has changed by
  /// less than reuse_skin, so the frozen values sit within the same
  /// tolerance envelope a Verlet neighbor skin grants the pair list.
  /// Atoms that crossed the half-skin re-evaluate every incident bond at
  /// the true current positions and re-anchor.  Reuse is skipped entirely
  /// (and the anchors reset) whenever the table shape, the evaluation
  /// mode, or a bond's endpoints changed, so it can never serve values
  /// for a different topology -- the same `topology_version()` stamp
  /// consumers already key their caches on.  Like the calculator-level
  /// cached-bounds mode, frozen bonds make the table a function of the
  /// position *history* rather than the current positions alone; the
  /// default 0 keeps the historical one-build-per-step behavior exactly.
  void build(const TbModel& model, const System& system,
             const NeighborList& list, Mode mode = Mode::kBlocksAndDerivatives,
             double reuse_skin = 0.0);

  /// Cumulative bond-evaluation accounting across build() calls:
  /// `evaluated` counts bonds whose Slater-Koster/repulsive entries were
  /// (re-)computed, `reused` those served frozen under `reuse_skin`.
  struct ReuseStats {
    std::size_t evaluated = 0;
    std::size_t reused = 0;
  };
  [[nodiscard]] const ReuseStats& reuse_stats() const { return reuse_stats_; }

  /// Monotonic stamp of the bond *topology*: bumped by build() whenever
  /// the pair list (endpoints), the atom count or any hopping_zero flag
  /// changed relative to the previous build -- i.e. whenever the sparsity
  /// pattern of the assembled Hamiltonian may differ.  Steady MD steps
  /// (values change, topology does not) keep the stamp, which is what lets
  /// the O(N) engine's SpMM pattern cache survive across steps; a bond
  /// crossing the hopping cutoff inside the Verlet skin bumps it even
  /// though the neighbor list itself was not rebuilt.  0 only before the
  /// first build.
  [[nodiscard]] std::uint64_t topology_version() const {
    return topology_version_;
  }

  /// Number of half bonds (== list.half_pairs().size() at build time).
  [[nodiscard]] std::size_t size() const { return nbonds_; }

  /// Number of atoms the table was built for.
  [[nodiscard]] std::size_t atoms() const { return natoms_; }

  [[nodiscard]] bool has_blocks() const { return !h_.empty() || nbonds_ == 0; }
  [[nodiscard]] bool has_derivatives() const { return !dh_.empty() || nbonds_ == 0; }
  [[nodiscard]] bool has_repulsive() const {
    return !rep_val_.empty() || nbonds_ == 0;
  }

  [[nodiscard]] std::size_t i(std::size_t p) const { return i_[p]; }
  [[nodiscard]] std::size_t j(std::size_t p) const { return j_[p]; }

  /// Bond vector r_j + shift - r_i and its length.
  [[nodiscard]] const Vec3& bond(std::size_t p) const { return bond_[p]; }
  [[nodiscard]] double length(std::size_t p) const { return r_[p]; }

  /// True when every bond stores the uniform 4x4 sp block (legacy models).
  [[nodiscard]] bool uniform_blocks() const { return uniform_; }

  /// Orbitals on the two endpoints of bond p (block(p) is orbs_i x orbs_j).
  [[nodiscard]] int orbs_i(std::size_t p) const { return atom_orbs_[i_[p]]; }
  [[nodiscard]] int orbs_j(std::size_t p) const { return atom_orbs_[j_[p]]; }

  /// Orbitals carried by `atom` and its offset into the global orbital
  /// numbering (the row/column offset of the atom's Hamiltonian block).
  [[nodiscard]] int atom_orbitals(std::size_t atom) const {
    return atom_orbs_[atom];
  }
  [[nodiscard]] std::size_t orbital_offset(std::size_t atom) const {
    return atom_orb_off_[atom];
  }

  /// Total orbital count (Hamiltonian dimension).
  [[nodiscard]] std::size_t orbital_count() const {
    return natoms_ == 0 ? 0 : atom_orb_off_[natoms_];
  }

  /// Hopping block of bond p: row-major [alpha][beta], orbs_i(p) x
  /// orbs_j(p) doubles (16 at stride 16 for the uniform sp layout).
  [[nodiscard]] const double* block(std::size_t p) const {
    return h_.data() + (uniform_ ? 16 * p : hoff_[p]);
  }

  /// dB/dd_gamma of bond p: orbs_i x orbs_j doubles [alpha][beta]; all
  /// three components of one bond are contiguous ([gamma][alpha][beta]).
  [[nodiscard]] const double* derivative(std::size_t p, int gamma) const {
    if (uniform_) return dh_.data() + 48 * p + 16 * gamma;
    const std::size_t sz = hoff_[p + 1] - hoff_[p];
    return dh_.data() + 3 * hoff_[p] + sz * static_cast<std::size_t>(gamma);
  }

  /// True when the hopping block of bond p is identically zero (bond at or
  /// beyond the hopping cutoff; such pairs exist because the neighbor list
  /// is built out to cutoff + skin).
  [[nodiscard]] bool hopping_zero(std::size_t p) const {
    return hop_zero_[p] != 0;
  }

  /// phi(r_p) = phi0 * s_rep(r_p) and its radial derivative (zero at or
  /// beyond the repulsive cutoff).
  [[nodiscard]] double repulsive_value(std::size_t p) const {
    return rep_val_[p];
  }
  [[nodiscard]] double repulsive_derivative(std::size_t p) const {
    return rep_der_[p];
  }

  /// Per-atom adjacency over the half-bond table, sorted by neighbor index.
  [[nodiscard]] const AtomBond* atom_begin(std::size_t atom) const {
    return adj_.data() + adj_ptr_[atom];
  }
  [[nodiscard]] const AtomBond* atom_end(std::size_t atom) const {
    return adj_.data() + adj_ptr_[atom + 1];
  }

 private:
  std::size_t nbonds_ = 0;
  std::size_t natoms_ = 0;
  std::uint64_t topology_version_ = 0;
  bool uniform_ = true;
  std::vector<std::uint32_t> i_, j_;
  std::vector<Vec3> bond_;
  std::vector<double> r_;
  std::vector<double> h_;   ///< 16 per bond (uniform) / hoff_ offsets
  std::vector<double> dh_;  ///< 3x the block size (kBlocksAndDerivatives)
  std::vector<std::uint8_t> hop_zero_;
  std::vector<double> rep_val_, rep_der_;
  std::vector<AtomBond> adj_;      ///< CSR payload, 2 entries per bond
  std::vector<std::size_t> adj_ptr_;
  std::vector<std::uint8_t> atom_orbs_;     ///< orbitals per atom
  std::vector<std::size_t> atom_orb_off_;   ///< prefix sums, natoms + 1
  std::vector<std::size_t> hoff_;  ///< per-bond block offsets (variable)
  std::vector<int> spi_;           ///< per-atom species index (variable)

  /// Verlet-skin bond reuse state: the positions each atom's incident
  /// bonds were last evaluated at, the per-build moved flags, and the
  /// mode of the previous build (a mode change invalidates reuse -- the
  /// previous build may not have filled the arrays this one reads).
  std::vector<Vec3> eval_pos_;
  std::vector<std::uint8_t> moved_;
  Mode last_mode_ = Mode::kBlocksAndDerivatives;
  ReuseStats reuse_stats_;
};

}  // namespace tbmd::tb
