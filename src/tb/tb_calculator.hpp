#pragma once

/// \file tb_calculator.hpp
/// \brief The exact-diagonalization tight-binding calculator: the library's
/// primary model, reproducing the TBMD method of the paper.
///
/// One compute() call performs the canonical TBMD step pipeline:
///   neighbors -> Hamiltonian -> diagonalize (O(N^3)) -> occupations ->
///   density matrix -> Hellmann-Feynman forces -> repulsive term.
/// Each phase is timed into phase_timers() so the experiment harness can
/// regenerate the per-phase breakdown tables.

#include <memory>

#include "src/core/calculator.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// Options for TightBindingCalculator.
struct TbOptions {
  /// Verlet skin added to the model cutoff for the shared neighbor list (A).
  double skin = 0.5;
  /// Electronic temperature for Fermi-Dirac smearing (K); 0 = aufbau
  /// filling.  When > 0 the reported energy includes the -T*S_el Mermin
  /// term so that MD with smeared occupations conserves the free energy.
  double electronic_temperature = 0.0;
  /// Copy the eigenvalue spectrum into the ForceResult (adds an O(N) copy).
  bool report_eigenvalues = true;
};

/// Exact-diagonalization TBMD calculator.
class TightBindingCalculator final : public Calculator {
 public:
  TightBindingCalculator(TbModel model, TbOptions options = {});

  ForceResult compute(const System& system) override;

  [[nodiscard]] std::string name() const override {
    return "tb-exact[" + model_.name + "]";
  }

  [[nodiscard]] const TbModel& model() const { return model_; }
  [[nodiscard]] const TbOptions& options() const { return options_; }

  /// Neighbor list statistics (for the ablation experiments).
  [[nodiscard]] const NeighborList& neighbor_list() const { return list_; }

 private:
  TbModel model_;
  TbOptions options_;
  NeighborList list_;
};

}  // namespace tbmd::tb
