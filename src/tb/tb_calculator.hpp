#pragma once

/// \file tb_calculator.hpp
/// \brief The exact-diagonalization tight-binding calculator: the library's
/// primary model, reproducing the TBMD method of the paper.
///
/// One compute() call performs the canonical TBMD step pipeline:
///   neighbors -> bond table (batched SK blocks + derivatives) ->
///   Hamiltonian -> diagonalize (O(N^3)) -> occupations -> density matrix ->
///   Hellmann-Feynman forces -> repulsive term,
/// where the Hamiltonian, force and repulsive phases all contract from the
/// shared per-step BondTable.  Each phase is timed into phase_timers() so
/// the experiment harness can regenerate the per-phase breakdown tables.

#include <memory>

#include "src/core/calculator.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// Which part of the spectrum the diagonalization step computes.
enum class SpectrumMode {
  /// Partial when nothing demands the full spectrum (the default):
  /// report_eigenvalues == false and the occupied-window coverage check
  /// passes; otherwise transparently falls back to the full solver.
  kAuto,
  /// Always diagonalize the full spectrum (the pre-refactor behavior).
  kFull,
  /// Always use the partial-spectrum path; with report_eigenvalues the
  /// ForceResult then carries only the computed low-lying eigenvalues.
  kPartial,
};

/// Options for TightBindingCalculator.
struct TbOptions {
  /// Verlet skin added to the model cutoff for the shared neighbor list (A).
  double skin = 0.5;
  /// Electronic temperature for Fermi-Dirac smearing (K); 0 = aufbau
  /// filling.  When > 0 the reported energy includes the -T*S_el Mermin
  /// term so that MD with smeared occupations conserves the free energy.
  double electronic_temperature = 0.0;
  /// Copy the eigenvalue spectrum into the ForceResult (adds an O(N) copy).
  /// Analyses that consume the whole spectrum (EDOS, HOMO-LUMO gaps) need
  /// this; with kAuto it forces the full solver.
  bool report_eigenvalues = true;
  /// Spectrum policy for the diagonalization step.  Occupations, density
  /// matrix and Hellmann-Feynman forces only involve the ~Ne/2 occupied
  /// states, so the partial path requests just those (plus the LUMO for the
  /// Fermi level, plus a Fermi-tail buffer when electronic_temperature > 0)
  /// from linalg::eigh_range and skips more than half the O(N^3) work.
  SpectrumMode spectrum = SpectrumMode::kAuto;
};

/// Exact-diagonalization TBMD calculator.
class TightBindingCalculator final : public Calculator {
 public:
  TightBindingCalculator(TbModel model, TbOptions options = {});

  ForceResult compute(const System& system) override;

  [[nodiscard]] std::string name() const override {
    return "tb-exact[" + model_.name + "]";
  }

  [[nodiscard]] const TbModel& model() const { return model_; }
  [[nodiscard]] const TbOptions& options() const { return options_; }

  /// Neighbor list statistics (for the ablation experiments).
  [[nodiscard]] const NeighborList& neighbor_list() const { return list_; }

 private:
  TbModel model_;
  TbOptions options_;
  NeighborList list_;
  /// Per-step table of SK blocks/derivatives + repulsive pair values,
  /// rebuilt each compute() (storage reused) and shared by the Hamiltonian,
  /// force and repulsive phases.
  BondTable table_;
  /// Adaptive Fermi-tail width (states beyond the LUMO) learned from
  /// coverage-check fallbacks, so small-gap / high-temperature systems
  /// widen the partial window instead of paying a partial + full solve on
  /// every subsequent compute() call.
  std::size_t tail_hint_ = 0;
};

}  // namespace tbmd::tb
