#include "src/tb/bloch.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "src/tb/hamiltonian.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/util/error.hpp"

namespace tbmd::tb {

Vec3 fractional_to_k(const Cell& cell, const Vec3& k_frac) {
  TBMD_REQUIRE(cell.volume() > 0.0, "fractional_to_k: cell has no lattice");
  return 2.0 * std::numbers::pi * (cell.h_inverse() * k_frac);
}

BlochMatrix build_bloch_hamiltonian(const TbModel& model, const System& system,
                                    const Vec3& k) {
  check_species(model, system);
  TBMD_REQUIRE(!model.multi_species(),
               "bloch: k-space assembly still assumes the legacy uniform sp "
               "block (multi-species models are real-space only for now)");
  const Cell& cell = system.cell();
  TBMD_REQUIRE(cell.periodic(), "bloch: system must be periodic");

  const std::size_t n = system.size();
  const std::size_t norb = 4 * n;
  BlochMatrix h{linalg::Matrix(norb, norb, 0.0),
                linalg::Matrix(norb, norb, 0.0)};

  // On-site terms.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t o = 4 * i;
    h.real(o, o) = model.e_s;
    h.real(o + 1, o + 1) = model.e_p;
    h.real(o + 2, o + 2) = model.e_p;
    h.real(o + 3, o + 3) = model.e_p;
  }

  // Image range: enough lattice translations to cover the hopping cutoff.
  const double rc = model.hopping.r_cut;
  const auto heights = cell.heights();
  int range[3];
  for (int a = 0; a < 3; ++a) {
    range[a] = cell.periodic(a)
                   ? static_cast<int>(std::ceil(rc / heights[a]))
                   : 0;
  }

  const auto& pos = system.positions();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (int n1 = -range[0]; n1 <= range[0]; ++n1) {
        for (int n2 = -range[1]; n2 <= range[1]; ++n2) {
          for (int n3 = -range[2]; n3 <= range[2]; ++n3) {
            if (i == j && n1 == 0 && n2 == 0 && n3 == 0) continue;
            const Vec3 d =
                pos[j] + cell.shift_vector(n1, n2, n3) - pos[i];
            const double r = norm(d);
            if (r >= rc || r < 1e-9) continue;
            const SkBlock b = sk_block(model, d);
            const double phase = dot(k, d);
            const double c = std::cos(phase);
            const double s = std::sin(phase);
            const std::size_t oi = 4 * i;
            const std::size_t oj = 4 * j;
            for (int a = 0; a < 4; ++a) {
              for (int q = 0; q < 4; ++q) {
                h.real(oi + a, oj + q) += c * b.h[a][q];
                h.imag(oi + a, oj + q) += s * b.h[a][q];
              }
            }
          }
        }
      }
    }
  }
  return h;
}

std::vector<double> bloch_eigenvalues(const TbModel& model,
                                      const System& system, const Vec3& k) {
  const BlochMatrix h = build_bloch_hamiltonian(model, system, k);
  return linalg::eigvalsh_hermitian(h.real, h.imag);
}

std::vector<Vec3> interpolate_kpath(const std::vector<Vec3>& waypoints,
                                    int per_segment) {
  TBMD_REQUIRE(waypoints.size() >= 2 && per_segment >= 1,
               "interpolate_kpath: need >= 2 waypoints and >= 1 pts/segment");
  std::vector<Vec3> path;
  for (std::size_t leg = 0; leg + 1 < waypoints.size(); ++leg) {
    for (int q = 0; q < per_segment; ++q) {
      const double t = static_cast<double>(q) / per_segment;
      path.push_back(waypoints[leg] +
                     t * (waypoints[leg + 1] - waypoints[leg]));
    }
  }
  path.push_back(waypoints.back());
  return path;
}

std::vector<std::vector<double>> band_structure(const TbModel& model,
                                                const System& system,
                                                const std::vector<Vec3>& kpts) {
  std::vector<std::vector<double>> bands;
  bands.reserve(kpts.size());
  for (const Vec3& k : kpts) {
    bands.push_back(bloch_eigenvalues(model, system, k));
  }
  return bands;
}

std::vector<Vec3> monkhorst_pack_grid(const Cell& cell, int n1, int n2, int n3,
                                      bool gamma_centered) {
  TBMD_REQUIRE(n1 >= 1 && n2 >= 1 && n3 >= 1, "monkhorst_pack: bad grid");
  std::vector<Vec3> kpts;
  kpts.reserve(static_cast<std::size_t>(n1) * n2 * n3);
  auto coord = [&](int r, int q) {
    return gamma_centered
               ? static_cast<double>(r) / q
               : (2.0 * r - q + 1.0) / (2.0 * q);
  };
  for (int r1 = 0; r1 < n1; ++r1) {
    for (int r2 = 0; r2 < n2; ++r2) {
      for (int r3 = 0; r3 < n3; ++r3) {
        kpts.push_back(fractional_to_k(
            cell, {coord(r1, n1), coord(r2, n2), coord(r3, n3)}));
      }
    }
  }
  return kpts;
}

KGridResult kgrid_band_energy(const TbModel& model, const System& system,
                              const std::vector<Vec3>& kpts, int electrons) {
  TBMD_REQUIRE(!kpts.empty(), "kgrid_band_energy: empty k grid");
  TBMD_REQUIRE(electrons >= 0, "kgrid_band_energy: negative electron count");

  // Collect the sampled spectrum; every level carries weight 2/Nk.
  std::vector<double> levels;
  levels.reserve(kpts.size() * 4 * system.size());
  for (const Vec3& k : kpts) {
    const auto eps = bloch_eigenvalues(model, system, k);
    levels.insert(levels.end(), eps.begin(), eps.end());
  }
  std::sort(levels.begin(), levels.end());

  const double nk = static_cast<double>(kpts.size());
  const double per_level = 2.0 / nk;  // spin / k-weight
  const double target = static_cast<double>(electrons);

  KGridResult out;
  double filled = 0.0;
  std::size_t q = 0;
  for (; q < levels.size() && filled + per_level <= target + 1e-12; ++q) {
    out.band_energy += per_level * levels[q];
    filled += per_level;
  }
  if (filled < target - 1e-12 && q < levels.size()) {
    out.band_energy += (target - filled) * levels[q];  // fractional HOMO
    out.fermi_level = levels[q];
    out.gap = 0.0;
  } else {
    const double homo = (q > 0) ? levels[q - 1] : 0.0;
    const double lumo = (q < levels.size()) ? levels[q] : homo;
    out.fermi_level = 0.5 * (homo + lumo);
    out.gap = std::max(0.0, lumo - homo);
  }
  return out;
}

}  // namespace tbmd::tb
