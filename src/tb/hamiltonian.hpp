#pragma once

/// \file hamiltonian.hpp
/// \brief Assembly of the dense tight-binding Hamiltonian.

#include <cstdint>
#include <vector>

#include "src/core/system.hpp"
#include "src/linalg/matrix.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

class BondTable;

/// Assemble the dense tight-binding Hamiltonian from a prebuilt bond table
/// (the step-pipeline hot path: the table's blocks are shared with the
/// force contraction and the repulsive term).  Orbital (i, alpha) maps to
/// row table.orbital_offset(i) + alpha (= 4*i + alpha for the legacy sp
/// models).  `model` supplies the on-site energies; the hopping blocks
/// come from the table.
[[nodiscard]] linalg::Matrix build_hamiltonian(const TbModel& model,
                                               const System& system,
                                               const BondTable& table);

/// Convenience overload: evaluate a blocks-only BondTable from `list` and
/// assemble from it.  Every atom's element must be covered by the model.
[[nodiscard]] linalg::Matrix build_hamiltonian(const TbModel& model,
                                               const System& system,
                                               const NeighborList& list);

/// Validate that every atom in `system` is handled by `model`; throws
/// tbmd::Error otherwise.
void check_species(const TbModel& model, const System& system);

/// Per-atom orbital counts of `system` under `model` -- the BSR block
/// dimensions of the system's Hamiltonian (all 4 for the legacy sp
/// models).  This is the authoritative source the block-sparse layer's
/// converters take their block structure from.
[[nodiscard]] std::vector<std::uint32_t> orbital_block_dims(
    const TbModel& model, const System& system);

/// Total orbital count (the Hamiltonian dimension).
[[nodiscard]] std::size_t orbital_count(const TbModel& model,
                                        const System& system);

}  // namespace tbmd::tb
