#pragma once

/// \file hamiltonian.hpp
/// \brief Assembly of the dense tight-binding Hamiltonian.

#include "src/core/system.hpp"
#include "src/linalg/matrix.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

class BondTable;

/// Assemble the dense 4N x 4N tight-binding Hamiltonian from a prebuilt
/// bond table (the step-pipeline hot path: the table's blocks are shared
/// with the force contraction and the repulsive term).  Orbital (i, alpha)
/// maps to row 4*i + alpha.  `model` supplies the on-site energies; the
/// hopping blocks come from the table.
[[nodiscard]] linalg::Matrix build_hamiltonian(const TbModel& model,
                                               const System& system,
                                               const BondTable& table);

/// Convenience overload: evaluate a blocks-only BondTable from `list` and
/// assemble from it.  Every atom must match the model's element (the
/// shipped models are single-element; heteronuclear parameterizations
/// would extend the BondIntegrals lookup, not this assembly).
[[nodiscard]] linalg::Matrix build_hamiltonian(const TbModel& model,
                                               const System& system,
                                               const NeighborList& list);

/// Validate that every atom in `system` is handled by `model`; throws
/// tbmd::Error otherwise.
void check_species(const TbModel& model, const System& system);

}  // namespace tbmd::tb
