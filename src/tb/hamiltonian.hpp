#pragma once

/// \file hamiltonian.hpp
/// \brief Assembly of the dense tight-binding Hamiltonian.

#include "src/core/system.hpp"
#include "src/linalg/matrix.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// Assemble the dense 4N x 4N tight-binding Hamiltonian for `system` using
/// pairs from `list`.  Orbital (i, alpha) maps to row 4*i + alpha.
///
/// Every atom must match the model's element (the shipped models are
/// single-element; heteronuclear parameterizations would extend the
/// BondIntegrals lookup, not this assembly).  OpenMP-parallel over pairs:
/// distinct pairs write distinct 4x4 blocks, so no synchronization is
/// needed.
[[nodiscard]] linalg::Matrix build_hamiltonian(const TbModel& model,
                                               const System& system,
                                               const NeighborList& list);

/// Validate that every atom in `system` is handled by `model`; throws
/// tbmd::Error otherwise.
void check_species(const TbModel& model, const System& system);

}  // namespace tbmd::tb
