#include "src/tb/slater_koster.hpp"

#include <cmath>
#include <cstring>

namespace tbmd::tb {

namespace {

/// Fill the angular part A(alpha, beta) evaluated with bond integrals
/// (vss, vsp, vpp_sigma, vpp_pi) and direction cosines u.
void fill_angular(const BondIntegrals& v, const double u[3], double a[4][4]) {
  a[0][0] = v.sss;
  for (int b = 0; b < 3; ++b) {
    a[0][b + 1] = u[b] * v.sps;
    a[b + 1][0] = -u[b] * v.sps;
  }
  const double dv = v.pps - v.ppp;
  for (int p = 0; p < 3; ++p) {
    for (int q = 0; q < 3; ++q) {
      a[p + 1][q + 1] = u[p] * u[q] * dv + (p == q ? v.ppp : 0.0);
    }
  }
}

}  // namespace

void sk_block_into(const TbModel& model, const Vec3& bond, double r, double* h,
                   double* d) {
  const RadialValue s = evaluate_scaling(model.hopping, r);
  if (s.value == 0.0 && s.derivative == 0.0) {
    std::memset(h, 0, 16 * sizeof(double));
    if (d != nullptr) std::memset(d, 0, 48 * sizeof(double));
    return;
  }

  const double u[3] = {bond.x / r, bond.y / r, bond.z / r};
  double ang[4][4];
  fill_angular(model.bonds, u, ang);
  // The radial-scaling sweeps below are elementwise over the flat 16-entry
  // tile -- independent output lanes, one multiply(-pair) each -- so
  // `omp simd` vectorizes them without touching any element's own
  // arithmetic (the same j-lane argument as the block-sparse micro
  // kernels; fp64 bit pattern unchanged).
  const double* af = &ang[0][0];
#pragma omp simd
  for (int q = 0; q < 16; ++q) h[q] = s.value * af[q];
  if (d == nullptr) return;

  // dB/dd_g = s'(r) u_g A + s(r) dA/dd_g, with
  // du_a/dd_g = (delta_ag - u_a u_g) / r.
  const BondIntegrals& v = model.bonds;
  const double dv = v.pps - v.ppp;
  for (int g = 0; g < 3; ++g) {
    double* dg = d + 16 * g;
    // Radial part.
    const double sg = s.derivative * u[g];
#pragma omp simd
    for (int q = 0; q < 16; ++q) dg[q] = sg * af[q];
    // Angular part.
    auto du = [&](int a) { return ((a == g ? 1.0 : 0.0) - u[a] * u[g]) / r; };
    for (int b = 0; b < 3; ++b) {
      dg[b + 1] += s.value * v.sps * du(b);
      dg[4 * (b + 1)] -= s.value * v.sps * du(b);
    }
    for (int p = 0; p < 3; ++p) {
      for (int q = 0; q < 3; ++q) {
        dg[4 * (p + 1) + q + 1] += s.value * dv * (du(p) * u[q] + u[p] * du(q));
      }
    }
  }
}

namespace {

/// First-order dual number over the three direction cosines (l, m, n):
/// value plus gradient.  The spd angular table below is written once in
/// terms of these, so every entry's gradient w.r.t. u is produced by the
/// arithmetic itself instead of a hand-derived (and hand-maintained)
/// formula.  Only the multi-species path pays for this; the legacy sp
/// models keep the scalar kernel above.
struct D3 {
  double v = 0.0;
  double g[3] = {0.0, 0.0, 0.0};
};

inline D3 operator+(const D3& a, const D3& b) {
  return {a.v + b.v, {a.g[0] + b.g[0], a.g[1] + b.g[1], a.g[2] + b.g[2]}};
}
inline D3 operator-(const D3& a, const D3& b) {
  return {a.v - b.v, {a.g[0] - b.g[0], a.g[1] - b.g[1], a.g[2] - b.g[2]}};
}
inline D3 operator-(const D3& a) {
  return {-a.v, {-a.g[0], -a.g[1], -a.g[2]}};
}
inline D3 operator*(const D3& a, const D3& b) {
  return {a.v * b.v,
          {a.g[0] * b.v + a.v * b.g[0], a.g[1] * b.v + a.v * b.g[1],
           a.g[2] * b.v + a.v * b.g[2]}};
}
inline D3 operator*(double c, const D3& a) {
  return {c * a.v, {c * a.g[0], c * a.g[1], c * a.g[2]}};
}
inline D3 operator+(const D3& a, double c) {
  return {a.v + c, {a.g[0], a.g[1], a.g[2]}};
}
inline D3 operator+(double c, const D3& a) { return a + c; }
inline D3 operator-(const D3& a, double c) { return a + (-c); }
inline D3 operator-(double c, const D3& a) {
  return {c - a.v, {-a.g[0], -a.g[1], -a.g[2]}};
}

const double kSqrt3 = std::sqrt(3.0);

/// The five d angular functions multiplying V_sd_sigma, in the d-orbital
/// order [xy, yz, zx, x^2-y^2, 3z^2-r^2].  Even under u -> -u.
void sd_angular(const D3& l, const D3& m, const D3& n, D3 f[5]) {
  f[0] = kSqrt3 * (l * m);
  f[1] = kSqrt3 * (m * n);
  f[2] = kSqrt3 * (n * l);
  f[3] = 0.5 * kSqrt3 * (l * l - m * m);
  f[4] = n * n - 0.5 * (l * l + m * m);
}

/// The 3 x 5 p-d block for given sigma/pi integrals (Slater-Koster table).
void pd_angular(const D3& l, const D3& m, const D3& n, double vs, double vp,
                D3 f[3][5]) {
  const D3 l2 = l * l, m2 = m * m, n2 = n * n;
  const D3 lmn = l * (m * n);
  const D3 lm_sq = l2 - m2;              // l^2 - m^2
  const D3 zpart = n2 - 0.5 * (l2 + m2);  // n^2 - (l^2 + m^2)/2
  // Row p_x.
  f[0][0] = vs * (kSqrt3 * (l2 * m)) + vp * (m * (1.0 - 2.0 * l2));
  f[0][1] = vs * (kSqrt3 * lmn) + vp * (-2.0 * lmn);
  f[0][2] = vs * (kSqrt3 * (l2 * n)) + vp * (n * (1.0 - 2.0 * l2));
  f[0][3] = vs * (0.5 * kSqrt3 * (l * lm_sq)) + vp * (l * ((1.0 - l2) + m2));
  f[0][4] = vs * (l * zpart) + vp * (-kSqrt3 * (l * n2));
  // Row p_y.
  f[1][0] = vs * (kSqrt3 * (m2 * l)) + vp * (l * (1.0 - 2.0 * m2));
  f[1][1] = vs * (kSqrt3 * (m2 * n)) + vp * (n * (1.0 - 2.0 * m2));
  f[1][2] = vs * (kSqrt3 * lmn) + vp * (-2.0 * lmn);
  f[1][3] = vs * (0.5 * kSqrt3 * (m * lm_sq)) - vp * (m * ((1.0 + l2) - m2));
  f[1][4] = vs * (m * zpart) + vp * (-kSqrt3 * (m * n2));
  // Row p_z.
  f[2][0] = vs * (kSqrt3 * lmn) + vp * (-2.0 * lmn);
  f[2][1] = vs * (kSqrt3 * (n2 * m)) + vp * (m * (1.0 - 2.0 * n2));
  f[2][2] = vs * (kSqrt3 * (n2 * l)) + vp * (l * (1.0 - 2.0 * n2));
  f[2][3] = vs * (0.5 * kSqrt3 * (n * lm_sq)) - vp * (n * lm_sq);
  f[2][4] = vs * (n * zpart) + vp * (kSqrt3 * (n * (l2 + m2)));
}

/// The symmetric 5 x 5 d-d block (even under u -> -u).
void dd_angular(const D3& l, const D3& m, const D3& n, double vs, double vp,
                double vd, D3 f[5][5]) {
  const D3 l2 = l * l, m2 = m * m, n2 = n * n;
  const D3 lm = l * m, mn = m * n, nl = n * l;
  const D3 lm_sq = l2 - m2;
  const D3 zpart = n2 - 0.5 * (l2 + m2);
  f[0][0] = vs * (3.0 * (l2 * m2)) + vp * ((l2 + m2) - 4.0 * (l2 * m2)) +
            vd * (n2 + l2 * m2);
  f[0][1] = vs * (3.0 * (lm * mn)) + vp * (nl * (1.0 - 4.0 * m2)) +
            vd * (nl * (m2 - 1.0));
  f[0][2] = vs * (3.0 * (lm * nl)) + vp * (mn * (1.0 - 4.0 * l2)) +
            vd * (mn * (l2 - 1.0));
  f[0][3] = vs * (1.5 * (lm * lm_sq)) + vp * (-2.0 * (lm * lm_sq)) +
            vd * (0.5 * (lm * lm_sq));
  f[0][4] = vs * (kSqrt3 * (lm * zpart)) + vp * (-2.0 * kSqrt3 * (lm * n2)) +
            vd * (0.5 * kSqrt3 * (lm * (n2 + 1.0)));
  f[1][1] = vs * (3.0 * (m2 * n2)) + vp * ((m2 + n2) - 4.0 * (m2 * n2)) +
            vd * (l2 + m2 * n2);
  f[1][2] = vs * (3.0 * (mn * nl)) + vp * (lm * (1.0 - 4.0 * n2)) +
            vd * (lm * (n2 - 1.0));
  f[1][3] = vs * (1.5 * (mn * lm_sq)) +
            vp * (-1.0 * (mn * (1.0 + 2.0 * lm_sq))) +
            vd * (mn * (0.5 * lm_sq + 1.0));
  f[1][4] = vs * (kSqrt3 * (mn * zpart)) +
            vp * (kSqrt3 * (mn * ((l2 + m2) - n2))) +
            vd * (-0.5 * kSqrt3 * (mn * (l2 + m2)));
  f[2][2] = vs * (3.0 * (n2 * l2)) + vp * ((n2 + l2) - 4.0 * (n2 * l2)) +
            vd * (m2 + n2 * l2);
  f[2][3] = vs * (1.5 * (nl * lm_sq)) + vp * (nl * (1.0 - 2.0 * lm_sq)) +
            vd * (-1.0 * (nl * (1.0 - 0.5 * lm_sq)));
  f[2][4] = vs * (kSqrt3 * (nl * zpart)) +
            vp * (kSqrt3 * (nl * ((l2 + m2) - n2))) +
            vd * (-0.5 * kSqrt3 * (nl * (l2 + m2)));
  f[3][3] = vs * (0.75 * (lm_sq * lm_sq)) +
            vp * ((l2 + m2) - lm_sq * lm_sq) +
            vd * (n2 + 0.25 * (lm_sq * lm_sq));
  f[3][4] = vs * (0.5 * kSqrt3 * (lm_sq * zpart)) +
            vp * (-kSqrt3 * (n2 * lm_sq)) +
            vd * (0.25 * kSqrt3 * ((n2 + 1.0) * lm_sq));
  f[4][4] = vs * (zpart * zpart) + vp * (3.0 * (n2 * (l2 + m2))) +
            vd * (0.75 * ((l2 + m2) * (l2 + m2)));
  for (int a = 1; a < 5; ++a) {
    for (int b = 0; b < a; ++b) f[a][b] = f[b][a];
  }
}

/// Assemble the full bsi x bsj angular block (values + u-gradients) of an
/// ordered pair from the tables above.  Shell blocks with the bra angular
/// momentum above the ket's are produced by the Hermiticity identity
/// B_{beta alpha}(u) = B~_{alpha beta}(-u) with the reversed-slot
/// integrals, so transpose consistency of the two bond orderings holds by
/// construction.
void pair_angular(const SkIntegrals& v, int bsi, int bsj, const double u[3],
                  D3 a[9][9]) {
  const D3 l = {u[0], {1.0, 0.0, 0.0}};
  const D3 m = {u[1], {0.0, 1.0, 0.0}};
  const D3 n = {u[2], {0.0, 0.0, 1.0}};
  const D3 lr = -l, mr = -m, nr = -n;  // reversed bond direction

  a[0][0] = {v.sss, {0.0, 0.0, 0.0}};
  const D3 uu[3] = {l, m, n};
  if (bsj >= 4) {
    for (int b = 0; b < 3; ++b) a[0][1 + b] = v.sps * uu[b];
  }
  if (bsi >= 4) {
    const D3 ur[3] = {lr, mr, nr};
    for (int b = 0; b < 3; ++b) a[1 + b][0] = v.pss * ur[b];
  }
  if (bsi >= 4 && bsj >= 4) {
    const double dv = v.pps - v.ppp;
    for (int p = 0; p < 3; ++p) {
      for (int q = 0; q < 3; ++q) {
        a[1 + p][1 + q] = dv * (uu[p] * uu[q]) + (p == q ? v.ppp : 0.0);
      }
    }
  }
  if (bsj == 9) {
    D3 f[5];
    sd_angular(l, m, n, f);
    for (int b = 0; b < 5; ++b) a[0][4 + b] = v.sds * f[b];
    if (bsi >= 4) {
      D3 g[3][5];
      pd_angular(l, m, n, v.pds, v.pdp, g);
      for (int p = 0; p < 3; ++p) {
        for (int b = 0; b < 5; ++b) a[1 + p][4 + b] = g[p][b];
      }
    }
  }
  if (bsi == 9) {
    D3 f[5];
    sd_angular(lr, mr, nr, f);
    for (int b = 0; b < 5; ++b) a[4 + b][0] = v.dss * f[b];
    if (bsj >= 4) {
      D3 g[3][5];
      pd_angular(lr, mr, nr, v.dps, v.dpp, g);
      for (int p = 0; p < 3; ++p) {
        for (int b = 0; b < 5; ++b) a[4 + b][1 + p] = g[p][b];
      }
    }
    if (bsj == 9) {
      D3 h[5][5];
      dd_angular(l, m, n, v.dds, v.ddp, v.ddd, h);
      for (int p = 0; p < 5; ++p) {
        for (int q = 0; q < 5; ++q) a[4 + p][4 + q] = h[p][q];
      }
    }
  }
}

}  // namespace

void sk_pair_block_into(const PairParams& pair, int bsi, int bsj,
                        const Vec3& bond, double r, double* h, double* d) {
  const std::size_t sz = static_cast<std::size_t>(bsi * bsj);
  const RadialValue s = evaluate_scaling(pair.hopping, r);
  if (s.value == 0.0 && s.derivative == 0.0) {
    std::memset(h, 0, sz * sizeof(double));
    if (d != nullptr) std::memset(d, 0, 3 * sz * sizeof(double));
    return;
  }

  const double u[3] = {bond.x / r, bond.y / r, bond.z / r};
  D3 ang[9][9];
  pair_angular(pair.integrals, bsi, bsj, u, ang);

  for (int a = 0; a < bsi; ++a) {
    for (int b = 0; b < bsj; ++b) h[bsj * a + b] = s.value * ang[a][b].v;
  }
  if (d == nullptr) return;

  // dB/dd_g = s'(r) u_g A + s(r) sum_a (dA/du_a)(delta_ag - u_a u_g) / r:
  // the projector removes the radial component of the cosine gradient.
  for (int a = 0; a < bsi; ++a) {
    for (int b = 0; b < bsj; ++b) {
      const D3& e = ang[a][b];
      const double gu = e.g[0] * u[0] + e.g[1] * u[1] + e.g[2] * u[2];
      for (int g = 0; g < 3; ++g) {
        d[sz * g + bsj * a + b] =
            s.derivative * u[g] * e.v + s.value * (e.g[g] - gu * u[g]) / r;
      }
    }
  }
}

SkBlock sk_block(const TbModel& model, const Vec3& bond) {
  SkBlock out;
  sk_block_into(model, bond, norm(bond), &out.h[0][0], nullptr);
  return out;
}

void sk_block_with_derivative(const TbModel& model, const Vec3& bond,
                              SkBlock& block, SkBlockDerivative& deriv) {
  sk_block_into(model, bond, norm(bond), &block.h[0][0], &deriv.d[0][0][0]);
}

}  // namespace tbmd::tb
