#include "src/tb/slater_koster.hpp"

#include <cmath>
#include <cstring>

namespace tbmd::tb {

namespace {

/// Fill the angular part A(alpha, beta) evaluated with bond integrals
/// (vss, vsp, vpp_sigma, vpp_pi) and direction cosines u.
void fill_angular(const BondIntegrals& v, const double u[3], double a[4][4]) {
  a[0][0] = v.sss;
  for (int b = 0; b < 3; ++b) {
    a[0][b + 1] = u[b] * v.sps;
    a[b + 1][0] = -u[b] * v.sps;
  }
  const double dv = v.pps - v.ppp;
  for (int p = 0; p < 3; ++p) {
    for (int q = 0; q < 3; ++q) {
      a[p + 1][q + 1] = u[p] * u[q] * dv + (p == q ? v.ppp : 0.0);
    }
  }
}

}  // namespace

void sk_block_into(const TbModel& model, const Vec3& bond, double r, double* h,
                   double* d) {
  const RadialValue s = evaluate_scaling(model.hopping, r);
  if (s.value == 0.0 && s.derivative == 0.0) {
    std::memset(h, 0, 16 * sizeof(double));
    if (d != nullptr) std::memset(d, 0, 48 * sizeof(double));
    return;
  }

  const double u[3] = {bond.x / r, bond.y / r, bond.z / r};
  double ang[4][4];
  fill_angular(model.bonds, u, ang);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) h[4 * a + b] = s.value * ang[a][b];
  }
  if (d == nullptr) return;

  // dB/dd_g = s'(r) u_g A + s(r) dA/dd_g, with
  // du_a/dd_g = (delta_ag - u_a u_g) / r.
  const BondIntegrals& v = model.bonds;
  const double dv = v.pps - v.ppp;
  for (int g = 0; g < 3; ++g) {
    double* dg = d + 16 * g;
    // Radial part.
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) dg[4 * a + b] = s.derivative * u[g] * ang[a][b];
    }
    // Angular part.
    auto du = [&](int a) { return ((a == g ? 1.0 : 0.0) - u[a] * u[g]) / r; };
    for (int b = 0; b < 3; ++b) {
      dg[b + 1] += s.value * v.sps * du(b);
      dg[4 * (b + 1)] -= s.value * v.sps * du(b);
    }
    for (int p = 0; p < 3; ++p) {
      for (int q = 0; q < 3; ++q) {
        dg[4 * (p + 1) + q + 1] += s.value * dv * (du(p) * u[q] + u[p] * du(q));
      }
    }
  }
}

SkBlock sk_block(const TbModel& model, const Vec3& bond) {
  SkBlock out;
  sk_block_into(model, bond, norm(bond), &out.h[0][0], nullptr);
  return out;
}

void sk_block_with_derivative(const TbModel& model, const Vec3& bond,
                              SkBlock& block, SkBlockDerivative& deriv) {
  sk_block_into(model, bond, norm(bond), &block.h[0][0], &deriv.d[0][0][0]);
}

}  // namespace tbmd::tb
