#pragma once

/// \file tb_model.hpp
/// \brief Empirical sp3 tight-binding model definitions.
///
/// A TbModel bundles everything the Hamiltonian builder and force engine
/// need: on-site energies, the four two-center bond integrals at the
/// reference distance with their Goodwin-Skinner-Pettifor radial scaling,
/// and the repulsive functional.
///
/// Two classic single-element parameterizations ship with the library:
///   * xwch_carbon()  - Xu, Wang, Chan & Ho, J. Phys.: Condens. Matter 4,
///                      6047 (1992): orthogonal sp3 carbon with an
///                      embedded-polynomial repulsion.
///   * gsp_silicon()  - Goodwin, Skinner & Pettifor, Europhys. Lett. 9, 701
///                      (1989): orthogonal sp3 silicon with a pair-sum
///                      repulsion.
///
/// Both models truncate their radial functions with a smooth C^1 cutoff
/// taper between r_taper and r_cut (the original papers splice polynomial
/// tails over a similar window; the substitution is documented in
/// DESIGN.md and validated by the cohesion tests).

#include <array>
#include <string>

#include "src/core/element.hpp"

namespace tbmd::tb {

/// Goodwin-Skinner-Pettifor radial scaling
///   s(r) = (r0/r)^n * exp( n * ( -(r/rc)^nc + (r0/rc)^nc ) )
/// multiplied by a smooth cutoff taper on [r_taper, r_cut].
struct RadialScaling {
  double r0 = 1.0;      ///< reference distance (A)
  double n = 2.0;       ///< power-law exponent
  double nc = 6.5;      ///< screening exponent
  double rc = 2.18;     ///< screening length (A)
  double r_taper = 2.45;  ///< taper start (A)
  double r_cut = 2.6;     ///< hard cutoff (A)
};

/// The four sp3 two-center bond integrals at the reference distance r0 (eV).
struct BondIntegrals {
  double sss = 0.0;  ///< V_ss_sigma
  double sps = 0.0;  ///< V_sp_sigma
  double pps = 0.0;  ///< V_pp_sigma
  double ppp = 0.0;  ///< V_pp_pi
};

/// How the repulsive energy is assembled from the pair function phi(r).
enum class RepulsionKind {
  kPairSum,             ///< E_rep = sum_{i<j} phi(r_ij)            (GSP)
  kEmbeddedPolynomial,  ///< E_rep = sum_i f( sum_j phi(r_ij) )     (XWCH)
};

/// Complete single-element sp3 tight-binding model.
struct TbModel {
  std::string name;
  Element element = Element::C;

  double e_s = 0.0;  ///< on-site s energy (eV)
  double e_p = 0.0;  ///< on-site p energy (eV)

  BondIntegrals bonds;      ///< integrals at hopping.r0
  RadialScaling hopping;    ///< scaling of all four bond integrals

  RepulsionKind repulsion_kind = RepulsionKind::kPairSum;
  double phi0 = 0.0;        ///< repulsive prefactor (eV)
  RadialScaling repulsive;  ///< scaling of phi (r0 here is d0 of the papers)
  /// Embedding polynomial f(x) = sum_k coeff[k] x^k (kEmbeddedPolynomial).
  std::array<double, 5> embed_coeff{0, 1, 0, 0, 0};

  /// Orbitals per atom (sp3 = 4).
  static constexpr int kOrbitalsPerAtom = 4;

  /// Interaction cutoff: the larger of the two radial cutoffs (A).
  [[nodiscard]] double cutoff() const {
    return hopping.r_cut > repulsive.r_cut ? hopping.r_cut : repulsive.r_cut;
  }
};

/// Xu-Wang-Chan-Ho orthogonal sp3 carbon model.
[[nodiscard]] TbModel xwch_carbon();

/// Goodwin-Skinner-Pettifor orthogonal sp3 silicon model.
[[nodiscard]] TbModel gsp_silicon();

/// Look up a shipped model by name ("xwch-carbon", "gsp-silicon").
[[nodiscard]] TbModel model_by_name(const std::string& name);

}  // namespace tbmd::tb
