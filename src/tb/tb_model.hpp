#pragma once

/// \file tb_model.hpp
/// \brief Empirical sp3 tight-binding model definitions.
///
/// A TbModel bundles everything the Hamiltonian builder and force engine
/// need: on-site energies, the four two-center bond integrals at the
/// reference distance with their Goodwin-Skinner-Pettifor radial scaling,
/// and the repulsive functional.
///
/// Two classic single-element parameterizations ship with the library:
///   * xwch_carbon()  - Xu, Wang, Chan & Ho, J. Phys.: Condens. Matter 4,
///                      6047 (1992): orthogonal sp3 carbon with an
///                      embedded-polynomial repulsion.
///   * gsp_silicon()  - Goodwin, Skinner & Pettifor, Europhys. Lett. 9, 701
///                      (1989): orthogonal sp3 silicon with a pair-sum
///                      repulsion.
///
/// Both models truncate their radial functions with a smooth C^1 cutoff
/// taper between r_taper and r_cut (the original papers splice polynomial
/// tails over a similar window; the substitution is documented in
/// DESIGN.md and validated by the cohesion tests).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/element.hpp"

namespace tbmd::tb {

/// Goodwin-Skinner-Pettifor radial scaling
///   s(r) = (r0/r)^n * exp( n * ( -(r/rc)^nc + (r0/rc)^nc ) )
/// multiplied by a smooth cutoff taper on [r_taper, r_cut].
struct RadialScaling {
  double r0 = 1.0;      ///< reference distance (A)
  double n = 2.0;       ///< power-law exponent
  double nc = 6.5;      ///< screening exponent
  double rc = 2.18;     ///< screening length (A)
  double r_taper = 2.45;  ///< taper start (A)
  double r_cut = 2.6;     ///< hard cutoff (A)
};

/// The four sp3 two-center bond integrals at the reference distance r0 (eV).
struct BondIntegrals {
  double sss = 0.0;  ///< V_ss_sigma
  double sps = 0.0;  ///< V_sp_sigma
  double pps = 0.0;  ///< V_pp_sigma
  double ppp = 0.0;  ///< V_pp_pi
};

/// How the repulsive energy is assembled from the pair function phi(r).
enum class RepulsionKind {
  kPairSum,             ///< E_rep = sum_{i<j} phi(r_ij)            (GSP)
  kEmbeddedPolynomial,  ///< E_rep = sum_i f( sum_j phi(r_ij) )     (XWCH)
};

/// The full set of two-center Slater-Koster integrals an spd x spd pair can
/// carry, at the pair's reference distance hopping.r0 (eV).  The first
/// letter is the bra shell (on the bond's *first* atom), the second the ket
/// shell (on the second atom), the third the bond symmetry -- so for an
/// ordered pair A->B, `sps` couples A's s to B's p while `pss` couples A's
/// p to B's s.  Shells a species does not have simply leave their entries
/// at zero.  Hermiticity ties the two orderings of a pair together
/// (PairParams::reversed()); for a homonuclear pair that reduces to
/// pss == sps, dss == sds, dps == pds, dpp == pdp.
struct SkIntegrals {
  double sss = 0.0;  ///< V_ss_sigma
  double sps = 0.0;  ///< V_sp_sigma (bra s, ket p)
  double pss = 0.0;  ///< V_ps_sigma (bra p, ket s)
  double pps = 0.0;  ///< V_pp_sigma
  double ppp = 0.0;  ///< V_pp_pi
  double sds = 0.0;  ///< V_sd_sigma (bra s, ket d)
  double dss = 0.0;  ///< V_ds_sigma (bra d, ket s)
  double pds = 0.0;  ///< V_pd_sigma (bra p, ket d)
  double pdp = 0.0;  ///< V_pd_pi
  double dps = 0.0;  ///< V_dp_sigma (bra d, ket p)
  double dpp = 0.0;  ///< V_dp_pi
  double dds = 0.0;  ///< V_dd_sigma
  double ddp = 0.0;  ///< V_dd_pi
  double ddd = 0.0;  ///< V_dd_delta
};

/// One species of a multi-element model: which element it represents, how
/// many orbitals it carries (1 = s, 4 = sp, 9 = spd; this is the BSR block
/// dimension of its atoms) and the on-site energies of the shells present.
struct SpeciesParams {
  Element element = Element::C;
  int orbitals = 4;   ///< 1 (s-only), 4 (sp) or 9 (spd)
  double e_s = 0.0;   ///< on-site s energy (eV)
  double e_p = 0.0;   ///< on-site p energy (eV; orbitals >= 4)
  double e_d = 0.0;   ///< on-site d energy (eV; orbitals == 9)
};

/// Interaction parameters of one *ordered* species pair (bra, ket): the SK
/// integrals at hopping.r0, their shared GSP radial scaling, and the
/// repulsive pair function phi(r) = phi0 * s_rep(r).  The repulsive part is
/// symmetric in the two species by construction; the hopping integrals of
/// the reversed ordering follow from Hermiticity via reversed().
struct PairParams {
  SkIntegrals integrals;
  RadialScaling hopping;
  double phi0 = 0.0;        ///< repulsive prefactor (eV)
  RadialScaling repulsive;  ///< scaling of phi

  /// Parameters of the reversed ordering (B, A): the mixed-shell integral
  /// slots swap (sps <-> pss, sds <-> dss, pds <-> dps, pdp <-> dpp); the
  /// symmetric slots and the radial/repulsive parts are shared.  The sign
  /// conventions of odd-parity blocks are handled by the SK evaluator, not
  /// here (see sk_pair_block_into).
  [[nodiscard]] PairParams reversed() const;
};

/// Complete tight-binding model.
///
/// Two layers of description coexist:
///   * The legacy single-element sp3 fields (element, e_s/e_p, bonds,
///     hopping, ...) -- used whenever `species` is empty.  The shipped
///     carbon and silicon models live here and keep their fast, fully
///     unrolled 4x4 code paths.
///   * The multi-species extension: a species table (each with its own
///     orbital count, 1/4/9) plus an ns x ns table of ordered-pair
///     parameters with heteronuclear SK integrals.  Populated via
///     set_species()/set_pair(); pair (j, i) is derived from (i, j) by
///     Hermiticity automatically.
struct TbModel {
  std::string name;
  Element element = Element::C;

  double e_s = 0.0;  ///< on-site s energy (eV)
  double e_p = 0.0;  ///< on-site p energy (eV)

  BondIntegrals bonds;      ///< integrals at hopping.r0
  RadialScaling hopping;    ///< scaling of all four bond integrals

  RepulsionKind repulsion_kind = RepulsionKind::kPairSum;
  double phi0 = 0.0;        ///< repulsive prefactor (eV)
  RadialScaling repulsive;  ///< scaling of phi (r0 here is d0 of the papers)
  /// Embedding polynomial f(x) = sum_k coeff[k] x^k (kEmbeddedPolynomial).
  std::array<double, 5> embed_coeff{0, 1, 0, 0, 0};

  /// Orbitals per atom of the legacy sp3 layer (sp3 = 4).
  static constexpr int kOrbitalsPerAtom = 4;

  /// Multi-species extension; empty means "legacy single-element sp model".
  std::vector<SpeciesParams> species;
  /// Ordered-pair table, row-major [bra * species_count() + ket]; sized by
  /// set_species().
  std::vector<PairParams> pairs;

  /// True when the model carries an explicit species table.
  [[nodiscard]] bool multi_species() const { return !species.empty(); }

  /// True when every atom carries the uniform 4-orbital sp block -- the
  /// predicate the engine uses to route through the legacy unrolled paths.
  [[nodiscard]] bool uniform_sp() const;

  [[nodiscard]] std::size_t species_count() const { return species.size(); }

  /// Species-table index of an element, or -1 when the model has no
  /// parameters for it.  Legacy models report index 0 for their element.
  [[nodiscard]] int species_index(Element e) const;

  /// Orbitals per atom of species `s` (1, 4 or 9).
  [[nodiscard]] int orbitals(std::size_t s) const;

  /// On-site energy of orbital `orb` (0 = s, 1..3 = p, 4..8 = d) of
  /// species `s`.
  [[nodiscard]] double onsite_energy(std::size_t s, int orb) const;

  /// Ordered-pair parameters (bra species, ket species).
  [[nodiscard]] const PairParams& pair(std::size_t bra, std::size_t ket) const;

  /// Define the species table (resizes the pair table to ns x ns).
  void set_species(std::vector<SpeciesParams> table);

  /// Set the parameters of ordered pair (bra, ket); (ket, bra) is filled
  /// with p.reversed() so Hermiticity holds by construction.
  void set_pair(std::size_t bra, std::size_t ket, const PairParams& p);

  /// Interaction cutoff: the larger of the two radial cutoffs (A), taken
  /// over all pairs for a multi-species model.
  [[nodiscard]] double cutoff() const;
};

/// Xu-Wang-Chan-Ho orthogonal sp3 carbon model.
[[nodiscard]] TbModel xwch_carbon();

/// Goodwin-Skinner-Pettifor orthogonal sp3 silicon model.
[[nodiscard]] TbModel gsp_silicon();

/// Orthogonal spd gold model in the spirit of Kirchhoff et al., Phys. Rev.
/// B 63, 195101 (2001): a 9-orbital species with GSP-scaled two-center spd
/// integrals and a steep pair-sum repulsion, cut off between the first and
/// second fcc neighbor shells.  The integrals are a compact refit around
/// canonical Au two-center values, not the published NRL tables.
[[nodiscard]] TbModel kirchhoff_gold();

/// Look up a shipped model by name ("xwch-carbon", "gsp-silicon",
/// "kirchhoff-gold").
[[nodiscard]] TbModel model_by_name(const std::string& name);

}  // namespace tbmd::tb
