#pragma once

/// \file density_matrix.hpp
/// \brief Single-particle density matrix from eigenvectors and occupations.

#include <vector>

#include "src/linalg/matrix.hpp"

namespace tbmd::tb {

/// Build the density matrix rho = C diag(w) C^T, where column n of C is
/// eigenvector n and w_n the (spin-weighted) occupation.  C may be
/// rectangular (norb x m): the partial-spectrum solver hands over only the
/// m = |weights| low-lying states it computed.  Only columns with w_n > 0
/// contribute, so the cost is O(norb^2 * n_occ) either way.
///
/// The band-structure energy is tr(rho H) and the Hellmann-Feynman band
/// force on a bond block is the contraction of rho with dH/dR (forces.hpp).
[[nodiscard]] linalg::Matrix density_matrix(const linalg::Matrix& eigenvectors,
                                            const std::vector<double>& weights);

}  // namespace tbmd::tb
