#include "src/tb/population.hpp"

#include "src/util/error.hpp"

namespace tbmd::tb {

std::vector<double> mulliken_populations(const System& system,
                                         const linalg::Matrix& rho) {
  const std::size_t n = system.size();
  TBMD_REQUIRE(rho.rows() == 4 * n && rho.cols() == 4 * n,
               "mulliken: density matrix size mismatch");
  std::vector<double> pop(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int a = 0; a < 4; ++a) pop[i] += rho(4 * i + a, 4 * i + a);
  }
  return pop;
}

std::vector<double> mulliken_charges(const System& system,
                                     const linalg::Matrix& rho) {
  std::vector<double> q = mulliken_populations(system, rho);
  for (std::size_t i = 0; i < system.size(); ++i) {
    q[i] = static_cast<double>(valence_electrons(system.species()[i])) - q[i];
  }
  return q;
}

std::vector<BondOrder> mayer_bond_orders(const System& system,
                                         const NeighborList& list,
                                         const linalg::Matrix& rho) {
  const std::size_t n = system.size();
  TBMD_REQUIRE(rho.rows() == 4 * n && rho.cols() == 4 * n,
               "mayer: density matrix size mismatch");
  std::vector<BondOrder> bonds;
  bonds.reserve(list.half_pairs().size());
  const auto& pos = system.positions();
  for (const NeighborPair& pr : list.half_pairs()) {
    const std::size_t oi = 4 * pr.i;
    const std::size_t oj = 4 * pr.j;
    double order = 0.0;
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        // Mayer order for closed shells with orthogonal basis:
        // B_ij = sum_ab rho_ab rho_ba = sum_ab rho_ab^2 (rho spin-summed).
        // H2 minimal basis gives exactly 1; diamond C-C comes out ~0.95.
        const double r_ab = rho(oi + a, oj + b);
        order += r_ab * r_ab;
      }
    }
    const double length = norm(pos[pr.j] + pr.shift - pos[pr.i]);
    bonds.push_back({pr.i, pr.j, order, length});
  }
  return bonds;
}

}  // namespace tbmd::tb
