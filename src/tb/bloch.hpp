#pragma once

/// \file bloch.hpp
/// \brief k-space tight binding: Bloch Hamiltonians, band structures and
/// Brillouin-zone sampled band energies.
///
/// The real-space engine (hamiltonian.hpp) is the Gamma-point method TBMD
/// uses for large supercells during dynamics.  This layer provides the
/// complementary k-space machinery on *small* periodic cells: H(k) with
/// explicit lattice-image sums (no minimum-image restriction, so primitive
/// cells work), band structure along high-symmetry paths, and
/// Monkhorst-Pack sampled total band energies -- the standard validation
/// instruments of 1990s TB parameterizations.
///
/// Phase convention: H(k)_{i alpha, j beta} = sum_R B_{ij}(d + R) e^{i k.(d+R)}
/// with d = r_j - r_i (the "atomic gauge"; bands are smooth in k).

#include <string>
#include <vector>

#include "src/core/system.hpp"
#include "src/linalg/hermitian.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// Complex matrix as (real, imaginary) parts.
struct BlochMatrix {
  linalg::Matrix real;
  linalg::Matrix imag;
};

/// Cartesian k-vector (1/A) from fractional reciprocal coordinates.
[[nodiscard]] Vec3 fractional_to_k(const Cell& cell, const Vec3& k_frac);

/// Assemble H(k) for the atoms of `system` in its periodic cell.  Lattice
/// images are enumerated directly out to the hopping cutoff, so the cell
/// may be arbitrarily small (primitive cells included).  k is Cartesian.
[[nodiscard]] BlochMatrix build_bloch_hamiltonian(const TbModel& model,
                                                  const System& system,
                                                  const Vec3& k);

/// Band energies at one k-point (ascending).
[[nodiscard]] std::vector<double> bloch_eigenvalues(const TbModel& model,
                                                    const System& system,
                                                    const Vec3& k);

/// Uniformly interpolated k-path through the given Cartesian waypoints
/// (`per_segment` points per leg, endpoints included once).
[[nodiscard]] std::vector<Vec3> interpolate_kpath(
    const std::vector<Vec3>& waypoints, int per_segment);

/// Band structure: bands[q] are the ascending eigenvalues at kpts[q].
[[nodiscard]] std::vector<std::vector<double>> band_structure(
    const TbModel& model, const System& system, const std::vector<Vec3>& kpts);

/// Monkhorst-Pack k-point grid (Cartesian), n1 x n2 x n3 divisions along
/// the reciprocal lattice vectors.  `gamma_centered` shifts the grid onto
/// Gamma.  All points carry equal weight 1/(n1 n2 n3).
[[nodiscard]] std::vector<Vec3> monkhorst_pack_grid(const Cell& cell, int n1,
                                                    int n2, int n3,
                                                    bool gamma_centered = false);

/// Result of a Brillouin-zone sampled total-energy evaluation.
struct KGridResult {
  double band_energy = 0.0;  ///< per simulation cell (eV)
  double fermi_level = 0.0;  ///< global chemical potential across the grid
  double gap = 0.0;          ///< HOMO-LUMO gap over all sampled k (eV)
};

/// Zero-temperature band energy with a common Fermi level across all
/// sampled k-points (`electrons` = valence electrons per simulation cell).
[[nodiscard]] KGridResult kgrid_band_energy(const TbModel& model,
                                            const System& system,
                                            const std::vector<Vec3>& kpts,
                                            int electrons);

}  // namespace tbmd::tb
