#pragma once

/// \file forces.hpp
/// \brief Hellmann-Feynman band-structure forces.
///
/// With orthogonal tight binding the band energy is E_bs = tr(rho H), and
/// because the on-site terms carry no position dependence the force reduces
/// to a sum over bonds:
///   F_j = - sum_{i in nbr(j)} sum_{alpha beta}
///             2 rho(i alpha, j beta) dB(alpha, beta)/dd
/// where B is the Slater-Koster block of the bond and d its vector.  This
/// is the density-matrix formulation of the Hellmann-Feynman theorem; it
/// parallelizes over bonds with no per-eigenstate work.

#include <vector>

#include "src/core/system.hpp"
#include "src/geom/vec3.hpp"
#include "src/linalg/matrix.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

class BondTable;

/// Band-structure (attractive) forces contracted from a prebuilt bond
/// table (must have been built with derivatives).  When `virial` is
/// non-null the band contribution to the virial tensor (sum of d (x) f
/// over bonds) is accumulated into it.  Per-thread force partials are
/// merged with a parallel tree reduction.
[[nodiscard]] std::vector<Vec3> band_forces(const BondTable& table,
                                            const linalg::Matrix& rho,
                                            Mat3* virial = nullptr);

/// Convenience overload: evaluate a derivative-carrying BondTable from
/// `list` and contract from it.
[[nodiscard]] std::vector<Vec3> band_forces(const TbModel& model,
                                            const System& system,
                                            const NeighborList& list,
                                            const linalg::Matrix& rho,
                                            Mat3* virial = nullptr);

}  // namespace tbmd::tb
