#include "src/tb/tb_model.hpp"

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::tb {

TbModel xwch_carbon() {
  TbModel m;
  m.name = "xwch-carbon";
  m.element = Element::C;
  m.e_s = -2.99;
  m.e_p = 3.71;

  m.bonds = {-5.0, 4.7, 5.5, -1.55};
  m.hopping.r0 = 1.536329;
  m.hopping.n = 2.0;
  m.hopping.nc = 6.5;
  m.hopping.rc = 2.18;
  m.hopping.r_taper = 2.45;
  m.hopping.r_cut = 2.6;

  m.repulsion_kind = RepulsionKind::kEmbeddedPolynomial;
  m.phi0 = 8.18555;
  m.repulsive.r0 = 1.64;  // d0
  m.repulsive.n = 3.30304;   // m
  m.repulsive.nc = 8.6655;   // mc
  m.repulsive.rc = 2.1052;   // dc
  m.repulsive.r_taper = 2.45;
  m.repulsive.r_cut = 2.6;
  m.embed_coeff = {-2.5909765118191, 0.5721151498619, -1.7896349903996e-3,
                   2.3539221516757e-5, -1.24251169551587e-7};
  return m;
}

TbModel gsp_silicon() {
  TbModel m;
  m.name = "gsp-silicon";
  m.element = Element::Si;
  m.e_s = -5.25;
  m.e_p = 1.20;

  m.bonds = {-1.938, 1.745, 3.050, -1.075};
  m.hopping.r0 = 2.360352;
  m.hopping.n = 2.0;
  m.hopping.nc = 6.48;
  m.hopping.rc = 3.67;
  m.hopping.r_taper = 3.4;
  m.hopping.r_cut = 3.8;

  m.repulsion_kind = RepulsionKind::kPairSum;
  m.phi0 = 3.4581;
  m.repulsive.r0 = 2.360352;
  m.repulsive.n = 4.54;
  m.repulsive.nc = 6.48;
  m.repulsive.rc = 3.67;
  m.repulsive.r_taper = 3.4;
  m.repulsive.r_cut = 3.8;
  return m;
}

TbModel model_by_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "xwch-carbon" || n == "carbon" || n == "c") return xwch_carbon();
  if (n == "gsp-silicon" || n == "silicon" || n == "si") return gsp_silicon();
  throw Error("model_by_name: unknown tight-binding model '" + name + "'");
}

}  // namespace tbmd::tb
