#include "src/tb/tb_model.hpp"

#include <algorithm>
#include <utility>

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::tb {

PairParams PairParams::reversed() const {
  PairParams r = *this;
  std::swap(r.integrals.sps, r.integrals.pss);
  std::swap(r.integrals.sds, r.integrals.dss);
  std::swap(r.integrals.pds, r.integrals.dps);
  std::swap(r.integrals.pdp, r.integrals.dpp);
  return r;
}

bool TbModel::uniform_sp() const {
  if (species.empty()) return true;
  return std::all_of(species.begin(), species.end(),
                     [](const SpeciesParams& s) { return s.orbitals == 4; });
}

int TbModel::species_index(Element e) const {
  if (species.empty()) return e == element ? 0 : -1;
  for (std::size_t s = 0; s < species.size(); ++s) {
    if (species[s].element == e) return static_cast<int>(s);
  }
  return -1;
}

int TbModel::orbitals(std::size_t s) const {
  if (species.empty()) return kOrbitalsPerAtom;
  TBMD_REQUIRE(s < species.size(), "TbModel::orbitals: species out of range");
  return species[s].orbitals;
}

double TbModel::onsite_energy(std::size_t s, int orb) const {
  if (species.empty()) return orb == 0 ? e_s : e_p;
  TBMD_REQUIRE(s < species.size(),
               "TbModel::onsite_energy: species out of range");
  const SpeciesParams& sp = species[s];
  if (orb == 0) return sp.e_s;
  if (orb < 4) return sp.e_p;
  return sp.e_d;
}

const PairParams& TbModel::pair(std::size_t bra, std::size_t ket) const {
  const std::size_t ns = species.size();
  TBMD_REQUIRE(bra < ns && ket < ns, "TbModel::pair: species out of range");
  return pairs[bra * ns + ket];
}

void TbModel::set_species(std::vector<SpeciesParams> table) {
  for (const SpeciesParams& s : table) {
    TBMD_REQUIRE(s.orbitals == 1 || s.orbitals == 4 || s.orbitals == 9,
                 "TbModel::set_species: orbitals must be 1 (s), 4 (sp) or "
                 "9 (spd)");
  }
  species = std::move(table);
  pairs.assign(species.size() * species.size(), PairParams{});
}

void TbModel::set_pair(std::size_t bra, std::size_t ket, const PairParams& p) {
  const std::size_t ns = species.size();
  TBMD_REQUIRE(bra < ns && ket < ns, "TbModel::set_pair: species out of range");
  PairParams forward = p;
  if (bra == ket) {
    // Homonuclear: the reversed-slot integrals are tied to the forward ones
    // by Hermiticity, so derive them instead of trusting the caller.
    forward.integrals.pss = forward.integrals.sps;
    forward.integrals.dss = forward.integrals.sds;
    forward.integrals.dps = forward.integrals.pds;
    forward.integrals.dpp = forward.integrals.pdp;
  }
  pairs[bra * ns + ket] = forward;
  if (bra != ket) pairs[ket * ns + bra] = forward.reversed();
}

double TbModel::cutoff() const {
  if (species.empty()) {
    return hopping.r_cut > repulsive.r_cut ? hopping.r_cut : repulsive.r_cut;
  }
  double c = 0.0;
  for (const PairParams& p : pairs) {
    c = std::max({c, p.hopping.r_cut, p.repulsive.r_cut});
  }
  return c;
}

TbModel xwch_carbon() {
  TbModel m;
  m.name = "xwch-carbon";
  m.element = Element::C;
  m.e_s = -2.99;
  m.e_p = 3.71;

  m.bonds = {-5.0, 4.7, 5.5, -1.55};
  m.hopping.r0 = 1.536329;
  m.hopping.n = 2.0;
  m.hopping.nc = 6.5;
  m.hopping.rc = 2.18;
  m.hopping.r_taper = 2.45;
  m.hopping.r_cut = 2.6;

  m.repulsion_kind = RepulsionKind::kEmbeddedPolynomial;
  m.phi0 = 8.18555;
  m.repulsive.r0 = 1.64;  // d0
  m.repulsive.n = 3.30304;   // m
  m.repulsive.nc = 8.6655;   // mc
  m.repulsive.rc = 2.1052;   // dc
  m.repulsive.r_taper = 2.45;
  m.repulsive.r_cut = 2.6;
  m.embed_coeff = {-2.5909765118191, 0.5721151498619, -1.7896349903996e-3,
                   2.3539221516757e-5, -1.24251169551587e-7};
  return m;
}

TbModel gsp_silicon() {
  TbModel m;
  m.name = "gsp-silicon";
  m.element = Element::Si;
  m.e_s = -5.25;
  m.e_p = 1.20;

  m.bonds = {-1.938, 1.745, 3.050, -1.075};
  m.hopping.r0 = 2.360352;
  m.hopping.n = 2.0;
  m.hopping.nc = 6.48;
  m.hopping.rc = 3.67;
  m.hopping.r_taper = 3.4;
  m.hopping.r_cut = 3.8;

  m.repulsion_kind = RepulsionKind::kPairSum;
  m.phi0 = 3.4581;
  m.repulsive.r0 = 2.360352;
  m.repulsive.n = 4.54;
  m.repulsive.nc = 6.48;
  m.repulsive.rc = 3.67;
  m.repulsive.r_taper = 3.4;
  m.repulsive.r_cut = 3.8;
  return m;
}

TbModel kirchhoff_gold() {
  TbModel m;
  m.name = "kirchhoff-gold";
  m.element = Element::Au;
  m.repulsion_kind = RepulsionKind::kPairSum;

  SpeciesParams au;
  au.element = Element::Au;
  au.orbitals = 9;
  au.e_s = -4.90;
  au.e_p = 1.50;
  au.e_d = -7.80;
  m.set_species({au});

  // Two-center integrals at the fcc nearest-neighbor distance (a = 4.08 A
  // -> r0 = 2.885 A).  Magnitudes follow the canonical Au two-center
  // picture: a broad free-electron-like s band crossing a narrow, nearly
  // filled d band ~3 eV below the s on-site level.
  PairParams p;
  p.integrals.sss = -0.90;
  p.integrals.sps = 1.20;
  p.integrals.pps = 2.30;
  p.integrals.ppp = -0.30;
  p.integrals.sds = -0.75;
  p.integrals.pds = -0.95;
  p.integrals.pdp = 0.25;
  p.integrals.dds = -0.62;
  p.integrals.ddp = 0.32;
  p.integrals.ddd = -0.05;
  p.hopping.r0 = 2.885;
  p.hopping.n = 4.0;
  p.hopping.nc = 6.0;
  p.hopping.rc = 3.40;
  p.hopping.r_taper = 3.50;
  p.hopping.r_cut = 3.90;  // between 1st (2.885) and 2nd (4.08) fcc shells

  // Calibrated so bulk fcc Au is in mechanical equilibrium at the
  // experimental lattice constant: phi0 = -(dE_band/da) / (dS_rep/da) at
  // a = 4.08 A (3x3x3 fcc supercell, T_el = 300 K), which puts the E(a)
  // minimum at 4.077 A with positive curvature and a cohesive energy of
  // ~2.5 eV/atom relative to the free-atom (10 e_d + e_s) reference.
  p.phi0 = 1.4677;
  p.repulsive.r0 = 2.885;
  p.repulsive.n = 9.0;  // steeper than the n = 4 hopping decay
  p.repulsive.nc = 6.0;
  p.repulsive.rc = 3.40;
  p.repulsive.r_taper = 3.50;
  p.repulsive.r_cut = 3.90;
  m.set_pair(0, 0, p);
  return m;
}

TbModel model_by_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "xwch-carbon" || n == "carbon" || n == "c") return xwch_carbon();
  if (n == "gsp-silicon" || n == "silicon" || n == "si") return gsp_silicon();
  if (n == "kirchhoff-gold" || n == "gold" || n == "au") {
    return kirchhoff_gold();
  }
  throw Error("model_by_name: unknown tight-binding model '" + name + "'");
}

}  // namespace tbmd::tb
