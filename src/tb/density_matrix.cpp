#include "src/tb/density_matrix.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

linalg::Matrix density_matrix(const linalg::Matrix& eigenvectors,
                              const std::vector<double>& weights) {
  const std::size_t n = eigenvectors.rows();
  const std::size_t m = eigenvectors.cols();
  TBMD_REQUIRE(m <= n, "density_matrix: more states than orbitals");
  TBMD_REQUIRE(weights.size() == m, "density_matrix: weight count mismatch");

  // Gather occupied columns scaled by sqrt(w): rho = B B^T.
  std::size_t nocc = 0;
  for (const double w : weights) {
    TBMD_REQUIRE(w >= 0.0, "density_matrix: negative occupation");
    if (w > 0.0) ++nocc;
  }

  linalg::Matrix b(n, nocc, 0.0);
  std::size_t col = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (weights[k] <= 0.0) continue;
    const double s = std::sqrt(weights[k]);
    for (std::size_t i = 0; i < n; ++i) b(i, col) = s * eigenvectors(i, k);
    ++col;
  }

  // rho = B B^T, exploiting symmetry by computing the lower triangle.
  linalg::Matrix rho(n, n, 0.0);
#pragma omp parallel for schedule(dynamic, 16) if (n >= 128)
  for (std::size_t i = 0; i < n; ++i) {
    const double* bi = b.row(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const double* bj = b.row(j);
      double s = 0.0;
      for (std::size_t k = 0; k < nocc; ++k) s += bi[k] * bj[k];
      rho(i, j) = s;
      rho(j, i) = s;
    }
  }
  return rho;
}

}  // namespace tbmd::tb
