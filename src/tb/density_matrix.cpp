#include "src/tb/density_matrix.hpp"

#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/util/error.hpp"

namespace tbmd::tb {

linalg::Matrix density_matrix(const linalg::Matrix& eigenvectors,
                              const std::vector<double>& weights) {
  const std::size_t n = eigenvectors.rows();
  const std::size_t m = eigenvectors.cols();
  TBMD_REQUIRE(m <= n, "density_matrix: more states than orbitals");
  TBMD_REQUIRE(weights.size() == m, "density_matrix: weight count mismatch");

  // Gather occupied columns scaled by sqrt(w): rho = B B^T.
  std::size_t nocc = 0;
  for (const double w : weights) {
    TBMD_REQUIRE(std::isfinite(w),
                 "density_matrix: non-finite occupation weight");
    TBMD_REQUIRE(w >= 0.0, "density_matrix: negative occupation");
    if (w > 0.0) ++nocc;
  }

  linalg::Matrix rho(n, n, 0.0);
  if (nocc == 0) return rho;

  linalg::Matrix b(n, nocc, 0.0);
  std::size_t col = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (weights[k] <= 0.0) continue;
    const double s = std::sqrt(weights[k]);
    for (std::size_t i = 0; i < n; ++i) b(i, col) = s * eigenvectors(i, k);
    ++col;
  }

  // Cache-blocked symmetric rank-k update: lower-triangle tiles only, then
  // mirrored, so rho comes back exactly symmetric.
  linalg::syrk(1.0, b, 0.0, rho);
  return rho;
}

}  // namespace tbmd::tb
