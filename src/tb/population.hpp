#pragma once

/// \file population.hpp
/// \brief Mulliken population analysis and Mayer bond orders from the
/// tight-binding density matrix.
///
/// With an orthogonal basis the Mulliken charge of atom i is the trace of
/// the on-site density-matrix block, and the Mayer bond order between i
/// and j is the Frobenius product of the (i,j) block with its transpose:
///   q_i    = sum_alpha  rho(i alpha, i alpha)
///   B_ij   = sum_{alpha beta} rho(i alpha, j beta)^2
/// These are the standard chemical-analysis instruments of TB studies
/// (charge transfer at defects, bond breaking during dynamics).

#include <vector>

#include "src/core/system.hpp"
#include "src/linalg/matrix.hpp"
#include "src/neighbor/neighbor_list.hpp"

namespace tbmd::tb {

/// Mulliken electron population of every atom (sums to the total electron
/// count).  `rho` is the spin-summed density matrix from density_matrix().
[[nodiscard]] std::vector<double> mulliken_populations(
    const System& system, const linalg::Matrix& rho);

/// Mulliken net charges: valence_electrons(species) - population.
/// Positive = electron deficit.
[[nodiscard]] std::vector<double> mulliken_charges(const System& system,
                                                   const linalg::Matrix& rho);

/// One bond with its Mayer bond order.
struct BondOrder {
  std::size_t i;
  std::size_t j;
  double order;   ///< ~1 single bond, ~2 double bond (spin-summed rho/2 basis)
  double length;  ///< bond length (A)
};

/// Mayer bond orders for every neighbor-list pair (i < j).
/// Uses P = rho/2 so that a C-C single bond comes out near 1.
[[nodiscard]] std::vector<BondOrder> mayer_bond_orders(
    const System& system, const NeighborList& list, const linalg::Matrix& rho);

}  // namespace tbmd::tb
