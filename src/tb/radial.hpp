#pragma once

/// \file radial.hpp
/// \brief Evaluation of the GSP radial scaling function and its derivative,
/// including the smooth cutoff taper.

#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// Value and radial derivative of a scalar function of distance.
struct RadialValue {
  double value = 0.0;
  double derivative = 0.0;  ///< d(value)/dr
};

/// Evaluate the scaling function s(r) (with taper).  Returns {0, 0} at or
/// beyond the hard cutoff.  r must be positive.
[[nodiscard]] RadialValue evaluate_scaling(const RadialScaling& p, double r);

/// Evaluate the embedding polynomial f(x) and its derivative f'(x).
[[nodiscard]] RadialValue evaluate_polynomial(const std::array<double, 5>& c,
                                              double x);

}  // namespace tbmd::tb
