#include "src/tb/repulsive.hpp"

#include <cmath>

#include "src/tb/bond_table.hpp"
#include "src/tb/radial.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                        const BondTable& table) {
  TBMD_REQUIRE(table.has_repulsive(),
               "repulsive_energy_forces: bond table was built without the "
               "repulsive pair values (Mode::kBlocks)");
  RepulsiveResult out;
  const std::size_t n = table.atoms();
  out.forces.assign(n, Vec3{});
  const std::size_t nb = table.size();
  if (nb == 0) return out;

  par::ThreadPartials<Vec3> fpartial(n);
  par::ThreadPartials<Mat3> wpartial(1);

  // Both bond loops below walk the per-atom adjacency (each bond once,
  // from its i endpoint) with a static schedule instead of partitioning
  // the flat bond list: the bond count depends on the Verlet rebuild
  // history, so a bond-indexed partition would give a warm run and a
  // checkpoint-resumed run different per-thread summation orders.
  if (model.repulsion_kind == RepulsionKind::kPairSum) {
    par::ThreadPartials<double> epartial(1);
#pragma omp parallel
    {
      Vec3* local = fpartial.local();
      Mat3& wlocal = *wpartial.local();
      double elocal = 0.0;
#pragma omp for schedule(static) nowait
      for (std::size_t atom = 0; atom < n; ++atom)
      for (const BondTable::AtomBond* ab = table.atom_begin(atom);
           ab != table.atom_end(atom); ++ab) {
        if (ab->transposed != 0) continue;  // count each bond once
        const std::size_t p = ab->bond;
        const double der = table.repulsive_derivative(p);
        const double val = table.repulsive_value(p);
        if (val == 0.0 && der == 0.0) continue;  // at/beyond repulsive cutoff
        elocal += val;
        const Vec3 f = (der / table.length(p)) * table.bond(p);
        local[table.i(p)] += f;
        local[table.j(p)] -= f;
        wlocal -= outer(table.bond(p), f);  // d (x) f_on_j with f_on_j = -f
      }
      *epartial.local() = elocal;
    }
    const Vec3* f = fpartial.reduce();
    for (std::size_t i = 0; i < n; ++i) out.forces[i] = f[i];
    out.energy = *epartial.reduce();
    out.virial += *wpartial.reduce();
    return out;
  }

  // Embedded polynomial: E = sum_i f(x_i), x_i = sum_j phi(r_ij).  The
  // per-atom coordination sums walk the table's adjacency, so phi is never
  // re-evaluated (the table already holds it per bond).
  std::vector<double> x(n, 0.0);
#pragma omp parallel for schedule(dynamic, 32)
  for (std::size_t i = 0; i < n; ++i) {
    double xi = 0.0;
    for (const BondTable::AtomBond* ab = table.atom_begin(i);
         ab != table.atom_end(i); ++ab) {
      xi += table.repulsive_value(ab->bond);
    }
    x[i] = xi;
  }

  double energy = 0.0;
  std::vector<double> fprime(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const RadialValue fv = evaluate_polynomial(model.embed_coeff, x[i]);
    energy += fv.value;
    fprime[i] = fv.derivative;
  }

  // dE/dr_j = sum over bonds (i,j): (f'(x_i) + f'(x_j)) phi'(r) u.
#pragma omp parallel
  {
    Vec3* local = fpartial.local();
    Mat3& wlocal = *wpartial.local();
#pragma omp for schedule(static) nowait
    for (std::size_t atom = 0; atom < n; ++atom)
    for (const BondTable::AtomBond* ab = table.atom_begin(atom);
         ab != table.atom_end(atom); ++ab) {
      if (ab->transposed != 0) continue;  // count each bond once
      const std::size_t p = ab->bond;
      const double der = table.repulsive_derivative(p);
      if (der == 0.0 && table.repulsive_value(p) == 0.0) continue;
      const double w =
          (fprime[table.i(p)] + fprime[table.j(p)]) * der / table.length(p);
      const Vec3 f = w * table.bond(p);
      local[table.i(p)] += f;
      local[table.j(p)] -= f;
      wlocal -= outer(table.bond(p), f);
    }
  }
  const Vec3* f = fpartial.reduce();
  for (std::size_t i = 0; i < n; ++i) out.forces[i] = f[i];
  out.virial += *wpartial.reduce();
  out.energy = energy;
  return out;
}

RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                        const System& system,
                                        const NeighborList& list) {
  BondTable table;
  table.build(model, system, list, BondTable::Mode::kRepulsiveOnly);
  return repulsive_energy_forces(model, table);
}

}  // namespace tbmd::tb
