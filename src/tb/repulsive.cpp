#include "src/tb/repulsive.hpp"

#include <cmath>

#include "src/tb/radial.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

namespace {

/// phi(r) = phi0 * s_rep(r) and its radial derivative.
RadialValue phi(const TbModel& model, double r) {
  RadialValue v = evaluate_scaling(model.repulsive, r);
  v.value *= model.phi0;
  v.derivative *= model.phi0;
  return v;
}

}  // namespace

RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                        const System& system,
                                        const NeighborList& list) {
  RepulsiveResult out;
  const std::size_t n = system.size();
  out.forces.assign(n, Vec3{});
  const auto& pos = system.positions();
  const auto& pairs = list.half_pairs();

  if (model.repulsion_kind == RepulsionKind::kPairSum) {
    double energy = 0.0;
#pragma omp parallel
    {
      std::vector<Vec3> local(n, Vec3{});
      Mat3 wlocal{};
      double elocal = 0.0;
#pragma omp for schedule(static) nowait
      for (std::size_t p = 0; p < pairs.size(); ++p) {
        const NeighborPair& pr = pairs[p];
        const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
        const double r = norm(bond);
        if (r >= model.repulsive.r_cut) continue;
        const RadialValue v = phi(model, r);
        elocal += v.value;
        const Vec3 f = (v.derivative / r) * bond;  // dE/rd_j direction
        local[pr.i] += f;
        local[pr.j] -= f;
        wlocal -= outer(bond, f);  // d (x) f_on_j with f_on_j = -f
      }
#pragma omp critical
      {
        energy += elocal;
        for (std::size_t i = 0; i < n; ++i) out.forces[i] += local[i];
        out.virial += wlocal;
      }
    }
    out.energy = energy;
    return out;
  }

  // Embedded polynomial: E = sum_i f(x_i), x_i = sum_j phi(r_ij).
  std::vector<double> x(n, 0.0);
#pragma omp parallel for schedule(dynamic, 32)
  for (std::size_t i = 0; i < n; ++i) {
    double xi = 0.0;
    for (const NeighborEntry& e : list.neighbors(i)) {
      const Vec3 bond = pos[e.j] + e.shift - pos[i];
      const double r = norm(bond);
      if (r < model.repulsive.r_cut) xi += phi(model, r).value;
    }
    x[i] = xi;
  }

  double energy = 0.0;
  std::vector<double> fprime(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const RadialValue fv = evaluate_polynomial(model.embed_coeff, x[i]);
    energy += fv.value;
    fprime[i] = fv.derivative;
  }

  // dE/dr_j = sum over bonds (i,j): (f'(x_i) + f'(x_j)) phi'(r) u.
#pragma omp parallel
  {
    std::vector<Vec3> local(n, Vec3{});
    Mat3 wlocal{};
#pragma omp for schedule(static) nowait
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const NeighborPair& pr = pairs[p];
      const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
      const double r = norm(bond);
      if (r >= model.repulsive.r_cut) continue;
      const RadialValue v = phi(model, r);
      const double w = (fprime[pr.i] + fprime[pr.j]) * v.derivative / r;
      const Vec3 f = w * bond;
      local[pr.i] += f;
      local[pr.j] -= f;
      wlocal -= outer(bond, f);
    }
#pragma omp critical
    {
      for (std::size_t i = 0; i < n; ++i) out.forces[i] += local[i];
      out.virial += wlocal;
    }
  }
  out.energy = energy;
  return out;
}

}  // namespace tbmd::tb
