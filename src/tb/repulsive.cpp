#include "src/tb/repulsive.hpp"

#include <cmath>

#include "src/tb/bond_table.hpp"
#include "src/tb/radial.hpp"
#include "src/util/error.hpp"

namespace tbmd::tb {

namespace {

/// Pass 2 of the deterministic two-pass force scheme: gather each atom's
/// force over its full neighbor-sorted adjacency from the per-bond slots
/// written in pass 1.  Owned entries (transposed == 0) have atom == i(p)
/// and add +f, mirror entries subtract it.  Every output slot has exactly
/// one writer and a thread-count-independent summation order.
void gather_bond_forces(const BondTable& table,
                        const std::vector<Vec3>& fbond,
                        std::vector<Vec3>& forces) {
  const std::size_t n = table.atoms();
#pragma omp parallel for schedule(static)
  for (std::size_t atom = 0; atom < n; ++atom) {
    Vec3 f{};
    for (const BondTable::AtomBond* ab = table.atom_begin(atom);
         ab != table.atom_end(atom); ++ab) {
      const Vec3& g = fbond[ab->bond];
      if (ab->transposed != 0) {
        f -= g;
      } else {
        f += g;
      }
    }
    forces[atom] = f;
  }
}

}  // namespace

RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                        const BondTable& table) {
  TBMD_REQUIRE(table.has_repulsive(),
               "repulsive_energy_forces: bond table was built without the "
               "repulsive pair values (Mode::kBlocks)");
  RepulsiveResult out;
  const std::size_t n = table.atoms();
  out.forces.assign(n, Vec3{});
  const std::size_t nb = table.size();
  if (nb == 0) return out;

  // Two-pass scheme (per-bond force slots in pass 1, per-atom adjacency
  // gather in pass 2) instead of ThreadPartials scatters: every slot has
  // one writer and a fixed summation order, so energies, forces and the
  // virial are bit-identical at any OMP_NUM_THREADS -- and across
  // checkpoint kill-and-resume, where the Verlet rebuild history would
  // already rule out a flat bond-list partition.
  std::vector<Vec3> fbond(nb, Vec3{});
  std::vector<Mat3> watom(n, Mat3{});

  if (model.repulsion_kind == RepulsionKind::kPairSum) {
    std::vector<double> eatom(n, 0.0);
#pragma omp parallel for schedule(static)
    for (std::size_t atom = 0; atom < n; ++atom) {
      double e = 0.0;
      Mat3 w{};
      for (const BondTable::AtomBond* ab = table.atom_begin(atom);
           ab != table.atom_end(atom); ++ab) {
        if (ab->transposed != 0) continue;  // compute each bond once
        const std::size_t p = ab->bond;
        const double der = table.repulsive_derivative(p);
        const double val = table.repulsive_value(p);
        if (val == 0.0 && der == 0.0) continue;  // at/beyond repulsive cutoff
        e += val;
        const Vec3 f = (der / table.length(p)) * table.bond(p);
        fbond[p] = f;
        w -= outer(table.bond(p), f);  // d (x) f_on_j with f_on_j = -f
      }
      eatom[atom] = e;
      watom[atom] = w;
    }
    gather_bond_forces(table, fbond, out.forces);
    double energy = 0.0;
    Mat3 virial{};
    for (std::size_t i = 0; i < n; ++i) {
      energy += eatom[i];
      virial += watom[i];
    }
    out.energy = energy;
    out.virial += virial;
    return out;
  }

  // Embedded polynomial: E = sum_i f(x_i), x_i = sum_j phi(r_ij).  The
  // per-atom coordination sums walk the table's adjacency, so phi is never
  // re-evaluated (the table already holds it per bond).
  std::vector<double> x(n, 0.0);
#pragma omp parallel for schedule(dynamic, 32)
  for (std::size_t i = 0; i < n; ++i) {
    double xi = 0.0;
    for (const BondTable::AtomBond* ab = table.atom_begin(i);
         ab != table.atom_end(i); ++ab) {
      xi += table.repulsive_value(ab->bond);
    }
    x[i] = xi;
  }

  double energy = 0.0;
  std::vector<double> fprime(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const RadialValue fv = evaluate_polynomial(model.embed_coeff, x[i]);
    energy += fv.value;
    fprime[i] = fv.derivative;
  }

  // dE/dr_j = sum over bonds (i,j): (f'(x_i) + f'(x_j)) phi'(r) u.
#pragma omp parallel for schedule(static)
  for (std::size_t atom = 0; atom < n; ++atom) {
    Mat3 w{};
    for (const BondTable::AtomBond* ab = table.atom_begin(atom);
         ab != table.atom_end(atom); ++ab) {
      if (ab->transposed != 0) continue;  // compute each bond once
      const std::size_t p = ab->bond;
      const double der = table.repulsive_derivative(p);
      if (der == 0.0 && table.repulsive_value(p) == 0.0) continue;
      const double s =
          (fprime[table.i(p)] + fprime[table.j(p)]) * der / table.length(p);
      const Vec3 f = s * table.bond(p);
      fbond[p] = f;
      w -= outer(table.bond(p), f);
    }
    watom[atom] = w;
  }
  gather_bond_forces(table, fbond, out.forces);
  Mat3 virial{};
  for (std::size_t i = 0; i < n; ++i) virial += watom[i];
  out.virial += virial;
  out.energy = energy;
  return out;
}

RepulsiveResult repulsive_energy_forces(const TbModel& model,
                                        const System& system,
                                        const NeighborList& list) {
  BondTable table;
  table.build(model, system, list, BondTable::Mode::kRepulsiveOnly);
  return repulsive_energy_forces(model, table);
}

}  // namespace tbmd::tb
