#include "src/tb/forces.hpp"

#include "src/tb/bond_table.hpp"
#include "src/util/error.hpp"

namespace tbmd::tb {

std::vector<Vec3> band_forces(const BondTable& table, const linalg::Matrix& rho,
                              Mat3* virial) {
  TBMD_REQUIRE(table.has_derivatives(),
               "band_forces: bond table was built without derivatives");
  const std::size_t n = table.atoms();
  const std::size_t norb = table.orbital_count();
  TBMD_REQUIRE(rho.rows() == norb && rho.cols() == norb,
               "band_forces: density matrix size mismatch");
  std::vector<Vec3> forces(n, Vec3{});
  if (table.size() == 0) return forces;

  // Two-pass contraction, bit-identical at any OMP_NUM_THREADS: pass 1
  // computes each bond's dE/dd once (owned by its i endpoint in the
  // neighbor-sorted adjacency) into a per-bond slot plus a per-atom virial
  // partial, pass 2 gathers each atom's force over its full adjacency in
  // sorted neighbor order, and the virial is summed serially in atom
  // order.  Every slot has exactly one writer, so no summation order
  // depends on the thread partition -- and the atom-indexed walk (rather
  // than the flat bond list, whose count tracks the Verlet rebuild
  // history) keeps forces a pure function of positions across checkpoint
  // kill-and-resume.
  std::vector<Vec3> dedd_bond(table.size(), Vec3{});
  std::vector<Mat3> watom(virial != nullptr ? n : 0, Mat3{});

#pragma omp parallel for schedule(static)
  for (std::size_t atom = 0; atom < n; ++atom) {
    Mat3 wacc{};
    for (const BondTable::AtomBond* nb = table.atom_begin(atom);
         nb != table.atom_end(atom); ++nb) {
      if (nb->transposed != 0) continue;  // count each bond once
      const std::size_t p = nb->bond;
      if (table.hopping_zero(p)) continue;  // skin-only pair: dB/dd == 0

      // dE/dd_g = 2 sum_ab rho(i a, j b) dB(a,b)/dd_g.  Gather the bond's
      // density block once, then contract the three contiguous derivative
      // blocks against it (at most 9 x 9 = 81 entries).
      const std::size_t oi = table.orbital_offset(table.i(p));
      const std::size_t oj = table.orbital_offset(table.j(p));
      const int bsi = table.orbs_i(p);
      const int bsj = table.orbs_j(p);
      const int sz_b = bsi * bsj;
      double rb[81];
      const double* d = table.derivative(p, 0);  // [gamma][alpha][beta]
      Vec3 dedd{};
      double sx = 0.0, sy = 0.0, sz = 0.0;
      if (sz_b == 16) {
        // Compile-time trip counts keep the uniform sp contraction's code
        // generation (and thus its floating-point summation order)
        // bit-identical to the pre-variable-block kernel.
        for (int a = 0; a < 4; ++a) {
          const double* rrow = rho.row(oi + a) + oj;
          for (int b = 0; b < 4; ++b) rb[4 * a + b] = rrow[b];
        }
        for (int ab = 0; ab < 16; ++ab) {
          sx += rb[ab] * d[ab];
          sy += rb[ab] * d[16 + ab];
          sz += rb[ab] * d[32 + ab];
        }
      } else {
        for (int a = 0; a < bsi; ++a) {
          const double* rrow = rho.row(oi + a) + oj;
          for (int b = 0; b < bsj; ++b) rb[bsj * a + b] = rrow[b];
        }
        for (int ab = 0; ab < sz_b; ++ab) {
          sx += rb[ab] * d[ab];
          sy += rb[ab] * d[sz_b + ab];
          sz += rb[ab] * d[2 * sz_b + ab];
        }
      }
      dedd.x = 2.0 * sx;
      dedd.y = 2.0 * sy;
      dedd.z = 2.0 * sz;

      // d = r_j - r_i  =>  F_j -= dE/dd, F_i += dE/dd (applied in pass 2).
      dedd_bond[p] = dedd;
      if (virial != nullptr) wacc -= outer(table.bond(p), dedd);  // d (x) f_on_j
    }
    if (virial != nullptr) watom[atom] = wacc;
  }

#pragma omp parallel for schedule(static)
  for (std::size_t atom = 0; atom < n; ++atom) {
    Vec3 f{};
    for (const BondTable::AtomBond* nb = table.atom_begin(atom);
         nb != table.atom_end(atom); ++nb) {
      const Vec3& g = dedd_bond[nb->bond];
      if (nb->transposed != 0) {
        f -= g;
      } else {
        f += g;
      }
    }
    forces[atom] = f;
  }

  if (virial != nullptr) {
    Mat3 w{};
    for (std::size_t i = 0; i < n; ++i) w += watom[i];
    *virial += w;
  }
  return forces;
}

std::vector<Vec3> band_forces(const TbModel& model, const System& system,
                              const NeighborList& list,
                              const linalg::Matrix& rho, Mat3* virial) {
  BondTable table;
  table.build(model, system, list, BondTable::Mode::kBlocksAndDerivatives);
  return band_forces(table, rho, virial);
}

}  // namespace tbmd::tb
