#include "src/tb/forces.hpp"

#include "src/tb/slater_koster.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::tb {

std::vector<Vec3> band_forces(const TbModel& model, const System& system,
                              const NeighborList& list,
                              const linalg::Matrix& rho, Mat3* virial) {
  const std::size_t n = system.size();
  std::vector<Vec3> forces(n, Vec3{});
  Mat3 w{};
  const auto& pos = system.positions();
  const auto& pairs = list.half_pairs();

#pragma omp parallel
  {
    std::vector<Vec3> local(n, Vec3{});
    Mat3 wlocal{};
    SkBlock block;
    SkBlockDerivative deriv;
#pragma omp for schedule(dynamic, 32) nowait
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const NeighborPair& pr = pairs[p];
      const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
      sk_block_with_derivative(model, bond, block, deriv);

      // dE/dd_g = 2 sum_ab rho(i a, j b) dB(a,b)/dd_g.
      const std::size_t oi = 4 * pr.i;
      const std::size_t oj = 4 * pr.j;
      Vec3 dedd{};
      for (int a = 0; a < 4; ++a) {
        const double* rrow = rho.row(oi + a) + oj;
        for (int b = 0; b < 4; ++b) {
          const double r_ab = rrow[b];
          dedd.x += 2.0 * r_ab * deriv.d[0][a][b];
          dedd.y += 2.0 * r_ab * deriv.d[1][a][b];
          dedd.z += 2.0 * r_ab * deriv.d[2][a][b];
        }
      }
      // d = r_j - r_i  =>  F_j -= dE/dd, F_i += dE/dd.
      local[pr.j] -= dedd;
      local[pr.i] += dedd;
      wlocal -= outer(bond, dedd);  // d (x) f_on_j
    }
#pragma omp critical
    {
      for (std::size_t i = 0; i < n; ++i) forces[i] += local[i];
      w += wlocal;
    }
  }
  if (virial != nullptr) *virial += w;
  return forces;
}

}  // namespace tbmd::tb
