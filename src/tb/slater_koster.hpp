#pragma once

/// \file slater_koster.hpp
/// \brief Two-center Slater-Koster blocks (sp and spd) and their analytic
/// derivatives with respect to the bond vector.
///
/// Orbital order within an atom:
///   [s, p_x, p_y, p_z, d_xy, d_yz, d_zx, d_{x2-y2}, d_{3z2-r2}]
/// truncated to the species' orbital count (1, 4 or 9).
///
/// For a bond vector d = r_j - r_i with length r and direction cosines
/// u = d/r, the legacy sp block B(alpha, beta) = <i,alpha| H |j,beta> is
///   B(s , s ) =  V_sss(r)
///   B(s , pb) =  u_b V_sps(r)
///   B(pa, s ) = -u_a V_sps(r)
///   B(pa, pb) =  u_a u_b (V_pps(r) - V_ppp(r)) + delta_ab V_ppp(r)
/// where all four integrals share the model's radial scaling s(r):
/// V_x(r) = V_x(r0) * s(r).
///
/// The multi-species evaluator sk_pair_block_into generalizes this to the
/// full spd table of Slater & Koster (1954).  Blocks with the bra shell
/// higher than the ket shell are evaluated through the Hermiticity
/// identity B_{beta alpha}(u) = B~_{alpha beta}(-u), with B~ drawing on the
/// reversed-slot integrals (pss, dss, dps, dpp) of the ordered pair -- so
/// an A-B block is always the transpose of the B-A block of the reversed
/// bond, which the heteronuclear regression tests assert.

#include "src/geom/vec3.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// 4x4 hopping block.
struct SkBlock {
  double h[4][4] = {};
};

/// Derivative of the hopping block with respect to the bond vector
/// components: d[gamma][alpha][beta] = dB(alpha,beta)/dd_gamma.
struct SkBlockDerivative {
  double d[3][4][4] = {};
};

/// Evaluate the hopping block for bond vector `bond` (= r_j - r_i).
/// Returns an all-zero block at or beyond the hopping cutoff.
[[nodiscard]] SkBlock sk_block(const TbModel& model, const Vec3& bond);

/// Evaluate both the block and its derivative.  The derivative combines the
/// radial derivative (along u) and the rotation of the direction cosines.
void sk_block_with_derivative(const TbModel& model, const Vec3& bond,
                              SkBlock& block, SkBlockDerivative& deriv);

/// Low-level batched-evaluation primitive: write the 4x4 block (row-major,
/// 16 doubles, layout [alpha][beta]) for a bond of length r = |bond| into
/// `h`, and, when `d` is non-null, the three derivative blocks into `d`
/// (48 doubles, layout [gamma][alpha][beta]).  Zero-fills at or beyond the
/// hopping cutoff.  BondTable streams through this to build its
/// structure-of-arrays storage without intermediate struct copies.
void sk_block_into(const TbModel& model, const Vec3& bond, double r, double* h,
                   double* d);

/// Variable-block primitive for multi-species models: write the bsi x bsj
/// hopping block of the ordered pair (bra species with bsi orbitals, ket
/// species with bsj orbitals) for bond vector `bond` = r_j - r_i of length
/// r into `h` (row-major, bsi * bsj doubles, layout [alpha][beta]) and,
/// when `d` is non-null, the three derivative blocks dB/dd_gamma into `d`
/// (3 * bsi * bsj doubles, layout [gamma][alpha][beta]).  All integrals
/// share the pair's radial scaling; zero-fills at or beyond its cutoff.
/// The derivatives are analytic (the angular table is evaluated in
/// first-order dual numbers over the direction cosines).
void sk_pair_block_into(const PairParams& pair, int bsi, int bsj,
                        const Vec3& bond, double r, double* h, double* d);

}  // namespace tbmd::tb
