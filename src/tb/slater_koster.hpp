#pragma once

/// \file slater_koster.hpp
/// \brief sp3 two-center Slater-Koster blocks and their analytic
/// derivatives with respect to the bond vector.
///
/// Orbital order within an atom: [s, p_x, p_y, p_z].
///
/// For a bond vector d = r_j - r_i with length r and direction cosines
/// u = d/r, the hopping block B(alpha, beta) = <i,alpha| H |j,beta> is
///   B(s , s ) =  V_sss(r)
///   B(s , pb) =  u_b V_sps(r)
///   B(pa, s ) = -u_a V_sps(r)
///   B(pa, pb) =  u_a u_b (V_pps(r) - V_ppp(r)) + delta_ab V_ppp(r)
/// where all four integrals share the model's radial scaling s(r):
/// V_x(r) = V_x(r0) * s(r).

#include "src/geom/vec3.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::tb {

/// 4x4 hopping block.
struct SkBlock {
  double h[4][4] = {};
};

/// Derivative of the hopping block with respect to the bond vector
/// components: d[gamma][alpha][beta] = dB(alpha,beta)/dd_gamma.
struct SkBlockDerivative {
  double d[3][4][4] = {};
};

/// Evaluate the hopping block for bond vector `bond` (= r_j - r_i).
/// Returns an all-zero block at or beyond the hopping cutoff.
[[nodiscard]] SkBlock sk_block(const TbModel& model, const Vec3& bond);

/// Evaluate both the block and its derivative.  The derivative combines the
/// radial derivative (along u) and the rotation of the direction cosines.
void sk_block_with_derivative(const TbModel& model, const Vec3& bond,
                              SkBlock& block, SkBlockDerivative& deriv);

/// Low-level batched-evaluation primitive: write the 4x4 block (row-major,
/// 16 doubles, layout [alpha][beta]) for a bond of length r = |bond| into
/// `h`, and, when `d` is non-null, the three derivative blocks into `d`
/// (48 doubles, layout [gamma][alpha][beta]).  Zero-fills at or beyond the
/// hopping cutoff.  BondTable streams through this to build its
/// structure-of-arrays storage without intermediate struct copies.
void sk_block_into(const TbModel& model, const Vec3& bond, double r, double* h,
                   double* d);

}  // namespace tbmd::tb
