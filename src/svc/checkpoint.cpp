#include "src/svc/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/io/logger.hpp"
#include "src/util/crc32.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_point.hpp"

namespace tbmd::svc {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'C', 'K'};
constexpr std::uint32_t kVersion = 2;

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), bytes, bytes + sizeof(T));
}

/// Bounds-checked cursor over the in-memory payload (the whole file is
/// slurped and CRC-verified before any field is parsed).
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  std::string path;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    TBMD_REQUIRE(pos + sizeof(T) <= size,
                 "checkpoint: truncated payload in '" + path + "'");
    T value;
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
};

std::vector<std::uint8_t> serialize_payload(const Checkpoint& ck) {
  std::vector<std::uint8_t> buf;
  put<std::int64_t>(buf, ck.step);
  put<std::int64_t>(buf, ck.total_steps);

  // System.
  const System& sys = ck.system;
  put<std::uint64_t>(buf, sys.size());
  const Mat3& h = sys.cell().h();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) put<double>(buf, h(i, j));
  }
  for (int axis = 0; axis < 3; ++axis) {
    put<std::uint8_t>(buf, sys.cell().periodic(axis) ? 1 : 0);
  }
  for (std::size_t i = 0; i < sys.size(); ++i) {
    put<std::uint8_t>(
        buf, static_cast<std::uint8_t>(static_cast<int>(sys.species()[i])));
    put<std::uint8_t>(buf, sys.frozen(i) ? 1 : 0);
    const Vec3& r = sys.positions()[i];
    const Vec3& v = sys.velocities()[i];
    put<double>(buf, r.x);
    put<double>(buf, r.y);
    put<double>(buf, r.z);
    put<double>(buf, v.x);
    put<double>(buf, v.y);
    put<double>(buf, v.z);
  }

  // Thermostat.
  put<double>(buf, ck.thermostat_target);
  put<std::uint32_t>(buf,
                     static_cast<std::uint32_t>(ck.thermostat_state.size()));
  for (const double s : ck.thermostat_state) put<double>(buf, s);

  // RNG.
  for (int k = 0; k < 4; ++k) put<std::uint64_t>(buf, ck.rng.s[k]);
  put<std::uint8_t>(buf, ck.rng.have_cached ? 1 : 0);
  put<double>(buf, ck.rng.cached);
  return buf;
}

Checkpoint parse_payload(Cursor& c) {
  Checkpoint ck;
  ck.step = static_cast<long>(c.get<std::int64_t>());
  ck.total_steps = static_cast<long>(c.get<std::int64_t>());

  const auto natoms = c.get<std::uint64_t>();
  double h[9];
  for (double& v : h) v = c.get<double>();
  bool pbc[3];
  for (bool& p : pbc) p = c.get<std::uint8_t>() != 0;
  Cell cell;
  if (pbc[0] || pbc[1] || pbc[2]) {
    cell = Cell({h[0], h[1], h[2]}, {h[3], h[4], h[5]}, {h[6], h[7], h[8]},
                pbc[0], pbc[1], pbc[2]);
  }
  System sys(cell);
  for (std::uint64_t i = 0; i < natoms; ++i) {
    const auto species = static_cast<Element>(c.get<std::uint8_t>());
    const bool frozen = c.get<std::uint8_t>() != 0;
    Vec3 r, v;
    r.x = c.get<double>();
    r.y = c.get<double>();
    r.z = c.get<double>();
    v.x = c.get<double>();
    v.y = c.get<double>();
    v.z = c.get<double>();
    const std::size_t at = sys.add_atom(species, r, v);
    if (frozen) sys.set_frozen(at, true);
  }
  ck.system = std::move(sys);

  ck.thermostat_target = c.get<double>();
  const auto nstate = c.get<std::uint32_t>();
  ck.thermostat_state.resize(nstate);
  for (double& s : ck.thermostat_state) s = c.get<double>();

  for (int k = 0; k < 4; ++k) ck.rng.s[k] = c.get<std::uint64_t>();
  ck.rng.have_cached = c.get<std::uint8_t>() != 0;
  ck.rng.cached = c.get<double>();
  return ck;
}

}  // namespace

void write_checkpoint(const std::string& path, const Checkpoint& ck) {
  const std::vector<std::uint8_t> payload = serialize_payload(ck);
  // The CRC is computed over the intact payload even when the torn-write
  // fault truncates the bytes on disk: the reader must then see a CRC
  // mismatch, which is exactly the corruption the rotation guards against.
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  const bool torn = fault::fire(fault::kCkptTornWrite);
  std::size_t write_size = payload.size();
  if (torn && write_size > 16) write_size -= 16;

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    TBMD_REQUIRE(os.good(), "checkpoint: cannot open '" + tmp + "'");
    os.write(kMagic, 4);
    const std::uint32_t version = kVersion;
    os.write(reinterpret_cast<const char*>(&version), sizeof(version));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(write_size));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.flush();
    TBMD_REQUIRE(os.good(), "checkpoint: write failed for '" + tmp + "'");
  }
  if (fault::fire(fault::kCkptCrashBeforeRename)) {
    // Simulated kill between the tmp write and the rename: the previous
    // checkpoint at `path` is untouched and a complete tmp is left behind.
    throw Error("checkpoint: injected crash before rename of '" + tmp + "'");
  }
  // Rotate the previous good checkpoint to .prev *by copy*, so there is
  // never a window where `path` itself is missing.  Only then promote the
  // new file.
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::copy_file(
        path, path + ".prev",
        std::filesystem::copy_options::overwrite_existing);
  }
  std::filesystem::rename(tmp, path);
  if (torn) {
    // The torn bytes are already the final file -- simulate the process
    // dying right after the (partial) write was promoted.
    throw Error("checkpoint: injected torn write of '" + path + "'");
  }
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  TBMD_REQUIRE(is.good(), "checkpoint: cannot open '" + path + "'");
  const std::streamoff file_size = is.tellg();
  is.seekg(0);
  TBMD_REQUIRE(file_size >= 4 + 4 + 4,
               "checkpoint: truncated file '" + path + "'");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(file_size));
  is.read(reinterpret_cast<char*>(bytes.data()), file_size);
  TBMD_REQUIRE(is.gcount() == static_cast<std::streamsize>(file_size),
               "checkpoint: short read of '" + path + "'");

  TBMD_REQUIRE(std::memcmp(bytes.data(), kMagic, 4) == 0,
               "checkpoint: bad magic in '" + path + "'");
  std::uint32_t version;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  TBMD_REQUIRE(version == kVersion, "checkpoint: unsupported version " +
                                        std::to_string(version));
  const std::size_t payload_size = bytes.size() - 4 - 4 - 4;
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4,
              sizeof(stored_crc));
  const std::uint32_t actual_crc = crc32(bytes.data() + 8, payload_size);
  TBMD_REQUIRE(actual_crc == stored_crc,
               "checkpoint: CRC mismatch in '" + path + "'");

  Cursor c{bytes.data() + 8, payload_size, 0, path};
  return parse_payload(c);
}

Checkpoint read_checkpoint_with_fallback(const std::string& path,
                                         bool* used_prev) {
  if (used_prev != nullptr) *used_prev = false;
  std::string primary_error;
  try {
    return read_checkpoint(path);
  } catch (const Error& e) {
    primary_error = e.what();
  }
  const std::string prev = path + ".prev";
  std::error_code ec;
  if (!std::filesystem::exists(prev, ec)) {
    throw Error(primary_error);
  }
  io::log_warn("checkpoint: '", path, "' unreadable (", primary_error,
               "); falling back to '", prev, "'");
  Checkpoint ck = read_checkpoint(prev);
  if (used_prev != nullptr) *used_prev = true;
  return ck;
}

bool is_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[4];
  is.read(magic, 4);
  return is.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace tbmd::svc
