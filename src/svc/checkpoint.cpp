#include "src/svc/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/util/error.hpp"

namespace tbmd::svc {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T value;
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  TBMD_REQUIRE(is.gcount() == static_cast<std::streamsize>(sizeof(T)),
               "checkpoint: truncated file");
  return value;
}

}  // namespace

void write_checkpoint(const std::string& path, const Checkpoint& ck) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    TBMD_REQUIRE(os.good(), "checkpoint: cannot open '" + tmp + "'");
    os.write(kMagic, 4);
    put<std::uint32_t>(os, kVersion);
    put<std::int64_t>(os, ck.step);
    put<std::int64_t>(os, ck.total_steps);

    // System.
    const System& sys = ck.system;
    put<std::uint64_t>(os, sys.size());
    const Mat3& h = sys.cell().h();
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) put<double>(os, h(i, j));
    }
    for (int axis = 0; axis < 3; ++axis) {
      put<std::uint8_t>(os, sys.cell().periodic(axis) ? 1 : 0);
    }
    for (std::size_t i = 0; i < sys.size(); ++i) {
      put<std::uint8_t>(
          os, static_cast<std::uint8_t>(static_cast<int>(sys.species()[i])));
      put<std::uint8_t>(os, sys.frozen(i) ? 1 : 0);
      const Vec3& r = sys.positions()[i];
      const Vec3& v = sys.velocities()[i];
      put<double>(os, r.x);
      put<double>(os, r.y);
      put<double>(os, r.z);
      put<double>(os, v.x);
      put<double>(os, v.y);
      put<double>(os, v.z);
    }

    // Thermostat.
    put<double>(os, ck.thermostat_target);
    put<std::uint32_t>(os,
                       static_cast<std::uint32_t>(ck.thermostat_state.size()));
    for (const double s : ck.thermostat_state) put<double>(os, s);

    // RNG.
    for (int k = 0; k < 4; ++k) put<std::uint64_t>(os, ck.rng.s[k]);
    put<std::uint8_t>(os, ck.rng.have_cached ? 1 : 0);
    put<double>(os, ck.rng.cached);

    os.flush();
    TBMD_REQUIRE(os.good(), "checkpoint: write failed for '" + tmp + "'");
  }
  std::filesystem::rename(tmp, path);
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TBMD_REQUIRE(is.good(), "checkpoint: cannot open '" + path + "'");
  char magic[4];
  is.read(magic, 4);
  TBMD_REQUIRE(is.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0,
               "checkpoint: bad magic in '" + path + "'");
  const auto version = get<std::uint32_t>(is);
  TBMD_REQUIRE(version == kVersion, "checkpoint: unsupported version " +
                                        std::to_string(version));
  Checkpoint ck;
  ck.step = static_cast<long>(get<std::int64_t>(is));
  ck.total_steps = static_cast<long>(get<std::int64_t>(is));

  const auto natoms = get<std::uint64_t>(is);
  double h[9];
  for (double& v : h) v = get<double>(is);
  bool pbc[3];
  for (bool& p : pbc) p = get<std::uint8_t>(is) != 0;
  Cell cell;
  if (pbc[0] || pbc[1] || pbc[2]) {
    cell = Cell({h[0], h[1], h[2]}, {h[3], h[4], h[5]}, {h[6], h[7], h[8]},
                pbc[0], pbc[1], pbc[2]);
  }
  System sys(cell);
  for (std::uint64_t i = 0; i < natoms; ++i) {
    const auto species = static_cast<Element>(get<std::uint8_t>(is));
    const bool frozen = get<std::uint8_t>(is) != 0;
    Vec3 r, v;
    r.x = get<double>(is);
    r.y = get<double>(is);
    r.z = get<double>(is);
    v.x = get<double>(is);
    v.y = get<double>(is);
    v.z = get<double>(is);
    const std::size_t at = sys.add_atom(species, r, v);
    if (frozen) sys.set_frozen(at, true);
  }
  ck.system = std::move(sys);

  ck.thermostat_target = get<double>(is);
  const auto nstate = get<std::uint32_t>(is);
  ck.thermostat_state.resize(nstate);
  for (double& s : ck.thermostat_state) s = get<double>(is);

  for (int k = 0; k < 4; ++k) ck.rng.s[k] = get<std::uint64_t>(is);
  ck.rng.have_cached = get<std::uint8_t>(is) != 0;
  ck.rng.cached = get<double>(is);
  return ck;
}

bool is_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[4];
  is.read(magic, 4);
  return is.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace tbmd::svc
