#pragma once

/// \file checkpoint.hpp
/// \brief Deterministic binary MD checkpoints (.ckpt) for kill-and-resume.
///
/// A checkpoint captures everything the job runner needs to continue a
/// trajectory bit-identically after a crash or preemption: the full System
/// (cell, species, frozen flags, positions, velocities as raw IEEE
/// doubles -- no decimal round trip), the thermostat's target and internal
/// chain state, the integrator step count, and the job RNG state.  Forces
/// are deliberately NOT stored: the calculators recompute them
/// bit-identically from the restored positions (the cold-vs-warm identity
/// guaranteed since the PR-5 pattern-cache work), which keeps checkpoints
/// small and independent of the engine in use.
///
/// Writes are atomic (temp file + rename), so a kill during checkpointing
/// leaves the previous checkpoint intact.  Since v2 the payload carries a
/// trailing CRC-32, and each successful write first rotates the previous
/// good checkpoint to `path`.prev (by copy, so `path` never disappears):
/// a torn or bit-flipped checkpoint is detected on read and resume falls
/// back one save interval instead of aborting the job (see
/// read_checkpoint_with_fallback).

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/system.hpp"
#include "src/util/random.hpp"

namespace tbmd::svc {

/// Snapshot of one trajectory's integration state.
struct Checkpoint {
  /// Steps completed when the snapshot was taken.
  long step = 0;
  /// Total steps the job plans to run (lets a resumed sweep tell a
  /// completed job from an interrupted one without re-parsing the spec).
  long total_steps = 0;
  System system;
  /// Thermostat target (K) at the snapshot; 0 when running NVE.
  double thermostat_target = 0.0;
  /// Thermostat internal state (md::Thermostat::state()).
  std::vector<double> thermostat_state;
  /// Job RNG state (velocity seeding and any stochastic protocol steps).
  RngState rng;

  [[nodiscard]] bool complete() const {
    return total_steps > 0 && step >= total_steps;
  }
};

/// Serialize atomically to `path` (writes `path`.tmp, then renames).
/// Throws tbmd::Error on I/O failure.
void write_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Deserialize; throws tbmd::Error on missing/corrupt/mismatched files
/// (including CRC mismatch on a torn write).
[[nodiscard]] Checkpoint read_checkpoint(const std::string& path);

/// read_checkpoint(path), falling back to `path`.prev when the primary is
/// missing or corrupt (logs a warning; sets *used_prev when non-null).
/// Throws only when neither file yields a valid checkpoint.
[[nodiscard]] Checkpoint read_checkpoint_with_fallback(
    const std::string& path, bool* used_prev = nullptr);

/// True when `path` exists and starts with the checkpoint magic.
[[nodiscard]] bool is_checkpoint_file(const std::string& path);

}  // namespace tbmd::svc
