#pragma once

/// \file job_runner.hpp
/// \brief Concurrent batched-trajectory runner with checkpoint/restart.
///
/// The runner pulls jobs from a shared queue onto M worker threads.  Each
/// worker owns its calculators (cached by JobSpec::calculator_key(), so a
/// sweep of same-engine jobs pays the Hamiltonian workspace setup once per
/// worker) and runs one trajectory at a time:
///
///   * fresh jobs build the structure, seed Maxwell-Boltzmann velocities
///     from the spec seed, and integrate from step 0;
///   * when resume is enabled and `<name>.ckpt` exists, the System,
///     thermostat state, RNG state, and step counter are restored and the
///     binary trajectory is reopened with frames past the checkpoint
///     truncated -- the continued run is bit-identical to an uninterrupted
///     one (tested at %.17g on energies and every force component);
///   * a throwing job is recorded as failed with its message and failure
///     class and the worker moves to the next job -- one bad trajectory
///     cannot take down a sweep.  With `max_job_retries` > 0 a failed job
///     is first retried (capped exponential backoff, resume forced on) up
///     to that many extra attempts, which composes with the calculator's
///     own recovery ladder: the in-step ladder exhausts first, then the
///     job-level retry resumes from the last good checkpoint;
///   * a positive `step_watchdog_s` bounds the wall-clock of a single MD
///     step: a step that exceeds it checkpoints and reports kPreempted
///     with failure class "watchdog" instead of hogging the worker.
///
/// Preemption: a non-negative `step_budget` bounds the MD steps the whole
/// sweep may take in this invocation.  When the budget runs out every job
/// checkpoints and reports kPreempted; re-running the same sweep command
/// picks all of them up from their checkpoints.  This is how the CI
/// kill-and-resume job and the tests exercise restart determinism.

#include <string>
#include <vector>

#include "src/svc/job_spec.hpp"

namespace tbmd::svc {

/// Runner-level options (the sweep file populates workers/output/resume).
struct SweepOptions {
  int workers = 1;
  /// Directory for checkpoints, trajectories, and the summary CSV.
  std::string output_dir = "sweep_out";
  /// Pick up existing checkpoints instead of restarting from scratch.
  bool resume = true;
  /// Total MD steps this invocation may execute across all jobs
  /// (< 0 = unlimited).  Used to force mid-sweep preemption.
  long step_budget = -1;
  /// OpenMP threads each worker pins for jobs without their own `threads`
  /// key (0 = the process-wide default).  Set explicitly rather than via
  /// omp_set_num_threads() in the caller: that call only changes the
  /// calling thread's ICV and would not reach the runner's std::thread
  /// workers.
  int threads = 0;
  /// Log per-job progress lines.
  bool verbose = true;
  /// Extra attempts for a failed job (0 = fail fast).  Retried attempts
  /// force resume, so they continue from the last good checkpoint.
  int max_job_retries = 0;
  /// Base of the capped exponential backoff between retry attempts (s).
  double retry_backoff_s = 0.05;
  /// Backoff cap (s).
  double retry_backoff_max_s = 2.0;
  /// Wall-clock budget for one MD step (s); a step exceeding it preempts
  /// the job to its (just-written) checkpoint.  0 = no watchdog.
  double step_watchdog_s = 0.0;
};

enum class JobStatus {
  kCompleted,  ///< ran (or had already run) to its final step
  kFailed,     ///< threw; see JobResult::error
  kPreempted,  ///< stopped early by the step budget, checkpoint on disk
};

/// Outcome of one job in one runner invocation.
struct JobResult {
  std::string name;
  JobStatus status = JobStatus::kCompleted;
  std::string error;
  /// Failure classification for the summary CSV: a
  /// tbmd::failure_class_name() when the job died on a guardrail
  /// violation, "watchdog" on a step-watchdog preemption, "error" on any
  /// other exception, "" on success.
  std::string failure_class;
  /// Attempts consumed (1 = first try succeeded; > 1 means job-level
  /// retries fired).
  int attempts = 1;
  /// True when the job started from an existing checkpoint.
  bool resumed = false;
  /// True when the primary checkpoint was corrupt and the job resumed
  /// from the rotated `.ckpt.prev` instead.
  bool resumed_from_prev = false;
  /// Trajectory position (steps) when the job exited.
  long steps_done = 0;
  /// Steps actually integrated in this invocation.
  long steps_run = 0;
  /// Total (kinetic + potential) energy at exit (eV).
  double final_energy = 0.0;
  /// Instantaneous temperature at exit (K).
  double final_temperature = 0.0;
  double wall_seconds = 0.0;
};

[[nodiscard]] std::string_view job_status_name(JobStatus status);

/// Runs a batch of jobs; see file docs.
class JobRunner {
 public:
  JobRunner(std::vector<JobSpec> jobs, SweepOptions options);

  /// Run (or resume) every job; blocks until the queue drains.  Writes
  /// `sweep_summary.csv` into the output directory and returns one result
  /// per job, in job order.
  std::vector<JobResult> run();

  /// Write the summary CSV for `results` to `path`.
  static void write_summary(const std::string& path,
                            const std::vector<JobResult>& results);

 private:
  std::vector<JobSpec> jobs_;
  SweepOptions options_;
};

}  // namespace tbmd::svc
