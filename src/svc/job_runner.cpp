#include "src/svc/job_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "src/core/health_spec.hpp"
#include "src/io/binary_trajectory.hpp"
#include "src/io/logger.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/svc/checkpoint.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_point.hpp"
#include "src/util/parallel.hpp"
#include "src/util/random.hpp"
#include "src/util/timer.hpp"

namespace tbmd::svc {

namespace {

/// Per-worker calculator cache: one engine instance per distinct
/// calculator key, reused across the jobs this worker picks up.
struct WorkerContext {
  std::map<std::string, std::unique_ptr<Calculator>> calculators;

  Calculator& calculator(const JobSpec& spec, const System& system) {
    const std::string key = spec.calculator_key();
    auto it = calculators.find(key);
    if (it == calculators.end()) {
      it = calculators.emplace(key, spec.make_calculator(system)).first;
    }
    return *it->second;
  }
};

/// Claim one MD step from the shared budget (null = unlimited).
bool take_step(std::atomic<long>* budget) {
  if (budget == nullptr) return true;
  long current = budget->load(std::memory_order_relaxed);
  while (current > 0) {
    if (budget->compare_exchange_weak(current, current - 1)) return true;
  }
  return false;
}

JobResult run_job(const JobSpec& spec, WorkerContext& ctx,
                  const SweepOptions& options, std::atomic<long>* budget) {
  namespace fs = std::filesystem;
  WallTimer timer;
  JobResult res;
  res.name = spec.name;
  const std::string ckpt_path =
      (fs::path(options.output_dir) / (spec.name + ".ckpt")).string();
  const std::string traj_path =
      (fs::path(options.output_dir) / (spec.name + ".tbt")).string();

  System system;
  Rng rng(spec.seed);
  long start_step = 0;
  double thermo_target = 0.0;
  std::vector<double> thermo_state;

  if (options.resume && fs::exists(ckpt_path)) {
    bool used_prev = false;
    Checkpoint ck = read_checkpoint_with_fallback(ckpt_path, &used_prev);
    res.resumed_from_prev = used_prev;
    TBMD_REQUIRE(ck.total_steps == spec.steps,
                 "job '" + spec.name + "': checkpoint expects " +
                     std::to_string(ck.total_steps) +
                     " total steps but the spec asks for " +
                     std::to_string(spec.steps));
    system = std::move(ck.system);
    start_step = ck.step;
    thermo_target = ck.thermostat_target;
    thermo_state = std::move(ck.thermostat_state);
    rng.set_state(ck.rng);
    res.resumed = true;
  } else {
    system = spec.build_system();
    md::maxwell_boltzmann_velocities(system, spec.temperature, spec.seed);
  }

  Calculator& calc = ctx.calculator(spec, system);
  md::MdOptions mdopt;
  mdopt.dt = spec.dt;
  mdopt.thermostat = spec.thermostat;
  md::MdDriver driver(system, calc, mdopt);
  if (res.resumed) driver.restore(start_step, thermo_target, thermo_state);

  io::BinaryTrajectoryOptions topt;
  topt.velocities = spec.traj_velocities;
  topt.lossless = spec.traj_lossless;
  std::unique_ptr<io::BinaryTrajectoryWriter> traj;
  if (spec.sample_every > 0) {
    if (res.resumed && fs::exists(traj_path)) {
      traj = std::make_unique<io::BinaryTrajectoryWriter>(
          io::BinaryTrajectoryWriter::resume(traj_path, system, start_step,
                                             topt));
    } else {
      traj = std::make_unique<io::BinaryTrajectoryWriter>(traj_path, system,
                                                          topt);
      if (!res.resumed) traj->add_frame(system, 0);
    }
  }

  const auto save = [&](long step) {
    if (traj) traj->flush();
    Checkpoint ck;
    ck.step = step;
    ck.total_steps = spec.steps;
    ck.system = system;
    if (const md::Thermostat* t = driver.thermostat()) {
      ck.thermostat_target = t->target();
      ck.thermostat_state = t->state();
    }
    ck.rng = rng.state();
    write_checkpoint(ckpt_path, ck);
  };

  long step = start_step;
  while (step < spec.steps) {
    if (!take_step(budget)) {
      save(step);
      res.status = JobStatus::kPreempted;
      break;
    }
    // The ramp target is a pure function of the step index, so a resumed
    // run applies the same schedule an uninterrupted one would.
    if (md::Thermostat* t = driver.thermostat()) {
      t->set_target(spec.target_at(step));
    }
    WallTimer step_timer;
    if (fault::fire(fault::kSvcStall)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (fault::fire(fault::kSvcWorkerThrow)) {
      throw Error("job '" + spec.name + "': injected worker failure");
    }
    driver.step();
    step = driver.step_count();
    res.steps_run += 1;
    if (traj && step % spec.sample_every == 0) traj->add_frame(system, step);
    const bool final_step = step >= spec.steps;
    if (final_step || (spec.checkpoint_every > 0 &&
                       step % spec.checkpoint_every == 0)) {
      save(step);
    }
    if (!final_step && options.step_watchdog_s > 0.0 &&
        step_timer.seconds() > options.step_watchdog_s) {
      // A step blew its wall-clock budget: park the job at a fresh
      // checkpoint instead of letting it hog the worker.  (An in-flight
      // step cannot be interrupted from its own thread, so the watchdog
      // trips as soon as the offending step returns.)
      save(step);
      res.status = JobStatus::kPreempted;
      res.failure_class = "watchdog";
      break;
    }
  }

  res.steps_done = step;
  res.final_energy = driver.total_energy();
  res.final_temperature = system.temperature();
  res.wall_seconds = timer.seconds();
  return res;
}

std::string csv_safe(std::string text) {
  for (char& c : text) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return text;
}

}  // namespace

std::string_view job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kPreempted:
      return "preempted";
  }
  return "unknown";
}

JobRunner::JobRunner(std::vector<JobSpec> jobs, SweepOptions options)
    : jobs_(std::move(jobs)), options_(std::move(options)) {
  TBMD_REQUIRE(!jobs_.empty(), "JobRunner: no jobs");
}

std::vector<JobResult> JobRunner::run() {
  namespace fs = std::filesystem;
  fs::create_directories(options_.output_dir);

  // Arm requested fault plans up front (the registry is process-global, so
  // one plan covers every worker).  The runner never disarms: tests and
  // chaos drivers own the registry's lifetime via fault::disarm_all().
  for (const JobSpec& spec : jobs_) {
    if (!spec.faults.empty()) fault::arm_from_spec(spec.faults);
  }

  std::vector<JobResult> results(jobs_.size());
  std::atomic<std::size_t> next{0};
  std::atomic<long> budget{options_.step_budget};
  std::atomic<long>* budget_ptr =
      options_.step_budget >= 0 ? &budget : nullptr;
  std::mutex log_mutex;

  const auto worker = [&]() {
    WorkerContext ctx;
    // Ambient team size captured once per worker: omp_set_num_threads is
    // a per-calling-thread ICV, so each worker thread pins its own jobs
    // without racing the others.
    const int ambient_threads =
        options_.threads > 0 ? options_.threads : par::max_threads();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs_.size()) return;
      const JobSpec& spec = jobs_[i];
      JobResult& res = results[i];
      par::set_num_threads(spec.calc.threads > 0 ? spec.calc.threads
                                                 : ambient_threads);
      // Bounded per-job retry: attempt 1 runs with the caller's options;
      // retried attempts force resume so they continue from the last good
      // checkpoint instead of redoing completed work.
      SweepOptions opts = options_;
      int attempt = 0;
      for (;;) {
        ++attempt;
        try {
          res = run_job(spec, ctx, opts, budget_ptr);
          res.attempts = attempt;
          break;
        } catch (const std::exception& e) {
          res = JobResult{};
          res.name = spec.name;
          res.status = JobStatus::kFailed;
          res.error = e.what();
          res.attempts = attempt;
          const auto* numerics = dynamic_cast<const NumericsError*>(&e);
          res.failure_class =
              numerics != nullptr
                  ? failure_class_name(numerics->failure_class())
                  : "error";
        }
        if (attempt > options_.max_job_retries) break;
        const double backoff =
            std::min(options_.retry_backoff_s *
                         std::pow(2.0, static_cast<double>(attempt - 1)),
                     options_.retry_backoff_max_s);
        {
          const std::lock_guard<std::mutex> lock(log_mutex);
          io::log_warn("job '", res.name, "': attempt ", attempt,
                       " failed (", res.failure_class, ": ", res.error,
                       "); retrying in ", backoff, " s");
        }
        if (backoff > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff));
        }
        opts.resume = true;
      }
      if (options_.verbose) {
        const std::lock_guard<std::mutex> lock(log_mutex);
        io::log_info("job '", res.name, "': ", job_status_name(res.status),
                     " at step ", res.steps_done, "/", spec.steps, " (",
                     res.steps_run, " steps this run, ", res.attempts,
                     " attempt(s), ", res.wall_seconds, " s)",
                     res.error.empty() ? "" : " -- ", res.error);
      }
    }
  };

  const int workers = std::max(
      1, std::min(options_.workers, static_cast<int>(jobs_.size())));
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  write_summary((fs::path(options_.output_dir) / "sweep_summary.csv").string(),
                results);
  return results;
}

void JobRunner::write_summary(const std::string& path,
                              const std::vector<JobResult>& results) {
  std::ofstream os(path, std::ios::trunc);
  TBMD_REQUIRE(os.good(), "write_summary: cannot open '" + path + "'");
  os << "name,status,resumed,steps_done,steps_run,final_energy_eV,"
        "final_temperature_K,wall_s,failure_class,attempts,error\n";
  os.precision(17);
  for (const JobResult& r : results) {
    os << csv_safe(r.name) << ',' << job_status_name(r.status) << ','
       << (r.resumed ? 1 : 0) << ',' << r.steps_done << ',' << r.steps_run
       << ',' << r.final_energy << ',' << r.final_temperature << ','
       << r.wall_seconds << ',' << csv_safe(r.failure_class) << ','
       << r.attempts << ',' << csv_safe(r.error) << '\n';
  }
  TBMD_REQUIRE(os.good(), "write_summary: write failed for '" + path + "'");
}

}  // namespace tbmd::svc
