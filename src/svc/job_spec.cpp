#include "src/svc/job_spec.hpp"

#include <filesystem>
#include <set>
#include <sstream>

#include "src/io/xyz.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/structures/nanotube.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::svc {

JobSpec JobSpec::from_config(const io::Config& cfg) {
  JobSpec s;
  s.name = cfg.get_string("name", s.name);
  TBMD_REQUIRE(!s.name.empty() && s.name.find('/') == std::string::npos,
               "job spec: 'name' must be a non-empty file stem");

  s.structure = to_lower(cfg.get_string("structure", s.structure));
  s.element = element_from_symbol(
      cfg.get_string("element", s.structure == "fcc" ? "Ar" : "Si"));
  s.lattice = cfg.get_double("lattice", 0.0);
  TBMD_REQUIRE(s.lattice >= 0.0, "job spec: 'lattice' must be >= 0");
  s.bond = cfg.get_double("bond", 0.0);
  TBMD_REQUIRE(s.bond >= 0.0, "job spec: 'bond' must be >= 0");
  s.cells = cfg.get_longs("cells", s.cells);
  TBMD_REQUIRE(s.cells.size() == 3, "job spec: 'cells' needs three integers");
  for (const long n : s.cells) {
    TBMD_REQUIRE(n >= 1, "job spec: each 'cells' entry must be >= 1");
  }
  s.indices = cfg.get_longs("indices", s.indices);
  TBMD_REQUIRE(s.indices.size() == 2, "job spec: 'indices' needs n and m");
  s.periodic = cfg.get_bool("periodic", true);
  if (s.structure == "xyz") s.xyz_file = cfg.require_string("file");

  s.model = to_lower(cfg.get_string("model", ""));
  s.calc.skin = cfg.get_double("skin", s.calc.skin);
  TBMD_REQUIRE(s.calc.skin >= 0.0, "job spec: 'skin' must be >= 0");
  // Per-job thread pinning (any engine): the runner's workers set the
  // OpenMP team size to this before running the job; 0 inherits the
  // worker's ambient OMP_NUM_THREADS.
  s.calc.threads = static_cast<int>(cfg.get_long("threads", 0));
  TBMD_REQUIRE(s.calc.threads >= 0, "job spec: 'threads' must be >= 0");
  if (s.classical()) {
    if (s.model == "lj") {
      s.lj_epsilon = cfg.get_double("epsilon", 0.0);
      s.lj_sigma = cfg.get_double("sigma", 0.0);
      s.lj_cutoff = cfg.get_double("cutoff", 0.0);
    }
  } else {
    s.calc.mode = CalculatorSpec::mode_by_name(cfg.get_string("mode", "exact"));
    s.calc.electronic_temperature =
        cfg.get_double("electronic_temperature", 0.0);
    TBMD_REQUIRE(s.calc.electronic_temperature >= 0.0,
                 "job spec: 'electronic_temperature' must be >= 0");
    // Numerics policy (O(N) engine): every key lands on the shared
    // NumericsSpec and is fingerprint-relevant.
    NumericsSpec& num = s.calc.numerics;
    num.drop_tolerance = cfg.get_double("drop_tolerance", num.drop_tolerance);
    TBMD_REQUIRE(num.drop_tolerance >= 0.0,
                 "job spec: 'drop_tolerance' must be >= 0");
    num.schedule_loosening =
        cfg.get_double("schedule_loosening", num.schedule_loosening);
    TBMD_REQUIRE(num.schedule_loosening > 0.0,
                 "job spec: 'schedule_loosening' must be positive");
    num.schedule_decay = cfg.get_double("schedule_decay", num.schedule_decay);
    TBMD_REQUIRE(num.schedule_decay > 0.0 && num.schedule_decay <= 1.0,
                 "job spec: 'schedule_decay' must be in (0, 1]");
    num.precision = NumericsSpec::precision_by_name(
        to_lower(cfg.get_string("precision", num.precision_name())));
    num.promote_iteration = static_cast<int>(
        cfg.get_long("promote_iteration", num.promote_iteration));
    TBMD_REQUIRE(num.promote_iteration >= 0,
                 "job spec: 'promote_iteration' must be >= 0");
    num.promote_threshold =
        cfg.get_double("promote_threshold", num.promote_threshold);
    TBMD_REQUIRE(num.promote_threshold >= 0.0,
                 "job spec: 'promote_threshold' must be >= 0");
    num.simd = cfg.get_bool("simd", num.simd);
    num.sub_tile = cfg.get_double("sub_tile", num.sub_tile);
    TBMD_REQUIRE(num.sub_tile >= 0.0, "job spec: 'sub_tile' must be >= 0");
    s.calc.reuse_patterns = cfg.get_bool("reuse_patterns", true);
    s.calc.domains = static_cast<int>(cfg.get_long("domains", 0));
    TBMD_REQUIRE(s.calc.domains >= 0, "job spec: 'domains' must be >= 0");
    s.calc.cache_spectral_bounds =
        cfg.get_bool("cache_spectral_bounds", false);
    s.calc.bond_reuse_skin =
        cfg.get_double("bond_reuse_skin", s.calc.bond_reuse_skin);
    TBMD_REQUIRE(s.calc.bond_reuse_skin >= 0.0,
                 "job spec: 'bond_reuse_skin' must be >= 0");
    // Numerics guardrails + recovery ladder (O(N) engine).
    HealthSpec& health = s.calc.health;
    health.enabled = cfg.get_bool("health", health.enabled);
    health.max_force = cfg.get_double("max_force", health.max_force);
    TBMD_REQUIRE(health.max_force >= 0.0,
                 "job spec: 'max_force' must be >= 0");
    health.max_energy_per_atom =
        cfg.get_double("max_energy_per_atom", health.max_energy_per_atom);
    TBMD_REQUIRE(health.max_energy_per_atom >= 0.0,
                 "job spec: 'max_energy_per_atom' must be >= 0");
    health.fp64_retry = cfg.get_bool("health_fp64_retry", health.fp64_retry);
    health.tighten_retry =
        cfg.get_bool("health_tighten_retry", health.tighten_retry);
    health.tighten_factor =
        cfg.get_double("health_tighten_factor", health.tighten_factor);
    TBMD_REQUIRE(health.tighten_factor > 0.0 && health.tighten_factor < 1.0,
                 "job spec: 'health_tighten_factor' must be in (0, 1)");
    health.exact_fallback =
        cfg.get_bool("health_exact_fallback", health.exact_fallback);
  }

  s.dt = cfg.get_double("dt", s.dt);
  TBMD_REQUIRE(s.dt > 0.0, "job spec: 'dt' must be positive");
  s.steps = cfg.require_long("steps");
  TBMD_REQUIRE(s.steps > 0, "job spec: 'steps' must be positive");
  s.temperature = cfg.get_double("temperature", s.temperature);
  TBMD_REQUIRE(s.temperature >= 0.0, "job spec: 'temperature' must be >= 0");
  const long seed = cfg.get_long("seed", 42);
  TBMD_REQUIRE(seed >= 0, "job spec: 'seed' must be >= 0");
  s.seed = static_cast<std::uint64_t>(seed);

  s.thermostat = md::ThermostatSpec::by_name(
      cfg.get_string("thermostat", "none"), s.temperature);
  if (s.thermostat.active()) {
    s.thermostat.tau_fs = cfg.get_double("thermostat_tau", s.thermostat.tau_fs);
    TBMD_REQUIRE(s.thermostat.tau_fs > 0.0,
                 "job spec: 'thermostat_tau' must be positive");
    s.thermostat.interval =
        static_cast<int>(cfg.get_long("thermostat_interval", 1));
    TBMD_REQUIRE(s.thermostat.interval >= 1,
                 "job spec: 'thermostat_interval' must be >= 1");
    s.thermostat.chain_length =
        static_cast<int>(cfg.get_long("chain_length", 2));
    TBMD_REQUIRE(s.thermostat.chain_length >= 1,
                 "job spec: 'chain_length' must be >= 1");
  }
  s.ramp_to = cfg.get_double("ramp_to", 0.0);
  TBMD_REQUIRE(s.ramp_to >= 0.0, "job spec: 'ramp_to' must be >= 0");
  s.ramp_steps = cfg.get_long("ramp_steps", 0);
  TBMD_REQUIRE(s.ramp_steps >= 0, "job spec: 'ramp_steps' must be >= 0");
  TBMD_REQUIRE(s.ramp_steps == 0 || s.thermostat.active(),
               "job spec: a temperature ramp needs a thermostat");

  s.sample_every = cfg.get_long("sample_every", s.sample_every);
  TBMD_REQUIRE(s.sample_every >= 0, "job spec: 'sample_every' must be >= 0");
  s.checkpoint_every = cfg.get_long("checkpoint_every", 0);
  TBMD_REQUIRE(s.checkpoint_every >= 0,
               "job spec: 'checkpoint_every' must be >= 0");
  s.traj_velocities = cfg.get_bool("traj_velocities", false);
  s.traj_lossless = cfg.get_bool("traj_lossless", false);
  s.faults = cfg.get_string("faults", "");

  cfg.require_all_used("job spec '" + s.name + "'");
  return s;
}

JobSpec JobSpec::from_file(const std::string& path) {
  const io::Config cfg = io::Config::parse_file(path);
  const bool named = cfg.has("name");
  JobSpec s = from_config(cfg);
  if (!named) s.name = std::filesystem::path(path).stem().string();
  return s;
}

System JobSpec::build_system() const {
  const auto nx = cells[0];
  const auto ny = cells[1];
  const auto nz = cells[2];
  if (structure == "diamond") {
    const double a =
        lattice > 0.0 ? lattice : (element == Element::C ? 3.567 : 5.431);
    return structures::diamond(element, a, nx, ny, nz);
  }
  if (structure == "fcc") {
    const double a = lattice > 0.0 ? lattice : 5.26;
    return structures::fcc(element, a, nx, ny, nz);
  }
  if (structure == "graphene") {
    return structures::graphene(element, bond > 0.0 ? bond : 1.42, nx, ny);
  }
  if (structure == "nanotube") {
    return structures::nanotube(element, static_cast<int>(indices[0]),
                                static_cast<int>(indices[1]),
                                bond > 0.0 ? bond : 1.42,
                                static_cast<int>(nz), periodic);
  }
  if (structure == "c60") return structures::c60();
  if (structure == "xyz") return io::read_xyz_file(xyz_file);
  throw Error("job spec: unknown structure '" + structure + "'");
}

bool JobSpec::classical() const { return model == "tersoff" || model == "lj"; }

std::string JobSpec::resolved_model() const {
  if (classical()) return model;
  const std::string raw =
      model.empty() ? std::string(element_symbol(element)) : model;
  return tb::model_by_name(raw).name;
}

std::unique_ptr<Calculator> JobSpec::make_calculator(
    const System& system) const {
  const Element elem =
      system.species().empty() ? element : system.species().front();
  if (model == "tersoff") {
    potentials::TersoffParams p = elem == Element::C
                                      ? potentials::tersoff_carbon()
                                      : potentials::tersoff_silicon();
    p.skin = calc.skin;
    return std::make_unique<potentials::TersoffCalculator>(p);
  }
  if (model == "lj") {
    potentials::LennardJonesParams p;
    if (lj_epsilon > 0.0) p.epsilon = lj_epsilon;
    if (lj_sigma > 0.0) p.sigma = lj_sigma;
    if (lj_cutoff > 0.0) p.cutoff = lj_cutoff;
    p.skin = calc.skin;
    return std::make_unique<potentials::LennardJonesCalculator>(p);
  }
  return tbmd::make_calculator(tb::model_by_name(resolved_model()), system,
                               calc);
}

std::string JobSpec::calculator_key() const {
  std::ostringstream os;
  os.precision(17);
  if (classical()) {
    os << model << ";eps=" << lj_epsilon << ";sigma=" << lj_sigma
       << ";cutoff=" << lj_cutoff << ";skin=" << calc.skin << ";elem="
       << element_symbol(element);
  } else {
    os << resolved_model() << ";" << calc.fingerprint();
  }
  return os.str();
}

double JobSpec::target_at(long step) const {
  if (ramp_steps <= 0) return temperature;
  if (step >= ramp_steps) return ramp_to;
  const double f =
      static_cast<double>(step + 1) / static_cast<double>(ramp_steps);
  return temperature + f * (ramp_to - temperature);
}

Sweep load_sweep(const std::string& path) {
  const io::Config cfg = io::Config::parse_file(path);
  Sweep sw;
  sw.output_dir = cfg.get_string("output_dir", sw.output_dir);
  sw.workers = static_cast<int>(cfg.get_long("workers", 1));
  TBMD_REQUIRE(sw.workers >= 1, "sweep: 'workers' must be >= 1");
  sw.resume = cfg.get_bool("resume", true);
  sw.max_job_retries =
      static_cast<int>(cfg.get_long("max_job_retries", sw.max_job_retries));
  TBMD_REQUIRE(sw.max_job_retries >= 0,
               "sweep: 'max_job_retries' must be >= 0");
  sw.retry_backoff_s = cfg.get_double("retry_backoff", sw.retry_backoff_s);
  TBMD_REQUIRE(sw.retry_backoff_s >= 0.0,
               "sweep: 'retry_backoff' must be >= 0");
  sw.step_watchdog_s = cfg.get_double("step_watchdog", sw.step_watchdog_s);
  TBMD_REQUIRE(sw.step_watchdog_s >= 0.0,
               "sweep: 'step_watchdog' must be >= 0");
  const long replicas = cfg.get_long("replicas", 1);
  TBMD_REQUIRE(replicas >= 1, "sweep: 'replicas' must be >= 1");
  const std::vector<std::string> job_files =
      split_whitespace(cfg.require_string("jobs"));
  TBMD_REQUIRE(!job_files.empty(), "sweep: 'jobs' lists no spec files");
  cfg.require_all_used("sweep file '" + path + "'");

  const std::filesystem::path base = std::filesystem::path(path).parent_path();
  std::vector<JobSpec> parsed;
  for (const std::string& file : job_files) {
    std::filesystem::path p(file);
    if (p.is_relative()) p = base / p;
    parsed.push_back(JobSpec::from_file(p.string()));
  }

  for (const JobSpec& spec : parsed) {
    if (replicas == 1) {
      sw.jobs.push_back(spec);
      continue;
    }
    for (long k = 0; k < replicas; ++k) {
      JobSpec copy = spec;
      copy.name += "-r" + std::to_string(k);
      copy.seed += static_cast<std::uint64_t>(k);
      sw.jobs.push_back(std::move(copy));
    }
  }

  std::set<std::string> names;
  for (const JobSpec& spec : sw.jobs) {
    TBMD_REQUIRE(names.insert(spec.name).second,
                 "sweep: duplicate job name '" + spec.name + "'");
  }
  return sw;
}

}  // namespace tbmd::svc
