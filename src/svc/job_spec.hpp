#pragma once

/// \file job_spec.hpp
/// \brief Declarative description of one MD trajectory job.
///
/// A JobSpec is everything the job runner needs to (re)create a trajectory
/// from scratch: structure recipe, engine selection (a CalculatorSpec for
/// the tight-binding engines, or a classical potential for cheap tests),
/// thermal protocol and output cadence.  Specs are parsed strictly from
/// io::Config files -- unknown keys are an error, so a typo in a sweep file
/// fails fast instead of silently running with a default.
///
/// Determinism contract: everything dynamical is a pure function of the
/// spec and the step index.  In particular the ramp target returned by
/// target_at(step) depends only on `step`, so a job resumed from a
/// checkpoint at step k applies exactly the targets an uninterrupted run
/// would have applied from step k on.

#include <memory>
#include <string>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/core/element.hpp"
#include "src/core/system.hpp"
#include "src/io/config.hpp"
#include "src/md/thermostat.hpp"

namespace tbmd::svc {

/// Declarative description of one trajectory (see file docs).
struct JobSpec {
  /// Job name; used for output file stems (`<name>.ckpt`, `<name>.tbt`).
  std::string name = "job";

  // --- structure recipe ------------------------------------------------
  /// diamond | fcc | graphene | nanotube | c60 | xyz
  std::string structure = "diamond";
  Element element = Element::Si;
  /// Lattice constant (A); 0 picks the element default.
  double lattice = 0.0;
  /// Bond length (A) for graphene / nanotube; 0 picks the default.
  double bond = 0.0;
  std::vector<long> cells = {2, 2, 2};
  /// Chiral indices (n, m) for nanotube.
  std::vector<long> indices = {10, 0};
  bool periodic = true;
  /// Source file for structure = xyz.
  std::string xyz_file;

  // --- engine ----------------------------------------------------------
  /// Tight-binding model name ("" = default for `element`), or a
  /// classical engine: "tersoff" | "lj".
  std::string model;
  /// Engine options when `model` names a tight-binding model.
  CalculatorSpec calc;
  /// Lennard-Jones overrides (0 = parameter default) when model = lj.
  double lj_epsilon = 0.0;
  double lj_sigma = 0.0;
  double lj_cutoff = 0.0;

  // --- dynamics --------------------------------------------------------
  double dt = 1.0;
  long steps = 100;
  /// Initial temperature (K) for velocity seeding and thermostat target.
  double temperature = 300.0;
  std::uint64_t seed = 42;
  md::ThermostatSpec thermostat;
  /// Linear temperature ramp: target moves from `temperature` to
  /// `ramp_to` over the first `ramp_steps` steps (0 = no ramp).
  double ramp_to = 0.0;
  long ramp_steps = 0;

  // --- output ----------------------------------------------------------
  /// Trajectory sampling cadence in steps (0 = no trajectory).
  long sample_every = 25;
  /// Checkpoint cadence in steps (0 = only the final checkpoint).
  long checkpoint_every = 0;
  bool traj_velocities = false;
  bool traj_lossless = false;

  // --- chaos -----------------------------------------------------------
  /// Fault-injection spec armed before the job runs (see
  /// util/fault_point.hpp for the grammar); "" = nothing armed.  A
  /// test/chaos-run knob -- never a production default.
  std::string faults;

  /// Parse from a config; every key must be consumed (typos throw).
  [[nodiscard]] static JobSpec from_config(const io::Config& cfg);

  /// Parse a single-job spec file.
  [[nodiscard]] static JobSpec from_file(const std::string& path);

  /// Build the initial structure (velocities zero; seeding is the
  /// runner's job so resume never re-draws them).
  [[nodiscard]] System build_system() const;

  /// True when `model` selects a classical potential.
  [[nodiscard]] bool classical() const;

  /// Tight-binding model name after element defaulting (C ->
  /// xwch-carbon, Si -> gsp-silicon, Au -> kirchhoff-gold); for
  /// classical engines, `model` itself.
  [[nodiscard]] std::string resolved_model() const;

  /// Construct the engine; validates the model covers `system`'s species.
  [[nodiscard]] std::unique_ptr<Calculator> make_calculator(
      const System& system) const;

  /// Cache key: jobs with equal keys can share one calculator instance.
  [[nodiscard]] std::string calculator_key() const;

  /// Thermostat target (K) applied while advancing step -> step + 1.
  [[nodiscard]] double target_at(long step) const;
};

/// A sweep file: runner options plus one JobSpec per job.
///
/// Sweep config keys: `jobs` (whitespace-separated spec paths, resolved
/// relative to the sweep file), `output_dir`, `workers`, `resume`,
/// `replicas` (expands every job K-fold as `<name>-r<k>` with seed + k),
/// plus the robustness knobs `max_job_retries`, `retry_backoff` (s) and
/// `step_watchdog` (s).
struct Sweep {
  std::vector<JobSpec> jobs;
  std::string output_dir = "sweep_out";
  int workers = 1;
  bool resume = true;
  /// Failed jobs are retried up to this many extra attempts (see
  /// SweepOptions::max_job_retries).
  int max_job_retries = 0;
  /// Base/backoff cap (s) between retry attempts.
  double retry_backoff_s = 0.05;
  /// Wall-clock budget (s) for one MD step before the watchdog preempts
  /// the job back to its last checkpoint (0 = no watchdog).
  double step_watchdog_s = 0.0;
};

[[nodiscard]] Sweep load_sweep(const std::string& path);

}  // namespace tbmd::svc
