#include "src/neighbor/neighbor_list.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd {

namespace {

/// Below this atom count the O(N^2) build beats binning.
constexpr std::size_t kBruteForceThreshold = 192;

void check_cell_heights(const Cell& cell, double radius) {
  if (!cell.periodic()) return;
  const auto h = cell.heights();
  for (int a = 0; a < 3; ++a) {
    if (cell.periodic(a)) {
      TBMD_REQUIRE(h[a] >= 2.0 * radius,
                   "periodic cell height must be >= 2*(cutoff+skin); "
                   "use a larger supercell");
    }
  }
}

}  // namespace

std::vector<NeighborPair> brute_force_pairs(const std::vector<Vec3>& positions,
                                            const Cell& cell, double cutoff) {
  check_cell_heights(cell, cutoff);
  std::vector<NeighborPair> pairs;
  const double rc2 = cutoff * cutoff;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const Vec3 raw = positions[j] - positions[i];
      const Vec3 shift = cell.image_shift(raw);
      if (norm2_sq(raw + shift) < rc2) {
        pairs.push_back({i, j, shift});
      }
    }
  }
  return pairs;
}

void NeighborList::build(const std::vector<Vec3>& positions, const Cell& cell,
                         const Options& options) {
  TBMD_REQUIRE(options.cutoff > 0.0, "NeighborList: cutoff must be positive");
  TBMD_REQUIRE(options.skin >= 0.0, "NeighborList: skin must be >= 0");
  list_radius_ = options.cutoff + options.skin;
  skin_ = options.skin;
  check_cell_heights(cell, list_radius_);

  full_.assign(positions.size(), {});
  half_.clear();

  // Decide strategy: binning needs >= 3 bins along every periodic axis to
  // make the wrap-around 27-stencil scan collision-free.
  bool binnable = positions.size() >= kBruteForceThreshold;
  if (binnable && cell.periodic()) {
    const auto h = cell.heights();
    for (int a = 0; a < 3; ++a) {
      if (cell.periodic(a) &&
          static_cast<int>(std::floor(h[a] / list_radius_)) < 3) {
        binnable = false;
      }
    }
  }

  if (binnable) {
    build_binned(positions, cell);
    // Canonicalize row order: the binned scan visits neighbors in bin order,
    // which depends on where the atom sits relative to bin boundaries and
    // hence on *when* the list was rebuilt.  Force accumulation must be a
    // pure function of the positions, so sort every row by neighbor index
    // (the cell-height precondition guarantees at most one image per pair,
    // so the index alone is a total order).  Brute-force rows are already
    // sorted by construction.
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < full_.size(); ++i) {
      std::sort(full_[i].begin(), full_[i].end(),
                [](const NeighborEntry& a, const NeighborEntry& b) {
                  return a.j < b.j;
                });
    }
  } else {
    build_brute_force(positions, cell);
  }

  // Derive the half list (each unordered pair exactly once).
  for (std::size_t i = 0; i < full_.size(); ++i) {
    for (const NeighborEntry& e : full_[i]) {
      if (e.j > i) half_.push_back({i, e.j, e.shift});
    }
  }

  build_positions_ = positions;
  ++build_count_;
}

void NeighborList::build_brute_force(const std::vector<Vec3>& positions,
                                     const Cell& cell) {
  const double rc2 = list_radius_ * list_radius_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const Vec3 raw = positions[j] - positions[i];
      // image_shift, not minimum_image(raw) - raw: the stored shift must
      // be the exact lattice translation so that forces recomputed from
      // `pos[j] + shift - pos[i]` are a pure function of the positions,
      // independent of the positions the list happened to be built at.
      const Vec3 shift = cell.image_shift(raw);
      if (norm2_sq(raw + shift) < rc2) {
        full_[i].push_back({j, shift});
        full_[j].push_back({i, -shift});
      }
    }
  }
}

void NeighborList::build_binned(const std::vector<Vec3>& positions,
                                const Cell& cell) {
  const std::size_t n = positions.size();
  const double rc2 = list_radius_ * list_radius_;

  // Bin in fractional space.  For non-periodic axes, bins span the bounding
  // box of the coordinates (fractional space of a synthetic axis-aligned
  // box for cluster systems).
  const bool have_lattice = cell.volume() > 0.0;
  Cell box = cell;
  if (!have_lattice) {
    Vec3 lo = positions[0], hi = positions[0];
    for (const Vec3& r : positions) {
      lo = {std::min(lo.x, r.x), std::min(lo.y, r.y), std::min(lo.z, r.z)};
      hi = {std::max(hi.x, r.x), std::max(hi.y, r.y), std::max(hi.z, r.z)};
    }
    const Vec3 span = hi - lo + Vec3{1e-6, 1e-6, 1e-6};
    box = Cell::orthorhombic(span.x, span.y, span.z, false, false, false);
    // Shift into the box frame when computing fractional coordinates below.
    origin_shift_ = lo;
  } else {
    origin_shift_ = {0.0, 0.0, 0.0};
  }

  const auto heights = box.heights();
  std::array<int, 3> nb{};
  for (int a = 0; a < 3; ++a) {
    nb[a] = std::max(1, static_cast<int>(std::floor(heights[a] / list_radius_)));
    if (!box.periodic(a)) nb[a] = std::max(nb[a], 1);
  }

  const int nbins = nb[0] * nb[1] * nb[2];
  auto bin_of = [&](const Vec3& r) {
    Vec3 s = box.to_fractional(r - origin_shift_);
    // Map to [0,1) along periodic axes, clamp along open ones.
    auto fold = [&](double v, bool per) {
      if (per) {
        v -= std::floor(v);
        if (v >= 1.0) v = 0.0;
      } else {
        v = std::clamp(v, 0.0, 1.0 - 1e-12);
      }
      return v;
    };
    s = {fold(s.x, box.periodic(0)), fold(s.y, box.periodic(1)),
         fold(s.z, box.periodic(2))};
    const int bx = std::min(nb[0] - 1, static_cast<int>(s.x * nb[0]));
    const int by = std::min(nb[1] - 1, static_cast<int>(s.y * nb[1]));
    const int bz = std::min(nb[2] - 1, static_cast<int>(s.z * nb[2]));
    return std::array<int, 3>{bx, by, bz};
  };
  auto flat = [&](int bx, int by, int bz) {
    return (bx * nb[1] + by) * nb[2] + bz;
  };

  std::vector<std::vector<std::size_t>> bins(nbins);
  std::vector<std::array<int, 3>> atom_bin(n);
  for (std::size_t i = 0; i < n; ++i) {
    atom_bin[i] = bin_of(positions[i]);
    bins[flat(atom_bin[i][0], atom_bin[i][1], atom_bin[i][2])].push_back(i);
  }

  // Scan the 27-stencil around each atom's bin; rows of `full_` are
  // independent, so atoms parallelize trivially.
#pragma omp parallel for schedule(dynamic, 32)
  for (std::size_t i = 0; i < n; ++i) {
    const auto& b = atom_bin[i];
    auto& list = full_[i];
    for (int dx = -1; dx <= 1; ++dx) {
      int bx = b[0] + dx;
      if (box.periodic(0)) {
        bx = (bx + nb[0]) % nb[0];
      } else if (bx < 0 || bx >= nb[0]) {
        continue;
      }
      for (int dy = -1; dy <= 1; ++dy) {
        int by = b[1] + dy;
        if (box.periodic(1)) {
          by = (by + nb[1]) % nb[1];
        } else if (by < 0 || by >= nb[1]) {
          continue;
        }
        for (int dz = -1; dz <= 1; ++dz) {
          int bz = b[2] + dz;
          if (box.periodic(2)) {
            bz = (bz + nb[2]) % nb[2];
          } else if (bz < 0 || bz >= nb[2]) {
            continue;
          }
          for (const std::size_t j : bins[flat(bx, by, bz)]) {
            if (j == i) continue;
            const Vec3 raw = positions[j] - positions[i];
            // Exact lattice-translation shift; see build_brute_force.
            const Vec3 shift = cell.image_shift(raw);
            if (norm2_sq(raw + shift) < rc2) {
              list.push_back({j, shift});
            }
          }
        }
      }
    }
  }
}

bool NeighborList::needs_rebuild(const std::vector<Vec3>& positions) const {
  if (positions.size() != build_positions_.size()) return true;
  const double limit = 0.25 * skin_ * skin_;  // (skin/2)^2
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (norm2_sq(positions[i] - build_positions_[i]) > limit) return true;
  }
  return false;
}

bool NeighborList::ensure(const std::vector<Vec3>& positions, const Cell& cell,
                          const Options& options) {
  const bool stale = full_.empty() || list_radius_ != options.cutoff + options.skin ||
                     needs_rebuild(positions);
  if (stale) build(positions, cell, options);
  return stale;
}

}  // namespace tbmd
