#pragma once

/// \file neighbor_list.hpp
/// \brief Verlet neighbor lists built from linked-cell binning.
///
/// The tight-binding Hamiltonian, the repulsive pair energy and the
/// classical baseline potentials all consume the same list.  The list is
/// built to `cutoff + skin` and only rebuilt once some atom has moved
/// farther than skin/2 since the last build (the standard Verlet-skin
/// scheme), which amortizes the O(N) build over many MD steps.
///
/// Periodic-image bookkeeping: every stored pair carries the Cartesian
/// lattice shift S such that r_ij = r_j + S - r_i is the minimum-image
/// displacement at build time.  Because positions are not wrapped between
/// rebuilds, the shift stays valid while the list is in use.
///
/// Precondition: along every periodic axis the cell height must be at least
/// 2*(cutoff+skin), so each unordered pair has at most one interacting
/// image and an atom never interacts with its own image.  The builders in
/// src/structures create cells that satisfy this for the shipped models.

#include <cstddef>
#include <vector>

#include "src/geom/cell.hpp"
#include "src/geom/vec3.hpp"

namespace tbmd {

/// One direction of a stored pair: neighbor j of atom i with image shift.
struct NeighborEntry {
  std::size_t j;   ///< neighbor atom index
  Vec3 shift;      ///< lattice shift: r_ij = r[j] + shift - r[i]
};

/// Unordered pair (i < j) with the shift applied to atom j.
struct NeighborPair {
  std::size_t i;
  std::size_t j;
  Vec3 shift;
};

/// Reference O(N^2) pair enumeration (minimum image).  Used by the test
/// suite as the oracle for the linked-cell implementation and by tiny
/// systems where binning does not pay off.
[[nodiscard]] std::vector<NeighborPair> brute_force_pairs(
    const std::vector<Vec3>& positions, const Cell& cell, double cutoff);

/// Linked-cell Verlet neighbor list.
class NeighborList {
 public:
  struct Options {
    double cutoff = 0.0;  ///< interaction cutoff (A)
    double skin = 0.5;    ///< Verlet skin (A); 0 disables deferred rebuilds
  };

  NeighborList() = default;

  /// Build the list from scratch.
  void build(const std::vector<Vec3>& positions, const Cell& cell,
             const Options& options);

  /// True when some atom has moved more than skin/2 since the last build.
  [[nodiscard]] bool needs_rebuild(const std::vector<Vec3>& positions) const;

  /// Rebuild only if needed; returns true when a rebuild happened.
  bool ensure(const std::vector<Vec3>& positions, const Cell& cell,
              const Options& options);

  /// Full neighbor list of atom i (both directions of every pair).
  [[nodiscard]] const std::vector<NeighborEntry>& neighbors(
      std::size_t i) const {
    return full_[i];
  }

  /// Each pair exactly once (i < j).
  [[nodiscard]] const std::vector<NeighborPair>& half_pairs() const {
    return half_;
  }

  /// Number of atoms the list was built for.
  [[nodiscard]] std::size_t size() const { return full_.size(); }

  /// Cutoff + skin the list was built with.
  [[nodiscard]] double list_radius() const { return list_radius_; }

  /// Number of from-scratch builds performed (ablation instrumentation).
  [[nodiscard]] std::size_t build_count() const { return build_count_; }

 private:
  void build_brute_force(const std::vector<Vec3>& positions, const Cell& cell);
  void build_binned(const std::vector<Vec3>& positions, const Cell& cell);

  std::vector<std::vector<NeighborEntry>> full_;
  std::vector<NeighborPair> half_;
  std::vector<Vec3> build_positions_;
  Vec3 origin_shift_;  ///< bounding-box origin used when binning clusters
  double list_radius_ = 0.0;
  double skin_ = 0.0;
  std::size_t build_count_ = 0;
};

}  // namespace tbmd
