#pragma once

/// \file calculator_spec.hpp
/// \brief Declarative calculator construction: one spec, both TB engines.
///
/// The exact-diagonalization and O(N) purification calculators grew
/// separate option structs (tb::TbOptions, onx::OrderNOptions).  Callers
/// that must choose an engine at runtime -- the config runner, the job
/// runner, every crossover/ablation bench -- previously hand-rolled both
/// construction paths.  CalculatorSpec is the single declarative
/// description (engine mode, accuracy knobs, electronic temperature) and
/// make_calculator() the one factory that resolves it against a model, so
/// "which engine" becomes data instead of code.

#include <memory>
#include <string>

#include "src/core/calculator.hpp"
#include "src/core/health_spec.hpp"
#include "src/core/numerics_spec.hpp"

namespace tbmd {

namespace tb {
struct TbModel;
}  // namespace tb

/// Which energy/force engine a CalculatorSpec resolves to.
enum class CalcMode {
  kExact,   ///< tb::TightBindingCalculator (O(N^3) diagonalization)
  kOrderN,  ///< onx::OrderNCalculator (density-matrix purification)
};

/// Spectrum policy of the exact engine (mirrors tb::SpectrumMode without
/// making core depend on the tb headers).
enum class SpectrumPolicy { kAuto, kFull, kPartial };

/// Declarative calculator description.  Fields irrelevant to the chosen
/// mode are ignored by the factory; defaults match the engines' own
/// defaults, so CalculatorSpec{} builds the library's standard exact
/// calculator.
struct CalculatorSpec {
  CalcMode mode = CalcMode::kExact;
  /// Verlet skin added to the model cutoff for the neighbor list (A).
  double skin = 0.5;
  /// Electronic temperature for Fermi-Dirac smearing (K); 0 = aufbau.
  double electronic_temperature = 0.0;

  // --- exact engine ---
  SpectrumPolicy spectrum = SpectrumPolicy::kAuto;
  /// Copy the eigenvalue spectrum into each ForceResult.
  bool report_eigenvalues = true;

  // --- O(N) engine ---
  /// Numerics policy of the purification loop: drop tolerance + schedule,
  /// precision mode (fp64 / mixed), promotion policy, SIMD switch,
  /// sub-tile truncation.  Every field changes results, so all of them are
  /// fingerprint-relevant (unlike `threads` below).
  NumericsSpec numerics;
  /// Reuse symbolic SpMM patterns across steps (ablation switch; results
  /// are bit-identical either way).
  bool reuse_patterns = true;
  /// Block-row domain count for the sharded O(N) sweeps (0 = auto-size
  /// from the thread count, 1 = off, >= 2 explicit); scheduling-level
  /// only, results are bit-identical at any value.
  int domains = 0;
  /// Cache Gershgorin spectral bounds across steps (norm-widened on
  /// pattern hits).  Saves an O(nnz) pass per warm step but makes the
  /// purification seed history-dependent, so checkpoint kill-and-resume
  /// is no longer bit-reproducible with this on; default off.
  bool cache_spectral_bounds = false;
  /// Verlet-skin-lifetime BondTable reuse (A): freeze Slater-Koster
  /// blocks of bonds whose endpoints moved less than half this skin since
  /// their last evaluation (see onx::OrderNOptions::bond_reuse_skin).
  /// 0 = off (the default; like cache_spectral_bounds, reuse trades
  /// checkpoint bit-reproducibility for throughput).
  double bond_reuse_skin = 0.0;
  /// Numerics guardrails + recovery ladder of the O(N) engine (see
  /// core/health_spec.hpp).  Off by default; when enabled it can change
  /// results (a triggered retry reruns the step under different numerics),
  /// so the enabled spec is fingerprint-relevant.
  HealthSpec health;

  // --- execution (any engine) ---
  /// OpenMP threads to pin while this calculator's jobs run: 0 inherits
  /// the worker's ambient team size, > 0 overrides it per job (the
  /// `TBMD_THREADS`-style knob for sweep workers).  An execution-resource
  /// hint, not part of the calculator's identity: it never changes
  /// results (every kernel is thread-count invariant), so fingerprint()
  /// deliberately excludes it and jobs differing only in `threads` share
  /// a cached calculator.
  int threads = 0;

  [[nodiscard]] static CalculatorSpec exact() { return {}; }

  [[nodiscard]] static CalculatorSpec order_n(double drop_tolerance = 1e-7) {
    CalculatorSpec s;
    s.mode = CalcMode::kOrderN;
    s.numerics.drop_tolerance = drop_tolerance;
    return s;
  }

  /// O(N) engine with the mixed-precision purification loop (fp32 tiles
  /// for the loose-early iterations, automatic fp64 promotion).
  [[nodiscard]] static CalculatorSpec order_n_mixed(
      double drop_tolerance = 1e-7) {
    CalculatorSpec s = order_n(drop_tolerance);
    s.numerics.precision = PrecisionMode::kMixed;
    return s;
  }

  /// Mode from its config spelling ("exact"/"tb-exact", "on"/"tb-on");
  /// throws tbmd::Error on unknown names.
  [[nodiscard]] static CalcMode mode_by_name(const std::string& name);

  /// Config spelling of mode (round-trips through mode_by_name).
  [[nodiscard]] std::string mode_name() const;

  /// Stable one-line encoding of every field.  Two specs with equal
  /// fingerprints construct interchangeable calculators -- the job runner
  /// keys its per-worker calculator cache on (model name, fingerprint).
  [[nodiscard]] std::string fingerprint() const;
};

/// Build the calculator a spec describes for `model`.  `system` supplies
/// construction-time context (currently only sanity checks: every species
/// present must be parameterized by the model); the returned calculator is
/// system-agnostic and may be reused across systems, like the engines it
/// wraps.
[[nodiscard]] std::unique_ptr<Calculator> make_calculator(
    const tb::TbModel& model, const System& system,
    const CalculatorSpec& spec);

/// Overload without construction-time checks.
[[nodiscard]] std::unique_ptr<Calculator> make_calculator(
    const tb::TbModel& model, const CalculatorSpec& spec);

}  // namespace tbmd
