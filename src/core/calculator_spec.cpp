#include "src/core/calculator_spec.hpp"

#include <sstream>

#include "src/onx/on_calculator.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd {

CalcMode CalculatorSpec::mode_by_name(const std::string& name) {
  const std::string mode = to_lower(name);
  if (mode == "exact" || mode == "tb-exact") return CalcMode::kExact;
  if (mode == "on" || mode == "tb-on" || mode == "order-n") {
    return CalcMode::kOrderN;
  }
  throw Error("CalculatorSpec: unknown mode '" + name + "'");
}

std::string CalculatorSpec::mode_name() const {
  return mode == CalcMode::kExact ? "exact" : "on";
}

std::string CalculatorSpec::fingerprint() const {
  std::ostringstream os;
  os.precision(17);
  os << mode_name() << ";skin=" << skin
     << ";etemp=" << electronic_temperature;
  if (mode == CalcMode::kExact) {
    os << ";spectrum="
       << (spectrum == SpectrumPolicy::kAuto
               ? "auto"
               : (spectrum == SpectrumPolicy::kFull ? "full" : "partial"))
       << ";eigenvalues=" << (report_eigenvalues ? 1 : 0);
  } else {
    os << ";tol=" << numerics.drop_tolerance
       << ";loosen=" << numerics.schedule_loosening
       << ";decay=" << numerics.schedule_decay
       << ";prec=" << numerics.precision_name()
       << ";promit=" << numerics.promote_iteration
       << ";promthr=" << numerics.promote_threshold
       << ";simd=" << (numerics.simd ? 1 : 0)
       << ";subtile=" << numerics.sub_tile
       << ";reuse=" << (reuse_patterns ? 1 : 0) << ";domains=" << domains
       << ";cachebounds=" << (cache_spectral_bounds ? 1 : 0)
       << ";bondskin=" << bond_reuse_skin;
    // A disabled HealthSpec never changes results, so only the enabled
    // form contributes to the identity (and a triggered retry rung does
    // change results -- the ladder knobs are all relevant then).
    if (health.enabled) {
      os << ";health=1;hfin=" << (health.check_finite ? 1 : 0)
         << ";hconv=" << (health.check_convergence ? 1 : 0)
         << ";hmaxf=" << health.max_force
         << ";hmaxe=" << health.max_energy_per_atom
         << ";hfp64=" << (health.fp64_retry ? 1 : 0)
         << ";htight=" << (health.tighten_retry ? 1 : 0)
         << ";htf=" << health.tighten_factor
         << ";hexact=" << (health.exact_fallback ? 1 : 0);
    }
  }
  // `threads` is deliberately absent: it is an execution-resource hint
  // (see the field's doc), and two specs differing only there must share
  // a cached calculator.
  return os.str();
}

std::unique_ptr<Calculator> make_calculator(const tb::TbModel& model,
                                            const CalculatorSpec& spec) {
  if (spec.mode == CalcMode::kExact) {
    tb::TbOptions opt;
    opt.skin = spec.skin;
    opt.electronic_temperature = spec.electronic_temperature;
    opt.report_eigenvalues = spec.report_eigenvalues;
    switch (spec.spectrum) {
      case SpectrumPolicy::kAuto:
        opt.spectrum = tb::SpectrumMode::kAuto;
        break;
      case SpectrumPolicy::kFull:
        opt.spectrum = tb::SpectrumMode::kFull;
        break;
      case SpectrumPolicy::kPartial:
        opt.spectrum = tb::SpectrumMode::kPartial;
        break;
    }
    return std::make_unique<tb::TightBindingCalculator>(model, opt);
  }
  // The canonical purification loop fills an integer number of states: a
  // smeared-occupation request must not be silently downgraded to T = 0.
  TBMD_REQUIRE(spec.electronic_temperature == 0.0,
               "make_calculator: the O(N) engine integrates at T_el = 0; "
               "use mode = exact for Fermi-Dirac smearing");
  onx::OrderNOptions opt;
  opt.skin = spec.skin;
  // The whole numerics policy (drop tolerance + schedule, precision mode,
  // promotion, SIMD) transfers in one slice assignment: PurificationOptions
  // IS-A NumericsSpec.
  static_cast<NumericsSpec&>(opt.purification) = spec.numerics;
  opt.reuse_patterns = spec.reuse_patterns;
  opt.domains = spec.domains;
  opt.cache_spectral_bounds = spec.cache_spectral_bounds;
  opt.bond_reuse_skin = spec.bond_reuse_skin;
  opt.health = spec.health;
  return std::make_unique<onx::OrderNCalculator>(model, opt);
}

std::unique_ptr<Calculator> make_calculator(const tb::TbModel& model,
                                            const System& system,
                                            const CalculatorSpec& spec) {
  for (const Element e : system.species()) {
    TBMD_REQUIRE(model.species_index(e) >= 0,
                 std::string("make_calculator: model '") + model.name +
                     "' has no parameters for element " +
                     std::string(element_symbol(e)));
  }
  return make_calculator(model, spec);
}

}  // namespace tbmd
