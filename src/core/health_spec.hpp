#pragma once

/// \file health_spec.hpp
/// \brief Numerics guardrails + recovery-ladder policy of the O(N) engine.
///
/// The purification loop has documented failure modes that used to pass
/// silently into forces: purify_with_chemical_potential reports
/// converged = false on metallic spectra, truncation can stall the
/// canonical loop, and a corrupted tile turns the whole density matrix to
/// NaN in two multiplies.  HealthSpec is the policy that turns those into
/// *classified* failures: with `enabled` set, OrderNCalculator scans each
/// step's density/energy/forces and, instead of returning garbage, walks a
/// recovery ladder --
///
///   (a) re-run the step fp64-only when the failing run was mixed,
///   (b) re-run with a tightened drop tolerance after a cold cache rebuild
///       (pattern cache + cached spectral bounds invalidated),
///   (c) exact-diagonalization fallback for this step only,
///   (d) throw a typed NumericsError carrying the FailureClass
///       (structured job failure; the job runner records the class).
///
/// Like NumericsSpec, every field changes results *when a retry triggers*,
/// so CalculatorSpec::fingerprint() encodes the spec whenever it is
/// enabled.  Disabled (the default), the calculator performs no scans and
/// no retries and stays bit-identical to the pre-guardrail engine; an
/// unconverged purification is then only counted and logged (never used
/// silently without trace).

#include <cstdint>
#include <string>

#include "src/util/error.hpp"

namespace tbmd {

/// Classification of a guarded-step failure (what tripped, not where).
enum class FailureClass : std::uint8_t {
  kNone,            ///< healthy step
  kNonFinite,       ///< NaN/Inf in the density, energy or forces
  kNonConvergence,  ///< purification exhausted its iterations / stalled
  kMuBisectionMiss, ///< mu bisection never matched the electron count
  kForceBound,      ///< a force component exceeded HealthSpec::max_force
  kEnergyBound,     ///< |energy|/atom exceeded max_energy_per_atom
  kWatchdog,        ///< job-runner step watchdog preempted the job
};

[[nodiscard]] constexpr const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kNonFinite:
      return "non-finite";
    case FailureClass::kNonConvergence:
      return "non-convergence";
    case FailureClass::kMuBisectionMiss:
      return "mu-bisection-miss";
    case FailureClass::kForceBound:
      return "force-bound";
    case FailureClass::kEnergyBound:
      return "energy-bound";
    case FailureClass::kWatchdog:
      return "watchdog";
  }
  return "unknown";
}

/// Guardrail + recovery policy consumed by OrderNCalculator (see file
/// docs).  Carried by value on CalculatorSpec and parsed from JobSpec
/// files (`health`, `max_force`, `health_*` keys).
struct HealthSpec {
  /// Master switch.  Off (default): no scans, no retries, bit-identical
  /// to the unguarded engine; unconverged purifications are only counted
  /// and logged.
  bool enabled = false;

  /// Scan the density tiles, band energy and forces for NaN/Inf.
  bool check_finite = true;

  /// Treat an unconverged purification (or a mu-bisection miss) as a
  /// failure instead of using the density anyway.
  bool check_convergence = true;

  /// Per-component force sanity bound (eV/A); 0 disables the check.
  double max_force = 0.0;

  /// |total energy| per atom sanity bound (eV); 0 disables the check.
  double max_energy_per_atom = 0.0;

  // --- recovery ladder (rungs are skipped when inapplicable) ------------
  /// Rung (a): retry fp64-only when the failing run used mixed precision.
  bool fp64_retry = true;

  /// Rung (b): retry with drop_tolerance * tighten_factor after a cold
  /// cache rebuild (pattern cache + spectral bounds invalidated; the
  /// loose-early schedule and sub-tile truncation are also disabled for
  /// the retry).
  bool tighten_retry = true;
  double tighten_factor = 0.1;

  /// Rung (c): exact-diagonalization fallback for the failing step.
  bool exact_fallback = true;
};

/// Typed error raised by the guardrails when the recovery ladder is
/// exhausted (or skipped): carries the failure class so the job runner can
/// record *why* the step died, not just that it threw.
class NumericsError : public Error {
 public:
  NumericsError(FailureClass failure_class, const std::string& what)
      : Error(what), class_(failure_class) {}

  [[nodiscard]] FailureClass failure_class() const { return class_; }

 private:
  FailureClass class_;
};

}  // namespace tbmd
