#pragma once

/// \file system.hpp
/// \brief The simulated system: species, positions, velocities, cell.

#include <cstdint>
#include <vector>

#include "src/core/element.hpp"
#include "src/geom/cell.hpp"
#include "src/geom/vec3.hpp"

namespace tbmd {

/// A collection of atoms in a (possibly periodic) cell.
///
/// Positions are in angstrom, velocities in angstrom/fs.  Masses are stored
/// in program units (eV fs^2/A^2) so kinetic energy and accelerations need
/// no further conversion.  Atoms may be frozen (their velocities and forces
/// are zeroed by the MD engine), which reproduces the fixed-boundary trick
/// used in tube/edge simulations of the era.
class System {
 public:
  System() = default;

  /// Construct with a cell and no atoms.
  explicit System(Cell cell) : cell_(std::move(cell)) {}

  /// Append one atom; returns its index.
  std::size_t add_atom(Element e, const Vec3& position,
                       const Vec3& velocity = {});

  [[nodiscard]] std::size_t size() const { return species_.size(); }

  [[nodiscard]] const Cell& cell() const { return cell_; }
  void set_cell(Cell cell) { cell_ = std::move(cell); }

  [[nodiscard]] const std::vector<Vec3>& positions() const {
    return positions_;
  }
  [[nodiscard]] std::vector<Vec3>& positions() { return positions_; }

  [[nodiscard]] const std::vector<Vec3>& velocities() const {
    return velocities_;
  }
  [[nodiscard]] std::vector<Vec3>& velocities() { return velocities_; }

  [[nodiscard]] const std::vector<Element>& species() const {
    return species_;
  }

  /// Replace the species of atom i (used for substitutional doping).
  void set_species(std::size_t i, Element e);

  /// Mass of atom i in program units.
  [[nodiscard]] double mass(std::size_t i) const { return masses_[i]; }

  /// All masses in program units.
  [[nodiscard]] const std::vector<double>& masses() const { return masses_; }

  /// Freeze or unfreeze atom i (frozen atoms do not move during MD/relaxation).
  void set_frozen(std::size_t i, bool frozen) { frozen_[i] = frozen ? 1 : 0; }
  [[nodiscard]] bool frozen(std::size_t i) const { return frozen_[i] != 0; }

  /// Number of unfrozen atoms.
  [[nodiscard]] std::size_t mobile_count() const;

  /// Kinetic energy in eV (frozen atoms excluded).
  [[nodiscard]] double kinetic_energy() const;

  /// Instantaneous temperature in K from the equipartition theorem,
  /// using 3*N_mobile degrees of freedom (no constraint corrections).
  [[nodiscard]] double temperature() const;

  /// Remove the net momentum of the mobile atoms.
  void zero_momentum();

  /// Minimum-image displacement from atom i to atom j.
  [[nodiscard]] Vec3 displacement(std::size_t i, std::size_t j) const {
    return cell_.minimum_image(positions_[j] - positions_[i]);
  }

  /// Distance between atoms i and j under minimum image.
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const {
    return norm(displacement(i, j));
  }

  /// Wrap all positions into the home cell (call only when neighbor lists
  /// will be rebuilt afterwards).
  void wrap_positions();

  /// Total valence electrons (sets the band filling in TB calculators).
  [[nodiscard]] int total_valence_electrons() const;

 private:
  Cell cell_;
  std::vector<Vec3> positions_;
  std::vector<Vec3> velocities_;
  std::vector<Element> species_;
  std::vector<double> masses_;
  std::vector<std::uint8_t> frozen_;
};

}  // namespace tbmd
