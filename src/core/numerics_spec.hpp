#pragma once

/// \file numerics_spec.hpp
/// \brief Unified numerics policy of the O(N) engine: precision mode,
/// truncation schedule, SIMD switch.
///
/// The drop-schedule knobs used to live on onx::PurificationOptions and be
/// duplicated (flattened) onto CalculatorSpec; the mixed-precision work
/// added a second family (precision mode, promotion policy, kernel
/// selection) that every layer -- purification loop, calculator options,
/// declarative spec, JobSpec files, sweep CLI -- must agree on.
/// NumericsSpec is that single struct: PurificationOptions inherits it (so
/// every historical `options.drop_tolerance` spelling still compiles) and
/// CalculatorSpec carries one by value, fingerprint-relevant (unlike
/// `threads`, these knobs change results).
///
/// Precision model (mixed mode): purification iterations far from
/// idempotency run their SpMM on fp32 tiles -- half the memory traffic
/// exactly where the numeric phase is bandwidth-bound -- and the loop
/// promotes the density matrix to fp64 tiles for the tight-late
/// iterations.  Traces, the chemical-potential bisection, the final
/// McWeeny polish and both force contractions are always fp64; convergence
/// is never declared on fp32 tiles.  fp64 mode is bit-identical to the
/// engine before mixed precision existed.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "src/util/error.hpp"

namespace tbmd {

/// Tile precision policy of the purification loop.
enum class PrecisionMode : std::uint8_t {
  kF64,    ///< every iteration on fp64 tiles (bit-identical legacy path)
  kMixed,  ///< loose-early iterations on fp32 tiles, promoted to fp64
};

/// Numerics policy shared by the purification loop, OrderNCalculator,
/// CalculatorSpec and the JobSpec/CLI parsers.  Every field changes
/// results (unlike scheduling knobs), so CalculatorSpec::fingerprint()
/// encodes all of them.
struct NumericsSpec {
  /// Magnitude below which matrix entries (tiles, by Frobenius norm, on
  /// the blocked path) are dropped after each product.  0 keeps everything
  /// (exact arithmetic up to roundoff).
  double drop_tolerance = 1e-7;

  /// Per-iteration drop-threshold schedule: iteration `it` (1-based)
  /// truncates at drop_tolerance * max(1, loosening * decay^(it-1)).
  /// Early iterations are far from idempotency, so aggressive truncation
  /// there costs no final accuracy but keeps the fill (and hence the SpMM
  /// cost) down while the polynomial still reshapes the whole spectrum;
  /// late iterations and the final polish run at the tight tolerance.
  /// schedule_loosening = 1 disables the schedule.
  double schedule_loosening = 8.0;
  double schedule_decay = 0.5;

  /// Tile precision policy (see PrecisionMode).
  PrecisionMode precision = PrecisionMode::kF64;

  /// Mixed mode: promote to fp64 no later than this (1-based) iteration.
  /// 0 = no iteration cap, promotion is purely threshold-driven.
  int promote_iteration = 0;

  /// Mixed mode: promote once the idempotency error per state
  /// tr(P - P^2)/N falls below this.  The default sits at the ~1e-4 error
  /// the loosened early drop schedule already tolerates.
  double promote_threshold = 1e-4;

  /// Route fp32 tile products through the lane-vector SIMD kernels
  /// (default) or the scalar reference kernel -- the A/B switch for
  /// validating that vectorization changes throughput, not physics.  The
  /// fp64 kernels are a single code path, so this only affects mixed mode.
  bool simd = true;

  /// Scalar-granular truncation inside surviving tiles: after each
  /// product, entries with |v| <= sub_tile * (this iteration's drop
  /// threshold) are zeroed before the tile-level Frobenius test.  0 (the
  /// default) disables it, keeping the historical tile-granular behavior
  /// byte-for-byte.  Symmetric by construction in half storage (the
  /// mirror tile is the stored tile).
  double sub_tile = 0.0;

  /// Effective tile-drop threshold for (1-based) iteration `it`.
  [[nodiscard]] double drop_at(int it) const {
    const double loosening =
        schedule_loosening * std::pow(schedule_decay, it - 1);
    return drop_tolerance * std::max(1.0, loosening);
  }

  /// Precision mode from its config spelling ("fp64", "mixed"); throws
  /// tbmd::Error on unknown names.
  [[nodiscard]] static PrecisionMode precision_by_name(
      const std::string& name) {
    if (name == "fp64" || name == "f64" || name == "double") {
      return PrecisionMode::kF64;
    }
    if (name == "mixed" || name == "fp32" || name == "f32") {
      return PrecisionMode::kMixed;
    }
    throw Error("unknown precision mode: " + name);
  }

  /// Config spelling of the precision mode (round-trips through
  /// precision_by_name).
  [[nodiscard]] std::string precision_name() const {
    return precision == PrecisionMode::kMixed ? "mixed" : "fp64";
  }
};

}  // namespace tbmd
