#pragma once

/// \file element.hpp
/// \brief Chemical elements supported by the shipped models.

#include <string>
#include <string_view>

namespace tbmd {

/// Elements with parameterizations or masses in this library.  Values are
/// atomic numbers.
enum class Element : int {
  H = 1,
  B = 5,
  C = 6,
  N = 7,
  O = 8,
  Si = 14,
  Ge = 32,
  Ar = 18,
  Au = 79,
};

/// Atomic mass in amu (IUPAC conventional values).
[[nodiscard]] double atomic_mass_amu(Element e);

/// Atomic mass converted to program mass units (eV fs^2 / A^2).
[[nodiscard]] double atomic_mass_program(Element e);

/// Chemical symbol ("C", "Si", ...).
[[nodiscard]] std::string_view element_symbol(Element e);

/// Parse a chemical symbol (case-insensitive); throws tbmd::Error for
/// unknown symbols.
[[nodiscard]] Element element_from_symbol(std::string_view symbol);

/// Number of valence electrons in the tight-binding picture (sp-valent for
/// the light elements, spd-valent for the noble metals).
[[nodiscard]] int valence_electrons(Element e);

}  // namespace tbmd
