#include "src/core/system.hpp"

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace tbmd {

std::size_t System::add_atom(Element e, const Vec3& position,
                             const Vec3& velocity) {
  species_.push_back(e);
  positions_.push_back(position);
  velocities_.push_back(velocity);
  masses_.push_back(atomic_mass_program(e));
  frozen_.push_back(0);
  return species_.size() - 1;
}

void System::set_species(std::size_t i, Element e) {
  TBMD_REQUIRE(i < size(), "set_species: index out of range");
  species_[i] = e;
  masses_[i] = atomic_mass_program(e);
}

std::size_t System::mobile_count() const {
  std::size_t n = 0;
  for (const auto f : frozen_) n += (f == 0);
  return n;
}

double System::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (frozen_[i]) continue;
    ke += 0.5 * masses_[i] * norm2_sq(velocities_[i]);
  }
  return ke;
}

double System::temperature() const {
  const std::size_t nm = mobile_count();
  if (nm == 0) return 0.0;
  const double dof = 3.0 * static_cast<double>(nm);
  return 2.0 * kinetic_energy() / (dof * units::kBoltzmann);
}

void System::zero_momentum() {
  Vec3 p{};
  double mtot = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (frozen_[i]) continue;
    p += masses_[i] * velocities_[i];
    mtot += masses_[i];
  }
  if (mtot == 0.0) return;
  const Vec3 vcm = p / mtot;
  for (std::size_t i = 0; i < size(); ++i) {
    if (!frozen_[i]) velocities_[i] -= vcm;
  }
}

void System::wrap_positions() {
  for (Vec3& r : positions_) r = cell_.wrap(r);
}

int System::total_valence_electrons() const {
  int n = 0;
  for (const Element e : species_) n += valence_electrons(e);
  return n;
}

}  // namespace tbmd
