#include "src/core/element.hpp"

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"
#include "src/util/units.hpp"

namespace tbmd {

double atomic_mass_amu(Element e) {
  switch (e) {
    case Element::H:
      return 1.008;
    case Element::B:
      return 10.811;
    case Element::C:
      return 12.011;
    case Element::N:
      return 14.007;
    case Element::O:
      return 15.999;
    case Element::Si:
      return 28.0855;
    case Element::Ge:
      return 72.630;
    case Element::Ar:
      return 39.948;
    case Element::Au:
      return 196.966570;
  }
  throw Error("atomic_mass_amu: unsupported element");
}

double atomic_mass_program(Element e) {
  return units::amu_to_program_mass(atomic_mass_amu(e));
}

std::string_view element_symbol(Element e) {
  switch (e) {
    case Element::H:
      return "H";
    case Element::B:
      return "B";
    case Element::C:
      return "C";
    case Element::N:
      return "N";
    case Element::O:
      return "O";
    case Element::Si:
      return "Si";
    case Element::Ge:
      return "Ge";
    case Element::Ar:
      return "Ar";
    case Element::Au:
      return "Au";
  }
  throw Error("element_symbol: unsupported element");
}

Element element_from_symbol(std::string_view symbol) {
  const std::string s = to_lower(trim(symbol));
  if (s == "h") return Element::H;
  if (s == "b") return Element::B;
  if (s == "c") return Element::C;
  if (s == "n") return Element::N;
  if (s == "o") return Element::O;
  if (s == "si") return Element::Si;
  if (s == "ge") return Element::Ge;
  if (s == "ar") return Element::Ar;
  if (s == "au") return Element::Au;
  throw Error("element_from_symbol: unknown symbol '" + std::string(symbol) +
              "'");
}

int valence_electrons(Element e) {
  switch (e) {
    case Element::H:
      return 1;
    case Element::B:
      return 3;
    case Element::C:
      return 4;
    case Element::N:
      return 5;
    case Element::O:
      return 6;
    case Element::Si:
      return 4;
    case Element::Ge:
      return 4;
    case Element::Ar:
      return 8;
    case Element::Au:
      return 11;  // 5d^10 6s^1 in the spd-valent picture
  }
  throw Error("valence_electrons: unsupported element");
}

}  // namespace tbmd
