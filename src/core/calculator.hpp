#pragma once

/// \file calculator.hpp
/// \brief The energy/force model interface consumed by the MD engine, the
/// relaxers and the experiment harness.

#include <string>
#include <vector>

#include "src/core/system.hpp"
#include "src/util/timer.hpp"

namespace tbmd {

/// Result of a single energy/force evaluation.
struct ForceResult {
  /// Total potential energy (eV).
  double energy = 0.0;
  /// Force on each atom (eV/A).
  std::vector<Vec3> forces;
  /// Virial tensor W = sum over bonds of r_ij (x) f_ij (eV); the
  /// instantaneous pressure is (2 KE + tr W) / (3 V).  Zero for cluster
  /// systems where pressure is undefined.
  Mat3 virial{};

  // --- model-specific extras (zero / empty when not applicable) ---

  /// Attractive band-structure part of the energy (TB models).
  double band_energy = 0.0;
  /// Repulsive pair/embedded part of the energy (TB models).
  double repulsive_energy = 0.0;
  /// Single-particle eigenvalues, ascending (TB models with exact
  /// diagonalization; empty otherwise).
  std::vector<double> eigenvalues;
  /// Chemical potential used for the occupations (TB models).
  double fermi_level = 0.0;
};

/// Abstract potential-energy surface.
///
/// Implementations: TightBindingCalculator (exact diagonalization),
/// OrderNCalculator (density-matrix purification), TersoffCalculator and
/// LennardJonesCalculator (classical baselines).
class Calculator {
 public:
  virtual ~Calculator() = default;

  /// Evaluate energy and forces for the current positions of `system`.
  ///
  /// Implementations own their neighbor lists and reuse them across calls
  /// (Verlet-skin), so repeated calls during MD are cheap to set up.
  virtual ForceResult compute(const System& system) = 0;

  /// Human-readable model name for logs and benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Wall-clock breakdown by phase, accumulated across compute() calls.
  /// Phases used by the TB calculators: "neighbors", "bondtable",
  /// "hamiltonian", "diagonalize", "density", "forces", "repulsive".
  [[nodiscard]] PhaseTimers& phase_timers() { return timers_; }
  [[nodiscard]] const PhaseTimers& phase_timers() const { return timers_; }

 protected:
  PhaseTimers timers_;
};

}  // namespace tbmd
