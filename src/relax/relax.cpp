#include "src/relax/relax.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/error.hpp"

namespace tbmd::relax {

namespace {

double max_force_component(const System& system,
                           const std::vector<Vec3>& forces) {
  double m = 0.0;
  for (std::size_t i = 0; i < forces.size(); ++i) {
    if (system.frozen(i)) continue;
    m = std::max({m, std::fabs(forces[i].x), std::fabs(forces[i].y),
                  std::fabs(forces[i].z)});
  }
  return m;
}

}  // namespace

RelaxResult fire_relax(System& system, Calculator& calculator,
                       const RelaxOptions& options) {
  // Standard FIRE parameters (Bitzek et al., PRL 97, 170201 (2006)).
  constexpr double kAlphaStart = 0.1;
  constexpr double kFInc = 1.1;
  constexpr double kFDec = 0.5;
  constexpr double kFAlpha = 0.99;
  constexpr int kNMin = 5;
  const double dt_max = 10.0 * options.dt;

  RelaxResult out;
  const std::size_t n = system.size();
  std::vector<Vec3> vel(n, Vec3{});
  double dt = options.dt;
  double alpha = kAlphaStart;
  int steps_since_negative = 0;

  ForceResult fr = calculator.compute(system);
  ++out.force_calls;

  for (long it = 0; it < options.max_iterations; ++it) {
    out.iterations = it + 1;
    out.max_force = max_force_component(system, fr.forces);
    out.energy = fr.energy;
    if (out.max_force < options.force_tolerance) {
      out.converged = true;
      return out;
    }

    // P = F . v
    double power = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (system.frozen(i)) continue;
      power += dot(fr.forces[i], vel[i]);
    }

    if (power > 0.0) {
      // Mix velocity towards the force direction.
      double vnorm = 0.0, fnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (system.frozen(i)) continue;
        vnorm += norm2_sq(vel[i]);
        fnorm += norm2_sq(fr.forces[i]);
      }
      vnorm = std::sqrt(vnorm);
      fnorm = std::sqrt(std::max(fnorm, 1e-300));
      for (std::size_t i = 0; i < n; ++i) {
        if (system.frozen(i)) continue;
        vel[i] = (1.0 - alpha) * vel[i] + (alpha * vnorm / fnorm) * fr.forces[i];
      }
      if (++steps_since_negative > kNMin) {
        dt = std::min(dt * kFInc, dt_max);
        alpha *= kFAlpha;
      }
    } else {
      for (auto& v : vel) v = Vec3{};
      dt *= kFDec;
      alpha = kAlphaStart;
      steps_since_negative = 0;
    }

    // Semi-implicit Euler using unit mass (FIRE is mass-agnostic), with a
    // global displacement clamp so the accelerated-timestep phase cannot
    // throw atoms across bonds.
    double max_disp_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (system.frozen(i)) continue;
      vel[i] += dt * fr.forces[i];
      max_disp_sq = std::max(max_disp_sq, norm2_sq(dt * vel[i]));
    }
    double clamp = 1.0;
    if (max_disp_sq > options.max_step * options.max_step) {
      clamp = options.max_step / std::sqrt(max_disp_sq);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (system.frozen(i)) continue;
      system.positions()[i] += clamp * dt * vel[i];
    }
    fr = calculator.compute(system);
    ++out.force_calls;
  }

  out.max_force = max_force_component(system, fr.forces);
  out.energy = fr.energy;
  return out;
}

RelaxResult cg_relax(System& system, Calculator& calculator,
                     const RelaxOptions& options) {
  RelaxResult out;
  const std::size_t n = system.size();

  ForceResult fr = calculator.compute(system);
  ++out.force_calls;
  std::vector<Vec3> direction = fr.forces;  // initial steepest descent
  for (std::size_t i = 0; i < n; ++i) {
    if (system.frozen(i)) direction[i] = Vec3{};
  }
  std::vector<Vec3> prev_force = fr.forces;

  for (long it = 0; it < options.max_iterations; ++it) {
    out.iterations = it + 1;
    out.max_force = max_force_component(system, fr.forces);
    out.energy = fr.energy;
    if (out.max_force < options.force_tolerance) {
      out.converged = true;
      return out;
    }

    // Backtracking line search along `direction`.
    double dir_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) dir_norm += norm2_sq(direction[i]);
    dir_norm = std::sqrt(dir_norm);
    if (dir_norm < 1e-300) break;

    const double e0 = fr.energy;
    // Directional derivative dE/dstep = -F . d / |d|.
    double slope = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!system.frozen(i)) slope -= dot(fr.forces[i], direction[i]);
    }
    slope /= dir_norm;
    if (slope >= 0.0) {
      // Not a descent direction (stale conjugacy): restart with steepest.
      direction = fr.forces;
      for (std::size_t i = 0; i < n; ++i) {
        if (system.frozen(i)) direction[i] = Vec3{};
      }
      continue;
    }

    double step = options.dt;  // A along the normalized direction
    const std::vector<Vec3> saved = system.positions();
    bool accepted = false;
    for (int bt = 0; bt < 20; ++bt) {
      for (std::size_t i = 0; i < n; ++i) {
        if (system.frozen(i)) continue;
        system.positions()[i] =
            saved[i] + (step / dir_norm) * direction[i];
      }
      const ForceResult trial = calculator.compute(system);
      ++out.force_calls;
      // Armijo condition with c1 = 1e-4.
      if (trial.energy <= e0 + 1e-4 * step * slope) {
        prev_force = fr.forces;
        fr = trial;
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) {
      system.positions() = saved;
      fr = calculator.compute(system);
      ++out.force_calls;
      break;  // line search failed; give up (result reports !converged)
    }

    // Polak-Ribiere beta with automatic reset when negative.
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (system.frozen(i)) continue;
      num += dot(fr.forces[i], fr.forces[i] - prev_force[i]);
      den += dot(prev_force[i], prev_force[i]);
    }
    const double beta = (den > 1e-300) ? std::max(0.0, num / den) : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (system.frozen(i)) {
        direction[i] = Vec3{};
      } else {
        direction[i] = fr.forces[i] + beta * direction[i];
      }
    }
  }

  out.max_force = max_force_component(system, fr.forces);
  out.energy = fr.energy;
  return out;
}

}  // namespace tbmd::relax
