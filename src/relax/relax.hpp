#pragma once

/// \file relax.hpp
/// \brief Structural relaxation: FIRE and Polak-Ribiere conjugate gradients.
///
/// These implement the "structural relaxation calculations" leg of a TBMD
/// study: quenching a configuration to the nearest local minimum of the
/// potential-energy surface.  Frozen atoms are held fixed.

#include <string>

#include "src/core/calculator.hpp"
#include "src/core/system.hpp"

namespace tbmd::relax {

/// Common termination criteria.
struct RelaxOptions {
  double force_tolerance = 1e-3;  ///< max |F| component target (eV/A)
  long max_iterations = 2000;
  /// FIRE initial timestep (fs); also used as the CG initial trial step
  /// scale (A per unit force).
  double dt = 0.5;
  /// Largest displacement any atom may make in one FIRE step (A).  Keeps
  /// the accelerating-timestep phase from catapulting atoms across bonds.
  double max_step = 0.15;
};

/// Relaxation outcome.
struct RelaxResult {
  double energy = 0.0;       ///< final potential energy (eV)
  double max_force = 0.0;    ///< final max force component (eV/A)
  long iterations = 0;       ///< iterations consumed
  long force_calls = 0;      ///< calculator invocations
  bool converged = false;
};

/// FIRE (fast inertial relaxation engine) minimization.  Robust on rough
/// landscapes; the default choice.
[[nodiscard]] RelaxResult fire_relax(System& system, Calculator& calculator,
                                     const RelaxOptions& options = {});

/// Polak-Ribiere conjugate gradients with backtracking line search.
/// Matches the CG relaxations of the paper's method section.
[[nodiscard]] RelaxResult cg_relax(System& system, Calculator& calculator,
                                   const RelaxOptions& options = {});

}  // namespace tbmd::relax
