#include "src/io/config.hpp"

#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::io {

Config Config::parse_string(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view stripped = trim(line);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    TBMD_REQUIRE(eq != std::string::npos,
                 "config line " + std::to_string(line_no) + ": missing '='");
    const std::string key = to_lower(trim(stripped.substr(0, eq)));
    const std::string value{trim(stripped.substr(eq + 1))};
    TBMD_REQUIRE(!key.empty(),
                 "config line " + std::to_string(line_no) + ": empty key");
    TBMD_REQUIRE(!cfg.values_.count(key), "config line " +
                                              std::to_string(line_no) +
                                              ": duplicate key '" + key + "'");
    cfg.values_[key] = value;
    cfg.order_.push_back(key);
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream f(path);
  TBMD_REQUIRE(f.good(), "config: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse_string(buffer.str());
}

bool Config::has(const std::string& key) const {
  return values_.count(to_lower(key)) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(to_lower(key));
  return it == values_.end() ? fallback : it->second;
}

std::string Config::require_string(const std::string& key) const {
  const auto it = values_.find(to_lower(key));
  TBMD_REQUIRE(it != values_.end(),
               "config: required key '" + key + "' is missing");
  return it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return fallback;
  return parse_double(it->second, "config key '" + key + "'");
}

long Config::get_long(const std::string& key, long fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return fallback;
  return parse_long(it->second, "config key '" + key + "'");
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return fallback;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw Error("config: key '" + key + "' is not a boolean: '" + it->second +
              "'");
}

std::vector<long> Config::get_longs(const std::string& key,
                                    std::vector<long> fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return fallback;
  std::vector<long> out;
  for (const std::string& tok : split_whitespace(it->second)) {
    out.push_back(parse_long(tok, "config key '" + key + "'"));
  }
  return out;
}

std::vector<double> Config::get_doubles(const std::string& key,
                                        std::vector<double> fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  for (const std::string& tok : split_whitespace(it->second)) {
    out.push_back(parse_double(tok, "config key '" + key + "'"));
  }
  return out;
}

}  // namespace tbmd::io
