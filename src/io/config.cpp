#include "src/io/config.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::io {

namespace {

/// Numeric config values must be finite: a literal "nan"/"inf" (which
/// parse_double happily accepts) would otherwise poison a simulation
/// silently -- every NaN comparison is false, so range checks downstream
/// cannot catch it.
double require_finite(double v, const std::string& raw,
                      const std::string& context) {
  if (!std::isfinite(v)) {
    throw Error(context + " must be finite, got '" + raw + "'");
  }
  return v;
}

}  // namespace

Config Config::parse_string(const std::string& text,
                            const std::string& source) {
  Config cfg;
  cfg.source_ = source;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string at = source + ":" + std::to_string(line_no);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view stripped = trim(line);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    TBMD_REQUIRE(eq != std::string::npos, at + ": missing '='");
    const std::string key = to_lower(trim(stripped.substr(0, eq)));
    const std::string value{trim(stripped.substr(eq + 1))};
    TBMD_REQUIRE(!key.empty(), at + ": empty key");
    TBMD_REQUIRE(!cfg.values_.count(key),
                 at + ": duplicate key '" + key + "' (first defined on line " +
                     std::to_string(cfg.values_[key].line) + ")");
    cfg.values_[key] = Entry{value, line_no, false};
    cfg.order_.push_back(key);
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream f(path);
  TBMD_REQUIRE(f.good(), "config: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse_string(buffer.str(), path);
}

const Config::Entry* Config::find(const std::string& key) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return nullptr;
  it->second.used = true;
  return &it->second;
}

const Config::Entry& Config::require(const std::string& key) const {
  const Entry* e = find(key);
  TBMD_REQUIRE(e != nullptr, source_ + ": required key '" + to_lower(key) +
                                 "' is missing");
  return *e;
}

std::string Config::context(const std::string& key, const Entry& entry) const {
  return source_ + ":" + std::to_string(entry.line) + ": key '" +
         to_lower(key) + "'";
}

bool Config::has(const std::string& key) const { return find(key) != nullptr; }

int Config::line(const std::string& key) const {
  const auto it = values_.find(to_lower(key));
  return it == values_.end() ? 0 : it->second.line;
}

std::string Config::where(const std::string& key) const {
  const int l = line(key);
  return l == 0 ? source_ : source_ + ":" + std::to_string(l);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const Entry* e = find(key);
  return e == nullptr ? fallback : e->value;
}

std::string Config::require_string(const std::string& key) const {
  return require(key).value;
}

double Config::get_double(const std::string& key, double fallback) const {
  const Entry* e = find(key);
  if (e == nullptr) return fallback;
  return require_finite(parse_double(e->value, context(key, *e)), e->value,
                        context(key, *e));
}

double Config::require_double(const std::string& key) const {
  const Entry& e = require(key);
  return require_finite(parse_double(e.value, context(key, e)), e.value,
                        context(key, e));
}

long Config::get_long(const std::string& key, long fallback) const {
  const Entry* e = find(key);
  if (e == nullptr) return fallback;
  return parse_long(e->value, context(key, *e));
}

long Config::require_long(const std::string& key) const {
  const Entry& e = require(key);
  return parse_long(e.value, context(key, e));
}

namespace {

bool parse_bool(const std::string& raw, const std::string& context) {
  const std::string v = to_lower(raw);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw Error(context + " is not a boolean: '" + raw + "'");
}

}  // namespace

bool Config::get_bool(const std::string& key, bool fallback) const {
  const Entry* e = find(key);
  if (e == nullptr) return fallback;
  return parse_bool(e->value, context(key, *e));
}

bool Config::require_bool(const std::string& key) const {
  const Entry& e = require(key);
  return parse_bool(e.value, context(key, e));
}

std::vector<long> Config::get_longs(const std::string& key,
                                    std::vector<long> fallback) const {
  const Entry* e = find(key);
  if (e == nullptr) return fallback;
  std::vector<long> out;
  for (const std::string& tok : split_whitespace(e->value)) {
    out.push_back(parse_long(tok, context(key, *e)));
  }
  return out;
}

std::vector<long> Config::require_longs(const std::string& key,
                                        std::size_t count) const {
  const Entry& e = require(key);
  const std::vector<long> out = get_longs(key, {});
  TBMD_REQUIRE(out.size() == count,
               context(key, e) + " needs " + std::to_string(count) +
                   " integers, got " + std::to_string(out.size()));
  return out;
}

std::vector<double> Config::get_doubles(const std::string& key,
                                        std::vector<double> fallback) const {
  const Entry* e = find(key);
  if (e == nullptr) return fallback;
  std::vector<double> out;
  for (const std::string& tok : split_whitespace(e->value)) {
    out.push_back(require_finite(parse_double(tok, context(key, *e)), tok,
                                 context(key, *e)));
  }
  return out;
}

std::vector<double> Config::require_doubles(const std::string& key,
                                            std::size_t count) const {
  const Entry& e = require(key);
  const std::vector<double> out = get_doubles(key, {});
  TBMD_REQUIRE(out.size() == count,
               context(key, e) + " needs " + std::to_string(count) +
                   " numbers, got " + std::to_string(out.size()));
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const std::string& key : order_) {
    if (!values_.at(key).used) out.push_back(key);
  }
  return out;
}

void Config::require_all_used(const std::string& consumer) const {
  const std::vector<std::string> unused = unused_keys();
  if (unused.empty()) return;
  std::string msg = consumer + ": unknown key";
  if (unused.size() > 1) msg += "s";
  for (const std::string& key : unused) {
    msg += " '" + key + "' (" + where(key) + ")";
  }
  throw Error(msg);
}

}  // namespace tbmd::io
