#include "src/io/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/error.hpp"

namespace tbmd::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TBMD_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TBMD_REQUIRE(cells.size() == headers_.size(),
               "Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  TBMD_REQUIRE(f.good(), "Table: cannot open '" + path + "'");
  auto csv_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ',';
      f << cells[c];
    }
    f << '\n';
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

}  // namespace tbmd::io
