#include "src/io/binary_trajectory.hpp"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/io/logger.hpp"
#include "src/io/xyz.hpp"
#include "src/util/crc32.hpp"
#include "src/util/error.hpp"

namespace tbmd::io {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'T', 'J'};
constexpr std::uint32_t kVersion = 2;
/// Sanity cap on the frame payload length field: a corrupt length must not
/// drive a multi-GB allocation before the CRC check can reject the frame.
constexpr std::uint32_t kMaxFramePayload = 1u << 30;
constexpr std::uint32_t kFlagVelocities = 1u << 0;
constexpr std::uint32_t kFlagLossless = 1u << 1;
constexpr std::uint8_t kFrameMarker = 0xF5;

// --- little-endian scalar packing ------------------------------------------

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &value, sizeof(T));
}

/// Zigzag map: small signed deltas -> small unsigned varints.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf.push_back(static_cast<std::uint8_t>(v));
}

std::int64_t quantize(double x, double quantum) {
  return std::llround(x / quantum);
}

/// Byte cursor over either a stream (header scans) or an in-memory buffer
/// (frame payloads, which are slurped and CRC-verified before decoding).
class ByteSource {
 public:
  explicit ByteSource(std::istream& is) : is_(&is) {}
  ByteSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool read_exact(void* out, std::size_t n) {
    if (is_ == nullptr) {
      if (pos_ + n > size_) return false;
      std::memcpy(out, data_ + pos_, n);
      pos_ += n;
      return true;
    }
    is_->read(static_cast<char*>(out), static_cast<std::streamsize>(n));
    return is_->gcount() == static_cast<std::streamsize>(n);
  }

  template <typename T>
  T get() {
    T value;
    TBMD_REQUIRE(read_exact(&value, sizeof(T)),
                 "binary trajectory: truncated file");
    return value;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = get<std::uint8_t>();
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      TBMD_REQUIRE(shift < 64, "binary trajectory: varint overflow");
    }
  }

 private:
  std::istream* is_ = nullptr;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

/// One v2 frame as raw bytes: step + declared payload, CRC already
/// verified.  `ok` is false at clean EOF; corruption throws.
struct RawFrame {
  bool ok = false;
  std::int64_t step = 0;
  std::vector<std::uint8_t> payload;
};

/// Read and CRC-check the next frame envelope from `is`.  Returns
/// ok=false on clean end-of-file (no marker byte); any partial or
/// corrupt frame throws tbmd::Error.
RawFrame read_raw_frame(std::istream& is) {
  RawFrame f;
  ByteSource src(is);
  std::uint8_t marker;
  if (!src.read_exact(&marker, 1)) return f;  // clean EOF
  TBMD_REQUIRE(marker == kFrameMarker,
               "binary trajectory: corrupt frame marker");
  // step + payload_len, kept as raw bytes so the CRC chain covers them.
  std::uint8_t head[12];
  TBMD_REQUIRE(src.read_exact(head, sizeof(head)),
               "binary trajectory: truncated frame header");
  std::uint32_t payload_len;
  std::memcpy(&f.step, head, 8);
  std::memcpy(&payload_len, head + 8, 4);
  TBMD_REQUIRE(payload_len < kMaxFramePayload,
               "binary trajectory: implausible frame length");
  f.payload.resize(payload_len);
  TBMD_REQUIRE(payload_len == 0 || src.read_exact(f.payload.data(), payload_len),
               "binary trajectory: truncated frame payload");
  const auto stored_crc = src.get<std::uint32_t>();
  std::uint32_t crc = crc32_update(0, head, sizeof(head));
  crc = crc32_update(crc, f.payload.data(), f.payload.size());
  TBMD_REQUIRE(crc == stored_crc, "binary trajectory: frame CRC mismatch");
  f.ok = true;
  return f;
}

struct Header {
  std::uint32_t flags = 0;
  std::uint32_t natoms = 0;
  double pos_quantum = 0.0;
  double vel_quantum = 0.0;
  Cell cell;
  std::vector<Element> species;

  [[nodiscard]] bool velocities() const {
    return (flags & kFlagVelocities) != 0;
  }
  [[nodiscard]] bool lossless() const { return (flags & kFlagLossless) != 0; }
};

void write_header(std::ostream& os, const System& system,
                  const BinaryTrajectoryOptions& options) {
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kMagic, kMagic + 4);
  put<std::uint32_t>(buf, kVersion);
  std::uint32_t flags = 0;
  if (options.velocities) flags |= kFlagVelocities;
  if (options.lossless) flags |= kFlagLossless;
  put<std::uint32_t>(buf, flags);
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(system.size()));
  put<double>(buf, options.lossless ? 0.0 : options.position_quantum);
  put<double>(buf, options.lossless ? 0.0 : options.velocity_quantum);
  const Mat3& h = system.cell().h();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) put<double>(buf, h(i, j));
  }
  for (int axis = 0; axis < 3; ++axis) {
    put<std::uint8_t>(buf, system.cell().periodic(axis) ? 1 : 0);
  }
  put<std::uint8_t>(buf, 0);  // pad
  for (const Element e : system.species()) {
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(static_cast<int>(e)));
  }
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
}

Header read_header(ByteSource& src) {
  char magic[4];
  TBMD_REQUIRE(src.read_exact(magic, 4) && std::memcmp(magic, kMagic, 4) == 0,
               "binary trajectory: bad magic (not a .tbt file)");
  const auto version = src.get<std::uint32_t>();
  TBMD_REQUIRE(version == kVersion,
               "binary trajectory: unsupported version " +
                   std::to_string(version));
  Header hd;
  hd.flags = src.get<std::uint32_t>();
  hd.natoms = src.get<std::uint32_t>();
  hd.pos_quantum = src.get<double>();
  hd.vel_quantum = src.get<double>();
  double h[9];
  for (double& v : h) v = src.get<double>();
  bool pbc[3];
  for (bool& p : pbc) p = src.get<std::uint8_t>() != 0;
  (void)src.get<std::uint8_t>();  // pad
  if (pbc[0] || pbc[1] || pbc[2]) {
    hd.cell = Cell({h[0], h[1], h[2]}, {h[3], h[4], h[5]}, {h[6], h[7], h[8]},
                   pbc[0], pbc[1], pbc[2]);
  }
  hd.species.reserve(hd.natoms);
  for (std::uint32_t i = 0; i < hd.natoms; ++i) {
    hd.species.push_back(static_cast<Element>(src.get<std::uint8_t>()));
  }
  return hd;
}

/// Append one coordinate block (positions or velocities) to `buf`.
void encode_block(std::vector<std::uint8_t>& buf, const std::vector<Vec3>& xs,
                  bool lossless, double quantum,
                  std::vector<std::int64_t>& prev, std::size_t prev_base) {
  if (lossless) {
    for (const Vec3& x : xs) {
      put<double>(buf, x.x);
      put<double>(buf, x.y);
      put<double>(buf, x.z);
    }
    return;
  }
  std::size_t k = prev_base;
  for (const Vec3& x : xs) {
    for (const double c : {x.x, x.y, x.z}) {
      const std::int64_t q = quantize(c, quantum);
      put_varint(buf, zigzag(q - prev[k]));
      prev[k] = q;
      ++k;
    }
  }
}

void decode_block(ByteSource& src, std::vector<Vec3>& out, std::size_t n,
                  bool lossless, double quantum,
                  std::vector<std::int64_t>& prev, std::size_t prev_base) {
  out.resize(n);
  if (lossless) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = {src.get<double>(), src.get<double>(), src.get<double>()};
    }
    return;
  }
  std::size_t k = prev_base;
  for (std::size_t i = 0; i < n; ++i) {
    double c[3];
    for (int d = 0; d < 3; ++d) {
      prev[k] += unzigzag(src.get_varint());
      c[d] = static_cast<double>(prev[k]) * quantum;
      ++k;
    }
    out[i] = {c[0], c[1], c[2]};
  }
}

}  // namespace

// --- writer -----------------------------------------------------------------

struct BinaryTrajectoryWriter::Impl {
  std::ofstream stream;
  BinaryTrajectoryOptions options;
  std::size_t natoms = 0;
  std::size_t frames = 0;
  /// Quantized coordinates of the previous frame (positions, then
  /// velocities when enabled) -- the delta predictor.
  std::vector<std::int64_t> prev;
  std::vector<std::uint8_t> buf;
  /// Frame payload staging (coordinates only; the envelope -- marker,
  /// step, length, CRC -- is assembled around it in `buf`).
  std::vector<std::uint8_t> payload;
};

BinaryTrajectoryWriter::BinaryTrajectoryWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

BinaryTrajectoryWriter::BinaryTrajectoryWriter(
    const std::string& path, const System& system,
    BinaryTrajectoryOptions options)
    : impl_(std::make_unique<Impl>()) {
  TBMD_REQUIRE(!options.lossless ? options.position_quantum > 0.0 &&
                                       options.velocity_quantum > 0.0
                                 : true,
               "BinaryTrajectoryWriter: quanta must be positive");
  impl_->stream.open(path, std::ios::binary | std::ios::trunc);
  TBMD_REQUIRE(impl_->stream.good(),
               "BinaryTrajectoryWriter: cannot open '" + path + "'");
  impl_->options = options;
  impl_->natoms = system.size();
  impl_->prev.assign(3 * system.size() * (options.velocities ? 2 : 1), 0);
  write_header(impl_->stream, system, options);
}

BinaryTrajectoryWriter BinaryTrajectoryWriter::resume(
    const std::string& path, const System& system, long upto_step,
    BinaryTrajectoryOptions options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->natoms = system.size();
  impl->prev.assign(3 * system.size() * (options.velocities ? 2 : 1), 0);

  // Scan the existing file: validate the header against the requested
  // options, keep every frame with step <= upto_step while re-seeding the
  // delta predictor, and remember the byte offset of the first dropped
  // frame.
  std::uintmax_t keep_bytes = 0;
  std::size_t keep_frames = 0;
  {
    std::ifstream in(path, std::ios::binary);
    TBMD_REQUIRE(in.good(),
                 "BinaryTrajectoryWriter::resume: cannot open '" + path + "'");
    ByteSource src(in);
    const Header hd = read_header(src);
    TBMD_REQUIRE(hd.natoms == system.size(),
                 "BinaryTrajectoryWriter::resume: atom count mismatch");
    TBMD_REQUIRE(hd.velocities() == options.velocities &&
                     hd.lossless() == options.lossless,
                 "BinaryTrajectoryWriter::resume: encoding mismatch");
    if (!options.lossless) {
      TBMD_REQUIRE(hd.pos_quantum == options.position_quantum &&
                       hd.vel_quantum == options.velocity_quantum,
                   "BinaryTrajectoryWriter::resume: quantum mismatch");
    }
    keep_bytes = static_cast<std::uintmax_t>(in.tellg());
    std::vector<Vec3> scratch;
    std::vector<std::int64_t> prev_good;
    for (;;) {
      // Tolerant scan: a torn/corrupt tail (truncated frame, bad marker,
      // CRC mismatch, garbled payload) ends the scan at the last good
      // frame instead of aborting the resume -- that tail was written
      // after the checkpoint being resumed from and is dead weight anyway.
      prev_good = impl->prev;
      RawFrame f;
      try {
        f = read_raw_frame(in);
        if (!f.ok) break;  // clean end of file
        if (f.step > upto_step) break;
        ByteSource payload(f.payload.data(), f.payload.size());
        decode_block(payload, scratch, hd.natoms, hd.lossless(),
                     hd.pos_quantum, impl->prev, 0);
        if (hd.velocities()) {
          decode_block(payload, scratch, hd.natoms, hd.lossless(),
                       hd.vel_quantum, impl->prev, 3 * hd.natoms);
        }
      } catch (const Error& e) {
        impl->prev = prev_good;
        log_warn("BinaryTrajectoryWriter::resume: dropping corrupt tail of '",
                 path, "' after ", keep_frames, " frame(s): ", e.what());
        break;
      }
      keep_bytes = static_cast<std::uintmax_t>(in.tellg());
      ++keep_frames;
    }
  }
  std::filesystem::resize_file(path, keep_bytes);
  impl->stream.open(path, std::ios::binary | std::ios::app);
  TBMD_REQUIRE(impl->stream.good(),
               "BinaryTrajectoryWriter::resume: cannot reopen '" + path + "'");
  impl->frames = keep_frames;
  return BinaryTrajectoryWriter(std::move(impl));
}

BinaryTrajectoryWriter::~BinaryTrajectoryWriter() = default;
BinaryTrajectoryWriter::BinaryTrajectoryWriter(
    BinaryTrajectoryWriter&&) noexcept = default;
BinaryTrajectoryWriter& BinaryTrajectoryWriter::operator=(
    BinaryTrajectoryWriter&&) noexcept = default;

void BinaryTrajectoryWriter::add_frame(const System& system, long step) {
  Impl& im = *impl_;
  TBMD_REQUIRE(system.size() == im.natoms,
               "BinaryTrajectoryWriter: atom count changed mid-trajectory");
  im.payload.clear();
  encode_block(im.payload, system.positions(), im.options.lossless,
               im.options.position_quantum, im.prev, 0);
  if (im.options.velocities) {
    encode_block(im.payload, system.velocities(), im.options.lossless,
                 im.options.velocity_quantum, im.prev, 3 * im.natoms);
  }
  im.buf.clear();
  put<std::uint8_t>(im.buf, kFrameMarker);
  put<std::int64_t>(im.buf, static_cast<std::int64_t>(step));
  put<std::uint32_t>(im.buf, static_cast<std::uint32_t>(im.payload.size()));
  im.buf.insert(im.buf.end(), im.payload.begin(), im.payload.end());
  // CRC over everything after the marker (step, length, payload).
  const std::uint32_t crc = crc32(im.buf.data() + 1, im.buf.size() - 1);
  put<std::uint32_t>(im.buf, crc);
  im.stream.write(reinterpret_cast<const char*>(im.buf.data()),
                  static_cast<std::streamsize>(im.buf.size()));
  TBMD_REQUIRE(im.stream.good(), "BinaryTrajectoryWriter: write failed");
  ++im.frames;
}

std::size_t BinaryTrajectoryWriter::frames_written() const {
  return impl_->frames;
}

void BinaryTrajectoryWriter::flush() { impl_->stream.flush(); }

// --- reader -----------------------------------------------------------------

struct BinaryTrajectoryReader::Impl {
  std::ifstream stream;
  Header header;
  std::vector<std::int64_t> prev;
};

BinaryTrajectoryReader::BinaryTrajectoryReader(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->stream.open(path, std::ios::binary);
  TBMD_REQUIRE(impl_->stream.good(),
               "BinaryTrajectoryReader: cannot open '" + path + "'");
  ByteSource src(impl_->stream);
  impl_->header = read_header(src);
  impl_->prev.assign(
      3 * impl_->header.natoms * (impl_->header.velocities() ? 2 : 1), 0);
}

BinaryTrajectoryReader::~BinaryTrajectoryReader() = default;
BinaryTrajectoryReader::BinaryTrajectoryReader(
    BinaryTrajectoryReader&&) noexcept = default;
BinaryTrajectoryReader& BinaryTrajectoryReader::operator=(
    BinaryTrajectoryReader&&) noexcept = default;

std::size_t BinaryTrajectoryReader::natoms() const {
  return impl_->header.natoms;
}
const std::vector<Element>& BinaryTrajectoryReader::species() const {
  return impl_->header.species;
}
const Cell& BinaryTrajectoryReader::cell() const { return impl_->header.cell; }
bool BinaryTrajectoryReader::has_velocities() const {
  return impl_->header.velocities();
}
bool BinaryTrajectoryReader::lossless() const {
  return impl_->header.lossless();
}
double BinaryTrajectoryReader::position_quantum() const {
  return impl_->header.pos_quantum;
}

bool BinaryTrajectoryReader::next(TrajectoryFrame& frame) {
  Impl& im = *impl_;
  const RawFrame f = read_raw_frame(im.stream);
  if (!f.ok) return false;
  frame.step = static_cast<long>(f.step);
  ByteSource src(f.payload.data(), f.payload.size());
  decode_block(src, frame.positions, im.header.natoms, im.header.lossless(),
               im.header.pos_quantum, im.prev, 0);
  if (im.header.velocities()) {
    decode_block(src, frame.velocities, im.header.natoms,
                 im.header.lossless(), im.header.vel_quantum, im.prev,
                 3 * im.header.natoms);
  } else {
    frame.velocities.clear();
  }
  return true;
}

System BinaryTrajectoryReader::make_system(
    const TrajectoryFrame& frame) const {
  const Header& hd = impl_->header;
  TBMD_REQUIRE(frame.positions.size() == hd.natoms,
               "BinaryTrajectoryReader: frame/header atom count mismatch");
  System sys(hd.cell);
  for (std::size_t i = 0; i < hd.natoms; ++i) {
    sys.add_atom(hd.species[i], frame.positions[i],
                 frame.velocities.empty() ? Vec3{} : frame.velocities[i]);
  }
  return sys;
}

std::size_t trajectory_to_xyz(const std::string& trajectory_path,
                              const std::string& xyz_path) {
  BinaryTrajectoryReader reader(trajectory_path);
  std::ofstream out(xyz_path);
  TBMD_REQUIRE(out.good(),
               "trajectory_to_xyz: cannot open '" + xyz_path + "'");
  TrajectoryFrame frame;
  std::size_t frames = 0;
  while (reader.next(frame)) {
    const System sys = reader.make_system(frame);
    write_xyz(out, sys, "step=" + std::to_string(frame.step),
              reader.has_velocities());
    ++frames;
  }
  TBMD_REQUIRE(out.good(), "trajectory_to_xyz: write failed");
  return frames;
}

}  // namespace tbmd::io
