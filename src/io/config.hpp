#pragma once

/// \file config.hpp
/// \brief Keyword configuration files for the simulation and job runners.
///
/// Format: one `key = value` pair per line; `#` starts a comment; keys are
/// case-insensitive; values keep their spelling.  Lists are whitespace
/// separated ("cells = 2 2 2").
///
/// Every entry remembers the file and line it came from, so typed accessors
/// raise errors of the form "job.cfg:7: config key 'steps' ...".  The
/// parser also tracks which keys have been read: after consuming a config,
/// callers can ask for unused_keys() and warn about (or reject) entries the
/// consumer never looked at -- a misspelled key in a job spec fails loudly
/// instead of silently falling back to a default.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tbmd::io {

/// Parsed key-value configuration.
class Config {
 public:
  /// Parse from text; throws tbmd::Error carrying `source` and the line
  /// number on syntax errors (missing '=', empty key, duplicate key).
  [[nodiscard]] static Config parse_string(const std::string& text,
                                           const std::string& source =
                                               "<config>");

  /// Parse a file (the path becomes the error-message source); throws
  /// tbmd::Error if unreadable.
  [[nodiscard]] static Config parse_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults.  The *required* variants throw with the
  /// key name and source location when absent (or, for the fixed-size list
  /// forms, when the count does not match).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::string require_string(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] double require_double(const std::string& key) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  [[nodiscard]] long require_long(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] bool require_bool(const std::string& key) const;
  [[nodiscard]] std::vector<long> get_longs(const std::string& key,
                                            std::vector<long> fallback) const;
  [[nodiscard]] std::vector<long> require_longs(const std::string& key,
                                                std::size_t count) const;
  [[nodiscard]] std::vector<double> get_doubles(
      const std::string& key, std::vector<double> fallback) const;
  [[nodiscard]] std::vector<double> require_doubles(const std::string& key,
                                                    std::size_t count) const;

  /// All keys (normalized to lower case, insertion order).
  [[nodiscard]] const std::vector<std::string>& keys() const { return order_; }

  /// File (or synthetic source name) this config was parsed from.
  [[nodiscard]] const std::string& source() const { return source_; }

  /// 1-based source line of `key`; 0 when the key does not exist.
  [[nodiscard]] int line(const std::string& key) const;

  /// "source:line" prefix for error/warning messages about `key`.
  [[nodiscard]] std::string where(const std::string& key) const;

  /// Keys that no accessor (has/get/require) has looked at yet, in
  /// insertion order.  Consumers call this after reading everything they
  /// understand; a non-empty result means the file contains entries nobody
  /// interpreted -- usually a typo.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  /// Throw a tbmd::Error listing every unused key with its source line.
  /// `consumer` names the reader in the message ("job spec", ...).
  void require_all_used(const std::string& consumer) const;

 private:
  struct Entry {
    std::string value;
    int line = 0;
    mutable bool used = false;
  };

  [[nodiscard]] const Entry* find(const std::string& key) const;
  [[nodiscard]] const Entry& require(const std::string& key) const;
  [[nodiscard]] std::string context(const std::string& key,
                                    const Entry& entry) const;

  std::string source_ = "<config>";
  std::map<std::string, Entry> values_;
  std::vector<std::string> order_;
};

}  // namespace tbmd::io
