#pragma once

/// \file config.hpp
/// \brief Keyword configuration files for the simulation runner.
///
/// Format: one `key = value` pair per line; `#` starts a comment; keys are
/// case-insensitive; values keep their spelling.  Lists are whitespace
/// separated ("cells = 2 2 2").

#include <map>
#include <string>
#include <vector>

namespace tbmd::io {

/// Parsed key-value configuration.
class Config {
 public:
  /// Parse from text; throws tbmd::Error with the line number on syntax
  /// errors (missing '=', empty key, duplicate key).
  [[nodiscard]] static Config parse_string(const std::string& text);

  /// Parse a file; throws tbmd::Error if unreadable.
  [[nodiscard]] static Config parse_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults.  The *required* variants throw with the
  /// key name when absent.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::string require_string(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::vector<long> get_longs(const std::string& key,
                                            std::vector<long> fallback) const;
  [[nodiscard]] std::vector<double> get_doubles(
      const std::string& key, std::vector<double> fallback) const;

  /// All keys (normalized to lower case, insertion order).
  [[nodiscard]] const std::vector<std::string>& keys() const { return order_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace tbmd::io
