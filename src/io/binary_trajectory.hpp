#pragma once

/// \file binary_trajectory.hpp
/// \brief Compact binary trajectory format (.tbt) for MD output at scale.
///
/// Text XYZ costs ~52 bytes per atom per frame and a double-to-decimal
/// conversion per coordinate; at sweep scale trajectory I/O starts to rival
/// the force call.  The .tbt format stores the per-run constants (cell,
/// species) once in the header and encodes each frame's coordinates as
/// zigzag-varint *deltas* of quantized positions against the previous
/// frame: thermal displacements between samples are small, so most deltas
/// fit in 2 bytes and a 216-atom frame shrinks from ~11 KB of text to
/// ~1.5 KB.  A lossless mode (raw IEEE doubles, no quantization) exists
/// for workflows that need exact coordinates; checkpoints -- which must be
/// bit-exact -- always use their own full-precision format, so the
/// trajectory default favors compactness (1e-4 A grid, far below thermal
/// noise and ample for RDF/MSD/VACF analysis).
///
/// Layout (all little-endian):
///   header:  magic "TBTJ" | u32 version | u32 flags | u32 natoms
///            | f64 pos_quantum | f64 vel_quantum
///            | 9 x f64 cell rows | 3 x u8 pbc | u8 pad
///            | natoms x u8 species (atomic numbers)
///   frame:   u8 0xF5 | i64 step | u32 payload_len
///            | payload | u32 crc32(step..payload)
///   payload: positions  (3N zigzag-varint deltas, or 3N f64 lossless)
///            | velocities (same encoding; only when flags bit 0 is set)
/// Flags: bit 0 = frames carry velocities, bit 1 = lossless f64 coords.
///
/// Since v2 every frame is framed by an explicit length and a CRC-32 over
/// step + length + payload: Reader::next() rejects torn or bit-flipped
/// frames (throws), while Writer::resume() treats a corrupt tail as the
/// debris of the crash being recovered from -- it truncates the file at
/// the last intact frame and appends from there.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/system.hpp"

namespace tbmd::io {

/// Encoding options of a BinaryTrajectoryWriter.
struct BinaryTrajectoryOptions {
  /// Store velocities in every frame (doubles the frame payload).
  bool velocities = false;
  /// Raw f64 coordinates instead of quantized deltas (lossless, ~4x
  /// larger).
  bool lossless = false;
  /// Position grid of the quantized encoding (A).
  double position_quantum = 1e-4;
  /// Velocity grid of the quantized encoding (A/fs).
  double velocity_quantum = 1e-7;
};

/// One decoded trajectory frame.
struct TrajectoryFrame {
  long step = 0;
  std::vector<Vec3> positions;
  /// Empty unless the file stores velocities.
  std::vector<Vec3> velocities;
};

/// Streaming writer; the System passed to the constructor fixes the
/// header's atom count, species and cell for the whole file.
class BinaryTrajectoryWriter {
 public:
  /// Create (truncate) `path` and write the header.
  BinaryTrajectoryWriter(const std::string& path, const System& system,
                         BinaryTrajectoryOptions options = {});

  /// Reopen an existing trajectory for appending after a checkpoint
  /// restart: frames with step <= `upto_step` are kept (later ones --
  /// written after the checkpoint the run is resuming from -- are
  /// truncated away) and the delta predictor is re-seeded from the kept
  /// frames, so appended frames are byte-identical to an uninterrupted
  /// write.  The header must match `system` and `options`.
  [[nodiscard]] static BinaryTrajectoryWriter resume(
      const std::string& path, const System& system, long upto_step,
      BinaryTrajectoryOptions options = {});

  ~BinaryTrajectoryWriter();
  BinaryTrajectoryWriter(BinaryTrajectoryWriter&&) noexcept;
  BinaryTrajectoryWriter& operator=(BinaryTrajectoryWriter&&) noexcept;
  BinaryTrajectoryWriter(const BinaryTrajectoryWriter&) = delete;
  BinaryTrajectoryWriter& operator=(const BinaryTrajectoryWriter&) = delete;

  /// Append one frame.  `system` must have the header's atom count.
  void add_frame(const System& system, long step);

  /// Frames in the file (kept + appended for a resumed writer).
  [[nodiscard]] std::size_t frames_written() const;

  /// Flush buffered bytes to the OS (the job runner flushes after each
  /// checkpoint so the trajectory never trails the checkpoint on disk).
  void flush();

 private:
  struct Impl;
  explicit BinaryTrajectoryWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Streaming reader.
class BinaryTrajectoryReader {
 public:
  explicit BinaryTrajectoryReader(const std::string& path);
  ~BinaryTrajectoryReader();
  BinaryTrajectoryReader(BinaryTrajectoryReader&&) noexcept;
  BinaryTrajectoryReader& operator=(BinaryTrajectoryReader&&) noexcept;
  BinaryTrajectoryReader(const BinaryTrajectoryReader&) = delete;
  BinaryTrajectoryReader& operator=(const BinaryTrajectoryReader&) = delete;

  [[nodiscard]] std::size_t natoms() const;
  [[nodiscard]] const std::vector<Element>& species() const;
  [[nodiscard]] const Cell& cell() const;
  [[nodiscard]] bool has_velocities() const;
  [[nodiscard]] bool lossless() const;
  [[nodiscard]] double position_quantum() const;

  /// Read the next frame; false at end-of-file.  Throws tbmd::Error on a
  /// corrupt or truncated frame.
  bool next(TrajectoryFrame& frame);

  /// Materialize a frame as a System (header cell + species, frame
  /// positions/velocities).
  [[nodiscard]] System make_system(const TrajectoryFrame& frame) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convert a .tbt trajectory to (extended-)XYZ text, one frame per
/// configuration with the step number in the comment.  Returns the number
/// of frames converted.
std::size_t trajectory_to_xyz(const std::string& trajectory_path,
                              const std::string& xyz_path);

}  // namespace tbmd::io
