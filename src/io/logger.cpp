#include "src/io/logger.hpp"

#include <atomic>

namespace tbmd::io {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace tbmd::io
