#pragma once

/// \file table.hpp
/// \brief Fixed-width table printing and CSV export for the experiment
/// harness (every bench prints its table through this, so the output format
/// matches across experiments).

#include <iosfwd>
#include <string>
#include <vector>

namespace tbmd::io {

/// Column-aligned text table with an optional CSV mirror.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row (stringified cells; size must match the header count).
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into a row.
  void add_numeric_row(const std::vector<double>& values, int precision = 6);

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Write CSV to `path` (truncates).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tbmd::io
