#pragma once

/// \file xyz.hpp
/// \brief XYZ / extended-XYZ configuration I/O.
///
/// Extended-XYZ comment lines of the form
///   Lattice="ax ay az bx by bz cx cy cz" pbc="T T F" ...
/// round-trip the periodic cell; plain XYZ files read back as clusters.

#include <iosfwd>
#include <string>

#include "src/core/system.hpp"

namespace tbmd::io {

/// Write one configuration in extended-XYZ format.  With
/// `with_velocities` each atom line carries vx vy vz (A/fs) after the
/// position, making the file a complete MD restart.
void write_xyz(std::ostream& os, const System& system,
               const std::string& comment = "",
               bool with_velocities = false);

/// Write to a file (truncates).  Throws tbmd::Error on I/O failure.
void write_xyz_file(const std::string& path, const System& system,
                    const std::string& comment = "",
                    bool with_velocities = false);

/// Read one configuration (positions + species + optional lattice +
/// optional velocities) from a stream.  Returns false at end-of-stream;
/// throws tbmd::Error on malformed input.
bool read_xyz(std::istream& is, System& out);

/// Read the first configuration of a file.  Throws on failure.
[[nodiscard]] System read_xyz_file(const std::string& path);

/// Append-mode trajectory writer.
class TrajectoryWriter {
 public:
  /// Opens (truncates) `path`.
  explicit TrajectoryWriter(const std::string& path);
  ~TrajectoryWriter();
  TrajectoryWriter(const TrajectoryWriter&) = delete;
  TrajectoryWriter& operator=(const TrajectoryWriter&) = delete;

  /// Append one frame.
  void add_frame(const System& system, const std::string& comment = "");

  [[nodiscard]] std::size_t frames_written() const { return frames_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t frames_ = 0;
};

}  // namespace tbmd::io
