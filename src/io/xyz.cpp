#include "src/io/xyz.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace tbmd::io {

namespace {

std::string lattice_annotation(const Cell& cell) {
  if (!cell.periodic()) return "";
  std::ostringstream os;
  os << std::setprecision(12);
  const Mat3& h = cell.h();
  os << "Lattice=\"";
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      os << h(i, j);
      if (i != 2 || j != 2) os << ' ';
    }
  }
  os << "\" pbc=\"" << (cell.periodic(0) ? 'T' : 'F') << ' '
     << (cell.periodic(1) ? 'T' : 'F') << ' '
     << (cell.periodic(2) ? 'T' : 'F') << '"';
  return os.str();
}

}  // namespace

void write_xyz(std::ostream& os, const System& system,
               const std::string& comment, bool with_velocities) {
  os << system.size() << '\n';
  std::string annotation = lattice_annotation(system.cell());
  if (with_velocities) {
    if (!annotation.empty()) annotation += ' ';
    annotation += "Properties=species:S:1:pos:R:3:vel:R:3";
  }
  os << comment;
  if (!comment.empty() && !annotation.empty()) os << ' ';
  os << annotation << '\n';
  os << std::setprecision(12);
  for (std::size_t i = 0; i < system.size(); ++i) {
    const Vec3& r = system.positions()[i];
    os << element_symbol(system.species()[i]) << ' ' << r.x << ' ' << r.y
       << ' ' << r.z;
    if (with_velocities) {
      const Vec3& v = system.velocities()[i];
      os << ' ' << v.x << ' ' << v.y << ' ' << v.z;
    }
    os << '\n';
  }
}

void write_xyz_file(const std::string& path, const System& system,
                    const std::string& comment, bool with_velocities) {
  std::ofstream f(path);
  TBMD_REQUIRE(f.good(), "write_xyz_file: cannot open '" + path + "'");
  write_xyz(f, system, comment, with_velocities);
  TBMD_REQUIRE(f.good(), "write_xyz_file: write failed for '" + path + "'");
}

bool read_xyz(std::istream& is, System& out) {
  std::string line;
  // Skip blank lines between frames.
  do {
    if (!std::getline(is, line)) return false;
  } while (trim(line).empty());

  const long n = parse_long(trim(line), "xyz atom count");
  TBMD_REQUIRE(n >= 0, "read_xyz: negative atom count");

  std::string comment;
  TBMD_REQUIRE(static_cast<bool>(std::getline(is, comment)),
               "read_xyz: missing comment line");

  // Parse an optional Lattice="..." annotation.
  Cell cell;
  const std::size_t lat = comment.find("Lattice=\"");
  if (lat != std::string::npos) {
    const std::size_t start = lat + 9;
    const std::size_t end = comment.find('"', start);
    TBMD_REQUIRE(end != std::string::npos, "read_xyz: unterminated Lattice");
    const auto nums = split_whitespace(comment.substr(start, end - start));
    TBMD_REQUIRE(nums.size() == 9, "read_xyz: Lattice needs 9 numbers");
    double v[9];
    for (int k = 0; k < 9; ++k) v[k] = parse_double(nums[k], "Lattice entry");
    bool pbc[3] = {true, true, true};
    const std::size_t pq = comment.find("pbc=\"");
    if (pq != std::string::npos) {
      const std::size_t pstart = pq + 5;
      const std::size_t pend = comment.find('"', pstart);
      if (pend != std::string::npos) {
        const auto flags =
            split_whitespace(comment.substr(pstart, pend - pstart));
        for (std::size_t k = 0; k < flags.size() && k < 3; ++k) {
          pbc[k] = iequals(flags[k], "T") || flags[k] == "1" ||
                   iequals(flags[k], "true");
        }
      }
    }
    cell = Cell({v[0], v[1], v[2]}, {v[3], v[4], v[5]}, {v[6], v[7], v[8]},
                pbc[0], pbc[1], pbc[2]);
  }

  System sys(cell);
  for (long i = 0; i < n; ++i) {
    TBMD_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 "read_xyz: truncated frame");
    const auto tok = split_whitespace(line);
    TBMD_REQUIRE(tok.size() >= 4, "read_xyz: atom line needs symbol + xyz");
    Vec3 velocity{};
    if (tok.size() >= 7) {
      velocity = {parse_double(tok[4], "vx"), parse_double(tok[5], "vy"),
                  parse_double(tok[6], "vz")};
    }
    sys.add_atom(element_from_symbol(tok[0]),
                 {parse_double(tok[1], "x"), parse_double(tok[2], "y"),
                  parse_double(tok[3], "z")},
                 velocity);
  }
  out = std::move(sys);
  return true;
}

System read_xyz_file(const std::string& path) {
  std::ifstream f(path);
  TBMD_REQUIRE(f.good(), "read_xyz_file: cannot open '" + path + "'");
  System s;
  TBMD_REQUIRE(read_xyz(f, s), "read_xyz_file: no frame in '" + path + "'");
  return s;
}

struct TrajectoryWriter::Impl {
  std::ofstream stream;
};

TrajectoryWriter::TrajectoryWriter(const std::string& path)
    : impl_(new Impl{std::ofstream(path)}) {
  TBMD_REQUIRE(impl_->stream.good(),
               "TrajectoryWriter: cannot open '" + path + "'");
}

TrajectoryWriter::~TrajectoryWriter() { delete impl_; }

void TrajectoryWriter::add_frame(const System& system,
                                 const std::string& comment) {
  write_xyz(impl_->stream, system, comment);
  ++frames_;
}

}  // namespace tbmd::io
