#pragma once

/// \file logger.hpp
/// \brief Minimal leveled logger for the examples and benchmark harness.

#include <iostream>
#include <sstream>
#include <string>

namespace tbmd::io {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log threshold (messages below it are dropped).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one log line ("[level] message") to stderr.
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append(os, rest...);
}
}  // namespace detail

/// Variadic convenience: log_info("n = ", n, " atoms").
template <typename... Args>
void log_info(const Args&... args) {
  std::ostringstream os;
  detail::append(os, args...);
  log_message(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  std::ostringstream os;
  detail::append(os, args...);
  log_message(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  std::ostringstream os;
  detail::append(os, args...);
  log_message(LogLevel::kDebug, os.str());
}

}  // namespace tbmd::io
