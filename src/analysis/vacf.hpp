#pragma once

/// \file vacf.hpp
/// \brief Velocity autocorrelation function and vibrational density of
/// states (power spectrum).

#include <vector>

#include "src/core/system.hpp"

namespace tbmd::analysis {

/// Records velocity snapshots during MD and computes
///   C(t) = < v(t0) . v(t0 + t) > / < v(t0) . v(t0) >
/// averaged over atoms and time origins, plus its cosine transform (the
/// vibrational density of states).
class VacfAccumulator {
 public:
  /// \param sample_dt_fs  time between recorded snapshots (fs)
  explicit VacfAccumulator(double sample_dt_fs)
      : sample_dt_(sample_dt_fs) {}

  /// Record the current velocities.
  void add_frame(const System& system);

  /// Normalized C(t) for lags 0 .. max_lag-1 (multiple time origins).
  [[nodiscard]] std::vector<double> correlation(std::size_t max_lag) const;

  /// Vibrational DOS: D(f) = integral C(t) cos(2 pi f t) w(t) dt with a
  /// Hann window w.  `frequencies` in 1/fs (ordinary frequency).
  [[nodiscard]] std::vector<double> spectrum(
      const std::vector<double>& frequencies, std::size_t max_lag) const;

  [[nodiscard]] std::size_t frames() const { return snapshots_.size(); }
  [[nodiscard]] double sample_dt() const { return sample_dt_; }

 private:
  double sample_dt_;
  std::vector<std::vector<Vec3>> snapshots_;
};

}  // namespace tbmd::analysis
