#pragma once

/// \file edos.hpp
/// \brief Electronic density of states and gap analysis from eigenvalue
/// spectra.

#include <vector>

namespace tbmd::analysis {

/// Gaussian-broadened electronic DOS evaluated on a uniform energy grid.
struct ElectronicDos {
  std::vector<double> energies;  ///< grid (eV)
  std::vector<double> dos;       ///< states per eV (spin-degenerate, x2)
};

/// Broaden `eigenvalues` (each counted twice for spin) with width `sigma`
/// on `points` energies spanning [min-4sigma, max+4sigma].
[[nodiscard]] ElectronicDos electronic_dos(
    const std::vector<double>& eigenvalues, double sigma, std::size_t points);

/// HOMO-LUMO gap for `n_electrons` electrons filled two per state into the
/// ascending `eigenvalues`; 0 when metallic/degenerate or when no empty
/// state exists.
[[nodiscard]] double homo_lumo_gap(const std::vector<double>& eigenvalues,
                                   int n_electrons);

}  // namespace tbmd::analysis
