#pragma once

/// \file bonds.hpp
/// \brief Coordination and bond statistics.

#include <cstddef>
#include <vector>

#include "src/core/system.hpp"

namespace tbmd::analysis {

/// Per-atom coordination numbers: neighbors within `bond_cutoff`.
[[nodiscard]] std::vector<int> coordination_numbers(const System& system,
                                                    double bond_cutoff);

/// Histogram of coordination numbers (index = coordination, up to max 12).
[[nodiscard]] std::vector<std::size_t> coordination_histogram(
    const System& system, double bond_cutoff);

/// Total number of bonds (pairs within `bond_cutoff`).
[[nodiscard]] std::size_t bond_count(const System& system, double bond_cutoff);

/// Mean bond length over pairs within `bond_cutoff` (0 when no bonds).
[[nodiscard]] double mean_bond_length(const System& system,
                                      double bond_cutoff);

}  // namespace tbmd::analysis
