#include "src/analysis/thermo.hpp"

#include "src/util/error.hpp"

namespace tbmd::analysis {

double instantaneous_pressure(const System& system,
                              const ForceResult& result) {
  const double volume = system.cell().volume();
  TBMD_REQUIRE(volume > 0.0 && system.cell().periodic(),
               "instantaneous_pressure: requires a periodic cell");
  return (2.0 * system.kinetic_energy() + trace(result.virial)) /
         (3.0 * volume);
}

}  // namespace tbmd::analysis
