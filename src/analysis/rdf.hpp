#pragma once

/// \file rdf.hpp
/// \brief Radial distribution function g(r).

#include <vector>

#include "src/core/system.hpp"

namespace tbmd::analysis {

/// Accumulates pair-distance histograms over trajectory frames and
/// normalizes to g(r) for periodic systems (ideal-gas shell normalization).
/// For non-periodic systems the normalization volume uses the bounding
/// sphere, which preserves peak positions (the quantity of interest).
class RdfAccumulator {
 public:
  RdfAccumulator(double r_max, std::size_t bins);

  /// Accumulate all pair distances of one configuration.
  void add_frame(const System& system);

  /// Bin centers (A).
  [[nodiscard]] std::vector<double> r_values() const;

  /// Normalized g(r) averaged over the accumulated frames.
  [[nodiscard]] std::vector<double> g_of_r() const;

  /// Raw per-bin pair counts (all frames).
  [[nodiscard]] const std::vector<double>& counts() const { return hist_; }

  [[nodiscard]] std::size_t frames() const { return frames_; }

 private:
  double r_max_;
  std::size_t bins_;
  std::vector<double> hist_;
  std::size_t frames_ = 0;
  double atoms_acc_ = 0.0;    ///< sum over frames of N
  double density_acc_ = 0.0;  ///< sum over frames of N/V
};

/// Convenience: one-shot g(r) of a single configuration.
[[nodiscard]] std::vector<std::pair<double, double>> radial_distribution(
    const System& system, double r_max, std::size_t bins);

}  // namespace tbmd::analysis
