#include "src/analysis/vacf.hpp"

#include <cmath>
#include <numbers>

#include "src/util/error.hpp"

namespace tbmd::analysis {

void VacfAccumulator::add_frame(const System& system) {
  snapshots_.push_back(system.velocities());
}

std::vector<double> VacfAccumulator::correlation(std::size_t max_lag) const {
  const std::size_t frames = snapshots_.size();
  TBMD_REQUIRE(frames >= 2, "VACF: need at least two frames");
  max_lag = std::min(max_lag, frames);
  std::vector<double> c(max_lag, 0.0);
  std::vector<std::size_t> counts(max_lag, 0);

  for (std::size_t t0 = 0; t0 < frames; ++t0) {
    for (std::size_t lag = 0; lag < max_lag && t0 + lag < frames; ++lag) {
      const auto& v0 = snapshots_[t0];
      const auto& vt = snapshots_[t0 + lag];
      double acc = 0.0;
      for (std::size_t i = 0; i < v0.size(); ++i) acc += dot(v0[i], vt[i]);
      c[lag] += acc;
      ++counts[lag];
    }
  }
  for (std::size_t lag = 0; lag < max_lag; ++lag) {
    c[lag] /= static_cast<double>(counts[lag]);
  }
  const double c0 = c[0];
  if (c0 > 0.0) {
    for (double& x : c) x /= c0;
  }
  return c;
}

std::vector<double> VacfAccumulator::spectrum(
    const std::vector<double>& frequencies, std::size_t max_lag) const {
  const std::vector<double> c = correlation(max_lag);
  std::vector<double> out(frequencies.size(), 0.0);
  const std::size_t m = c.size();
  for (std::size_t q = 0; q < frequencies.size(); ++q) {
    const double omega = 2.0 * std::numbers::pi * frequencies[q];
    double acc = 0.0;
    for (std::size_t lag = 0; lag < m; ++lag) {
      const double t = sample_dt_ * static_cast<double>(lag);
      // Hann window over the lag range.
      const double w =
          0.5 * (1.0 + std::cos(std::numbers::pi * static_cast<double>(lag) /
                                static_cast<double>(m)));
      acc += c[lag] * std::cos(omega * t) * w;
    }
    out[q] = acc * sample_dt_;
  }
  return out;
}

}  // namespace tbmd::analysis
