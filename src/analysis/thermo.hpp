#pragma once

/// \file thermo.hpp
/// \brief Thermodynamic estimators built on the virial.

#include "src/core/calculator.hpp"
#include "src/core/system.hpp"

namespace tbmd::analysis {

/// Instantaneous virial pressure P = (2 KE + tr W) / (3 V) in eV/A^3.
/// Requires a periodic cell (throws for clusters, where pressure is
/// undefined).  Multiply by 160.21766 for GPa.
[[nodiscard]] double instantaneous_pressure(const System& system,
                                            const ForceResult& result);

/// eV/A^3 -> GPa.
inline constexpr double kEvPerA3ToGPa = 160.21766;

}  // namespace tbmd::analysis
