#include "src/analysis/edos.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/error.hpp"

namespace tbmd::analysis {

ElectronicDos electronic_dos(const std::vector<double>& eigenvalues,
                             double sigma, std::size_t points) {
  TBMD_REQUIRE(!eigenvalues.empty(), "electronic_dos: empty spectrum");
  TBMD_REQUIRE(sigma > 0 && points >= 2, "electronic_dos: bad arguments");
  const auto [lo_it, hi_it] =
      std::minmax_element(eigenvalues.begin(), eigenvalues.end());
  const double lo = *lo_it - 4.0 * sigma;
  const double hi = *hi_it + 4.0 * sigma;

  ElectronicDos out;
  out.energies.resize(points);
  out.dos.assign(points, 0.0);
  const double de = (hi - lo) / static_cast<double>(points - 1);
  const double norm = 2.0 / (sigma * std::sqrt(2.0 * std::numbers::pi));
  for (std::size_t q = 0; q < points; ++q) {
    const double e = lo + de * static_cast<double>(q);
    out.energies[q] = e;
    double acc = 0.0;
    for (const double eps : eigenvalues) {
      const double x = (e - eps) / sigma;
      if (std::fabs(x) < 8.0) acc += std::exp(-0.5 * x * x);
    }
    out.dos[q] = norm * acc;
  }
  return out;
}

double homo_lumo_gap(const std::vector<double>& eigenvalues, int n_electrons) {
  TBMD_REQUIRE(std::is_sorted(eigenvalues.begin(), eigenvalues.end()),
               "homo_lumo_gap: eigenvalues must be ascending");
  if (n_electrons <= 0) return 0.0;
  const std::size_t homo = (n_electrons + 1) / 2 - 1;
  const std::size_t lumo = homo + 1;
  if (lumo >= eigenvalues.size()) return 0.0;
  return std::max(0.0, eigenvalues[lumo] - eigenvalues[homo]);
}

}  // namespace tbmd::analysis
