#include "src/analysis/msd.hpp"

#include "src/util/error.hpp"

namespace tbmd::analysis {

double MsdTracker::msd(const System& system) const {
  TBMD_REQUIRE(system.size() == reference_.size(),
               "MsdTracker: atom count changed");
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (system.frozen(i)) continue;
    acc += norm2_sq(system.positions()[i] - reference_[i]);
    ++count;
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace tbmd::analysis
