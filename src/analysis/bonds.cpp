#include "src/analysis/bonds.hpp"

#include <algorithm>

namespace tbmd::analysis {

std::vector<int> coordination_numbers(const System& system,
                                      double bond_cutoff) {
  const std::size_t n = system.size();
  std::vector<int> coord(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (system.distance(i, j) < bond_cutoff) {
        ++coord[i];
        ++coord[j];
      }
    }
  }
  return coord;
}

std::vector<std::size_t> coordination_histogram(const System& system,
                                                double bond_cutoff) {
  std::vector<std::size_t> hist(13, 0);
  for (const int c : coordination_numbers(system, bond_cutoff)) {
    hist[std::min(c, 12)] += 1;
  }
  return hist;
}

std::size_t bond_count(const System& system, double bond_cutoff) {
  const std::size_t n = system.size();
  std::size_t bonds = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (system.distance(i, j) < bond_cutoff) ++bonds;
    }
  }
  return bonds;
}

double mean_bond_length(const System& system, double bond_cutoff) {
  const std::size_t n = system.size();
  double acc = 0.0;
  std::size_t bonds = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double r = system.distance(i, j);
      if (r < bond_cutoff) {
        acc += r;
        ++bonds;
      }
    }
  }
  return bonds == 0 ? 0.0 : acc / static_cast<double>(bonds);
}

}  // namespace tbmd::analysis
