#pragma once

/// \file msd.hpp
/// \brief Mean-square displacement relative to a reference configuration.

#include <vector>

#include "src/core/system.hpp"

namespace tbmd::analysis {

/// Tracks MSD(t) = <|r_i(t) - r_i(0)|^2> against a stored reference.
/// Positions must be unwrapped (the MD driver never wraps mid-run).
class MsdTracker {
 public:
  /// Capture the current positions as the reference.
  explicit MsdTracker(const System& system)
      : reference_(system.positions()) {}

  /// Current MSD in A^2 (frozen atoms excluded).
  [[nodiscard]] double msd(const System& system) const;

  /// Reset the reference to the current configuration.
  void rebase(const System& system) { reference_ = system.positions(); }

 private:
  std::vector<Vec3> reference_;
};

}  // namespace tbmd::analysis
