#include "src/analysis/rdf.hpp"

#include <cmath>
#include <numbers>

#include "src/util/error.hpp"

namespace tbmd::analysis {

RdfAccumulator::RdfAccumulator(double r_max, std::size_t bins)
    : r_max_(r_max), bins_(bins), hist_(bins, 0.0) {
  TBMD_REQUIRE(r_max > 0 && bins > 0, "RdfAccumulator: bad arguments");
}

void RdfAccumulator::add_frame(const System& system) {
  const std::size_t n = system.size();
  const double dr = r_max_ / static_cast<double>(bins_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double r = system.distance(i, j);
      if (r < r_max_) {
        hist_[static_cast<std::size_t>(r / dr)] += 2.0;  // both directions
      }
    }
  }
  ++frames_;
  atoms_acc_ += static_cast<double>(n);
  if (system.cell().volume() > 0.0) {
    density_acc_ += static_cast<double>(n) / system.cell().volume();
  } else {
    // Cluster: bounding-sphere volume as the normalization density.
    Vec3 com{};
    for (const Vec3& r : system.positions()) com += r;
    com /= static_cast<double>(n);
    double rmax2 = 0.0;
    for (const Vec3& r : system.positions()) {
      rmax2 = std::max(rmax2, norm2_sq(r - com));
    }
    const double vol = 4.0 / 3.0 * std::numbers::pi *
                       std::pow(std::sqrt(rmax2) + 1.0, 3.0);
    density_acc_ += static_cast<double>(n) / vol;
  }
}

std::vector<double> RdfAccumulator::r_values() const {
  std::vector<double> r(bins_);
  const double dr = r_max_ / static_cast<double>(bins_);
  for (std::size_t b = 0; b < bins_; ++b) {
    r[b] = (static_cast<double>(b) + 0.5) * dr;
  }
  return r;
}

std::vector<double> RdfAccumulator::g_of_r() const {
  std::vector<double> g(bins_, 0.0);
  if (frames_ == 0) return g;
  const double dr = r_max_ / static_cast<double>(bins_);
  const double n_avg = atoms_acc_ / static_cast<double>(frames_);
  const double rho_avg = density_acc_ / static_cast<double>(frames_);
  for (std::size_t b = 0; b < bins_; ++b) {
    const double r_lo = static_cast<double>(b) * dr;
    const double r_hi = r_lo + dr;
    const double shell =
        4.0 / 3.0 * std::numbers::pi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = rho_avg * shell * n_avg;
    g[b] = hist_[b] / (static_cast<double>(frames_) * std::max(ideal, 1e-300));
  }
  return g;
}

std::vector<std::pair<double, double>> radial_distribution(
    const System& system, double r_max, std::size_t bins) {
  RdfAccumulator acc(r_max, bins);
  acc.add_frame(system);
  const auto r = acc.r_values();
  const auto g = acc.g_of_r();
  std::vector<std::pair<double, double>> out(bins);
  for (std::size_t b = 0; b < bins; ++b) out[b] = {r[b], g[b]};
  return out;
}

}  // namespace tbmd::analysis
