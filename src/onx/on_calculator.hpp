#pragma once

/// \file on_calculator.hpp
/// \brief O(N) tight-binding calculator: sparse Hamiltonian + canonical
/// purification instead of O(N^3) diagonalization.

#include "src/core/calculator.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/block_sparse.hpp"
#include "src/onx/purification.hpp"
#include "src/onx/sparse.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::onx {

/// Options for OrderNCalculator.
struct OrderNOptions {
  double skin = 0.5;                  ///< Verlet skin (A)
  PurificationOptions purification;   ///< truncation / convergence controls
  /// Reuse the symbolic SpMM patterns of previous steps while the bond
  /// topology is unchanged (the steady-state fast path).  false forces a
  /// cold symbolic rebuild every step -- results are bit-identical either
  /// way (the cold and warm paths run the same numeric sweep); the switch
  /// exists for ablation and the bit-identity regression tests.
  bool reuse_patterns = true;
};

/// Assemble the tight-binding Hamiltonian directly in CSR form from a
/// prebuilt bond table (shared with the force contraction, so the O(N)
/// path evaluates each Slater-Koster block exactly once per step).
[[nodiscard]] SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                                    const System& system,
                                                    const tb::BondTable& table);

/// Convenience overload: evaluate a blocks-only BondTable from `list`.
[[nodiscard]] SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                                    const System& system,
                                                    const NeighborList& list);

/// Assemble the Hamiltonian directly in symmetric-half block-CSR form
/// (one orbs(i) x orbs(j) tile per atom pair with j >= i: uniform 4x4 for
/// the legacy sp models, mixed 1/4/9 tiles for multi-species models) from
/// a prebuilt bond table -- the
/// bond table's hopping blocks ARE the BSR tiles, so assembly is a scatter
/// with no per-element index bookkeeping, and because half pairs are
/// stored with i < j, no tile is ever transposed on the way in.  `out` and
/// `ws` are reused across calls.  (Use .to_full() for a full-stored view.)
void build_block_hamiltonian(const tb::TbModel& model, const System& system,
                             const tb::BondTable& table,
                             BlockSparseMatrix& out, BsrWorkspace& ws);

/// Convenience overload returning by value.
[[nodiscard]] BlockSparseMatrix build_block_hamiltonian(
    const tb::TbModel& model, const System& system,
    const tb::BondTable& table);

/// Hellmann-Feynman band forces from a sparse (spinless) density matrix P
/// (the contraction uses rho = 2 P), contracted against the bond table's
/// derivative blocks.  When `virial` is non-null the band virial is
/// accumulated into it.
[[nodiscard]] std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                                   const SparseMatrix& p,
                                                   Mat3* virial = nullptr);

/// Blocked-density overload: one tile lookup per bond replaces up to 81
/// scalar binary searches (P must carry one block row per atom with the
/// table's orbital counts, as produced by the purification engine for TB
/// Hamiltonians).
[[nodiscard]] std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                                   const BlockSparseMatrix& p,
                                                   Mat3* virial = nullptr);

/// Convenience overload: evaluate a derivative-carrying BondTable first.
[[nodiscard]] std::vector<Vec3> band_forces_sparse(const tb::TbModel& model,
                                                   const System& system,
                                                   const NeighborList& list,
                                                   const SparseMatrix& p,
                                                   Mat3* virial = nullptr);

/// Linear-scaling TBMD calculator (Palser-Manolopoulos purification).
///
/// Valid for gapped systems (diamond C/Si, molecules); the result of the
/// last purification run is exposed for diagnostics.
class OrderNCalculator final : public Calculator {
 public:
  OrderNCalculator(tb::TbModel model, OrderNOptions options = {});

  ForceResult compute(const System& system) override;

  [[nodiscard]] std::string name() const override {
    return "tb-on[" + model_.name + "]";
  }

  /// Diagnostics of the most recent purification (iterations, fill, ...).
  [[nodiscard]] const PurificationResult& last_purification() const {
    return last_;
  }

  /// Symbolic-vs-numeric SpMM accounting (cumulative across steps): the
  /// pattern-reuse tests assert that a steady-state step adds only
  /// numeric_reuses.
  [[nodiscard]] const BsrWorkspace::SpmmStats& spmm_stats() const {
    return workspace_.scratch.stats;
  }

  /// Topology stamp of the current bond table (what the pattern cache is
  /// keyed on).
  [[nodiscard]] std::uint64_t topology_version() const {
    return table_.topology_version();
  }

  /// Heap bytes reserved by the shared BSR scratch workspace (the
  /// bounded-footprint regression tests assert on this after an
  /// atom-count shrink).
  [[nodiscard]] std::size_t workspace_footprint_bytes() const {
    return workspace_.scratch.footprint_bytes();
  }

  [[nodiscard]] const tb::TbModel& model() const { return model_; }

 private:
  tb::TbModel model_;
  OrderNOptions options_;
  NeighborList list_;
  /// Per-step shared SK block/derivative table (storage reused per step).
  tb::BondTable table_;
  /// Persistent blocked Hamiltonian + purification buffers: every BSR
  /// intermediate keeps its steady-state capacity across MD steps, so the
  /// O(N) step performs no allocation once the pattern has stabilized.
  BlockSparseMatrix hamiltonian_;
  PurificationWorkspace workspace_;
  PurificationResult last_;
  /// Atom count of the previous compute(): a shrink triggers
  /// BsrWorkspace::shrink so the workspace footprint tracks the current
  /// system instead of the historical maximum.
  std::size_t last_atoms_ = 0;
};

}  // namespace tbmd::onx
