#pragma once

/// \file on_calculator.hpp
/// \brief O(N) tight-binding calculator: sparse Hamiltonian + canonical
/// purification instead of O(N^3) diagonalization.

#include "src/core/calculator.hpp"
#include "src/core/health_spec.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/block_sparse.hpp"
#include "src/onx/purification.hpp"
#include "src/onx/sparse.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/partition.hpp"

namespace tbmd::onx {

/// Options for OrderNCalculator.
struct OrderNOptions {
  double skin = 0.5;                  ///< Verlet skin (A)
  PurificationOptions purification;   ///< truncation / convergence controls
  /// Reuse the symbolic SpMM patterns of previous steps while the bond
  /// topology is unchanged (the steady-state fast path).  false forces a
  /// cold symbolic rebuild every step -- results are bit-identical either
  /// way (the cold and warm paths run the same numeric sweep); the switch
  /// exists for ablation and the bit-identity regression tests.
  bool reuse_patterns = true;

  /// Contiguous block-row domains for the sharded SpMM / H-assembly
  /// sweeps.  0 = auto: 4 domains per OpenMP thread when the team has more
  /// than one thread and the system is large enough (>= 512 atoms), else
  /// off.  1 = off; >= 2 = explicit count.  Without reorder_domains this
  /// is purely a scheduling change (stable thread -> domain ownership for
  /// cache/NUMA affinity): results stay bit-identical to the unsharded
  /// path at any thread count, so the default is safe for the checkpoint
  /// bit-identity guarantees.
  int domains = 0;

  /// Re-sort atoms by spatial grid cell into contiguous domains every step
  /// before assembly, and scatter the forces back at the end.  The
  /// permutation is a pure function of the current positions (checkpoint
  /// kill-and-resume stays bit-reproducible *within* this mode), and each
  /// domain's rows become spatially compact (fewer halo rows, better
  /// locality for lattice-disordered systems).  Off by default: the
  /// permuted build's floating-point summation orders differ from the
  /// unpermuted one in the last ulp, so the two layouts are tolerance-
  /// equivalent, not bit-equal.  Only takes effect when the effective
  /// domain count is > 1.
  bool reorder_domains = false;

  /// Cache the Gershgorin spectral bounds across steps behind the bond
  /// topology stamp: pattern hits widen the cached interval by the
  /// Frobenius norm of dH (a rigorous enclosure, since no eigenvalue can
  /// move further than ||dH||_2 <= ||dH||_F) and only recompute the exact
  /// bounds when the accumulated drift exceeds a fraction of the spectral
  /// width.  Saves an O(nnz(H)) Gershgorin pass per warm step.  Off by
  /// default: the widened seed depends on the *history* of H since the
  /// last refresh, so a checkpoint-resumed run (which starts from exact
  /// bounds) would differ in the last ulp from an uninterrupted one.
  /// Benches and long production trajectories should turn it on.
  bool cache_spectral_bounds = false;

  /// Verlet-skin-lifetime BondTable reuse (A): > 0 freezes the
  /// Slater-Koster block, derivative and repulsive radial of every bond
  /// whose endpoints each moved less than half this skin since their last
  /// evaluation (see tb::BondTable::build).  Saves the
  /// transcendental-heavy SK pass for the quiescent bulk between
  /// neighbor-list rebuilds.  Off by default for the same reason as
  /// cache_spectral_bounds: frozen bonds make forces a function of the
  /// position history, so checkpoint kill-and-resume is no longer
  /// bit-reproducible with this on.
  double bond_reuse_skin = 0.0;

  /// Numerics guardrails + recovery ladder (see core/health_spec.hpp).
  /// Disabled by default: no scans, no retries, and an unconverged
  /// purification is only counted (recovery_stats().unconverged_steps)
  /// and logged -- results stay bit-identical to the unguarded engine.
  HealthSpec health;
};

/// Assemble the tight-binding Hamiltonian directly in CSR form from a
/// prebuilt bond table (shared with the force contraction, so the O(N)
/// path evaluates each Slater-Koster block exactly once per step).
[[nodiscard]] SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                                    const System& system,
                                                    const tb::BondTable& table);

/// Convenience overload: evaluate a blocks-only BondTable from `list`.
[[nodiscard]] SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                                    const System& system,
                                                    const NeighborList& list);

/// Assemble the Hamiltonian directly in symmetric-half block-CSR form
/// (one orbs(i) x orbs(j) tile per atom pair with j >= i: uniform 4x4 for
/// the legacy sp models, mixed 1/4/9 tiles for multi-species models) from
/// a prebuilt bond table -- the
/// bond table's hopping blocks ARE the BSR tiles, so assembly is a scatter
/// with no per-element index bookkeeping, and because half pairs are
/// stored with i < j, no tile is ever transposed on the way in.  `out` and
/// `ws` are reused across calls.  (Use .to_full() for a full-stored view.)
void build_block_hamiltonian(const tb::TbModel& model, const System& system,
                             const tb::BondTable& table,
                             BlockSparseMatrix& out, BsrWorkspace& ws);

/// Convenience overload returning by value.
[[nodiscard]] BlockSparseMatrix build_block_hamiltonian(
    const tb::TbModel& model, const System& system,
    const tb::BondTable& table);

/// Hellmann-Feynman band forces from a sparse (spinless) density matrix P
/// (the contraction uses rho = 2 P), contracted against the bond table's
/// derivative blocks.  When `virial` is non-null the band virial is
/// accumulated into it.
[[nodiscard]] std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                                   const SparseMatrix& p,
                                                   Mat3* virial = nullptr);

/// Blocked-density overload: one tile lookup per bond replaces up to 81
/// scalar binary searches (P must carry one block row per atom with the
/// table's orbital counts, as produced by the purification engine for TB
/// Hamiltonians).
[[nodiscard]] std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                                   const BlockSparseMatrix& p,
                                                   Mat3* virial = nullptr);

/// Convenience overload: evaluate a derivative-carrying BondTable first.
[[nodiscard]] std::vector<Vec3> band_forces_sparse(const tb::TbModel& model,
                                                   const System& system,
                                                   const NeighborList& list,
                                                   const SparseMatrix& p,
                                                   Mat3* virial = nullptr);

/// Linear-scaling TBMD calculator (Palser-Manolopoulos purification).
///
/// Valid for gapped systems (diamond C/Si, molecules); the result of the
/// last purification run is exposed for diagnostics.
class OrderNCalculator final : public Calculator {
 public:
  OrderNCalculator(tb::TbModel model, OrderNOptions options = {});

  ForceResult compute(const System& system) override;

  [[nodiscard]] std::string name() const override {
    return "tb-on[" + model_.name + "]";
  }

  /// Diagnostics of the most recent purification (iterations, fill, ...).
  [[nodiscard]] const PurificationResult& last_purification() const {
    return last_;
  }

  /// Precision accounting of the most recent purification: iterations run
  /// on fp32 vs fp64 tiles and what triggered the promotion (all-fp64
  /// split with trigger kNone when options.purification.precision is
  /// PrecisionMode::kF64).
  [[nodiscard]] const NumericsStats& numerics_stats() const {
    return last_.numerics;
  }

  /// Symbolic-vs-numeric SpMM accounting (cumulative across steps): the
  /// pattern-reuse tests assert that a steady-state step adds only
  /// numeric_reuses.
  [[nodiscard]] const BsrWorkspace::SpmmStats& spmm_stats() const {
    return workspace_.scratch.stats;
  }

  /// Bond-evaluation accounting of the Verlet-skin BondTable reuse
  /// (cumulative across steps; `reused` stays 0 with the default
  /// bond_reuse_skin = 0).
  [[nodiscard]] const tb::BondTable::ReuseStats& bond_reuse_stats() const {
    return table_.reuse_stats();
  }

  /// Topology stamp of the current bond table (what the pattern cache is
  /// keyed on).
  [[nodiscard]] std::uint64_t topology_version() const {
    return table_.topology_version();
  }

  /// Heap bytes reserved by the shared BSR scratch workspace (the
  /// bounded-footprint regression tests assert on this after an
  /// atom-count shrink).
  [[nodiscard]] std::size_t workspace_footprint_bytes() const {
    return workspace_.scratch.footprint_bytes();
  }

  /// Domain-decomposition diagnostics of the most recent compute().
  /// `halo` counts block rows whose Hamiltonian pattern crosses a domain
  /// seam (they touch another domain's tiles during the SpMM);
  /// `interior` rows are fully resolvable inside their own domain.
  struct DomainStats {
    std::size_t domains = 1;
    std::size_t halo = 0;
    std::size_t interior = 0;
    bool reordered = false;  ///< a spatial permutation was applied
  };
  [[nodiscard]] const DomainStats& domain_stats() const {
    return domain_stats_;
  }

  /// Guardrail/recovery accounting, cumulative across compute() calls.
  /// With health off only `unconverged_steps` and `last_failure` move (the
  /// satellite counter for silently-unconverged densities); with health on
  /// the per-rung counters record which ladder steps ran.
  struct RecoveryStats {
    /// Health off: steps whose purification reported converged = false and
    /// whose density was used anyway (counted + logged, never silent).
    std::size_t unconverged_steps = 0;
    std::size_t fp64_retries = 0;      ///< rung (a) attempts
    std::size_t tighten_retries = 0;   ///< rung (b) attempts
    std::size_t exact_fallbacks = 0;   ///< rung (c) attempts
    std::size_t failures = 0;          ///< rung (d): NumericsError thrown
    FailureClass last_failure = FailureClass::kNone;
  };
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  /// Exact Gershgorin recomputations performed by the cached-bounds mode
  /// (cache_spectral_bounds): the hoist tests assert this stays at 1
  /// across warm steps on an unchanged topology.
  [[nodiscard]] std::size_t bounds_refreshes() const {
    return bounds_refreshes_;
  }

  /// Spectral enclosure handed to the last purification run (exact or
  /// drift-widened); meaningful only when cache_spectral_bounds is set.
  [[nodiscard]] const linalg::SpectralBounds& last_spectral_bounds() const {
    return last_bounds_;
  }

  [[nodiscard]] const tb::TbModel& model() const { return model_; }

 private:
  /// Spectral enclosure for this step's purification (exact on a
  /// topology/pattern change or excessive drift, widened otherwise).
  [[nodiscard]] linalg::SpectralBounds step_spectral_bounds();

  /// Rung (c): exact-diagonalization density for the current Hamiltonian,
  /// packaged as a PurificationResult so the force contraction and energy
  /// bookkeeping downstream are rung-agnostic.
  [[nodiscard]] PurificationResult exact_step_density(const System& system,
                                                      int n_occupied) const;

  tb::TbModel model_;
  OrderNOptions options_;
  NeighborList list_;
  /// Per-step shared SK block/derivative table (storage reused per step).
  tb::BondTable table_;
  /// Persistent blocked Hamiltonian + purification buffers: every BSR
  /// intermediate keeps its steady-state capacity across MD steps, so the
  /// O(N) step performs no allocation once the pattern has stabilized.
  BlockSparseMatrix hamiltonian_;
  PurificationWorkspace workspace_;
  PurificationResult last_;
  /// Atom count of the previous compute(): a shrink triggers
  /// BsrWorkspace::shrink so the workspace footprint tracks the current
  /// system instead of the historical maximum.
  std::size_t last_atoms_ = 0;

  /// Block-row domain partition of the current step (identity/single
  /// domain when sharding is off) and the permuted working copy of the
  /// caller's system when reorder_domains applies one.
  par::DomainPartition part_;
  System perm_system_;
  DomainStats domain_stats_;
  RecoveryStats recovery_stats_;

  /// cache_spectral_bounds state: the exact enclosure at the last refresh,
  /// the H values it was computed from (drift reference), and the pattern
  /// fingerprint + topology stamp they belong to.
  linalg::SpectralBounds cached_bounds_{};
  linalg::SpectralBounds last_bounds_{};
  std::vector<double> h_ref_;
  std::uint64_t bounds_topology_ = 0;
  std::uint64_t bounds_fingerprint_ = 0;
  bool bounds_valid_ = false;
  std::size_t bounds_refreshes_ = 0;
};

}  // namespace tbmd::onx
