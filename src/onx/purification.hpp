#pragma once

/// \file purification.hpp
/// \brief Canonical density-matrix purification (Palser-Manolopoulos).
///
/// The O(N) alternative to exact diagonalization: starting from a linear
/// map of H whose spectrum lies in [0, 1] and whose trace equals the number
/// of occupied states, iterate trace-conserving McWeeny-type polynomials
/// until the density matrix is idempotent.  With threshold truncation the
/// cost per iteration is O(N) for gapped systems — this is the method the
/// TBMD community adopted to break the O(N^3) wall that the paper's
/// evaluation section quantifies.
///
/// The iteration runs on the blocked-sparse substrate (BlockSparseMatrix,
/// one tile per atom pair: 4x4 for sp models, mixed 1/4/9 tiles for
/// multi-species s/sp/spd models) in symmetric-half storage:
/// H, P and every polynomial of P are symmetric, so only upper-half tiles
/// are stored and multiplied (multiply_sym_into — half the memory and
/// flops of the full-pattern engine).  Each multiply's symbolic phase is
/// cached in the workspace PatternCache keyed on operand-pattern
/// fingerprints: along an MD trajectory the bond topology is unchanged on
/// almost every step, so steady-state steps re-run only the numeric phase
/// on frozen patterns (bit-identical to a cold run).  Scalar CSR operands
/// are converted on entry and stay the assembly/interchange format.

#include <cstdint>

#include "src/core/numerics_spec.hpp"
#include "src/linalg/spectral_bounds.hpp"
#include "src/onx/block_sparse.hpp"
#include "src/onx/sparse.hpp"

namespace tbmd::onx {

/// Options for the purification loop.  The numerics policy (drop
/// tolerance, truncation schedule, precision mode, SIMD switch) is the
/// inherited NumericsSpec -- shared verbatim with CalculatorSpec and the
/// JobSpec/CLI layers, and spelled the historical way
/// (`options.drop_tolerance`, `options.drop_at(it)`) at every existing
/// call site.  The fields below are loop controls that only the
/// purification routines themselves consume.
struct PurificationOptions : NumericsSpec {
  /// Converged when tr(P - P^2) / N falls below this.
  double idempotency_tolerance = 1e-10;
  int max_iterations = 100;

  /// Optional caller-supplied spectral enclosure of H.  When `have_bounds`
  /// is set the loops seed from `bounds` instead of running their own
  /// Gershgorin pass -- callers that purify the same H repeatedly (the
  /// chemical-potential bisection, OrderNCalculator's cached-bounds mode)
  /// hoist the O(nnz) estimate out of the loop.  The interval must enclose
  /// the true spectrum; a wider interval only flattens the initial seed's
  /// slope, it never breaks correctness.
  bool have_bounds = false;
  linalg::SpectralBounds bounds{};
};

/// What flipped a mixed-precision run from fp32 to fp64 tiles.
enum class PromotionTrigger : std::uint8_t {
  kNone,       ///< ran fp64 throughout (fp64 mode, or promote_iteration=1)
  kThreshold,  ///< idempotency error per state fell below promote_threshold
  kIteration,  ///< promote_iteration cap reached
  kStagnation, ///< a convergence/stagnation criterion fired on fp32 tiles
               ///< (promotion instead of convergence: fp32 never converges)
};

/// Per-run precision accounting of the mixed-precision loop (reported via
/// OrderNCalculator::numerics_stats()).
struct NumericsStats {
  int fp32_iterations = 0;  ///< iterations whose SpMMs ran on fp32 tiles
  int fp64_iterations = 0;  ///< iterations whose SpMMs ran on fp64 tiles
  /// 1-based iteration whose end promoted the density matrix to fp64
  /// (0 = no promotion happened: pure-fp64 run, or fp32 exhausted
  /// max_iterations).
  int promoted_at = 0;
  PromotionTrigger trigger = PromotionTrigger::kNone;
};

/// Result of a purification run.
struct PurificationResult {
  /// Spinless P on the blocked substrate, symmetric-half stored
  /// (eigenvalues in [0,1], tr = n_occ).  Use
  /// SparseMatrix::from_block(density.to_full()) for a scalar-CSR view.
  BlockSparseMatrix density;
  double band_energy = 0.0;      ///< 2 tr(P H)  (spin degeneracy)
  int iterations = 0;
  bool converged = false;
  /// Set (with converged = false) when purify_with_chemical_potential's
  /// bisection never matched the electron count -- the metallic failure
  /// mode, distinguished from a plain stall so the guardrails can classify
  /// it as FailureClass::kMuBisectionMiss.
  bool mu_miss = false;
  double idempotency_error = 0.0;  ///< final tr(P - P^2)
  double fill_fraction = 0.0;      ///< logical nnz(P) / N^2
  /// Chemical potential used (grand-canonical runs only; the canonical
  /// Palser-Manolopoulos iteration never forms an explicit mu).
  double mu = 0.0;
  /// fp32/fp64 iteration split and promotion trigger (mixed mode; all
  /// zeros in fp64 mode except fp64_iterations).
  NumericsStats numerics;
};

/// Cross-step cache of the SpMM symbolic phases of a purification run,
/// indexed by multiply order within the run (first P*P, first P^2*P, ...):
/// successive runs on an unchanged bond topology walk the same pattern
/// sequence, so every multiply validates against its recorded operand
/// fingerprints and reuses the frozen output pattern.  The owner (e.g.
/// OrderNCalculator) stamps the cache with the BondTable topology version;
/// a topology change — neighbor-list rebuild, a bond crossing the hopping
/// cutoff, an atom-count change — drops every entry.  Entries that fail
/// fingerprint validation are rebuilt in place, so reuse is always safe;
/// the stamp only bounds cache growth and makes invalidation eager.
struct PatternCache {
  std::vector<BsrPattern> entries;
  std::size_t cursor = 0;       ///< next entry of the current run
  std::uint64_t topology = 0;   ///< BondTable stamp the entries belong to
  bool stamped = false;

  /// Adopt a topology stamp, dropping all entries when it changed.
  void set_topology(std::uint64_t version) {
    if (!stamped || version != topology) invalidate();
    topology = version;
    stamped = true;
  }
  void invalidate() {
    entries.clear();
    cursor = 0;
  }
  void begin_run() { cursor = 0; }
  /// Entry for the next multiply of the run (appended on first use).
  [[nodiscard]] BsrPattern* next() {
    if (cursor == entries.size()) entries.emplace_back();
    return &entries[cursor++];
  }
};

/// Persistent buffers for the purification loop.  A calculator that owns
/// one across MD steps keeps every intermediate (P^2, P^3, staging rows)
/// at steady-state capacity, so the per-step loop performs no allocation
/// beyond the density matrix handed back in the result.
struct PurificationWorkspace {
  BlockSparseMatrix p, p2, p3, tmp;
  /// Identity operand of the initial linear map, rebuilt only when the
  /// problem size or block size changes.
  BlockSparseMatrix eye;
  BsrWorkspace scratch;
  /// Frozen symbolic SpMM patterns reused across runs (see PatternCache).
  PatternCache patterns;
};

/// Canonical Palser-Manolopoulos purification of the (symmetric) blocked
/// Hamiltonian `h` with `n_occupied` doubly-occupied states.  Half-stored
/// operands run directly; full-stored ones are converted on entry.
///
/// Converges for systems with a HOMO-LUMO gap; metallic spectra stall (the
/// result reports converged = false).  `workspace` is optional; passing a
/// persistent one eliminates per-call allocation and enables cross-run
/// pattern reuse.
[[nodiscard]] PurificationResult palser_manolopoulos(
    const BlockSparseMatrix& h, int n_occupied,
    const PurificationOptions& options = {},
    PurificationWorkspace* workspace = nullptr);

/// Scalar-CSR convenience overload: converts to the blocked symmetric-half
/// substrate (4x4 tiles when the dimension allows, scalar tiles otherwise)
/// and runs the blocked loop.  Prefer the block_dims overload when the
/// orbital structure is known — see natural_block_size().
[[nodiscard]] PurificationResult palser_manolopoulos(
    const SparseMatrix& h, int n_occupied,
    const PurificationOptions& options = {});

/// Scalar-CSR overload with an explicit per-atom block layout (for a
/// tight-binding Hamiltonian: tb::orbital_block_dims(model, system)).
/// This is the correct entry point for multi-species models — the block
/// structure is a property of the model, never of the dimension.
[[nodiscard]] PurificationResult palser_manolopoulos(
    const SparseMatrix& h, const std::vector<std::uint32_t>& block_dims,
    int n_occupied, const PurificationOptions& options = {});

/// Grand-canonical McWeeny purification at fixed chemical potential `mu`:
/// start from the Gershgorin-scaled step-function seed
///   X0 = 1/2 I + (mu I - H) / (2 W),  W = max(hi - mu, mu - lo),
/// and iterate X <- 3 X^2 - 2 X^3, which drives every eigenvalue
/// monotonically to 1 (below mu) or 0 (above mu).  Unlike the canonical
/// loop the electron count is an *output* (tr P), so this is the building
/// block for fractional-occupation / Fermi-level searches on systems whose
/// integer filling is not known a priori.  result.mu echoes `mu`.
[[nodiscard]] PurificationResult purify_grand_canonical(
    const BlockSparseMatrix& h, double mu,
    const PurificationOptions& options = {},
    PurificationWorkspace* workspace = nullptr);

/// Chemical-potential search: bisect mu within the Gershgorin bounds of
/// `h` until the grand-canonical purification at mu yields
/// tr(P) = n_occupied (within 0.25 states), then return that run's result
/// (result.mu holds the located Fermi level).  Needs a gap at the Fermi
/// level to land on an integer count — metallic spectra at T = 0 report
/// converged = false when the count cannot be matched.  Finite-T
/// (Fermi-Dirac) occupations inside the O(N) loop are out of scope here;
/// the exact-diagonalization path owns fractional occupation (see
/// tb::occupy in src/tb/occupations.hpp).
[[nodiscard]] PurificationResult purify_with_chemical_potential(
    const BlockSparseMatrix& h, int n_occupied,
    const PurificationOptions& options = {},
    PurificationWorkspace* workspace = nullptr);

/// Tile edge the modelless CSR overload falls back on for an n-dimensional
/// operand: the 4x4 orbital block of the legacy sp models when it divides
/// n, else scalar.  Model-aware callers should pass
/// tb::orbital_block_dims() to the block_dims overload instead of using
/// this guess.
[[nodiscard]] std::size_t natural_block_size(std::size_t n);

}  // namespace tbmd::onx
