#pragma once

/// \file purification.hpp
/// \brief Canonical density-matrix purification (Palser-Manolopoulos).
///
/// The O(N) alternative to exact diagonalization: starting from a linear
/// map of H whose spectrum lies in [0, 1] and whose trace equals the number
/// of occupied states, iterate trace-conserving McWeeny-type polynomials
/// until the density matrix is idempotent.  With threshold truncation the
/// cost per iteration is O(N) for gapped systems — this is the method the
/// TBMD community adopted to break the O(N^3) wall that the paper's
/// evaluation section quantifies.

#include "src/onx/sparse.hpp"

namespace tbmd::onx {

/// Options for the purification loop.
struct PurificationOptions {
  /// Magnitude below which matrix entries are dropped after each product.
  /// 0 keeps everything (exact arithmetic up to roundoff).
  double drop_tolerance = 1e-7;
  /// Converged when tr(P - P^2) / N falls below this.
  double idempotency_tolerance = 1e-10;
  int max_iterations = 100;
};

/// Result of a purification run.
struct PurificationResult {
  SparseMatrix density;          ///< spinless P: eigenvalues in [0,1], tr = n_occ
  double band_energy = 0.0;      ///< 2 tr(P H)  (spin degeneracy)
  int iterations = 0;
  bool converged = false;
  double idempotency_error = 0.0;  ///< final tr(P - P^2)
  double fill_fraction = 0.0;      ///< nnz(P) / N^2
};

/// Canonical Palser-Manolopoulos purification of the (symmetric) sparse
/// Hamiltonian `h` with `n_occupied` doubly-occupied states.
///
/// Converges for systems with a HOMO-LUMO gap; metallic spectra stall (the
/// result reports converged = false).
[[nodiscard]] PurificationResult palser_manolopoulos(
    const SparseMatrix& h, int n_occupied, const PurificationOptions& options = {});

}  // namespace tbmd::onx
