#include "src/onx/on_calculator.hpp"

#include <algorithm>
#include <utility>

#include "src/tb/bond_table.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/repulsive.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const tb::BondTable& table) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_sparse_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_sparse_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  const std::size_t norb = table.orbital_count();

  std::vector<std::vector<std::pair<std::size_t, double>>> rows(norb);

  // The table's per-atom adjacency is already sorted by neighbor index, so
  // each CSR row comes out ordered in one pass; `transposed` entries read
  // the shared half-bond block column-major (B^T).  Stored blocks are
  // orbs_i x orbs_j row-major, so a transposed read of (my orbital a,
  // neighbor orbital c) indexes row c with my orbital count as the stride.
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t oi = table.orbital_offset(i);
    const int bsi = table.atom_orbitals(i);
    const auto si =
        static_cast<std::size_t>(model.species_index(system.species()[i]));
    for (int a = 0; a < bsi; ++a) {
      auto& row = rows[oi + a];
      const double ea = model.onsite_energy(si, a);
      bool onsite_done = false;
      for (const tb::BondTable::AtomBond* ab = table.atom_begin(i);
           ab != table.atom_end(i); ++ab) {
        if (table.hopping_zero(ab->bond)) continue;
        if (!onsite_done && ab->neighbor > i) {
          row.emplace_back(oi + a, ea);
          onsite_done = true;
        }
        const double* b = table.block(ab->bond);
        const std::size_t oj = table.orbital_offset(ab->neighbor);
        const int bsj = table.atom_orbitals(ab->neighbor);
        for (int c = 0; c < bsj; ++c) {
          const double v = ab->transposed ? b[bsi * c + a] : b[bsj * a + c];
          if (v != 0.0) row.emplace_back(oj + c, v);
        }
      }
      if (!onsite_done) row.emplace_back(oi + a, ea);
    }
  }

  return SparseMatrix::from_rows(norb, rows);
}

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const NeighborList& list) {
  tb::BondTable table;
  table.build(model, system, list, tb::BondTable::Mode::kBlocks);
  return build_sparse_hamiltonian(model, system, table);
}

void build_block_hamiltonian(const tb::TbModel& model, const System& system,
                             const tb::BondTable& table,
                             BlockSparseMatrix& out, BsrWorkspace& ws) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_block_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_block_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  if (ws.row_cols.size() < n) ws.row_cols.resize(n);
  if (ws.row_vals.size() < n) ws.row_vals.resize(n);

  // Symmetric-half assembly: the diagonal onsite tile plus one
  // orbs(i) x orbs(j) tile per atom pair within hopping range with
  // neighbor > i.  Half pairs are stored with i < j, so every kept
  // adjacency entry reads its hopping block untransposed, and the onsite
  // tile (column i) leads each sorted block row.
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < n; ++i) {
    const auto bsi = static_cast<std::size_t>(table.atom_orbitals(i));
    const auto si =
        static_cast<std::size_t>(model.species_index(system.species()[i]));
    auto& cols = ws.row_cols[i];
    auto& vals = ws.row_vals[i];
    cols.clear();
    vals.clear();
    cols.push_back(static_cast<std::uint32_t>(i));
    vals.resize(bsi * bsi, 0.0);
    for (std::size_t a = 0; a < bsi; ++a) {
      vals[(bsi + 1) * a] = model.onsite_energy(si, static_cast<int>(a));
    }
    for (const tb::BondTable::AtomBond* ab = table.atom_begin(i);
         ab != table.atom_end(i); ++ab) {
      if (ab->neighbor < i || table.hopping_zero(ab->bond)) continue;
      const double* b = table.block(ab->bond);
      const auto bsj =
          static_cast<std::size_t>(table.atom_orbitals(ab->neighbor));
      cols.push_back(ab->neighbor);
      const std::size_t at = vals.size();
      vals.resize(at + bsi * bsj);
      double* tile = vals.data() + at;
      if (ab->transposed != 0) {
        // Stored block is orbs(neighbor) x orbs(i) row-major (stride bsi).
        for (std::size_t a = 0; a < bsi; ++a) {
          for (std::size_t c = 0; c < bsj; ++c) {
            tile[bsj * a + c] = b[bsi * c + a];
          }
        }
      } else {
        std::copy(b, b + bsi * bsj, tile);
      }
    }
  }
  bsr_assemble(tb::orbital_block_dims(model, system), ws, out,
               /*symmetric_half=*/true);
}

BlockSparseMatrix build_block_hamiltonian(const tb::TbModel& model,
                                          const System& system,
                                          const tb::BondTable& table) {
  BlockSparseMatrix out;
  BsrWorkspace ws;
  build_block_hamiltonian(model, system, table, out, ws);
  return out;
}

namespace {

/// Shared Hellmann-Feynman contraction skeleton of the two
/// band_forces_sparse overloads.  `rho_tile(q, rho, sz)` fills rho[sz]
/// (sz = orbs_i(q) * orbs_j(q), at most 81) with the spin-summed density
/// block 2 * P(oi+a, oj+b) of bond q (row-major [a][b]) and returns false
/// when the bond is absent from P; everything else -- the derivative
/// contraction, the force sign convention and the virial accumulation --
/// lives only here.
template <typename RhoTile>
std::vector<Vec3> band_forces_contract(const tb::BondTable& table,
                                       Mat3* virial, const RhoTile& rho_tile) {
  TBMD_REQUIRE(table.has_derivatives(),
               "band_forces_sparse: bond table was built without derivatives");
  const std::size_t n = table.atoms();
  std::vector<Vec3> forces(n, Vec3{});
  if (table.size() == 0) return forces;

  par::ThreadPartials<Vec3> fpartial(n);
  par::ThreadPartials<Mat3> wpartial(1);

  // Atom-indexed static partition over the neighbor-sorted adjacency
  // (each bond once, from its i endpoint) rather than a dynamic chunking
  // of the flat bond list: both the dynamic assignment and the bond count
  // (which tracks the Verlet rebuild history) would otherwise change the
  // per-thread summation order between runs, breaking checkpoint
  // bit-identity.
#pragma omp parallel
  {
    Vec3* local = fpartial.local();
    Mat3& wlocal = *wpartial.local();
#pragma omp for schedule(static) nowait
    for (std::size_t atom = 0; atom < n; ++atom)
    for (const tb::BondTable::AtomBond* nb = table.atom_begin(atom);
         nb != table.atom_end(atom); ++nb) {
      if (nb->transposed != 0) continue;  // count each bond once
      const std::size_t q = nb->bond;
      if (table.hopping_zero(q)) continue;

      const std::size_t sz = static_cast<std::size_t>(table.orbs_i(q)) *
                             static_cast<std::size_t>(table.orbs_j(q));
      double rho[81];
      if (!rho_tile(q, rho, sz)) continue;
      const double* d = table.derivative(q, 0);
      Vec3 dedd{};
      if (sz == 16) {
        // Compile-time trip counts keep the uniform sp contraction's code
        // generation (and thus its floating-point summation order)
        // bit-identical to the pre-variable-block kernel.
        for (std::size_t ab = 0; ab < 16; ++ab) {
          const double rho_ab = rho[ab];
          if (rho_ab == 0.0) continue;
          dedd.x += 2.0 * rho_ab * d[ab];
          dedd.y += 2.0 * rho_ab * d[16 + ab];
          dedd.z += 2.0 * rho_ab * d[32 + ab];
        }
      } else {
        for (std::size_t ab = 0; ab < sz; ++ab) {
          const double rho_ab = rho[ab];
          if (rho_ab == 0.0) continue;
          dedd.x += 2.0 * rho_ab * d[ab];
          dedd.y += 2.0 * rho_ab * d[sz + ab];
          dedd.z += 2.0 * rho_ab * d[2 * sz + ab];
        }
      }
      local[table.j(q)] -= dedd;
      local[table.i(q)] += dedd;
      wlocal -= outer(table.bond(q), dedd);
    }
  }
  const Vec3* f = fpartial.reduce();
  for (std::size_t i = 0; i < n; ++i) forces[i] = f[i];
  if (virial != nullptr) *virial += *wpartial.reduce();
  return forces;
}

}  // namespace

std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                     const SparseMatrix& p, Mat3* virial) {
  return band_forces_contract(
      table, virial,
      [&table, &p](std::size_t q, double* rho, std::size_t /*sz*/) {
        const std::size_t oi = table.orbital_offset(table.i(q));
        const std::size_t oj = table.orbital_offset(table.j(q));
        const auto bsi = static_cast<std::size_t>(table.orbs_i(q));
        const auto bsj = static_cast<std::size_t>(table.orbs_j(q));
        for (std::size_t a = 0; a < bsi; ++a) {
          for (std::size_t b = 0; b < bsj; ++b) {
            rho[bsj * a + b] = 2.0 * p.get(oi + a, oj + b);  // spin factor
          }
        }
        return true;
      });
}

std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                     const BlockSparseMatrix& p,
                                     Mat3* virial) {
  // One block row per atom (true for the legacy uniform 4x4 layout and
  // for every per-atom variable layout, including all-equal dims that
  // normalized to uniform storage).
  TBMD_REQUIRE(p.size() == table.orbital_count() &&
                   p.block_rows() == table.atoms(),
               "band_forces_sparse: density matrix layout does not match "
               "the bond table's orbital blocks");
  return band_forces_contract(
      table, virial,
      [&table, &p](std::size_t q, double* rho, std::size_t sz) {
        // One tile fetch covers all orbital pairs of the bond.  Half pairs
        // satisfy i < j, so the fetch is always an upper-triangle tile:
        // the contraction reads the symmetric-half density matrix directly
        // and never needs a full-pattern (mirror-expanded) copy.
        const double* tile = p.find_block(table.i(q), table.j(q));
        if (tile == nullptr) return false;
        for (std::size_t ab = 0; ab < sz; ++ab) {
          rho[ab] = 2.0 * tile[ab];  // spin factor
        }
        return true;
      });
}

std::vector<Vec3> band_forces_sparse(const tb::TbModel& model,
                                     const System& system,
                                     const NeighborList& list,
                                     const SparseMatrix& p, Mat3* virial) {
  tb::BondTable table;
  table.build(model, system, list, tb::BondTable::Mode::kBlocksAndDerivatives);
  return band_forces_sparse(table, p, virial);
}

OrderNCalculator::OrderNCalculator(tb::TbModel model, OrderNOptions options)
    : model_(std::move(model)), options_(options) {}

ForceResult OrderNCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  if (n == 0) return result;

  const int electrons = system.total_valence_electrons();
  TBMD_REQUIRE(electrons % 2 == 0,
               "OrderNCalculator: odd electron counts are not supported");

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {model_.cutoff(), options_.skin});
  }

  // Shared per-step bond table: the sparse assembly, the sparse force
  // contraction and the repulsive term below read the same blocks, so the
  // O(N) path no longer re-derives any Slater-Koster quantity.
  {
    auto t = timers_.scope("bondtable");
    table_.build(model_, system, list_,
                 tb::BondTable::Mode::kBlocksAndDerivatives);
  }

  // An atom-count shrink would otherwise leave the workspace staging rows
  // sized for the historical maximum forever; the pattern cache is keyed
  // on the topology stamp, which an atom-count change always bumps.
  if (n < last_atoms_) {
    std::size_t max_bs = tb::TbModel::kOrbitalsPerAtom;
    for (const tb::SpeciesParams& sp : model_.species) {
      max_bs = std::max(max_bs, static_cast<std::size_t>(sp.orbitals));
    }
    workspace_.scratch.shrink({n, max_bs});
  }
  last_atoms_ = n;
  workspace_.patterns.set_topology(table_.topology_version());
  if (!options_.reuse_patterns) workspace_.patterns.invalidate();

  {
    auto t = timers_.scope("hamiltonian");
    build_block_hamiltonian(model_, system, table_, hamiltonian_,
                            workspace_.scratch);
  }

  {
    auto t = timers_.scope("purification");
    // Recycle the previous step's density storage (the largest buffer of
    // the whole O(N) step) into the workspace before it is overwritten:
    // the loop's first combine_into then reuses its capacity instead of
    // regrowing ws.p from scratch.
    workspace_.p = std::move(last_.density);
    last_ = palser_manolopoulos(hamiltonian_, electrons / 2,
                                options_.purification, &workspace_);
  }

  {
    auto t = timers_.scope("forces");
    result.forces = band_forces_sparse(table_, last_.density, &result.virial);
  }

  tb::RepulsiveResult rep;
  {
    auto t = timers_.scope("repulsive");
    rep = tb::repulsive_energy_forces(model_, table_);
  }

  for (std::size_t i = 0; i < n; ++i) result.forces[i] += rep.forces[i];
  result.virial += rep.virial;
  result.band_energy = last_.band_energy;
  result.repulsive_energy = rep.energy;
  result.energy = last_.band_energy + rep.energy;
  return result;
}

}  // namespace tbmd::onx
