#include "src/onx/on_calculator.hpp"

#include <algorithm>
#include <utility>

#include "src/tb/bond_table.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/repulsive.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const tb::BondTable& table) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_sparse_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_sparse_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  const std::size_t norb = 4 * n;

  std::vector<std::vector<std::pair<std::size_t, double>>> rows(norb);

  // The table's per-atom adjacency is already sorted by neighbor index, so
  // each CSR row comes out ordered in one pass; `transposed` entries read
  // the shared half-bond block column-major (B^T).
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < n; ++i) {
    const double onsite[4] = {model.e_s, model.e_p, model.e_p, model.e_p};
    for (int a = 0; a < 4; ++a) {
      auto& row = rows[4 * i + a];
      bool onsite_done = false;
      for (const tb::BondTable::AtomBond* ab = table.atom_begin(i);
           ab != table.atom_end(i); ++ab) {
        if (table.hopping_zero(ab->bond)) continue;
        if (!onsite_done && ab->neighbor > i) {
          row.emplace_back(4 * i + a, onsite[a]);
          onsite_done = true;
        }
        const double* b = table.block(ab->bond);
        for (int c = 0; c < 4; ++c) {
          const double v = ab->transposed ? b[4 * c + a] : b[4 * a + c];
          if (v != 0.0) row.emplace_back(4 * ab->neighbor + c, v);
        }
      }
      if (!onsite_done) row.emplace_back(4 * i + a, onsite[a]);
    }
  }

  return SparseMatrix::from_rows(norb, rows);
}

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const NeighborList& list) {
  tb::BondTable table;
  table.build(model, system, list, tb::BondTable::Mode::kBlocks);
  return build_sparse_hamiltonian(model, system, table);
}

std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                     const SparseMatrix& p, Mat3* virial) {
  TBMD_REQUIRE(table.has_derivatives(),
               "band_forces_sparse: bond table was built without derivatives");
  const std::size_t n = table.atoms();
  std::vector<Vec3> forces(n, Vec3{});
  if (table.size() == 0) return forces;

  par::ThreadPartials<Vec3> fpartial(n);
  par::ThreadPartials<Mat3> wpartial(1);

#pragma omp parallel
  {
    Vec3* local = fpartial.local();
    Mat3& wlocal = *wpartial.local();
#pragma omp for schedule(dynamic, 32) nowait
    for (std::size_t q = 0; q < table.size(); ++q) {
      if (table.hopping_zero(q)) continue;

      const std::size_t oi = 4 * table.i(q);
      const std::size_t oj = 4 * table.j(q);
      const double* d = table.derivative(q, 0);
      Vec3 dedd{};
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          const double rho_ab = 2.0 * p.get(oi + a, oj + b);  // spin factor
          if (rho_ab == 0.0) continue;
          const int ab = 4 * a + b;
          dedd.x += 2.0 * rho_ab * d[ab];
          dedd.y += 2.0 * rho_ab * d[16 + ab];
          dedd.z += 2.0 * rho_ab * d[32 + ab];
        }
      }
      local[table.j(q)] -= dedd;
      local[table.i(q)] += dedd;
      wlocal -= outer(table.bond(q), dedd);
    }
  }
  const Vec3* f = fpartial.reduce();
  for (std::size_t i = 0; i < n; ++i) forces[i] = f[i];
  if (virial != nullptr) *virial += *wpartial.reduce();
  return forces;
}

std::vector<Vec3> band_forces_sparse(const tb::TbModel& model,
                                     const System& system,
                                     const NeighborList& list,
                                     const SparseMatrix& p, Mat3* virial) {
  tb::BondTable table;
  table.build(model, system, list, tb::BondTable::Mode::kBlocksAndDerivatives);
  return band_forces_sparse(table, p, virial);
}

OrderNCalculator::OrderNCalculator(tb::TbModel model, OrderNOptions options)
    : model_(std::move(model)), options_(options) {}

ForceResult OrderNCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  if (n == 0) return result;

  const int electrons = system.total_valence_electrons();
  TBMD_REQUIRE(electrons % 2 == 0,
               "OrderNCalculator: odd electron counts are not supported");

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {model_.cutoff(), options_.skin});
  }

  // Shared per-step bond table: the sparse assembly, the sparse force
  // contraction and the repulsive term below read the same blocks, so the
  // O(N) path no longer re-derives any Slater-Koster quantity.
  {
    auto t = timers_.scope("bondtable");
    table_.build(model_, system, list_,
                 tb::BondTable::Mode::kBlocksAndDerivatives);
  }

  SparseMatrix h;
  {
    auto t = timers_.scope("hamiltonian");
    h = build_sparse_hamiltonian(model_, system, table_);
  }

  {
    auto t = timers_.scope("purification");
    last_ = palser_manolopoulos(h, electrons / 2, options_.purification);
  }

  {
    auto t = timers_.scope("forces");
    result.forces = band_forces_sparse(table_, last_.density, &result.virial);
  }

  tb::RepulsiveResult rep;
  {
    auto t = timers_.scope("repulsive");
    rep = tb::repulsive_energy_forces(model_, table_);
  }

  for (std::size_t i = 0; i < n; ++i) result.forces[i] += rep.forces[i];
  result.virial += rep.virial;
  result.band_energy = last_.band_energy;
  result.repulsive_energy = rep.energy;
  result.energy = last_.band_energy + rep.energy;
  return result;
}

}  // namespace tbmd::onx
