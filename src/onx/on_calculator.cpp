#include "src/onx/on_calculator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/io/logger.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/repulsive.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const tb::BondTable& table) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_sparse_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_sparse_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  const std::size_t norb = table.orbital_count();

  std::vector<std::vector<std::pair<std::size_t, double>>> rows(norb);

  // The table's per-atom adjacency is already sorted by neighbor index, so
  // each CSR row comes out ordered in one pass; `transposed` entries read
  // the shared half-bond block column-major (B^T).  Stored blocks are
  // orbs_i x orbs_j row-major, so a transposed read of (my orbital a,
  // neighbor orbital c) indexes row c with my orbital count as the stride.
#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t oi = table.orbital_offset(i);
    const int bsi = table.atom_orbitals(i);
    const auto si =
        static_cast<std::size_t>(model.species_index(system.species()[i]));
    for (int a = 0; a < bsi; ++a) {
      auto& row = rows[oi + a];
      const double ea = model.onsite_energy(si, a);
      bool onsite_done = false;
      for (const tb::BondTable::AtomBond* ab = table.atom_begin(i);
           ab != table.atom_end(i); ++ab) {
        if (table.hopping_zero(ab->bond)) continue;
        if (!onsite_done && ab->neighbor > i) {
          row.emplace_back(oi + a, ea);
          onsite_done = true;
        }
        const double* b = table.block(ab->bond);
        const std::size_t oj = table.orbital_offset(ab->neighbor);
        const int bsj = table.atom_orbitals(ab->neighbor);
        for (int c = 0; c < bsj; ++c) {
          const double v = ab->transposed ? b[bsi * c + a] : b[bsj * a + c];
          if (v != 0.0) row.emplace_back(oj + c, v);
        }
      }
      if (!onsite_done) row.emplace_back(oi + a, ea);
    }
  }

  return SparseMatrix::from_rows(norb, rows);
}

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const NeighborList& list) {
  tb::BondTable table;
  table.build(model, system, list, tb::BondTable::Mode::kBlocks);
  return build_sparse_hamiltonian(model, system, table);
}

void build_block_hamiltonian(const tb::TbModel& model, const System& system,
                             const tb::BondTable& table,
                             BlockSparseMatrix& out, BsrWorkspace& ws) {
  TBMD_REQUIRE(table.atoms() == system.size(),
               "build_block_hamiltonian: bond table size mismatch");
  TBMD_REQUIRE(table.has_blocks(),
               "build_block_hamiltonian: bond table was built without blocks");
  const std::size_t n = system.size();
  if (ws.row_cols.size() < n) ws.row_cols.resize(n);
  if (ws.row_vals.size() < n) ws.row_vals.resize(n);

  // Symmetric-half assembly: the diagonal onsite tile plus one
  // orbs(i) x orbs(j) tile per atom pair within hopping range with
  // neighbor > i.  Half pairs are stored with i < j, so every kept
  // adjacency entry reads its hopping block untransposed, and the onsite
  // tile (column i) leads each sorted block row.  A non-empty ws.domains
  // chunk list shards the sweep domain-by-domain (same rows, same
  // per-row work -> bit-identical output) so first-touch of the staging
  // rows matches the SpMM's stable thread -> domain ownership.
  const std::vector<std::size_t>& dom = ws.domains;
  const bool sharded = dom.size() > 2 && dom.front() == 0 && dom.back() == n;
#pragma omp parallel
  {
    const auto assemble_row = [&](std::size_t i) {
      const auto bsi = static_cast<std::size_t>(table.atom_orbitals(i));
      const auto si =
          static_cast<std::size_t>(model.species_index(system.species()[i]));
      auto& cols = ws.row_cols[i];
      auto& vals = ws.row_vals[i];
      cols.clear();
      vals.clear();
      cols.push_back(static_cast<std::uint32_t>(i));
      vals.resize(bsi * bsi, 0.0);
      for (std::size_t a = 0; a < bsi; ++a) {
        vals[(bsi + 1) * a] = model.onsite_energy(si, static_cast<int>(a));
      }
      for (const tb::BondTable::AtomBond* ab = table.atom_begin(i);
           ab != table.atom_end(i); ++ab) {
        if (ab->neighbor < i || table.hopping_zero(ab->bond)) continue;
        const double* b = table.block(ab->bond);
        const auto bsj =
            static_cast<std::size_t>(table.atom_orbitals(ab->neighbor));
        cols.push_back(ab->neighbor);
        const std::size_t at = vals.size();
        vals.resize(at + bsi * bsj);
        double* tile = vals.data() + at;
        if (ab->transposed != 0) {
          // Stored block is orbs(neighbor) x orbs(i) row-major (stride bsi).
          for (std::size_t a = 0; a < bsi; ++a) {
            for (std::size_t c = 0; c < bsj; ++c) {
              tile[bsj * a + c] = b[bsi * c + a];
            }
          }
        } else {
          std::copy(b, b + bsi * bsj, tile);
        }
      }
    };
    if (sharded) {
#pragma omp for schedule(static, 1)
      for (std::size_t d = 0; d < dom.size() - 1; ++d) {
        for (std::size_t i = dom[d]; i < dom[d + 1]; ++i) assemble_row(i);
      }
    } else {
#pragma omp for schedule(dynamic, 16)
      for (std::size_t i = 0; i < n; ++i) assemble_row(i);
    }
  }
  bsr_assemble(tb::orbital_block_dims(model, system), ws, out,
               /*symmetric_half=*/true);
}

BlockSparseMatrix build_block_hamiltonian(const tb::TbModel& model,
                                          const System& system,
                                          const tb::BondTable& table) {
  BlockSparseMatrix out;
  BsrWorkspace ws;
  build_block_hamiltonian(model, system, table, out, ws);
  return out;
}

namespace {

/// Shared Hellmann-Feynman contraction skeleton of the two
/// band_forces_sparse overloads.  `rho_tile(q, rho, sz)` fills rho[sz]
/// (sz = orbs_i(q) * orbs_j(q), at most 81) with the spin-summed density
/// block 2 * P(oi+a, oj+b) of bond q (row-major [a][b]) and returns false
/// when the bond is absent from P; everything else -- the derivative
/// contraction, the force sign convention and the virial accumulation --
/// lives only here.
template <typename RhoTile>
std::vector<Vec3> band_forces_contract(const tb::BondTable& table,
                                       Mat3* virial, const RhoTile& rho_tile) {
  TBMD_REQUIRE(table.has_derivatives(),
               "band_forces_sparse: bond table was built without derivatives");
  const std::size_t n = table.atoms();
  std::vector<Vec3> forces(n, Vec3{});
  if (table.size() == 0) return forces;

  // Two-pass contraction, bit-identical at any OMP_NUM_THREADS and across
  // checkpoint kill-and-resume: pass 1 computes each bond's dE/dd exactly
  // once (owned by its i endpoint in the neighbor-sorted adjacency) into a
  // per-bond slot plus a per-atom virial partial -- every slot has exactly
  // one writer -- and pass 2 gathers each atom's force over its full
  // adjacency in sorted neighbor order.  No summation order depends on the
  // thread partition, unlike a ThreadPartials scatter whose tree reduction
  // regroups terms with the team size.
  std::vector<Vec3> dedd_bond(table.size(), Vec3{});
  std::vector<Mat3> watom(virial != nullptr ? n : 0, Mat3{});

#pragma omp parallel for schedule(static)
  for (std::size_t atom = 0; atom < n; ++atom) {
    Mat3 w{};
    for (const tb::BondTable::AtomBond* nb = table.atom_begin(atom);
         nb != table.atom_end(atom); ++nb) {
      if (nb->transposed != 0) continue;  // compute each bond once
      const std::size_t q = nb->bond;
      if (table.hopping_zero(q)) continue;

      const std::size_t sz = static_cast<std::size_t>(table.orbs_i(q)) *
                             static_cast<std::size_t>(table.orbs_j(q));
      double rho[81];
      if (!rho_tile(q, rho, sz)) continue;
      const double* d = table.derivative(q, 0);
      Vec3 dedd{};
      if (sz == 16) {
        // Compile-time trip counts keep the uniform sp contraction's code
        // generation (and thus its floating-point summation order)
        // bit-identical to the pre-variable-block kernel.
        for (std::size_t ab = 0; ab < 16; ++ab) {
          const double rho_ab = rho[ab];
          if (rho_ab == 0.0) continue;
          dedd.x += 2.0 * rho_ab * d[ab];
          dedd.y += 2.0 * rho_ab * d[16 + ab];
          dedd.z += 2.0 * rho_ab * d[32 + ab];
        }
      } else {
        for (std::size_t ab = 0; ab < sz; ++ab) {
          const double rho_ab = rho[ab];
          if (rho_ab == 0.0) continue;
          dedd.x += 2.0 * rho_ab * d[ab];
          dedd.y += 2.0 * rho_ab * d[sz + ab];
          dedd.z += 2.0 * rho_ab * d[2 * sz + ab];
        }
      }
      dedd_bond[q] = dedd;
      if (virial != nullptr) w -= outer(table.bond(q), dedd);
    }
    if (virial != nullptr) watom[atom] = w;
  }

#pragma omp parallel for schedule(static)
  for (std::size_t atom = 0; atom < n; ++atom) {
    Vec3 f{};
    for (const tb::BondTable::AtomBond* nb = table.atom_begin(atom);
         nb != table.atom_end(atom); ++nb) {
      // Owned entries (transposed == 0) have atom == i(q) -> +dE/dd;
      // mirror entries have atom == j(q) -> -dE/dd.  Skipped bonds hold
      // exact zeros and drop out.
      const Vec3& g = dedd_bond[nb->bond];
      if (nb->transposed != 0) {
        f -= g;
      } else {
        f += g;
      }
    }
    forces[atom] = f;
  }

  if (virial != nullptr) {
    Mat3 w{};
    for (std::size_t i = 0; i < n; ++i) w += watom[i];
    *virial += w;
  }
  return forces;
}

}  // namespace

std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                     const SparseMatrix& p, Mat3* virial) {
  return band_forces_contract(
      table, virial,
      [&table, &p](std::size_t q, double* rho, std::size_t /*sz*/) {
        const std::size_t oi = table.orbital_offset(table.i(q));
        const std::size_t oj = table.orbital_offset(table.j(q));
        const auto bsi = static_cast<std::size_t>(table.orbs_i(q));
        const auto bsj = static_cast<std::size_t>(table.orbs_j(q));
        for (std::size_t a = 0; a < bsi; ++a) {
          for (std::size_t b = 0; b < bsj; ++b) {
            rho[bsj * a + b] = 2.0 * p.get(oi + a, oj + b);  // spin factor
          }
        }
        return true;
      });
}

std::vector<Vec3> band_forces_sparse(const tb::BondTable& table,
                                     const BlockSparseMatrix& p,
                                     Mat3* virial) {
  // One block row per atom (true for the legacy uniform 4x4 layout and
  // for every per-atom variable layout, including all-equal dims that
  // normalized to uniform storage).
  TBMD_REQUIRE(p.size() == table.orbital_count() &&
                   p.block_rows() == table.atoms(),
               "band_forces_sparse: density matrix layout does not match "
               "the bond table's orbital blocks");
  return band_forces_contract(
      table, virial,
      [&table, &p](std::size_t q, double* rho, std::size_t sz) {
        // One tile fetch covers all orbital pairs of the bond.  Half pairs
        // satisfy i < j, so the fetch is always an upper-triangle tile:
        // the contraction reads the symmetric-half density matrix directly
        // and never needs a full-pattern (mirror-expanded) copy.
        const double* tile = p.find_block(table.i(q), table.j(q));
        if (tile == nullptr) return false;
        for (std::size_t ab = 0; ab < sz; ++ab) {
          rho[ab] = 2.0 * tile[ab];  // spin factor
        }
        return true;
      });
}

std::vector<Vec3> band_forces_sparse(const tb::TbModel& model,
                                     const System& system,
                                     const NeighborList& list,
                                     const SparseMatrix& p, Mat3* virial) {
  tb::BondTable table;
  table.build(model, system, list, tb::BondTable::Mode::kBlocksAndDerivatives);
  return band_forces_sparse(table, p, virial);
}

OrderNCalculator::OrderNCalculator(tb::TbModel model, OrderNOptions options)
    : model_(std::move(model)), options_(options) {}

linalg::SpectralBounds OrderNCalculator::step_spectral_bounds() {
  const std::uint64_t stamp = table_.topology_version();
  const std::uint64_t fp = hamiltonian_.pattern_fingerprint();
  const std::vector<double>& vals = hamiltonian_.values();
  bool refresh = !bounds_valid_ || bounds_topology_ != stamp ||
                 bounds_fingerprint_ != fp || h_ref_.size() != vals.size();
  double drift = 0.0;
  if (!refresh) {
    // Frobenius norm of dH since the last exact refresh: no eigenvalue can
    // have moved further than ||dH||_2 <= ||dH||_F, so widening the cached
    // enclosure by the drift stays rigorous.  Fixed 256-way chunking with
    // a serial sum in chunk order keeps the norm (and hence the seed)
    // bit-identical at any thread count.
    const std::size_t m = vals.size();
    constexpr std::size_t kChunks = 256;
    double partial[kChunks];
#pragma omp parallel for schedule(static)
    for (std::size_t c = 0; c < kChunks; ++c) {
      const std::size_t b0 = (m * c) / kChunks;
      const std::size_t b1 = (m * (c + 1)) / kChunks;
      double s = 0.0;
      for (std::size_t q = b0; q < b1; ++q) {
        const double d = vals[q] - h_ref_[q];
        s += d * d;
      }
      partial[c] = s;
    }
    double s2 = 0.0;
    for (std::size_t c = 0; c < kChunks; ++c) s2 += partial[c];
    drift = std::sqrt(s2);
    // Re-anchor once the drift-widened interval is materially looser than
    // the exact one (an over-wide enclosure only flattens the purification
    // seed, costing iterations, never correctness).
    if (drift > 0.125 * std::max(cached_bounds_.width(), 1e-12)) {
      refresh = true;
    }
  }
  if (refresh) {
    cached_bounds_ = hamiltonian_.gershgorin_bounds();
    h_ref_ = vals;
    bounds_topology_ = stamp;
    bounds_fingerprint_ = fp;
    bounds_valid_ = true;
    ++bounds_refreshes_;
    return cached_bounds_;
  }
  return {cached_bounds_.lo - drift, cached_bounds_.hi + drift};
}

ForceResult OrderNCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  if (n == 0) return result;

  const int electrons = system.total_valence_electrons();
  TBMD_REQUIRE(electrons % 2 == 0,
               "OrderNCalculator: odd electron counts are not supported");

  // Effective block-row domain count: auto mode shards only when a real
  // thread team exists and the system is big enough for ~4 domains per
  // thread to stay coarse; 1 thread or an explicit `domains = 1` keeps
  // the engine on the exact pre-sharding code path.
  std::size_t ndom = 1;
  if (options_.domains == 0) {
    const auto nthreads = static_cast<std::size_t>(par::max_threads());
    if (nthreads > 1 && n >= 512) ndom = std::min(4 * nthreads, n / 64);
  } else if (options_.domains > 1) {
    ndom = std::min(static_cast<std::size_t>(options_.domains), n);
  }

  // Row partition: a spatial re-sort (applied through a permuted working
  // copy of the system) when reorder_domains asks for compact domains,
  // else contiguous equal-count chunks of the caller's row order.  Both
  // are pure functions of the current positions.
  const System* sys = &system;
  bool permuted = false;
  if (ndom > 1 && options_.reorder_domains) {
    auto t = timers_.scope("partition");
    part_ = par::spatial_domains(system.positions(), system.cell(), ndom);
    if (!part_.identity) {
      permuted = true;
      perm_system_ = System(system.cell());
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t src = part_.order[k];
        perm_system_.add_atom(system.species()[src], system.positions()[src]);
      }
      sys = &perm_system_;
    }
  } else {
    part_ = par::even_domains(n, ndom);
  }

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(sys->positions(), sys->cell(),
                 {model_.cutoff(), options_.skin});
  }

  // Shared per-step bond table: the sparse assembly, the sparse force
  // contraction and the repulsive term below read the same blocks, so the
  // O(N) path no longer re-derives any Slater-Koster quantity.
  {
    auto t = timers_.scope("bondtable");
    table_.build(model_, *sys, list_,
                 tb::BondTable::Mode::kBlocksAndDerivatives,
                 options_.bond_reuse_skin);
  }

  // An atom-count shrink would otherwise leave the workspace staging rows
  // sized for the historical maximum forever; the pattern cache is keyed
  // on the topology stamp, which an atom-count change always bumps.
  if (n < last_atoms_) {
    std::size_t max_bs = tb::TbModel::kOrbitalsPerAtom;
    for (const tb::SpeciesParams& sp : model_.species) {
      max_bs = std::max(max_bs, static_cast<std::size_t>(sp.orbitals));
    }
    workspace_.scratch.shrink({n, max_bs});
  }
  last_atoms_ = n;
  workspace_.patterns.set_topology(table_.topology_version());
  if (!options_.reuse_patterns) workspace_.patterns.invalidate();

  // Publish the domain cuts to the shared BSR scratch: the H assembly and
  // every purification SpMM then sweep domain-by-domain with stable
  // thread ownership (scheduling only -- outputs are unchanged).
  if (ndom > 1) {
    workspace_.scratch.domains = part_.domain_ptr;
  } else {
    workspace_.scratch.domains.clear();
  }

  {
    auto t = timers_.scope("hamiltonian");
    build_block_hamiltonian(model_, *sys, table_, hamiltonian_,
                            workspace_.scratch);
  }

  domain_stats_ = DomainStats{};
  domain_stats_.domains = ndom;
  domain_stats_.reordered = permuted;
  if (ndom > 1) {
    const std::vector<std::uint8_t> halo =
        par::halo_rows(part_, hamiltonian_.row_ptr(), hamiltonian_.cols());
    for (const std::uint8_t h : halo) {
      domain_stats_.halo += h;
    }
    domain_stats_.interior = n - domain_stats_.halo;
  } else {
    domain_stats_.interior = n;
  }

  // Repulsive term first: it is a pure function of the bond table (no
  // density involved), so the guarded attempt loop below never needs to
  // recompute it, and the total-force/energy sanity bounds can see it.
  tb::RepulsiveResult rep;
  {
    auto t = timers_.scope("repulsive");
    rep = tb::repulsive_energy_forces(model_, table_);
  }

  const HealthSpec& health = options_.health;
  PurificationOptions popts = options_.purification;
  if (options_.cache_spectral_bounds) {
    popts.bounds = step_spectral_bounds();
    popts.have_bounds = true;
    last_bounds_ = popts.bounds;
  }

  // Guarded step: purify + contract band forces, classify the outcome,
  // and walk the recovery ladder on a failure (health on) -- see
  // core/health_spec.hpp for the rung order.  With health off this loop
  // body runs exactly once with the caller's options: the single-attempt
  // path is bit-identical to the unguarded engine (the scans below only
  // read results, and the satellite non-convergence check costs one flag).
  int rung = 0;  // 0 = primary attempt, then ladder rungs a/b/c
  for (;;) {
    result.virial = Mat3{};
    {
      auto t = timers_.scope("purification");
      if (rung < 3) {
        // Recycle the previous density storage (the largest buffer of the
        // whole O(N) step) into the workspace before it is overwritten:
        // the first combine_into reuses its capacity instead of regrowing
        // ws.p from scratch.
        workspace_.p = std::move(last_.density);
        last_ = palser_manolopoulos(hamiltonian_, electrons / 2, popts,
                                    &workspace_);
      } else {
        last_ = exact_step_density(*sys, electrons / 2);
      }
    }
    {
      auto t = timers_.scope("forces");
      result.forces = band_forces_sparse(table_, last_.density, &result.virial);
    }

    if (!health.enabled) {
      if (!last_.converged) {
        // Satellite guardrail-off path: an unconverged density is still
        // used (historical behavior) but never silently -- it is counted
        // and logged so long sweeps can audit how often it happened.
        ++recovery_stats_.unconverged_steps;
        recovery_stats_.last_failure = last_.mu_miss
                                           ? FailureClass::kMuBisectionMiss
                                           : FailureClass::kNonConvergence;
        io::log_warn("OrderNCalculator: purification did not converge (",
                     last_.iterations, " iterations, idempotency error ",
                     last_.idempotency_error,
                     "); using the unconverged density (health checks off)");
      }
      break;
    }

    // --- classify this attempt -----------------------------------------
    FailureClass fail = FailureClass::kNone;
    if (health.check_finite) {
      if (!std::isfinite(last_.band_energy) ||
          !std::isfinite(rep.energy)) {
        fail = FailureClass::kNonFinite;
      }
      if (fail == FailureClass::kNone) {
        for (const double v : last_.density.values()) {
          if (!std::isfinite(v)) {
            fail = FailureClass::kNonFinite;
            break;
          }
        }
      }
    }
    if (fail == FailureClass::kNone && health.check_convergence &&
        !last_.converged) {
      fail = last_.mu_miss ? FailureClass::kMuBisectionMiss
                           : FailureClass::kNonConvergence;
    }
    if (fail == FailureClass::kNone) {
      // Bounds on the *total* per-atom forces and energy (band +
      // repulsive), checked in the working (possibly permuted) frame --
      // magnitudes are permutation-invariant.
      const double e_per_atom =
          std::fabs(last_.band_energy + rep.energy) / static_cast<double>(n);
      if (health.max_energy_per_atom > 0.0 &&
          e_per_atom > health.max_energy_per_atom) {
        fail = FailureClass::kEnergyBound;
      }
      for (std::size_t i = 0; fail == FailureClass::kNone && i < n; ++i) {
        const Vec3 f = result.forces[i] + rep.forces[i];
        if (health.check_finite && (!std::isfinite(f.x) ||
                                    !std::isfinite(f.y) ||
                                    !std::isfinite(f.z))) {
          fail = FailureClass::kNonFinite;
        } else if (health.max_force > 0.0 &&
                   (std::fabs(f.x) > health.max_force ||
                    std::fabs(f.y) > health.max_force ||
                    std::fabs(f.z) > health.max_force)) {
          fail = FailureClass::kForceBound;
        }
      }
    }
    if (fail == FailureClass::kNone) break;

    // --- escalate to the next applicable rung ---------------------------
    recovery_stats_.last_failure = fail;
    bool advanced = false;
    while (!advanced && rung < 3) {
      ++rung;
      if (rung == 1 && health.fp64_retry &&
          popts.precision == PrecisionMode::kMixed) {
        popts.precision = PrecisionMode::kF64;
        ++recovery_stats_.fp64_retries;
        advanced = true;
      } else if (rung == 2 && health.tighten_retry) {
        popts.drop_tolerance *= health.tighten_factor;
        popts.schedule_loosening = 1.0;
        popts.sub_tile = 0.0;
        // Cold cache rebuild: a corrupted or stalled run may have been fed
        // by a stale symbolic pattern or a drift-widened spectral seed.
        workspace_.patterns.invalidate();
        bounds_valid_ = false;
        if (options_.cache_spectral_bounds) {
          popts.bounds = step_spectral_bounds();
          last_bounds_ = popts.bounds;
        }
        ++recovery_stats_.tighten_retries;
        advanced = true;
      } else if (rung == 3 && health.exact_fallback) {
        ++recovery_stats_.exact_fallbacks;
        advanced = true;
      }
    }
    if (!advanced) {
      ++recovery_stats_.failures;
      std::ostringstream os;
      os.precision(17);
      os << "OrderNCalculator: step failed ["
         << failure_class_name(fail) << "] after "
         << (recovery_stats_.fp64_retries + recovery_stats_.tighten_retries +
             recovery_stats_.exact_fallbacks)
         << " cumulative recovery attempts; purification: iterations="
         << last_.iterations << " converged=" << last_.converged
         << " idempotency_error=" << last_.idempotency_error
         << " band_energy=" << last_.band_energy
         << " fill=" << last_.fill_fraction;
      throw NumericsError(fail, os.str());
    }
    io::log_warn("OrderNCalculator: step failed [", failure_class_name(fail),
                 "]; retrying on recovery rung ", rung,
                 rung == 1 ? " (fp64-only)"
                 : rung == 2
                     ? " (tightened tolerance + cold cache rebuild)"
                     : " (exact-diagonalization fallback)");
  }

  for (std::size_t i = 0; i < n; ++i) result.forces[i] += rep.forces[i];
  if (permuted) {
    // Back to the caller's atom order (energies and the virial are order-
    // independent sums and need no unscrambling).
    std::vector<Vec3> unperm(n);
    for (std::size_t k = 0; k < n; ++k) {
      unperm[part_.order[k]] = result.forces[k];
    }
    result.forces = std::move(unperm);
  }
  result.virial += rep.virial;
  result.band_energy = last_.band_energy;
  result.repulsive_energy = rep.energy;
  result.energy = last_.band_energy + rep.energy;
  return result;
}

PurificationResult OrderNCalculator::exact_step_density(const System& system,
                                                        int n_occupied) const {
  // O(N^3) for one step: densify the already-assembled blocked H,
  // diagonalize, and occupy the lowest n_occupied states (T = 0 aufbau,
  // the same filling the canonical purification targets).  The density
  // goes back onto the blocked substrate with no truncation so the
  // existing sparse force contraction serves this rung unchanged.
  const linalg::Matrix hd = hamiltonian_.to_full().to_dense();
  const linalg::SymmetricEigenSolution eig = linalg::eigh(hd);
  std::vector<double> weights(eig.values.size(), 0.0);
  double band = 0.0;
  for (int k = 0; k < n_occupied; ++k) {
    weights[static_cast<std::size_t>(k)] = 1.0;  // spinless P; spin in 2 tr(PH)
    band += eig.values[static_cast<std::size_t>(k)];
  }
  const linalg::Matrix p = tb::density_matrix(eig.vectors, weights);

  PurificationResult out;
  out.density =
      BlockSparseMatrix::from_dense(p, tb::orbital_block_dims(model_, system),
                                    0.0)
          .to_symmetric_half();
  out.band_energy = 2.0 * band;
  out.converged = true;
  out.iterations = 0;
  out.idempotency_error = 0.0;
  out.fill_fraction = out.density.fill_fraction();
  return out;
}

}  // namespace tbmd::onx
