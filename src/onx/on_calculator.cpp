#include "src/onx/on_calculator.hpp"

#include <algorithm>
#include <utility>

#include "src/tb/hamiltonian.hpp"
#include "src/tb/repulsive.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

SparseMatrix build_sparse_hamiltonian(const tb::TbModel& model,
                                      const System& system,
                                      const NeighborList& list) {
  tb::check_species(model, system);
  const std::size_t n = system.size();
  const std::size_t norb = 4 * n;
  const auto& pos = system.positions();

  std::vector<std::vector<std::pair<std::size_t, double>>> rows(norb);

#pragma omp parallel for schedule(dynamic, 16)
  for (std::size_t i = 0; i < n; ++i) {
    // Gather this atom's hopping blocks, sorted by neighbor index so the
    // CSR rows come out ordered.
    struct Hop {
      std::size_t j;
      tb::SkBlock block;
    };
    std::vector<Hop> hops;
    for (const NeighborEntry& e : list.neighbors(i)) {
      const Vec3 bond = pos[e.j] + e.shift - pos[i];
      const tb::SkBlock b = tb::sk_block(model, bond);
      bool nonzero = false;
      for (int a = 0; a < 4 && !nonzero; ++a) {
        for (int c = 0; c < 4; ++c) {
          if (b.h[a][c] != 0.0) {
            nonzero = true;
            break;
          }
        }
      }
      if (nonzero) hops.push_back({e.j, b});
    }
    std::sort(hops.begin(), hops.end(),
              [](const Hop& a, const Hop& b) { return a.j < b.j; });

    const double onsite[4] = {model.e_s, model.e_p, model.e_p, model.e_p};
    for (int a = 0; a < 4; ++a) {
      auto& row = rows[4 * i + a];
      bool onsite_done = false;
      for (const Hop& hop : hops) {
        if (!onsite_done && hop.j > i) {
          row.emplace_back(4 * i + a, onsite[a]);
          onsite_done = true;
        }
        for (int c = 0; c < 4; ++c) {
          if (hop.block.h[a][c] != 0.0) {
            row.emplace_back(4 * hop.j + c, hop.block.h[a][c]);
          }
        }
      }
      if (!onsite_done) row.emplace_back(4 * i + a, onsite[a]);
    }
  }

  return SparseMatrix::from_rows(norb, rows);
}

std::vector<Vec3> band_forces_sparse(const tb::TbModel& model,
                                     const System& system,
                                     const NeighborList& list,
                                     const SparseMatrix& p, Mat3* virial) {
  const std::size_t n = system.size();
  std::vector<Vec3> forces(n, Vec3{});
  Mat3 w{};
  const auto& pos = system.positions();
  const auto& pairs = list.half_pairs();

#pragma omp parallel
  {
    std::vector<Vec3> local(n, Vec3{});
    Mat3 wlocal{};
    tb::SkBlock block;
    tb::SkBlockDerivative deriv;
#pragma omp for schedule(dynamic, 32) nowait
    for (std::size_t q = 0; q < pairs.size(); ++q) {
      const NeighborPair& pr = pairs[q];
      const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
      tb::sk_block_with_derivative(model, bond, block, deriv);

      const std::size_t oi = 4 * pr.i;
      const std::size_t oj = 4 * pr.j;
      Vec3 dedd{};
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          const double rho_ab = 2.0 * p.get(oi + a, oj + b);  // spin factor
          if (rho_ab == 0.0) continue;
          dedd.x += 2.0 * rho_ab * deriv.d[0][a][b];
          dedd.y += 2.0 * rho_ab * deriv.d[1][a][b];
          dedd.z += 2.0 * rho_ab * deriv.d[2][a][b];
        }
      }
      local[pr.j] -= dedd;
      local[pr.i] += dedd;
      wlocal -= outer(bond, dedd);
    }
#pragma omp critical
    {
      for (std::size_t i = 0; i < n; ++i) forces[i] += local[i];
      w += wlocal;
    }
  }
  if (virial != nullptr) *virial += w;
  return forces;
}

OrderNCalculator::OrderNCalculator(tb::TbModel model, OrderNOptions options)
    : model_(std::move(model)), options_(options) {}

ForceResult OrderNCalculator::compute(const System& system) {
  ForceResult result;
  const std::size_t n = system.size();
  if (n == 0) return result;

  const int electrons = system.total_valence_electrons();
  TBMD_REQUIRE(electrons % 2 == 0,
               "OrderNCalculator: odd electron counts are not supported");

  {
    auto t = timers_.scope("neighbors");
    list_.ensure(system.positions(), system.cell(),
                 {model_.cutoff(), options_.skin});
  }

  SparseMatrix h;
  {
    auto t = timers_.scope("hamiltonian");
    h = build_sparse_hamiltonian(model_, system, list_);
  }

  {
    auto t = timers_.scope("purification");
    last_ = palser_manolopoulos(h, electrons / 2, options_.purification);
  }

  {
    auto t = timers_.scope("forces");
    result.forces = band_forces_sparse(model_, system, list_, last_.density,
                                       &result.virial);
  }

  tb::RepulsiveResult rep;
  {
    auto t = timers_.scope("repulsive");
    rep = tb::repulsive_energy_forces(model_, system, list_);
  }

  for (std::size_t i = 0; i < n; ++i) result.forces[i] += rep.forces[i];
  result.virial += rep.virial;
  result.band_energy = last_.band_energy;
  result.repulsive_energy = rep.energy;
  result.energy = last_.band_energy + rep.energy;
  return result;
}

}  // namespace tbmd::onx
