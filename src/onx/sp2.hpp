#pragma once

/// \file sp2.hpp
/// \brief SP2 (second-order spectral projection) density-matrix
/// purification.
///
/// The trace-correcting alternative to Palser-Manolopoulos: starting from
/// a linear map of H with spectrum in [0, 1], repeatedly apply X^2 or
/// 2X - X^2, choosing whichever moves the trace towards the occupation
/// count.  Each iteration needs ONE sparse multiply (PM needs two), at the
/// cost of slightly slower convergence -- an ablation axis the benchmark
/// suite measures.  Like PM, the iteration runs on the blocked-sparse
/// (BSR) substrate in symmetric-half storage with tile-level truncation
/// and cached SpMM patterns (see purification.hpp).

#include "src/onx/purification.hpp"

namespace tbmd::onx {

/// SP2 purification of the symmetric blocked Hamiltonian with `n_occupied`
/// doubly occupied states.  Options, result and workspace semantics match
/// palser_manolopoulos().
[[nodiscard]] PurificationResult sp2_purification(
    const BlockSparseMatrix& h, int n_occupied,
    const PurificationOptions& options = {},
    PurificationWorkspace* workspace = nullptr);

/// Scalar-CSR convenience overload (converts via SparseMatrix::to_block
/// with the natural_block_size() fallback layout).
[[nodiscard]] PurificationResult sp2_purification(
    const SparseMatrix& h, int n_occupied,
    const PurificationOptions& options = {});

/// Scalar-CSR overload with an explicit per-atom block layout (for a
/// tight-binding Hamiltonian: tb::orbital_block_dims(model, system)).
[[nodiscard]] PurificationResult sp2_purification(
    const SparseMatrix& h, const std::vector<std::uint32_t>& block_dims,
    int n_occupied, const PurificationOptions& options = {});

}  // namespace tbmd::onx
