#include "src/onx/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

SparseMatrix SparseMatrix::identity(std::size_t n) {
  SparseMatrix m(n);
  m.col_.resize(n);
  m.val_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.col_[i] = i;
    m.row_ptr_[i + 1] = i + 1;
  }
  return m;
}

SparseMatrix SparseMatrix::from_dense(const linalg::Matrix& a,
                                      double drop_tolerance) {
  TBMD_REQUIRE(a.rows() == a.cols(), "SparseMatrix: matrix must be square");
  const std::size_t n = a.rows();
  SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      // The != 0.0 guard keeps structurally-zero dense entries out of the
      // pattern even when drop_tolerance is negative or -0.0 slips in.
      if (arow[j] != 0.0 && std::fabs(arow[j]) > drop_tolerance) {
        m.col_.push_back(j);
        m.val_.push_back(arow[j]);
      }
    }
    m.row_ptr_[i + 1] = m.col_.size();
  }
  return m;
}

SparseMatrix SparseMatrix::from_rows(
    std::size_t n,
    const std::vector<std::vector<std::pair<std::size_t, double>>>& rows) {
  TBMD_REQUIRE(rows.size() == n, "SparseMatrix::from_rows: row count mismatch");
  SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [j, v] : rows[i]) {
      TBMD_REQUIRE(j < n, "SparseMatrix::from_rows: column out of range");
      m.col_.push_back(j);
      m.val_.push_back(v);
    }
    m.row_ptr_[i + 1] = m.col_.size();
  }
  return m;
}

linalg::Matrix SparseMatrix::to_dense() const {
  linalg::Matrix a(n_, n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      a(i, col_[k]) = val_[k];
    }
  }
  return a;
}

double SparseMatrix::get(std::size_t i, std::size_t j) const {
  const auto begin = col_.begin() + static_cast<long>(row_ptr_[i]);
  const auto end = col_.begin() + static_cast<long>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return val_[static_cast<std::size_t>(it - col_.begin())];
}

double SparseMatrix::trace() const {
  double t = 0.0;
  for (std::size_t i = 0; i < n_; ++i) t += get(i, i);
  return t;
}

double SparseMatrix::trace_of_product(const SparseMatrix& b) const {
  TBMD_REQUIRE(n_ == b.n_, "trace_of_product: size mismatch");
  // Row partials + serial sum in row order: bit-identical at any thread
  // count, unlike a reduction(+) whose grouping follows the team size.
  std::vector<double> row_t(n_, 0.0);
#pragma omp parallel for schedule(static) if (n_ > 256)
  for (std::size_t i = 0; i < n_; ++i) {
    double tr = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      tr += val_[k] * b.get(col_[k], i);
    }
    row_t[i] = tr;
  }
  double t = 0.0;
  for (std::size_t i = 0; i < n_; ++i) t += row_t[i];
  return t;
}

SparseMatrix SparseMatrix::combine(double alpha, const SparseMatrix& b,
                                   double beta, double drop_tolerance) const {
  TBMD_REQUIRE(n_ == b.n_, "combine: size mismatch");
  SparseMatrix out(n_);
  std::vector<std::vector<std::pair<std::size_t, double>>> rows(n_);
#pragma omp parallel for schedule(static) if (n_ > 256)
  for (std::size_t i = 0; i < n_; ++i) {
    auto& row = rows[i];
    std::size_t ka = row_ptr_[i], ea = row_ptr_[i + 1];
    std::size_t kb = b.row_ptr_[i], eb = b.row_ptr_[i + 1];
    while (ka < ea || kb < eb) {
      std::size_t j;
      double v = 0.0;
      if (ka < ea && (kb >= eb || col_[ka] <= b.col_[kb])) {
        j = col_[ka];
        v += alpha * val_[ka];
        ++ka;
        if (kb < eb && b.col_[kb] == j) {
          v += beta * b.val_[kb];
          ++kb;
        }
      } else {
        j = b.col_[kb];
        v += beta * b.val_[kb];
        ++kb;
      }
      // Diagonal entries survive truncation so traces stay exact, but an
      // exact zero is never stored (explicit zeros would only bloat nnz).
      if (std::fabs(v) > drop_tolerance || (i == j && v != 0.0)) {
        row.emplace_back(j, v);
      }
    }
  }
  return from_rows(n_, rows);
}

SparseMatrix SparseMatrix::multiply(const SparseMatrix& b,
                                    double drop_tolerance) const {
  TBMD_REQUIRE(n_ == b.n_, "multiply: size mismatch");
  std::vector<std::vector<std::pair<std::size_t, double>>> rows(n_);

#pragma omp parallel
  {
    // Per-thread dense accumulator (Gustavson).
    std::vector<double> acc(n_, 0.0);
    std::vector<std::size_t> touched;
    touched.reserve(256);

#pragma omp for schedule(dynamic, 16)
    for (std::size_t i = 0; i < n_; ++i) {
      touched.clear();
      for (std::size_t ka = row_ptr_[i]; ka < row_ptr_[i + 1]; ++ka) {
        const double aik = val_[ka];
        const std::size_t k = col_[ka];
        for (std::size_t kb = b.row_ptr_[k]; kb < b.row_ptr_[k + 1]; ++kb) {
          const std::size_t j = b.col_[kb];
          if (acc[j] == 0.0) touched.push_back(j);
          acc[j] += aik * b.val_[kb];
        }
      }
      std::sort(touched.begin(), touched.end());
      // A column can be recorded twice if a partial sum cancels to exactly
      // zero mid-accumulation; dedupe to keep the CSR row well-formed.
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      auto& row = rows[i];
      row.reserve(touched.size());
      for (const std::size_t j : touched) {
        const double v = acc[j];
        acc[j] = 0.0;
        if (std::fabs(v) > drop_tolerance || (i == j && v != 0.0)) {
          row.emplace_back(j, v);
        }
      }
    }
  }
  return from_rows(n_, rows);
}

linalg::SpectralBounds SparseMatrix::gershgorin_bounds() const {
  linalg::SpectralBounds b;
  bool first = true;
  for (std::size_t i = 0; i < n_; ++i) {
    double diag = 0.0, radius = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_[k] == i) {
        diag = val_[k];
      } else {
        radius += std::fabs(val_[k]);
      }
    }
    if (first) {
      b.lo = diag - radius;
      b.hi = diag + radius;
      first = false;
    } else {
      b.lo = std::min(b.lo, diag - radius);
      b.hi = std::max(b.hi, diag + radius);
    }
  }
  return b;
}

}  // namespace tbmd::onx
