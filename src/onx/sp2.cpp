#include "src/onx/sp2.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::onx {

PurificationResult sp2_purification(const SparseMatrix& h, int n_occupied,
                                    const PurificationOptions& options) {
  const std::size_t n = h.size();
  TBMD_REQUIRE(n_occupied >= 0 && static_cast<std::size_t>(n_occupied) <= n,
               "sp2: occupied count out of range");
  PurificationResult out;
  if (n == 0 || n_occupied == 0) {
    out.density = SparseMatrix(n);
    out.converged = true;
    return out;
  }

  // X0 = (emax I - H) / (emax - emin): spectrum in [0, 1], with occupied
  // states mapped towards 1.  The bounds come from the shared Gershgorin
  // estimate (linalg::SpectralBounds) the dense eigensolvers also use.
  const linalg::SpectralBounds bounds = h.gershgorin_bounds();
  const double width = std::max(bounds.width(), 1e-12);
  const SparseMatrix eye = SparseMatrix::identity(n);
  SparseMatrix x =
      h.combine(-1.0 / width, eye, bounds.hi / width, options.drop_tolerance);

  const double target = static_cast<double>(n_occupied);
  const double effective_tol =
      std::max(options.idempotency_tolerance, options.drop_tolerance);
  double prev_idem = 1e300;

  for (int it = 1; it <= options.max_iterations; ++it) {
    const SparseMatrix x2 = x.multiply(x, options.drop_tolerance);
    const double tr_x = x.trace();
    const double tr_x2 = x2.trace();
    const double idem = tr_x - tr_x2;

    out.iterations = it;
    out.idempotency_error = idem;
    if (std::fabs(idem) / static_cast<double>(n) < effective_tol) {
      out.converged = true;
      x = x2.combine(3.0, x2.multiply(x, options.drop_tolerance), -2.0,
                     options.drop_tolerance);  // final McWeeny polish
      break;
    }
    if (std::fabs(idem) >= 0.5 * prev_idem &&
        std::fabs(idem) / static_cast<double>(n) <
            50.0 * options.drop_tolerance) {
      out.converged = true;
      break;
    }
    prev_idem = std::fabs(idem);

    // Choose the projection that moves tr(X) towards the target.
    if (std::fabs(tr_x2 - target) < std::fabs(2.0 * tr_x - tr_x2 - target)) {
      x = x2;  // X <- X^2 (pushes small eigenvalues down)
    } else {
      x = x.combine(2.0, x2, -1.0,
                    options.drop_tolerance);  // X <- 2X - X^2
    }
  }

  out.band_energy = 2.0 * x.trace_of_product(h);
  out.fill_fraction = x.fill_fraction();
  out.density = std::move(x);
  return out;
}

}  // namespace tbmd::onx
