#include "src/onx/sp2.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::onx {

PurificationResult sp2_purification(const BlockSparseMatrix& h,
                                    int n_occupied,
                                    const PurificationOptions& options,
                                    PurificationWorkspace* workspace) {
  const std::size_t n = h.size();
  TBMD_REQUIRE(n_occupied >= 0 && static_cast<std::size_t>(n_occupied) <= n,
               "sp2: occupied count out of range");
  PurificationResult out;
  if (n == 0 || n_occupied == 0) {
    out.density = h.uniform_blocks()
                      ? BlockSparseMatrix(n, h.block_size(), true)
                      : BlockSparseMatrix(h.block_dims(), true);
    out.converged = true;
    return out;
  }

  PurificationWorkspace local;
  PurificationWorkspace& ws = workspace != nullptr ? *workspace : local;
  BlockSparseMatrix& x = ws.p;
  BlockSparseMatrix& x2 = ws.p2;

  // Like PM, the iteration runs entirely in symmetric-half storage.
  BlockSparseMatrix h_half_storage;
  const BlockSparseMatrix* hp = &h;
  if (!h.symmetric()) {
    h_half_storage = h.to_symmetric_half();
    hp = &h_half_storage;
  }
  const BlockSparseMatrix& hh = *hp;

  // X0 = (emax I - H) / (emax - emin): spectrum in [0, 1], with occupied
  // states mapped towards 1.  The bounds come from the shared Gershgorin
  // estimate (linalg::SpectralBounds) the dense eigensolvers also use.
  const linalg::SpectralBounds bounds =
      options.have_bounds ? options.bounds : hh.gershgorin_bounds();
  const double width = std::max(bounds.width(), 1e-12);
  if (!ws.eye.symmetric() || !ws.eye.layout_matches(hh)) {
    ws.eye = BlockSparseMatrix::identity_like(hh);
  }
  hh.combine_into(-1.0 / width, ws.eye, bounds.hi / width,
                  options.drop_tolerance, x, ws.scratch);

  const double target = static_cast<double>(n_occupied);
  const double effective_tol =
      std::max(options.idempotency_tolerance, options.drop_tolerance);
  double prev_idem = 1e300;

  ws.patterns.begin_run();
  for (int it = 1; it <= options.max_iterations; ++it) {
    const double drop = options.drop_at(it);
    x.multiply_sym_into(x, drop, x2, ws.scratch, ws.patterns.next());
    const double tr_x = x.trace();
    const double tr_x2 = x2.trace();
    const double idem = tr_x - tr_x2;

    out.iterations = it;
    out.idempotency_error = idem;
    if (std::fabs(idem) / static_cast<double>(n) < effective_tol) {
      out.converged = true;
      // Final McWeeny polish 3X^2 - 2X^3 at the tight tolerance (X and X^2
      // are polynomials of the same H, so their product is symmetric).
      x2.multiply_sym_into(x, options.drop_tolerance, ws.p3, ws.scratch,
                           ws.patterns.next());
      x2.combine_into(3.0, ws.p3, -2.0, options.drop_tolerance, ws.tmp,
                      ws.scratch);
      std::swap(x, ws.tmp);
      break;
    }
    if (std::fabs(idem) >= 0.5 * prev_idem &&
        std::fabs(idem) / static_cast<double>(n) <
            50.0 * options.drop_tolerance) {
      out.converged = true;
      break;
    }
    prev_idem = std::fabs(idem);

    // Choose the projection that moves tr(X) towards the target.
    if (std::fabs(tr_x2 - target) < std::fabs(2.0 * tr_x - tr_x2 - target)) {
      std::swap(x, x2);  // X <- X^2 (pushes small eigenvalues down)
    } else {
      x.combine_into(2.0, x2, -1.0, drop, ws.tmp,
                     ws.scratch);  // X <- 2X - X^2
      std::swap(x, ws.tmp);
    }
  }

  out.band_energy = 2.0 * x.trace_of_product(hh);
  out.fill_fraction = x.fill_fraction();
  out.density = std::move(x);
  x = BlockSparseMatrix::zeros_like(hh);
  return out;
}

PurificationResult sp2_purification(const SparseMatrix& h, int n_occupied,
                                    const PurificationOptions& options) {
  return sp2_purification(
      h.to_block(natural_block_size(h.size())).to_symmetric_half(),
      n_occupied, options);
}

PurificationResult sp2_purification(
    const SparseMatrix& h, const std::vector<std::uint32_t>& block_dims,
    int n_occupied, const PurificationOptions& options) {
  return sp2_purification(h.to_block(block_dims).to_symmetric_half(),
                          n_occupied, options);
}

}  // namespace tbmd::onx
