#pragma once

/// \file sparse.hpp
/// \brief CSR sparse matrix with threshold truncation.
///
/// The substrate for the O(N) density-matrix methods: tight-binding
/// Hamiltonians are sparse (bounded neighbor counts), and for gapped
/// systems the density matrix decays exponentially, so purification
/// iterations keep a bounded number of entries per row when small elements
/// are dropped ("nearsightedness").

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/linalg/spectral_bounds.hpp"

namespace tbmd::onx {

class BlockSparseMatrix;

/// Square CSR sparse matrix (column indices sorted within each row).
///
/// This is the assembly / interchange format of the O(N) layer; the
/// purification engine itself runs on BlockSparseMatrix (block_sparse.hpp),
/// reached through the to_block()/from_block() converters below.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// n x n zero matrix.
  explicit SparseMatrix(std::size_t n) : n_(n), row_ptr_(n + 1, 0) {}

  /// Identity.
  [[nodiscard]] static SparseMatrix identity(std::size_t n);

  /// Convert from dense, dropping entries with |a_ij| <= drop_tolerance;
  /// exact zeros are never stored (so from_dense(a, 0.0) keeps precisely
  /// the nonzero pattern of `a`).
  [[nodiscard]] static SparseMatrix from_dense(const linalg::Matrix& a,
                                               double drop_tolerance = 0.0);

  /// Build from per-row (column, value) lists; columns must be sorted and
  /// unique within each row.
  [[nodiscard]] static SparseMatrix from_rows(
      std::size_t n,
      const std::vector<std::vector<std::pair<std::size_t, double>>>& rows);

  [[nodiscard]] linalg::Matrix to_dense() const;

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t nnz() const { return col_.size(); }

  /// Fraction of stored entries relative to a dense matrix.
  [[nodiscard]] double fill_fraction() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(nnz()) /
                         (static_cast<double>(n_) * static_cast<double>(n_));
  }

  /// Element lookup (binary search within the row); 0 for absent entries.
  [[nodiscard]] double get(std::size_t i, std::size_t j) const;

  /// Sum of diagonal entries.
  [[nodiscard]] double trace() const;

  /// tr(A * B); both must be the same size.  Cost O(nnz(A) log(row width)).
  [[nodiscard]] double trace_of_product(const SparseMatrix& b) const;

  /// Linear combination alpha*this + beta*b (pattern union), dropping
  /// entries below drop_tolerance in magnitude.
  [[nodiscard]] SparseMatrix combine(double alpha, const SparseMatrix& b,
                                     double beta,
                                     double drop_tolerance = 0.0) const;

  /// Sparse-sparse product this * b, dropping entries below
  /// drop_tolerance.  Gustavson row-merge algorithm, OpenMP over rows.
  [[nodiscard]] SparseMatrix multiply(const SparseMatrix& b,
                                      double drop_tolerance = 0.0) const;

  /// Gershgorin enclosure of the spectrum, in the shared linalg interval
  /// type also used by the dense/tridiagonal eigensolvers:
  /// {min over i of (a_ii - r_i), max over i of (a_ii + r_i)}.
  [[nodiscard]] linalg::SpectralBounds gershgorin_bounds() const;

  /// Repack as block-CSR with bs x bs dense tiles (bs must divide n); the
  /// format the purification engine iterates on (chain .to_symmetric_half()
  /// for the engine's half-stored production mode).  Every stored entry
  /// lands in its tile; absent positions inside a stored tile are
  /// zero-filled.
  [[nodiscard]] BlockSparseMatrix to_block(std::size_t block_size) const;

  /// to_block() on a variable block layout (tile (I, J) is
  /// dims[I] x dims[J]; the dims must sum to n).  The block structure
  /// comes from the caller -- for a Hamiltonian that is
  /// tb::orbital_block_dims() -- never inferred from n.
  [[nodiscard]] BlockSparseMatrix to_block(
      const std::vector<std::uint32_t>& dims) const;

  /// Expand a full-stored block-CSR matrix back to scalar CSR, skipping
  /// the exact zeros that pad partially-filled tiles.  Half-stored
  /// matrices must be mirror-expanded first: from_block(b.to_full()).
  [[nodiscard]] static SparseMatrix from_block(const BlockSparseMatrix& b);

  // Raw CSR access (read-only) for kernels that stream the structure.
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& cols() const { return col_; }
  [[nodiscard]] const std::vector<double>& values() const { return val_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<double> val_;
};

}  // namespace tbmd::onx
