#include "src/onx/block_sparse.hpp"

#include <algorithm>
#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/onx/sparse.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

namespace {

/// Keep a tile of squared Frobenius norm `norm2`?  A tile is dropped when
/// ||T||_F <= bs * tol, i.e. when its RMS entry is below the tolerance:
/// the perturbation from discarding it is then no larger than that of the
/// bs^2 scalar entries of magnitude tol the element-wise criterion already
/// tolerates dropping.  Reduces to |v| > tol exactly when bs == 1.
inline bool keep_tile(double norm2, std::size_t bs, double drop_tolerance) {
  const double scaled = static_cast<double>(bs) * drop_tolerance;
  return norm2 > scaled * scaled;
}

}  // namespace

BlockSparseMatrix::BlockSparseMatrix(std::size_t n, std::size_t block_size)
    : n_(n), bs_(block_size == 0 ? 1 : block_size) {
  TBMD_REQUIRE(n % bs_ == 0,
               "BlockSparseMatrix: block size must divide the dimension");
  nb_ = n_ / bs_;
  row_ptr_.assign(nb_ + 1, 0);
}

BlockSparseMatrix BlockSparseMatrix::identity(std::size_t n,
                                              std::size_t block_size) {
  BlockSparseMatrix m(n, block_size);
  const std::size_t bs = m.bs_;
  m.col_.resize(m.nb_);
  m.val_.assign(m.nb_ * bs * bs, 0.0);
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    m.col_[bi] = static_cast<std::uint32_t>(bi);
    m.row_ptr_[bi + 1] = bi + 1;
    double* tile = m.val_.data() + bs * bs * bi;
    for (std::size_t a = 0; a < bs; ++a) tile[bs * a + a] = 1.0;
  }
  return m;
}

BlockSparseMatrix BlockSparseMatrix::from_dense(const linalg::Matrix& a,
                                                std::size_t block_size,
                                                double drop_tolerance) {
  TBMD_REQUIRE(a.rows() == a.cols(),
               "BlockSparseMatrix: matrix must be square");
  BlockSparseMatrix m(a.rows(), block_size);
  const std::size_t bs = m.bs_;
  std::vector<double> tile(bs * bs);
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    for (std::size_t bj = 0; bj < m.nb_; ++bj) {
      double norm2 = 0.0;
      for (std::size_t r = 0; r < bs; ++r) {
        const double* arow = a.row(bs * bi + r) + bs * bj;
        for (std::size_t c = 0; c < bs; ++c) {
          tile[bs * r + c] = arow[c];
          norm2 += arow[c] * arow[c];
        }
      }
      if (keep_tile(norm2, bs, drop_tolerance) || (bi == bj && norm2 > 0.0)) {
        m.col_.push_back(static_cast<std::uint32_t>(bj));
        m.val_.insert(m.val_.end(), tile.begin(), tile.end());
      }
    }
    m.row_ptr_[bi + 1] = m.col_.size();
  }
  return m;
}

linalg::Matrix BlockSparseMatrix::to_dense() const {
  linalg::Matrix a(n_, n_, 0.0);
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const std::size_t bj = col_[k];
      const double* tile = block(k);
      for (std::size_t r = 0; r < bs_; ++r) {
        double* arow = a.row(bs_ * bi + r) + bs_ * bj;
        for (std::size_t c = 0; c < bs_; ++c) arow[c] = tile[bs_ * r + c];
      }
    }
  }
  return a;
}

const double* BlockSparseMatrix::find_block(std::size_t bi,
                                            std::size_t bj) const {
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[bi]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[bi + 1]);
  const auto it =
      std::lower_bound(begin, end, static_cast<std::uint32_t>(bj));
  if (it == end || *it != bj) return nullptr;
  return block(static_cast<std::size_t>(it - col_.begin()));
}

double BlockSparseMatrix::get(std::size_t i, std::size_t j) const {
  const double* tile = find_block(i / bs_, j / bs_);
  if (tile == nullptr) return 0.0;
  return tile[bs_ * (i % bs_) + (j % bs_)];
}

double BlockSparseMatrix::trace() const {
  double t = 0.0;
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    const double* tile = find_block(bi, bi);
    if (tile == nullptr) continue;
    for (std::size_t a = 0; a < bs_; ++a) t += tile[bs_ * a + a];
  }
  return t;
}

double BlockSparseMatrix::trace_of_product(const BlockSparseMatrix& b) const {
  TBMD_REQUIRE(n_ == b.n_ && bs_ == b.bs_,
               "trace_of_product: size/block mismatch");
  double t = 0.0;
  [[maybe_unused]] const bool par = nb_ > 64;
#pragma omp parallel for reduction(+ : t) schedule(static) if (par)
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const double* ta = block(k);
      const double* tb = b.find_block(col_[k], bi);
      if (tb == nullptr) continue;
      // sum_ab A_IJ[a,b] * B_JI[b,a]
      double s = 0.0;
      for (std::size_t a = 0; a < bs_; ++a) {
        for (std::size_t c = 0; c < bs_; ++c) {
          s += ta[bs_ * a + c] * tb[bs_ * c + a];
        }
      }
      t += s;
    }
  }
  return t;
}

void bsr_assemble(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                  BlockSparseMatrix& out) {
  out.n_ = n;
  out.bs_ = bs;
  out.nb_ = n / bs;
  const std::size_t nb = out.nb_;
  const std::size_t bs2 = bs * bs;
  TBMD_REQUIRE(ws.row_cols.size() >= nb && ws.row_vals.size() >= nb,
               "bsr_assemble: workspace rows missing");
  out.row_ptr_.assign(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.row_ptr_[bi + 1] = out.row_ptr_[bi] + ws.row_cols[bi].size();
  }
  const std::size_t nblocks = out.row_ptr_[nb];
  out.col_.resize(nblocks);
  out.val_.resize(nblocks * bs2);
  [[maybe_unused]] const bool par = nb > 64;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.row_ptr_[bi];
    std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
              out.col_.begin() + static_cast<std::ptrdiff_t>(at));
    std::copy(ws.row_vals[bi].begin(), ws.row_vals[bi].end(),
              out.val_.begin() + static_cast<std::ptrdiff_t>(at * bs2));
  }
}

namespace {

/// Grow-and-clear the staging rows without releasing their capacity.
void reset_workspace(BsrWorkspace& ws, std::size_t nb) {
  if (ws.row_cols.size() < nb) ws.row_cols.resize(nb);
  if (ws.row_vals.size() < nb) ws.row_vals.resize(nb);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    ws.row_cols[bi].clear();
    ws.row_vals[bi].clear();
  }
}

}  // namespace

void BlockSparseMatrix::combine_into(double alpha, const BlockSparseMatrix& b,
                                     double beta, double drop_tolerance,
                                     BlockSparseMatrix& out,
                                     BsrWorkspace& ws) const {
  TBMD_REQUIRE(n_ == b.n_ && bs_ == b.bs_, "combine: size/block mismatch");
  TBMD_REQUIRE(&out != this && &out != &b,
               "combine_into: output must not alias an operand");
  const std::size_t bs2 = bs_ * bs_;
  reset_workspace(ws, nb_);
#pragma omp parallel for schedule(static) if (nb_ > 64)
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    auto& cols = ws.row_cols[bi];
    auto& vals = ws.row_vals[bi];
    std::size_t ka = row_ptr_[bi], ea = row_ptr_[bi + 1];
    std::size_t kb = b.row_ptr_[bi], eb = b.row_ptr_[bi + 1];
    while (ka < ea || kb < eb) {
      std::uint32_t bj;
      const std::size_t at = vals.size();
      vals.resize(at + bs2, 0.0);
      double* tile = vals.data() + at;
      if (ka < ea && (kb >= eb || col_[ka] <= b.col_[kb])) {
        bj = col_[ka];
        const double* ta = block(ka);
        for (std::size_t q = 0; q < bs2; ++q) tile[q] = alpha * ta[q];
        ++ka;
        if (kb < eb && b.col_[kb] == bj) {
          const double* tb = b.block(kb);
          for (std::size_t q = 0; q < bs2; ++q) tile[q] += beta * tb[q];
          ++kb;
        }
      } else {
        bj = b.col_[kb];
        const double* tb = b.block(kb);
        for (std::size_t q = 0; q < bs2; ++q) tile[q] = beta * tb[q];
        ++kb;
      }
      const double norm2 = linalg::tile_norm2(bs_, tile);
      if (keep_tile(norm2, bs_, drop_tolerance) || (bj == bi && norm2 > 0.0)) {
        cols.push_back(bj);
      } else {
        vals.resize(at);  // rejected: roll the staged tile back
      }
    }
  }
  bsr_assemble(n_, bs_, ws, out);
}

BlockSparseMatrix BlockSparseMatrix::combine(double alpha,
                                             const BlockSparseMatrix& b,
                                             double beta,
                                             double drop_tolerance) const {
  BlockSparseMatrix out;
  BsrWorkspace ws;
  combine_into(alpha, b, beta, drop_tolerance, out, ws);
  return out;
}

void BlockSparseMatrix::multiply_into(const BlockSparseMatrix& b,
                                      double drop_tolerance,
                                      BlockSparseMatrix& out,
                                      BsrWorkspace& ws) const {
  TBMD_REQUIRE(n_ == b.n_ && bs_ == b.bs_, "multiply: size/block mismatch");
  TBMD_REQUIRE(&out != this && &out != &b,
               "multiply_into: output must not alias an operand");
  const std::size_t bs2 = bs_ * bs_;
  reset_workspace(ws, nb_);
  const auto nthreads = static_cast<std::size_t>(par::max_threads());
  if (ws.acc.size() < nthreads) {
    ws.acc.resize(nthreads);
    ws.hit.resize(nthreads);
    ws.touched.resize(nthreads);
  }

#pragma omp parallel
  {
    // Per-thread dense block accumulator (Gustavson over block rows): one
    // bs x bs tile per block column plus an occupancy flag; `touched`
    // records which columns were hit so only those are swept and reset.
    // The buffers live in the workspace: the sweep leaves acc/hit all-zero
    // after each row, so they are only (re)zeroed when they grow.
    const auto tid = static_cast<std::size_t>(par::thread_id());
    std::vector<double>& acc = ws.acc[tid];
    std::vector<std::uint8_t>& hit = ws.hit[tid];
    std::vector<std::uint32_t>& touched = ws.touched[tid];
    if (acc.size() < nb_ * bs2) acc.assign(nb_ * bs2, 0.0);
    if (hit.size() < nb_) hit.assign(nb_, 0);
    touched.reserve(256);

#pragma omp for schedule(dynamic, 8)
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      touched.clear();
      for (std::size_t ka = row_ptr_[bi]; ka < row_ptr_[bi + 1]; ++ka) {
        const std::size_t bk = col_[ka];
        const double* ta = block(ka);
        for (std::size_t kb = b.row_ptr_[bk]; kb < b.row_ptr_[bk + 1]; ++kb) {
          const std::uint32_t bj = b.col_[kb];
          if (hit[bj] == 0) {
            hit[bj] = 1;
            touched.push_back(bj);
          }
          linalg::gemm_micro_add(bs_, ta, b.block(kb),
                                 acc.data() + bs2 * bj);
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& cols = ws.row_cols[bi];
      auto& vals = ws.row_vals[bi];
      cols.reserve(touched.size());
      for (const std::uint32_t bj : touched) {
        double* tile = acc.data() + bs2 * bj;
        const double norm2 = linalg::tile_norm2(bs_, tile);
        if (keep_tile(norm2, bs_, drop_tolerance) || (bj == bi && norm2 > 0.0)) {
          cols.push_back(bj);
          vals.insert(vals.end(), tile, tile + bs2);
        }
        std::fill(tile, tile + bs2, 0.0);
        hit[bj] = 0;
      }
    }
  }
  bsr_assemble(n_, bs_, ws, out);
}

BlockSparseMatrix BlockSparseMatrix::multiply(const BlockSparseMatrix& b,
                                              double drop_tolerance) const {
  BlockSparseMatrix out;
  BsrWorkspace ws;
  multiply_into(b, drop_tolerance, out, ws);
  return out;
}

linalg::SpectralBounds BlockSparseMatrix::gershgorin_bounds() const {
  linalg::SpectralBounds bounds;
  bool first = true;
  std::vector<double> diag(bs_), radius(bs_);
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    std::fill(diag.begin(), diag.end(), 0.0);
    std::fill(radius.begin(), radius.end(), 0.0);
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const std::size_t bj = col_[k];
      const double* tile = block(k);
      for (std::size_t r = 0; r < bs_; ++r) {
        for (std::size_t c = 0; c < bs_; ++c) {
          const double v = tile[bs_ * r + c];
          if (bj == bi && c == r) {
            diag[r] = v;
          } else {
            radius[r] += std::fabs(v);
          }
        }
      }
    }
    for (std::size_t r = 0; r < bs_; ++r) {
      const double lo = diag[r] - radius[r];
      const double hi = diag[r] + radius[r];
      if (first) {
        bounds.lo = lo;
        bounds.hi = hi;
        first = false;
      } else {
        bounds.lo = std::min(bounds.lo, lo);
        bounds.hi = std::max(bounds.hi, hi);
      }
    }
  }
  return bounds;
}

// --- CSR <-> BSR converters (declared in sparse.hpp) ----------------------

BlockSparseMatrix SparseMatrix::to_block(std::size_t block_size) const {
  BlockSparseMatrix out(n_, block_size);
  const std::size_t bs = out.bs_;
  const std::size_t bs2 = bs * bs;
  const std::size_t nb = out.nb_;
  std::vector<std::uint32_t> cols;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    // Union of the block columns touched by the bs scalar rows of this
    // block row (each scalar row's columns are already sorted).
    cols.clear();
    for (std::size_t r = 0; r < bs; ++r) {
      const std::size_t row = bs * bi + r;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        cols.push_back(static_cast<std::uint32_t>(col_[k] / bs));
      }
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

    const std::size_t base = out.col_.size();
    out.col_.insert(out.col_.end(), cols.begin(), cols.end());
    out.val_.resize(out.val_.size() + cols.size() * bs2, 0.0);
    for (std::size_t r = 0; r < bs; ++r) {
      const std::size_t row = bs * bi + r;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        const std::size_t bj = col_[k] / bs;
        const auto it = std::lower_bound(cols.begin(), cols.end(),
                                         static_cast<std::uint32_t>(bj));
        const std::size_t slot =
            base + static_cast<std::size_t>(it - cols.begin());
        out.val_[bs2 * slot + bs * r + (col_[k] % bs)] = val_[k];
      }
    }
    out.row_ptr_[bi + 1] = out.col_.size();
  }
  return out;
}

SparseMatrix SparseMatrix::from_block(const BlockSparseMatrix& b) {
  const std::size_t bs = b.block_size();
  SparseMatrix out(b.size());
  for (std::size_t bi = 0; bi < b.block_rows(); ++bi) {
    for (std::size_t r = 0; r < bs; ++r) {
      for (std::size_t k = b.row_ptr()[bi]; k < b.row_ptr()[bi + 1]; ++k) {
        const std::size_t bj = b.cols()[k];
        const double* tile = b.block(k);
        for (std::size_t c = 0; c < bs; ++c) {
          const double v = tile[bs * r + c];
          // Tiles are dense; structurally-zero entries inside a stored
          // tile must not become explicit CSR zeros.
          if (v != 0.0) {
            out.col_.push_back(bs * bj + c);
            out.val_.push_back(v);
          }
        }
      }
      out.row_ptr_[bs * bi + r + 1] = out.col_.size();
    }
  }
  return out;
}

}  // namespace tbmd::onx
