#include "src/onx/block_sparse.hpp"

#include <algorithm>
#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/onx/sparse.hpp"
#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace tbmd::onx {

namespace {

/// Keep a tile of squared Frobenius norm `norm2`?  A tile is dropped when
/// ||T||_F <= bs * tol, i.e. when its RMS entry is below the tolerance:
/// the perturbation from discarding it is then no larger than that of the
/// bs^2 scalar entries of magnitude tol the element-wise criterion already
/// tolerates dropping.  Reduces to |v| > tol exactly when bs == 1.
inline bool keep_tile(double norm2, std::size_t bs, double drop_tolerance) {
  const double scaled = static_cast<double>(bs) * drop_tolerance;
  return norm2 > scaled * scaled;
}

/// The rectangular-tile form of keep_tile: `count` is the tile's entry
/// count, so sqrt(count) plays the role the edge bs plays for square
/// tiles (they agree when count == bs^2, up to rounding -- which is why
/// the uniform paths keep calling keep_tile unchanged).
inline bool keep_tile_rect(double norm2, std::size_t count,
                           double drop_tolerance) {
  const double scaled =
      std::sqrt(static_cast<double>(count)) * drop_tolerance;
  return norm2 > scaled * scaled;
}

/// All entries equal (an all-equal dims vector normalizes to uniform mode)?
inline bool dims_uniform(const std::vector<std::uint32_t>& dims) {
  for (const std::uint32_t d : dims) {
    if (d != dims.front()) return false;
  }
  return true;
}

}  // namespace

void BlockSparseMatrix::refingerprint() {
  // FNV-1a over the structural identity: any pattern, dimension or storage
  // mode change yields a different fingerprint, so a stale BsrPattern can
  // never validate against a rebuilt operand.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int s = 0; s < 64; s += 8) {
      h ^= (v >> s) & 0xffu;
      h *= kPrime;
    }
  };
  mix(n_);
  mix(bs_);
  mix(sym_ ? 1u : 0u);
  // Variable mode: the per-row dims are part of the structure (bs_ == 0
  // there, so a variable matrix can never collide with a uniform one; the
  // loop is empty in uniform mode and fingerprints are unchanged).
  for (const std::uint32_t d : dims_) mix(d);
  for (const std::size_t r : row_ptr_) mix(r);
  for (const std::uint32_t c : col_) mix(c);
  pattern_fingerprint_ = h;
}

BlockSparseMatrix::BlockSparseMatrix(std::size_t n, std::size_t block_size,
                                     bool symmetric_half)
    : n_(n), bs_(block_size == 0 ? 1 : block_size), max_bs_(bs_),
      sym_(symmetric_half) {
  TBMD_REQUIRE(n % bs_ == 0,
               "BlockSparseMatrix: block size must divide the dimension");
  nb_ = n_ / bs_;
  row_ptr_.assign(nb_ + 1, 0);
  refingerprint();
}

BlockSparseMatrix::BlockSparseMatrix(const std::vector<std::uint32_t>& dims,
                                     bool symmetric_half)
    : sym_(symmetric_half) {
  TBMD_REQUIRE(!dims.empty(), "BlockSparseMatrix: empty block layout");
  std::size_t n = 0;
  std::uint32_t widest = 0;
  for (const std::uint32_t d : dims) {
    TBMD_REQUIRE(d > 0, "BlockSparseMatrix: zero block dimension");
    n += d;
    widest = std::max(widest, d);
  }
  n_ = n;
  nb_ = dims.size();
  if (dims_uniform(dims)) {
    bs_ = dims.front();
    max_bs_ = bs_;
  } else {
    bs_ = 0;
    max_bs_ = widest;
    dims_ = dims;
    offs_.resize(nb_ + 1);
    offs_[0] = 0;
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      offs_[bi + 1] = offs_[bi] + dims[bi];
    }
    val_ptr_.assign(1, 0);
  }
  row_ptr_.assign(nb_ + 1, 0);
  refingerprint();
}

BlockSparseMatrix BlockSparseMatrix::identity(std::size_t n,
                                              std::size_t block_size,
                                              bool symmetric_half) {
  BlockSparseMatrix m(n, block_size, symmetric_half);
  const std::size_t bs = m.bs_;
  m.col_.resize(m.nb_);
  m.val_.assign(m.nb_ * bs * bs, 0.0);
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    m.col_[bi] = static_cast<std::uint32_t>(bi);
    m.row_ptr_[bi + 1] = bi + 1;
    double* tile = m.val_.data() + bs * bs * bi;
    for (std::size_t a = 0; a < bs; ++a) tile[bs * a + a] = 1.0;
  }
  m.refingerprint();
  return m;
}

BlockSparseMatrix BlockSparseMatrix::identity(
    const std::vector<std::uint32_t>& dims, bool symmetric_half) {
  BlockSparseMatrix m(dims, symmetric_half);
  if (m.uniform_blocks()) return identity(m.n_, m.bs_, symmetric_half);
  m.col_.resize(m.nb_);
  m.val_ptr_.resize(m.nb_ + 1);
  m.val_ptr_[0] = 0;
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    const std::size_t d = dims[bi];
    m.val_ptr_[bi + 1] = m.val_ptr_[bi] + d * d;
  }
  m.val_.assign(m.val_ptr_[m.nb_], 0.0);
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    m.col_[bi] = static_cast<std::uint32_t>(bi);
    m.row_ptr_[bi + 1] = bi + 1;
    const std::size_t d = dims[bi];
    double* tile = m.val_.data() + m.val_ptr_[bi];
    for (std::size_t a = 0; a < d; ++a) tile[d * a + a] = 1.0;
  }
  m.refingerprint();
  return m;
}

BlockSparseMatrix BlockSparseMatrix::identity_like(
    const BlockSparseMatrix& like) {
  if (like.uniform_blocks()) return identity(like.n_, like.bs_, like.sym_);
  return identity(like.dims_, like.sym_);
}

BlockSparseMatrix BlockSparseMatrix::zeros_like(
    const BlockSparseMatrix& like) {
  if (like.uniform_blocks()) {
    return BlockSparseMatrix(like.n_, like.bs_, like.sym_);
  }
  return BlockSparseMatrix(like.dims_, like.sym_);
}

BlockSparseMatrix BlockSparseMatrix::from_dense(const linalg::Matrix& a,
                                                std::size_t block_size,
                                                double drop_tolerance) {
  TBMD_REQUIRE(a.rows() == a.cols(),
               "BlockSparseMatrix: matrix must be square");
  BlockSparseMatrix m(a.rows(), block_size);
  const std::size_t bs = m.bs_;
  std::vector<double> tile(bs * bs);
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    for (std::size_t bj = 0; bj < m.nb_; ++bj) {
      double norm2 = 0.0;
      for (std::size_t r = 0; r < bs; ++r) {
        const double* arow = a.row(bs * bi + r) + bs * bj;
        for (std::size_t c = 0; c < bs; ++c) {
          tile[bs * r + c] = arow[c];
          norm2 += arow[c] * arow[c];
        }
      }
      if (keep_tile(norm2, bs, drop_tolerance) || (bi == bj && norm2 > 0.0)) {
        m.col_.push_back(static_cast<std::uint32_t>(bj));
        m.val_.insert(m.val_.end(), tile.begin(), tile.end());
      }
    }
    m.row_ptr_[bi + 1] = m.col_.size();
  }
  m.refingerprint();
  return m;
}

BlockSparseMatrix BlockSparseMatrix::from_dense(
    const linalg::Matrix& a, const std::vector<std::uint32_t>& dims,
    double drop_tolerance) {
  BlockSparseMatrix m(dims, /*symmetric_half=*/false);
  if (m.uniform_blocks()) return from_dense(a, m.bs_, drop_tolerance);
  TBMD_REQUIRE(a.rows() == a.cols() && a.rows() == m.n_,
               "BlockSparseMatrix: dense/layout size mismatch");
  std::vector<double> tile(m.max_bs_ * m.max_bs_);
  for (std::size_t bi = 0; bi < m.nb_; ++bi) {
    const std::size_t di = m.dims_[bi];
    const std::size_t oi = m.offs_[bi];
    for (std::size_t bj = 0; bj < m.nb_; ++bj) {
      const std::size_t dj = m.dims_[bj];
      const std::size_t oj = m.offs_[bj];
      double norm2 = 0.0;
      for (std::size_t r = 0; r < di; ++r) {
        const double* arow = a.row(oi + r) + oj;
        for (std::size_t c = 0; c < dj; ++c) {
          tile[dj * r + c] = arow[c];
          norm2 += arow[c] * arow[c];
        }
      }
      if (keep_tile_rect(norm2, di * dj, drop_tolerance) ||
          (bi == bj && norm2 > 0.0)) {
        m.col_.push_back(static_cast<std::uint32_t>(bj));
        m.val_.insert(m.val_.end(), tile.begin(),
                      tile.begin() + static_cast<std::ptrdiff_t>(di * dj));
        m.val_ptr_.push_back(m.val_.size());
      }
    }
    m.row_ptr_[bi + 1] = m.col_.size();
  }
  m.refingerprint();
  return m;
}

linalg::Matrix BlockSparseMatrix::to_dense() const {
  // fp32 payloads densify through an exact fp64 conversion (diagnostics /
  // test path; never on the hot loop).
  if (prec_ == TilePrecision::kF32) {
    return to_precision(TilePrecision::kF64).to_dense();
  }
  if (!uniform_blocks()) {
    linalg::Matrix a(n_, n_, 0.0);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = dims_[bi];
      const std::size_t oi = offs_[bi];
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        const std::size_t bj = col_[k];
        const std::size_t dj = dims_[bj];
        const std::size_t oj = offs_[bj];
        const double* tile = block(k);
        for (std::size_t r = 0; r < di; ++r) {
          double* arow = a.row(oi + r) + oj;
          for (std::size_t c = 0; c < dj; ++c) arow[c] = tile[dj * r + c];
        }
        if (sym_ && bj != bi) {
          for (std::size_t r = 0; r < di; ++r) {
            for (std::size_t c = 0; c < dj; ++c) {
              a(oj + c, oi + r) = tile[dj * r + c];
            }
          }
        }
      }
    }
    return a;
  }
  linalg::Matrix a(n_, n_, 0.0);
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const std::size_t bj = col_[k];
      const double* tile = block(k);
      for (std::size_t r = 0; r < bs_; ++r) {
        double* arow = a.row(bs_ * bi + r) + bs_ * bj;
        for (std::size_t c = 0; c < bs_; ++c) arow[c] = tile[bs_ * r + c];
      }
      if (sym_ && bj != bi) {
        // Implicit mirror: A_JI = A_IJ^T.
        for (std::size_t r = 0; r < bs_; ++r) {
          for (std::size_t c = 0; c < bs_; ++c) {
            a(bs_ * bj + c, bs_ * bi + r) = tile[bs_ * r + c];
          }
        }
      }
    }
  }
  return a;
}

BlockSparseMatrix BlockSparseMatrix::to_symmetric_half() const {
  TBMD_REQUIRE(prec_ == TilePrecision::kF64,
               "to_symmetric_half: convert fp32 payloads to fp64 first");
  if (sym_) return *this;
  if (!uniform_blocks()) {
    BlockSparseMatrix out(dims_, true);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = dims_[bi];
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        if (col_[k] < bi) continue;  // lower half: the stored mirror's copy
        out.col_.push_back(col_[k]);
        const double* tile = block(k);
        out.val_.insert(out.val_.end(), tile, tile + di * dims_[col_[k]]);
        out.val_ptr_.push_back(out.val_.size());
      }
      out.row_ptr_[bi + 1] = out.col_.size();
    }
    out.refingerprint();
    return out;
  }
  BlockSparseMatrix out(n_, bs_, true);
  const std::size_t bs2 = bs_ * bs_;
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      if (col_[k] < bi) continue;  // lower half: the stored mirror's copy
      out.col_.push_back(col_[k]);
      const double* tile = block(k);
      out.val_.insert(out.val_.end(), tile, tile + bs2);
    }
    out.row_ptr_[bi + 1] = out.col_.size();
  }
  out.refingerprint();
  return out;
}

BlockSparseMatrix BlockSparseMatrix::to_full() const {
  TBMD_REQUIRE(prec_ == TilePrecision::kF64,
               "to_full: convert fp32 payloads to fp64 first");
  if (!sym_) return *this;
  if (!uniform_blocks()) {
    BlockSparseMatrix out(dims_, false);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      out.row_ptr_[bi + 1] += row_ptr_[bi + 1] - row_ptr_[bi];
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        if (col_[k] != bi) ++out.row_ptr_[col_[k] + 1];
      }
    }
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      out.row_ptr_[bi + 1] += out.row_ptr_[bi];
    }
    const std::size_t nblocks = out.row_ptr_[nb_];
    out.col_.resize(nblocks);
    // Pattern passes first (mirror then direct, same ordering as the
    // uniform path so every row comes out sorted) ...
    std::vector<std::size_t> fill(out.row_ptr_.begin(),
                                  out.row_ptr_.end() - 1);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        if (col_[k] == bi) continue;
        out.col_[fill[col_[k]]++] = static_cast<std::uint32_t>(bi);
      }
    }
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        out.col_[fill[bi]++] = col_[k];
      }
    }
    // ... then the per-tile value offsets the fills scatter through.
    out.val_ptr_.assign(nblocks + 1, 0);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      for (std::size_t k = out.row_ptr_[bi]; k < out.row_ptr_[bi + 1]; ++k) {
        out.val_ptr_[k + 1] =
            static_cast<std::size_t>(dims_[bi]) * dims_[out.col_[k]];
      }
    }
    for (std::size_t k = 0; k < nblocks; ++k) {
      out.val_ptr_[k + 1] += out.val_ptr_[k];
    }
    out.val_.assign(out.val_ptr_[nblocks], 0.0);
    fill.assign(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = dims_[bi];
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        const std::size_t bj = col_[k];
        if (bj == bi) continue;
        const std::size_t dj = dims_[bj];
        const std::size_t slot = fill[bj]++;
        const double* tile = block(k);
        double* dst = out.val_.data() + out.val_ptr_[slot];
        for (std::size_t r = 0; r < di; ++r) {
          for (std::size_t c = 0; c < dj; ++c) {
            dst[di * c + r] = tile[dj * r + c];
          }
        }
      }
    }
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = dims_[bi];
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        const std::size_t sz = di * dims_[col_[k]];
        const std::size_t slot = fill[bi]++;
        const double* tile = block(k);
        std::copy(tile, tile + sz,
                  out.val_.begin() +
                      static_cast<std::ptrdiff_t>(out.val_ptr_[slot]));
      }
    }
    out.refingerprint();
    return out;
  }
  BlockSparseMatrix out(n_, bs_, false);
  const std::size_t bs2 = bs_ * bs_;
  // Count: each stored tile lands in its own row, off-diagonal tiles also
  // mirror into row J.
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    out.row_ptr_[bi + 1] += row_ptr_[bi + 1] - row_ptr_[bi];
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      if (col_[k] != bi) ++out.row_ptr_[col_[k] + 1];
    }
  }
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    out.row_ptr_[bi + 1] += out.row_ptr_[bi];
  }
  const std::size_t nblocks = out.row_ptr_[nb_];
  out.col_.resize(nblocks);
  out.val_.assign(nblocks * bs2, 0.0);
  std::vector<std::size_t> fill(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  // Mirror pass first: for target row J the mirrored columns are all < J
  // and arrive in ascending source-row order, then the direct pass appends
  // columns >= J in stored order, so every row comes out sorted.
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const std::size_t bj = col_[k];
      if (bj == bi) continue;
      const std::size_t slot = fill[bj]++;
      out.col_[slot] = static_cast<std::uint32_t>(bi);
      const double* tile = block(k);
      double* dst = out.val_.data() + bs2 * slot;
      for (std::size_t r = 0; r < bs_; ++r) {
        for (std::size_t c = 0; c < bs_; ++c) {
          dst[bs_ * c + r] = tile[bs_ * r + c];
        }
      }
    }
  }
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const std::size_t slot = fill[bi]++;
      out.col_[slot] = col_[k];
      const double* tile = block(k);
      std::copy(tile, tile + bs2, out.val_.begin() +
                                      static_cast<std::ptrdiff_t>(bs2 * slot));
    }
  }
  out.refingerprint();
  return out;
}

std::size_t BlockSparseMatrix::logical_block_count() const {
  if (!sym_) return block_count();
  std::size_t diag = 0;
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    // Columns are sorted and >= bi, so a diagonal tile is first in its row.
    const std::size_t k = row_ptr_[bi];
    if (k < row_ptr_[bi + 1] && col_[k] == bi) ++diag;
  }
  return 2 * block_count() - diag;
}

std::size_t BlockSparseMatrix::logical_nnz() const {
  if (uniform_blocks()) return logical_block_count() * bs_ * bs_;
  if (!sym_) return val_.size();
  // Half storage: every stored entry mirrors except those of diagonal
  // tiles.
  std::size_t diag = 0;
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    const std::size_t k = row_ptr_[bi];
    if (k < row_ptr_[bi + 1] && col_[k] == bi) {
      diag += static_cast<std::size_t>(dims_[bi]) * dims_[bi];
    }
  }
  return 2 * val_.size() - diag;
}

std::size_t BlockSparseMatrix::block_index_of(std::size_t i) const {
  const auto it = std::upper_bound(offs_.begin(), offs_.end(), i);
  return static_cast<std::size_t>(it - offs_.begin()) - 1;
}

const double* BlockSparseMatrix::find_block(std::size_t bi,
                                            std::size_t bj) const {
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[bi]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[bi + 1]);
  const auto it =
      std::lower_bound(begin, end, static_cast<std::uint32_t>(bj));
  if (it == end || *it != bj) return nullptr;
  return block(static_cast<std::size_t>(it - col_.begin()));
}

std::size_t BlockSparseMatrix::find_block_index(std::size_t bi,
                                                std::size_t bj) const {
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[bi]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[bi + 1]);
  const auto it =
      std::lower_bound(begin, end, static_cast<std::uint32_t>(bj));
  if (it == end || *it != bj) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - col_.begin());
}

void BlockSparseMatrix::convert_precision(TilePrecision p) {
  if (p == prec_) return;
  if (p == TilePrecision::kF32) {
    val32_.resize(val_.size());
    for (std::size_t q = 0; q < val_.size(); ++q) {
      val32_[q] = static_cast<float>(val_[q]);
    }
    val_.clear();  // capacity retained for the promotion back to fp64
  } else {
    val_.resize(val32_.size());
    for (std::size_t q = 0; q < val32_.size(); ++q) {
      val_[q] = static_cast<double>(val32_[q]);
    }
    val32_.clear();  // capacity retained for the next demotion
  }
  prec_ = p;
}

BlockSparseMatrix BlockSparseMatrix::to_precision(TilePrecision p) const {
  BlockSparseMatrix out = *this;
  out.convert_precision(p);
  return out;
}

double BlockSparseMatrix::get(std::size_t i, std::size_t j) const {
  if (prec_ == TilePrecision::kF32) {
    std::size_t bi, bj, r, c;
    if (uniform_blocks()) {
      bi = i / bs_;
      bj = j / bs_;
      r = i % bs_;
      c = j % bs_;
    } else {
      bi = block_index_of(i);
      bj = block_index_of(j);
      r = i - offs_[bi];
      c = j - offs_[bj];
    }
    // Half storage: a lower-triangle query reads the stored mirror through
    // the symmetry A[i][j] == A[j][i].
    if (sym_ && bj < bi) {
      std::swap(bi, bj);
      std::swap(r, c);
    }
    const std::size_t k = find_block_index(bi, bj);
    if (k == static_cast<std::size_t>(-1)) return 0.0;
    const std::size_t dj = row_dim(bj);
    return static_cast<double>(block_f32(k)[dj * r + c]);
  }
  if (!uniform_blocks()) {
    std::size_t bi = block_index_of(i);
    std::size_t bj = block_index_of(j);
    std::size_t r = i - offs_[bi];
    std::size_t c = j - offs_[bj];
    // Half storage: a lower-triangle query reads the stored mirror through
    // the symmetry A[i][j] == A[j][i].
    if (sym_ && bj < bi) {
      std::swap(bi, bj);
      std::swap(r, c);
    }
    const double* tile = find_block(bi, bj);
    if (tile == nullptr) return 0.0;
    return tile[dims_[bj] * r + c];
  }
  std::size_t r = i, c = j;
  // Half storage: a lower-triangle query reads the stored mirror through
  // the symmetry A[i][j] == A[j][i].
  if (sym_ && j / bs_ < i / bs_) std::swap(r, c);
  const double* tile = find_block(r / bs_, c / bs_);
  if (tile == nullptr) return 0.0;
  return tile[bs_ * (r % bs_) + (c % bs_)];
}

double BlockSparseMatrix::trace() const {
  if (prec_ == TilePrecision::kF32) {
    // fp32 payloads, fp64 accumulation: the purification loop's trace-based
    // coefficients and convergence tests stay fp64 quantities even while
    // the tiles are demoted.  Serial over rows, so thread-count invariant
    // trivially.
    double t = 0.0;
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t k = find_block_index(bi, bi);
      if (k == static_cast<std::size_t>(-1)) continue;
      const float* tile = block_f32(k);
      const std::size_t d = row_dim(bi);
      for (std::size_t a = 0; a < d; ++a) {
        t += static_cast<double>(tile[d * a + a]);
      }
    }
    return t;
  }
  double t = 0.0;
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    const double* tile = find_block(bi, bi);
    if (tile == nullptr) continue;
    const std::size_t d = row_dim(bi);
    for (std::size_t a = 0; a < d; ++a) t += tile[d * a + a];
  }
  return t;
}

double BlockSparseMatrix::trace_of_product(const BlockSparseMatrix& b) const {
  TBMD_REQUIRE(layout_matches(b), "trace_of_product: size/block mismatch");
  TBMD_REQUIRE(sym_ == b.sym_, "trace_of_product: storage-mode mismatch");
  TBMD_REQUIRE(prec_ == TilePrecision::kF64 &&
                   b.prec_ == TilePrecision::kF64,
               "trace_of_product: fp64 operands only (the band-energy "
               "contraction runs after the mixed loop promotes)");
  // Per-block-row partials are filled in parallel (each slot written by
  // exactly one row) and summed serially in row order, so the trace is
  // bit-identical at any OMP_NUM_THREADS.  A reduction(+) clause would
  // group terms by thread and change the rounding with the team size.
  std::vector<double> row_t(nb_, 0.0);
  [[maybe_unused]] const bool par = nb_ > 64;
  if (sym_) {
    // Single upper-half pass.  With implicit mirrors A_JI = A_IJ^T the two
    // off-diagonal contributions tr(A_IJ B_JI) + tr(A_JI B_IJ) both reduce
    // to the elementwise dot <A_IJ, B_IJ>, hence the factor 2; diagonal
    // tiles contribute the plain tr(A_II B_II).
#pragma omp parallel for schedule(static) if (par)
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = row_dim(bi);
      double tr = 0.0;
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        const std::size_t bj = col_[k];
        const double* ta = block(k);
        const double* tb = b.find_block(bi, bj);
        if (tb == nullptr) continue;
        double s = 0.0;
        if (bj == bi) {
          for (std::size_t a = 0; a < di; ++a) {
            for (std::size_t c = 0; c < di; ++c) {
              s += ta[di * a + c] * tb[di * c + a];
            }
          }
        } else {
          const std::size_t sz = di * row_dim(bj);
          for (std::size_t q = 0; q < sz; ++q) s += ta[q] * tb[q];
          s *= 2.0;
        }
        tr += s;
      }
      row_t[bi] = tr;
    }
  } else {
#pragma omp parallel for schedule(static) if (par)
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = row_dim(bi);
      double tr = 0.0;
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        const std::size_t dj = row_dim(col_[k]);
        const double* ta = block(k);
        const double* tb = b.find_block(col_[k], bi);
        if (tb == nullptr) continue;
        // sum_ab A_IJ[a,b] * B_JI[b,a]
        double s = 0.0;
        for (std::size_t a = 0; a < di; ++a) {
          for (std::size_t c = 0; c < dj; ++c) {
            s += ta[dj * a + c] * tb[di * c + a];
          }
        }
        tr += s;
      }
      row_t[bi] = tr;
    }
  }
  double t = 0.0;
  for (std::size_t bi = 0; bi < nb_; ++bi) t += row_t[bi];
  return t;
}

void bsr_assemble(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                  BlockSparseMatrix& out, bool symmetric_half) {
  out.n_ = n;
  out.bs_ = bs;
  out.max_bs_ = bs;
  out.nb_ = n / bs;
  out.sym_ = symmetric_half;
  // A reused output may carry a variable layout or fp32 payloads from a
  // previous life.
  out.dims_.clear();
  out.offs_.clear();
  out.val_ptr_.clear();
  out.val32_.clear();
  out.prec_ = TilePrecision::kF64;
  const std::size_t nb = out.nb_;
  const std::size_t bs2 = bs * bs;
  TBMD_REQUIRE(ws.row_cols.size() >= nb && ws.row_vals.size() >= nb,
               "bsr_assemble: workspace rows missing");
  out.row_ptr_.assign(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.row_ptr_[bi + 1] = out.row_ptr_[bi] + ws.row_cols[bi].size();
  }
  const std::size_t nblocks = out.row_ptr_[nb];
  out.col_.resize(nblocks);
  out.val_.resize(nblocks * bs2);
  [[maybe_unused]] const bool par = nb > 64;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.row_ptr_[bi];
    std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
              out.col_.begin() + static_cast<std::ptrdiff_t>(at));
    std::copy(ws.row_vals[bi].begin(), ws.row_vals[bi].end(),
              out.val_.begin() + static_cast<std::ptrdiff_t>(at * bs2));
  }
  out.refingerprint();
}

void bsr_assemble(const std::vector<std::uint32_t>& dims, BsrWorkspace& ws,
                  BlockSparseMatrix& out, bool symmetric_half) {
  TBMD_REQUIRE(!dims.empty(), "bsr_assemble: empty block layout");
  std::size_t n = 0;
  std::uint32_t widest = 0;
  for (const std::uint32_t d : dims) {
    n += d;
    widest = std::max(widest, d);
  }
  if (dims_uniform(dims)) {
    bsr_assemble(n, dims.front(), ws, out, symmetric_half);
    return;
  }
  const std::size_t nb = dims.size();
  TBMD_REQUIRE(ws.row_cols.size() >= nb && ws.row_vals.size() >= nb,
               "bsr_assemble: workspace rows missing");
  out.n_ = n;
  out.bs_ = 0;
  out.max_bs_ = widest;
  out.nb_ = nb;
  out.sym_ = symmetric_half;
  out.val32_.clear();
  out.prec_ = TilePrecision::kF64;
  out.dims_ = dims;
  out.offs_.resize(nb + 1);
  out.offs_[0] = 0;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.offs_[bi + 1] = out.offs_[bi] + dims[bi];
  }
  out.row_ptr_.assign(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.row_ptr_[bi + 1] = out.row_ptr_[bi] + ws.row_cols[bi].size();
  }
  const std::size_t nblocks = out.row_ptr_[nb];
  out.col_.resize(nblocks);
  out.val_ptr_.assign(nblocks + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.row_ptr_[bi];
    std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
              out.col_.begin() + static_cast<std::ptrdiff_t>(at));
    for (std::size_t k = at; k < out.row_ptr_[bi + 1]; ++k) {
      out.val_ptr_[k + 1] =
          static_cast<std::size_t>(dims[bi]) * dims[out.col_[k]];
    }
  }
  for (std::size_t k = 0; k < nblocks; ++k) {
    out.val_ptr_[k + 1] += out.val_ptr_[k];
  }
  out.val_.resize(out.val_ptr_[nblocks]);
  [[maybe_unused]] const bool par = nb > 64;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.val_ptr_[out.row_ptr_[bi]];
    TBMD_REQUIRE(ws.row_vals[bi].size() ==
                     out.val_ptr_[out.row_ptr_[bi + 1]] - at,
                 "bsr_assemble: staged row size does not match the layout");
    std::copy(ws.row_vals[bi].begin(), ws.row_vals[bi].end(),
              out.val_.begin() + static_cast<std::ptrdiff_t>(at));
  }
  out.refingerprint();
}

void BlockSparseMatrix::assemble_f32(std::size_t n, std::size_t bs,
                                     BsrWorkspace& ws, BlockSparseMatrix& out,
                                     bool symmetric_half) {
  out.n_ = n;
  out.bs_ = bs;
  out.max_bs_ = bs;
  out.nb_ = n / bs;
  out.sym_ = symmetric_half;
  // A reused output may carry a variable layout or fp64 payloads from a
  // previous life.
  out.dims_.clear();
  out.offs_.clear();
  out.val_ptr_.clear();
  out.val_.clear();
  out.prec_ = TilePrecision::kF32;
  const std::size_t nb = out.nb_;
  const std::size_t bs2 = bs * bs;
  TBMD_REQUIRE(ws.row_cols.size() >= nb && ws.row_vals32.size() >= nb,
               "assemble_f32: workspace rows missing");
  out.row_ptr_.assign(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.row_ptr_[bi + 1] = out.row_ptr_[bi] + ws.row_cols[bi].size();
  }
  const std::size_t nblocks = out.row_ptr_[nb];
  out.col_.resize(nblocks);
  out.val32_.resize(nblocks * bs2);
  [[maybe_unused]] const bool par = nb > 64;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.row_ptr_[bi];
    std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
              out.col_.begin() + static_cast<std::ptrdiff_t>(at));
    std::copy(ws.row_vals32[bi].begin(), ws.row_vals32[bi].end(),
              out.val32_.begin() + static_cast<std::ptrdiff_t>(at * bs2));
  }
  out.refingerprint();
}

void BlockSparseMatrix::assemble_f32(const std::vector<std::uint32_t>& dims,
                                     BsrWorkspace& ws, BlockSparseMatrix& out,
                                     bool symmetric_half) {
  TBMD_REQUIRE(!dims.empty(), "assemble_f32: empty block layout");
  std::size_t n = 0;
  std::uint32_t widest = 0;
  for (const std::uint32_t d : dims) {
    n += d;
    widest = std::max(widest, d);
  }
  if (dims_uniform(dims)) {
    assemble_f32(n, dims.front(), ws, out, symmetric_half);
    return;
  }
  const std::size_t nb = dims.size();
  TBMD_REQUIRE(ws.row_cols.size() >= nb && ws.row_vals32.size() >= nb,
               "assemble_f32: workspace rows missing");
  out.n_ = n;
  out.bs_ = 0;
  out.max_bs_ = widest;
  out.nb_ = nb;
  out.sym_ = symmetric_half;
  out.val_.clear();
  out.prec_ = TilePrecision::kF32;
  out.dims_ = dims;
  out.offs_.resize(nb + 1);
  out.offs_[0] = 0;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.offs_[bi + 1] = out.offs_[bi] + dims[bi];
  }
  out.row_ptr_.assign(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    out.row_ptr_[bi + 1] = out.row_ptr_[bi] + ws.row_cols[bi].size();
  }
  const std::size_t nblocks = out.row_ptr_[nb];
  out.col_.resize(nblocks);
  out.val_ptr_.assign(nblocks + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.row_ptr_[bi];
    std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
              out.col_.begin() + static_cast<std::ptrdiff_t>(at));
    for (std::size_t k = at; k < out.row_ptr_[bi + 1]; ++k) {
      out.val_ptr_[k + 1] =
          static_cast<std::size_t>(dims[bi]) * dims[out.col_[k]];
    }
  }
  for (std::size_t k = 0; k < nblocks; ++k) {
    out.val_ptr_[k + 1] += out.val_ptr_[k];
  }
  out.val32_.resize(out.val_ptr_[nblocks]);
  [[maybe_unused]] const bool par = nb > 64;
#pragma omp parallel for schedule(static) if (par)
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t at = out.val_ptr_[out.row_ptr_[bi]];
    TBMD_REQUIRE(ws.row_vals32[bi].size() ==
                     out.val_ptr_[out.row_ptr_[bi + 1]] - at,
                 "assemble_f32: staged row size does not match the layout");
    std::copy(ws.row_vals32[bi].begin(), ws.row_vals32[bi].end(),
              out.val32_.begin() + static_cast<std::ptrdiff_t>(at));
  }
  out.refingerprint();
}

namespace {

/// Grow-and-clear the staging rows without releasing their capacity.
void reset_workspace(BsrWorkspace& ws, std::size_t nb) {
  if (ws.row_cols.size() < nb) ws.row_cols.resize(nb);
  if (ws.row_vals.size() < nb) ws.row_vals.resize(nb);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    ws.row_cols[bi].clear();
    ws.row_vals[bi].clear();
  }
}

/// reset_workspace() for the kF32 sweeps (fp32 staging rows).
void reset_workspace_f32(BsrWorkspace& ws, std::size_t nb) {
  if (ws.row_cols.size() < nb) ws.row_cols.resize(nb);
  if (ws.row_vals32.size() < nb) ws.row_vals32.resize(nb);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    ws.row_cols[bi].clear();
    ws.row_vals32[bi].clear();
  }
}

/// Mirror-expand the half pattern of `a` into a full per-row adjacency:
/// for every block row the sorted list of neighbors, each entry naming the
/// stored upper-half tile and whether it must be read transposed.  Two
/// passes keep each row sorted without a per-row sort: mirrored neighbors
/// (columns < row, ascending with the source-row scan) first, then the
/// stored row itself (columns >= row, already sorted).
void build_sym_adjacency(const BlockSparseMatrix& a,
                         BsrWorkspace::SymAdjacency& adj) {
  const auto& row_ptr = a.row_ptr();
  const auto& cols = a.cols();
  const std::size_t nb = a.block_rows();
  adj.ptr.assign(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    adj.ptr[bi + 1] += row_ptr[bi + 1] - row_ptr[bi];
    for (std::size_t k = row_ptr[bi]; k < row_ptr[bi + 1]; ++k) {
      if (cols[k] != bi) ++adj.ptr[cols[k] + 1];
    }
  }
  for (std::size_t bi = 0; bi < nb; ++bi) adj.ptr[bi + 1] += adj.ptr[bi];
  const std::size_t total = adj.ptr[nb];
  adj.col.resize(total);
  adj.tile.resize(total);
  adj.trans.resize(total);
  adj.fill.assign(adj.ptr.begin(), adj.ptr.end() - 1);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t k = row_ptr[bi]; k < row_ptr[bi + 1]; ++k) {
      const std::size_t bj = cols[k];
      if (bj == bi) continue;
      const std::size_t slot = adj.fill[bj]++;
      adj.col[slot] = static_cast<std::uint32_t>(bi);
      adj.tile[slot] = static_cast<std::uint32_t>(k);
      adj.trans[slot] = 1;
    }
  }
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t k = row_ptr[bi]; k < row_ptr[bi + 1]; ++k) {
      const std::size_t slot = adj.fill[bi]++;
      adj.col[slot] = cols[k];
      adj.tile[slot] = static_cast<std::uint32_t>(k);
      adj.trans[slot] = 0;
    }
  }
}

/// First adjacency entry of row `bk` with column >= `bi` (the J >= I
/// restriction of the upper-half product sweep).
inline std::size_t adj_lower_bound(const BsrWorkspace::SymAdjacency& adj,
                                   std::size_t bk, std::size_t bi) {
  const auto begin = adj.col.begin() + static_cast<std::ptrdiff_t>(adj.ptr[bk]);
  const auto end =
      adj.col.begin() + static_cast<std::ptrdiff_t>(adj.ptr[bk + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(bi));
  return static_cast<std::size_t>(it - adj.col.begin());
}

}  // namespace

void BsrWorkspace::shrink(const BsrShrinkPolicy& policy) {
  const std::size_t nb = policy.block_rows;
  const std::size_t bs2 = policy.block_size * policy.block_size;
  if (row_cols.size() > nb) row_cols.resize(nb);
  if (row_vals.size() > nb) row_vals.resize(nb);
  if (row_vals32.size() > nb) row_vals32.resize(nb);
  for (auto& r : row_cols) {
    r.clear();
    r.shrink_to_fit();
  }
  for (auto& r : row_vals) {
    r.clear();
    r.shrink_to_fit();
  }
  for (auto& r : row_vals32) {
    r.clear();
    r.shrink_to_fit();
  }
  for (auto& a : acc) {
    // Sized nb * bs2 with an all-zero invariant between uses; shrinking
    // keeps the invariant (resize-to-smaller only drops zeros).
    if (a.size() > nb * bs2) a.resize(nb * bs2);
    a.shrink_to_fit();
  }
  for (auto& a : acc32) {
    if (a.size() > nb * bs2) a.resize(nb * bs2);
    a.shrink_to_fit();
  }
  for (auto& h : hit) {
    if (h.size() > nb) h.resize(nb);
    h.shrink_to_fit();
  }
  for (auto& tv : touched) {
    tv.clear();
    tv.shrink_to_fit();
  }
  for (auto* adj : {&adj_a, &adj_b}) {
    adj->ptr.clear();
    adj->ptr.shrink_to_fit();
    adj->col.clear();
    adj->col.shrink_to_fit();
    adj->tile.clear();
    adj->tile.shrink_to_fit();
    adj->trans.clear();
    adj->trans.shrink_to_fit();
    adj->fill.clear();
    adj->fill.shrink_to_fit();
  }
  // Stale domain cuts would reference rows beyond the shrunk system; the
  // owner re-derives them per step anyway.
  domains.clear();
  domains.shrink_to_fit();
}

std::size_t BsrWorkspace::footprint_bytes() const {
  std::size_t total = 0;
  const auto vec = [&total](const auto& v) {
    total += v.capacity() * sizeof(v[0]);
  };
  const auto nested = [&total, &vec](const auto& outer) {
    total += outer.capacity() * sizeof(outer[0]);
    for (const auto& inner : outer) vec(inner);
  };
  nested(row_cols);
  nested(row_vals);
  nested(row_vals32);
  nested(acc);
  nested(acc32);
  nested(hit);
  nested(touched);
  for (const auto* adj : {&adj_a, &adj_b}) {
    vec(adj->ptr);
    vec(adj->col);
    vec(adj->tile);
    vec(adj->trans);
    vec(adj->fill);
  }
  vec(domains);
  return total;
}

void BlockSparseMatrix::combine_into(double alpha, const BlockSparseMatrix& b,
                                     double beta, double drop_tolerance,
                                     BlockSparseMatrix& out, BsrWorkspace& ws,
                                     double sub_tile_drop) const {
  TBMD_REQUIRE(layout_matches(b), "combine: size/block mismatch");
  TBMD_REQUIRE(sym_ == b.sym_, "combine: storage-mode mismatch");
  TBMD_REQUIRE(prec_ == b.prec_, "combine: tile-precision mismatch");
  TBMD_REQUIRE(&out != this && &out != &b,
               "combine_into: output must not alias an operand");
  if (prec_ == TilePrecision::kF32) {
    combine_f32_into(alpha, b, beta, drop_tolerance, sub_tile_drop, out, ws);
    return;
  }
  if (!uniform_blocks()) {
    reset_workspace(ws, nb_);
#pragma omp parallel for schedule(static) if (nb_ > 64)
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = dims_[bi];
      auto& cols = ws.row_cols[bi];
      auto& vals = ws.row_vals[bi];
      std::size_t ka = row_ptr_[bi], ea = row_ptr_[bi + 1];
      std::size_t kb = b.row_ptr_[bi], eb = b.row_ptr_[bi + 1];
      while (ka < ea || kb < eb) {
        std::uint32_t bj;
        if (ka < ea && (kb >= eb || col_[ka] <= b.col_[kb])) {
          bj = col_[ka];
        } else {
          bj = b.col_[kb];
        }
        const std::size_t dj = dims_[bj];
        const std::size_t sz = di * dj;
        const std::size_t at = vals.size();
        vals.resize(at + sz, 0.0);
        double* tile = vals.data() + at;
        if (ka < ea && col_[ka] == bj) {
          const double* ta = block(ka);
          for (std::size_t q = 0; q < sz; ++q) tile[q] = alpha * ta[q];
          ++ka;
          if (kb < eb && b.col_[kb] == bj) {
            const double* tb = b.block(kb);
            for (std::size_t q = 0; q < sz; ++q) tile[q] += beta * tb[q];
            ++kb;
          }
        } else {
          const double* tb = b.block(kb);
          for (std::size_t q = 0; q < sz; ++q) tile[q] = beta * tb[q];
          ++kb;
        }
        // Scalar-granular truncation (off at the 0.0 default): zero small
        // entries inside the staged tile before the Frobenius test.
        if (sub_tile_drop > 0.0) {
          for (std::size_t q = 0; q < sz; ++q) {
            if (std::fabs(tile[q]) <= sub_tile_drop) tile[q] = 0.0;
          }
        }
        const double norm2 = linalg::tile_norm2_rect(di, dj, tile);
        if (keep_tile_rect(norm2, sz, drop_tolerance) ||
            (bj == bi && norm2 > 0.0)) {
          cols.push_back(bj);
        } else {
          vals.resize(at);  // rejected: roll the staged tile back
        }
      }
    }
    bsr_assemble(dims_, ws, out, sym_);
    return;
  }
  const std::size_t bs2 = bs_ * bs_;
  reset_workspace(ws, nb_);
#pragma omp parallel for schedule(static) if (nb_ > 64)
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    auto& cols = ws.row_cols[bi];
    auto& vals = ws.row_vals[bi];
    std::size_t ka = row_ptr_[bi], ea = row_ptr_[bi + 1];
    std::size_t kb = b.row_ptr_[bi], eb = b.row_ptr_[bi + 1];
    while (ka < ea || kb < eb) {
      std::uint32_t bj;
      const std::size_t at = vals.size();
      vals.resize(at + bs2, 0.0);
      double* tile = vals.data() + at;
      if (ka < ea && (kb >= eb || col_[ka] <= b.col_[kb])) {
        bj = col_[ka];
        const double* ta = block(ka);
        for (std::size_t q = 0; q < bs2; ++q) tile[q] = alpha * ta[q];
        ++ka;
        if (kb < eb && b.col_[kb] == bj) {
          const double* tb = b.block(kb);
          for (std::size_t q = 0; q < bs2; ++q) tile[q] += beta * tb[q];
          ++kb;
        }
      } else {
        bj = b.col_[kb];
        const double* tb = b.block(kb);
        for (std::size_t q = 0; q < bs2; ++q) tile[q] = beta * tb[q];
        ++kb;
      }
      if (sub_tile_drop > 0.0) {
        for (std::size_t q = 0; q < bs2; ++q) {
          if (std::fabs(tile[q]) <= sub_tile_drop) tile[q] = 0.0;
        }
      }
      const double norm2 = linalg::tile_norm2(bs_, tile);
      if (keep_tile(norm2, bs_, drop_tolerance) || (bj == bi && norm2 > 0.0)) {
        cols.push_back(bj);
      } else {
        vals.resize(at);  // rejected: roll the staged tile back
      }
    }
  }
  bsr_assemble(n_, bs_, ws, out, sym_);
}

BlockSparseMatrix BlockSparseMatrix::combine(double alpha,
                                             const BlockSparseMatrix& b,
                                             double beta,
                                             double drop_tolerance) const {
  BlockSparseMatrix out;
  BsrWorkspace ws;
  combine_into(alpha, b, beta, drop_tolerance, out, ws);
  return out;
}

void BlockSparseMatrix::combine_f32_into(double alpha,
                                         const BlockSparseMatrix& b,
                                         double beta, double drop_tolerance,
                                         double sub_tile_drop,
                                         BlockSparseMatrix& out,
                                         BsrWorkspace& ws) const {
  // fp32 twin of combine_into (the mixed loop's iteration update).  Each
  // output entry is combined in fp64 from the fp32 operand entries and
  // rounded exactly once on store, so the update adds no accumulation
  // error beyond the storage rounding itself.  Structure logic mirrors the
  // fp64 sweep line for line.
  if (!uniform_blocks()) {
    reset_workspace_f32(ws, nb_);
#pragma omp parallel for schedule(static) if (nb_ > 64)
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = dims_[bi];
      auto& cols = ws.row_cols[bi];
      auto& vals = ws.row_vals32[bi];
      std::size_t ka = row_ptr_[bi], ea = row_ptr_[bi + 1];
      std::size_t kb = b.row_ptr_[bi], eb = b.row_ptr_[bi + 1];
      while (ka < ea || kb < eb) {
        std::uint32_t bj;
        if (ka < ea && (kb >= eb || col_[ka] <= b.col_[kb])) {
          bj = col_[ka];
        } else {
          bj = b.col_[kb];
        }
        const std::size_t dj = dims_[bj];
        const std::size_t sz = di * dj;
        const std::size_t at = vals.size();
        vals.resize(at + sz, 0.0f);
        float* tile = vals.data() + at;
        if (ka < ea && col_[ka] == bj) {
          const float* ta = block_f32(ka);
          if (kb < eb && b.col_[kb] == bj) {
            const float* tb = b.block_f32(kb);
            for (std::size_t q = 0; q < sz; ++q) {
              tile[q] = static_cast<float>(
                  alpha * static_cast<double>(ta[q]) +
                  beta * static_cast<double>(tb[q]));
            }
            ++kb;
          } else {
            for (std::size_t q = 0; q < sz; ++q) {
              tile[q] = static_cast<float>(alpha * static_cast<double>(ta[q]));
            }
          }
          ++ka;
        } else {
          const float* tb = b.block_f32(kb);
          for (std::size_t q = 0; q < sz; ++q) {
            tile[q] = static_cast<float>(beta * static_cast<double>(tb[q]));
          }
          ++kb;
        }
        if (sub_tile_drop > 0.0) {
          const float sub = static_cast<float>(sub_tile_drop);
          for (std::size_t q = 0; q < sz; ++q) {
            if (std::fabs(tile[q]) <= sub) tile[q] = 0.0f;
          }
        }
        const double norm2 = linalg::tile_norm2_rect_f32(di, dj, tile);
        if (keep_tile_rect(norm2, sz, drop_tolerance) ||
            (bj == bi && norm2 > 0.0)) {
          cols.push_back(bj);
        } else {
          vals.resize(at);  // rejected: roll the staged tile back
        }
      }
    }
    assemble_f32(dims_, ws, out, sym_);
    return;
  }
  const std::size_t bs2 = bs_ * bs_;
  reset_workspace_f32(ws, nb_);
#pragma omp parallel for schedule(static) if (nb_ > 64)
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    auto& cols = ws.row_cols[bi];
    auto& vals = ws.row_vals32[bi];
    std::size_t ka = row_ptr_[bi], ea = row_ptr_[bi + 1];
    std::size_t kb = b.row_ptr_[bi], eb = b.row_ptr_[bi + 1];
    while (ka < ea || kb < eb) {
      std::uint32_t bj;
      const std::size_t at = vals.size();
      vals.resize(at + bs2, 0.0f);
      float* tile = vals.data() + at;
      if (ka < ea && (kb >= eb || col_[ka] <= b.col_[kb])) {
        bj = col_[ka];
        const float* ta = block_f32(ka);
        if (kb < eb && b.col_[kb] == bj) {
          const float* tb = b.block_f32(kb);
          for (std::size_t q = 0; q < bs2; ++q) {
            tile[q] = static_cast<float>(alpha * static_cast<double>(ta[q]) +
                                         beta * static_cast<double>(tb[q]));
          }
          ++kb;
        } else {
          for (std::size_t q = 0; q < bs2; ++q) {
            tile[q] = static_cast<float>(alpha * static_cast<double>(ta[q]));
          }
        }
        ++ka;
      } else {
        bj = b.col_[kb];
        const float* tb = b.block_f32(kb);
        for (std::size_t q = 0; q < bs2; ++q) {
          tile[q] = static_cast<float>(beta * static_cast<double>(tb[q]));
        }
        ++kb;
      }
      if (sub_tile_drop > 0.0) {
        const float sub = static_cast<float>(sub_tile_drop);
        for (std::size_t q = 0; q < bs2; ++q) {
          if (std::fabs(tile[q]) <= sub) tile[q] = 0.0f;
        }
      }
      const double norm2 = linalg::tile_norm2_f32(bs_, tile);
      if (keep_tile(norm2, bs_, drop_tolerance) || (bj == bi && norm2 > 0.0)) {
        cols.push_back(bj);
      } else {
        vals.resize(at);  // rejected: roll the staged tile back
      }
    }
  }
  assemble_f32(n_, bs_, ws, out, sym_);
}

void BlockSparseMatrix::multiply_into(const BlockSparseMatrix& b,
                                      double drop_tolerance,
                                      BlockSparseMatrix& out,
                                      BsrWorkspace& ws) const {
  if (sym_ || b.sym_) {
    TBMD_REQUIRE(sym_ && b.sym_, "multiply: storage-mode mismatch");
    multiply_sym_into(b, drop_tolerance, out, ws, nullptr);
    return;
  }
  TBMD_REQUIRE(layout_matches(b), "multiply: size/block mismatch");
  TBMD_REQUIRE(prec_ == TilePrecision::kF64 &&
                   b.prec_ == TilePrecision::kF64,
               "multiply_into: full-storage products are fp64-only (the "
               "mixed loop runs on symmetric-half operands)");
  TBMD_REQUIRE(&out != this && &out != &b,
               "multiply_into: output must not alias an operand");
  const std::size_t bs2 = max_bs_ * max_bs_;  // accumulator tile stride
  const bool var = !uniform_blocks();
  reset_workspace(ws, nb_);
  const auto nthreads = static_cast<std::size_t>(par::max_threads());
  if (ws.acc.size() < nthreads) {
    ws.acc.resize(nthreads);
    ws.hit.resize(nthreads);
    ws.touched.resize(nthreads);
  }

#pragma omp parallel
  {
    // Per-thread dense block accumulator (Gustavson over block rows): one
    // bs x bs tile per block column plus an occupancy flag; `touched`
    // records which columns were hit so only those are swept and reset.
    // The buffers live in the workspace: the sweep leaves acc/hit all-zero
    // after each row, so they are only (re)zeroed when they grow.
    const auto tid = static_cast<std::size_t>(par::thread_id());
    std::vector<double>& acc = ws.acc[tid];
    std::vector<std::uint8_t>& hit = ws.hit[tid];
    std::vector<std::uint32_t>& touched = ws.touched[tid];
    if (acc.size() < nb_ * bs2) acc.assign(nb_ * bs2, 0.0);
    if (hit.size() < nb_) hit.assign(nb_, 0);
    touched.reserve(256);

#pragma omp for schedule(dynamic, 8)
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = row_dim(bi);
      touched.clear();
      for (std::size_t ka = row_ptr_[bi]; ka < row_ptr_[bi + 1]; ++ka) {
        const std::size_t bk = col_[ka];
        const std::size_t dk = row_dim(bk);
        const double* ta = block(ka);
        for (std::size_t kb = b.row_ptr_[bk]; kb < b.row_ptr_[bk + 1]; ++kb) {
          const std::uint32_t bj = b.col_[kb];
          if (hit[bj] == 0) {
            hit[bj] = 1;
            touched.push_back(bj);
          }
          if (var) {
            linalg::gemm_micro_add_rect(di, dk, row_dim(bj), false, false,
                                        ta, b.block(kb),
                                        acc.data() + bs2 * bj);
          } else {
            linalg::gemm_micro_add(bs_, ta, b.block(kb),
                                   acc.data() + bs2 * bj);
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& cols = ws.row_cols[bi];
      auto& vals = ws.row_vals[bi];
      cols.reserve(touched.size());
      for (const std::uint32_t bj : touched) {
        double* tile = acc.data() + bs2 * bj;
        if (var) {
          const std::size_t dj = dims_[bj];
          const std::size_t sz = di * dj;
          const double norm2 = linalg::tile_norm2_rect(di, dj, tile);
          if (keep_tile_rect(norm2, sz, drop_tolerance) ||
              (bj == bi && norm2 > 0.0)) {
            cols.push_back(bj);
            vals.insert(vals.end(), tile, tile + sz);
          }
          std::fill(tile, tile + sz, 0.0);
        } else {
          const double norm2 = linalg::tile_norm2(bs_, tile);
          if (keep_tile(norm2, bs_, drop_tolerance) ||
              (bj == bi && norm2 > 0.0)) {
            cols.push_back(bj);
            vals.insert(vals.end(), tile, tile + bs2);
          }
          std::fill(tile, tile + bs2, 0.0);
        }
        hit[bj] = 0;
      }
    }
  }
  if (var) {
    bsr_assemble(dims_, ws, out);
  } else {
    bsr_assemble(n_, bs_, ws, out);
  }
}

void BlockSparseMatrix::multiply_sym_into(const BlockSparseMatrix& b,
                                          double drop_tolerance,
                                          BlockSparseMatrix& out,
                                          BsrWorkspace& ws,
                                          BsrPattern* pattern,
                                          double sub_tile_drop,
                                          bool simd) const {
  TBMD_REQUIRE(layout_matches(b), "multiply_sym: size/block mismatch");
  TBMD_REQUIRE(sym_ && b.sym_,
               "multiply_sym: operands must be symmetric-half");
  TBMD_REQUIRE(prec_ == b.prec_, "multiply_sym: tile-precision mismatch");
  TBMD_REQUIRE(&out != this && &out != &b,
               "multiply_sym_into: output must not alias an operand");
  if (prec_ == TilePrecision::kF32) {
    multiply_sym_f32_into(b, drop_tolerance, sub_tile_drop, simd, out, ws,
                          pattern);
    return;
  }
  const std::size_t bs2 = max_bs_ * max_bs_;  // accumulator tile stride
  const bool var = !uniform_blocks();

  // Mirror-expanded adjacencies (shared when squaring).  O(stored tiles):
  // input bookkeeping, not symbolic-phase work -- the symbolic phase below
  // is the Gustavson discovery of the *output* pattern.
  build_sym_adjacency(*this, ws.adj_a);
  const BsrWorkspace::SymAdjacency& adj_a = ws.adj_a;
  if (&b != this) build_sym_adjacency(b, ws.adj_b);
  const BsrWorkspace::SymAdjacency& adj_b = (&b == this) ? ws.adj_a : ws.adj_b;

  BsrPattern local;
  BsrPattern& pat = pattern != nullptr ? *pattern : local;
  const bool warm = pat.valid && pat.a_fingerprint == pattern_fingerprint_ &&
                    pat.b_fingerprint == b.pattern_fingerprint_;

  const auto nthreads = static_cast<std::size_t>(par::max_threads());
  if (ws.acc.size() < nthreads) {
    ws.acc.resize(nthreads);
    ws.hit.resize(nthreads);
    ws.touched.resize(nthreads);
  }

  // Optional contiguous row-domain decomposition (ws.domains): both phases
  // then sweep whole domains with a static round-robin so thread t owns
  // the same rows every call (cache/NUMA affinity across purification
  // iterations).  Per-row work is untouched, so the output is
  // bit-identical with or without sharding at any thread count.
  const std::vector<std::size_t>& dom = ws.domains;
  const bool sharded =
      dom.size() > 2 && dom.front() == 0 && dom.back() == nb_;

  if (!warm) {
    // Symbolic phase: discover the upper-half output pattern (no flops).
    ++ws.stats.symbolic_builds;
    reset_workspace(ws, nb_);
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(par::thread_id());
      std::vector<std::uint8_t>& hit = ws.hit[tid];
      std::vector<std::uint32_t>& touched = ws.touched[tid];
      if (hit.size() < nb_) hit.assign(nb_, 0);
      touched.reserve(256);
      // always_inline: keeps the row body a leaf of the outlined parallel
      // region instead of a separately-emitted lambda call.
      const auto symbolic_row = [&](std::size_t bi)
          __attribute__((always_inline)) {
        touched.clear();
        for (std::size_t ua = adj_a.ptr[bi]; ua < adj_a.ptr[bi + 1]; ++ua) {
          const std::size_t bk = adj_a.col[ua];
          for (std::size_t ub = adj_lower_bound(adj_b, bk, bi);
               ub < adj_b.ptr[bk + 1]; ++ub) {
            const std::uint32_t bj = adj_b.col[ub];
            if (hit[bj] == 0) {
              hit[bj] = 1;
              touched.push_back(bj);
            }
          }
        }
        std::sort(touched.begin(), touched.end());
        ws.row_cols[bi].assign(touched.begin(), touched.end());
        for (const std::uint32_t bj : touched) hit[bj] = 0;
      };
      if (sharded) {
#pragma omp for schedule(static, 1)
        for (std::size_t d = 0; d < dom.size() - 1; ++d) {
          for (std::size_t bi = dom[d]; bi < dom[d + 1]; ++bi) {
            symbolic_row(bi);
          }
        }
      } else {
#pragma omp for schedule(dynamic, 8)
        for (std::size_t bi = 0; bi < nb_; ++bi) symbolic_row(bi);
      }
    }
    pat.row_ptr.assign(nb_ + 1, 0);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      pat.row_ptr[bi + 1] = pat.row_ptr[bi] + ws.row_cols[bi].size();
    }
    pat.cols.resize(pat.row_ptr[nb_]);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
                pat.cols.begin() +
                    static_cast<std::ptrdiff_t>(pat.row_ptr[bi]));
    }
    pat.a_fingerprint = pattern_fingerprint_;
    pat.b_fingerprint = b.pattern_fingerprint_;
    pat.valid = true;
  } else {
    ++ws.stats.numeric_reuses;
  }

  // Numeric phase on the (frozen or just-built) pattern: identical sweep
  // and accumulation order either way, so warm results are bit-identical
  // to cold ones.  Truncation prunes against the pattern during the
  // gather; the pattern itself stays frozen (it describes the un-truncated
  // Gustavson product of the operand patterns).
  reset_workspace(ws, nb_);
  // The row body lives in one always_inline lambda (per-thread accumulator
  // passed as an argument) and each scheduling variant gets its own
  // parallel region, so the default path's outlined function holds exactly
  // the pre-sharding single loop -- the hot sweep's codegen cannot be
  // perturbed by the opt-in domain branch (interleaved A/B on
  // BM_BsrSpMMSym/216 confirms parity with the pre-sharding kernel).
  const auto numeric_row = [&](std::size_t bi, std::vector<double>& acc)
      __attribute__((always_inline)) {
    const std::size_t di = row_dim(bi);
    for (std::size_t ua = adj_a.ptr[bi]; ua < adj_a.ptr[bi + 1]; ++ua) {
      const std::size_t bk = adj_a.col[ua];
      const std::size_t dk = row_dim(bk);
      const double* ta = block(adj_a.tile[ua]);
      const bool trans_a = adj_a.trans[ua] != 0;
      for (std::size_t ub = adj_lower_bound(adj_b, bk, bi);
           ub < adj_b.ptr[bk + 1]; ++ub) {
        const std::uint32_t bj = adj_b.col[ub];
        if (var) {
          linalg::gemm_micro_add_rect(di, dk, row_dim(bj), trans_a,
                                      adj_b.trans[ub] != 0, ta,
                                      b.block(adj_b.tile[ub]),
                                      acc.data() + bs2 * bj);
        } else {
          linalg::gemm_micro_add_t(bs_, trans_a, adj_b.trans[ub] != 0, ta,
                                   b.block(adj_b.tile[ub]),
                                   acc.data() + bs2 * bj);
        }
      }
    }
    // Gather through the pattern row: it lists exactly the columns the
    // products above touched, so the sweep also restores acc to zero.
    auto& cols = ws.row_cols[bi];
    auto& vals = ws.row_vals[bi];
    const std::size_t pe = pat.row_ptr[bi + 1];
    cols.reserve(pe - pat.row_ptr[bi]);
    for (std::size_t pp = pat.row_ptr[bi]; pp < pe; ++pp) {
      const std::uint32_t bj = pat.cols[pp];
      double* tile = acc.data() + bs2 * bj;
      // Scalar-granular truncation (off at the 0.0 default, so the
      // historical fp64 gather is byte-for-byte unchanged when unused).
      if (sub_tile_drop > 0.0) {
        const std::size_t sz = di * (var ? dims_[bj] : bs_);
        for (std::size_t q = 0; q < sz; ++q) {
          if (std::fabs(tile[q]) <= sub_tile_drop) tile[q] = 0.0;
        }
      }
      if (var) {
        const std::size_t dj = dims_[bj];
        const std::size_t sz = di * dj;
        const double norm2 = linalg::tile_norm2_rect(di, dj, tile);
        if (keep_tile_rect(norm2, sz, drop_tolerance) ||
            (bj == bi && norm2 > 0.0)) {
          cols.push_back(bj);
          vals.insert(vals.end(), tile, tile + sz);
        }
        std::fill(tile, tile + sz, 0.0);
      } else {
        const double norm2 = linalg::tile_norm2(bs_, tile);
        if (keep_tile(norm2, bs_, drop_tolerance) ||
            (bj == bi && norm2 > 0.0)) {
          cols.push_back(bj);
          vals.insert(vals.end(), tile, tile + bs2);
        }
        std::fill(tile, tile + bs2, 0.0);
      }
    }
  };
  if (sharded) {
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(par::thread_id());
      std::vector<double>& acc = ws.acc[tid];
      if (acc.size() < nb_ * bs2) acc.assign(nb_ * bs2, 0.0);
#pragma omp for schedule(static, 1)
      for (std::size_t d = 0; d < dom.size() - 1; ++d) {
        for (std::size_t bi = dom[d]; bi < dom[d + 1]; ++bi) {
          numeric_row(bi, acc);
        }
      }
    }
  } else {
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(par::thread_id());
      std::vector<double>& acc = ws.acc[tid];
      if (acc.size() < nb_ * bs2) acc.assign(nb_ * bs2, 0.0);
#pragma omp for schedule(dynamic, 8)
      for (std::size_t bi = 0; bi < nb_; ++bi) numeric_row(bi, acc);
    }
  }
  if (var) {
    bsr_assemble(dims_, ws, out, true);
  } else {
    bsr_assemble(n_, bs_, ws, out, true);
  }
}

void BlockSparseMatrix::multiply_sym_f32_into(const BlockSparseMatrix& b,
                                              double drop_tolerance,
                                              double sub_tile_drop, bool simd,
                                              BlockSparseMatrix& out,
                                              BsrWorkspace& ws,
                                              BsrPattern* pattern) const {
  // fp32 twin of the symmetric-half SpMM (preconditions checked by the
  // dispatching multiply_sym_into).  The sweep structure mirrors the fp64
  // kernel line for line -- same adjacency walk, same frozen-pattern
  // gather, same per-row determinism (per-tile products are sequential
  // within a row, so results are bit-identical at any thread count for a
  // given binary) -- but tiles, accumulators and staging are fp32: half
  // the memory traffic exactly where the numeric phase is
  // bandwidth-bound.  `simd` routes tile products through the lane-vector
  // f32 kernels (default) or the generic reference loop (the NumericsSpec
  // A/B switch).
  const std::size_t bs2 = max_bs_ * max_bs_;  // accumulator tile stride
  const bool var = !uniform_blocks();

  build_sym_adjacency(*this, ws.adj_a);
  const BsrWorkspace::SymAdjacency& adj_a = ws.adj_a;
  if (&b != this) build_sym_adjacency(b, ws.adj_b);
  const BsrWorkspace::SymAdjacency& adj_b = (&b == this) ? ws.adj_a : ws.adj_b;

  BsrPattern local;
  BsrPattern& pat = pattern != nullptr ? *pattern : local;
  const bool warm = pat.valid && pat.a_fingerprint == pattern_fingerprint_ &&
                    pat.b_fingerprint == b.pattern_fingerprint_;

  const auto nthreads = static_cast<std::size_t>(par::max_threads());
  if (ws.acc32.size() < nthreads) ws.acc32.resize(nthreads);
  if (ws.hit.size() < nthreads) {
    ws.hit.resize(nthreads);
    ws.touched.resize(nthreads);
  }

  const std::vector<std::size_t>& dom = ws.domains;
  const bool sharded =
      dom.size() > 2 && dom.front() == 0 && dom.back() == nb_;

  if (!warm) {
    // Symbolic phase: identical to the fp64 kernel's (patterns are
    // structure-only, so a pattern discovered by either precision warms
    // the other).
    ++ws.stats.symbolic_builds;
    reset_workspace_f32(ws, nb_);
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(par::thread_id());
      std::vector<std::uint8_t>& hit = ws.hit[tid];
      std::vector<std::uint32_t>& touched = ws.touched[tid];
      if (hit.size() < nb_) hit.assign(nb_, 0);
      touched.reserve(256);
      const auto symbolic_row = [&](std::size_t bi)
          __attribute__((always_inline)) {
        touched.clear();
        for (std::size_t ua = adj_a.ptr[bi]; ua < adj_a.ptr[bi + 1]; ++ua) {
          const std::size_t bk = adj_a.col[ua];
          for (std::size_t ub = adj_lower_bound(adj_b, bk, bi);
               ub < adj_b.ptr[bk + 1]; ++ub) {
            const std::uint32_t bj = adj_b.col[ub];
            if (hit[bj] == 0) {
              hit[bj] = 1;
              touched.push_back(bj);
            }
          }
        }
        std::sort(touched.begin(), touched.end());
        ws.row_cols[bi].assign(touched.begin(), touched.end());
        for (const std::uint32_t bj : touched) hit[bj] = 0;
      };
      if (sharded) {
#pragma omp for schedule(static, 1)
        for (std::size_t d = 0; d < dom.size() - 1; ++d) {
          for (std::size_t bi = dom[d]; bi < dom[d + 1]; ++bi) {
            symbolic_row(bi);
          }
        }
      } else {
#pragma omp for schedule(dynamic, 8)
        for (std::size_t bi = 0; bi < nb_; ++bi) symbolic_row(bi);
      }
    }
    pat.row_ptr.assign(nb_ + 1, 0);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      pat.row_ptr[bi + 1] = pat.row_ptr[bi] + ws.row_cols[bi].size();
    }
    pat.cols.resize(pat.row_ptr[nb_]);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      std::copy(ws.row_cols[bi].begin(), ws.row_cols[bi].end(),
                pat.cols.begin() +
                    static_cast<std::ptrdiff_t>(pat.row_ptr[bi]));
    }
    pat.a_fingerprint = pattern_fingerprint_;
    pat.b_fingerprint = b.pattern_fingerprint_;
    pat.valid = true;
  } else {
    ++ws.stats.numeric_reuses;
  }

  // Numeric phase on the (frozen or just-built) pattern, fp32 throughout;
  // truncation thresholds stay fp64 quantities.
  reset_workspace_f32(ws, nb_);
  const float sub = static_cast<float>(sub_tile_drop);
  const auto numeric_row = [&](std::size_t bi, std::vector<float>& acc)
      __attribute__((always_inline)) {
    const std::size_t di = row_dim(bi);
    if (simd && !var && bs_ == 4) {
      // Dedicated sp-block sweep: the three-way kernel dispatch is hoisted
      // out of the product loop, and a transposed A tile is repacked once
      // per adjacency entry instead of strided-read once per product.
      // Repacking moves values without reordering any output element's
      // k-accumulation, so results stay bit-identical to the generic walk.
      for (std::size_t ua = adj_a.ptr[bi]; ua < adj_a.ptr[bi + 1]; ++ua) {
        const std::size_t bk = adj_a.col[ua];
        const float* ta = block_f32(adj_a.tile[ua]);
        float at[16];
        if (adj_a.trans[ua] != 0) {
          for (std::size_t r = 0; r < 4; ++r) {
            for (std::size_t q = 0; q < 4; ++q) at[4 * r + q] = ta[4 * q + r];
          }
          ta = at;
        }
        for (std::size_t ub = adj_lower_bound(adj_b, bk, bi);
             ub < adj_b.ptr[bk + 1]; ++ub) {
          const std::uint32_t bj = adj_b.col[ub];
          linalg::detail::micro_add_square_f32<4>(
              false, adj_b.trans[ub] != 0, ta, b.block_f32(adj_b.tile[ub]),
              acc.data() + 16 * bj);
        }
      }
    } else {
      for (std::size_t ua = adj_a.ptr[bi]; ua < adj_a.ptr[bi + 1]; ++ua) {
        const std::size_t bk = adj_a.col[ua];
        const std::size_t dk = row_dim(bk);
        const float* ta = block_f32(adj_a.tile[ua]);
        const bool trans_a = adj_a.trans[ua] != 0;
        for (std::size_t ub = adj_lower_bound(adj_b, bk, bi);
             ub < adj_b.ptr[bk + 1]; ++ub) {
          const std::uint32_t bj = adj_b.col[ub];
          if (!simd) {
            linalg::gemm_micro_add_rect_f32_ref(
                di, dk, row_dim(bj), trans_a, adj_b.trans[ub] != 0, ta,
                b.block_f32(adj_b.tile[ub]), acc.data() + bs2 * bj);
          } else if (var) {
            linalg::gemm_micro_add_rect_f32(di, dk, row_dim(bj), trans_a,
                                            adj_b.trans[ub] != 0, ta,
                                            b.block_f32(adj_b.tile[ub]),
                                            acc.data() + bs2 * bj);
          } else {
            linalg::gemm_micro_add_t_f32(bs_, trans_a, adj_b.trans[ub] != 0,
                                         ta, b.block_f32(adj_b.tile[ub]),
                                         acc.data() + bs2 * bj);
          }
        }
      }
    }
    auto& cols = ws.row_cols[bi];
    auto& vals = ws.row_vals32[bi];
    const std::size_t pe = pat.row_ptr[bi + 1];
    cols.reserve(pe - pat.row_ptr[bi]);
    for (std::size_t pp = pat.row_ptr[bi]; pp < pe; ++pp) {
      const std::uint32_t bj = pat.cols[pp];
      float* tile = acc.data() + bs2 * bj;
      const std::size_t dj = var ? dims_[bj] : bs_;
      const std::size_t sz = di * dj;
      if (sub_tile_drop > 0.0) {
        for (std::size_t q = 0; q < sz; ++q) {
          if (std::fabs(tile[q]) <= sub) tile[q] = 0.0f;
        }
      }
      const double norm2 = linalg::tile_norm2_rect_f32(di, dj, tile);
      const bool keep = var ? keep_tile_rect(norm2, sz, drop_tolerance)
                            : keep_tile(norm2, bs_, drop_tolerance);
      if (keep || (bj == bi && norm2 > 0.0)) {
        cols.push_back(bj);
        vals.insert(vals.end(), tile, tile + sz);
      }
      std::fill(tile, tile + sz, 0.0f);
    }
  };
  if (sharded) {
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(par::thread_id());
      std::vector<float>& acc = ws.acc32[tid];
      if (acc.size() < nb_ * bs2) acc.assign(nb_ * bs2, 0.0f);
#pragma omp for schedule(static, 1)
      for (std::size_t d = 0; d < dom.size() - 1; ++d) {
        for (std::size_t bi = dom[d]; bi < dom[d + 1]; ++bi) {
          numeric_row(bi, acc);
        }
      }
    }
  } else {
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(par::thread_id());
      std::vector<float>& acc = ws.acc32[tid];
      if (acc.size() < nb_ * bs2) acc.assign(nb_ * bs2, 0.0f);
#pragma omp for schedule(dynamic, 8)
      for (std::size_t bi = 0; bi < nb_; ++bi) numeric_row(bi, acc);
    }
  }
  if (var) {
    assemble_f32(dims_, ws, out, true);
  } else {
    assemble_f32(n_, bs_, ws, out, true);
  }
}

BlockSparseMatrix BlockSparseMatrix::multiply(const BlockSparseMatrix& b,
                                              double drop_tolerance) const {
  BlockSparseMatrix out;
  BsrWorkspace ws;
  multiply_into(b, drop_tolerance, out, ws);
  return out;
}

linalg::SpectralBounds BlockSparseMatrix::gershgorin_bounds() const {
  TBMD_REQUIRE(prec_ == TilePrecision::kF64,
               "gershgorin_bounds: fp64 payloads only (H is never demoted)");
  if (sym_) {
    // Upper-half pass: an off-diagonal tile (I, J) contributes its row
    // sums to the radii of block row I and -- through the implicit mirror
    // A_JI = A_IJ^T -- its column sums to the radii of block row J.
    std::vector<double> diag(n_, 0.0), radius(n_, 0.0);
    for (std::size_t bi = 0; bi < nb_; ++bi) {
      const std::size_t di = row_dim(bi);
      const std::size_t oi = row_offset(bi);
      for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
        const std::size_t bj = col_[k];
        const std::size_t dj = row_dim(bj);
        const std::size_t oj = row_offset(bj);
        const double* tile = block(k);
        for (std::size_t r = 0; r < di; ++r) {
          for (std::size_t c = 0; c < dj; ++c) {
            const double v = tile[dj * r + c];
            if (bj == bi) {
              if (c == r) {
                diag[oi + r] = v;
              } else {
                radius[oi + r] += std::fabs(v);
              }
            } else {
              radius[oi + r] += std::fabs(v);
              radius[oj + c] += std::fabs(v);
            }
          }
        }
      }
    }
    linalg::SpectralBounds bounds;
    for (std::size_t i = 0; i < n_; ++i) {
      const double lo = diag[i] - radius[i];
      const double hi = diag[i] + radius[i];
      if (i == 0) {
        bounds.lo = lo;
        bounds.hi = hi;
      } else {
        bounds.lo = std::min(bounds.lo, lo);
        bounds.hi = std::max(bounds.hi, hi);
      }
    }
    return bounds;
  }
  linalg::SpectralBounds bounds;
  bool first = true;
  std::vector<double> diag(max_bs_), radius(max_bs_);
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    const std::size_t di = row_dim(bi);
    std::fill(diag.begin(), diag.end(), 0.0);
    std::fill(radius.begin(), radius.end(), 0.0);
    for (std::size_t k = row_ptr_[bi]; k < row_ptr_[bi + 1]; ++k) {
      const std::size_t bj = col_[k];
      const std::size_t dj = row_dim(bj);
      const double* tile = block(k);
      for (std::size_t r = 0; r < di; ++r) {
        for (std::size_t c = 0; c < dj; ++c) {
          const double v = tile[dj * r + c];
          if (bj == bi && c == r) {
            diag[r] = v;
          } else {
            radius[r] += std::fabs(v);
          }
        }
      }
    }
    for (std::size_t r = 0; r < di; ++r) {
      const double lo = diag[r] - radius[r];
      const double hi = diag[r] + radius[r];
      if (first) {
        bounds.lo = lo;
        bounds.hi = hi;
        first = false;
      } else {
        bounds.lo = std::min(bounds.lo, lo);
        bounds.hi = std::max(bounds.hi, hi);
      }
    }
  }
  return bounds;
}

// --- CSR <-> BSR converters (declared in sparse.hpp) ----------------------

BlockSparseMatrix SparseMatrix::to_block(std::size_t block_size) const {
  BlockSparseMatrix out(n_, block_size);
  const std::size_t bs = out.bs_;
  const std::size_t bs2 = bs * bs;
  const std::size_t nb = out.nb_;
  std::vector<std::uint32_t> cols;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    // Union of the block columns touched by the bs scalar rows of this
    // block row (each scalar row's columns are already sorted).
    cols.clear();
    for (std::size_t r = 0; r < bs; ++r) {
      const std::size_t row = bs * bi + r;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        cols.push_back(static_cast<std::uint32_t>(col_[k] / bs));
      }
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

    const std::size_t base = out.col_.size();
    out.col_.insert(out.col_.end(), cols.begin(), cols.end());
    out.val_.resize(out.val_.size() + cols.size() * bs2, 0.0);
    for (std::size_t r = 0; r < bs; ++r) {
      const std::size_t row = bs * bi + r;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        const std::size_t bj = col_[k] / bs;
        const auto it = std::lower_bound(cols.begin(), cols.end(),
                                         static_cast<std::uint32_t>(bj));
        const std::size_t slot =
            base + static_cast<std::size_t>(it - cols.begin());
        out.val_[bs2 * slot + bs * r + (col_[k] % bs)] = val_[k];
      }
    }
    out.row_ptr_[bi + 1] = out.col_.size();
  }
  out.refingerprint();
  return out;
}

BlockSparseMatrix SparseMatrix::to_block(
    const std::vector<std::uint32_t>& dims) const {
  BlockSparseMatrix out(dims);
  if (out.uniform_blocks()) return to_block(out.block_size());
  TBMD_REQUIRE(out.size() == n_, "to_block: block dims do not sum to n");
  const std::size_t nb = out.nb_;
  // Scalar column -> block column, precomputed once for the scatter.
  std::vector<std::uint32_t> blk_of(n_);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t q = 0; q < dims[bi]; ++q) {
      blk_of[out.offs_[bi] + q] = static_cast<std::uint32_t>(bi);
    }
  }
  std::vector<std::uint32_t> cols;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::size_t di = out.dims_[bi];
    const std::size_t oi = out.offs_[bi];
    // Union of the block columns touched by the di scalar rows of this
    // block row (each scalar row's columns are already sorted).
    cols.clear();
    for (std::size_t r = 0; r < di; ++r) {
      const std::size_t row = oi + r;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        cols.push_back(blk_of[col_[k]]);
      }
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

    const std::size_t base = out.col_.size();
    out.col_.insert(out.col_.end(), cols.begin(), cols.end());
    for (const std::uint32_t bj : cols) {
      out.val_ptr_.push_back(out.val_ptr_.back() + di * out.dims_[bj]);
    }
    out.val_.resize(out.val_ptr_.back(), 0.0);
    for (std::size_t r = 0; r < di; ++r) {
      const std::size_t row = oi + r;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        const std::uint32_t bj = blk_of[col_[k]];
        const auto it = std::lower_bound(cols.begin(), cols.end(), bj);
        const std::size_t slot =
            base + static_cast<std::size_t>(it - cols.begin());
        out.val_[out.val_ptr_[slot] + out.dims_[bj] * r +
                 (col_[k] - out.offs_[bj])] = val_[k];
      }
    }
    out.row_ptr_[bi + 1] = out.col_.size();
  }
  out.refingerprint();
  return out;
}

SparseMatrix SparseMatrix::from_block(const BlockSparseMatrix& b) {
  TBMD_REQUIRE(!b.symmetric(),
               "from_block: expand half storage via to_full() first");
  SparseMatrix out(b.size());
  for (std::size_t bi = 0; bi < b.block_rows(); ++bi) {
    const std::size_t di = b.row_dim(bi);
    const std::size_t oi = b.row_offset(bi);
    for (std::size_t r = 0; r < di; ++r) {
      for (std::size_t k = b.row_ptr()[bi]; k < b.row_ptr()[bi + 1]; ++k) {
        const std::size_t bj = b.cols()[k];
        const std::size_t dj = b.row_dim(bj);
        const std::size_t oj = b.row_offset(bj);
        const double* tile = b.block(k);
        for (std::size_t c = 0; c < dj; ++c) {
          const double v = tile[dj * r + c];
          // Tiles are dense; structurally-zero entries inside a stored
          // tile must not become explicit CSR zeros.
          if (v != 0.0) {
            out.col_.push_back(oj + c);
            out.val_.push_back(v);
          }
        }
      }
      out.row_ptr_[oi + r + 1] = out.col_.size();
    }
  }
  return out;
}

}  // namespace tbmd::onx
