#pragma once

/// \file block_sparse.hpp
/// \brief Block-CSR (BSR) sparse matrix with dense square tiles.
///
/// The substrate of the O(N) purification engine.  A tight-binding
/// Hamiltonian over s/p orbitals is naturally blocked: every atom pair
/// couples through a dense 4x4 Slater-Koster block, so storing the matrix
/// as scalar CSR pays an index + branch per *element* where one index per
/// *tile* suffices.  BlockSparseMatrix stores, per block row, the sorted
/// block-column indices and a dense bs x bs row-major tile each; the SpMM
/// inner product of two tiles dispatches to the shared
/// linalg::gemm_micro_add micro-kernel (fully unrolled for bs == 4).
///
/// Threshold truncation acts on whole tiles: a tile is dropped when its
/// Frobenius norm satisfies ||T||_F <= bs * tol, i.e. when its RMS entry
/// is below the tolerance (diagonal tiles are always kept so traces stay
/// exact).  Discarding such a tile perturbs the matrix by no more than the
/// bs^2 scalar entries of magnitude tol the element-wise criterion already
/// tolerates dropping, so accuracy bounds calibrated against the scalar
/// engine carry over; the criterion reduces to |v| > tol exactly at
/// bs == 1.  For symmetric operands the Frobenius criterion is itself
/// symmetric (||A_IJ||_F == ||A_JI^T||_F), so truncation preserves
/// symmetric sparsity patterns.
///
/// Block size is a runtime parameter: bs == 4 is the production path, and
/// bs == 1 degenerates to scalar CSR semantics (used for operands whose
/// dimension is not a multiple of 4).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/linalg/spectral_bounds.hpp"

namespace tbmd::onx {

class BlockSparseMatrix;

/// Reusable scratch for BlockSparseMatrix::multiply_into / combine_into:
/// per-block-row staging buffers plus the per-thread Gustavson
/// accumulators of the SpMM, all with capacity that survives across
/// calls, so a persistent workspace (e.g. owned by OrderNCalculator)
/// makes the purification loop allocation-free in steady state.
struct BsrWorkspace {
  std::vector<std::vector<std::uint32_t>> row_cols;
  std::vector<std::vector<double>> row_vals;
  // Per-thread SpMM scratch (indexed by omp thread id).  The row sweep
  // restores acc/hit to all-zeroes after every block row, so these only
  // need zero-filling when they grow.
  std::vector<std::vector<double>> acc;
  std::vector<std::vector<std::uint8_t>> hit;
  std::vector<std::vector<std::uint32_t>> touched;
};

/// Square block-CSR sparse matrix (block columns sorted within each block
/// row; tiles stored dense, row-major).
class BlockSparseMatrix {
 public:
  BlockSparseMatrix() = default;

  /// n x n zero matrix with bs x bs tiles; bs must divide n.
  BlockSparseMatrix(std::size_t n, std::size_t block_size);

  /// Identity (diagonal tiles only).
  [[nodiscard]] static BlockSparseMatrix identity(std::size_t n,
                                                  std::size_t block_size);

  /// Convert from dense, dropping tiles with Frobenius norm <=
  /// drop_tolerance (diagonal tiles with any nonzero entry are kept).
  [[nodiscard]] static BlockSparseMatrix from_dense(const linalg::Matrix& a,
                                                    std::size_t block_size,
                                                    double drop_tolerance = 0.0);

  [[nodiscard]] linalg::Matrix to_dense() const;

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t block_size() const { return bs_; }
  [[nodiscard]] std::size_t block_rows() const { return nb_; }
  [[nodiscard]] std::size_t block_count() const { return col_.size(); }

  /// Stored scalar entries (tiles are dense, so block_count * bs^2).
  [[nodiscard]] std::size_t nnz() const { return val_.size(); }

  /// Fraction of stored entries relative to a dense matrix.
  [[nodiscard]] double fill_fraction() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(nnz()) /
                         (static_cast<double>(n_) * static_cast<double>(n_));
  }

  /// Tile (bi, bj) (binary search within the block row); nullptr if absent.
  [[nodiscard]] const double* find_block(std::size_t bi, std::size_t bj) const;

  /// Scalar element lookup; 0 for absent entries.
  [[nodiscard]] double get(std::size_t i, std::size_t j) const;

  /// Sum of diagonal entries.
  [[nodiscard]] double trace() const;

  /// tr(A * B); both must have the same size and block size.
  [[nodiscard]] double trace_of_product(const BlockSparseMatrix& b) const;

  /// Linear combination alpha*this + beta*b (block-pattern union), dropping
  /// tiles with Frobenius norm <= drop_tolerance (diagonal tiles kept).
  [[nodiscard]] BlockSparseMatrix combine(double alpha,
                                          const BlockSparseMatrix& b,
                                          double beta,
                                          double drop_tolerance = 0.0) const;

  /// combine() writing into `out`, reusing its storage and `ws`.
  void combine_into(double alpha, const BlockSparseMatrix& b, double beta,
                    double drop_tolerance, BlockSparseMatrix& out,
                    BsrWorkspace& ws) const;

  /// Block-sparse product this * b with tile-level Frobenius truncation.
  /// Gustavson row-merge over block rows, OpenMP-parallel; tile products
  /// run on linalg::gemm_micro_add (unrolled 4x4 fast path).
  [[nodiscard]] BlockSparseMatrix multiply(const BlockSparseMatrix& b,
                                           double drop_tolerance = 0.0) const;

  /// multiply() writing into `out`, reusing its storage and `ws`.
  void multiply_into(const BlockSparseMatrix& b, double drop_tolerance,
                     BlockSparseMatrix& out, BsrWorkspace& ws) const;

  /// Gershgorin enclosure of the spectrum (shared linalg interval type).
  [[nodiscard]] linalg::SpectralBounds gershgorin_bounds() const;

  // Raw BSR access (read-only) for kernels that stream the structure.
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cols() const { return col_; }
  [[nodiscard]] const std::vector<double>& values() const { return val_; }

  /// Tile payload of the k-th stored block (bs^2 doubles, row-major).
  [[nodiscard]] const double* block(std::size_t k) const {
    return val_.data() + bs_ * bs_ * k;
  }

 private:
  friend class SparseMatrix;
  friend void bsr_assemble(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                           BlockSparseMatrix& out);

  std::size_t n_ = 0;   ///< scalar dimension
  std::size_t bs_ = 1;  ///< tile edge
  std::size_t nb_ = 0;  ///< block rows (n / bs)
  std::vector<std::size_t> row_ptr_;   ///< nb + 1 block-row offsets
  std::vector<std::uint32_t> col_;     ///< block-column index per tile
  std::vector<double> val_;            ///< bs^2 doubles per tile
};

/// Direct mutable access for assembly code (onx Hamiltonian builder): set
/// the structure in one shot from per-row staging buffers in `ws`.
void bsr_assemble(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                  BlockSparseMatrix& out);

}  // namespace tbmd::onx
