#pragma once

/// \file block_sparse.hpp
/// \brief Block-CSR (BSR) sparse matrix with dense square tiles.
///
/// The substrate of the O(N) purification engine.  A tight-binding
/// Hamiltonian over s/p orbitals is naturally blocked: every atom pair
/// couples through a dense 4x4 Slater-Koster block, so storing the matrix
/// as scalar CSR pays an index + branch per *element* where one index per
/// *tile* suffices.  BlockSparseMatrix stores, per block row, the sorted
/// block-column indices and a dense bs x bs row-major tile each; the SpMM
/// inner product of two tiles dispatches to the shared
/// linalg::gemm_micro_add micro-kernel (fully unrolled for bs == 4).
///
/// Symmetric-half storage.  Every operand of the purification loop (H, P
/// and its polynomials) is symmetric, so the engine's production mode
/// stores only the upper block triangle: tiles (I, J) with J >= I, the
/// mirror tile A_JI == A_IJ^T implicit.  That halves memory and -- because
/// the product of two commuting symmetric matrices is symmetric -- halves
/// the SpMM flops: multiply_sym_into() computes only the upper half of
/// C = A * B, reading lower-half operand tiles through the transposed
/// micro-kernel (linalg::gemm_micro_add_t).  Mixed full/half algebra is
/// rejected; to_full() / to_symmetric_half() convert explicitly.
///
/// Pattern reuse.  multiply_sym_into() is split into a symbolic phase
/// (Gustavson discovery of the output block pattern -- no flops) and a
/// numeric phase (tile products + truncation on a known pattern).  The
/// symbolic result can be cached in a BsrPattern keyed on fingerprints of
/// the operand patterns: along an MD trajectory the bond topology -- and
/// with it the whole chain of purification patterns -- is unchanged on the
/// vast majority of steps, so steady-state steps re-run only the numeric
/// phase on the frozen pattern.  Cold and warm paths execute the identical
/// numeric sweep, so a warm result is bit-identical to a cold one.
///
/// Threshold truncation acts on whole tiles: a tile is dropped when its
/// Frobenius norm satisfies ||T||_F <= bs * tol, i.e. when its RMS entry
/// is below the tolerance (diagonal tiles are always kept so traces stay
/// exact).  Discarding such a tile perturbs the matrix by no more than the
/// bs^2 scalar entries of magnitude tol the element-wise criterion already
/// tolerates dropping, so accuracy bounds calibrated against the scalar
/// engine carry over; the criterion reduces to |v| > tol exactly at
/// bs == 1.  For symmetric operands the Frobenius criterion is itself
/// symmetric (||A_IJ||_F == ||A_JI^T||_F), so truncation preserves
/// symmetric sparsity patterns -- and in half storage, symmetry of the
/// pattern is structural.
///
/// Block size is a runtime parameter: bs == 4 is the production path, and
/// bs == 1 degenerates to scalar CSR semantics (used for operands whose
/// dimension is not a multiple of 4).
///
/// Variable-block-row mode.  Multi-species models carry a per-atom orbital
/// count (1 for s-only, 4 for sp, 9 for spd), so the natural tiling has
/// per-block-row dimensions: tile (I, J) is dims[I] x dims[J].  Matrices
/// built from a dims vector store the per-row dims, the scalar row offsets
/// and a per-tile value offset table; block_size() reports 0 in this mode
/// and the micro-kernel dispatch falls through to the rectangular fallback
/// (linalg::gemm_micro_add_rect).  A dims vector whose entries all agree is
/// normalized to uniform mode on construction, so homogeneous systems --
/// carbon, silicon -- always run the unrolled uniform fast paths and their
/// results are unchanged by the generalization.  The truncation criterion
/// becomes ||T||_F <= sqrt(dims[I] * dims[J]) * tol, the same RMS-entry
/// rule the uniform criterion expresses with bs.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/linalg/spectral_bounds.hpp"

namespace tbmd::onx {

class BlockSparseMatrix;

/// Scalar type of a BlockSparseMatrix's tile payloads.  kF64 is the
/// default and the only mode most operations accept; kF32 is the
/// mixed-precision purification substrate -- half the memory traffic in
/// the bandwidth-bound SpMM numeric phase -- and supports exactly the
/// operations the purification loop's fp32 phase needs (multiply_sym_into,
/// combine_into, trace, get, to_dense via conversion).  The structure
/// (pattern, dims, fingerprints) is precision-independent, so the
/// symbolic-pattern cache works unchanged across a promotion.
enum class TilePrecision : std::uint8_t { kF64, kF32 };

/// Cached symbolic SpMM result for multiply_sym_into(): the frozen output
/// block pattern of C = A * B, keyed on fingerprints of both operand
/// patterns.  A call whose operands still carry the recorded fingerprints
/// skips the symbolic phase entirely and runs the numeric sweep on the
/// frozen pattern; any operand-pattern change falls back to a symbolic
/// rebuild (refreshing the entry), so reuse never changes results.
struct BsrPattern {
  std::uint64_t a_fingerprint = 0;
  std::uint64_t b_fingerprint = 0;
  std::vector<std::size_t> row_ptr;    ///< nb + 1 output block-row offsets
  std::vector<std::uint32_t> cols;     ///< output block columns (sorted)
  bool valid = false;
};

/// How much staging capacity BsrWorkspace::shrink() keeps (the workspace
/// otherwise grows monotonically: staging rows sized for the largest system
/// ever processed are never released).
struct BsrShrinkPolicy {
  std::size_t block_rows = 0;  ///< staging rows / accumulators kept
  std::size_t block_size = 4;  ///< tile edge the kept accumulators assume
};

/// Reusable scratch for BlockSparseMatrix::multiply_into / combine_into:
/// per-block-row staging buffers plus the per-thread Gustavson
/// accumulators of the SpMM, all with capacity that survives across
/// calls, so a persistent workspace (e.g. owned by OrderNCalculator)
/// makes the purification loop allocation-free in steady state.
struct BsrWorkspace {
  std::vector<std::vector<std::uint32_t>> row_cols;
  std::vector<std::vector<double>> row_vals;
  /// fp32 staging rows (the kF32 sweeps stage here; empty in fp64 runs).
  std::vector<std::vector<float>> row_vals32;
  // Per-thread SpMM scratch (indexed by omp thread id).  The row sweep
  // restores acc/hit to all-zeroes after every block row, so these only
  // need zero-filling when they grow.
  std::vector<std::vector<double>> acc;
  /// fp32 twin of `acc` for the kF32 numeric sweeps (same all-zero
  /// invariant between uses).
  std::vector<std::vector<float>> acc32;
  std::vector<std::vector<std::uint8_t>> hit;
  std::vector<std::vector<std::uint32_t>> touched;

  /// Mirror-expanded adjacency of a half-stored operand (the full set of
  /// block neighbors per block row, each entry pointing at the stored
  /// upper-half tile plus a transpose flag).  Rebuilt per multiply_sym_into
  /// call in O(stored tiles); two slots cover the C = A * B case.
  struct SymAdjacency {
    std::vector<std::size_t> ptr;      ///< nb + 1 row offsets
    std::vector<std::uint32_t> col;    ///< neighbor block column (sorted)
    std::vector<std::uint32_t> tile;   ///< stored-tile index in the operand
    std::vector<std::uint8_t> trans;   ///< 1: tile is the transposed mirror
    std::vector<std::size_t> fill;     ///< per-row build cursors (scratch)
  };
  SymAdjacency adj_a, adj_b;

  /// Symbolic-vs-numeric SpMM accounting (cumulative): a steady-state MD
  /// step must be all `numeric_reuses` -- the CI/tests assert warm steps
  /// perform zero symbolic-phase work through these counters.
  struct SpmmStats {
    std::size_t symbolic_builds = 0;  ///< Gustavson pattern discoveries
    std::size_t numeric_reuses = 0;   ///< frozen-pattern numeric-only runs
  };
  SpmmStats stats;

  /// Optional contiguous block-row domain decomposition: when non-empty it
  /// must be a monotone chunk list {0, ..., nb} and the SpMM / assembly
  /// row sweeps iterate domain-by-domain with a `schedule(static, 1)`
  /// round-robin (stable thread -> domain ownership for cache/NUMA
  /// affinity) instead of the default dynamic row chunking.  Purely a
  /// scheduling hint: per-row results are unchanged, so outputs stay
  /// bit-identical with or without domains at any thread count.  Owners
  /// (OrderNCalculator) refresh it per step from the spatial partition.
  std::vector<std::size_t> domains;

  /// Release staging capacity beyond `policy` (rows above block_rows are
  /// freed outright, surviving buffers are shrunk to fit).  Call when the
  /// problem size drops -- e.g. OrderNCalculator after an atom-count
  /// decrease -- to keep the workspace footprint bounded by the *current*
  /// system instead of the historical maximum.
  void shrink(const BsrShrinkPolicy& policy);

  /// Heap bytes currently reserved by every buffer (capacity, not size);
  /// the bounded-footprint regression tests assert on this.
  [[nodiscard]] std::size_t footprint_bytes() const;
};

/// Square block-CSR sparse matrix (block columns sorted within each block
/// row; tiles stored dense, row-major).  In symmetric-half mode only tiles
/// (I, J) with J >= I are stored and the mirror A_JI = A_IJ^T is implicit.
class BlockSparseMatrix {
 public:
  BlockSparseMatrix() = default;

  /// n x n zero matrix with bs x bs tiles; bs must divide n.
  BlockSparseMatrix(std::size_t n, std::size_t block_size,
                    bool symmetric_half = false);

  /// Zero matrix with per-block-row tile dimensions (tile (I, J) is
  /// dims[I] x dims[J]).  A dims vector whose entries all agree is
  /// normalized to uniform mode, so homogeneous layouts keep the unrolled
  /// fast paths.
  explicit BlockSparseMatrix(const std::vector<std::uint32_t>& dims,
                             bool symmetric_half = false);

  /// Identity (diagonal tiles only; valid in both storage modes).
  [[nodiscard]] static BlockSparseMatrix identity(std::size_t n,
                                                  std::size_t block_size,
                                                  bool symmetric_half = false);

  /// Identity on a variable block layout.
  [[nodiscard]] static BlockSparseMatrix identity(
      const std::vector<std::uint32_t>& dims, bool symmetric_half = false);

  /// Identity sharing `like`'s dimension, block layout and storage mode --
  /// what the purification workspaces rebuild their cached I from when the
  /// operand layout changes.
  [[nodiscard]] static BlockSparseMatrix identity_like(
      const BlockSparseMatrix& like);

  /// Empty (all-zero) matrix sharing `like`'s dimension, block layout and
  /// storage mode.
  [[nodiscard]] static BlockSparseMatrix zeros_like(
      const BlockSparseMatrix& like);

  /// Convert from dense, dropping tiles with Frobenius norm <=
  /// drop_tolerance (diagonal tiles with any nonzero entry are kept).
  [[nodiscard]] static BlockSparseMatrix from_dense(const linalg::Matrix& a,
                                                    std::size_t block_size,
                                                    double drop_tolerance = 0.0);

  /// from_dense() on a variable block layout.
  [[nodiscard]] static BlockSparseMatrix from_dense(
      const linalg::Matrix& a, const std::vector<std::uint32_t>& dims,
      double drop_tolerance = 0.0);

  [[nodiscard]] linalg::Matrix to_dense() const;

  /// Half-stored view of a full-stored symmetric matrix (keeps the upper
  /// block triangle; the caller asserts A == A^T -- the lower half is
  /// simply discarded).
  [[nodiscard]] BlockSparseMatrix to_symmetric_half() const;

  /// Mirror-expand a half-stored matrix back to full storage.
  [[nodiscard]] BlockSparseMatrix to_full() const;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Uniform tile edge; 0 in variable-block-row mode (query row_dim()
  /// there).
  [[nodiscard]] std::size_t block_size() const { return bs_; }
  [[nodiscard]] std::size_t block_rows() const { return nb_; }
  [[nodiscard]] bool symmetric() const { return sym_; }

  /// All block rows share one tile edge (bs_ is meaningful)?
  [[nodiscard]] bool uniform_blocks() const { return dims_.empty(); }

  /// Widest tile edge (== block_size() in uniform mode) -- what per-tile
  /// scratch must be sized for.
  [[nodiscard]] std::size_t max_block_size() const { return max_bs_; }

  /// Tile edge of block row `bi`.
  [[nodiscard]] std::size_t row_dim(std::size_t bi) const {
    return dims_.empty() ? bs_ : dims_[bi];
  }

  /// First scalar row of block row `bi`.
  [[nodiscard]] std::size_t row_offset(std::size_t bi) const {
    return dims_.empty() ? bs_ * bi : offs_[bi];
  }

  /// Per-row tile dims (empty in uniform mode).
  [[nodiscard]] const std::vector<std::uint32_t>& block_dims() const {
    return dims_;
  }

  /// Same dimension and block layout as `b` (tiles line up entrywise)?
  [[nodiscard]] bool layout_matches(const BlockSparseMatrix& b) const {
    return n_ == b.n_ && bs_ == b.bs_ && dims_ == b.dims_;
  }

  /// Stored tiles (half storage counts the upper triangle only).
  [[nodiscard]] std::size_t block_count() const { return col_.size(); }

  /// Logical tiles: stored tiles plus the implicit mirrors in half mode.
  [[nodiscard]] std::size_t logical_block_count() const;

  /// Scalar type of the tile payloads (kF64 unless this matrix was
  /// converted or assembled by a kF32 sweep).
  [[nodiscard]] TilePrecision precision() const { return prec_; }

  /// Convert the tile payloads in place (structure and fingerprint are
  /// untouched).  kF64 -> kF32 rounds to nearest (lossy by design: the
  /// mixed-precision loop runs it only where the drop schedule already
  /// tolerates ~1e-4 error); kF32 -> kF64 is exact.  Both directions keep
  /// the retired payload vector's capacity, so a steady-state mixed
  /// purification loop converts without allocating.
  void convert_precision(TilePrecision p);

  /// Copying variant of convert_precision.
  [[nodiscard]] BlockSparseMatrix to_precision(TilePrecision p) const;

  /// Stored scalar entries (tiles are dense; block_count * bs^2 in uniform
  /// mode, the sum of the per-tile areas otherwise).
  [[nodiscard]] std::size_t nnz() const {
    return prec_ == TilePrecision::kF32 ? val32_.size() : val_.size();
  }

  /// Logical scalar entries: stored tile areas plus the implicit mirrors
  /// in half mode.
  [[nodiscard]] std::size_t logical_nnz() const;

  /// Fraction of *logical* entries relative to a dense matrix (half
  /// storage counts each mirrored tile once per side, so the fraction is
  /// comparable across storage modes).
  [[nodiscard]] double fill_fraction() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(logical_nnz()) /
                         (static_cast<double>(n_) * static_cast<double>(n_));
  }

  /// Fingerprint of the block pattern (FNV-1a over dimensions, storage
  /// mode, row offsets and column indices) -- the key the BsrPattern cache
  /// validates against.  Recomputed whenever the structure is rebuilt.
  [[nodiscard]] std::uint64_t pattern_fingerprint() const {
    return pattern_fingerprint_;
  }

  /// Tile (bi, bj) (binary search within the block row); nullptr if
  /// absent.  Half storage holds bj >= bi only: mirrored positions return
  /// nullptr -- fetch the stored (bj, bi) tile and transpose, as get()
  /// does, or keep queries in the upper triangle (the bond table's half
  /// pairs always have i < j, so the force contraction needs no mirror).
  [[nodiscard]] const double* find_block(std::size_t bi, std::size_t bj) const;

  /// Scalar element lookup (mirror-aware in half storage); 0 for absent
  /// entries.
  [[nodiscard]] double get(std::size_t i, std::size_t j) const;

  /// Sum of diagonal entries.
  [[nodiscard]] double trace() const;

  /// tr(A * B); both must have the same size, block size and storage mode.
  /// The symmetric-half case runs a single upper-half pass with 2x weight
  /// on off-diagonal tiles: tr(A_IJ B_JI) + tr(A_JI B_IJ) collapses to
  /// twice the elementwise tile dot product when the mirrors are implicit
  /// transposes, so the estimate costs half the full-pattern walk.
  [[nodiscard]] double trace_of_product(const BlockSparseMatrix& b) const;

  /// Linear combination alpha*this + beta*b (block-pattern union), dropping
  /// tiles with Frobenius norm <= drop_tolerance (diagonal tiles kept).
  /// Operands must share the storage mode; the result inherits it.
  [[nodiscard]] BlockSparseMatrix combine(double alpha,
                                          const BlockSparseMatrix& b,
                                          double beta,
                                          double drop_tolerance = 0.0) const;

  /// combine() writing into `out`, reusing its storage and `ws`.  Operands
  /// must share the tile precision; the result inherits it (kF32 stages
  /// and rounds each combined tile once, after the fp64 accumulation).
  /// `sub_tile_drop` > 0 additionally zeroes scalar entries of magnitude
  /// <= sub_tile_drop inside kept tiles before the Frobenius test
  /// (scalar-granular truncation; 0 keeps the historical tile-only rule,
  /// and the default keeps the pure-fp64 path bit-identical).
  void combine_into(double alpha, const BlockSparseMatrix& b, double beta,
                    double drop_tolerance, BlockSparseMatrix& out,
                    BsrWorkspace& ws, double sub_tile_drop = 0.0) const;

  /// Block-sparse product this * b with tile-level Frobenius truncation.
  /// Gustavson row-merge over block rows, OpenMP-parallel; tile products
  /// run on linalg::gemm_micro_add (unrolled 4x4 fast path).  Half-stored
  /// operands dispatch to multiply_sym_into (the product must then be
  /// symmetric, i.e. the operands commute -- true for the purification
  /// polynomials, which are all polynomials of the same H).
  [[nodiscard]] BlockSparseMatrix multiply(const BlockSparseMatrix& b,
                                           double drop_tolerance = 0.0) const;

  /// multiply() writing into `out`, reusing its storage and `ws`.
  void multiply_into(const BlockSparseMatrix& b, double drop_tolerance,
                     BlockSparseMatrix& out, BsrWorkspace& ws) const;

  /// Symmetric-half product C = this * b (both operands and the result
  /// half-stored; this and b must commute so that C is symmetric).  Only
  /// the upper block triangle of C is computed -- half the flops of the
  /// full-pattern SpMM -- with mirrored operand tiles read through the
  /// transposed micro-kernel.  When `pattern` is non-null the symbolic
  /// phase is skipped whenever the operands still match the recorded
  /// fingerprints (ws.stats counts both outcomes); the numeric sweep is
  /// identical either way, so warm results are bit-identical to cold ones.
  ///
  /// Precision: operands must share the tile precision and the result
  /// inherits it.  The kF32 sweep shares the symbolic phase (patterns are
  /// structure-only) and runs the numeric phase on the fp32 kernel family;
  /// `simd` selects the unrolled `omp simd` kernels (true, the default)
  /// or the generic reference loop (the NumericsSpec A/B switch -- fixed
  /// precision results are bit-identical either way, only speed changes).
  /// `sub_tile_drop` > 0 zeroes scalar entries of magnitude
  /// <= sub_tile_drop inside kept tiles before the Frobenius test; in half
  /// storage the implicit mirror keeps the truncation exactly symmetric.
  /// Both knobs default to the historical behavior, so the pure-fp64 path
  /// is untouched.
  void multiply_sym_into(const BlockSparseMatrix& b, double drop_tolerance,
                         BlockSparseMatrix& out, BsrWorkspace& ws,
                         BsrPattern* pattern = nullptr,
                         double sub_tile_drop = 0.0, bool simd = true) const;

  /// Gershgorin enclosure of the spectrum (shared linalg interval type).
  [[nodiscard]] linalg::SpectralBounds gershgorin_bounds() const;

  // Raw BSR access (read-only) for kernels that stream the structure.
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cols() const { return col_; }
  [[nodiscard]] const std::vector<double>& values() const { return val_; }

  /// Mutable tile payloads (kF64 storage).  For in-place value edits that
  /// keep the structure -- the fault-injection hooks poison single entries
  /// through this; the pattern, fingerprint and precision are untouched.
  [[nodiscard]] std::vector<double>& values_mutable() { return val_; }

  /// Tile payload of the k-th stored block (row-major; row_dim(I) x
  /// row_dim(J) doubles for a tile in block row I, column J).  kF64 only.
  [[nodiscard]] const double* block(std::size_t k) const {
    return val_.data() + (dims_.empty() ? bs_ * bs_ * k : val_ptr_[k]);
  }

  /// fp32 payload vector (empty unless precision() == kF32).
  [[nodiscard]] const std::vector<float>& values_f32() const { return val32_; }

  /// fp32 tile payload of the k-th stored block (kF32 matrices only).
  [[nodiscard]] const float* block_f32(std::size_t k) const {
    return val32_.data() + (dims_.empty() ? bs_ * bs_ * k : val_ptr_[k]);
  }

 private:
  friend class SparseMatrix;
  friend void bsr_assemble(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                           BlockSparseMatrix& out, bool symmetric_half);
  friend void bsr_assemble(const std::vector<std::uint32_t>& dims,
                           BsrWorkspace& ws, BlockSparseMatrix& out,
                           bool symmetric_half);

  /// Recompute pattern_fingerprint_ from the current structure; every
  /// builder calls this exactly once after the pattern is final.
  void refingerprint();

  /// Block row containing scalar row `i` (variable mode only).
  [[nodiscard]] std::size_t block_index_of(std::size_t i) const;

  /// Stored-tile index of tile (bi, bj), or npos if absent (the
  /// precision-agnostic core of find_block; fp32 readers pair it with
  /// block_f32).
  [[nodiscard]] std::size_t find_block_index(std::size_t bi,
                                             std::size_t bj) const;

  /// kF32 twins of combine_into / multiply_sym_into (separate functions so
  /// the fp64 sweeps' codegen cannot drift -- the PR 6 lesson).
  void combine_f32_into(double alpha, const BlockSparseMatrix& b, double beta,
                        double drop_tolerance, double sub_tile_drop,
                        BlockSparseMatrix& out, BsrWorkspace& ws) const;
  void multiply_sym_f32_into(const BlockSparseMatrix& b, double drop_tolerance,
                             double sub_tile_drop, bool simd,
                             BlockSparseMatrix& out, BsrWorkspace& ws,
                             BsrPattern* pattern) const;

  /// bsr_assemble twins reading ws.row_vals32 into val32_.
  static void assemble_f32(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                           BlockSparseMatrix& out, bool symmetric_half);
  static void assemble_f32(const std::vector<std::uint32_t>& dims,
                           BsrWorkspace& ws, BlockSparseMatrix& out,
                           bool symmetric_half);

  std::size_t n_ = 0;       ///< scalar dimension
  std::size_t bs_ = 1;      ///< uniform tile edge (0: variable mode)
  std::size_t max_bs_ = 1;  ///< widest tile edge (== bs_ when uniform)
  std::size_t nb_ = 0;      ///< block rows
  bool sym_ = false;        ///< symmetric-half storage (tiles J >= I only)
  std::vector<std::size_t> row_ptr_;   ///< nb + 1 block-row offsets
  std::vector<std::uint32_t> col_;     ///< block-column index per tile
  std::vector<double> val_;            ///< dense row-major tile payloads
  std::vector<float> val32_;           ///< fp32 payloads (kF32 mode)
  TilePrecision prec_ = TilePrecision::kF64;
  std::vector<std::uint32_t> dims_;    ///< per-row tile dims (empty: uniform)
  std::vector<std::size_t> offs_;      ///< nb + 1 scalar row offsets (var)
  std::vector<std::size_t> val_ptr_;   ///< per-tile value offsets (var)
  std::uint64_t pattern_fingerprint_ = 0;
};

/// Direct mutable access for assembly code (onx Hamiltonian builder): set
/// the structure in one shot from per-row staging buffers in `ws`.
void bsr_assemble(std::size_t n, std::size_t bs, BsrWorkspace& ws,
                  BlockSparseMatrix& out, bool symmetric_half = false);

/// bsr_assemble() on a variable block layout: tile (I, J) in the staging
/// rows is dims[I] x dims[J].  A dims vector whose entries all agree is
/// routed through the uniform assembler, so the output normalizes exactly
/// like the constructors do.
void bsr_assemble(const std::vector<std::uint32_t>& dims, BsrWorkspace& ws,
                  BlockSparseMatrix& out, bool symmetric_half = false);

}  // namespace tbmd::onx
