#include "src/onx/purification.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.hpp"
#include "src/util/fault_point.hpp"

namespace tbmd::onx {

std::size_t natural_block_size(std::size_t n) { return n % 4 == 0 ? 4 : 1; }

PurificationResult palser_manolopoulos(const BlockSparseMatrix& h,
                                       int n_occupied,
                                       const PurificationOptions& options,
                                       PurificationWorkspace* workspace) {
  const std::size_t n = h.size();
  TBMD_REQUIRE(n_occupied >= 0 &&
                   static_cast<std::size_t>(n_occupied) <= n,
               "purification: occupied count out of range");
  PurificationResult out;
  if (n == 0 || n_occupied == 0) {
    out.density = h.uniform_blocks()
                      ? BlockSparseMatrix(n, h.block_size(), true)
                      : BlockSparseMatrix(h.block_dims(), true);
    out.converged = true;
    return out;
  }

  PurificationWorkspace local;
  PurificationWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Fault sites (inert unless armed; see util/fault_point.hpp): a forced
  // stall reports converged = false with an otherwise ordinary density --
  // the ladder's non-convergence drill -- and the NaN injection below
  // corrupts one seed entry, which two multiplies spread over the whole
  // density matrix (the non-finite drill).
  const bool inject_stall = fault::fire(fault::kOnxNoConverge);

  // The loop runs entirely in symmetric-half storage; a full-stored
  // operand (convenience callers) is halved on entry.
  BlockSparseMatrix h_half_storage;
  const BlockSparseMatrix* hp = &h;
  if (!h.symmetric()) {
    h_half_storage = h.to_symmetric_half();
    hp = &h_half_storage;
  }
  const BlockSparseMatrix& hh = *hp;

  const double theta =
      static_cast<double>(n_occupied) / static_cast<double>(n);
  const linalg::SpectralBounds bounds =
      options.have_bounds ? options.bounds : hh.gershgorin_bounds();
  const double mu = hh.trace() / static_cast<double>(n);

  // Initial guess P0 = lambda (mu I - H) + theta I with spectrum in [0,1]
  // and trace exactly n_occupied; the spectral extent comes from the shared
  // Gershgorin estimate the dense eigensolvers also use.
  const double denom_hi = std::max(bounds.hi - mu, 1e-12);
  const double denom_lo = std::max(mu - bounds.lo, 1e-12);
  const double lambda = std::min(theta / denom_hi, (1.0 - theta) / denom_lo);

  if (!ws.eye.symmetric() || !ws.eye.layout_matches(hh)) {
    ws.eye = BlockSparseMatrix::identity_like(hh);
  }
  // P = -lambda H + (lambda mu + theta) I
  hh.combine_into(-lambda, ws.eye, lambda * mu + theta,
                  options.drop_tolerance, ws.p, ws.scratch);

  if (fault::fire(fault::kOnxNanTile) && !ws.p.values().empty()) {
    ws.p.values_mutable()[0] = std::numeric_limits<double>::quiet_NaN();
  }

  // Truncation sets a noise floor below which idempotency cannot improve:
  // converge when tr(P - P^2)/N reaches whichever is larger, the requested
  // tolerance or the drop threshold.
  const double effective_tol =
      std::max(options.idempotency_tolerance, options.drop_tolerance);
  double prev_idem = 1e300;

  // Mixed mode: the loose-early iterations run their SpMMs on fp32 tiles
  // (traces and truncation thresholds stay fp64), promoted back to fp64
  // tiles for the tight-late iterations.  Convergence is never declared on
  // fp32 tiles -- any criterion that fires there triggers promotion
  // instead, and the fp64 iterations re-assess it from scratch.
  if (options.precision == PrecisionMode::kMixed) {
    ws.p.convert_precision(TilePrecision::kF32);
  }

  ws.patterns.begin_run();
  for (int it = 1; it <= options.max_iterations; ++it) {
    const double drop = options.drop_at(it);
    ws.p.multiply_sym_into(ws.p, drop, ws.p2, ws.scratch, ws.patterns.next(),
                           options.sub_tile * drop, options.simd);
    ws.p2.multiply_sym_into(ws.p, drop, ws.p3, ws.scratch,
                            ws.patterns.next(), options.sub_tile * drop,
                            options.simd);

    const double tr_p = ws.p.trace();
    const double tr_p2 = ws.p2.trace();
    const double tr_p3 = ws.p3.trace();
    const double idem = tr_p - tr_p2;

    out.iterations = it;
    out.idempotency_error = idem;

    if (ws.p.precision() == TilePrecision::kF32) {
      ++out.numerics.fp32_iterations;
      const double per_state = std::fabs(idem) / static_cast<double>(n);
      const double c = (tr_p2 - tr_p3) / idem;
      PromotionTrigger trig = PromotionTrigger::kNone;
      if (per_state < effective_tol ||
          (std::fabs(idem) >= 0.5 * prev_idem &&
           per_state < 50.0 * options.drop_tolerance) ||
          !std::isfinite(c)) {
        trig = PromotionTrigger::kStagnation;
      } else if (per_state < options.promote_threshold) {
        trig = PromotionTrigger::kThreshold;
      } else if (options.promote_iteration > 0 &&
                 it >= options.promote_iteration) {
        trig = PromotionTrigger::kIteration;
      }
      // Apply the trace-conserving update on the fp32 tiles unless the
      // iteration stalled (near-idempotent P makes c ill-conditioned);
      // a threshold/iteration-cap promotion still takes this step's
      // update with it.
      if (std::isfinite(c) && trig != PromotionTrigger::kStagnation) {
        if (c >= 0.5) {
          ws.p2.combine_into((1.0 + c) / c, ws.p3, -1.0 / c, drop, ws.p,
                             ws.scratch);
        } else {
          ws.p.combine_into((1.0 - 2.0 * c) / (1.0 - c), ws.p2,
                            (1.0 + c) / (1.0 - c), drop, ws.tmp, ws.scratch);
          ws.tmp.combine_into(1.0, ws.p3, -1.0 / (1.0 - c), drop, ws.p,
                              ws.scratch);
        }
      }
      if (trig != PromotionTrigger::kNone) {
        ws.p.convert_precision(TilePrecision::kF64);
        out.numerics.promoted_at = it;
        out.numerics.trigger = trig;
        // The fp64 phase re-assesses stagnation with a fresh history.
        prev_idem = 1e300;
      } else {
        prev_idem = std::fabs(idem);
      }
      continue;
    }
    ++out.numerics.fp64_iterations;
    if (std::fabs(idem) / static_cast<double>(n) < effective_tol) {
      out.converged = true;
      // Final McWeeny polish at the tight tolerance.
      ws.p2.combine_into(3.0, ws.p3, -2.0, options.drop_tolerance, ws.p,
                         ws.scratch);
      break;
    }
    // Stagnation at the truncation noise floor also counts as converged:
    // further iterations cannot improve a truncated density matrix.
    if (std::fabs(idem) >= 0.5 * prev_idem &&
        std::fabs(idem) / static_cast<double>(n) <
            50.0 * options.drop_tolerance) {
      out.converged = true;
      break;
    }
    prev_idem = std::fabs(idem);

    const double c = (tr_p2 - tr_p3) / idem;
    if (!std::isfinite(c)) break;

    if (c >= 0.5) {
      // P <- [(1+c) P^2 - P^3] / c   (P is not an operand: write directly)
      ws.p2.combine_into((1.0 + c) / c, ws.p3, -1.0 / c, drop, ws.p,
                         ws.scratch);
    } else {
      // P <- [(1-2c) P + (1+c) P^2 - P^3] / (1-c)
      ws.p.combine_into((1.0 - 2.0 * c) / (1.0 - c), ws.p2,
                        (1.0 + c) / (1.0 - c), drop, ws.tmp, ws.scratch);
      ws.tmp.combine_into(1.0, ws.p3, -1.0 / (1.0 - c), drop, ws.p,
                          ws.scratch);
    }
  }

  // An fp32 phase that exhausted max_iterations hands back fp64 anyway:
  // the density matrix, band energy and force contractions are fp64
  // artifacts in every mode.
  if (ws.p.precision() == TilePrecision::kF32) {
    ws.p.convert_precision(TilePrecision::kF64);
  }

  // Band energy through the symmetric-half trace_of_product specialization
  // (single upper-half pass, 2x off-diagonal weight).
  out.band_energy = 2.0 * ws.p.trace_of_product(hh);
  out.fill_fraction = ws.p.fill_fraction();
  out.density = std::move(ws.p);
  ws.p = BlockSparseMatrix::zeros_like(hh);
  if (inject_stall) out.converged = false;
  return out;
}

PurificationResult palser_manolopoulos(const SparseMatrix& h, int n_occupied,
                                       const PurificationOptions& options) {
  return palser_manolopoulos(
      h.to_block(natural_block_size(h.size())).to_symmetric_half(),
      n_occupied, options);
}

PurificationResult palser_manolopoulos(
    const SparseMatrix& h, const std::vector<std::uint32_t>& block_dims,
    int n_occupied, const PurificationOptions& options) {
  return palser_manolopoulos(h.to_block(block_dims).to_symmetric_half(),
                             n_occupied, options);
}

PurificationResult purify_grand_canonical(const BlockSparseMatrix& h,
                                          double mu,
                                          const PurificationOptions& options,
                                          PurificationWorkspace* workspace) {
  const std::size_t n = h.size();
  PurificationResult out;
  out.mu = mu;
  if (n == 0) {
    out.converged = true;
    return out;
  }

  PurificationWorkspace local;
  PurificationWorkspace& ws = workspace != nullptr ? *workspace : local;

  BlockSparseMatrix h_half_storage;
  const BlockSparseMatrix* hp = &h;
  if (!h.symmetric()) {
    h_half_storage = h.to_symmetric_half();
    hp = &h_half_storage;
  }
  const BlockSparseMatrix& hh = *hp;

  // Step-function seed X0 = 1/2 I + (mu I - H) / (2 W).  W is the largest
  // distance from mu to the Gershgorin enclosure, so every eigenvalue of X0
  // lands in [0, 1] with the occupied/empty split exactly at 1/2; the
  // trace-free McWeeny polynomial then sharpens the step without moving it.
  const linalg::SpectralBounds bounds =
      options.have_bounds ? options.bounds : hh.gershgorin_bounds();
  const double w = std::max({bounds.hi - mu, mu - bounds.lo, 1e-12});
  if (!ws.eye.symmetric() || !ws.eye.layout_matches(hh)) {
    ws.eye = BlockSparseMatrix::identity_like(hh);
  }
  hh.combine_into(-0.5 / w, ws.eye, 0.5 + 0.5 * mu / w,
                  options.drop_tolerance, ws.p, ws.scratch);

  const double effective_tol =
      std::max(options.idempotency_tolerance, options.drop_tolerance);
  double prev_idem = 1e300;

  // Mixed mode mirrors the canonical loop: fp32 SpMMs while far from the
  // step function, promotion (never convergence) when a criterion fires
  // on fp32 tiles.
  if (options.precision == PrecisionMode::kMixed) {
    ws.p.convert_precision(TilePrecision::kF32);
  }

  ws.patterns.begin_run();
  for (int it = 1; it <= options.max_iterations; ++it) {
    const double drop = options.drop_at(it);
    ws.p.multiply_sym_into(ws.p, drop, ws.p2, ws.scratch, ws.patterns.next(),
                           options.sub_tile * drop, options.simd);
    ws.p2.multiply_sym_into(ws.p, drop, ws.p3, ws.scratch,
                            ws.patterns.next(), options.sub_tile * drop,
                            options.simd);

    const double idem = ws.p.trace() - ws.p2.trace();
    out.iterations = it;
    out.idempotency_error = idem;
    const double per_state = std::fabs(idem) / static_cast<double>(n);
    const bool at_floor =
        std::fabs(idem) >= 0.5 * prev_idem &&
        per_state < 50.0 * options.drop_tolerance;

    if (ws.p.precision() == TilePrecision::kF32) {
      ++out.numerics.fp32_iterations;
      PromotionTrigger trig = PromotionTrigger::kNone;
      if (per_state < effective_tol || at_floor) {
        trig = PromotionTrigger::kStagnation;
      } else if (per_state < options.promote_threshold) {
        trig = PromotionTrigger::kThreshold;
      } else if (options.promote_iteration > 0 &&
                 it >= options.promote_iteration) {
        trig = PromotionTrigger::kIteration;
      }
      // The McWeeny step is unconditionally contractive, so promotion
      // always takes this iteration's update with it.
      ws.p2.combine_into(3.0, ws.p3, -2.0, drop, ws.p, ws.scratch);
      if (trig != PromotionTrigger::kNone) {
        ws.p.convert_precision(TilePrecision::kF64);
        out.numerics.promoted_at = it;
        out.numerics.trigger = trig;
        prev_idem = 1e300;
      } else {
        prev_idem = std::fabs(idem);
      }
      continue;
    }
    ++out.numerics.fp64_iterations;
    if (per_state < effective_tol || at_floor) {
      out.converged = true;
    }
    prev_idem = std::fabs(idem);

    // X <- 3 X^2 - 2 X^3 (also serves as the final polish on convergence).
    ws.p2.combine_into(3.0, ws.p3, -2.0,
                       out.converged ? options.drop_tolerance : drop, ws.p,
                       ws.scratch);
    if (out.converged) break;
  }

  if (ws.p.precision() == TilePrecision::kF32) {
    ws.p.convert_precision(TilePrecision::kF64);
  }

  out.band_energy = 2.0 * ws.p.trace_of_product(hh);
  out.fill_fraction = ws.p.fill_fraction();
  out.density = std::move(ws.p);
  ws.p = BlockSparseMatrix::zeros_like(hh);
  return out;
}

PurificationResult purify_with_chemical_potential(
    const BlockSparseMatrix& h, int n_occupied,
    const PurificationOptions& options, PurificationWorkspace* workspace) {
  const std::size_t n = h.size();
  TBMD_REQUIRE(n_occupied >= 0 &&
                   static_cast<std::size_t>(n_occupied) <= n,
               "purification: occupied count out of range");
  if (n == 0 || n_occupied == 0) {
    return purify_grand_canonical(h, 0.0, options, workspace);
  }

  // tr P(mu) counts the eigenvalues below mu, a step-wise nondecreasing
  // function of mu: plain bisection between the Gershgorin bounds brackets
  // the Fermi level.  Accept when the count lands within a quarter state —
  // tighter than any truncation noise, loose enough that gapped systems
  // terminate in a handful of purification runs.
  // One Gershgorin pass serves the whole bisection: both the mu bracket
  // and every grand-canonical run's seed below read the same enclosure
  // (previously each of the up-to-48 runs re-derived it from H).
  PurificationOptions opts = options;
  if (!opts.have_bounds) {
    opts.bounds = h.symmetric() ? h.gershgorin_bounds()
                                : h.to_symmetric_half().gershgorin_bounds();
    opts.have_bounds = true;
  }
  double lo = opts.bounds.lo;
  double hi = opts.bounds.hi;
  const double target = static_cast<double>(n_occupied);

  PurificationResult best;
  double best_miss = 1e300;
  for (int step = 0; step < 48; ++step) {
    const double mu = 0.5 * (lo + hi);
    PurificationResult r = purify_grand_canonical(h, mu, opts, workspace);
    const double count = r.density.trace();
    const double miss = std::fabs(count - target);
    if (miss < best_miss) {
      best_miss = miss;
      best = std::move(r);
    }
    if (best_miss <= 0.25 && best.converged) break;
    if (count < target) {
      lo = mu;
    } else {
      hi = mu;
    }
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi) + std::fabs(lo))) {
      break;
    }
  }
  // A count that never matched (mu trapped inside a band at T = 0) is a
  // metallic failure mode: report the closest run, unconverged, and marked
  // so the guardrails classify it as a mu miss rather than a plain stall.
  if (best_miss > 0.25) {
    best.converged = false;
    best.mu_miss = true;
  }
  return best;
}

}  // namespace tbmd::onx
