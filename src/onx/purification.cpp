#include "src/onx/purification.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace tbmd::onx {

PurificationResult palser_manolopoulos(const SparseMatrix& h, int n_occupied,
                                       const PurificationOptions& options) {
  const std::size_t n = h.size();
  TBMD_REQUIRE(n_occupied >= 0 &&
                   static_cast<std::size_t>(n_occupied) <= n,
               "purification: occupied count out of range");
  PurificationResult out;
  if (n == 0 || n_occupied == 0) {
    out.density = SparseMatrix(n);
    out.converged = true;
    return out;
  }

  const double theta =
      static_cast<double>(n_occupied) / static_cast<double>(n);
  const linalg::SpectralBounds bounds = h.gershgorin_bounds();
  const double mu = h.trace() / static_cast<double>(n);

  // Initial guess P0 = lambda (mu I - H) + theta I with spectrum in [0,1]
  // and trace exactly n_occupied; the spectral extent comes from the shared
  // Gershgorin estimate the dense eigensolvers also use.
  const double denom_hi = std::max(bounds.hi - mu, 1e-12);
  const double denom_lo = std::max(mu - bounds.lo, 1e-12);
  const double lambda = std::min(theta / denom_hi, (1.0 - theta) / denom_lo);

  const SparseMatrix eye = SparseMatrix::identity(n);
  // P = -lambda H + (lambda mu + theta) I
  SparseMatrix p = h.combine(-lambda, eye, lambda * mu + theta,
                             options.drop_tolerance);

  // Truncation sets a noise floor below which idempotency cannot improve:
  // converge when tr(P - P^2)/N reaches whichever is larger, the requested
  // tolerance or the drop threshold.
  const double effective_tol =
      std::max(options.idempotency_tolerance, options.drop_tolerance);
  double prev_idem = 1e300;

  for (int it = 1; it <= options.max_iterations; ++it) {
    const SparseMatrix p2 = p.multiply(p, options.drop_tolerance);
    const SparseMatrix p3 = p2.multiply(p, options.drop_tolerance);

    const double tr_p = p.trace();
    const double tr_p2 = p2.trace();
    const double tr_p3 = p3.trace();
    const double idem = tr_p - tr_p2;

    out.iterations = it;
    out.idempotency_error = idem;
    if (std::fabs(idem) / static_cast<double>(n) < effective_tol) {
      out.converged = true;
      p = p2.combine(3.0, p3, -2.0, options.drop_tolerance);  // final polish
      break;
    }
    // Stagnation at the truncation noise floor also counts as converged:
    // further iterations cannot improve a truncated density matrix.
    if (std::fabs(idem) >= 0.5 * prev_idem &&
        std::fabs(idem) / static_cast<double>(n) <
            50.0 * options.drop_tolerance) {
      out.converged = true;
      break;
    }
    prev_idem = std::fabs(idem);

    const double c = (tr_p2 - tr_p3) / idem;
    if (!std::isfinite(c)) break;

    if (c >= 0.5) {
      // P <- [(1+c) P^2 - P^3] / c
      p = p2.combine((1.0 + c) / c, p3, -1.0 / c, options.drop_tolerance);
    } else {
      // P <- [(1-2c) P + (1+c) P^2 - P^3] / (1-c)
      const SparseMatrix tmp =
          p.combine((1.0 - 2.0 * c) / (1.0 - c), p2, (1.0 + c) / (1.0 - c),
                    options.drop_tolerance);
      p = tmp.combine(1.0, p3, -1.0 / (1.0 - c), options.drop_tolerance);
    }
  }

  out.band_energy = 2.0 * p.trace_of_product(h);
  out.fill_fraction = p.fill_fraction();
  out.density = std::move(p);
  return out;
}

}  // namespace tbmd::onx
