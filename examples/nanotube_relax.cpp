/// \file nanotube_relax.cpp
/// \brief Build (n,m) single-wall carbon nanotubes, relax them with the TB
/// model, and report the relaxed geometry (radius, strain energy relative
/// to flat graphene) -- reproducing the classic 1/R^2 curvature-energy law.
///
/// Run: ./nanotube_relax

#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/io/table.hpp"
#include "src/relax/relax.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/nanotube.hpp"
#include "src/tb/tb_calculator.hpp"

int main() {
  using namespace tbmd;

  // Reference: energy per atom of relaxed flat graphene.
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  System flat = structures::graphene(Element::C, 1.42, 3, 2);
  relax::RelaxOptions ropt;
  ropt.force_tolerance = 5e-3;
  ropt.max_iterations = 400;
  (void)relax::fire_relax(flat, calc, ropt);
  const double e_flat = calc.compute(flat).energy / flat.size();
  std::printf("flat graphene reference: %.4f eV/atom\n\n", e_flat);

  io::Table table({"(n,m)", "atoms", "R_A", "E_strain_meV_atom",
                   "E_strain*R^2"});
  struct Idx {
    int n, m;
  };
  for (const Idx idx : {Idx{6, 0}, Idx{8, 0}, Idx{10, 0}, Idx{5, 5}, Idx{6, 6}}) {
    // Periodic tube, enough cells to satisfy the neighbor precondition.
    const auto info = structures::nanotube_info(idx.n, idx.m, 1.42);
    const int cells = std::max(2, static_cast<int>(std::ceil(6.4 / info.translation)));
    System tube = structures::nanotube(Element::C, idx.n, idx.m, 1.42, cells,
                                       /*periodic=*/true);
    tb::TightBindingCalculator tube_calc(tb::xwch_carbon());
    (void)relax::fire_relax(tube, tube_calc, ropt);
    const double e_tube = tube_calc.compute(tube).energy / tube.size();
    const double strain_mev = 1000.0 * (e_tube - e_flat);

    char label[16];
    std::snprintf(label, sizeof label, "(%d,%d)", idx.n, idx.m);
    table.add_row({label, std::to_string(tube.size()),
                   std::to_string(info.radius), std::to_string(strain_mev),
                   std::to_string(strain_mev * info.radius * info.radius)});
  }
  table.print(std::cout);
  std::printf("\nThe last column should be roughly constant: strain energy"
              " ~ C/R^2\n(continuum bending of the graphene sheet).\n");
  return 0;
}
