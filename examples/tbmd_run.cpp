/// \file tbmd_run.cpp
/// \brief Config-file driven simulation runner -- the library as a tool.
///
/// Usage:  ./tbmd_run input.cfg
///
/// Example configuration:
/// \code
///   # structure
///   structure   = diamond        # diamond | fcc | graphene | nanotube | c60 | xyz
///   element     = Si
///   lattice     = 5.431
///   cells       = 2 2 2
///   # model
///   model       = tb-exact       # tb-exact | tb-on | tersoff | lj
///   # optional relaxation before dynamics
///   relax       = false
///   # dynamics
///   ensemble    = nvt            # nve | nvt
///   temperature = 300
///   thermostat_tau = 50
///   dt          = 1.0
///   steps       = 200
///   seed        = 42
///   # output
///   trajectory  = run.xyz
///   sample_every = 20
///   restart     = final.xyz      # written with velocities at the end
/// \endcode

#include <cstdio>
#include <iostream>
#include <memory>

#include "src/analysis/thermo.hpp"
#include "src/core/calculator_spec.hpp"
#include "src/io/binary_trajectory.hpp"
#include "src/io/config.hpp"
#include "src/io/logger.hpp"
#include "src/io/table.hpp"
#include "src/io/xyz.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/relax/relax.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/structures/nanotube.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/error.hpp"
#include "src/util/string_util.hpp"

namespace {

using namespace tbmd;

System build_structure(const io::Config& cfg) {
  const std::string kind = to_lower(cfg.require_string("structure"));
  const Element elem =
      element_from_symbol(cfg.get_string("element", kind == "fcc" ? "Ar" : "Si"));
  const auto cells = cfg.get_longs("cells", {2, 2, 2});
  TBMD_REQUIRE(cells.size() == 3, "config: 'cells' needs three integers");

  if (kind == "diamond") {
    const double a = cfg.get_double("lattice", elem == Element::C ? 3.567 : 5.431);
    return structures::diamond(elem, a, cells[0], cells[1], cells[2]);
  }
  if (kind == "fcc") {
    const double a = cfg.get_double("lattice", 5.26);
    return structures::fcc(elem, a, cells[0], cells[1], cells[2]);
  }
  if (kind == "graphene") {
    const double bond = cfg.get_double("bond", 1.42);
    return structures::graphene(elem, bond, cells[0], cells[1]);
  }
  if (kind == "nanotube") {
    const auto nm = cfg.get_longs("indices", {10, 0});
    TBMD_REQUIRE(nm.size() == 2, "config: 'indices' needs n and m");
    const double bond = cfg.get_double("bond", 1.42);
    const bool periodic = cfg.get_bool("periodic", true);
    return structures::nanotube(elem, static_cast<int>(nm[0]),
                                static_cast<int>(nm[1]), bond,
                                static_cast<int>(cells[2]), periodic);
  }
  if (kind == "c60") return structures::c60();
  if (kind == "xyz") return io::read_xyz_file(cfg.require_string("file"));
  throw Error("config: unknown structure '" + kind + "'");
}

std::unique_ptr<Calculator> build_calculator(const io::Config& cfg,
                                             const System& system) {
  const std::string kind = to_lower(cfg.get_string("model", "tb-exact"));
  const Element elem = system.species().empty() ? Element::Si
                                                : system.species().front();
  if (kind == "tb-exact" || kind == "tb-on") {
    CalculatorSpec spec;
    spec.mode = CalculatorSpec::mode_by_name(kind);
    spec.skin = cfg.get_double("skin", spec.skin);
    spec.electronic_temperature = cfg.get_double("electronic_temperature", 0.0);
    spec.numerics.drop_tolerance =
        cfg.get_double("drop_tolerance", spec.numerics.drop_tolerance);
    spec.numerics.precision = NumericsSpec::precision_by_name(
        to_lower(cfg.get_string("precision", spec.numerics.precision_name())));
    const std::string model_name =
        cfg.get_string("tb_model", std::string(element_symbol(elem)));
    return make_calculator(tb::model_by_name(model_name), system, spec);
  }
  if (kind == "tersoff") {
    return std::make_unique<potentials::TersoffCalculator>(
        elem == Element::C ? potentials::tersoff_carbon()
                           : potentials::tersoff_silicon());
  }
  if (kind == "lj") {
    potentials::LennardJonesParams p;
    p.epsilon = cfg.get_double("epsilon", p.epsilon);
    p.sigma = cfg.get_double("sigma", p.sigma);
    p.cutoff = cfg.get_double("cutoff", p.cutoff);
    return std::make_unique<potentials::LennardJonesCalculator>(p);
  }
  throw Error("config: unknown model '" + kind + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s input.cfg\n", argv[0]);
    return 2;
  }
  try {
    using namespace tbmd;
    const io::Config cfg = io::Config::parse_file(argv[1]);

    System system = build_structure(cfg);
    std::unique_ptr<Calculator> calc = build_calculator(cfg, system);
    io::log_info("structure: ", system.size(), " atoms; model: ",
                 calc->name());

    if (cfg.get_bool("relax", false)) {
      relax::RelaxOptions ropt;
      ropt.force_tolerance = cfg.get_double("relax_tolerance", 1e-2);
      ropt.max_iterations = cfg.get_long("relax_max_iterations", 1000);
      const auto rr = relax::fire_relax(system, *calc, ropt);
      io::log_info("relaxation: converged=", rr.converged, " E=", rr.energy,
                   " eV, max|F|=", rr.max_force);
    }

    const long steps = cfg.get_long("steps", 100);
    const double dt = cfg.get_double("dt", 1.0);
    const double temperature = cfg.get_double("temperature", 300.0);
    const long sample_every = cfg.get_long("sample_every", 25);

    md::maxwell_boltzmann_velocities(
        system, temperature,
        static_cast<std::uint64_t>(cfg.get_long("seed", 42)));

    md::MdOptions mdopt;
    mdopt.dt = dt;
    const std::string ensemble = to_lower(cfg.get_string("ensemble", "nvt"));
    if (ensemble == "nvt") {
      mdopt.thermostat = md::ThermostatSpec::nose_hoover(
          temperature, cfg.get_double("thermostat_tau", 50.0), 2);
    } else {
      TBMD_REQUIRE(ensemble == "nve", "config: ensemble must be nve or nvt");
    }

    md::MdDriver driver(system, *calc, mdopt);

    // Trajectory output: a .tbt path selects the compact binary format.
    std::unique_ptr<io::TrajectoryWriter> traj;
    std::unique_ptr<io::BinaryTrajectoryWriter> btraj;
    if (cfg.has("trajectory")) {
      const std::string path = cfg.require_string("trajectory");
      if (path.size() > 4 && path.substr(path.size() - 4) == ".tbt") {
        btraj = std::make_unique<io::BinaryTrajectoryWriter>(path, system);
      } else {
        traj = std::make_unique<io::TrajectoryWriter>(path);
      }
    }

    io::Table table({"time_fs", "T_K", "E_pot_eV", "E_tot_eV", "P_GPa"});
    driver.run(steps, [&](const md::MdDriver& d, long step) {
      if (step % sample_every != 0) return;
      double p_gpa = 0.0;
      if (d.system().cell().periodic()) {
        p_gpa = analysis::kEvPerA3ToGPa *
                analysis::instantaneous_pressure(d.system(), d.last_result());
      }
      table.add_numeric_row({d.time_fs(), d.system().temperature(),
                             d.last_result().energy, d.total_energy(), p_gpa},
                            6);
      if (traj) traj->add_frame(d.system(), "t=" + std::to_string(d.time_fs()));
      if (btraj) btraj->add_frame(d.system(), step);
    });
    table.print(std::cout);

    if (cfg.has("restart")) {
      io::write_xyz_file(cfg.require_string("restart"), system, "restart",
                         /*with_velocities=*/true);
      io::log_info("restart written to ", cfg.require_string("restart"));
    }

    for (const std::string& key : cfg.unused_keys()) {
      io::log_warn("config: unused key '", key, "' at ", cfg.where(key));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
