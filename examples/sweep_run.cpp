/// \file sweep_run.cpp
/// \brief Batched-trajectory sweep runner with checkpoint/restart.
///
/// Usage:  ./sweep_run sweep.cfg [--workers N] [--output DIR]
///                     [--no-resume] [--step-budget N] [--threads N]
///                     [--precision fp64|mixed] [--retries N]
///                     [--watchdog S] [--faults SPEC] [--quiet]
///
/// Example sweep file:
/// \code
///   jobs       = melt_300.cfg melt_600.cfg melt_900.cfg
///   output_dir = melt_sweep
///   workers    = 2
///   replicas   = 1
/// \endcode
///
/// Each job file is a JobSpec config (see src/svc/job_spec.hpp).  Killing
/// the process (or bounding it with --step-budget) leaves checkpoints in
/// the output directory; re-running the same command resumes every
/// unfinished job bit-identically.
///
/// Exit status: 0 = all jobs completed, 2 = budget ran out (re-run to
/// continue), 1 = at least one job failed.
///
/// Chaos knobs: --faults (or the TBMD_FAULTS env var) arms the
/// deterministic fault-injection registry (see src/util/fault_point.hpp
/// for the site grammar); --retries and --watchdog map to the sweep
/// file's max_job_retries / step_watchdog keys.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/io/logger.hpp"
#include "src/svc/job_runner.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_point.hpp"
#include "src/util/parallel.hpp"
#include "src/util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace tbmd;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s sweep.cfg [--workers N] [--output DIR] "
                 "[--no-resume] [--step-budget N] [--threads N] "
                 "[--precision fp64|mixed] [--retries N] [--watchdog S] "
                 "[--faults SPEC] [--quiet]\n",
                 argv[0]);
    return 2;
  }
  try {
    svc::Sweep sweep = svc::load_sweep(argv[1]);
    svc::SweepOptions opt;
    opt.workers = sweep.workers;
    opt.output_dir = sweep.output_dir;
    opt.resume = sweep.resume;
    opt.max_job_retries = sweep.max_job_retries;
    opt.retry_backoff_s = sweep.retry_backoff_s;
    opt.step_watchdog_s = sweep.step_watchdog_s;

    // Ambient team size for all jobs without a per-job `threads` key:
    // TBMD_THREADS env var, overridden by --threads below.
    long ambient_threads = 0;
    if (const char* env = std::getenv("TBMD_THREADS")) {
      ambient_threads = parse_long(env, "TBMD_THREADS");
    }
    // Chaos plan from the environment (overridden/extended by --faults).
    if (const char* env = std::getenv("TBMD_FAULTS")) {
      fault::arm_from_spec(env);
    }

    for (int i = 2; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("sweep_run: " + flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--workers") {
        opt.workers = static_cast<int>(parse_long(value(), flag));
      } else if (flag == "--output") {
        opt.output_dir = value();
      } else if (flag == "--no-resume") {
        opt.resume = false;
      } else if (flag == "--step-budget") {
        opt.step_budget = parse_long(value(), flag);
      } else if (flag == "--threads") {
        ambient_threads = parse_long(value(), flag);
      } else if (flag == "--precision") {
        // Override the purification precision mode for every TB job in
        // the sweep (a results-changing knob, unlike --threads: it lands
        // on each job's NumericsSpec and hence in its fingerprint).
        const PrecisionMode mode =
            NumericsSpec::precision_by_name(to_lower(value()));
        for (svc::JobSpec& job : sweep.jobs) {
          if (!job.classical()) job.calc.numerics.precision = mode;
        }
      } else if (flag == "--retries") {
        opt.max_job_retries = static_cast<int>(parse_long(value(), flag));
      } else if (flag == "--watchdog") {
        opt.step_watchdog_s = parse_double(value(), flag);
      } else if (flag == "--faults") {
        fault::arm_from_spec(value());
      } else if (flag == "--quiet") {
        opt.verbose = false;
      } else {
        throw Error("sweep_run: unknown flag '" + flag + "'");
      }
    }

    opt.threads = static_cast<int>(ambient_threads);
    io::log_info("sweep: ", sweep.jobs.size(), " job(s), ", opt.workers,
                 " worker(s), ",
                 opt.threads > 0 ? opt.threads : par::max_threads(),
                 " thread(s)/job, output '", opt.output_dir, "'");
    svc::JobRunner runner(std::move(sweep.jobs), opt);
    const std::vector<svc::JobResult> results = runner.run();

    int completed = 0;
    int failed = 0;
    int preempted = 0;
    for (const svc::JobResult& r : results) {
      switch (r.status) {
        case svc::JobStatus::kCompleted:
          ++completed;
          break;
        case svc::JobStatus::kFailed:
          ++failed;
          break;
        case svc::JobStatus::kPreempted:
          ++preempted;
          break;
      }
    }
    io::log_info("sweep: ", completed, " completed, ", preempted,
                 " preempted, ", failed, " failed; summary in ",
                 opt.output_dir, "/sweep_summary.csv");
    if (failed > 0) return 1;
    return preempted > 0 ? 2 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
