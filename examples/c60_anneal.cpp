/// \file c60_anneal.cpp
/// \brief Relax and thermally anneal a C60 fullerene with the carbon
/// tight-binding model: structural relaxation splits the uniform truncated
/// icosahedron into the two experimental bond classes (6:6 vs 6:5 bonds),
/// and a short MD anneal checks the cage's thermal stability.
///
/// Run: ./c60_anneal [anneal_temperature_K]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "src/analysis/bonds.hpp"
#include "src/io/xyz.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/relax/relax.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

void bond_report(const tbmd::System& s, const char* label) {
  std::vector<double> bonds;
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      const double d = s.distance(i, j);
      if (d < 1.7) bonds.push_back(d);
    }
  }
  std::sort(bonds.begin(), bonds.end());
  const double mn = bonds.front(), mx = bonds.back();
  double mean = 0.0;
  for (const double b : bonds) mean += b;
  mean /= bonds.size();
  std::printf("%s: %zu bonds, min %.3f A, mean %.3f A, max %.3f A\n", label,
              bonds.size(), mn, mean, mx);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbmd;
  const double anneal_t = argc > 1 ? std::atof(argv[1]) : 1500.0;

  System c60 = structures::c60(Element::C, 1.44);
  bond_report(c60, "ideal truncated icosahedron");

  tb::TightBindingCalculator calc(tb::xwch_carbon());

  // Structural relaxation (FIRE).
  relax::RelaxOptions ropt;
  ropt.force_tolerance = 1e-3;
  ropt.max_iterations = 1500;
  const relax::RelaxResult rr = relax::fire_relax(c60, calc, ropt);
  std::printf("relaxation: converged=%d  E=%.4f eV  max|F|=%.2e eV/A  (%ld iter)\n",
              rr.converged, rr.energy, rr.max_force, rr.iterations);
  bond_report(c60, "relaxed C60 (two bond classes expected)");
  io::write_xyz_file("c60_relaxed.xyz", c60, "relaxed C60");

  // Thermal anneal.
  std::printf("\nannealing at %.0f K ...\n", anneal_t);
  md::maxwell_boltzmann_velocities(c60, anneal_t, 60);
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat =
      md::ThermostatSpec::nose_hoover(anneal_t, 40.0, 2);
  md::MdDriver driver(c60, calc, std::move(opt));
  driver.run(500, [](const md::MdDriver& d, long step) {
    if (step % 100 == 0) {
      std::printf("  t=%5.0f fs  T=%6.0f K  E=%.3f eV\n", d.time_fs(),
                  d.system().temperature(), d.last_result().energy);
    }
  });

  const std::size_t bonds = analysis::bond_count(c60, 1.44 * 1.15);
  std::printf("\nafter anneal: %zu/90 cage bonds intact\n", bonds);
  io::write_xyz_file("c60_annealed.xyz", c60, "annealed C60");
  return 0;
}
