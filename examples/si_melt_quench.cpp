/// \file si_melt_quench.cpp
/// \brief Melt-and-quench of a silicon cell with tight-binding MD -- the
/// classic TBMD workload: heat crystalline Si well above melting, observe
/// the loss of crystalline order in the radial distribution function, then
/// quench and compare solid/liquid/quenched structure.
///
/// This is a miniature version (64 atoms, a few ps) of the
/// liquid/amorphous silicon studies that established TBMD in the early
/// 1990s.  Run: ./si_melt_quench [n_steps_per_stage]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "src/analysis/rdf.hpp"
#include "src/io/table.hpp"
#include "src/io/xyz.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

void report_rdf(const char* label, const tbmd::analysis::RdfAccumulator& acc) {
  const auto r = acc.r_values();
  const auto g = acc.g_of_r();
  std::printf("\n g(r) %s\n  r_A    g\n", label);
  for (std::size_t b = 0; b < r.size(); b += 4) {
    std::printf("  %.2f   %.2f\n", r[b], g[b]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbmd;
  const long stage_steps = argc > 1 ? std::atol(argv[1]) : 300;

  System si = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  md::maxwell_boltzmann_velocities(si, 300.0, 11);

  tb::TightBindingCalculator calc(tb::gsp_silicon());
  md::MdOptions opt;
  opt.dt = 1.5;
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 60.0, 2);
  md::MdDriver driver(si, calc, std::move(opt));

  io::TrajectoryWriter traj("si_melt_quench.xyz");

  // Stage 1: solid at 300 K.
  analysis::RdfAccumulator rdf_solid(5.4, 54);
  driver.run(stage_steps, [&](const md::MdDriver& d, long step) {
    if (step % 25 == 0) rdf_solid.add_frame(d.system());
  });
  report_rdf("crystal 300 K", rdf_solid);
  traj.add_frame(si, "solid300K");

  // Stage 2: ramp to 3500 K (well above the model's melting point) and hold.
  std::printf("\nramping to 3500 K ...\n");
  driver.ramp_temperature(3500.0, stage_steps);
  analysis::RdfAccumulator rdf_liquid(5.4, 54);
  driver.run(2 * stage_steps, [&](const md::MdDriver& d, long step) {
    if (step % 25 == 0) rdf_liquid.add_frame(d.system());
  });
  report_rdf("liquid 3500 K", rdf_liquid);
  traj.add_frame(si, "liquid3500K");
  std::printf("liquid T = %.0f K\n", si.temperature());

  // Stage 3: quench back to 300 K.
  std::printf("\nquenching to 300 K ...\n");
  driver.ramp_temperature(300.0, 2 * stage_steps);
  driver.run(stage_steps);
  analysis::RdfAccumulator rdf_quench(5.4, 54);
  driver.run(stage_steps, [&](const md::MdDriver& d, long step) {
    if (step % 25 == 0) rdf_quench.add_frame(d.system());
  });
  report_rdf("quenched 300 K", rdf_quench);
  traj.add_frame(si, "quenched300K");

  std::printf("\ntrajectory written to si_melt_quench.xyz (%zu frames)\n",
              traj.frames_written());
  return 0;
}
