/// \file traj2xyz.cpp
/// \brief Convert a binary .tbt trajectory to (extended-)XYZ text.
///
/// Usage:  ./traj2xyz run.tbt run.xyz

#include <cstdio>

#include "src/io/binary_trajectory.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s trajectory.tbt output.xyz\n", argv[0]);
    return 2;
  }
  try {
    const std::size_t frames = tbmd::io::trajectory_to_xyz(argv[1], argv[2]);
    std::printf("wrote %zu frame(s) to %s\n", frames, argv[2]);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
