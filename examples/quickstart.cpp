/// \file quickstart.cpp
/// \brief Minimal tour of the tbmd public API:
///   1. build a structure,
///   2. compute a tight-binding energy and forces,
///   3. run a short NVT molecular-dynamics trajectory,
///   4. print a table of observables.
///
/// Run:  ./quickstart

#include <cstdio>
#include <iostream>
#include <memory>

#include "src/analysis/edos.hpp"
#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

int main() {
  using namespace tbmd;

  // 1. A 64-atom silicon diamond supercell (2x2x2 cubic cells).
  System system = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  std::printf("built %zu-atom silicon diamond cell, V = %.1f A^3\n",
              system.size(), system.cell().volume());

  // 2. One tight-binding energy/force evaluation.
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  const ForceResult first = calc.compute(system);
  std::printf("E = %.4f eV  (band %.4f, repulsive %.4f)  gap region mu = %.3f eV\n",
              first.energy, first.band_energy, first.repulsive_energy,
              first.fermi_level);
  const double gap = analysis::homo_lumo_gap(
      first.eigenvalues, system.total_valence_electrons());
  std::printf("HOMO-LUMO gap: %.3f eV\n", gap);

  // 3. 200 fs of canonical (NVT) dynamics at 300 K.
  md::maxwell_boltzmann_velocities(system, 300.0, /*seed=*/2024);
  md::MdOptions opt;
  opt.dt = 1.0;  // fs
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 50.0, 2);
  md::MdDriver driver(system, calc, std::move(opt));

  io::Table table({"time_fs", "T_K", "E_pot_eV", "conserved_eV"});
  driver.run(200, [&](const md::MdDriver& d, long step) {
    if (step % 40 == 0) {
      table.add_numeric_row({d.time_fs(), d.system().temperature(),
                             d.last_result().energy, d.conserved_quantity()});
    }
  });
  table.print(std::cout);

  // 4. Wall-clock breakdown of the calculator phases.
  std::printf("\nphase breakdown (s):\n");
  for (const auto& phase : calc.phase_timers().phases()) {
    std::printf("  %-12s %.3f\n", phase.c_str(),
                calc.phase_timers().seconds(phase));
  }
  return 0;
}
