/// \file si_vacancy_quench.cpp
/// \brief Lewis-Mousseau-style defect workload on the O(N) engine: a cold
/// Si crystal, a vacancy punched mid-run, then a fast heat/quench cycle --
/// while watching the purification pattern cache respond to topology churn.
///
/// Along an MD trajectory the bond topology is unchanged on most steps, so
/// the O(N) engine re-runs only the numeric SpMM phase on frozen symbolic
/// patterns.  Real defect workloads break that steady state in ways this
/// example exercises deliberately:
///   * the vacancy changes the atom count -> the BondTable topology stamp
///     bumps and the cache drops every entry (one symbolic rebuild);
///   * thermal motion makes second-shell distances cross the hopping
///     cutoff -- for GSP silicon the 2nd shell (3.84 A) brackets
///     r_cut = 3.8 A, so even modest temperatures keep flipping bonds and
///     the symbolic share climbs with T;
///   * the hot stage adds diffusive rebonding on top, the worst case.
/// The per-stage symbolic/numeric split printed below makes the cost of
/// each regime measurable.
///
/// Run: ./si_vacancy_quench [n_steps_per_stage]

#include <cstdio>
#include <cstdlib>

#include "src/analysis/rdf.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

/// Print the symbolic/numeric SpMM split accumulated since `before`.
void report_stage(const char* label, const tbmd::onx::OrderNCalculator& on,
                  tbmd::onx::BsrWorkspace::SpmmStats& before) {
  const auto& now = on.spmm_stats();
  const std::size_t symbolic = now.symbolic_builds - before.symbolic_builds;
  const std::size_t numeric = now.numeric_reuses - before.numeric_reuses;
  const double total = static_cast<double>(symbolic + numeric);
  std::printf("  %-28s  symbolic %6zu   numeric %6zu   (%.1f%% reused)\n",
              label, symbolic, numeric,
              total > 0.0 ? 100.0 * numeric / total : 0.0);
  before = now;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbmd;
  const long stage_steps = argc > 1 ? std::atol(argv[1]) : 150;

  System si = structures::diamond(Element::Si, 5.431, 2, 2, 2);

  onx::OrderNOptions oopt;
  oopt.purification.drop_tolerance = 1e-6;
  onx::OrderNCalculator on(tb::gsp_silicon(), oopt);
  onx::BsrWorkspace::SpmmStats mark;

  std::printf("Si vacancy + quench on the O(N) engine (%zu atoms)\n\n",
              si.size());

  // Stage 1: cold crystal (no velocities) -- the frozen-topology steady
  // state: one symbolic build on the first step, numeric-only after.
  {
    md::MdDriver driver(si, on, {1.5});
    driver.run(stage_steps);
    report_stage("crystal 0 K", on, mark);
  }

  // Stage 2: punch a vacancy.  The atom count changes, so the BondTable
  // topology stamp bumps and the next step pays a symbolic rebuild; the
  // relaxing neighbors then perturb second-shell bonds around the defect.
  const std::uint64_t stamp_before = on.topology_version();
  si = structures::with_vacancy(si, si.size() / 2);
  {
    md::MdDriver driver(si, on, {1.5});
    driver.run(stage_steps);
    report_stage("vacancy (relaxing)", on, mark);
  }
  std::printf("  topology stamp %llu -> %llu across the vacancy\n\n",
              static_cast<unsigned long long>(stamp_before),
              static_cast<unsigned long long>(on.topology_version()));

  // Stage 3: heat to 2500 K -- thermal cutoff-crossing plus diffusive
  // rebonding; nearly every step pays the symbolic phase.
  {
    md::MdOptions opt;
    opt.dt = 1.0;
    opt.thermostat =
        md::ThermostatSpec::nose_hoover(2500.0, 40.0, 2);
    md::MdDriver driver(si, on, std::move(opt));
    driver.ramp_temperature(2500.0, stage_steps);
    driver.run(stage_steps);
    report_stage("hot 2500 K (diffusive)", on, mark);
  }

  // Stage 4: quench back to 300 K.  The network refreezes, but for Si the
  // 2nd-shell/cutoff bracketing keeps a residual flip rate even at 300 K --
  // the quenched stage lands between the frozen and diffusive extremes.
  analysis::RdfAccumulator rdf(5.4, 54);
  {
    md::MdOptions opt;
    opt.dt = 1.0;
    opt.thermostat =
        md::ThermostatSpec::nose_hoover(300.0, 40.0, 2);
    md::MdDriver driver(si, on, std::move(opt));
    driver.ramp_temperature(300.0, 2 * stage_steps);
    driver.run(stage_steps, [&](const md::MdDriver& d, long step) {
      if (step % 25 == 0) rdf.add_frame(d.system());
    });
    report_stage("quenched 300 K (amorphous)", on, mark);
  }

  const auto r = rdf.r_values();
  const auto g = rdf.g_of_r();
  std::printf("\n g(r) of the quenched defective network\n  r_A    g\n");
  for (std::size_t b = 0; b < r.size(); b += 6) {
    std::printf("  %.2f   %.2f\n", r[b], g[b]);
  }
  std::printf("\nlast purification: %d iterations, fill %.3f, %s\n",
              on.last_purification().iterations,
              on.last_purification().fill_fraction,
              on.last_purification().converged ? "converged" : "NOT converged");
  return 0;
}
