/// \file graphene_electronic_structure.cpp
/// \brief Static electronic-structure analysis with the TB engine: compare
/// the eigenvalue spectrum, density of states and HOMO-LUMO gap of
/// graphene, diamond and a C60 molecule.
///
/// Run: ./graphene_electronic_structure

#include <cstdio>
#include <iostream>

#include "src/analysis/edos.hpp"
#include "src/io/table.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

void analyze(const char* label, const tbmd::System& system,
             tbmd::io::Table& table) {
  using namespace tbmd;
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  const ForceResult r = calc.compute(system);
  const int ne = system.total_valence_electrons();
  const double gap = analysis::homo_lumo_gap(r.eigenvalues, ne);
  table.add_row({label, std::to_string(system.size()),
                 std::to_string(r.eigenvalues.front()),
                 std::to_string(r.eigenvalues.back()),
                 std::to_string(r.fermi_level), std::to_string(gap)});

  // Coarse DOS printout around the Fermi level.
  const analysis::ElectronicDos dos =
      analysis::electronic_dos(r.eigenvalues, 0.25, 120);
  std::printf("\n%s: DOS around E_F = %.2f eV\n", label, r.fermi_level);
  for (std::size_t q = 0; q < dos.energies.size(); q += 8) {
    if (std::fabs(dos.energies[q] - r.fermi_level) < 6.0) {
      const int stars = static_cast<int>(dos.dos[q] * 2.0);
      std::printf("  %+6.2f eV | %s\n", dos.energies[q] - r.fermi_level,
                  std::string(std::min(stars, 60), '*').c_str());
    }
  }
}

}  // namespace

int main() {
  using namespace tbmd;
  io::Table table({"structure", "atoms", "E_min_eV", "E_max_eV", "mu_eV",
                   "gap_eV"});

  analyze("graphene", structures::graphene(Element::C, 1.42, 3, 3), table);
  analyze("diamond", structures::diamond(Element::C, 3.567, 2, 2, 2), table);
  analyze("c60", structures::c60(), table);

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nExpected physics: diamond insulating (gap >~ 2 eV in this"
              " finite sampling),\ngraphene nearly gapless, C60 a molecular"
              " gap of ~1.5-2 eV.\n");
  return 0;
}
