// Tests for the multi-species (variable-block) Slater-Koster evaluator:
// textbook spd structure on-axis, Hermiticity across bond orderings for
// mixed 1x4 and 4x9 pairs, agreement of the generic sp path with the
// legacy unrolled kernel, and finite-difference derivative checks.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/tb/radial.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/util/random.hpp"

namespace tbmd::tb {
namespace {

Vec3 random_unit(Rng& rng) {
  Vec3 v;
  do {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
  } while (norm2_sq(v) < 1e-3);
  return normalized(v);
}

RadialScaling test_scaling() {
  RadialScaling sc;
  sc.r0 = 2.0;
  sc.n = 2.0;
  sc.nc = 6.0;
  sc.rc = 3.0;
  sc.r_taper = 3.2;
  sc.r_cut = 3.6;
  return sc;
}

/// A two-species model: A is s-only, B is sp, C is spd; every integral slot
/// the pair can carry is populated with a distinct value so no symmetry
/// comes for free.
TbModel toy_multi_model() {
  TbModel m;
  m.name = "toy-multi";
  m.repulsion_kind = RepulsionKind::kPairSum;
  SpeciesParams a{Element::H, 1, -3.0, 0.0, 0.0};
  SpeciesParams b{Element::C, 4, -2.5, 3.5, 0.0};
  SpeciesParams c{Element::Au, 9, -4.5, 1.3, -7.5};
  m.set_species({a, b, c});

  PairParams ab;
  ab.integrals.sss = -1.1;
  ab.integrals.sps = 1.6;  // A's s with B's p
  ab.hopping = test_scaling();
  ab.phi0 = 1.0;
  ab.repulsive = test_scaling();
  m.set_pair(0, 1, ab);

  PairParams bc;
  bc.integrals.sss = -0.9;
  bc.integrals.sps = 1.2;
  bc.integrals.pss = -1.4;
  bc.integrals.pps = 2.1;
  bc.integrals.ppp = -0.5;
  bc.integrals.sds = -0.8;
  bc.integrals.pds = -1.0;
  bc.integrals.pdp = 0.4;
  bc.hopping = test_scaling();
  bc.phi0 = 1.0;
  bc.repulsive = test_scaling();
  m.set_pair(1, 2, bc);

  PairParams cc;
  cc.integrals.sss = -0.7;
  cc.integrals.sps = 1.1;
  cc.integrals.pps = 1.9;
  cc.integrals.ppp = -0.3;
  cc.integrals.sds = -0.6;
  cc.integrals.pds = -0.9;
  cc.integrals.pdp = 0.3;
  cc.integrals.dds = -0.55;
  cc.integrals.ddp = 0.35;
  cc.integrals.ddd = -0.08;
  cc.hopping = test_scaling();
  cc.phi0 = 1.0;
  cc.repulsive = test_scaling();
  m.set_pair(2, 2, cc);

  PairParams aa = ab;
  aa.integrals = {};
  aa.integrals.sss = -1.3;
  m.set_pair(0, 0, aa);
  PairParams bb = ab;
  bb.integrals = {};
  bb.integrals.sss = -1.0;
  bb.integrals.sps = 1.5;
  bb.integrals.pps = 2.0;
  bb.integrals.ppp = -0.4;
  m.set_pair(1, 1, bb);
  PairParams ac = ab;
  ac.integrals = {};
  ac.integrals.sss = -0.8;
  ac.integrals.sds = -0.5;
  m.set_pair(0, 2, ac);
  return m;
}

TEST(SkPairBlock, SpdBondAlongZHasTextbookStructure) {
  const TbModel m = toy_multi_model();
  const PairParams& cc = m.pair(2, 2);
  const double r = cc.hopping.r0;  // scaling = 1 there
  std::vector<double> h(81);
  sk_pair_block_into(cc, 9, 9, {0, 0, r}, r, h.data(), nullptr);
  const auto at = [&](int a, int b) { return h[9 * a + b]; };
  const SkIntegrals& v = cc.integrals;

  // Orbital order: [s, px, py, pz, dxy, dyz, dzx, dx2y2, dz2].
  EXPECT_NEAR(at(0, 0), v.sss, 1e-12);
  EXPECT_NEAR(at(0, 3), v.sps, 1e-12);
  EXPECT_NEAR(at(3, 0), -v.sps, 1e-12);  // homonuclear: pss tied to sps
  EXPECT_NEAR(at(3, 3), v.pps, 1e-12);
  EXPECT_NEAR(at(1, 1), v.ppp, 1e-12);
  // s-d: only dz2 couples along the axis.
  EXPECT_NEAR(at(0, 8), v.sds, 1e-12);
  EXPECT_NEAR(at(8, 0), v.sds, 1e-12);  // even parity
  EXPECT_NEAR(at(0, 4), 0.0, 1e-12);
  EXPECT_NEAR(at(0, 7), 0.0, 1e-12);
  // p-d: pz-dz2 is pure sigma, px-dzx pure pi; reversal flips the sign.
  EXPECT_NEAR(at(3, 8), v.pds, 1e-12);
  EXPECT_NEAR(at(8, 3), -v.pds, 1e-12);
  EXPECT_NEAR(at(1, 6), v.pdp, 1e-12);
  EXPECT_NEAR(at(6, 1), -v.pdp, 1e-12);
  // d-d: dz2 sigma, {dyz, dzx} pi, {dxy, dx2y2} delta.
  EXPECT_NEAR(at(8, 8), v.dds, 1e-12);
  EXPECT_NEAR(at(5, 5), v.ddp, 1e-12);
  EXPECT_NEAR(at(6, 6), v.ddp, 1e-12);
  EXPECT_NEAR(at(4, 4), v.ddd, 1e-12);
  EXPECT_NEAR(at(7, 7), v.ddd, 1e-12);
  // No off-diagonal d-d coupling on-axis.
  EXPECT_NEAR(at(4, 8), 0.0, 1e-12);
  EXPECT_NEAR(at(5, 6), 0.0, 1e-12);
}

TEST(SkPairBlock, HeteronuclearReversedBondIsTranspose) {
  // A-B hopping block for bond d must equal the transpose of the B-A block
  // for bond -d, for every mixed pair (1x4, 4x9, 1x9) and the homonuclear
  // spd pair.
  const TbModel m = toy_multi_model();
  const int dims[3] = {1, 4, 9};
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 d = random_unit(rng) * rng.uniform(1.2, 3.4);
    const double r = norm(d);
    for (int si = 0; si < 3; ++si) {
      for (int sj = 0; sj < 3; ++sj) {
        const int bi = dims[si];
        const int bj = dims[sj];
        std::vector<double> fwd(static_cast<std::size_t>(bi * bj));
        std::vector<double> rev(static_cast<std::size_t>(bj * bi));
        sk_pair_block_into(m.pair(si, sj), bi, bj, d, r, fwd.data(), nullptr);
        sk_pair_block_into(m.pair(sj, si), bj, bi, -d, r, rev.data(), nullptr);
        for (int a = 0; a < bi; ++a) {
          for (int b = 0; b < bj; ++b) {
            EXPECT_NEAR(fwd[bj * a + b], rev[bi * b + a], 1e-12)
                << "pair (" << si << "," << sj << ") entry (" << a << "," << b
                << ")";
          }
        }
      }
    }
  }
}

TEST(SkPairBlock, GenericSpPathMatchesLegacyKernel) {
  // A homonuclear sp pair evaluated through the multi-species table must
  // reproduce the legacy unrolled sp kernel exactly (same formulas).
  TbModel legacy = xwch_carbon();
  TbModel multi;
  multi.repulsion_kind = RepulsionKind::kPairSum;
  SpeciesParams c{Element::C, 4, legacy.e_s, legacy.e_p, 0.0};
  multi.set_species({c});
  PairParams p;
  p.integrals.sss = legacy.bonds.sss;
  p.integrals.sps = legacy.bonds.sps;
  p.integrals.pps = legacy.bonds.pps;
  p.integrals.ppp = legacy.bonds.ppp;
  p.hopping = legacy.hopping;
  p.phi0 = 1.0;
  p.repulsive = legacy.repulsive;
  multi.set_pair(0, 0, p);

  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 d = random_unit(rng) * rng.uniform(1.1, 2.5);
    const double r = norm(d);
    double h_legacy[16], d_legacy[48], h_multi[16], d_multi[48];
    sk_block_into(legacy, d, r, h_legacy, d_legacy);
    sk_pair_block_into(multi.pair(0, 0), 4, 4, d, r, h_multi, d_multi);
    for (int q = 0; q < 16; ++q) {
      EXPECT_NEAR(h_multi[q], h_legacy[q], 1e-13);
    }
    for (int q = 0; q < 48; ++q) {
      EXPECT_NEAR(d_multi[q], d_legacy[q], 1e-13);
    }
  }
}

TEST(SkPairBlock, DerivativesMatchFiniteDifferences) {
  const TbModel m = toy_multi_model();
  const int dims[3] = {1, 4, 9};
  Rng rng(29);
  const double eps = 1e-6;
  for (int trial = 0; trial < 6; ++trial) {
    const Vec3 d0 = random_unit(rng) * rng.uniform(1.4, 3.2);
    for (int si = 0; si < 3; ++si) {
      for (int sj = 0; sj < 3; ++sj) {
        const int bi = dims[si];
        const int bj = dims[sj];
        const std::size_t sz = static_cast<std::size_t>(bi * bj);
        const PairParams& pp = m.pair(si, sj);
        std::vector<double> h(sz), der(3 * sz), hp(sz), hm(sz);
        sk_pair_block_into(pp, bi, bj, d0, norm(d0), h.data(), der.data());
        for (int g = 0; g < 3; ++g) {
          Vec3 dp = d0, dm = d0;
          (g == 0 ? dp.x : g == 1 ? dp.y : dp.z) += eps;
          (g == 0 ? dm.x : g == 1 ? dm.y : dm.z) -= eps;
          sk_pair_block_into(pp, bi, bj, dp, norm(dp), hp.data(), nullptr);
          sk_pair_block_into(pp, bi, bj, dm, norm(dm), hm.data(), nullptr);
          for (std::size_t q = 0; q < sz; ++q) {
            const double fd = (hp[q] - hm[q]) / (2.0 * eps);
            EXPECT_NEAR(der[sz * g + q], fd, 2e-6)
                << "pair (" << si << "," << sj << ") gamma " << g << " entry "
                << q;
          }
        }
      }
    }
  }
}

TEST(SkPairBlock, ZeroBeyondCutoff) {
  const TbModel m = toy_multi_model();
  const PairParams& cc = m.pair(2, 2);
  std::vector<double> h(81, 1.0), d(243, 1.0);
  const Vec3 far = {0.0, 0.0, cc.hopping.r_cut + 0.1};
  sk_pair_block_into(cc, 9, 9, far, norm(far), h.data(), d.data());
  for (const double x : h) EXPECT_EQ(x, 0.0);
  for (const double x : d) EXPECT_EQ(x, 0.0);
}

}  // namespace
}  // namespace tbmd::tb
