// Tests for the O(N) layer: CSR sparse algebra, sparse Hamiltonian
// assembly, Palser-Manolopoulos purification vs exact diagonalization, and
// the OrderNCalculator against TightBindingCalculator.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/linalg/blas.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/purification.hpp"
#include "src/onx/sparse.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/random.hpp"

namespace tbmd::onx {
namespace {

linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed,
                                double sparsity = 0.7) {
  Rng rng(seed);
  linalg::Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (rng.uniform() > sparsity || i == j) {
        const double v = rng.uniform(-1, 1);
        m(i, j) = v;
        m(j, i) = v;
      }
    }
  }
  return m;
}

TEST(Sparse, DenseRoundTrip) {
  const linalg::Matrix a = random_symmetric(20, 3);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  EXPECT_LT(linalg::max_abs(s.to_dense() - a), 1e-15);
}

TEST(Sparse, DropToleranceRemovesSmallEntries) {
  linalg::Matrix a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 1e-9;
  a(2, 2) = -2.0;
  const SparseMatrix s = SparseMatrix::from_dense(a, 1e-6);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.get(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.get(2, 2), -2.0);
}

TEST(Sparse, FromDenseNeverStoresExplicitZeros) {
  // Regression: from_dense(a, 0.0) must keep exactly the nonzero pattern
  // of `a` -- structurally-zero dense entries (including -0.0) must not
  // become explicit CSR zeros.
  linalg::Matrix a(4, 4, 0.0);
  a(0, 0) = 1.0;
  a(1, 2) = a(2, 1) = -3.5;
  a(3, 3) = -0.0;  // negative zero is still an exact zero
  const SparseMatrix s = SparseMatrix::from_dense(a, 0.0);
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_DOUBLE_EQ(s.get(3, 3), 0.0);
}

TEST(Sparse, CombineAndMultiplyDropExactZeroDiagonals) {
  // Diagonal entries survive *truncation* (so traces stay exact), but an
  // entry that is exactly zero must not be stored: combining A with -A
  // yields an empty matrix, not an explicit-zero diagonal.
  const linalg::Matrix a = random_symmetric(8, 21);
  const SparseMatrix sa = SparseMatrix::from_dense(a);
  const SparseMatrix diff = sa.combine(1.0, sa, -1.0);
  EXPECT_EQ(diff.nnz(), 0u);
  // Multiplying by a zero matrix likewise stores nothing.
  const SparseMatrix zero(8);
  EXPECT_EQ(sa.multiply(zero).nnz(), 0u);
}

TEST(Sparse, IdentityAndTrace) {
  const SparseMatrix eye = SparseMatrix::identity(5);
  EXPECT_EQ(eye.nnz(), 5u);
  EXPECT_DOUBLE_EQ(eye.trace(), 5.0);
  EXPECT_DOUBLE_EQ(eye.get(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(eye.get(3, 4), 0.0);
}

TEST(Sparse, CombineMatchesDense) {
  const linalg::Matrix a = random_symmetric(15, 5);
  const linalg::Matrix b = random_symmetric(15, 6);
  const SparseMatrix sa = SparseMatrix::from_dense(a);
  const SparseMatrix sb = SparseMatrix::from_dense(b);
  const SparseMatrix sc = sa.combine(2.0, sb, -0.5);
  const linalg::Matrix expect = a * 2.0 + b * (-0.5);
  EXPECT_LT(linalg::max_abs(sc.to_dense() - expect), 1e-13);
}

class SparseMultiply : public ::testing::TestWithParam<int> {};

TEST_P(SparseMultiply, MatchesDenseProduct) {
  const int n = GetParam();
  const linalg::Matrix a = random_symmetric(n, 100 + n);
  const linalg::Matrix b = random_symmetric(n, 200 + n);
  const SparseMatrix sa = SparseMatrix::from_dense(a);
  const SparseMatrix sb = SparseMatrix::from_dense(b);
  const SparseMatrix sc = sa.multiply(sb);
  EXPECT_LT(linalg::max_abs(sc.to_dense() - linalg::matmul(a, b)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseMultiply,
                         ::testing::Values(1, 4, 17, 48, 90));

TEST(Sparse, TraceOfProductMatchesDense) {
  const linalg::Matrix a = random_symmetric(25, 7);
  const linalg::Matrix b = random_symmetric(25, 8);
  const SparseMatrix sa = SparseMatrix::from_dense(a);
  const SparseMatrix sb = SparseMatrix::from_dense(b);
  EXPECT_NEAR(sa.trace_of_product(sb), linalg::trace_of_product(a, b), 1e-11);
}

TEST(Sparse, GershgorinBoundsContainSpectrum) {
  const linalg::Matrix a = random_symmetric(30, 9);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  const auto [lo, hi] = s.gershgorin_bounds();
  const auto vals = linalg::eigvalsh(a);
  EXPECT_GE(vals.front(), lo - 1e-12);
  EXPECT_LE(vals.back(), hi + 1e-12);
}

TEST(Sparse, FromRowsValidatesColumns) {
  std::vector<std::vector<std::pair<std::size_t, double>>> rows(2);
  rows[0] = {{0, 1.0}, {5, 2.0}};  // column 5 out of range for n = 2
  EXPECT_THROW((void)SparseMatrix::from_rows(2, rows), Error);
}

// --- sparse Hamiltonian --------------------------------------------------

TEST(SparseHamiltonian, MatchesDenseAssembly) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.05, 77);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const linalg::Matrix dense = tb::build_hamiltonian(m, s, list);
  const SparseMatrix sparse = build_sparse_hamiltonian(m, s, list);
  EXPECT_LT(linalg::max_abs(sparse.to_dense() - dense), 1e-13);
  EXPECT_LT(sparse.fill_fraction(), 0.5);  // genuinely sparse
}

// --- purification --------------------------------------------------------

TEST(Purification, MatchesExactDensityMatrixOnGappedSystem) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const SparseMatrix hs = SparseMatrix::from_dense(hd);

  const int nocc = s.total_valence_electrons() / 2;
  PurificationOptions opt;
  opt.drop_tolerance = 0.0;  // exact arithmetic
  const PurificationResult pm = palser_manolopoulos(hs, nocc, opt);
  ASSERT_TRUE(pm.converged);

  // Compare against rho/2 from diagonalization.
  const auto eig = linalg::eigh(hd);
  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  const auto rho = tb::density_matrix(eig.vectors, occ.weights);
  EXPECT_LT(linalg::max_abs(pm.density.to_dense() - rho * 0.5), 1e-6);
  EXPECT_NEAR(pm.band_energy, occ.band_energy, 1e-6);
}

TEST(Purification, TraceConservedThroughoutIteration) {
  const tb::TbModel m = tb::gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const SparseMatrix h = build_sparse_hamiltonian(m, s, list);
  const int nocc = s.total_valence_electrons() / 2;
  const PurificationResult pm = palser_manolopoulos(h, nocc, {});
  EXPECT_TRUE(pm.converged);
  EXPECT_NEAR(pm.density.trace(), static_cast<double>(nocc), 1e-6);
}

TEST(Purification, IdempotentResult) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const SparseMatrix h = build_sparse_hamiltonian(m, s, list);
  const PurificationResult pm =
      palser_manolopoulos(h, s.total_valence_electrons() / 2, {});
  ASSERT_TRUE(pm.converged);
  const BlockSparseMatrix p2 = pm.density.multiply(pm.density);
  EXPECT_NEAR(std::fabs(pm.density.trace() - p2.trace()), 0.0, 1e-5);
}

class PurificationTruncation : public ::testing::TestWithParam<double> {};

TEST_P(PurificationTruncation, EnergyErrorBoundedByTolerance) {
  const double drop = GetParam();
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);

  const auto eig = linalg::eigvalsh(hd);
  const auto occ = tb::occupy(eig, s.total_valence_electrons(), 0.0);

  PurificationOptions opt;
  opt.drop_tolerance = drop;
  const PurificationResult pm = palser_manolopoulos(
      SparseMatrix::from_dense(hd), s.total_valence_electrons() / 2, opt);
  ASSERT_TRUE(pm.converged) << "drop = " << drop;
  // Energy error per atom grows with truncation but stays controlled.
  const double err = std::fabs(pm.band_energy - occ.band_energy) /
                     static_cast<double>(s.size());
  EXPECT_LT(err, 1e4 * drop + 1e-7) << "drop = " << drop;
}

INSTANTIATE_TEST_SUITE_P(DropTolerances, PurificationTruncation,
                         ::testing::Values(0.0, 1e-8, 1e-6));

TEST(Purification, HandlesTrivialCases) {
  const SparseMatrix h = SparseMatrix::identity(4);
  const PurificationResult none = palser_manolopoulos(h, 0, {});
  EXPECT_TRUE(none.converged);
  EXPECT_DOUBLE_EQ(none.band_energy, 0.0);
  EXPECT_THROW((void)palser_manolopoulos(h, 5, {}), Error);
}

// --- OrderNCalculator ----------------------------------------------------

TEST(OrderNCalculator, MatchesExactEnergyAndForces) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.04, 91);

  tb::TightBindingCalculator exact(m);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-8;
  OrderNCalculator fast(m, opt);

  const ForceResult re = exact.compute(s);
  const ForceResult rf = fast.compute(s);
  EXPECT_TRUE(fast.last_purification().converged);
  EXPECT_NEAR(re.energy, rf.energy, 1e-4 * s.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst = std::max(worst, norm(re.forces[i] - rf.forces[i]));
  }
  EXPECT_LT(worst, 5e-3);
}

TEST(OrderNCalculator, DensityMatrixFillFractionDecreasesWithSize) {
  // Nearsightedness: with truncation, the fill *fraction* of the density
  // matrix decreases as the system grows (the retained bandwidth is set by
  // the physical decay length, not by N).  The blocked engine truncates at
  // whole-tile granularity, so the fraction only starts falling once atom
  // pairs (not just individual orbital pairs) leave the decay range: the
  // 2- and 3-cell boxes are still block-dense, the 4-cell box is not.
  const tb::TbModel m = tb::xwch_carbon();
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-4;

  auto fill_of = [&](int nx) {
    OrderNCalculator calc(m, opt);
    System s = structures::diamond(Element::C, 3.567, nx, nx, nx);
    (void)calc.compute(s);
    const auto& p = calc.last_purification();
    EXPECT_TRUE(p.converged) << "cells " << nx;
    return p.fill_fraction;
  };

  const double fill_small = fill_of(3);  // 864 orbitals (block-dense)
  const double fill_big = fill_of(4);    // 2048 orbitals
  EXPECT_LT(fill_big, 0.85 * fill_small);
}

TEST(OrderNCalculator, WarmStepsPerformZeroSymbolicWork) {
  // With an unchanged bond topology every SpMM of a repeated step must
  // validate against the cached pattern: only numeric_reuses may grow.
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.03, 17);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  OrderNCalculator calc(m, opt);

  (void)calc.compute(s);
  const auto cold = calc.spmm_stats();
  EXPECT_GT(cold.symbolic_builds, 0u);
  const std::uint64_t topo = calc.topology_version();

  (void)calc.compute(s);
  const auto warm = calc.spmm_stats();
  EXPECT_EQ(calc.topology_version(), topo);
  EXPECT_EQ(warm.symbolic_builds, cold.symbolic_builds);
  EXPECT_GT(warm.numeric_reuses, cold.numeric_reuses);
  // Steady state never materializes a full-pattern density matrix.
  EXPECT_TRUE(calc.last_purification().density.symmetric());
}

TEST(OrderNCalculator, TopologyChangeInvalidatesPatternCache) {
  // Moving an atom across the hopping cutoff mid-trajectory changes the
  // Hamiltonian pattern: the bond-table stamp must bump and the next step
  // must rebuild its symbolic patterns instead of reusing stale ones.
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  OrderNCalculator calc(m, opt);

  (void)calc.compute(s);
  (void)calc.compute(s);  // warm the cache
  const auto warm = calc.spmm_stats();
  const std::uint64_t topo = calc.topology_version();
  const ForceResult before = calc.compute(s);

  System moved = s;
  moved.positions()[3] += Vec3{0.9, 0.7, 0.5};  // crosses the cutoff shell
  const ForceResult after = calc.compute(moved);
  EXPECT_NE(calc.topology_version(), topo);
  const auto rebuilt = calc.spmm_stats();
  EXPECT_GT(rebuilt.symbolic_builds, warm.symbolic_builds);
  // The move genuinely changed the electronic structure.
  EXPECT_NE(before.energy, after.energy);
  EXPECT_TRUE(calc.last_purification().converged);
}

TEST(OrderNCalculator, ColdAndWarmPatternNveSlicesAreBitIdentical) {
  // The warm path must not change physics at all: an NVE slice computed
  // with cross-step pattern reuse produces bit-identical energies to one
  // that rebuilds every pattern from scratch each step (the numeric sweep
  // is shared, so this is an equality, not a tolerance).
  const tb::TbModel m = tb::xwch_carbon();
  const long steps = 4;

  auto trajectory = [&](bool reuse) {
    System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
    structures::perturb(s, 0.02, 23);
    md::maxwell_boltzmann_velocities(s, 300.0, 5);
    OrderNOptions opt;
    opt.purification.drop_tolerance = 1e-6;
    opt.reuse_patterns = reuse;
    OrderNCalculator calc(m, opt);
    md::MdDriver driver(s, calc, {1.0});
    std::vector<double> energies;
    driver.run(steps, [&](const md::MdDriver& d, long) {
      energies.push_back(d.total_energy());
    });
    return energies;
  };

  const std::vector<double> warm = trajectory(true);
  const std::vector<double> cold = trajectory(false);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i], cold[i]) << "step " << i;
  }
}

TEST(OrderNCalculator, WorkspaceFootprintBoundedAfterAtomCountShrink) {
  // Regression: the BSR staging rows grew monotonically and were never
  // released, so one large system pinned the workspace at its high-water
  // mark forever.  After computing a smaller system the footprint must
  // drop back towards what a fresh small-system calculator uses.
  const tb::TbModel m = tb::xwch_carbon();
  OrderNOptions opt;
  // Loose tolerance: shrink behavior is tolerance-independent and the big
  // system stays cheap (the 2-cell box is the smallest admissible
  // periodic supercell, so "small" cannot go below 64 atoms).
  opt.purification.drop_tolerance = 1e-4;

  System big = structures::diamond(Element::C, 3.567, 3, 3, 3);    // 216
  System small = structures::diamond(Element::C, 3.567, 2, 2, 2);  // 64

  OrderNCalculator fresh(m, opt);
  (void)fresh.compute(small);
  const std::size_t fresh_small = fresh.workspace_footprint_bytes();

  OrderNCalculator calc(m, opt);
  (void)calc.compute(big);
  const std::size_t after_big = calc.workspace_footprint_bytes();
  (void)calc.compute(small);
  const std::size_t after_shrink = calc.workspace_footprint_bytes();

  EXPECT_LT(after_shrink, after_big / 2);
  EXPECT_LE(after_shrink, 4 * fresh_small);
  // And the shrunken workspace still produces correct physics.
  const ForceResult rs = calc.compute(small);
  const ForceResult rf = fresh.compute(small);
  EXPECT_DOUBLE_EQ(rs.energy, rf.energy);
}

TEST(OrderNCalculator, RejectsOddElectronCount) {
  const tb::TbModel m = tb::xwch_carbon();
  OrderNCalculator calc(m);
  System s = structures::dimer(Element::C, 1.4);
  s.set_species(1, Element::B);  // 4 + 3 = 7 electrons -- unsupported
  // Species check fires first for non-carbon, so expect an Error either way.
  EXPECT_THROW((void)calc.compute(s), Error);
}

}  // namespace
}  // namespace tbmd::onx
