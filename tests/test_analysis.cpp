// Tests for the analysis toolkit: RDF, MSD, VACF/VDOS, electronic DOS,
// coordination statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/analysis/bonds.hpp"
#include "src/analysis/edos.hpp"
#include "src/analysis/msd.hpp"
#include "src/analysis/rdf.hpp"
#include "src/analysis/vacf.hpp"
#include "src/structures/builders.hpp"
#include "src/util/error.hpp"

namespace tbmd::analysis {
namespace {

TEST(Rdf, PerfectCrystalPeaksAtShells) {
  const double a = 5.431;
  const System s = structures::diamond(Element::Si, a, 3, 3, 3);
  const auto gr = radial_distribution(s, 6.0, 300);

  const double shell1 = std::sqrt(3.0) / 4.0 * a;  // 2.3517
  const double shell2 = a / std::sqrt(2.0);        // 3.8403

  auto g_at = [&](double r) {
    std::size_t best = 0;
    for (std::size_t b = 0; b < gr.size(); ++b) {
      if (std::fabs(gr[b].first - r) < std::fabs(gr[best].first - r)) best = b;
    }
    return gr[best].second;
  };
  EXPECT_GT(g_at(shell1), 10.0);          // delta-like first shell
  EXPECT_GT(g_at(shell2), 5.0);           // second shell
  EXPECT_NEAR(g_at(0.5 * shell1), 0.0, 1e-12);  // nothing below
  EXPECT_NEAR(g_at(3.0), 0.0, 1e-12);     // gap between shells
}

TEST(Rdf, IdealGasIsFlatAroundUnity) {
  const System s = structures::random_gas(Element::Ar, 600, 0.01, 0.8, 3);
  RdfAccumulator acc(6.0, 30);
  acc.add_frame(s);
  const auto g = acc.g_of_r();
  // Beyond the (small) exclusion distance the gas is uncorrelated: g ~ 1.
  double mean = 0.0;
  int count = 0;
  for (std::size_t b = 10; b < 30; ++b) {
    mean += g[b];
    ++count;
  }
  mean /= count;
  EXPECT_NEAR(mean, 1.0, 0.25);
}

TEST(Rdf, MultipleFramesAverage) {
  RdfAccumulator acc(5.0, 50);
  const System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  acc.add_frame(s);
  acc.add_frame(s);
  EXPECT_EQ(acc.frames(), 2u);
  // Averaging identical frames must equal the single-frame result.
  RdfAccumulator one(5.0, 50);
  one.add_frame(s);
  const auto g2 = acc.g_of_r();
  const auto g1 = one.g_of_r();
  for (std::size_t b = 0; b < g1.size(); ++b) {
    EXPECT_NEAR(g1[b], g2[b], 1e-12);
  }
}

TEST(Rdf, RejectsBadArguments) {
  EXPECT_THROW(RdfAccumulator(0.0, 10), Error);
  EXPECT_THROW(RdfAccumulator(5.0, 0), Error);
}

TEST(Msd, BallisticMotionIsQuadraticInTime) {
  System s;
  s.add_atom(Element::Ar, {0, 0, 0}, {0.1, 0, 0});
  s.add_atom(Element::Ar, {5, 0, 0}, {0, 0.2, 0});
  MsdTracker tracker(s);
  // Advance positions manually by v * t with t = 10 fs.
  s.positions()[0] += Vec3{1.0, 0, 0};
  s.positions()[1] += Vec3{0, 2.0, 0};
  EXPECT_NEAR(tracker.msd(s), (1.0 + 4.0) / 2.0, 1e-12);
  tracker.rebase(s);
  EXPECT_NEAR(tracker.msd(s), 0.0, 1e-15);
}

TEST(Msd, ExcludesFrozenAtoms) {
  System s;
  s.add_atom(Element::Ar, {0, 0, 0});
  s.add_atom(Element::Ar, {5, 0, 0});
  s.set_frozen(1, true);
  MsdTracker tracker(s);
  s.positions()[0] += Vec3{2.0, 0, 0};
  s.positions()[1] += Vec3{9.0, 0, 0};  // frozen atom moved externally
  EXPECT_NEAR(tracker.msd(s), 4.0, 1e-12);
}

TEST(Vacf, PureCosineVelocityGivesSpectralPeakAtItsFrequency) {
  // Synthetic trajectory: v(t) = cos(2 pi f0 t) x-hat with f0 = 0.05 /fs.
  const double f0 = 0.05;
  const double dt = 1.0;
  System s;
  s.add_atom(Element::C, {0, 0, 0});
  VacfAccumulator acc(dt);
  for (int step = 0; step < 400; ++step) {
    const double t = step * dt;
    s.velocities()[0] = {std::cos(2.0 * std::numbers::pi * f0 * t), 0, 0};
    acc.add_frame(s);
  }
  const auto c = acc.correlation(200);
  EXPECT_NEAR(c[0], 1.0, 1e-12);  // normalized

  std::vector<double> freqs;
  for (int q = 1; q <= 100; ++q) freqs.push_back(0.001 * q);
  const auto spec = acc.spectrum(freqs, 200);
  const std::size_t peak =
      std::max_element(spec.begin(), spec.end()) - spec.begin();
  EXPECT_NEAR(freqs[peak], f0, 0.003);
}

TEST(Vacf, RequiresAtLeastTwoFrames) {
  VacfAccumulator acc(1.0);
  System s;
  s.add_atom(Element::C, {0, 0, 0});
  acc.add_frame(s);
  EXPECT_THROW((void)acc.correlation(10), Error);
}

TEST(Edos, GaussianBroadeningIntegratesToStateCount) {
  const std::vector<double> eps{-2.0, -1.0, 0.0, 1.0};
  const ElectronicDos dos = electronic_dos(eps, 0.1, 2000);
  // Trapezoid integral of the DOS = 2 * (number of states)  (spin factor).
  double integral = 0.0;
  for (std::size_t q = 1; q < dos.energies.size(); ++q) {
    integral += 0.5 * (dos.dos[q] + dos.dos[q - 1]) *
                (dos.energies[q] - dos.energies[q - 1]);
  }
  EXPECT_NEAR(integral, 8.0, 0.05);
}

TEST(Edos, PeaksAtEigenvalues) {
  const std::vector<double> eps{-1.0, 1.0};
  const ElectronicDos dos = electronic_dos(eps, 0.05, 1000);
  const std::size_t imax =
      std::max_element(dos.dos.begin(), dos.dos.end()) - dos.dos.begin();
  const double epeak = dos.energies[imax];
  EXPECT_TRUE(std::fabs(epeak + 1.0) < 0.05 || std::fabs(epeak - 1.0) < 0.05);
}

TEST(Edos, HomoLumoGap) {
  const std::vector<double> eps{-2.0, -1.0, 1.5, 3.0};
  EXPECT_DOUBLE_EQ(homo_lumo_gap(eps, 4), 2.5);   // HOMO=-1, LUMO=1.5
  EXPECT_DOUBLE_EQ(homo_lumo_gap(eps, 2), 1.0);   // HOMO=-2, LUMO=-1
  EXPECT_DOUBLE_EQ(homo_lumo_gap(eps, 8), 0.0);   // full
  EXPECT_DOUBLE_EQ(homo_lumo_gap(eps, 3), 2.5);   // odd counts round up
  EXPECT_DOUBLE_EQ(homo_lumo_gap(eps, 0), 0.0);
}

TEST(Edos, RejectsBadArguments) {
  EXPECT_THROW((void)electronic_dos({}, 0.1, 100), Error);
  EXPECT_THROW((void)electronic_dos({1.0}, 0.0, 100), Error);
}

TEST(Bonds, DiamondCoordinationHistogram) {
  const System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  const auto hist = coordination_histogram(s, 1.7);
  EXPECT_EQ(hist[4], s.size());
  for (std::size_t c = 0; c < hist.size(); ++c) {
    if (c != 4) {
      EXPECT_EQ(hist[c], 0u) << "coordination " << c;
    }
  }
}

TEST(Bonds, CountsAndMeanLength) {
  const System s = structures::graphene(Element::C, 1.42, 2, 2);
  // 3 bonds per atom, each shared: 3N/2.
  EXPECT_EQ(bond_count(s, 1.6), s.size() * 3 / 2);
  EXPECT_NEAR(mean_bond_length(s, 1.6), 1.42, 1e-10);
}

TEST(Bonds, IsolatedAtomsHaveNoBonds) {
  const System s = structures::chain(Element::C, 4, 10.0);
  EXPECT_EQ(bond_count(s, 2.0), 0u);
  EXPECT_DOUBLE_EQ(mean_bond_length(s, 2.0), 0.0);
}

}  // namespace
}  // namespace tbmd::analysis
