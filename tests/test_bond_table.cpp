// Tests for the per-step BondTable subsystem: batched Slater-Koster
// blocks/derivatives and repulsive pair values must match the direct
// per-bond evaluation exactly (including at and beyond the cutoffs), every
// consumer contracting from the table must reproduce a from-scratch
// reference, and the assembled bond-table pipeline must stay consistent
// with finite-difference forces and the strain-derivative virial at both
// zero and finite electronic temperature.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/linalg/eigen_sym.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/forces.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/repulsive.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/tb/tb_calculator.hpp"

namespace tbmd::tb {
namespace {

struct GasSetup {
  System system;
  NeighborList list;
};

/// Random disordered gas built out to cutoff + a fat skin, so the list (and
/// thus the table) contains bonds beyond the hopping and repulsive cutoffs.
GasSetup random_setup(const TbModel& m, std::size_t n, std::uint64_t seed) {
  GasSetup s{structures::random_gas(m.element, n, 0.025, 1.3, seed), {}};
  s.list.build(s.system.positions(), s.system.cell(), {m.cutoff(), 0.8});
  return s;
}

TEST(BondTable, BlocksAndDerivativesMatchDirectEvaluation) {
  for (const TbModel& m : {xwch_carbon(), gsp_silicon()}) {
    GasSetup s = random_setup(m, 40, 7 + static_cast<std::uint64_t>(m.element));
    BondTable table;
    table.build(m, s.system, s.list, BondTable::Mode::kBlocksAndDerivatives);
    ASSERT_EQ(table.size(), s.list.half_pairs().size());
    ASSERT_TRUE(table.has_derivatives());

    std::size_t beyond_cutoff = 0;
    const auto& pos = s.system.positions();
    for (std::size_t p = 0; p < table.size(); ++p) {
      const NeighborPair& pr = s.list.half_pairs()[p];
      EXPECT_EQ(table.i(p), pr.i);
      EXPECT_EQ(table.j(p), pr.j);
      const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
      EXPECT_DOUBLE_EQ(table.length(p), norm(bond));

      SkBlock block;
      SkBlockDerivative deriv;
      sk_block_with_derivative(m, bond, block, deriv);
      const double* h = table.block(p);
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          EXPECT_DOUBLE_EQ(h[4 * a + b], block.h[a][b]);
          for (int g = 0; g < 3; ++g) {
            EXPECT_DOUBLE_EQ(table.derivative(p, g)[4 * a + b],
                             deriv.d[g][a][b]);
          }
        }
      }
      if (table.hopping_zero(p)) {
        ++beyond_cutoff;
        EXPECT_GE(table.length(p), m.hopping.r_cut);
      }

      const RadialValue rep = evaluate_scaling(m.repulsive, norm(bond));
      EXPECT_DOUBLE_EQ(table.repulsive_value(p), m.phi0 * rep.value);
      EXPECT_DOUBLE_EQ(table.repulsive_derivative(p), m.phi0 * rep.derivative);
    }
    // The fat skin must actually have produced beyond-cutoff bonds, or this
    // test is not exercising the zero-block path.
    EXPECT_GT(beyond_cutoff, 0u);
  }
}

TEST(BondTable, ZeroBlockExactlyAtAndBeyondCutoff) {
  const TbModel m = xwch_carbon();
  for (const double r : {m.hopping.r_cut, m.hopping.r_cut + 0.25}) {
    System s = structures::dimer(m.element, r);
    NeighborList list;
    list.build(s.positions(), s.cell(), {m.cutoff() + 1.0, 0.3});
    BondTable table;
    table.build(m, s, list, BondTable::Mode::kBlocksAndDerivatives);
    ASSERT_EQ(table.size(), 1u);
    EXPECT_TRUE(table.hopping_zero(0));
    for (int e = 0; e < 16; ++e) {
      EXPECT_DOUBLE_EQ(table.block(0)[e], 0.0);
      for (int g = 0; g < 3; ++g) {
        EXPECT_DOUBLE_EQ(table.derivative(0, g)[e], 0.0);
      }
    }
  }
}

TEST(BondTable, AdjacencyCoversEveryBondTwiceSortedByNeighbor) {
  const TbModel m = gsp_silicon();
  GasSetup s = random_setup(m, 40, 23);
  BondTable table;
  table.build(m, s.system, s.list, BondTable::Mode::kBlocks);
  EXPECT_FALSE(table.has_derivatives());
  EXPECT_FALSE(table.has_repulsive());  // kBlocks: hopping radial only

  std::size_t entries = 0;
  std::vector<int> seen(table.size(), 0);
  for (std::size_t a = 0; a < table.atoms(); ++a) {
    std::size_t last = 0;
    for (const BondTable::AtomBond* ab = table.atom_begin(a);
         ab != table.atom_end(a); ++ab, ++entries) {
      EXPECT_GE(ab->neighbor, last);
      last = ab->neighbor;
      ++seen[ab->bond];
      const bool is_i = table.i(ab->bond) == a;
      const bool is_j = table.j(ab->bond) == a;
      EXPECT_TRUE(ab->transposed ? is_j : is_i);
      EXPECT_EQ(ab->neighbor, ab->transposed ? table.i(ab->bond)
                                             : table.j(ab->bond));
    }
  }
  EXPECT_EQ(entries, 2 * table.size());
  for (const int count : seen) EXPECT_EQ(count, 2);
}

TEST(BondTable, TopologyVersionTracksPatternChangesOnly) {
  // The stamp feeds the O(N) engine's SpMM pattern cache: it must stay
  // put across value-only rebuilds (atoms jiggle, bonds persist) and bump
  // for anything that can change the Hamiltonian pattern -- including a
  // bond crossing the hopping cutoff with the pair list unchanged.
  const TbModel m = xwch_carbon();
  System s = structures::dimer(m.element, 0.8 * m.hopping.r_cut);
  NeighborList list;
  const double skin = 0.6 * m.hopping.r_cut;  // pair survives the crossing
  list.build(s.positions(), s.cell(), {m.cutoff(), skin});

  BondTable table;
  EXPECT_EQ(table.topology_version(), 0u);  // only before the first build
  table.build(m, s, list, BondTable::Mode::kBlocks);
  const std::uint64_t v1 = table.topology_version();
  EXPECT_GT(v1, 0u);

  // Rebuild at identical positions: same topology, same stamp.
  table.build(m, s, list, BondTable::Mode::kBlocks);
  EXPECT_EQ(table.topology_version(), v1);

  // Stretch the bond (the dimer lies along z) but stay inside the hopping
  // cutoff: values change, topology does not.
  s.positions()[1].z = s.positions()[0].z + 0.9 * m.hopping.r_cut;
  table.build(m, s, list, BondTable::Mode::kBlocks);
  EXPECT_EQ(table.topology_version(), v1);
  ASSERT_FALSE(table.hopping_zero(0));

  // Push the bond just past the hopping cutoff WITHOUT rebuilding the
  // neighbor list (the pair persists inside cutoff + skin): the
  // hopping_zero flip alone must bump the stamp.
  s.positions()[1].z = s.positions()[0].z + 1.05 * m.hopping.r_cut;
  table.build(m, s, list, BondTable::Mode::kBlocks);
  ASSERT_TRUE(table.hopping_zero(0));
  const std::uint64_t v2 = table.topology_version();
  EXPECT_GT(v2, v1);

  // A different pair list (atom-count change) bumps it too.
  GasSetup gas = random_setup(m, 12, 3);
  table.build(m, gas.system, gas.list, BondTable::Mode::kBlocks);
  EXPECT_GT(table.topology_version(), v2);
}

TEST(BondTable, SkinReuseFreezesQuiescentBondsAndTracksMovers) {
  const TbModel m = xwch_carbon();
  GasSetup s = random_setup(m, 40, 57);
  const double skin = 0.1;

  BondTable table;
  table.build(m, s.system, s.list, BondTable::Mode::kBlocksAndDerivatives,
              skin);
  const std::size_t nb = table.size();
  ASSERT_GT(nb, 0u);
  // The first build primes the anchors: everything evaluated, no reuse.
  EXPECT_EQ(table.reuse_stats().evaluated, nb);
  EXPECT_EQ(table.reuse_stats().reused, 0u);
  std::vector<std::vector<double>> before(nb);
  for (std::size_t p = 0; p < nb; ++p) {
    before[p].assign(table.block(p), table.block(p) + 16);
  }
  const std::uint64_t v1 = table.topology_version();

  // Rebuild at identical positions: every bond frozen at its stored
  // values, the evaluated count does not move, the stamp does not move.
  table.build(m, s.system, s.list, BondTable::Mode::kBlocksAndDerivatives,
              skin);
  EXPECT_EQ(table.reuse_stats().reused, nb);
  EXPECT_EQ(table.reuse_stats().evaluated, nb);
  EXPECT_EQ(table.topology_version(), v1);

  // Jiggle every atom below the half-skin and kick atom 0 past it:
  // exactly the bonds touching atom 0 re-evaluate -- to the same bits a
  // reuse-free build produces -- while the quiescent bulk stays frozen at
  // the anchor-position values despite the changed geometry.
  System moved = s.system;
  structures::perturb(moved, 0.01, 5);          // < skin / 2 = 0.05 A
  moved.positions()[0] += Vec3{0.2, 0.0, 0.0};  // crosses the half-skin
  table.build(m, moved, s.list, BondTable::Mode::kBlocksAndDerivatives, skin);

  BondTable fresh;
  fresh.build(m, moved, s.list, BondTable::Mode::kBlocksAndDerivatives);
  std::size_t reeval = 0;
  double frozen_drift = 0.0;
  for (std::size_t p = 0; p < nb; ++p) {
    const double* got = table.block(p);
    if (table.i(p) == 0 || table.j(p) == 0) {
      ++reeval;
      for (int e = 0; e < 16; ++e) {
        EXPECT_EQ(got[e], fresh.block(p)[e]) << "bond " << p;
      }
    } else {
      for (int e = 0; e < 16; ++e) {
        EXPECT_EQ(got[e], before[p][e]) << "bond " << p;
        frozen_drift =
            std::max(frozen_drift, std::fabs(got[e] - fresh.block(p)[e]));
      }
    }
  }
  EXPECT_GT(reeval, 0u);
  EXPECT_EQ(table.reuse_stats().reused, nb + (nb - reeval));
  EXPECT_EQ(table.reuse_stats().evaluated, nb + reeval);
  // The jiggle really changed the geometry: the frozen values are an
  // approximation (bounded by the skin), not accidentally exact.
  EXPECT_GT(frozen_drift, 0.0);

  // A mode change invalidates the anchors (the previous build may not
  // have filled every array): nothing reuses on that build.
  const std::size_t reused_before = table.reuse_stats().reused;
  table.build(m, moved, s.list, BondTable::Mode::kBlocks, skin);
  EXPECT_EQ(table.reuse_stats().reused, reused_before);
}

TEST(BondTable, HamiltonianFromTableMatchesDirectAssembly) {
  const TbModel m = xwch_carbon();
  GasSetup s = random_setup(m, 40, 31);
  BondTable table;
  table.build(m, s.system, s.list, BondTable::Mode::kBlocks);
  const linalg::Matrix h = build_hamiltonian(m, s.system, table);

  // Reference assembled with direct per-bond sk_block calls.
  const std::size_t norb = 4 * s.system.size();
  linalg::Matrix ref(norb, norb, 0.0);
  for (std::size_t i = 0; i < s.system.size(); ++i) {
    ref(4 * i, 4 * i) = m.e_s;
    for (int a = 1; a < 4; ++a) ref(4 * i + a, 4 * i + a) = m.e_p;
  }
  const auto& pos = s.system.positions();
  for (const NeighborPair& pr : s.list.half_pairs()) {
    const SkBlock b = sk_block(m, pos[pr.j] + pr.shift - pos[pr.i]);
    for (int a = 0; a < 4; ++a) {
      for (int c = 0; c < 4; ++c) {
        ref(4 * pr.i + a, 4 * pr.j + c) = b.h[a][c];
        ref(4 * pr.j + c, 4 * pr.i + a) = b.h[a][c];
      }
    }
  }
  EXPECT_DOUBLE_EQ(linalg::max_abs(h - ref), 0.0);
}

TEST(BondTable, BandForcesMatchDirectContraction) {
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.05, 37);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  BondTable table;
  table.build(m, s, list, BondTable::Mode::kBlocksAndDerivatives);
  const auto eig = linalg::eigh(build_hamiltonian(m, s, table));
  const auto occ = occupy(eig.values, s.total_valence_electrons(), 0.0);
  const auto rho = density_matrix(eig.vectors, occ.weights);

  Mat3 virial{};
  const auto forces = band_forces(table, rho, &virial);

  // Pre-refactor reference: serial loop, direct per-bond derivative calls.
  std::vector<Vec3> ref(s.size(), Vec3{});
  Mat3 wref{};
  const auto& pos = s.positions();
  for (const NeighborPair& pr : list.half_pairs()) {
    const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
    SkBlock block;
    SkBlockDerivative deriv;
    sk_block_with_derivative(m, bond, block, deriv);
    Vec3 dedd{};
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        const double r_ab = rho(4 * pr.i + a, 4 * pr.j + b);
        dedd.x += 2.0 * r_ab * deriv.d[0][a][b];
        dedd.y += 2.0 * r_ab * deriv.d[1][a][b];
        dedd.z += 2.0 * r_ab * deriv.d[2][a][b];
      }
    }
    ref[pr.j] -= dedd;
    ref[pr.i] += dedd;
    wref -= outer(bond, dedd);
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(norm(forces[i] - ref[i]), 0.0, 1e-10) << "atom " << i;
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(virial(r, c), wref(r, c), 1e-10);
    }
  }
}

TEST(BondTable, RepulsiveFromTableMatchesDirectEvaluation) {
  // Both repulsion kinds: pair sum (Si) and embedded polynomial (C), via
  // the hopping-free kRepulsiveOnly mode (the list-based wrapper's path).
  for (const TbModel& m : {gsp_silicon(), xwch_carbon()}) {
    GasSetup s = random_setup(m, 40, 41 + static_cast<std::uint64_t>(m.element));
    BondTable table;
    table.build(m, s.system, s.list, BondTable::Mode::kRepulsiveOnly);
    EXPECT_FALSE(table.has_blocks());
    const RepulsiveResult got = repulsive_energy_forces(m, table);

    // Reference straight from the radial function.
    const auto& pos = s.system.positions();
    double eref = 0.0;
    std::vector<Vec3> fref(s.system.size(), Vec3{});
    if (m.repulsion_kind == RepulsionKind::kPairSum) {
      for (const NeighborPair& pr : s.list.half_pairs()) {
        const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
        const double r = norm(bond);
        if (r >= m.repulsive.r_cut) continue;
        const RadialValue v = evaluate_scaling(m.repulsive, r);
        eref += m.phi0 * v.value;
        const Vec3 f = (m.phi0 * v.derivative / r) * bond;
        fref[pr.i] += f;
        fref[pr.j] -= f;
      }
    } else {
      std::vector<double> x(s.system.size(), 0.0);
      for (const NeighborPair& pr : s.list.half_pairs()) {
        const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
        const double r = norm(bond);
        if (r >= m.repulsive.r_cut) continue;
        const double phi = m.phi0 * evaluate_scaling(m.repulsive, r).value;
        x[pr.i] += phi;
        x[pr.j] += phi;
      }
      std::vector<double> fp(s.system.size(), 0.0);
      for (std::size_t i = 0; i < s.system.size(); ++i) {
        const RadialValue fv = evaluate_polynomial(m.embed_coeff, x[i]);
        eref += fv.value;
        fp[i] = fv.derivative;
      }
      for (const NeighborPair& pr : s.list.half_pairs()) {
        const Vec3 bond = pos[pr.j] + pr.shift - pos[pr.i];
        const double r = norm(bond);
        if (r >= m.repulsive.r_cut) continue;
        const double der = m.phi0 * evaluate_scaling(m.repulsive, r).derivative;
        const Vec3 f = ((fp[pr.i] + fp[pr.j]) * der / r) * bond;
        fref[pr.i] += f;
        fref[pr.j] -= f;
      }
    }
    EXPECT_NEAR(got.energy, eref, 1e-10 * std::max(1.0, std::fabs(eref)));
    for (std::size_t i = 0; i < s.system.size(); ++i) {
      EXPECT_NEAR(norm(got.forces[i] - fref[i]), 0.0, 1e-10) << "atom " << i;
    }
  }
}

// --- end-to-end pipeline consistency ------------------------------------

double fd_force(Calculator& calc, System& s, std::size_t atom, int axis,
                double h = 1e-5) {
  Vec3 dr{axis == 0 ? h : 0.0, axis == 1 ? h : 0.0, axis == 2 ? h : 0.0};
  s.positions()[atom] += dr;
  const double ep = calc.compute(s).energy;
  s.positions()[atom] -= 2.0 * dr;
  const double em = calc.compute(s).energy;
  s.positions()[atom] += dr;
  return -(ep - em) / (2.0 * h);
}

class BondTablePipeline : public ::testing::TestWithParam<double> {};

TEST_P(BondTablePipeline, FiniteDifferenceForcesThroughFullStep) {
  // T = 0 (aufbau) and T = 1000 K (Fermi smearing + Mermin free energy):
  // the bond-table pipeline's analytic forces must match the energy's
  // finite-difference derivative end to end.
  const double etemp = GetParam();
  TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.06, 43);
  TbOptions opt;
  opt.electronic_temperature = etemp;
  TightBindingCalculator calc(m, opt);
  const ForceResult r0 = calc.compute(s);

  const double tol = etemp > 0.0 ? 5e-4 : 5e-5;
  for (const std::size_t atom : {std::size_t{0}, s.size() / 2, s.size() - 1}) {
    for (int axis = 0; axis < 3; ++axis) {
      const double fd = fd_force(calc, s, atom, axis);
      const double an = axis == 0   ? r0.forces[atom].x
                        : axis == 1 ? r0.forces[atom].y
                                    : r0.forces[atom].z;
      EXPECT_NEAR(an, fd, tol) << "atom " << atom << " axis " << axis;
    }
  }
}

TEST_P(BondTablePipeline, VirialTraceMatchesIsotropicStrainDerivative) {
  // tr W = -dE/d(ln f) under uniform scaling of cell + positions: checks
  // that the band and repulsive virial accumulations through the bond
  // table stay consistent with the energy they derive from.
  const double etemp = GetParam();
  TbModel m = gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(s, 0.04, 47);
  TbOptions opt;
  opt.electronic_temperature = etemp;
  opt.skin = 0.0;  // strain changes every distance: always rebuild
  TightBindingCalculator calc(m, opt);
  const ForceResult r = calc.compute(s);

  const double eps = 1e-4;
  auto energy_scaled = [&](double f) {
    System c = s;
    const Mat3& h = s.cell().h();
    c.set_cell(Cell(h.row(0) * f, h.row(1) * f, h.row(2) * f));
    for (Vec3& q : c.positions()) q *= f;
    TightBindingCalculator cc(m, opt);
    return cc.compute(c).energy;
  };
  const double dE_dlnf =
      (energy_scaled(1.0 + eps) - energy_scaled(1.0 - eps)) / (2.0 * eps);
  EXPECT_NEAR(trace(r.virial), -dE_dlnf,
              5e-4 * std::max(1.0, std::fabs(dE_dlnf)));
}

INSTANTIATE_TEST_SUITE_P(ElectronicTemperatures, BondTablePipeline,
                         ::testing::Values(0.0, 1000.0));

}  // namespace
}  // namespace tbmd::tb
