// Tests for the blocked partial-spectrum eigensolver stack: blocked
// Householder tridiagonalization, Sturm-bisection eigenvalue ranges,
// inverse-iteration eigenvectors, and eigh_range() against the Jacobi and
// QL oracles -- including degenerate clusters and partial [il, iu] queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/linalg/blocked_tridiag.hpp"
#include "src/linalg/eigen_partial.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/linalg/jacobi.hpp"
#include "src/linalg/spectral_bounds.hpp"
#include "src/linalg/tridiagonal.hpp"
#include "src/util/random.hpp"

namespace tbmd::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-scale, scale);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

/// A = Q diag(values) Q^T with Q the (orthogonal) eigenvector matrix of a
/// random symmetric matrix: a symmetric matrix with a prescribed spectrum.
Matrix with_spectrum(const std::vector<double>& values, std::uint64_t seed) {
  const std::size_t n = values.size();
  const Matrix q = jacobi_eigh(random_symmetric(n, seed)).vectors;
  Matrix scaled = q;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) scaled(i, j) *= values[j];
  }
  return matmul(scaled, transpose(q));
}

double subset_residual(const Matrix& a, const SymmetricEigenSolution& sol) {
  // max_k || A v_k - lambda_k v_k ||_inf over the computed columns.
  double worst = 0.0;
  const std::size_t n = a.rows();
  const std::size_t m = sol.values.size();
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += a(i, j) * sol.vectors(j, k);
      worst =
          std::max(worst, std::fabs(s - sol.values[k] * sol.vectors(i, k)));
    }
  }
  return worst;
}

double subset_orthogonality_defect(const Matrix& v) {
  const Matrix vtv = matmul(transpose(v), v);
  return max_abs(vtv - Matrix::identity(v.cols()));
}

TEST(BlockedTridiag, MatchesUnblockedReduction) {
  for (const std::size_t n : {2u, 3u, 5u, 17u, 64u, 97u}) {
    const Matrix a = random_symmetric(n, 100 + n);
    const auto fact = blocked_tridiagonalize(a, 8);

    Matrix work = a;
    std::vector<double> d, e;
    householder_tridiagonalize(work, d, e, /*accumulate=*/false);

    // The tridiagonal forms can differ by subdiagonal signs (reflector
    // choices), but the spectrum is identical: compare via eigenvalues.
    std::vector<double> db = fact.d, eb = fact.e;
    std::vector<double> du = d, eu = e;
    tql_implicit_shift(db, eb, nullptr);
    tql_implicit_shift(du, eu, nullptr);
    std::sort(db.begin(), db.end());
    std::sort(du.begin(), du.end());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(db[i], du[i], 1e-11 * std::max(1.0, std::fabs(du[i])))
          << "n = " << n;
    }
  }
}

TEST(BlockedTridiag, QIsOrthogonalAndSimilarityHolds) {
  const std::size_t n = 41;
  const Matrix a = random_symmetric(n, 7);
  const auto fact = blocked_tridiagonalize(a, 8);
  const Matrix q = form_q(fact);

  EXPECT_LT(max_abs(matmul(transpose(q), q) - Matrix::identity(n)), 1e-12);

  // Q^T A Q must equal the tridiagonal T assembled from (d, e).
  Matrix t(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    t(i, i) = fact.d[i];
    if (i > 0) {
      t(i, i - 1) = fact.e[i];
      t(i - 1, i) = fact.e[i];
    }
  }
  const Matrix qtaq = matmul(transpose(q), matmul(a, q));
  EXPECT_LT(max_abs(qtaq - t), 1e-11);
}

TEST(BlockedTridiag, ApplyQAgreesWithExplicitProduct) {
  const std::size_t n = 33;
  const std::size_t m = 5;
  const Matrix a = random_symmetric(n, 11);
  const auto fact = blocked_tridiagonalize(a, 8);
  const Matrix q = form_q(fact);

  Rng rng(13);
  Matrix z(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) z(i, j) = rng.uniform(-1, 1);
  }
  Matrix applied = z;
  apply_q(fact, applied);
  EXPECT_LT(max_abs(applied - matmul(q, z)), 1e-12);
}

TEST(Bisection, MatchesQlValuesOnRandomTridiagonal) {
  const std::size_t n = 73;
  Rng rng(29);
  std::vector<double> d(n), e(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = rng.uniform(-2, 2);
  for (std::size_t i = 1; i < n; ++i) e[i] = rng.uniform(-1, 1);

  std::vector<double> dq = d, eq = e;
  tql_implicit_shift(dq, eq, nullptr);
  std::sort(dq.begin(), dq.end());

  const auto all = tridiagonal_eigenvalues_range(d, e, 0, n - 1);
  for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(all[k], dq[k], 1e-10);

  // A strict sub-range must be the matching slice of the full spectrum.
  const auto mid = tridiagonal_eigenvalues_range(d, e, 20, 40);
  for (std::size_t k = 20; k <= 40; ++k) {
    EXPECT_NEAR(mid[k - 20], dq[k], 1e-10);
  }
}

TEST(Bisection, ConsistentWithSturmCounts) {
  const std::size_t n = 50;
  const Matrix a = random_symmetric(n, 404);
  const auto fact = blocked_tridiagonalize(a);
  const auto vals = tridiagonal_eigenvalues_range(fact.d, fact.e, 0, n - 1);
  const double span = vals.back() - vals.front();
  for (std::size_t k = 0; k < n; ++k) {
    // Just below/above eigenvalue k the Sturm count must bracket k.
    EXPECT_LE(sturm_count(fact.d, fact.e, vals[k] - 1e-8 * span), k);
    EXPECT_GE(sturm_count(fact.d, fact.e, vals[k] + 1e-8 * span), k + 1);
  }
}

class EighRangeFull : public ::testing::TestWithParam<int> {};

TEST_P(EighRangeFull, FullRangeMatchesJacobiToTightTolerance) {
  const int n = GetParam();
  const Matrix a = random_symmetric(n, 5000 + n);
  const auto sol = eigh_range(a, 0, n - 1);
  const auto jac = jacobi_eigh(a);

  ASSERT_EQ(sol.values.size(), static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(sol.values[k], jac.values[k], 1e-10);
  }
  EXPECT_LT(subset_residual(a, sol), 1e-10);
  EXPECT_LT(subset_orthogonality_defect(sol.vectors), 1e-10);
}

// N = 8 / 64 / 257 per the issue: below, at, and beyond typical TB
// Hamiltonian block sizes (257 odd to exercise ragged panel edges).
INSTANTIATE_TEST_SUITE_P(Sizes, EighRangeFull, ::testing::Values(8, 64, 257));

class EighRangePartial
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EighRangePartial, SliceMatchesFullSpectrumSolve) {
  const auto [n, il, iu] = GetParam();
  const Matrix a = random_symmetric(n, 9000 + n + il);
  const auto sol = eigh_range(a, il, iu);
  const auto jac = jacobi_eigh(a);

  ASSERT_EQ(sol.values.size(), static_cast<std::size_t>(iu - il + 1));
  ASSERT_EQ(sol.vectors.rows(), static_cast<std::size_t>(n));
  ASSERT_EQ(sol.vectors.cols(), static_cast<std::size_t>(iu - il + 1));
  for (int k = il; k <= iu; ++k) {
    EXPECT_NEAR(sol.values[k - il], jac.values[k], 1e-10);
  }
  EXPECT_LT(subset_residual(a, sol), 1e-10);
  EXPECT_LT(subset_orthogonality_defect(sol.vectors), 1e-10);

  const auto vals_only = eigvalsh_range(a, il, iu);
  ASSERT_EQ(vals_only.size(), sol.values.size());
  for (std::size_t k = 0; k < vals_only.size(); ++k) {
    EXPECT_NEAR(vals_only[k], sol.values[k], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, EighRangePartial,
    ::testing::Values(std::make_tuple(8, 0, 3),      // occupied half, tiny
                      std::make_tuple(64, 0, 31),    // occupied half
                      std::make_tuple(64, 0, 0),     // ground state only
                      std::make_tuple(64, 60, 63),   // top of the spectrum
                      std::make_tuple(257, 0, 128),  // odd N occupied half
                      std::make_tuple(257, 100, 140)));  // interior window

TEST(EighRange, DegenerateClusterInsideRequestedRange) {
  // Spectrum with a 4-fold cluster at 1.0 and a 3-fold cluster at 2.0;
  // request a window cutting through both.
  const std::vector<double> spectrum{-3.0, -1.5, 1.0,  1.0, 1.0, 1.0,
                                     2.0,  2.0,  2.0,  4.0, 5.5, 7.0};
  const Matrix a = with_spectrum(spectrum, 31);
  const auto sol = eigh_range(a, 2, 8);  // the two clusters, nothing else
  for (std::size_t k = 0; k < sol.values.size(); ++k) {
    EXPECT_NEAR(sol.values[k], spectrum[k + 2], 1e-10);
  }
  EXPECT_LT(subset_residual(a, sol), 1e-10);
  EXPECT_LT(subset_orthogonality_defect(sol.vectors), 1e-10);
}

TEST(EighRange, NearDegenerateClusterStaysOrthogonal) {
  // Eigenvalues split by 1e-9 of the spectral width: well below the cluster
  // threshold, the classic failure mode of naive inverse iteration.
  std::vector<double> spectrum{-2.0, 0.5, 0.5 + 1e-9, 0.5 + 2e-9, 3.0, 6.0};
  const Matrix a = with_spectrum(spectrum, 37);
  const auto sol = eigh_range(a, 0, 5);
  EXPECT_LT(subset_residual(a, sol), 1e-10);
  EXPECT_LT(subset_orthogonality_defect(sol.vectors), 1e-10);
}

TEST(EighRange, UncoupledBlocksKeepEigenvectorsConfined) {
  // Two identical, completely uncoupled 3x3 blocks: every eigenvalue is
  // doubly degenerate across the blocks.  Eigenvectors must stay confined
  // to a single block (zero amplitude on the other), the xSTEIN block
  // convention -- otherwise uncoupled subsystems pick up spurious coherence
  // (e.g. nonzero Mayer bond orders between distant atoms).
  const std::size_t nb = 3;
  const Matrix blockm = random_symmetric(nb, 55);
  Matrix a(2 * nb, 2 * nb, 0.0);
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      a(i, j) = blockm(i, j);
      a(nb + i, nb + j) = blockm(i, j);
    }
  }
  const auto sol = eigh_range(a, 0, 2 * nb - 1);
  EXPECT_LT(subset_residual(a, sol), 1e-10);
  EXPECT_LT(subset_orthogonality_defect(sol.vectors), 1e-10);
  for (std::size_t k = 0; k < 2 * nb; ++k) {
    double w_top = 0.0, w_bot = 0.0;
    for (std::size_t i = 0; i < nb; ++i) {
      w_top += sol.vectors(i, k) * sol.vectors(i, k);
      w_bot += sol.vectors(nb + i, k) * sol.vectors(nb + i, k);
    }
    EXPECT_LT(std::min(w_top, w_bot), 1e-20) << "column " << k;
  }
}

TEST(EighRange, GradedSpectrumKeepsSmallEigenvaluesAccurate) {
  // Diagonal spanning many orders of magnitude with small couplings: the
  // Rayleigh-polish path must keep residuals far below eps * ||A||.
  const std::size_t n = 12;
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = std::pow(10.0, static_cast<double>(i) - 4.0);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a(i, i + 1) = a(i + 1, i) = 1e-6;
  }
  const auto sol = eigh_range(a, 0, n - 1);
  EXPECT_LT(subset_residual(a, sol), 1e-9);
}

TEST(EighRange, AgreesWithQlOracle) {
  const std::size_t n = 100;
  const Matrix a = random_symmetric(n, 61);
  const auto fast = eigh_range(a, 0, n - 1);
  const auto oracle = eigh_ql(a);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast.values[k], oracle.values[k], 1e-10);
  }
}

TEST(EighRange, RejectsBadRanges) {
  const Matrix a = random_symmetric(6, 3);
  EXPECT_THROW((void)eigh_range(a, 2, 1), Error);
  EXPECT_THROW((void)eigh_range(a, 0, 6), Error);
  Matrix rect(3, 4);
  EXPECT_THROW((void)eigh_range(rect, 0, 1), Error);
}

TEST(SpectralBounds, EncloseDenseAndTridiagonalSpectra) {
  const std::size_t n = 24;
  const Matrix a = random_symmetric(n, 71);
  const auto vals = eigvalsh(a);
  const SpectralBounds dense = gershgorin_bounds(a);
  EXPECT_LE(dense.lo, vals.front());
  EXPECT_GE(dense.hi, vals.back());

  const auto fact = blocked_tridiagonalize(a);
  const SpectralBounds tri = gershgorin_bounds(fact.d, fact.e);
  EXPECT_LE(tri.lo, vals.front());
  EXPECT_GE(tri.hi, vals.back());
  EXPECT_GE(tri.scale(), std::fabs(vals.back()));
}

}  // namespace
}  // namespace tbmd::linalg
