// Tests for the MD engine: velocity initialization, NVE conservation,
// thermostats (rescale / Berendsen / Nose-Hoover), ramps and constraints.

#include <gtest/gtest.h>

#include <cmath>

#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/units.hpp"

namespace tbmd::md {
namespace {

/// LJ parameters safe for the small periodic cells used in these tests
/// (cell height must exceed twice the list radius).
potentials::LennardJonesParams small_cell_lj() {
  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.4;
  return p;
}

TEST(Velocities, ExactInitialTemperatureAndZeroMomentum) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 120.0, 7);
  EXPECT_NEAR(s.temperature(), 120.0, 1e-9);
  Vec3 p{};
  for (std::size_t i = 0; i < s.size(); ++i) {
    p += s.mass(i) * s.velocities()[i];
  }
  EXPECT_NEAR(norm(p), 0.0, 1e-9);
}

TEST(Velocities, DeterministicInSeed) {
  System a = structures::fcc(Element::Ar, 5.26, 1, 1, 2);
  System b = a;
  maxwell_boltzmann_velocities(a, 300.0, 42);
  maxwell_boltzmann_velocities(b, 300.0, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.velocities()[i], b.velocities()[i]);
  }
}

TEST(Velocities, FrozenAtomsStayAtRest) {
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 2);
  s.set_frozen(0, true);
  maxwell_boltzmann_velocities(s, 300.0, 9);
  EXPECT_EQ(s.velocities()[0], (Vec3{0, 0, 0}));
  EXPECT_NEAR(s.temperature(), 300.0, 1e-9);  // computed over mobile only
}

TEST(System, KineticEnergyAndTemperatureRelation) {
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 1);
  maxwell_boltzmann_velocities(s, 250.0, 4);
  const double dof = 3.0 * static_cast<double>(s.size());
  EXPECT_NEAR(2.0 * s.kinetic_energy() / (dof * units::kBoltzmann), 250.0,
              1e-9);
}

TEST(NveDynamics, ConservesEnergyLennardJones) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 60.0, 11);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdDriver driver(s, calc, {2.0});  // 2 fs is small for argon
  const double e0 = driver.total_energy();
  driver.run(250);
  EXPECT_NEAR(driver.total_energy(), e0, 2e-4 * s.size());
}

TEST(NveDynamics, ConservesEnergyTightBinding) {
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 300.0, 13);
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  MdDriver driver(s, calc, {1.0});
  const double e0 = driver.total_energy();
  driver.run(40);
  // Literature-standard criterion: drift well under 1 meV/atom over 40 fs.
  EXPECT_NEAR(driver.total_energy(), e0, 1e-3 * s.size());
}

TEST(NveDynamics, EnergyErrorShrinksQuadraticallyWithTimestep) {
  // Velocity Verlet is second order: quartering dt cuts the energy
  // fluctuation by ~16x.  Allow generous slack (chaotic trajectories).
  auto drift_for_dt = [](double dt) {
    System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
    maxwell_boltzmann_velocities(s, 40.0, 17);
    potentials::LennardJonesCalculator calc(small_cell_lj());
    MdDriver driver(s, calc, {dt});
    const double e0 = driver.total_energy();
    double worst = 0.0;
    const long steps = static_cast<long>(40.0 / dt);
    for (long q = 0; q < steps; ++q) {
      driver.step();
      worst = std::max(worst, std::fabs(driver.total_energy() - e0));
    }
    return worst;
  };
  const double coarse = drift_for_dt(8.0);
  const double fine = drift_for_dt(2.0);
  EXPECT_LT(fine, coarse / 4.0);
}

TEST(NveDynamics, FrozenAtomsDoNotMove) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  s.set_frozen(2, true);
  const Vec3 pinned = s.positions()[2];
  maxwell_boltzmann_velocities(s, 80.0, 19);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdDriver driver(s, calc, {2.0});
  driver.run(50);
  EXPECT_EQ(s.positions()[2], pinned);
}

TEST(NveDynamics, TimeBookkeeping) {
  System s = structures::dimer(Element::Ar, 3.8);
  potentials::LennardJonesCalculator calc;
  MdDriver driver(s, calc, {0.5});
  driver.run(10);
  EXPECT_EQ(driver.step_count(), 10);
  EXPECT_DOUBLE_EQ(driver.time_fs(), 5.0);
}

TEST(Thermostats, RescaleReachesTargetExactly) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 20.0, 23);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdOptions opt;
  opt.dt = 2.0;
  opt.thermostat = ThermostatSpec::rescale(90.0);
  MdDriver driver(s, calc, std::move(opt));
  driver.run(5);
  EXPECT_NEAR(s.temperature(), 90.0, 1e-9);
}

TEST(Thermostats, BerendsenRelaxesTowardsTarget) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 20.0, 29);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdOptions opt;
  opt.dt = 2.0;
  opt.thermostat = ThermostatSpec::berendsen(100.0, 50.0);
  MdDriver driver(s, calc, std::move(opt));
  driver.run(200);
  EXPECT_GT(s.temperature(), 60.0);
  EXPECT_LT(s.temperature(), 140.0);
}

TEST(Thermostats, NoseHooverSamplesTargetTemperature) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 100.0, 31);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdOptions opt;
  opt.dt = 2.0;
  opt.thermostat = ThermostatSpec::nose_hoover(100.0, 100.0, 2);
  MdDriver driver(s, calc, std::move(opt));

  driver.run(200);  // equilibrate
  double t_acc = 0.0;
  long samples = 0;
  driver.run(800, [&](const MdDriver& d, long) {
    t_acc += d.system().temperature();
    ++samples;
  });
  const double t_avg = t_acc / static_cast<double>(samples);
  EXPECT_NEAR(t_avg, 100.0, 12.0);  // canonical average within fluctuations
}

TEST(Thermostats, NoseHooverConservedQuantityIsStable) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 80.0, 37);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdOptions opt;
  opt.dt = 2.0;
  opt.thermostat = ThermostatSpec::nose_hoover(80.0, 100.0, 2);
  MdDriver driver(s, calc, std::move(opt));
  const double h0 = driver.conserved_quantity();
  double worst = 0.0;
  driver.run(500, [&](const MdDriver& d, long) {
    worst = std::max(worst, std::fabs(d.conserved_quantity() - h0));
  });
  // The paper's criterion: conserved-quantity oscillations < 1e-4 of the
  // total energy scale.  Use an absolute bound appropriate for this system.
  EXPECT_LT(worst, 0.05);
}

TEST(Thermostats, NoseHooverHeatsSystemFromCold) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 10.0, 41);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdOptions opt;
  opt.dt = 2.0;
  // Stiff coupling (tau = 15 fs) so the cold, nearly-harmonic crystal
  // thermalizes within the test budget.
  opt.thermostat = ThermostatSpec::nose_hoover(120.0, 15.0, 2);
  MdDriver driver(s, calc, std::move(opt));
  driver.run(1200);
  EXPECT_GT(s.temperature(), 60.0);
}

TEST(Thermostats, TemperatureRampFollowsSchedule) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  maxwell_boltzmann_velocities(s, 50.0, 43);
  potentials::LennardJonesCalculator calc(small_cell_lj());
  MdOptions opt;
  opt.dt = 2.0;
  opt.thermostat = ThermostatSpec::nose_hoover(50.0, 60.0, 2);
  MdDriver driver(s, calc, std::move(opt));
  driver.ramp_temperature(150.0, 200);
  EXPECT_NEAR(driver.thermostat()->target(), 150.0, 1e-12);
  driver.run(400);
  EXPECT_GT(s.temperature(), 100.0);
}

TEST(Thermostats, ChainLengthOneIsPlainNoseHoover) {
  NoseHooverThermostat nh(300.0, 50.0, 1);
  EXPECT_EQ(nh.positions().size(), 1u);
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 2);
  maxwell_boltzmann_velocities(s, 300.0, 47);
  nh.begin_step(s, 1.0);  // must not crash / produce NaN
  EXPECT_TRUE(std::isfinite(s.velocities()[0].x));
}

TEST(Thermostats, SpecsAreCopyableValues) {
  MdOptions a;
  a.dt = 0.5;
  a.thermostat = ThermostatSpec::nose_hoover(200.0, 40.0, 3);
  const MdOptions b = a;  // plain copy: no owned pointers in options
  EXPECT_EQ(b.thermostat.kind, ThermostatKind::kNoseHoover);
  EXPECT_EQ(b.thermostat.target_kelvin, 200.0);
  const auto resolved = b.thermostat.resolve();
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->target(), 200.0);
  EXPECT_EQ(resolved->state().size(), 6u);  // 3 chain positions + 3 rates

  EXPECT_FALSE(ThermostatSpec::none().active());
  EXPECT_EQ(ThermostatSpec::none().resolve(), nullptr);
  EXPECT_EQ(ThermostatSpec::by_name("nvt", 300.0).kind,
            ThermostatKind::kNoseHoover);
  EXPECT_EQ(ThermostatSpec::by_name("berendsen", 300.0).kind,
            ThermostatKind::kBerendsen);
  EXPECT_THROW((void)ThermostatSpec::by_name("bogus", 1.0), Error);
}

TEST(Thermostats, StateRoundTripRestoresChains) {
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 2);
  maxwell_boltzmann_velocities(s, 140.0, 21);
  NoseHooverThermostat nh(100.0, 50.0, 2);
  for (int k = 0; k < 5; ++k) {
    nh.begin_step(s, 1.0);
    nh.end_step(s, 1.0);
  }
  const std::vector<double> snapshot = nh.state();
  ASSERT_EQ(snapshot.size(), 4u);

  NoseHooverThermostat fresh(100.0, 50.0, 2);
  fresh.set_state(snapshot);
  EXPECT_EQ(fresh.state(), snapshot);
  EXPECT_THROW(fresh.set_state({1.0}), Error);  // wrong layout
}

TEST(MdDriver, RejectsNonPositiveTimestep) {
  System s = structures::dimer(Element::Ar, 3.8);
  potentials::LennardJonesCalculator calc;
  EXPECT_THROW(MdDriver(s, calc, {0.0}), Error);
}

TEST(MdDriver, ObserverSeesEveryStep) {
  System s = structures::dimer(Element::Ar, 3.8);
  potentials::LennardJonesCalculator calc;
  MdDriver driver(s, calc, {1.0});
  long count = 0;
  driver.run(17, [&](const MdDriver&, long) { ++count; });
  EXPECT_EQ(count, 17);
}

}  // namespace
}  // namespace tbmd::md
