// Tests for the blocked-sparse (BSR) substrate of the O(N) engine:
// CSR <-> BSR round trips, blocked SpMM against the dense GEMM reference,
// tile-threshold truncation symmetry, the symmetric-half storage mode
// (round trips, half SpMM, frozen-pattern reuse, workspace shrink), and
// SP2 purification running directly on BSR operands.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/linalg/blas.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/block_sparse.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/sp2.hpp"
#include "src/onx/sparse.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/util/random.hpp"

namespace tbmd::onx {
namespace {

/// Random symmetric matrix with a random *block* sparsity pattern: whole
/// bs x bs tiles are either dense or absent, mirrored across the diagonal.
linalg::Matrix random_block_symmetric(std::size_t n, std::size_t bs,
                                      std::uint64_t seed,
                                      double block_sparsity = 0.6) {
  Rng rng(seed);
  linalg::Matrix m(n, n, 0.0);
  const std::size_t nb = n / bs;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t bj = 0; bj <= bi; ++bj) {
      if (bi != bj && rng.uniform() < block_sparsity) continue;
      for (std::size_t r = 0; r < bs; ++r) {
        for (std::size_t c = 0; c < bs; ++c) {
          const double v = rng.uniform(-1, 1);
          m(bs * bi + r, bs * bj + c) = v;
          m(bs * bj + c, bs * bi + r) = v;
        }
      }
    }
  }
  return m;
}

/// Random symmetric matrix with scalar-granular sparsity (tiles straddle
/// the pattern, so conversions must zero-fill correctly).
linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed,
                                double sparsity = 0.7) {
  Rng rng(seed);
  linalg::Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (rng.uniform() > sparsity || i == j) {
        const double v = rng.uniform(-1, 1);
        m(i, j) = v;
        m(j, i) = v;
      }
    }
  }
  return m;
}

// --- conversions ---------------------------------------------------------

TEST(BlockSparse, DenseRoundTrip) {
  const linalg::Matrix a = random_block_symmetric(24, 4, 11);
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, 4);
  EXPECT_EQ(b.block_size(), 4u);
  EXPECT_EQ(b.block_rows(), 6u);
  EXPECT_LT(linalg::max_abs(b.to_dense() - a), 1e-15);
}

TEST(BlockSparse, CsrRoundTripOnRandomPatterns) {
  // to_block / from_block must be an identity for any scalar pattern and
  // any admissible block size, including tiles only partially covered by
  // the scalar pattern.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t bs : {1u, 2u, 4u}) {
      const linalg::Matrix a = random_symmetric(20, seed);
      const SparseMatrix s = SparseMatrix::from_dense(a);
      const BlockSparseMatrix b = s.to_block(bs);
      EXPECT_EQ(b.size(), 20u);
      EXPECT_LT(linalg::max_abs(b.to_dense() - a), 1e-15)
          << "bs = " << bs << " seed " << seed;
      const SparseMatrix back = SparseMatrix::from_block(b);
      // Exact zeros padding partially-filled tiles must not come back as
      // explicit CSR entries, so the round trip preserves nnz exactly.
      EXPECT_EQ(back.nnz(), s.nnz()) << "bs = " << bs << " seed " << seed;
      EXPECT_LT(linalg::max_abs(back.to_dense() - a), 1e-15);
    }
  }
}

TEST(BlockSparse, ToBlockRejectsIndivisibleDimension) {
  const SparseMatrix s = SparseMatrix::identity(10);
  EXPECT_THROW((void)s.to_block(4), Error);
}

TEST(BlockSparse, IdentityAndTrace) {
  const BlockSparseMatrix eye = BlockSparseMatrix::identity(12, 4);
  EXPECT_EQ(eye.block_count(), 3u);
  EXPECT_DOUBLE_EQ(eye.trace(), 12.0);
  EXPECT_DOUBLE_EQ(eye.get(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(eye.get(5, 6), 0.0);
  EXPECT_EQ(eye.find_block(0, 2), nullptr);
}

// --- algebra vs dense reference ------------------------------------------

TEST(BlockSparse, SpMMMatchesDenseGemm) {
  for (const std::size_t n : {4u, 16u, 48u, 92u}) {
    const linalg::Matrix a = random_symmetric(n, 100 + n);
    const linalg::Matrix b = random_symmetric(n, 200 + n);
    const std::size_t bs = n % 4 == 0 ? 4 : 2;
    const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, bs);
    const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(b, bs);
    const BlockSparseMatrix sc = sa.multiply(sb);
    EXPECT_LT(linalg::max_abs(sc.to_dense() - linalg::matmul(a, b)), 1e-12)
        << "n = " << n;
  }
}

TEST(BlockSparse, CombineMatchesDense) {
  const linalg::Matrix a = random_block_symmetric(32, 4, 5);
  const linalg::Matrix b = random_block_symmetric(32, 4, 6);
  const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, 4);
  const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(b, 4);
  const BlockSparseMatrix sc = sa.combine(2.0, sb, -0.5);
  EXPECT_LT(linalg::max_abs(sc.to_dense() - (a * 2.0 + b * (-0.5))), 1e-13);
}

TEST(BlockSparse, TraceOfProductMatchesDense) {
  const linalg::Matrix a = random_symmetric(28, 7);
  const linalg::Matrix b = random_symmetric(28, 8);
  const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, 4);
  const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(b, 4);
  EXPECT_NEAR(sa.trace_of_product(sb), linalg::trace_of_product(a, b), 1e-11);
}

TEST(BlockSparse, GershgorinBoundsContainSpectrum) {
  const linalg::Matrix a = random_symmetric(32, 9);
  const BlockSparseMatrix s = BlockSparseMatrix::from_dense(a, 4);
  const auto [lo, hi] = s.gershgorin_bounds();
  const auto vals = linalg::eigvalsh(a);
  EXPECT_GE(vals.front(), lo - 1e-12);
  EXPECT_LE(vals.back(), hi + 1e-12);
}

TEST(BlockSparse, MicroKernelMatchesGenericPath) {
  // The unrolled 4x4 fast path must agree with the generic loop bit-for-bit
  // (same operation order per output element: k-major accumulation).
  Rng rng(42);
  double a[16], b[16], c4[16] = {}, cg[16] = {};
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  linalg::gemm_micro_add(4, a, b, c4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 4; ++k) s += a[4 * i + k] * b[4 * k + j];
      cg[4 * i + j] += s;
    }
  }
  for (int q = 0; q < 16; ++q) EXPECT_DOUBLE_EQ(c4[q], cg[q]) << q;
}

// --- tile truncation ------------------------------------------------------

TEST(BlockSparse, TileTruncationDropsWholeTilesSymmetrically) {
  // Build a symmetric matrix with one strong block pair and one weak block
  // pair; truncation must drop the weak tiles on BOTH sides of the
  // diagonal (symmetric pattern preserved) and keep the strong ones.
  linalg::Matrix a(12, 12, 0.0);
  auto fill_tile = [&](std::size_t bi, std::size_t bj, double scale) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        a(4 * bi + r, 4 * bj + c) = scale * (1.0 + 0.1 * (r + c));
        a(4 * bj + c, 4 * bi + r) = scale * (1.0 + 0.1 * (r + c));
      }
    }
  };
  fill_tile(0, 0, 1.0);
  fill_tile(1, 1, 1.0);
  fill_tile(2, 2, 1.0);
  fill_tile(0, 1, 0.5);    // strong: stays
  fill_tile(1, 2, 1e-9);   // weak: dropped whole
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, 4, 1e-6);
  EXPECT_NE(b.find_block(0, 1), nullptr);
  EXPECT_NE(b.find_block(1, 0), nullptr);
  EXPECT_EQ(b.find_block(1, 2), nullptr);
  EXPECT_EQ(b.find_block(2, 1), nullptr);
  EXPECT_EQ(b.find_block(0, 2), nullptr);
  EXPECT_EQ(b.block_count(), 5u);

  // The same symmetry must hold through combine() and multiply() of
  // symmetric operands: pattern and values stay exactly symmetric.
  const linalg::Matrix s = random_block_symmetric(24, 4, 31, 0.4);
  const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(s, 4);
  for (const double drop : {0.0, 1e-3, 3e-2}) {
    const BlockSparseMatrix prod = sb.multiply(sb, drop);
    const linalg::Matrix d = prod.to_dense();
    for (std::size_t i = 0; i < d.rows(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(d(i, j), d(j, i)) << "drop " << drop;
      }
    }
    const BlockSparseMatrix sum = sb.combine(1.0, prod, -0.25, drop);
    const linalg::Matrix ds = sum.to_dense();
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(ds(i, j), ds(j, i)) << "drop " << drop;
      }
    }
  }
}

TEST(BlockSparse, DiagonalTilesSurviveTruncation) {
  linalg::Matrix a(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) = 1e-9;  // tiny but nonzero
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, 4, 1e-3);
  EXPECT_NEAR(b.trace(), 8e-9, 1e-20);  // trace exact despite truncation
}

TEST(BlockSparse, MultiplyIntoReusesWorkspace) {
  const linalg::Matrix a = random_block_symmetric(32, 4, 17, 0.5);
  const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, 4);
  BlockSparseMatrix out;
  BsrWorkspace ws;
  sa.multiply_into(sa, 0.0, out, ws);
  const linalg::Matrix ref = linalg::matmul(a, a);
  EXPECT_LT(linalg::max_abs(out.to_dense() - ref), 1e-12);
  // Second call into the same buffers must give the same result.
  sa.multiply_into(sa, 0.0, out, ws);
  EXPECT_LT(linalg::max_abs(out.to_dense() - ref), 1e-12);
  EXPECT_THROW(sa.multiply_into(sa, 0.0, const_cast<BlockSparseMatrix&>(sa), ws),
               Error);
}

// --- symmetric-half storage ----------------------------------------------

TEST(BlockSparseSym, HalfRoundTripsOnRandomPatterns) {
  // full -> half -> full -> dense must be an identity for any symmetric
  // operand at every admissible block size, with mirror-aware element
  // access and mode-independent fill accounting.
  for (const std::uint64_t seed : {4u, 5u, 6u}) {
    for (const std::size_t bs : {1u, 2u, 4u}) {
      const linalg::Matrix a = random_block_symmetric(24, bs, seed, 0.5);
      const BlockSparseMatrix full = BlockSparseMatrix::from_dense(a, bs);
      const BlockSparseMatrix half = full.to_symmetric_half();
      EXPECT_TRUE(half.symmetric());
      EXPECT_LE(half.block_count(), full.block_count());
      EXPECT_EQ(half.logical_block_count(), full.block_count());
      EXPECT_DOUBLE_EQ(half.fill_fraction(), full.fill_fraction());
      EXPECT_LT(linalg::max_abs(half.to_dense() - a), 1e-15)
          << "bs " << bs << " seed " << seed;
      const BlockSparseMatrix back = half.to_full();
      EXPECT_FALSE(back.symmetric());
      EXPECT_EQ(back.block_count(), full.block_count());
      EXPECT_LT(linalg::max_abs(back.to_dense() - a), 1e-15);
      // Mirror-aware scalar lookup covers the implicit lower triangle.
      for (std::size_t i = 0; i < 24; i += 5) {
        for (std::size_t j = 0; j < 24; j += 3) {
          EXPECT_DOUBLE_EQ(half.get(i, j), a(i, j)) << i << "," << j;
        }
      }
      EXPECT_DOUBLE_EQ(half.trace(), full.trace());
    }
  }
}

TEST(BlockSparseSym, TransposedMicroKernelMatchesGenericReference) {
  // All four transpose combinations of gemm_micro_add_t against a plain
  // triple-loop reference, at the unrolled bs == 4 and a generic size.
  Rng rng(77);
  for (const std::size_t bs : {3u, 4u}) {
    std::vector<double> a(bs * bs), b(bs * bs);
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (auto& v : b) v = rng.uniform(-1, 1);
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        std::vector<double> c(bs * bs, 0.5), ref(bs * bs, 0.5);
        linalg::gemm_micro_add_t(bs, ta, tb, a.data(), b.data(), c.data());
        for (std::size_t i = 0; i < bs; ++i) {
          for (std::size_t j = 0; j < bs; ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < bs; ++k) {
              const double av = ta ? a[bs * k + i] : a[bs * i + k];
              const double bv = tb ? b[bs * j + k] : b[bs * k + j];
              s += av * bv;
            }
            ref[bs * i + j] += s;
          }
        }
        for (std::size_t q = 0; q < bs * bs; ++q) {
          // Not bit-exact: -march=native FP contraction fuses the kernel
          // and the reference loop differently.  Bit-reproducibility is
          // only promised (and tested) within one kernel across the
          // cold/warm SpMM paths.
          EXPECT_NEAR(c[q], ref[q], 1e-12)
              << "bs " << bs << " ta " << ta << " tb " << tb << " q " << q;
        }
      }
    }
  }
}

TEST(BlockSparseSym, MultiplySymMatchesDenseGemm) {
  // C = A * A and C = A^2 * A (commuting symmetric operands) in half
  // storage against the dense reference, across block sizes and scalar-
  // granular patterns.
  for (const std::size_t n : {8u, 16u, 48u, 92u}) {
    for (const std::size_t bs : {1u, 2u, 4u}) {
      if (n % bs != 0) continue;
      const linalg::Matrix a = random_symmetric(n, 300 + n + bs);
      const linalg::Matrix a2 = linalg::matmul(a, a);
      const BlockSparseMatrix ha =
          BlockSparseMatrix::from_dense(a, bs).to_symmetric_half();
      const BlockSparseMatrix ha2 =
          BlockSparseMatrix::from_dense(a2, bs).to_symmetric_half();
      BlockSparseMatrix out;
      BsrWorkspace ws;
      ha.multiply_sym_into(ha, 0.0, out, ws);
      EXPECT_TRUE(out.symmetric());
      EXPECT_LT(linalg::max_abs(out.to_dense() - a2), 1e-12)
          << "n " << n << " bs " << bs;
      ha2.multiply_sym_into(ha, 0.0, out, ws);
      EXPECT_LT(linalg::max_abs(out.to_dense() - linalg::matmul(a2, a)),
                1e-11)
          << "n " << n << " bs " << bs;
      // multiply() dispatches half-stored operands to the same kernel.
      const BlockSparseMatrix prod = ha.multiply(ha);
      EXPECT_TRUE(prod.symmetric());
      EXPECT_LT(linalg::max_abs(prod.to_dense() - a2), 1e-12);
    }
  }
}

TEST(BlockSparseSym, AlgebraMatchesDenseInHalfStorage) {
  const linalg::Matrix a = random_symmetric(32, 41);
  const linalg::Matrix b = random_symmetric(32, 42);
  const BlockSparseMatrix ha =
      BlockSparseMatrix::from_dense(a, 4).to_symmetric_half();
  const BlockSparseMatrix hb =
      BlockSparseMatrix::from_dense(b, 4).to_symmetric_half();
  // combine stays in half storage.
  const BlockSparseMatrix hc = ha.combine(2.0, hb, -0.5);
  EXPECT_TRUE(hc.symmetric());
  EXPECT_LT(linalg::max_abs(hc.to_dense() - (a * 2.0 + b * (-0.5))), 1e-13);
  // Specialized single-upper-pass trace of product (2x off-diagonal).
  EXPECT_NEAR(ha.trace_of_product(hb), linalg::trace_of_product(a, b), 1e-11);
  const BlockSparseMatrix fa = BlockSparseMatrix::from_dense(a, 4);
  const BlockSparseMatrix fb = BlockSparseMatrix::from_dense(b, 4);
  EXPECT_DOUBLE_EQ(ha.trace_of_product(hb), fa.trace_of_product(fb));
  // Gershgorin interval equals the full-storage one.
  const auto [hlo, hhi] = ha.gershgorin_bounds();
  const auto [flo, fhi] = fa.gershgorin_bounds();
  EXPECT_DOUBLE_EQ(hlo, flo);
  EXPECT_DOUBLE_EQ(hhi, fhi);
  // Mixed-mode algebra is rejected rather than silently wrong.
  EXPECT_THROW((void)ha.combine(1.0, fb, 1.0), Error);
  EXPECT_THROW((void)ha.trace_of_product(fb), Error);
  EXPECT_THROW((void)ha.multiply(fb), Error);
  EXPECT_THROW((void)SparseMatrix::from_block(ha), Error);
}

TEST(BlockSparseSym, TruncationDropsMirrorPairsStructurally) {
  // In half storage a dropped upper tile removes the mirror by
  // construction: the truncated product is exactly symmetric.
  const linalg::Matrix s = random_block_symmetric(24, 4, 51, 0.4);
  const BlockSparseMatrix hs =
      BlockSparseMatrix::from_dense(s, 4).to_symmetric_half();
  for (const double drop : {1e-3, 3e-2}) {
    const BlockSparseMatrix prod = hs.multiply(hs, drop);
    const linalg::Matrix d = prod.to_dense();
    for (std::size_t i = 0; i < d.rows(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(d(i, j), d(j, i)) << "drop " << drop;
      }
    }
    // Diagonal tiles survive: the trace is the untruncated one.
    EXPECT_NEAR(prod.trace(), hs.multiply(hs, 0.0).trace(), 1e-10);
  }
}

TEST(BlockSparseSym, PatternCacheSkipsSymbolicPhaseAndStaysBitIdentical) {
  const linalg::Matrix a = random_symmetric(48, 61);
  const BlockSparseMatrix ha =
      BlockSparseMatrix::from_dense(a, 4).to_symmetric_half();
  BsrWorkspace ws;
  BsrPattern pat;
  BlockSparseMatrix cold, warm;
  ha.multiply_sym_into(ha, 1e-8, cold, ws, &pat);
  EXPECT_EQ(ws.stats.symbolic_builds, 1u);
  EXPECT_EQ(ws.stats.numeric_reuses, 0u);
  EXPECT_TRUE(pat.valid);

  // Same operands: the symbolic phase is skipped and the result is
  // bit-identical (identical numeric sweep on the frozen pattern).
  ha.multiply_sym_into(ha, 1e-8, warm, ws, &pat);
  EXPECT_EQ(ws.stats.symbolic_builds, 1u);
  EXPECT_EQ(ws.stats.numeric_reuses, 1u);
  ASSERT_EQ(warm.block_count(), cold.block_count());
  EXPECT_EQ(warm.cols(), cold.cols());
  EXPECT_EQ(warm.values(), cold.values());

  // A pattern change in the operand (tile dropped by truncation) fails
  // fingerprint validation and rebuilds the entry -- never stale reuse.
  const BlockSparseMatrix hb = ha.multiply(ha, 3e-1);
  ASSERT_NE(hb.pattern_fingerprint(), ha.pattern_fingerprint());
  BlockSparseMatrix out;
  hb.multiply_sym_into(hb, 1e-8, out, ws, &pat);
  EXPECT_EQ(ws.stats.symbolic_builds, 2u);
  EXPECT_EQ(ws.stats.numeric_reuses, 1u);
  EXPECT_LT(linalg::max_abs(out.to_dense() -
                            linalg::matmul(hb.to_dense(), hb.to_dense())),
            1e-11);
}

TEST(BlockSparseSym, WorkspaceShrinkReleasesStagingMemory) {
  // Regression: staging rows grew monotonically and were never released
  // across system-size changes.  shrink() must bound the footprint by the
  // policy size while keeping the workspace usable.
  const linalg::Matrix big = random_symmetric(96, 71, 0.3);
  const BlockSparseMatrix hb =
      BlockSparseMatrix::from_dense(big, 4).to_symmetric_half();
  BsrWorkspace ws;
  BlockSparseMatrix out;
  hb.multiply_sym_into(hb, 0.0, out, ws);
  const std::size_t grown = ws.footprint_bytes();
  ASSERT_GT(grown, 0u);

  ws.shrink({2, 4});  // keep capacity for a 2-block-row (n = 8) problem
  const std::size_t shrunk = ws.footprint_bytes();
  EXPECT_LT(shrunk, grown / 4);

  // Still fully functional after the shrink (buffers regrow on demand).
  const linalg::Matrix small = random_symmetric(8, 72);
  const BlockSparseMatrix hs =
      BlockSparseMatrix::from_dense(small, 4).to_symmetric_half();
  hs.multiply_sym_into(hs, 0.0, out, ws);
  EXPECT_LT(linalg::max_abs(out.to_dense() - linalg::matmul(small, small)),
            1e-12);
  hb.multiply_sym_into(hb, 0.0, out, ws);
  EXPECT_LT(linalg::max_abs(out.to_dense() - linalg::matmul(big, big)),
            1e-11);
}

// --- mixed precision ------------------------------------------------------

TEST(BlockSparseSym, PrecisionConversionRoundTripsExactly) {
  const linalg::Matrix a = random_symmetric(24, 77);
  const BlockSparseMatrix h =
      BlockSparseMatrix::from_dense(a, 4).to_symmetric_half();

  // Copying conversion: the fp32 twin shares the structure bit-for-bit
  // (patterns are structure-only, so the fingerprint must not move).
  const BlockSparseMatrix h32 = h.to_precision(TilePrecision::kF32);
  EXPECT_EQ(h32.precision(), TilePrecision::kF32);
  EXPECT_EQ(h.precision(), TilePrecision::kF64);
  EXPECT_EQ(h32.block_count(), h.block_count());
  EXPECT_EQ(h32.cols(), h.cols());
  EXPECT_EQ(h32.pattern_fingerprint(), h.pattern_fingerprint());
  ASSERT_EQ(h32.values_f32().size(), h.values().size());
  for (std::size_t q = 0; q < h.values().size(); ++q) {
    EXPECT_EQ(h32.values_f32()[q], static_cast<float>(h.values()[q])) << q;
  }

  // f32 -> f64 is exact: the round trip lands on the rounded-to-nearest
  // values, not some second approximation.
  const BlockSparseMatrix back = h32.to_precision(TilePrecision::kF64);
  EXPECT_EQ(back.precision(), TilePrecision::kF64);
  ASSERT_EQ(back.values().size(), h.values().size());
  for (std::size_t q = 0; q < h.values().size(); ++q) {
    EXPECT_EQ(back.values()[q],
              static_cast<double>(static_cast<float>(h.values()[q])));
  }

  // In-place conversion agrees with the copying one, and the fp64 readers
  // (trace, get, to_dense) see the fp32 payloads directly.
  BlockSparseMatrix m = h;
  m.convert_precision(TilePrecision::kF32);
  EXPECT_EQ(m.precision(), TilePrecision::kF32);
  EXPECT_EQ(m.values_f32(), h32.values_f32());
  EXPECT_NEAR(m.trace(), h.trace(), 1e-5);
  EXPECT_EQ(m.get(3, 7), static_cast<double>(static_cast<float>(h.get(3, 7))));
  EXPECT_LT(linalg::max_abs(m.to_dense() - a), 1e-6);
  m.convert_precision(TilePrecision::kF64);
  EXPECT_EQ(m.precision(), TilePrecision::kF64);
  EXPECT_EQ(m.values(), back.values());
}

TEST(BlockSparseSym, Fp32MultiplyTracksFp64AndReusesPatterns) {
  const linalg::Matrix a = random_symmetric(48, 83);
  const BlockSparseMatrix h =
      BlockSparseMatrix::from_dense(a, 4).to_symmetric_half();
  BsrWorkspace ws;
  BlockSparseMatrix ref;
  h.multiply_sym_into(h, 1e-8, ref, ws);
  EXPECT_EQ(ref.precision(), TilePrecision::kF64);

  // The fp32 sweep inherits the operand precision and stays single-
  // precision close to the fp64 product (O(1) entries, 48-column rows).
  const BlockSparseMatrix h32 = h.to_precision(TilePrecision::kF32);
  BsrPattern pat;
  BlockSparseMatrix cold, warm;
  h32.multiply_sym_into(h32, 1e-8, cold, ws, &pat);
  EXPECT_EQ(cold.precision(), TilePrecision::kF32);
  EXPECT_LT(linalg::max_abs(cold.to_dense() - ref.to_dense()), 1e-4);

  // Pattern reuse covers the fp32 sweep too (patterns are structure-only
  // and shared across precisions), and warm == cold bit-for-bit.
  const std::size_t builds = ws.stats.symbolic_builds;
  h32.multiply_sym_into(h32, 1e-8, warm, ws, &pat);
  EXPECT_EQ(ws.stats.symbolic_builds, builds);
  ASSERT_EQ(warm.block_count(), cold.block_count());
  EXPECT_EQ(warm.cols(), cold.cols());
  EXPECT_EQ(warm.values_f32(), cold.values_f32());

  // simd = false swaps in the reference kernels: identical numbers (the
  // A/B switch changes speed, never results at a fixed precision).
  BlockSparseMatrix refk;
  h32.multiply_sym_into(h32, 1e-8, refk, ws, nullptr, 0.0, false);
  ASSERT_EQ(refk.block_count(), cold.block_count());
  EXPECT_EQ(refk.values_f32(), cold.values_f32());
}

TEST(BlockSparseSym, SubTileTruncationZeroesEntriesSymmetrically) {
  const linalg::Matrix a = random_symmetric(48, 29);
  const BlockSparseMatrix h =
      BlockSparseMatrix::from_dense(a, 4).to_symmetric_half();
  BsrWorkspace ws;
  BlockSparseMatrix plain, cut;
  h.multiply_sym_into(h, 1e-8, plain, ws);
  const double sub = 0.05;
  h.multiply_sym_into(h, 1e-8, cut, ws, nullptr, sub);

  // Scalar-granular truncation: entries at or below the threshold are
  // zeroed, everything above survives byte-identical to the legacy sweep,
  // and the implicit mirror keeps the result exactly symmetric.
  const linalg::Matrix dp = plain.to_dense();
  const linalg::Matrix dc = cut.to_dense();
  std::size_t zeroed = 0;
  for (std::size_t i = 0; i < dc.rows(); ++i) {
    for (std::size_t j = 0; j < dc.rows(); ++j) {
      EXPECT_EQ(dc(i, j), dc(j, i));
      if (std::fabs(dp(i, j)) <= sub) {
        EXPECT_EQ(dc(i, j), 0.0) << i << "," << j;
        if (dp(i, j) != 0.0) ++zeroed;
      } else {
        EXPECT_EQ(dc(i, j), dp(i, j)) << i << "," << j;
      }
    }
  }
  EXPECT_GT(zeroed, 0u);  // the knob actually engaged

  // sub_tile_drop = 0 is byte-identical to the historical tile-only rule
  // (the fp64 bit-identity guarantee rests on this default).
  BlockSparseMatrix legacy;
  h.multiply_sym_into(h, 1e-8, legacy, ws, nullptr, 0.0);
  EXPECT_EQ(legacy.values(), plain.values());
}

// --- SP2 on the blocked substrate ----------------------------------------

class Sp2OnBsr : public ::testing::TestWithParam<double> {};

TEST_P(Sp2OnBsr, IdempotentWithExactTraceOnDiamond) {
  // T = 0 K equilibrium lattice and a 1000 K-scale thermally distorted one
  // (0.08 A displacements): SP2 run directly on the 4x4-blocked Hamiltonian
  // must produce an idempotent density matrix with trace == n_occ and the
  // exact band energy.
  const double displacement = GetParam();
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  if (displacement > 0.0) structures::perturb(s, displacement, 1000);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});

  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const BlockSparseMatrix h = build_block_hamiltonian(m, s, table);
  const int nocc = s.total_valence_electrons() / 2;

  PurificationOptions opt;
  opt.drop_tolerance = 1e-9;
  PurificationWorkspace ws;
  const PurificationResult r = sp2_purification(h, nocc, opt, &ws);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.density.block_size(), 4u);
  // The engine runs -- and hands back -- symmetric-half storage.
  EXPECT_TRUE(h.symmetric());
  EXPECT_TRUE(r.density.symmetric());

  // Trace pins the electron count.
  EXPECT_NEAR(r.density.trace(), static_cast<double>(nocc), 1e-5);
  // Idempotency: tr(P) == tr(P^2) at convergence.
  const BlockSparseMatrix p2 = r.density.multiply(r.density);
  EXPECT_NEAR(r.density.trace() - p2.trace(), 0.0, 1e-5);
  // Band energy against exact diagonalization.
  const auto hd = h.to_dense();
  const auto occ =
      tb::occupy(linalg::eigvalsh(hd), s.total_valence_electrons(), 0.0);
  EXPECT_NEAR(r.band_energy, occ.band_energy, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Displacements, Sp2OnBsr,
                         ::testing::Values(0.0, 0.08));

}  // namespace
}  // namespace tbmd::onx
