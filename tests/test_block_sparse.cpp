// Tests for the blocked-sparse (BSR) substrate of the O(N) engine:
// CSR <-> BSR round trips, blocked SpMM against the dense GEMM reference,
// tile-threshold truncation symmetry, and SP2 purification running
// directly on BSR operands.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/linalg/blas.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/block_sparse.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/sp2.hpp"
#include "src/onx/sparse.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/util/random.hpp"

namespace tbmd::onx {
namespace {

/// Random symmetric matrix with a random *block* sparsity pattern: whole
/// bs x bs tiles are either dense or absent, mirrored across the diagonal.
linalg::Matrix random_block_symmetric(std::size_t n, std::size_t bs,
                                      std::uint64_t seed,
                                      double block_sparsity = 0.6) {
  Rng rng(seed);
  linalg::Matrix m(n, n, 0.0);
  const std::size_t nb = n / bs;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t bj = 0; bj <= bi; ++bj) {
      if (bi != bj && rng.uniform() < block_sparsity) continue;
      for (std::size_t r = 0; r < bs; ++r) {
        for (std::size_t c = 0; c < bs; ++c) {
          const double v = rng.uniform(-1, 1);
          m(bs * bi + r, bs * bj + c) = v;
          m(bs * bj + c, bs * bi + r) = v;
        }
      }
    }
  }
  return m;
}

/// Random symmetric matrix with scalar-granular sparsity (tiles straddle
/// the pattern, so conversions must zero-fill correctly).
linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed,
                                double sparsity = 0.7) {
  Rng rng(seed);
  linalg::Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (rng.uniform() > sparsity || i == j) {
        const double v = rng.uniform(-1, 1);
        m(i, j) = v;
        m(j, i) = v;
      }
    }
  }
  return m;
}

// --- conversions ---------------------------------------------------------

TEST(BlockSparse, DenseRoundTrip) {
  const linalg::Matrix a = random_block_symmetric(24, 4, 11);
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, 4);
  EXPECT_EQ(b.block_size(), 4u);
  EXPECT_EQ(b.block_rows(), 6u);
  EXPECT_LT(linalg::max_abs(b.to_dense() - a), 1e-15);
}

TEST(BlockSparse, CsrRoundTripOnRandomPatterns) {
  // to_block / from_block must be an identity for any scalar pattern and
  // any admissible block size, including tiles only partially covered by
  // the scalar pattern.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t bs : {1u, 2u, 4u}) {
      const linalg::Matrix a = random_symmetric(20, seed);
      const SparseMatrix s = SparseMatrix::from_dense(a);
      const BlockSparseMatrix b = s.to_block(bs);
      EXPECT_EQ(b.size(), 20u);
      EXPECT_LT(linalg::max_abs(b.to_dense() - a), 1e-15)
          << "bs = " << bs << " seed " << seed;
      const SparseMatrix back = SparseMatrix::from_block(b);
      // Exact zeros padding partially-filled tiles must not come back as
      // explicit CSR entries, so the round trip preserves nnz exactly.
      EXPECT_EQ(back.nnz(), s.nnz()) << "bs = " << bs << " seed " << seed;
      EXPECT_LT(linalg::max_abs(back.to_dense() - a), 1e-15);
    }
  }
}

TEST(BlockSparse, ToBlockRejectsIndivisibleDimension) {
  const SparseMatrix s = SparseMatrix::identity(10);
  EXPECT_THROW((void)s.to_block(4), Error);
}

TEST(BlockSparse, IdentityAndTrace) {
  const BlockSparseMatrix eye = BlockSparseMatrix::identity(12, 4);
  EXPECT_EQ(eye.block_count(), 3u);
  EXPECT_DOUBLE_EQ(eye.trace(), 12.0);
  EXPECT_DOUBLE_EQ(eye.get(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(eye.get(5, 6), 0.0);
  EXPECT_EQ(eye.find_block(0, 2), nullptr);
}

// --- algebra vs dense reference ------------------------------------------

TEST(BlockSparse, SpMMMatchesDenseGemm) {
  for (const std::size_t n : {4u, 16u, 48u, 92u}) {
    const linalg::Matrix a = random_symmetric(n, 100 + n);
    const linalg::Matrix b = random_symmetric(n, 200 + n);
    const std::size_t bs = n % 4 == 0 ? 4 : 2;
    const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, bs);
    const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(b, bs);
    const BlockSparseMatrix sc = sa.multiply(sb);
    EXPECT_LT(linalg::max_abs(sc.to_dense() - linalg::matmul(a, b)), 1e-12)
        << "n = " << n;
  }
}

TEST(BlockSparse, CombineMatchesDense) {
  const linalg::Matrix a = random_block_symmetric(32, 4, 5);
  const linalg::Matrix b = random_block_symmetric(32, 4, 6);
  const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, 4);
  const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(b, 4);
  const BlockSparseMatrix sc = sa.combine(2.0, sb, -0.5);
  EXPECT_LT(linalg::max_abs(sc.to_dense() - (a * 2.0 + b * (-0.5))), 1e-13);
}

TEST(BlockSparse, TraceOfProductMatchesDense) {
  const linalg::Matrix a = random_symmetric(28, 7);
  const linalg::Matrix b = random_symmetric(28, 8);
  const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, 4);
  const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(b, 4);
  EXPECT_NEAR(sa.trace_of_product(sb), linalg::trace_of_product(a, b), 1e-11);
}

TEST(BlockSparse, GershgorinBoundsContainSpectrum) {
  const linalg::Matrix a = random_symmetric(32, 9);
  const BlockSparseMatrix s = BlockSparseMatrix::from_dense(a, 4);
  const auto [lo, hi] = s.gershgorin_bounds();
  const auto vals = linalg::eigvalsh(a);
  EXPECT_GE(vals.front(), lo - 1e-12);
  EXPECT_LE(vals.back(), hi + 1e-12);
}

TEST(BlockSparse, MicroKernelMatchesGenericPath) {
  // The unrolled 4x4 fast path must agree with the generic loop bit-for-bit
  // (same operation order per output element: k-major accumulation).
  Rng rng(42);
  double a[16], b[16], c4[16] = {}, cg[16] = {};
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  linalg::gemm_micro_add(4, a, b, c4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 4; ++k) s += a[4 * i + k] * b[4 * k + j];
      cg[4 * i + j] += s;
    }
  }
  for (int q = 0; q < 16; ++q) EXPECT_DOUBLE_EQ(c4[q], cg[q]) << q;
}

// --- tile truncation ------------------------------------------------------

TEST(BlockSparse, TileTruncationDropsWholeTilesSymmetrically) {
  // Build a symmetric matrix with one strong block pair and one weak block
  // pair; truncation must drop the weak tiles on BOTH sides of the
  // diagonal (symmetric pattern preserved) and keep the strong ones.
  linalg::Matrix a(12, 12, 0.0);
  auto fill_tile = [&](std::size_t bi, std::size_t bj, double scale) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        a(4 * bi + r, 4 * bj + c) = scale * (1.0 + 0.1 * (r + c));
        a(4 * bj + c, 4 * bi + r) = scale * (1.0 + 0.1 * (r + c));
      }
    }
  };
  fill_tile(0, 0, 1.0);
  fill_tile(1, 1, 1.0);
  fill_tile(2, 2, 1.0);
  fill_tile(0, 1, 0.5);    // strong: stays
  fill_tile(1, 2, 1e-9);   // weak: dropped whole
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, 4, 1e-6);
  EXPECT_NE(b.find_block(0, 1), nullptr);
  EXPECT_NE(b.find_block(1, 0), nullptr);
  EXPECT_EQ(b.find_block(1, 2), nullptr);
  EXPECT_EQ(b.find_block(2, 1), nullptr);
  EXPECT_EQ(b.find_block(0, 2), nullptr);
  EXPECT_EQ(b.block_count(), 5u);

  // The same symmetry must hold through combine() and multiply() of
  // symmetric operands: pattern and values stay exactly symmetric.
  const linalg::Matrix s = random_block_symmetric(24, 4, 31, 0.4);
  const BlockSparseMatrix sb = BlockSparseMatrix::from_dense(s, 4);
  for (const double drop : {0.0, 1e-3, 3e-2}) {
    const BlockSparseMatrix prod = sb.multiply(sb, drop);
    const linalg::Matrix d = prod.to_dense();
    for (std::size_t i = 0; i < d.rows(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(d(i, j), d(j, i)) << "drop " << drop;
      }
    }
    const BlockSparseMatrix sum = sb.combine(1.0, prod, -0.25, drop);
    const linalg::Matrix ds = sum.to_dense();
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(ds(i, j), ds(j, i)) << "drop " << drop;
      }
    }
  }
}

TEST(BlockSparse, DiagonalTilesSurviveTruncation) {
  linalg::Matrix a(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) = 1e-9;  // tiny but nonzero
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, 4, 1e-3);
  EXPECT_NEAR(b.trace(), 8e-9, 1e-20);  // trace exact despite truncation
}

TEST(BlockSparse, MultiplyIntoReusesWorkspace) {
  const linalg::Matrix a = random_block_symmetric(32, 4, 17, 0.5);
  const BlockSparseMatrix sa = BlockSparseMatrix::from_dense(a, 4);
  BlockSparseMatrix out;
  BsrWorkspace ws;
  sa.multiply_into(sa, 0.0, out, ws);
  const linalg::Matrix ref = linalg::matmul(a, a);
  EXPECT_LT(linalg::max_abs(out.to_dense() - ref), 1e-12);
  // Second call into the same buffers must give the same result.
  sa.multiply_into(sa, 0.0, out, ws);
  EXPECT_LT(linalg::max_abs(out.to_dense() - ref), 1e-12);
  EXPECT_THROW(sa.multiply_into(sa, 0.0, const_cast<BlockSparseMatrix&>(sa), ws),
               Error);
}

// --- SP2 on the blocked substrate ----------------------------------------

class Sp2OnBsr : public ::testing::TestWithParam<double> {};

TEST_P(Sp2OnBsr, IdempotentWithExactTraceOnDiamond) {
  // T = 0 K equilibrium lattice and a 1000 K-scale thermally distorted one
  // (0.08 A displacements): SP2 run directly on the 4x4-blocked Hamiltonian
  // must produce an idempotent density matrix with trace == n_occ and the
  // exact band energy.
  const double displacement = GetParam();
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  if (displacement > 0.0) structures::perturb(s, displacement, 1000);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});

  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const BlockSparseMatrix h = build_block_hamiltonian(m, s, table);
  const int nocc = s.total_valence_electrons() / 2;

  PurificationOptions opt;
  opt.drop_tolerance = 1e-9;
  PurificationWorkspace ws;
  const PurificationResult r = sp2_purification(h, nocc, opt, &ws);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.density.block_size(), 4u);

  // Trace pins the electron count.
  EXPECT_NEAR(r.density.trace(), static_cast<double>(nocc), 1e-5);
  // Idempotency: tr(P) == tr(P^2) at convergence.
  const BlockSparseMatrix p2 = r.density.multiply(r.density);
  EXPECT_NEAR(r.density.trace() - p2.trace(), 0.0, 1e-5);
  // Band energy against exact diagonalization.
  const auto hd = h.to_dense();
  const auto occ =
      tb::occupy(linalg::eigvalsh(hd), s.total_valence_electrons(), 0.0);
  EXPECT_NEAR(r.band_energy, occ.band_energy, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Displacements, Sp2OnBsr,
                         ::testing::Values(0.0, 0.08));

}  // namespace
}  // namespace tbmd::onx
