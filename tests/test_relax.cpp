// Tests for structural relaxation (FIRE and conjugate gradients).

#include <gtest/gtest.h>

#include <cmath>

#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/relax/relax.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/tb_calculator.hpp"

namespace tbmd::relax {
namespace {

TEST(Fire, RecoversLennardJonesDimerMinimum) {
  potentials::LennardJonesParams p;
  p.shift_energy = false;
  potentials::LennardJonesCalculator calc(p);
  System s = structures::dimer(Element::Ar, 4.3);  // stretched

  RelaxOptions opt;
  opt.force_tolerance = 1e-6;
  const RelaxResult r = fire_relax(s, calc, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(s.distance(0, 1), std::pow(2.0, 1.0 / 6.0) * p.sigma, 1e-4);
  EXPECT_NEAR(r.energy, -p.epsilon, 1e-7);
}

TEST(Cg, RecoversLennardJonesDimerMinimum) {
  potentials::LennardJonesParams p;
  p.shift_energy = false;
  potentials::LennardJonesCalculator calc(p);
  System s = structures::dimer(Element::Ar, 3.3);  // compressed

  RelaxOptions opt;
  opt.force_tolerance = 1e-6;
  const RelaxResult r = cg_relax(s, calc, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(s.distance(0, 1), std::pow(2.0, 1.0 / 6.0) * p.sigma, 1e-4);
}

class RelaxPerturbedCrystal : public ::testing::TestWithParam<bool> {};

TEST_P(RelaxPerturbedCrystal, RestoresSiliconDiamond) {
  const bool use_fire = GetParam();
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  const double e_perfect = calc.compute(s).energy;
  structures::perturb(s, 0.12, 51);
  const double e_messy = calc.compute(s).energy;
  ASSERT_GT(e_messy, e_perfect + 0.1);

  RelaxOptions opt;
  opt.force_tolerance = 5e-3;
  opt.max_iterations = 600;
  const RelaxResult r =
      use_fire ? fire_relax(s, calc, opt) : cg_relax(s, calc, opt);
  EXPECT_TRUE(r.converged) << (use_fire ? "fire" : "cg");
  EXPECT_NEAR(r.energy, e_perfect, 0.05);
  EXPECT_LT(r.max_force, opt.force_tolerance);
}

INSTANTIATE_TEST_SUITE_P(Minimizers, RelaxPerturbedCrystal,
                         ::testing::Values(true, false));

TEST(Fire, RelaxedC60DevelopsTwoBondLengths) {
  // Real C60 has short (6:6 ring fusion) ~1.40 and long (6:5) ~1.45 bonds;
  // relaxing the uniform truncated icosahedron with the TB model must
  // split the bond distribution.
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  System s = structures::c60(Element::C, 1.44);
  RelaxOptions opt;
  opt.force_tolerance = 5e-3;
  opt.max_iterations = 800;
  const RelaxResult r = fire_relax(s, calc, opt);
  EXPECT_TRUE(r.converged);

  // Collect bond lengths.
  std::vector<double> bonds;
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      const double d = s.distance(i, j);
      if (d < 1.7) bonds.push_back(d);
    }
  }
  ASSERT_EQ(bonds.size(), 90u);  // cage intact
  const auto [mn, mx] = std::minmax_element(bonds.begin(), bonds.end());
  EXPECT_GT(*mx - *mn, 0.01);  // two distinct bond classes
  EXPECT_GT(*mn, 1.33);
  EXPECT_LT(*mx, 1.55);
}

TEST(Fire, FrozenAtomsDoNotRelax) {
  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.4;
  potentials::LennardJonesCalculator calc(p);
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  structures::perturb(s, 0.2, 53);
  s.set_frozen(1, true);
  const Vec3 pinned = s.positions()[1];
  RelaxOptions opt;
  opt.force_tolerance = 1e-3;
  (void)fire_relax(s, calc, opt);
  EXPECT_EQ(s.positions()[1], pinned);
}

TEST(Relax, ReportsForceCallsAndIterations) {
  potentials::LennardJonesCalculator calc;
  System s = structures::dimer(Element::Ar, 4.0);
  const RelaxResult r = fire_relax(s, calc);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GE(r.force_calls, r.iterations);
}

TEST(Relax, AlreadyConvergedReturnsImmediately) {
  potentials::LennardJonesParams p;
  p.shift_energy = false;
  potentials::LennardJonesCalculator calc(p);
  System s = structures::dimer(Element::Ar, std::pow(2.0, 1.0 / 6.0) * p.sigma);
  RelaxOptions opt;
  opt.force_tolerance = 1e-3;
  const RelaxResult r = cg_relax(s, calc, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
}

TEST(Relax, EnergyNeverIncreasesUnderCg) {
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  System s = structures::c60();
  structures::perturb(s, 0.08, 59);
  double prev = calc.compute(s).energy;

  // Run CG in short bursts and check monotonic energy decrease.
  for (int burst = 0; burst < 4; ++burst) {
    RelaxOptions opt;
    opt.force_tolerance = 1e-8;  // force it to use all iterations
    opt.max_iterations = 5;
    const RelaxResult r = cg_relax(s, calc, opt);
    EXPECT_LE(r.energy, prev + 1e-9);
    prev = r.energy;
  }
}

}  // namespace
}  // namespace tbmd::relax
