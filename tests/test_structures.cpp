// Tests for the structure builders: lattices, graphene, nanotubes, C60.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/analysis/bonds.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/structures/nanotube.hpp"
#include "src/util/error.hpp"

namespace tbmd {
namespace {

TEST(Dimer, GeometryAndSpecies) {
  const System s = structures::dimer(Element::C, 1.3);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s.distance(0, 1), 1.3, 1e-12);
  EXPECT_EQ(s.species()[0], Element::C);
  EXPECT_FALSE(s.cell().periodic());
}

TEST(Chain, SpacingAndCount) {
  const System s = structures::chain(Element::Si, 5, 2.2);
  ASSERT_EQ(s.size(), 5u);
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_NEAR(s.distance(i, i + 1), 2.2, 1e-12);
  }
}

TEST(Diamond, AtomCountAndDensity) {
  const double a = 3.567;
  const System s = structures::diamond(Element::C, a, 2, 3, 1);
  EXPECT_EQ(s.size(), 8u * 2 * 3 * 1);
  EXPECT_NEAR(s.cell().volume(), a * a * a * 6.0, 1e-9);
}

TEST(Diamond, EveryAtomHasFourFirstNeighbors) {
  const double a = 5.431;
  const System s = structures::diamond(Element::Si, a, 2, 2, 2);
  const double bond = std::sqrt(3.0) / 4.0 * a;
  const auto coord = analysis::coordination_numbers(s, bond + 0.15);
  for (const int c : coord) EXPECT_EQ(c, 4);
}

TEST(Diamond, BondLengthIsSqrt3Over4A) {
  const double a = 3.567;
  const System s = structures::diamond(Element::C, a, 2, 2, 2);
  const double bond = analysis::mean_bond_length(s, 1.7);
  EXPECT_NEAR(bond, std::sqrt(3.0) / 4.0 * a, 1e-9);
}

TEST(Fcc, AtomCountAndTwelveNeighbors) {
  const double a = 5.26;
  const System s = structures::fcc(Element::Ar, a, 2, 2, 2);
  EXPECT_EQ(s.size(), 4u * 8);
  const double nn = a / std::sqrt(2.0);
  const auto coord = analysis::coordination_numbers(s, nn + 0.2);
  for (const int c : coord) EXPECT_EQ(c, 12);
}

TEST(Graphene, ThreeCoordinatedHoneycomb) {
  const System s = structures::graphene(Element::C, 1.42, 3, 3);
  EXPECT_EQ(s.size(), 4u * 9);
  const auto coord = analysis::coordination_numbers(s, 1.6);
  for (const int c : coord) EXPECT_EQ(c, 3);
  // All bonds are the requested length.
  EXPECT_NEAR(analysis::mean_bond_length(s, 1.6), 1.42, 1e-9);
}

TEST(Graphene, CellIsPeriodicInPlaneOnly) {
  const System s = structures::graphene(Element::C, 1.42, 2, 2);
  EXPECT_TRUE(s.cell().periodic(0));
  EXPECT_TRUE(s.cell().periodic(1));
  EXPECT_FALSE(s.cell().periodic(2));
}

TEST(Nanotube, InfoMatchesStandardFormulas) {
  // (10,0) zig-zag with the graphene bond 1.42: R = sqrt(3)*1.42*10/(2 pi).
  const auto info = structures::nanotube_info(10, 0, 1.42);
  EXPECT_NEAR(info.radius, std::sqrt(3.0) * 1.42 * 10.0 / (2.0 * M_PI), 1e-9);
  EXPECT_NEAR(info.translation, 3.0 * 1.42, 1e-9);
  EXPECT_EQ(info.atoms_per_cell, 40u);

  // (5,5) arm-chair: |T| = sqrt(3) d.
  const auto arm = structures::nanotube_info(5, 5, 1.42);
  EXPECT_NEAR(arm.translation, std::sqrt(3.0) * 1.42, 1e-9);
  EXPECT_EQ(arm.atoms_per_cell, 20u);
}

class NanotubeIndices
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NanotubeIndices, RollingProducesExpectedCountRadiusAndBonds) {
  const auto [n, m] = GetParam();
  const double bond = 1.42;
  const int cells = 2;
  const System s = structures::nanotube(Element::C, n, m, bond, cells,
                                        /*periodic=*/false);
  const auto info = structures::nanotube_info(n, m, bond);
  EXPECT_EQ(s.size(), info.atoms_per_cell * cells);

  // Every atom sits on the cylinder.
  for (const Vec3& r : s.positions()) {
    EXPECT_NEAR(std::hypot(r.x, r.y), info.radius, 1e-9);
  }

  // Interior atoms are 3-coordinated (ends of an open tube are not).
  const auto coord = analysis::coordination_numbers(s, bond * 1.2);
  int three = 0;
  for (const int c : coord) {
    EXPECT_LE(c, 3);
    three += (c == 3);
  }
  EXPECT_GT(three, static_cast<int>(s.size()) / 3);
}

INSTANTIATE_TEST_SUITE_P(Chiralities, NanotubeIndices,
                         ::testing::Values(std::make_tuple(10, 0),
                                           std::make_tuple(5, 5),
                                           std::make_tuple(6, 6),
                                           std::make_tuple(8, 0),
                                           std::make_tuple(6, 3)));

TEST(Nanotube, PeriodicTubeIsFullyThreeCoordinated) {
  // 2 cells of (10,0): length 8.52 A, enough for the cutoff precondition.
  const System s =
      structures::nanotube(Element::C, 10, 0, 1.42, 2, /*periodic=*/true);
  EXPECT_TRUE(s.cell().periodic(2));
  EXPECT_FALSE(s.cell().periodic(0));
  const auto coord = analysis::coordination_numbers(s, 1.42 * 1.2);
  for (const int c : coord) EXPECT_EQ(c, 3);
}

TEST(C60, SixtyAtomsNinetyBondsThreeCoordination) {
  const System s = structures::c60();
  ASSERT_EQ(s.size(), 60u);
  EXPECT_EQ(analysis::bond_count(s, 1.44 * 1.15), 90u);
  const auto coord = analysis::coordination_numbers(s, 1.44 * 1.15);
  for (const int c : coord) EXPECT_EQ(c, 3);
}

TEST(C60, AllAtomsOnCommonSphere) {
  const System s = structures::c60(Element::C, 1.44);
  const double r0 = norm(s.positions()[0]);
  for (const Vec3& r : s.positions()) EXPECT_NEAR(norm(r), r0, 1e-9);
  // C60 radius is about 3.55 A for bond 1.44 in the uniform-edge geometry.
  EXPECT_NEAR(r0, 3.55, 0.15);
}

TEST(RandomGas, RespectsDensityAndDeterminism) {
  const System a = structures::random_gas(Element::Ar, 64, 0.02, 2.0, 7);
  const System b = structures::random_gas(Element::Ar, 64, 0.02, 2.0, 7);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_NEAR(a.cell().volume(), 64.0 / 0.02, 1e-6);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions()[i], b.positions()[i]);  // same seed, same gas
  }
  const System c = structures::random_gas(Element::Ar, 64, 0.02, 2.0, 8);
  EXPECT_NE(a.positions()[0], c.positions()[0]);
}

TEST(RandomGas, MinimumSeparationHonored) {
  const System s = structures::random_gas(Element::Ar, 27, 0.015, 2.5, 11);
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      EXPECT_GT(s.distance(i, j), 2.5 * 0.99);
    }
  }
}

TEST(Perturb, OnlyMobileAtomsMoveAndDeterministic) {
  System a = structures::diamond(Element::Si, 5.431, 1, 1, 2);
  a.set_frozen(0, true);
  const Vec3 frozen_pos = a.positions()[0];
  System b = a;
  structures::perturb(a, 0.1, 42);
  structures::perturb(b, 0.1, 42);
  EXPECT_EQ(a.positions()[0], frozen_pos);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions()[i], b.positions()[i]);
  }
  EXPECT_GT(norm(a.positions()[1] - frozen_pos), 0.0);
}

TEST(Substitute, ChangesSpeciesAndMass) {
  System s = structures::diamond(Element::C, 3.567, 1, 1, 2);
  const double mc = s.mass(3);
  structures::substitute(s, {3}, Element::Si);
  EXPECT_EQ(s.species()[3], Element::Si);
  EXPECT_GT(s.mass(3), mc);
}

TEST(Vacancy, RemovesOneAtomAndKeepsState) {
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  s.velocities()[5] = {1.0, 2.0, 3.0};
  s.set_frozen(7, true);
  const System v = structures::with_vacancy(s, 6);
  ASSERT_EQ(v.size(), s.size() - 1);
  // Atom 5 keeps its velocity; old atom 7 (now index 6) stays frozen.
  EXPECT_EQ(v.velocities()[5], (Vec3{1.0, 2.0, 3.0}));
  EXPECT_TRUE(v.frozen(6));
  EXPECT_FALSE(v.frozen(5));
  EXPECT_NEAR(v.cell().volume(), s.cell().volume(), 1e-12);
}

TEST(Vacancy, NeighborsLoseOneCoordination) {
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  const System v = structures::with_vacancy(s, 0);
  const auto hist = analysis::coordination_histogram(v, 1.7);
  EXPECT_EQ(hist[3], 4u);               // the four former neighbors
  EXPECT_EQ(hist[4], s.size() - 5);     // everyone else unchanged
}

TEST(Vacancy, OutOfRangeThrows) {
  System s = structures::dimer(Element::C, 1.4);
  EXPECT_THROW((void)structures::with_vacancy(s, 2), Error);
}

TEST(Builders, RejectBadArguments) {
  EXPECT_THROW((void)structures::diamond(Element::C, -1.0, 1, 1, 1), Error);
  EXPECT_THROW((void)structures::diamond(Element::C, 3.5, 0, 1, 1), Error);
  EXPECT_THROW((void)structures::dimer(Element::C, 0.0), Error);
  EXPECT_THROW((void)structures::nanotube(Element::C, 0, 0, 1.42, 1, false),
               Error);
  EXPECT_THROW((void)structures::random_gas(Element::Ar, 0, 0.01, 1.0, 1),
               Error);
}

}  // namespace
}  // namespace tbmd
