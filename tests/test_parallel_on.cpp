// Tests for the parallel O(N) engine: the spatial domain partition
// helper, thread-count invariance of the sharded purification pipeline
// (energies and forces must be bit-identical at any OMP_NUM_THREADS, the
// contract the checkpoint/restart guarantees rest on), layout equivalence
// of the reorder_domains path, and the cached-spectral-bounds hoist.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/parallel.hpp"
#include "src/util/partition.hpp"

namespace tbmd::onx {
namespace {

/// Restores the ambient OpenMP team size on scope exit, so the
/// thread-sweeping tests cannot leak a modified team into later tests.
struct ThreadGuard {
  int saved = par::max_threads();
  ~ThreadGuard() { par::set_num_threads(saved); }
};

System perturbed_diamond(int cells, double amplitude = 0.03,
                         std::uint64_t seed = 17) {
  System s = structures::diamond(Element::C, 3.567, cells, cells, cells);
  structures::perturb(s, amplitude, seed);
  return s;
}

void expect_partition_valid(const par::DomainPartition& p, std::size_t n) {
  ASSERT_EQ(p.order.size(), n);
  ASSERT_EQ(p.rank.size(), n);
  ASSERT_GE(p.domain_ptr.size(), 2u);
  EXPECT_EQ(p.domain_ptr.front(), 0u);
  EXPECT_EQ(p.domain_ptr.back(), n);
  for (std::size_t d = 0; d + 1 < p.domain_ptr.size(); ++d) {
    EXPECT_LT(p.domain_ptr[d], p.domain_ptr[d + 1]) << "empty domain " << d;
  }
  // order is a permutation and rank is its inverse.
  std::vector<std::uint32_t> sorted(p.order);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(sorted[k], k);
    EXPECT_EQ(p.rank[p.order[k]], k);
  }
}

// --- partition helper ----------------------------------------------------

TEST(Partition, EvenDomainsAreIdentityChunks) {
  const par::DomainPartition p = par::even_domains(10, 3);
  expect_partition_valid(p, 10);
  EXPECT_TRUE(p.identity);
  EXPECT_EQ(p.domains(), 3u);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(p.order[k], k);
}

TEST(Partition, SpatialDomainsAreADeterministicPermutation) {
  const System s = perturbed_diamond(3);  // 216 atoms
  const par::DomainPartition p =
      par::spatial_domains(s.positions(), s.cell(), 4);
  expect_partition_valid(p, s.size());
  EXPECT_GE(p.domains(), 2u);

  // Pure function of the inputs: a second call is equal field-for-field.
  const par::DomainPartition q =
      par::spatial_domains(s.positions(), s.cell(), 4);
  EXPECT_EQ(p.order, q.order);
  EXPECT_EQ(p.rank, q.rank);
  EXPECT_EQ(p.domain_ptr, q.domain_ptr);
  EXPECT_EQ(p.identity, q.identity);

  // Domains are spatially coherent: the bounding box of one domain's
  // atoms must be measurably smaller than the whole box (contiguous cuts
  // of the grid-cell sweep group nearby cells).
  const auto& pos = s.positions();
  const auto bbox_volume = [&](std::size_t begin, std::size_t end,
                               bool permuted) {
    Vec3 lo{1e300, 1e300, 1e300};
    Vec3 hi{-1e300, -1e300, -1e300};
    for (std::size_t k = begin; k < end; ++k) {
      const Vec3& r = pos[permuted ? p.order[k] : k];
      lo.x = std::min(lo.x, r.x);
      lo.y = std::min(lo.y, r.y);
      lo.z = std::min(lo.z, r.z);
      hi.x = std::max(hi.x, r.x);
      hi.y = std::max(hi.y, r.y);
      hi.z = std::max(hi.z, r.z);
    }
    return (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
  };
  const double whole = bbox_volume(0, s.size(), false);
  double mean_volume = 0.0;
  for (std::size_t d = 0; d < p.domains(); ++d) {
    mean_volume += bbox_volume(p.domain_ptr[d], p.domain_ptr[d + 1], true);
  }
  mean_volume /= static_cast<double>(p.domains());
  EXPECT_LT(mean_volume, 0.75 * whole);
}

TEST(Partition, TinySystemsDegenerateToOneIdentityDomain) {
  System s = structures::diamond(Element::C, 3.567, 1, 1, 1);  // 8 atoms
  const par::DomainPartition p =
      par::spatial_domains(s.positions(), s.cell(), 8);  // 8 < 2 * 8
  expect_partition_valid(p, s.size());
  EXPECT_TRUE(p.identity);
  EXPECT_EQ(p.domains(), 1u);
}

TEST(Partition, HaloRowsFlagExactlyTheSeamCrossingRows) {
  // Hand-built chain pattern on 6 rows, 2 domains [0,3) and [3,6).  The
  // symmetric half stores j >= i: tile (2,3) is the only seam crosser, so
  // rows 2 and 3 are halo (3 via the implicit mirror) and nothing else.
  const par::DomainPartition part = par::even_domains(6, 2);
  const std::vector<std::size_t> row_ptr = {0, 2, 4, 6, 8, 9, 10};
  const std::vector<std::uint32_t> cols = {0, 1, 1, 2, 2, 3, 3, 4, 4, 5};
  const std::vector<std::uint8_t> halo = par::halo_rows(part, row_ptr, cols);
  ASSERT_EQ(halo.size(), 6u);
  const std::vector<std::uint8_t> want = {0, 0, 1, 1, 0, 0};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(static_cast<int>(halo[i]), static_cast<int>(want[i]))
        << "row " << i;
  }
}

// --- thread-count invariance ---------------------------------------------

struct StepRecord {
  double cold_energy = 0.0;
  double warm_energy = 0.0;
  std::vector<Vec3> cold_forces;
  std::vector<Vec3> warm_forces;
};

/// One cold + one warm step of a fresh calculator on `s` at `threads`.
StepRecord run_steps(const System& s, int threads, const OrderNOptions& opt) {
  par::set_num_threads(threads);
  const tb::TbModel m = tb::xwch_carbon();
  OrderNCalculator calc(m, opt);
  StepRecord rec;
  const ForceResult cold = calc.compute(s);
  rec.cold_energy = cold.energy;
  rec.cold_forces = cold.forces;
  const ForceResult warm = calc.compute(s);
  rec.warm_energy = warm.energy;
  rec.warm_forces = warm.forces;
  EXPECT_TRUE(calc.last_purification().converged);
  return rec;
}

void expect_records_bit_identical(const StepRecord& a, const StepRecord& b,
                                  const std::string& label) {
  EXPECT_EQ(a.cold_energy, b.cold_energy) << label;
  EXPECT_EQ(a.warm_energy, b.warm_energy) << label;
  ASSERT_EQ(a.cold_forces.size(), b.cold_forces.size());
  for (std::size_t i = 0; i < a.cold_forces.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(a.cold_forces[i][c], b.cold_forces[i][c])
          << label << " cold atom " << i << " component " << c;
      EXPECT_EQ(a.warm_forces[i][c], b.warm_forces[i][c])
          << label << " warm atom " << i << " component " << c;
    }
  }
}

TEST(ParallelOn, StepsAreBitIdenticalAcrossThreadCounts) {
  // The hard invariant behind every checkpoint guarantee: the same binary
  // must produce the same bits at OMP_NUM_THREADS = 1, 2, 4 (even
  // oversubscribed on fewer cores).  Exercised on the default scheduling
  // path; EXPECT_EQ on doubles is exact equality.
  const ThreadGuard guard;
  const System s = perturbed_diamond(3);  // 216 atoms
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  const StepRecord ref = run_steps(s, 1, opt);
  for (const int threads : {2, 4}) {
    const StepRecord rec = run_steps(s, threads, opt);
    expect_records_bit_identical(ref, rec,
                                 "threads=" + std::to_string(threads));
  }
}

TEST(ParallelOn, ShardedStepsAreBitIdenticalAcrossThreadCounts) {
  // Same invariant with the domain-sharded sweeps engaged (explicit
  // domains = 4): sharding is a scheduling-level change, so the domain
  // count must not leak into the numbers either.
  const ThreadGuard guard;
  const System s = perturbed_diamond(3);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  opt.domains = 4;
  const StepRecord ref = run_steps(s, 1, opt);
  for (const int threads : {2, 4}) {
    const StepRecord rec = run_steps(s, threads, opt);
    expect_records_bit_identical(
        ref, rec, "sharded threads=" + std::to_string(threads));
  }
}

TEST(ParallelOn, ShardedMatchesUnshardedBitwise) {
  const ThreadGuard guard;
  par::set_num_threads(2);
  const System s = perturbed_diamond(3);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  opt.domains = 1;
  const StepRecord plain = run_steps(s, 2, opt);
  opt.domains = 4;
  const StepRecord sharded = run_steps(s, 2, opt);
  expect_records_bit_identical(plain, sharded, "domains=4 vs domains=1");

  // And the calculator actually reports the sharded decomposition.
  const tb::TbModel m = tb::xwch_carbon();
  OrderNCalculator calc(m, opt);
  (void)calc.compute(s);
  EXPECT_EQ(calc.domain_stats().domains, 4u);
  EXPECT_EQ(calc.domain_stats().halo + calc.domain_stats().interior, s.size());
  EXPECT_FALSE(calc.domain_stats().reordered);
}

// --- spatial reordering --------------------------------------------------

TEST(ParallelOn, PermutedAssemblyStoresTransposedTiles) {
  // Reversing the atom order flips every stored bond (i < j becomes
  // p(j) < p(i)), so the permuted Hamiltonian must hold the transpose of
  // each original tile: the Slater-Koster block of -d is B(d)^T.  Bonds
  // through a periodic image associate the image shift differently in the
  // reversed frame and the radial scaling amplifies that last-ulp length
  // difference, so the comparison is a tight absolute tolerance (~1e-12
  // on O(1-10) eV entries), nine orders below the force-accuracy budget.
  const tb::TbModel m = tb::xwch_carbon();
  const System s = perturbed_diamond(2, 0.04, 91);  // 64 atoms
  const std::size_t n = s.size();
  System rev(s.cell());
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = n - 1 - k;
    rev.add_atom(s.species()[src], s.positions()[src]);
  }

  const auto block_h = [&](const System& sys) {
    NeighborList list;
    list.build(sys.positions(), sys.cell(), {m.cutoff(), 0.5});
    tb::BondTable table;
    table.build(m, sys, list, tb::BondTable::Mode::kBlocks);
    return build_block_hamiltonian(m, sys, table);
  };
  const BlockSparseMatrix h = block_h(s);
  const BlockSparseMatrix hr = block_h(rev);
  ASSERT_EQ(h.block_count(), hr.block_count());

  const auto perm = [n](std::size_t i) { return n - 1 - i; };
  for (std::size_t bi = 0; bi < n; ++bi) {
    const std::size_t bs = h.row_dim(bi);
    for (std::size_t k = h.row_ptr()[bi]; k < h.row_ptr()[bi + 1]; ++k) {
      const std::size_t bj = h.cols()[k];
      const double* tile = h.block(k);
      if (bi == bj) {
        const double* mirror = hr.find_block(perm(bi), perm(bi));
        ASSERT_NE(mirror, nullptr);
        for (std::size_t e = 0; e < bs * bs; ++e) {
          EXPECT_NEAR(tile[e], mirror[e], 1e-12) << "diag tile " << bi;
        }
        continue;
      }
      // Off-diagonal (bi, bj) with bi < bj: reversal flips the ordering
      // (perm(bj) < perm(bi)), so the reversed system stores this bond
      // seen from the other end -- the exact transpose of the tile.
      const double* mirror = hr.find_block(perm(bj), perm(bi));
      ASSERT_NE(mirror, nullptr) << "tile (" << bi << "," << bj << ")";
      for (std::size_t r = 0; r < bs; ++r) {
        for (std::size_t c = 0; c < bs; ++c) {
          EXPECT_NEAR(tile[r * bs + c], mirror[c * bs + r], 1e-12)
              << "tile (" << bi << "," << bj << ") entry " << r << "," << c;
        }
      }
    }
  }
}

TEST(ParallelOn, ReorderedDomainsMatchThePlainLayout) {
  // reorder_domains permutes the working layout and scatters the forces
  // back; the physics must be layout-independent.  The two layouts sum in
  // different orders, so this is a tolerance check (far below the 1.5e-3
  // eV/A force-accuracy budget), not a bitwise one.
  const ThreadGuard guard;
  par::set_num_threads(2);
  const tb::TbModel m = tb::xwch_carbon();
  const System s = perturbed_diamond(3);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-7;
  OrderNCalculator plain(m, opt);
  const ForceResult a = plain.compute(s);

  opt.domains = 4;
  opt.reorder_domains = true;
  OrderNCalculator reordered(m, opt);
  const ForceResult b = reordered.compute(s);
  EXPECT_TRUE(reordered.last_purification().converged);
  EXPECT_EQ(reordered.domain_stats().domains, 4u);

  EXPECT_NEAR(a.energy, b.energy, 1e-7 * static_cast<double>(s.size()));
  double worst = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst = std::max(worst, norm(a.forces[i] - b.forces[i]));
  }
  EXPECT_LT(worst, 1e-5);

  // Deterministic within the mode: an identical second calculator
  // reproduces the reordered run bit-for-bit (what checkpoint resume
  // relies on).
  OrderNCalculator again(m, opt);
  const ForceResult c = again.compute(s);
  EXPECT_EQ(b.energy, c.energy);
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (int comp = 0; comp < 3; ++comp) {
      EXPECT_EQ(b.forces[i][comp], c.forces[i][comp]) << "atom " << i;
    }
  }
}

TEST(ParallelOn, ReorderScattersForcesBackToCallerOrder) {
  // Feed the calculator a scrambled copy of the system: forces must come
  // back in the caller's atom order, not the internal domain order.
  const ThreadGuard guard;
  par::set_num_threads(2);
  const tb::TbModel m = tb::xwch_carbon();
  const System s = perturbed_diamond(3);
  const std::size_t n = s.size();
  System rev(s.cell());
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = n - 1 - k;
    rev.add_atom(s.species()[src], s.positions()[src]);
  }

  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-7;
  opt.domains = 4;
  opt.reorder_domains = true;
  OrderNCalculator calc(m, opt);
  const ForceResult fr = calc.compute(rev);
  EXPECT_TRUE(calc.domain_stats().reordered);

  OrderNCalculator plain(m, OrderNOptions{});
  const ForceResult ref = plain.compute(s);
  double worst = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    worst = std::max(worst, norm(fr.forces[k] - ref.forces[n - 1 - k]));
  }
  EXPECT_LT(worst, 1e-5);
}

// --- cached spectral bounds ----------------------------------------------

TEST(ParallelOn, CachedBoundsRefreshOnceAcrossWarmSteps) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = perturbed_diamond(2, 0.03, 29);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-7;
  opt.cache_spectral_bounds = true;
  OrderNCalculator calc(m, opt);

  (void)calc.compute(s);
  EXPECT_EQ(calc.bounds_refreshes(), 1u);

  // Warm steps with small position drift ride the widened enclosure
  // instead of re-running Gershgorin.
  for (int step = 0; step < 3; ++step) {
    for (Vec3& r : s.positions()) r.x += 1e-4;
    const ForceResult fr = calc.compute(s);
    EXPECT_TRUE(calc.last_purification().converged);
    (void)fr;
  }
  EXPECT_EQ(calc.bounds_refreshes(), 1u);

  // The widened interval must still enclose the exact Gershgorin bounds
  // of the current Hamiltonian (the rigor condition: no eigenvalue moves
  // farther than ||dH||_F).
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.5});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const linalg::SpectralBounds exact =
      build_block_hamiltonian(m, s, table).gershgorin_bounds();
  const linalg::SpectralBounds& used = calc.last_spectral_bounds();
  EXPECT_LE(used.lo, exact.lo);
  EXPECT_GE(used.hi, exact.hi);

  // And the accuracy is unaffected: a no-cache calculator on the same
  // positions agrees to well below the force-accuracy budget.
  OrderNOptions base = opt;
  base.cache_spectral_bounds = false;
  OrderNCalculator ref(m, base);
  const ForceResult want = ref.compute(s);
  const ForceResult got = calc.compute(s);
  EXPECT_NEAR(want.energy, got.energy, 1e-7 * static_cast<double>(s.size()));
  double worst = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst = std::max(worst, norm(want.forces[i] - got.forces[i]));
  }
  EXPECT_LT(worst, 1e-5);
}

TEST(ParallelOn, CachedBoundsRefreshOnTopologyChange) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = perturbed_diamond(2, 0.0, 1);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  opt.cache_spectral_bounds = true;
  OrderNCalculator calc(m, opt);
  (void)calc.compute(s);
  (void)calc.compute(s);
  EXPECT_EQ(calc.bounds_refreshes(), 1u);

  s.positions()[3] += Vec3{0.9, 0.7, 0.5};  // crosses the cutoff shell
  (void)calc.compute(s);
  EXPECT_EQ(calc.bounds_refreshes(), 2u);
}

// --- mixed precision ------------------------------------------------------

TEST(ParallelOn, MixedPrecisionTracksFp64WithinForceBudget) {
  // The mixed loop runs the loose-early iterations on fp32 tiles and
  // promotes to fp64 for the tight-late ones: at tol 1e-6 on the 216-atom
  // slice the drift against the pure-fp64 engine must stay far inside the
  // 1.5e-3 eV/A force budget the MD accuracy gates are written against.
  const ThreadGuard guard;
  const System s = perturbed_diamond(3);  // 216 atoms
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  const StepRecord ref = run_steps(s, 2, opt);
  opt.purification.precision = PrecisionMode::kMixed;
  const StepRecord mix = run_steps(s, 2, opt);

  const double n = static_cast<double>(s.size());
  EXPECT_LT(std::fabs(mix.cold_energy - ref.cold_energy) / n, 1e-5);
  EXPECT_LT(std::fabs(mix.warm_energy - ref.warm_energy) / n, 1e-5);
  ASSERT_EQ(mix.cold_forces.size(), ref.cold_forces.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.cold_forces.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      worst = std::max(
          worst, std::fabs(mix.cold_forces[i][c] - ref.cold_forces[i][c]));
      worst = std::max(
          worst, std::fabs(mix.warm_forces[i][c] - ref.warm_forces[i][c]));
    }
  }
  EXPECT_LT(worst, 1.5e-3);

  // The calculator accounts for the precision split: a healthy mixed run
  // spends iterations on both sides of the promotion.
  const tb::TbModel m = tb::xwch_carbon();
  OrderNCalculator calc(m, opt);
  (void)calc.compute(s);
  const NumericsStats& st = calc.numerics_stats();
  EXPECT_GT(st.fp32_iterations, 0);
  EXPECT_GT(st.fp64_iterations, 0);
  EXPECT_NE(st.trigger, PromotionTrigger::kNone);
  EXPECT_EQ(st.promoted_at, st.fp32_iterations);

  // ... and the pure-fp64 engine reports an all-fp64 split.
  OrderNOptions pure;
  pure.purification.drop_tolerance = 1e-6;
  OrderNCalculator calc64(m, pure);
  (void)calc64.compute(s);
  EXPECT_EQ(calc64.numerics_stats().fp32_iterations, 0);
  EXPECT_GT(calc64.numerics_stats().fp64_iterations, 0);
  EXPECT_EQ(calc64.numerics_stats().trigger, PromotionTrigger::kNone);
}

TEST(ParallelOn, MixedPrecisionStepsAreBitIdenticalAcrossThreadCounts) {
  // The fp32 sweeps follow the same per-row serial-accumulation design as
  // the fp64 ones, so the thread-count invariance contract extends to the
  // mixed loop (and to sub-tile truncation) unchanged.
  const ThreadGuard guard;
  const System s = perturbed_diamond(3);
  OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  opt.purification.precision = PrecisionMode::kMixed;
  opt.purification.sub_tile = 0.5;
  const StepRecord ref = run_steps(s, 1, opt);
  for (const int threads : {2, 4}) {
    const StepRecord rec = run_steps(s, threads, opt);
    expect_records_bit_identical(ref, rec,
                                 "mixed threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace tbmd::onx
