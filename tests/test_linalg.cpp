// Tests for src/linalg: Matrix, BLAS-like kernels, Cholesky, tridiagonal.

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/linalg/cholesky.hpp"
#include "src/linalg/matrix.hpp"
#include "src/linalg/tridiagonal.hpp"
#include "src/util/error.hpp"
#include "src/util/random.hpp"

namespace tbmd::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(trace(i3), 3.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i3(2, 2), 1.0);
}

TEST(Matrix, CheckedAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), Error);
  EXPECT_THROW((void)m.at(0, 5), Error);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 3.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 1.0);
  const Matrix scaled = a * 4.0;
  EXPECT_DOUBLE_EQ(scaled(0, 1), 4.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(4, 7, 1);
  const Matrix att = transpose(transpose(a));
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
    }
  }
}

TEST(Matrix, SymmetryHelpers) {
  Matrix a = random_matrix(5, 5, 2);
  EXPECT_GT(symmetry_defect(a), 0.0);
  symmetrize(a);
  EXPECT_NEAR(symmetry_defect(a), 0.0, 1e-15);
}

TEST(Matrix, TraceOfProductMatchesExplicitProduct) {
  const Matrix a = random_symmetric(6, 3);
  const Matrix b = random_symmetric(6, 4);
  const Matrix ab = matmul(a, b);
  EXPECT_NEAR(trace_of_product(a, b), trace(ab), 1e-12);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(max_abs(a), 4.0);
}

// --- GEMM correctness against the naive triple loop -------------------

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 10 + m);
  const Matrix b = random_matrix(k, n, 20 + n);
  const Matrix c1 = matmul(a, b);
  const Matrix c2 = naive_matmul(a, b);
  EXPECT_LT(max_abs(c1 - c2), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(16, 16, 16), std::make_tuple(65, 64, 63),
                      std::make_tuple(70, 129, 40),
                      std::make_tuple(128, 128, 128)));

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW((void)matmul(a, b), Error);
}

// --- symmetric rank-k updates ------------------------------------------

class SyrkSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SyrkSizes, MatchesExplicitProductAndIsExactlySymmetric) {
  const auto [n, k] = GetParam();
  const Matrix a = random_matrix(n, k, 50 + static_cast<std::uint64_t>(n));
  Matrix c = random_matrix(n, n, 51);  // garbage: beta = 0 must overwrite
  syrk(1.0, a, 0.0, c);
  const Matrix expect = naive_matmul(a, transpose(a));
  EXPECT_LT(max_abs(c - expect), 1e-11);
  EXPECT_DOUBLE_EQ(symmetry_defect(c), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyrkSizes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(5, 3),
                      std::make_tuple(64, 64), std::make_tuple(70, 33),
                      std::make_tuple(63, 130), std::make_tuple(129, 96)));

TEST(Syrk, BetaScalesExistingSymmetricC) {
  const Matrix a = random_matrix(40, 17, 60);
  const Matrix c0 = random_symmetric(40, 61);
  Matrix c = c0;
  syrk(0.5, a, 2.0, c);
  const Matrix expect = naive_matmul(a, transpose(a));
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 40; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * c0(i, j) + 0.5 * expect(i, j), 1e-12);
    }
  }
}

TEST(Syrk, ShapeMismatchThrows) {
  const Matrix a(6, 3);
  Matrix c(5, 5);
  EXPECT_THROW(syrk(1.0, a, 0.0, c), Error);
}

TEST(Syr2k, MatchesExplicitProduct) {
  const Matrix a = random_matrix(65, 40, 70);
  const Matrix b = random_matrix(65, 40, 71);
  Matrix c(65, 65, 0.0);
  syr2k(1.5, a, b, 0.0, c);
  const Matrix expect = naive_matmul(a, transpose(b)) + naive_matmul(b, transpose(a));
  for (std::size_t i = 0; i < 65; ++i) {
    for (std::size_t j = 0; j < 65; ++j) {
      EXPECT_NEAR(c(i, j), 1.5 * expect(i, j), 1e-11);
    }
  }
  EXPECT_DOUBLE_EQ(symmetry_defect(c), 0.0);
}

TEST(Syr2k, ShapeMismatchThrows) {
  const Matrix a(6, 3), b(6, 4);
  Matrix c(6, 6);
  EXPECT_THROW(syr2k(1.0, a, b, 0.0, c), Error);
}

TEST(Syr2kLower, UpdatesTrailingSubmatrixInPlace) {
  // The blocked_tridiag use case: update the lower triangle of a trailing
  // q0-offset submatrix through raw pointers with distinct leading dims.
  const std::size_t n = 20, q0 = 7, k = 5;
  Matrix c = random_symmetric(n, 80);
  const Matrix c0 = c;
  const Matrix v = random_matrix(n, k, 81);
  const Matrix w = random_matrix(n, k, 82);
  syr2k_lower(n - q0, k, -1.0, v.row(q0), k, w.row(q0), k, c.row(q0) + q0, n);
  for (std::size_t i = q0; i < n; ++i) {
    for (std::size_t j = q0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t cc = 0; cc < k; ++cc) {
        s += v(i, cc) * w(j, cc) + w(i, cc) * v(j, cc);
      }
      EXPECT_NEAR(c(i, j), c0(i, j) - s, 1e-12) << i << "," << j;
    }
  }
  // Rows above / columns right of the trailing block are untouched.
  for (std::size_t i = 0; i < q0; ++i) {
    for (std::size_t j = 0; j < n; ++j) EXPECT_DOUBLE_EQ(c(i, j), c0(i, j));
  }
}

TEST(Gemm, AccumulateAddsScaledProduct) {
  const Matrix a = random_matrix(8, 8, 31);
  const Matrix b = random_matrix(8, 8, 32);
  Matrix c(8, 8, 1.0);
  gemm_accumulate(2.0, a, b, c);
  const Matrix expect = naive_matmul(a, b);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c(i, j), 1.0 + 2.0 * expect(i, j), 1e-12);
    }
  }
}

TEST(MatVec, MatchesManual) {
  const Matrix a = random_matrix(5, 3, 41);
  const std::vector<double> x{1.0, -2.0, 0.5};
  const auto y = matvec(a, x);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(y[i], a(i, 0) - 2.0 * a(i, 1) + 0.5 * a(i, 2), 1e-13);
  }
}

TEST(MatVec, TransposedMatchesExplicitTranspose) {
  const Matrix a = random_matrix(5, 3, 43);
  const std::vector<double> x{0.3, -1.0, 2.0, 0.1, 0.7};
  const auto y1 = matvec_transposed(a, x);
  const auto y2 = matvec(transpose(a), x);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-13);
}

TEST(Level1, DotAxpyNorm) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(norm2(x), std::sqrt(14.0));
}

// --- Cholesky ----------------------------------------------------------

TEST(Cholesky, ReconstructsFactorization) {
  // SPD matrix via A = M M^T + n I.
  const Matrix m = random_matrix(6, 6, 55);
  Matrix a = matmul(m, transpose(m));
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 6.0;
  const Matrix l = cholesky_factor(a);
  const Matrix llt = matmul(l, transpose(l));
  EXPECT_LT(max_abs(llt - a), 1e-10);
  // L is lower triangular.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix m = random_matrix(5, 5, 56);
  Matrix a = matmul(m, transpose(m));
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 5.0;
  const std::vector<double> x_true{1.0, -1.0, 2.0, 0.5, -0.25};
  const auto b = matvec(a, x_true);
  const auto x = cholesky_solve(cholesky_factor(a), b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW((void)cholesky_factor(a), Error);
}

TEST(LeastSquares, ExactForPolynomialData) {
  // Fit y = 2 - 3x + 0.5x^2 sampled without noise.
  const std::size_t npts = 9;
  Matrix design(npts, 3);
  std::vector<double> y(npts);
  for (std::size_t q = 0; q < npts; ++q) {
    const double x = -2.0 + 0.5 * static_cast<double>(q);
    design(q, 0) = 1.0;
    design(q, 1) = x;
    design(q, 2) = x * x;
    y[q] = 2.0 - 3.0 * x + 0.5 * x * x;
  }
  const auto coeff = least_squares(design, y);
  ASSERT_EQ(coeff.size(), 3u);
  EXPECT_NEAR(coeff[0], 2.0, 1e-10);
  EXPECT_NEAR(coeff[1], -3.0, 1e-10);
  EXPECT_NEAR(coeff[2], 0.5, 1e-10);
}

// --- Tridiagonal / Sturm ------------------------------------------------

TEST(Sturm, CountsEigenvaluesOfKnownMatrix) {
  // Tridiagonal with d = 2, e = -1 (discrete Laplacian, n = 4):
  // eigenvalues 2 - 2 cos(k pi / 5), k = 1..4.
  const std::vector<double> d{2, 2, 2, 2};
  const std::vector<double> e{0, -1, -1, -1};
  std::vector<double> evs;
  for (int k = 1; k <= 4; ++k) {
    evs.push_back(2.0 - 2.0 * std::cos(k * M_PI / 5.0));
  }
  EXPECT_EQ(sturm_count(d, e, 0.0), 0u);
  EXPECT_EQ(sturm_count(d, e, evs[0] + 1e-9), 1u);
  EXPECT_EQ(sturm_count(d, e, evs[2] + 1e-9), 3u);
  EXPECT_EQ(sturm_count(d, e, 10.0), 4u);
}

TEST(Sturm, BisectionEigenvaluesMatchAnalytic) {
  const std::size_t n = 12;
  std::vector<double> d(n, 2.0), e(n, -1.0);
  e[0] = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double analytic =
        2.0 - 2.0 * std::cos((k + 1) * M_PI / static_cast<double>(n + 1));
    EXPECT_NEAR(tridiagonal_eigenvalue(d, e, k), analytic, 1e-9);
  }
}

TEST(Sturm, OutOfRangeIndexThrows) {
  const std::vector<double> d{1.0, 2.0};
  const std::vector<double> e{0.0, 0.1};
  EXPECT_THROW((void)tridiagonal_eigenvalue(d, e, 2), Error);
}

}  // namespace
}  // namespace tbmd::linalg
