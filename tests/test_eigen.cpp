// Tests for the symmetric eigensolver (Householder + implicit-shift QL)
// against the Jacobi reference and analytic spectra, plus Sturm-sequence
// property checks.

#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/linalg/jacobi.hpp"
#include "src/linalg/tridiagonal.hpp"
#include "src/util/random.hpp"

namespace tbmd::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-scale, scale);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

double eigen_residual(const Matrix& a, const SymmetricEigenSolution& sol) {
  // max_k || A v_k - lambda_k v_k ||_inf
  double worst = 0.0;
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += a(i, j) * sol.vectors(j, k);
      worst = std::max(worst,
                       std::fabs(s - sol.values[k] * sol.vectors(i, k)));
    }
  }
  return worst;
}

double orthogonality_defect(const Matrix& v) {
  const Matrix vtv = matmul(transpose(v), v);
  return max_abs(vtv - Matrix::identity(v.rows()));
}

TEST(Eigh, EmptyAndTrivialSizes) {
  Matrix a0(0, 0);
  EXPECT_TRUE(eigvalsh(a0).empty());

  Matrix a1(1, 1);
  a1(0, 0) = -3.5;
  const auto s1 = eigh(a1);
  ASSERT_EQ(s1.values.size(), 1u);
  EXPECT_DOUBLE_EQ(s1.values[0], -3.5);
  EXPECT_DOUBLE_EQ(std::fabs(s1.vectors(0, 0)), 1.0);
}

TEST(Eigh, TwoByTwoAnalytic) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  a(0, 1) = a(1, 0) = 1.0;
  const auto s = eigh(a);
  EXPECT_NEAR(s.values[0], 3.0 - std::sqrt(2.0), 1e-13);
  EXPECT_NEAR(s.values[1], 3.0 + std::sqrt(2.0), 1e-13);
}

TEST(Eigh, DiagonalMatrixSortedAscending) {
  Matrix a(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 7.0;
  a(3, 3) = 0.0;
  const auto s = eigh(a);
  EXPECT_DOUBLE_EQ(s.values[0], -1.0);
  EXPECT_DOUBLE_EQ(s.values[1], 0.0);
  EXPECT_DOUBLE_EQ(s.values[2], 3.0);
  EXPECT_DOUBLE_EQ(s.values[3], 7.0);
}

TEST(Eigh, HandlesDegenerateEigenvalues) {
  // I + rank-1: eigenvalues {1 (x3), 1 + ||w||^2}.
  const std::size_t n = 4;
  std::vector<double> w{0.5, -0.5, 1.0, 0.25};
  Matrix a = Matrix::identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) += w[i] * w[j];
  }
  const auto s = eigh(a);
  double w2 = 0.0;
  for (const double x : w) w2 += x * x;
  EXPECT_NEAR(s.values[0], 1.0, 1e-12);
  EXPECT_NEAR(s.values[1], 1.0, 1e-12);
  EXPECT_NEAR(s.values[2], 1.0, 1e-12);
  EXPECT_NEAR(s.values[3], 1.0 + w2, 1e-12);
  EXPECT_LT(eigen_residual(a, s), 1e-12);
  EXPECT_LT(orthogonality_defect(s.vectors), 1e-12);
}

class EighRandom : public ::testing::TestWithParam<int> {};

TEST_P(EighRandom, MatchesJacobiAndSatisfiesDefinition) {
  const int n = GetParam();
  const Matrix a = random_symmetric(n, 1000 + n);
  const auto ql = eigh(a);
  const auto jac = jacobi_eigh(a);

  ASSERT_EQ(ql.values.size(), static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(ql.values[k], jac.values[k], 1e-10 * std::max(1.0, max_abs(a)));
  }
  EXPECT_LT(eigen_residual(a, ql), 1e-10);
  EXPECT_LT(orthogonality_defect(ql.vectors), 1e-10);
  // Values must come out sorted.
  for (int k = 1; k < n; ++k) EXPECT_LE(ql.values[k - 1], ql.values[k]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighRandom,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64, 100, 150));

class EigvalshRandom : public ::testing::TestWithParam<int> {};

TEST_P(EigvalshRandom, ValuesOnlyPathAgreesWithFullSolve) {
  const int n = GetParam();
  const Matrix a = random_symmetric(n, 2000 + n);
  const auto full = eigh(a);
  const auto vals = eigvalsh(a);
  ASSERT_EQ(vals.size(), full.values.size());
  for (int k = 0; k < n; ++k) EXPECT_NEAR(vals[k], full.values[k], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigvalshRandom,
                         ::testing::Values(2, 7, 24, 65, 120));

TEST(Eigh, TraceAndFrobeniusInvariants) {
  const std::size_t n = 40;
  const Matrix a = random_symmetric(n, 77);
  const auto vals = eigvalsh(a);
  double tr = 0.0, sum_sq = 0.0;
  for (const double v : vals) {
    tr += v;
    sum_sq += v * v;
  }
  double tr_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) tr_a += a(i, i);
  EXPECT_NEAR(tr, tr_a, 1e-10);
  const double frob = frobenius_norm(a);
  EXPECT_NEAR(std::sqrt(sum_sq), frob, 1e-10);
}

TEST(Eigh, ShiftInvariance) {
  const std::size_t n = 24;
  Matrix a = random_symmetric(n, 91);
  const auto vals = eigvalsh(a);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0;
  const auto shifted = eigvalsh(a);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(shifted[k], vals[k] + 5.0, 1e-10);
  }
}

TEST(Eigh, ScaleEquivariance) {
  const std::size_t n = 18;
  const Matrix a = random_symmetric(n, 93);
  const auto vals = eigvalsh(a);
  const Matrix b = a * (-2.0);
  auto scaled = eigvalsh(b);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(scaled[k], -2.0 * vals[n - 1 - k], 1e-10);
  }
}

TEST(Eigh, WideSpectrumStaysAccurate) {
  // Diagonal spans 8 orders of magnitude plus a small coupling.
  const std::size_t n = 12;
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = std::pow(10.0, static_cast<double>(i) - 4.0);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a(i, i + 1) = a(i + 1, i) = 1e-6;
  }
  const auto s = eigh(a);
  EXPECT_LT(eigen_residual(a, s), 1e-9);
}

TEST(Eigh, RejectsNonSquare) {
  Matrix a(3, 4);
  EXPECT_THROW((void)eigh(a), Error);
  EXPECT_THROW((void)eigvalsh(a), Error);
}

TEST(Householder, ProducesOrthogonalQAndSimilarTridiagonal) {
  const std::size_t n = 30;
  const Matrix a = random_symmetric(n, 303);
  Matrix q = a;
  std::vector<double> d, e;
  householder_tridiagonalize(q, d, e, /*accumulate=*/true);

  EXPECT_LT(orthogonality_defect(q), 1e-11);

  // Rebuild T from (d, e) and check Q^T A Q = T.
  Matrix t(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    t(i, i) = d[i];
    if (i > 0) {
      t(i, i - 1) = e[i];
      t(i - 1, i) = e[i];
    }
  }
  const Matrix qtaq = matmul(transpose(q), matmul(a, q));
  EXPECT_LT(max_abs(qtaq - t), 1e-10);
}

TEST(Householder, SturmCountConsistentWithFinalEigenvalues) {
  // Property test: for several probe energies, the Sturm count of the
  // tridiagonal reduction equals the number of eigenvalues below the probe.
  const std::size_t n = 50;
  const Matrix a = random_symmetric(n, 404);
  Matrix work = a;
  std::vector<double> d, e;
  householder_tridiagonalize(work, d, e, /*accumulate=*/false);
  const auto vals = eigvalsh(a);

  for (const double probe : {-2.0, -0.5, 0.0, 0.3, 1.5}) {
    std::size_t expected = 0;
    for (const double v : vals) expected += (v < probe);
    EXPECT_EQ(sturm_count(d, e, probe), expected) << "probe = " << probe;
  }
}

TEST(Jacobi, AgreesWithAnalytic2x2) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(0, 1) = a(1, 0) = 0.5;
  const auto s = jacobi_eigh(a);
  EXPECT_NEAR(s.values[0], 0.5, 1e-12);
  EXPECT_NEAR(s.values[1], 1.5, 1e-12);
}

TEST(Jacobi, ResidualAndOrthogonality) {
  const Matrix a = random_symmetric(20, 505);
  const auto s = jacobi_eigh(a);
  EXPECT_LT(eigen_residual(a, s), 1e-10);
  EXPECT_LT(orthogonality_defect(s.vectors), 1e-10);
}

}  // namespace
}  // namespace tbmd::linalg
